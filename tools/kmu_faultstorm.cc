/**
 * @file
 * kmu_faultstorm — fault-injection campaign driver for the runtime.
 *
 * Escalates a composite fault schedule across the three access
 * mechanisms and reports, per (mechanism, fault rate) cell, how much
 * goodput survived and what the recovery machinery had to do:
 *
 *   kmu_faultstorm                         # default campaign
 *   kmu_faultstorm rates=0,0.01 ops=2000   # quick smoke
 *   kmu_faultstorm seed=7 require_recovery=1
 *
 * Every workload is self-validating: reads are checked against the
 * image's known mix64 pattern and writes are read back, so a fault
 * that the recovery path fails to absorb shows up as a verify error,
 * not just a slow run. The campaign is deterministic — fixed seed and
 * rates produce a byte-identical CSV (the software-queue mechanism
 * runs the emulated device in manual-pump mode for this).
 *
 * Exit status is nonzero when any verify error or invariant
 * violation occurred, or when require_recovery=1 and a nonzero-rate
 * cell rode through without the recovery machinery firing (which
 * would mean the campaign is not actually testing anything).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "access/runtime.hh"
#include "check/invariant.hh"
#include "common/random.hh"
#include "fault/fault_plan.hh"
#include "tool_args.hh"

using namespace kmu;
using fault::FaultPlan;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: kmu_faultstorm [key=value ...]\n"
        "  seed=N              campaign seed            (1)\n"
        "  rates=F,F,...       fault rates to sweep     (0,0.001,0.01)\n"
        "  ops=N               read ops per fiber       (4000)\n"
        "  fibers=N            worker fibers            (4)\n"
        "  mechanisms=a,b,...  ondemand,prefetch,swqueue (all)\n"
        "  shards=N            device shards, swqueue   (1)\n"
        "  shard_mask=M        shards the faults hit    (1)\n"
        "  outage=0|1          domain-outage schedule instead of the\n"
        "                      composite one (nonzero rates arm it) (0)\n"
        "  hang_window=N       outage hang, service steps (64)\n"
        "  outage_period=N     encounters between hangs (2048)\n"
        "  brownout=N          outage service-latency factor (0=off)\n"
        "  health=MODE         off,governor,full (swqueue) (off)\n"
        "  require_recovery=0|1  fail if faults never bit (0)\n");
    std::exit(1);
}

[[noreturn]] void
badValue(const std::string &key, const std::string &value)
{
    toolargs::reportBadValue("kmu_faultstorm", key, value);
    usage();
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** The device image every mechanism serves: word i holds mix64(i). */
std::vector<std::uint8_t>
patternImage(std::size_t bytes)
{
    std::vector<std::uint8_t> image(bytes);
    for (std::size_t off = 0; off < bytes; off += 8) {
        const std::uint64_t word = mix64(off);
        std::memcpy(image.data() + off, &word, 8);
    }
    return image;
}

struct CellResult
{
    std::uint64_t verifyErrors = 0;
    std::uint64_t deadlineFailed = 0; //!< reads failed at deadline
    std::uint64_t accesses = 0;
    std::uint64_t writes = 0;
    AccessEngine::RecoveryCounters rec;
    std::uint64_t degradations = 0;
    std::uint64_t recoveries = 0;
    health::RecoveryController::Counters health;
    std::uint64_t injected = 0;
    std::uint64_t violations = 0;
};

/**
 * One campaign cell: build a runtime, run the self-validating
 * workload under the given plan (nullptr = faults off), report.
 *
 * Layout: the lower half of the image is a read-only region whose
 * mix64 pattern reads are verified against; the upper half is write
 * scratch, sliced per fiber, exercised write-then-read-back.
 */
CellResult
runCell(Mechanism mech, FaultPlan *plan, std::uint64_t seed,
        std::uint64_t ops, std::uint64_t fibers,
        std::uint32_t shards, health::Mode health_mode)
{
    constexpr std::size_t imageBytes = 1u << 20;
    constexpr std::size_t readBytes = imageBytes / 2;

    Runtime::Config cfg;
    cfg.mechanism = mech;
    cfg.deterministicDevice = true; // single-threaded, reproducible
    if (mech == Mechanism::SwQueue) {
        // Shards and the health control plane are software-queue
        // features; the memory-mapped mechanisms run the paper's
        // single-device platform regardless of the knobs.
        cfg.shards = shards;
        cfg.health.mode = health_mode;
    }
    Runtime rt(patternImage(imageBytes), cfg);
    const bool deadlines = rt.healthController() != nullptr &&
                           health_mode == health::Mode::Full;

    const std::uint64_t violationsBefore = check::violationCount();
    CellResult out;

    for (std::uint64_t f = 0; f < fibers; ++f) {
        rt.spawnWorker([&, f](AccessEngine &eng) {
            Rng rng(mix64(seed ^ (0xf1be0000 + f)));
            const Addr scratchBase =
                readBytes + f * ((imageBytes - readBytes) / fibers);
            std::uint8_t line[cacheLineSize];
            std::uint8_t back[cacheLineSize];

            for (std::uint64_t op = 0; op < ops; ++op) {
                if (op % 8 == 7) {
                    // Write path: stamp a line with a per-op pattern,
                    // read it back through the same engine.
                    const Addr addr = lineAlign(
                        scratchBase + rng.nextBounded(
                            (imageBytes - readBytes) / fibers -
                            cacheLineSize));
                    for (std::uint32_t b = 0; b < cacheLineSize; ++b)
                        line[b] = std::uint8_t(mix64(op ^ addr) >>
                                               ((b % 8) * 8));
                    eng.writeLine(addr, line);
                    if (deadlines) {
                        // Under per-request deadlines the readback
                        // may legitimately fail instead of retrying
                        // forever; verify the first word of what did
                        // arrive.
                        std::uint64_t word = 0;
                        if (eng.tryRead64(addr, word) ==
                            AccessStatus::Ok) {
                            std::uint64_t want;
                            std::memcpy(&want, line, 8);
                            if (word != want)
                                out.verifyErrors++;
                        } else {
                            out.deadlineFailed++;
                        }
                        continue;
                    }
                    eng.readLines(&addr, 1, back);
                    if (std::memcmp(line, back, cacheLineSize) != 0)
                        out.verifyErrors++;
                    continue;
                }
                // Read path: any aligned word in the pattern region.
                const Addr addr =
                    rng.nextBounded(readBytes / 8) * 8;
                std::uint64_t got = 0;
                if (eng.tryRead64(addr, got) == AccessStatus::Ok) {
                    if (got != mix64(addr))
                        out.verifyErrors++;
                } else {
                    out.deadlineFailed++;
                }
            }
        });
    }

    fault::install(plan);
    rt.run();
    fault::install(nullptr);

    out.accesses = rt.engine().accesses();
    out.writes = rt.engine().writes();
    out.rec = rt.engine().recovery();
    out.degradations = rt.degradation().degradations();
    out.recoveries = rt.degradation().recoveries();
    if (const health::RecoveryController *hc = rt.healthController())
        out.health = hc->counters();
    out.injected = plan ? plan->totalInjected() : 0;
    out.violations = check::violationCount() - violationsBefore;
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 1;
    std::uint64_t ops = 4000;
    std::uint64_t fibers = 4;
    std::uint64_t shards = 1;
    std::uint64_t shard_mask = 1;
    bool outage = false;
    std::uint64_t hang_window = 64;
    std::uint64_t outage_period = 2048;
    std::uint64_t brownout = 0;
    health::Mode health_mode = health::Mode::Off;
    bool require_recovery = false;
    std::vector<double> rates{0.0, 0.001, 0.01};
    std::vector<Mechanism> mechanisms{
        Mechanism::OnDemand, Mechanism::Prefetch, Mechanism::SwQueue};

    for (int i = 1; i < argc; ++i) {
        std::string key;
        std::string value;
        if (!toolargs::parseKv(argv[i], key, value)) {
            toolargs::reportBadArg("kmu_faultstorm", argv[i]);
            usage();
        }
        if (key == "seed") {
            if (!toolargs::parseU64(value, seed))
                badValue(key, value);
        } else if (key == "ops") {
            if (!toolargs::parseU64(value, ops) || ops == 0)
                badValue(key, value);
        } else if (key == "fibers") {
            if (!toolargs::parseU64(value, fibers) || fibers == 0)
                badValue(key, value);
        } else if (key == "shards") {
            if (!toolargs::parseU64(value, shards) || shards == 0 ||
                shards > topo::maxShards)
                badValue(key, value);
        } else if (key == "shard_mask") {
            if (!toolargs::parseU64(value, shard_mask) ||
                shard_mask == 0)
                badValue(key, value);
        } else if (key == "outage") {
            if (!toolargs::parseFlag(value, outage))
                badValue(key, value);
        } else if (key == "hang_window") {
            if (!toolargs::parseU64(value, hang_window) ||
                hang_window == 0)
                badValue(key, value);
        } else if (key == "outage_period") {
            if (!toolargs::parseU64(value, outage_period) ||
                outage_period == 0)
                badValue(key, value);
        } else if (key == "brownout") {
            if (!toolargs::parseU64(value, brownout))
                badValue(key, value);
        } else if (key == "health") {
            if (!health::parseMode(value.c_str(), health_mode))
                badValue(key, value);
        } else if (key == "require_recovery") {
            if (!toolargs::parseFlag(value, require_recovery))
                badValue(key, value);
        } else if (key == "rates") {
            rates.clear();
            for (const std::string &r : splitList(value)) {
                double rate = 0.0;
                if (!toolargs::parseF64(r, rate) || rate < 0.0 ||
                    rate > 1.0)
                    badValue(key, value);
                rates.push_back(rate);
            }
            if (rates.empty())
                badValue(key, value);
        } else if (key == "mechanisms") {
            mechanisms.clear();
            for (const std::string &m : splitList(value)) {
                if (m == "ondemand")
                    mechanisms.push_back(Mechanism::OnDemand);
                else if (m == "prefetch")
                    mechanisms.push_back(Mechanism::Prefetch);
                else if (m == "swqueue")
                    mechanisms.push_back(Mechanism::SwQueue);
                else
                    badValue(key, value);
            }
            if (mechanisms.empty())
                badValue(key, value);
        } else {
            toolargs::reportUnknownKey("kmu_faultstorm", key);
            usage();
        }
    }

    std::printf("mechanism,shards,shard_mask,health,fault_rate,ops,"
                "verify_errors,deadline_failed,accesses,"
                "writes,retries,timeouts,crc_failures,"
                "stale_completions,recovery_doorbells,"
                "degraded_accesses,degradations,recoveries,"
                "health_degradations,health_quarantines,"
                "health_recoveries,health_failovers,deadline_errors,"
                "injected_total,goodput_pct,violations\n");

    bool failed = false;
    std::uint64_t campaignDegradations = 0;
    std::uint64_t campaignRecoveries = 0;
    bool anyNonzeroRate = false;
    std::uint64_t step = 0;

    for (double rate : rates) {
        for (Mechanism mech : mechanisms) {
            // A fresh plan per cell, seeded from the campaign seed
            // and the cell index, keeps cells independent: editing
            // the rate list cannot perturb an earlier cell. In
            // outage mode any nonzero rate arms the domain-outage
            // schedule (whole-shard hangs on the masked shards)
            // instead of scaling the composite one.
            FaultPlan plan =
                outage ? FaultPlan::outage(
                             mix64(seed ^ (0x57a6e000 + step)),
                             shard_mask, hang_window, outage_period,
                             brownout)
                       : FaultPlan::composite(
                             mix64(seed ^ (0x57a6e000 + step)), rate);
            ++step;
            FaultPlan *active = rate > 0.0 ? &plan : nullptr;

            CellResult r = runCell(mech, active, seed, ops, fibers,
                                   std::uint32_t(shards),
                                   health_mode);

            const std::uint64_t attempts = r.accesses + r.rec.retries;
            const double goodput = attempts
                ? 100.0 * double(r.accesses) / double(attempts)
                : 100.0;

            std::printf("%s,%llu,%#llx,%s,%.17g,%llu,%llu,%llu,%llu,"
                        "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
                        "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.17g,"
                        "%llu\n",
                        mechanismName(mech),
                        (unsigned long long)shards,
                        (unsigned long long)shard_mask,
                        health::modeName(health_mode), rate,
                        (unsigned long long)(ops * fibers),
                        (unsigned long long)r.verifyErrors,
                        (unsigned long long)r.deadlineFailed,
                        (unsigned long long)r.accesses,
                        (unsigned long long)r.writes,
                        (unsigned long long)r.rec.retries,
                        (unsigned long long)r.rec.timeouts,
                        (unsigned long long)r.rec.crcFailures,
                        (unsigned long long)r.rec.staleCompletions,
                        (unsigned long long)r.rec.recoveryDoorbells,
                        (unsigned long long)r.rec.degradedAccesses,
                        (unsigned long long)r.degradations,
                        (unsigned long long)r.recoveries,
                        (unsigned long long)r.health.degradations,
                        (unsigned long long)r.health.quarantines,
                        (unsigned long long)r.health.recoveries,
                        (unsigned long long)r.health.failovers,
                        (unsigned long long)r.rec.deadlineErrors,
                        (unsigned long long)r.injected, goodput,
                        (unsigned long long)r.violations);

            if (r.verifyErrors > 0 || r.violations > 0)
                failed = true;
            if (rate > 0.0) {
                anyNonzeroRate = true;
                // In outage mode the machinery under test is the
                // shard-health controller, not the prefetch
                // degradation governor: credit its quarantine /
                // recovery cycle instead.
                campaignDegradations +=
                    outage ? r.health.quarantines : r.degradations;
                campaignRecoveries +=
                    outage ? r.health.recoveries : r.recoveries;
                if (require_recovery && r.injected > 0 &&
                    r.rec.retries == 0 &&
                    r.rec.degradedAccesses == 0) {
                    std::fprintf(stderr,
                                 "faultstorm: %s at rate %g injected "
                                 "%llu faults but recovered nothing\n",
                                 mechanismName(mech), rate,
                                 (unsigned long long)r.injected);
                    failed = true;
                }
            }
        }
    }

    if (require_recovery && anyNonzeroRate &&
        (campaignDegradations == 0 || campaignRecoveries == 0)) {
        std::fprintf(stderr,
                     "faultstorm: %s never cycled "
                     "(degradations=%llu recoveries=%llu)\n",
                     outage ? "health controller"
                            : "degradation governor",
                     (unsigned long long)campaignDegradations,
                     (unsigned long long)campaignRecoveries);
        failed = true;
    }
    return failed ? 1 : 0;
}
