/**
 * @file
 * kmu_trace — inspect and export binary traces written by kmu_sim.
 *
 *   kmu_trace run.kmt                     # per-kind summary table
 *   kmu_trace run.kmt json=run.json       # chrome://tracing JSON
 *   kmu_trace run.kmt csv=summary.csv     # compact CSV summary
 *   kmu_trace run.kmt quiet=1 json=...    # export only, no table
 *
 * The JSON loads directly into chrome://tracing or Perfetto; the CSV
 * is one row per record kind with span counts and latency stats.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "tool_args.hh"
#include "trace/export.hh"
#include "trace/trace.hh"

using namespace kmu;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: kmu_trace <trace.kmt> [key=value ...]\n"
        "  json=FILE   write Chrome trace_event JSON\n"
        "  csv=FILE    write per-kind summary CSV\n"
        "  quiet=0|1   suppress the summary table (0)\n");
    std::exit(1);
}

void
writeText(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    if (text.size() &&
        std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
        std::fclose(f);
        fatal("write to '%s' failed", path.c_str());
    }
    if (std::fclose(f) != 0)
        fatal("write to '%s' failed", path.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string trace_path = argv[1];
    std::string json_path;
    std::string csv_path;
    bool quiet = false;

    for (int i = 2; i < argc; ++i) {
        std::string key;
        std::string value;
        if (!toolargs::parseKv(argv[i], key, value)) {
            toolargs::reportBadArg("kmu_trace", argv[i]);
            usage();
        }
        if (key == "json") {
            json_path = value;
        } else if (key == "csv") {
            csv_path = value;
        } else if (key == "quiet") {
            if (!toolargs::parseFlag(value, quiet)) {
                toolargs::reportBadValue("kmu_trace", key, value);
                usage();
            }
        } else {
            toolargs::reportUnknownKey("kmu_trace", key);
            usage();
        }
    }

    const trace::TraceBuffer::FileData data =
        trace::TraceBuffer::readFile(trace_path);

    if (!json_path.empty())
        writeText(json_path, trace::toChromeJson(data));
    if (!csv_path.empty())
        writeText(csv_path, trace::toSummaryCsv(data));

    if (quiet)
        return 0;

    Table table(csprintf("%s: %llu records (%llu recorded)",
                         trace_path.c_str(),
                         (unsigned long long)data.records.size(),
                         (unsigned long long)data.recorded));
    table.setHeader({"kind", "spans", "instants", "counters",
                     "unmatched", "mean_ns", "min_ns", "max_ns"});
    for (const trace::KindSummary &s : trace::summarize(data)) {
        table.addRow({trace::kindName(s.kind), Table::num(s.spans),
                      Table::num(s.instants), Table::num(s.counters),
                      Table::num(s.unmatched), Table::num(s.meanNs()),
                      Table::num(s.minNs), Table::num(s.maxNs)});
    }
    table.printAscii(std::cout);
    if (data.recorded > data.records.size()) {
        std::printf("note: ring dropped %llu oldest records\n",
                    (unsigned long long)(data.recorded -
                                         data.records.size()));
    }
    return 0;
}
