/**
 * @file
 * kmu_sim — command-line front end for the timing model.
 *
 * Explore any configuration without writing code:
 *
 *   kmu_sim mechanism=prefetch threads=10 latency_us=1
 *   kmu_sim mechanism=swqueue cores=8 threads=24 stats=1
 *   kmu_sim mechanism=ondemand smt=2 work=100 batch=4
 *
 * Prints the run's headline metrics, the plan-matched DRAM-baseline
 * normalization, and (with stats=1) the full statistics tree of
 * every component in the modelled system.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/sim_system.hh"
#include "tool_args.hh"
#include "trace/trace.hh"

using namespace kmu;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: kmu_sim [key=value ...]\n"
        "  mechanism=ondemand|prefetch|swqueue   (prefetch)\n"
        "  backing=dram|device                   (device)\n"
        "  attach=pcie|membus  device attach point (pcie)\n"
        "  cores=N            physical cores     (1)\n"
        "  threads=N          user threads/core  (1)\n"
        "  smt=N              SMT contexts, on-demand only (1)\n"
        "  latency_us=F       device latency     (1)\n"
        "  work=N             work instrs/access (250)\n"
        "  batch=N            reads/iteration    (1)\n"
        "  write_frac=F       posted-write share (0)\n"
        "  lfb=N              LFB entries/core   (10)\n"
        "  chipq=N            chip PCIe queue    (14)\n"
        "  shards=N           device shards      (1)\n"
        "  interleave=cacheline|page  shard interleave (cacheline)\n"
        "  chipq_policy=replicated|partitioned  per-shard chip-queue "
        "slice (replicated)\n"
        "  ctx_ns=N           context switch     (50)\n"
        "  parallel=auto|off|shards  shard-domain parallel executor\n"
        "                     (auto: follow KMU_PARALLEL)\n"
        "  parallel_threads=N executor threads, 0=one per domain "
        "(KMU_PARALLEL_THREADS)\n"
        "  measure_us=N       measured window    (600)\n"
        "  stats=0|1          dump component stats (0)\n"
        "  csv=0|1            machine-readable one-row CSV (0)\n"
        "  trace=FILE         write a binary trace (see kmu_trace)\n"
        "  trace_period_us=F  occupancy sample period (1)\n"
        "serving mode (open-loop request arrivals, src/serve):\n"
        "  arrival=off|poisson|bursty  arrival process (off)\n"
        "  lambda=F           offered load, requests/us (1)\n"
        "  zipf=F             key popularity skew, [0,1) (0)\n"
        "  keys=N             keyspace size      (1048576)\n"
        "  value_lines=N      cache lines per value (1)\n"
        "  clients=N          client cap, 0=unbounded (0)\n"
        "  slo_us=F           per-request latency SLO (100)\n"
        "  duty=F             bursty ON fraction, (0,1] (0.5)\n"
        "  burst_period_us=F  bursty ON+OFF period (50)\n"
        "  serve_seed=N       arrival/popularity seed (1)\n");
    std::exit(1);
}

[[noreturn]] void
badValue(const std::string &key, const std::string &value)
{
    toolargs::reportBadValue("kmu_sim", key, value);
    usage();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg;
    bool dump_stats = false;
    bool csv = false;
    std::string trace_path;
    Tick trace_period = tickPerUs;

    for (int i = 1; i < argc; ++i) {
        std::string key;
        std::string value;
        if (!toolargs::parseKv(argv[i], key, value)) {
            toolargs::reportBadArg("kmu_sim", argv[i]);
            usage();
        }

        std::uint64_t u64 = 0;
        double f64 = 0.0;
        if (key == "mechanism") {
            if (value == "ondemand")
                cfg.mechanism = Mechanism::OnDemand;
            else if (value == "prefetch")
                cfg.mechanism = Mechanism::Prefetch;
            else if (value == "swqueue")
                cfg.mechanism = Mechanism::SwQueue;
            else
                badValue(key, value);
        } else if (key == "backing") {
            if (value == "dram")
                cfg.backing = Backing::Dram;
            else if (value == "device")
                cfg.backing = Backing::Device;
            else
                badValue(key, value);
        } else if (key == "attach") {
            if (value == "pcie")
                cfg.attach = DeviceAttach::Pcie;
            else if (value == "membus")
                cfg.attach = DeviceAttach::MemoryBus;
            else
                badValue(key, value);
        } else if (key == "cores") {
            if (!toolargs::parseU32(value, cfg.numCores) ||
                cfg.numCores == 0)
                badValue(key, value);
        } else if (key == "threads") {
            if (!toolargs::parseU32(value, cfg.threadsPerCore) ||
                cfg.threadsPerCore == 0)
                badValue(key, value);
        } else if (key == "smt") {
            if (!toolargs::parseU32(value, cfg.smtContexts) ||
                cfg.smtContexts == 0)
                badValue(key, value);
        } else if (key == "latency_us") {
            if (!toolargs::parseF64(value, f64) || f64 < 0.0)
                badValue(key, value);
            cfg.device.latency = Tick(f64 * tickPerUs);
        } else if (key == "work") {
            if (!toolargs::parseU32(value, cfg.workCount))
                badValue(key, value);
        } else if (key == "batch") {
            if (!toolargs::parseU32(value, cfg.batch) ||
                cfg.batch == 0)
                badValue(key, value);
        } else if (key == "write_frac") {
            if (!toolargs::parseF64(value, f64) || f64 < 0.0 ||
                f64 > 1.0)
                badValue(key, value);
            cfg.writeFraction = f64;
        } else if (key == "lfb") {
            if (!toolargs::parseU32(value, cfg.lfbPerCore) ||
                cfg.lfbPerCore == 0)
                badValue(key, value);
        } else if (key == "chipq") {
            if (!toolargs::parseU32(value, cfg.chipPcieQueue) ||
                cfg.chipPcieQueue == 0)
                badValue(key, value);
        } else if (key == "shards") {
            if (!toolargs::parseU32(value, cfg.topo.shards) ||
                cfg.topo.shards == 0 ||
                cfg.topo.shards > topo::maxShards)
                badValue(key, value);
        } else if (key == "interleave") {
            if (value == "cacheline")
                cfg.topo.interleave = topo::Interleave::CacheLine;
            else if (value == "page")
                cfg.topo.interleave = topo::Interleave::Page;
            else
                badValue(key, value);
        } else if (key == "chipq_policy") {
            if (value == "replicated")
                cfg.topo.chipQueuePolicy =
                    topo::ChipQueuePolicy::Replicated;
            else if (value == "partitioned")
                cfg.topo.chipQueuePolicy =
                    topo::ChipQueuePolicy::Partitioned;
            else
                badValue(key, value);
        } else if (key == "ctx_ns") {
            if (!toolargs::parseU64(value, u64))
                badValue(key, value);
            cfg.ctxSwitchCost = nanoseconds(u64);
        } else if (key == "parallel") {
            if (value == "auto")
                cfg.parallel = ParallelMode::Auto;
            else if (value == "off")
                cfg.parallel = ParallelMode::Off;
            else if (value == "shards")
                cfg.parallel = ParallelMode::Shards;
            else
                badValue(key, value);
        } else if (key == "parallel_threads") {
            if (!toolargs::parseU32(value, cfg.parallelThreads))
                badValue(key, value);
        } else if (key == "measure_us") {
            if (!toolargs::parseU64(value, u64) || u64 == 0)
                badValue(key, value);
            cfg.measure = microseconds(u64);
        } else if (key == "stats") {
            if (!toolargs::parseFlag(value, dump_stats))
                badValue(key, value);
        } else if (key == "csv") {
            if (!toolargs::parseFlag(value, csv))
                badValue(key, value);
        } else if (key == "arrival") {
            if (value == "off")
                cfg.serve.arrival = serve::ArrivalKind::Off;
            else if (value == "poisson")
                cfg.serve.arrival = serve::ArrivalKind::Poisson;
            else if (value == "bursty")
                cfg.serve.arrival = serve::ArrivalKind::Bursty;
            else
                badValue(key, value);
        } else if (key == "lambda") {
            if (!toolargs::parseF64(value, f64) || f64 <= 0.0)
                badValue(key, value);
            cfg.serve.lambdaPerUs = f64;
        } else if (key == "zipf") {
            if (!toolargs::parseF64(value, f64) || f64 < 0.0 ||
                f64 >= 1.0)
                badValue(key, value);
            cfg.serve.zipfTheta = f64;
        } else if (key == "keys") {
            if (!toolargs::parseU64(value, cfg.serve.numKeys) ||
                cfg.serve.numKeys == 0)
                badValue(key, value);
        } else if (key == "value_lines") {
            if (!toolargs::parseU32(value, cfg.serve.valueLines) ||
                cfg.serve.valueLines == 0)
                badValue(key, value);
        } else if (key == "clients") {
            if (!toolargs::parseU32(value, cfg.serve.clients))
                badValue(key, value);
        } else if (key == "slo_us") {
            if (!toolargs::parseF64(value, f64) || f64 <= 0.0)
                badValue(key, value);
            cfg.serve.sloUs = f64;
        } else if (key == "duty") {
            if (!toolargs::parseF64(value, f64) || f64 <= 0.0 ||
                f64 > 1.0)
                badValue(key, value);
            cfg.serve.duty = f64;
        } else if (key == "burst_period_us") {
            if (!toolargs::parseF64(value, f64) || f64 <= 0.0)
                badValue(key, value);
            cfg.serve.burstPeriodUs = f64;
        } else if (key == "serve_seed") {
            if (!toolargs::parseU64(value, cfg.serve.seed))
                badValue(key, value);
        } else if (key == "trace") {
            trace_path = value;
        } else if (key == "trace_period_us") {
            if (!toolargs::parseF64(value, f64) || f64 <= 0.0)
                badValue(key, value);
            trace_period = Tick(f64 * tickPerUs);
        } else {
            toolargs::reportUnknownKey("kmu_sim", key);
            usage();
        }
    }

    if (cfg.serve.enabled() && cfg.writeFraction != 0.0) {
        std::fprintf(stderr, "kmu_sim: serving mode models read "
                             "requests only (write_frac must be 0)\n");
        usage();
    }

    // Trace sinks are single-threaded: a traced run always uses the
    // serial executor, whatever the environment says (output is
    // byte-identical either way, so this only affects speed).
    if (!trace_path.empty())
        cfg.parallel = ParallelMode::Off;

    SimSystem system(cfg);

    // The sink is live only across the traced system's run: the
    // DRAM-baseline run below owns a second EventQueue whose records
    // must not leak into the trace.
    std::unique_ptr<trace::TraceBuffer> trace_buf;
    if (!trace_path.empty()) {
        trace_buf = std::make_unique<trace::TraceBuffer>();
        system.enableTracing(*trace_buf, trace_period);
        trace::setSink(trace_buf.get());
    }
    const RunResult res = system.run();
    trace::setSink(nullptr);
    if (trace_buf)
        trace_buf->writeFile(trace_path);

    const RunResult base = runSystem(baselineConfig(cfg));

    if (csv) {
        // Full-precision, locale-free output: byte-identical across
        // runs of the same configuration (the determinism_kmu_sim
        // ctest depends on this).
        // The base columns never change with serving off: the
        // determinism_kmu_sim and serving_differential ctests compare
        // this output byte-for-byte against committed expectations.
        std::printf(
            "mechanism,cores,threads,iterations,work_instrs,accesses,"
            "writes,work_ipc,normalized_ipc,mean_read_latency_ns,"
            "to_host_wire_gbs,to_host_useful_gbs,to_device_wire_gbs,"
            "chip_queue_peak,prefetches_queued,replay_misses,"
            "events_serviced");
        if (cfg.serve.enabled()) {
            std::printf(
                ",serve_offered,serve_completed,serve_slo_met,"
                "serve_inflight_peak,serve_p50_ns,serve_p99_ns,"
                "serve_p999_ns,serve_mean_ns,serve_goodput_per_us");
        }
        std::printf("\n");
        std::printf(
            "%s,%u,%u,%llu,%llu,%llu,%llu,%.17g,%.17g,%.17g,%.17g,"
            "%.17g,%.17g,%u,%llu,%llu,%llu",
            mechanismName(cfg.mechanism), cfg.numCores,
            cfg.threadsPerCore, (unsigned long long)res.iterations,
            (unsigned long long)res.workInstrs,
            (unsigned long long)res.accesses,
            (unsigned long long)res.writes, res.workIpc,
            normalizedWorkIpc(res, base), res.meanReadLatencyNs,
            res.toHostWireGBs, res.toHostUsefulGBs,
            res.toDeviceWireGBs, res.chipQueuePeak,
            (unsigned long long)res.prefetchesQueued,
            (unsigned long long)res.replayMisses,
            (unsigned long long)system.totalServiced());
        if (cfg.serve.enabled()) {
            std::printf(
                ",%llu,%llu,%llu,%llu,%.17g,%.17g,%.17g,%.17g,%.17g",
                (unsigned long long)res.serveOffered,
                (unsigned long long)res.serveCompleted,
                (unsigned long long)res.serveSloMet,
                (unsigned long long)res.serveInFlightPeak,
                res.serveP50Ns, res.serveP99Ns, res.serveP999Ns,
                res.serveMeanLatencyNs, res.serveGoodputPerUs);
        }
        std::printf("\n");
        if (dump_stats) {
            std::printf("\n--- component statistics ---\n");
            system.stats().dump(std::cout);
        }
        return 0;
    }

    std::printf("mechanism          %s (%s-backed)\n",
                mechanismName(cfg.mechanism),
                cfg.backing == Backing::Dram ? "DRAM" : "device");
    std::printf("cores x threads    %u x %u\n", cfg.numCores,
                cfg.threadsPerCore);
    std::printf("device latency     %.2f us\n",
                ticksToUs(cfg.device.latency));
    std::printf("iterations         %llu\n",
                (unsigned long long)res.iterations);
    std::printf("accesses/us        %.2f (%.1f%% writes)\n",
                res.accessesPerUs,
                res.accesses
                    ? 100.0 * double(res.writes) / double(res.accesses)
                    : 0.0);
    std::printf("work IPC           %.4f\n", res.workIpc);
    std::printf("normalized (DRAM)  %.4f\n",
                normalizedWorkIpc(res, base));
    std::printf("mean read latency  %.1f ns\n", res.meanReadLatencyNs);
    if (res.toHostWireGBs > 0.0) {
        std::printf("PCIe to-host       %.2f GB/s wire, %.2f GB/s "
                    "useful\n", res.toHostWireGBs,
                    res.toHostUsefulGBs);
    }
    if (res.chipQueuePeak > 0)
        std::printf("chip-queue peak    %u\n", res.chipQueuePeak);
    if (res.prefetchesQueued > 0) {
        std::printf("prefetches queued  %llu (LFB pressure)\n",
                    (unsigned long long)res.prefetchesQueued);
    }

    if (cfg.serve.enabled()) {
        std::printf("--- serving (open loop) ---\n");
        std::printf("offered            %llu requests "
                    "(lambda=%.3g/us, %s)\n",
                    (unsigned long long)res.serveOffered,
                    cfg.serve.lambdaPerUs,
                    cfg.serve.arrival == serve::ArrivalKind::Bursty
                        ? "bursty" : "poisson");
        std::printf("completed          %llu (peak in flight %llu)\n",
                    (unsigned long long)res.serveCompleted,
                    (unsigned long long)res.serveInFlightPeak);
        std::printf("latency p50/p99    %.2f / %.2f us "
                    "(p999 %.2f, mean %.2f)\n",
                    res.serveP50Ns / 1e3, res.serveP99Ns / 1e3,
                    res.serveP999Ns / 1e3,
                    res.serveMeanLatencyNs / 1e3);
        std::printf("goodput under SLO  %.3f req/us (SLO %.1f us, "
                    "%.1f%% of completions)\n",
                    res.serveGoodputPerUs, cfg.serve.sloUs,
                    res.serveCompleted
                        ? 100.0 * double(res.serveSloMet) /
                              double(res.serveCompleted)
                        : 0.0);
    }

    if (dump_stats) {
        std::printf("\n--- component statistics ---\n");
        system.stats().dump(std::cout);
    }
    return 0;
}
