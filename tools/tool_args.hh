/**
 * @file
 * Shared strict key=value argument parsing for the CLI tools.
 *
 * The tools accept gem5-style `key=value` argument lists. The parse
 * helpers here are strict so a typo never turns into an uncaught
 * std::invalid_argument abort or a silently-wrapped number: the
 * whole value must parse, out-of-range values are rejected, and the
 * caller reports the offending `key=value` pair before printing its
 * usage text and exiting non-zero.
 */

#ifndef KMU_TOOLS_TOOL_ARGS_HH
#define KMU_TOOLS_TOOL_ARGS_HH

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

namespace kmu::toolargs
{

/** Split "key=value" (value may be empty; key may not). */
inline bool
parseKv(const char *arg, std::string &key, std::string &value)
{
    const char *eq = std::strchr(arg, '=');
    if (!eq || eq == arg)
        return false;
    key.assign(arg, eq);
    value.assign(eq + 1);
    return true;
}

/**
 * Strict unsigned parse: the entire string must be a non-negative
 * integer (decimal, or 0x/0 prefixed) that fits the target type.
 */
inline bool
parseU64(const std::string &s, std::uint64_t &out)
{
    // The first character must be a digit: strtoull itself skips
    // leading whitespace and accepts a sign, so " -1" would
    // otherwise wrap to a huge value with end == s.end().
    if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

inline bool
parseU32(const std::string &s, std::uint32_t &out)
{
    std::uint64_t v = 0;
    if (!parseU64(s, v) ||
        v > std::numeric_limits<std::uint32_t>::max())
        return false;
    out = std::uint32_t(v);
    return true;
}

/**
 * Strict double parse: the entire string must be a finite number
 * (no inf/nan, no range overflow).
 */
inline bool
parseF64(const std::string &s, double &out)
{
    // strtod skips leading whitespace, which would let " 1.5" (and
    // whitespace-wrapped junk generally) slip through the
    // whole-string check below.
    if (s.empty() || std::isspace(static_cast<unsigned char>(s[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    if (!(v == v) || v > std::numeric_limits<double>::max() ||
        v < -std::numeric_limits<double>::max())
        return false;
    out = v;
    return true;
}

/** Strict boolean flag: exactly "0" or "1". */
inline bool
parseFlag(const std::string &s, bool &out)
{
    if (s == "0") {
        out = false;
        return true;
    }
    if (s == "1") {
        out = true;
        return true;
    }
    return false;
}

/**
 * Report a malformed or out-of-range value. The caller's usage()
 * follows, so this only names the offending pair.
 */
inline void
reportBadValue(const char *tool, const std::string &key,
               const std::string &value)
{
    std::fprintf(stderr, "%s: bad value in '%s=%s'\n", tool,
                 key.c_str(), value.c_str());
}

/** Report an argument that is not a key=value pair at all. */
inline void
reportBadArg(const char *tool, const char *arg)
{
    std::fprintf(stderr, "%s: expected key=value, got '%s'\n", tool,
                 arg);
}

/** Report an unrecognized key. */
inline void
reportUnknownKey(const char *tool, const std::string &key)
{
    std::fprintf(stderr, "%s: unknown option '%s'\n", tool,
                 key.c_str());
}

} // namespace kmu::toolargs

#endif // KMU_TOOLS_TOOL_ARGS_HH
