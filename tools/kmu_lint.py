#!/usr/bin/env python3
"""Repo-specific lint gate for the kmu model code.

Checks that clang-tidy cannot express (or that must hold even when
clang-tidy is unavailable, as it is in the CI fallback and minimal
dev containers):

  1. no-std-rand      std::rand/srand in model code breaks run-to-run
                      determinism; use common/random.hh (mix64/Rng).
  2. no-raw-new       model code is ownership-audited around
                      unique_ptr/containers; raw new/delete escapes
                      that audit.
  3. include-guards   headers use  KMU_<SUBDIR>_<FILE>_HH  guards
                      (pragma once is not used in this codebase).
  4. no-wall-clock    the deterministic core (src/sim, src/mem,
                      src/queue, src/core, src/check) must not read
                      wall-clock time: simulated time comes only from
                      the EventQueue. Real-time layers (src/ult,
                      src/access, src/device's emulated device,
                      src/ubench) are exempt.

A finding can be waived on its line with:  // kmu-lint: allow(<rule>)

Usage:  kmu_lint.py [--root DIR] PATH...     (exit 1 on findings)
"""

import argparse
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".hh", ".cc", ".h", ".cpp", ".hpp"}

# Directories (relative to the scan root) whose simulated time must be
# fully deterministic.
DETERMINISTIC_DIRS = ("sim", "mem", "queue", "core", "check")

RULE_STD_RAND = "no-std-rand"
RULE_RAW_NEW = "no-raw-new"
RULE_GUARD = "include-guards"
RULE_WALL_CLOCK = "no-wall-clock"

RAND_RE = re.compile(r"\bstd::rand\b|\bsrand\s*\(|[^.\w]rand\s*\(\s*\)")
NEW_RE = re.compile(r"\bnew\s+[A-Za-z_(]|\bnew\s*\[|\bdelete\b")
DELETED_FN_RE = re.compile(r"=\s*delete\b")  # deleted functions are fine
# Placement new into mapped/staged storage is part of no idiom here;
# flag it too. std::launder etc. never appear.
CLOCK_RE = re.compile(
    r"steady_clock|system_clock|high_resolution_clock"
    r"|\bgettimeofday\b|\bclock_gettime\b|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"
    r"|__rdtsc|\basm\b.*\brdtsc\b")
WAIVER_RE = re.compile(r"//\s*kmu-lint:\s*allow\(([a-z-]+)\)")

GUARD_IFNDEF_RE = re.compile(r"^#ifndef\s+(\w+)\s*$", re.M)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so token rules don't fire on prose or messages."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(rel_path):
    """KMU_<DIRS>_<STEM>_<EXT> for a header path relative to src/."""
    parts = list(rel_path.parts[:-1]) + [rel_path.stem, rel_path.suffix[1:]]
    return "KMU_" + "_".join(p.upper().replace("-", "_") for p in parts)


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def report(self, path, line_no, rule, message):
        self.findings.append(f"{path}:{line_no}: [{rule}] {message}")

    def waived(self, raw_line, rule):
        m = WAIVER_RE.search(raw_line)
        return bool(m) and m.group(1) == rule

    def lint_file(self, path):
        rel = path.relative_to(self.root)
        raw = path.read_text(encoding="utf-8")
        raw_lines = raw.splitlines()
        clean_lines = strip_comments_and_strings(raw).splitlines()

        deterministic = rel.parts and rel.parts[0] in DETERMINISTIC_DIRS

        for idx, clean in enumerate(clean_lines):
            line_no = idx + 1
            raw_line = raw_lines[idx] if idx < len(raw_lines) else ""

            if RAND_RE.search(clean) and not self.waived(raw_line,
                                                        RULE_STD_RAND):
                self.report(rel, line_no, RULE_STD_RAND,
                            "std::rand/srand breaks determinism; use "
                            "common/random.hh")
            if (NEW_RE.search(DELETED_FN_RE.sub("", clean))
                    and not self.waived(raw_line, RULE_RAW_NEW)):
                self.report(rel, line_no, RULE_RAW_NEW,
                            "raw new/delete in model code; use "
                            "std::make_unique or a container")
            if (deterministic and CLOCK_RE.search(clean)
                    and not self.waived(raw_line, RULE_WALL_CLOCK)):
                self.report(rel, line_no, RULE_WALL_CLOCK,
                            "wall-clock time in the deterministic "
                            "core; simulated time comes from the "
                            "EventQueue")

        if path.suffix in {".hh", ".h", ".hpp"}:
            self.lint_guard(path, rel, raw)

    def lint_guard(self, path, rel, raw):
        want = expected_guard(rel)
        m = GUARD_IFNDEF_RE.search(raw)
        if not m:
            self.report(rel, 1, RULE_GUARD,
                        f"missing include guard (expected {want})")
            return
        got = m.group(1)
        if got != want:
            line_no = raw[:m.start()].count("\n") + 1
            self.report(rel, line_no, RULE_GUARD,
                        f"include guard {got}, expected {want}")
        define = f"#define {got}"
        if define not in raw:
            self.report(rel, 1, RULE_GUARD,
                        f"guard {got} is never defined")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="+", type=pathlib.Path,
                    help="files or directories to lint")
    ap.add_argument("--root", type=pathlib.Path, default=None,
                    help="directory include guards are relative to "
                         "(default: the scanned directory itself)")
    args = ap.parse_args(argv)

    rc = 0
    for top in args.paths:
        if not top.exists():
            print(f"kmu_lint: no such path: {top}", file=sys.stderr)
            return 2
        root = args.root or (top if top.is_dir() else top.parent)
        linter = Linter(root.resolve())
        files = ([top.resolve()] if top.is_file() else sorted(
            p.resolve() for p in top.rglob("*")
            if p.suffix in SOURCE_SUFFIXES and p.is_file()))
        for f in files:
            linter.lint_file(f)
        for finding in linter.findings:
            print(finding)
        if linter.findings:
            rc = 1

    if rc == 0:
        print("kmu_lint: clean")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
