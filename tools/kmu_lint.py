#!/usr/bin/env python3
"""Deprecated shim: the lint rules moved into tools/kmu_analyze.py.

kmu_lint's four rules (no-std-rand, no-raw-new, include-guards,
no-wall-clock) are now the analyzer rules unseeded-rng, raw-new,
include-guards and wall-clock, sharing one entry point and one
suppression syntax (`// kmu-analyze: allow(<rule>)`; the old
`// kmu-lint: allow(<rule>)` spelling keeps working).

This wrapper preserves the historical CLI — same arguments, same
exit codes (0 clean, 1 findings, 2 bad path) — by invoking the
analyzer restricted to the folded rule set. New callers should run
kmu_analyze directly, which also enables the semantic rules
(unordered-iter, float-accum, fiber-escape, hostaddr-bits,
capability).

Usage:  kmu_lint.py [--root DIR] PATH...     (exit 1 on findings)
"""

import argparse
import pathlib
import sys

import kmu_analyze

FOLDED_RULES = "wall-clock,unseeded-rng,raw-new,include-guards"


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="+", type=pathlib.Path,
                    help="files or directories to lint")
    ap.add_argument("--root", type=pathlib.Path, default=None,
                    help="directory include guards are relative to "
                         "(default: the scanned directory itself)")
    args = ap.parse_args(argv)

    print("kmu_lint: deprecated; use tools/kmu_analyze.py "
          f"(running rules {FOLDED_RULES})", file=sys.stderr)

    forwarded = ["--rules", FOLDED_RULES]
    if args.root is not None:
        forwarded += ["--root", str(args.root)]
    forwarded += [str(p) for p in args.paths]
    return kmu_analyze.run(forwarded)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
