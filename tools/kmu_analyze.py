#!/usr/bin/env python3
"""kmu_analyze: semantic determinism & concurrency checker for kmu.

A compile-database-driven analysis pass over the model and runtime
code. It subsumes the old kmu_lint rule set and adds semantic rules
that need (light) parsing rather than per-line pattern matching:
token streams, template-argument balancing, declaration tracking and
function-extent scanning.

Frontends
---------
  lexical (default)  self-contained tokenizer + lightweight parser;
                     no dependencies beyond the standard library.
                     This is the gate of record: CI and ctest run it.
  clang              opt-in (--frontend=clang): drives libclang via
                     python clang.cindex over compile_commands.json
                     for call-graph-accurate versions of the call
                     rules (wall-clock, unseeded-rng) and
                     declaration-accurate capability checks. The
                     remaining rules always run lexically. Exits 2
                     with a clear message when clang.cindex is not
                     installed, so environments without libclang
                     never silently skip analysis.

Rules
-----
  wall-clock     deterministic code (src/sim, src/mem, src/queue,
                 src/core, src/check) must not read wall-clock time:
                 simulated time comes only from the EventQueue.
  unseeded-rng   std::rand/srand/std::random_device anywhere breaks
                 run-to-run determinism; use common/random.hh.
  raw-new        raw new/delete escapes the unique_ptr/container
                 ownership audit.
  include-guards headers use KMU_<SUBDIR>_<FILE>_HH guards.
  unordered-iter range-for over a std::unordered_{map,set} whose body
                 feeds CSV/stat/trace output: iteration order is
                 unspecified, so the output is not reproducible.
                 Sort first (or collect into a vector).
  float-accum    floating-point accumulation (+=/-=) in deterministic
                 code outside the sanctioned stats paths
                 (common/stats, common/table): summation order
                 changes results; accumulate integers or use a
                 Histogram/Table.
  fiber-escape   fiber-lifetime hazards in the fiber runtime
                 (src/ult, src/access) and its drivers: a spawn()
                 with a by-reference lambda capture and no run() in
                 the same function (the fiber outlives the captured
                 frame), or a reference obtained from a container
                 element that is used again after a yield()/block()
                 (the element may move while the fiber is switched
                 out).
  hostaddr-bits  the hostAddr tag layout (generation tag bits 48..55,
                 shard tag bits 56..61) is owned by the blessed
                 helpers in queue/descriptor.hh and topo/topology.hh;
                 raw shifts/masks of those bits anywhere else
                 duplicate the layout and rot silently.
  capability     every std::atomic member/global in src/ must carry a
                 KMU_ATOMIC_ROLE(...) or KMU_GUARDED_BY(...)
                 annotation (common/thread_annotations.hh) naming its
                 ordering contract.

Suppression
-----------
A finding is waived by a comment on its line or the line above:

    // kmu-analyze: allow(<rule>)

The old `// kmu-lint: allow(<rule>)` spelling is honored for the
folded rules so existing waivers keep working.

Usage
-----
    kmu_analyze.py [options] PATH...

    --compile-db FILE   compile_commands.json; .cc files under the
                        scan paths that are not in the database are
                        skipped (generated/experimental code).
    --frontend NAME     lexical (default) or clang.
    --rules a,b,...     run only the named rules.
    --list-rules        print the rule table and exit.
    --root DIR          directory include guards are relative to
                        (default: each scanned directory itself).

Exit codes: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import json
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".hh", ".cc", ".h", ".cpp", ".hpp"}

# Path fragments that mark generated or vendored code: never scanned,
# even when a directory walk reaches them.
SKIP_PATH_PARTS = {"build", "build-asan", "build-ubsan", "build-tsan",
                   "CMakeFiles", "_deps", ".git", "third_party"}

# Directories (relative to the scan root) whose simulated time must
# be fully deterministic. Real-time layers (src/ult, src/access,
# src/device, src/ubench, src/sweep) legitimately read the OS clock.
DETERMINISTIC_DIRS = ("sim", "mem", "queue", "core", "check")

# Directories hosting fiber-entry code: the fiber runtime itself and
# the access engines whose wait loops yield/block.
FIBER_DIRS = ("ult", "access")

# Files allowed to manipulate raw hostAddr tag bits: the descriptor
# (generation tag, bits 48..55) and the topology helpers (shard tag,
# bits 56..61). Everything else goes through their helpers.
HOSTADDR_BLESSED = ("queue/descriptor", "topo/topology")

# Files providing the sanctioned deterministic float paths (Table /
# Histogram / StatGroup): accumulation order there is fixed by the
# implementation and covered by golden tests.
FLOAT_SANCTIONED = ("common/stats", "common/table")

SUPPRESS_RE = re.compile(
    r"//\s*kmu-(?:analyze|lint):\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# ---------------------------------------------------------------------------
# Lexical frontend: line-preserving comment/string stripping plus a
# token stream with line numbers.
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so token rules never fire on prose or messages.
    Handles //, /* */, "...", '...', and raw string literals."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c == "R" and text[i:i + 2] == 'R"':
            # Raw string literal: R"delim( ... )delim"
            close = text.find("(", i + 2)
            if close < 0:
                out.append(c)
                i += 1
                continue
            delim = text[i + 2:close]
            end = text.find(")" + delim + '"', close + 1)
            end = n if end < 0 else end + len(delim) + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


TOKEN_RE = re.compile(r"""
    (?P<ident>[A-Za-z_]\w*)
  | (?P<number>0[xX][0-9a-fA-F']+\w*|\d[\d.']*\w*)
  | (?P<punct><<=|>>=|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=
              |&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|[{}()\[\];,<>=+\-*/%&|^~!?.:#])
""", re.VERBOSE)


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Token({self.kind},{self.text!r},{self.line})"


def tokenize(clean_text):
    """Token stream over comment/string-stripped text."""
    tokens = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(clean_text):
        line += clean_text.count("\n", pos, m.start())
        pos = m.start()
        tokens.append(Token(m.lastgroup, m.group(), line))
    return tokens


def match_angle(tokens, i):
    """Given tokens[i] == '<', return the index just past the
    balanced closing '>', treating << and >> as two angles. Returns
    None when the template argument list never closes (expression
    context)."""
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == "<<":
            depth += 2
        elif t == ">":
            depth -= 1
        elif t == ">>":
            depth -= 2
        elif t in (";", "{"):
            return None  # statement ended: was a comparison
        if depth <= 0:
            return i + 1
        i += 1
    return None


def match_paren(tokens, i, open_t="(", close_t=")"):
    """Given tokens[i] == open_t, return index just past the matching
    close_t (len(tokens) if unbalanced)."""
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(tokens)


class SourceFile:
    """One analyzed file: raw text, stripped text, tokens, domains,
    and the per-line suppression table."""

    def __init__(self, path, rel, root_name=""):
        self.path = path
        self.rel = rel  # pathlib.PurePath, relative to the scan root
        self.root_name = root_name  # scan root's own directory name
        self.text = path.read_text(encoding="utf-8")
        self.raw_lines = self.text.splitlines()
        self.clean = strip_comments_and_strings(self.text)
        self.clean_lines = self.clean.splitlines()
        self._tokens = None
        self.suppressions = self._collect_suppressions()

    @property
    def tokens(self):
        if self._tokens is None:
            self._tokens = tokenize(self.clean)
        return self._tokens

    def _collect_suppressions(self):
        table = {}
        for idx, raw in enumerate(self.raw_lines):
            m = SUPPRESS_RE.search(raw)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                table.setdefault(idx + 1, set()).update(rules)
        return table

    def suppressed(self, line_no, rule):
        """A waiver counts on the finding's line or the line above
        (for findings on lines too dense to carry a comment)."""
        for ln in (line_no, line_no - 1):
            if rule in self.suppressions.get(ln, ()):
                return True
        return False

    # Domain predicates ---------------------------------------------------

    def top_dir(self):
        return self.rel.parts[0] if self.rel.parts else ""

    def is_deterministic(self):
        return self.top_dir() in DETERMINISTIC_DIRS

    def is_fiber_code(self):
        return self.top_dir() in FIBER_DIRS

    def is_header(self):
        return self.path.suffix in {".hh", ".h", ".hpp"}

    def rel_stem(self):
        """'queue/descriptor' for src/queue/descriptor.hh."""
        return str(self.rel.with_suffix("")).replace("\\", "/")


class Finding:
    def __init__(self, rel, line, rule, message):
        self.rel = rel
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class Rule:
    """One analysis rule. check() yields Finding objects; the driver
    applies suppressions afterwards so every rule shares the same
    waiver mechanics."""

    name = ""
    description = ""

    def check(self, src):
        raise NotImplementedError


class WallClockRule(Rule):
    name = "wall-clock"
    description = ("no wall-clock reads in the deterministic core "
                   "(simulated time comes from the EventQueue)")

    CLOCK_RE = re.compile(
        r"steady_clock|system_clock|high_resolution_clock"
        r"|\bgettimeofday\b|\bclock_gettime\b"
        r"|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"
        r"|__rdtsc|\basm\b.*\brdtsc\b")

    def check(self, src):
        if not src.is_deterministic():
            return
        for idx, clean in enumerate(src.clean_lines):
            if self.CLOCK_RE.search(clean):
                yield Finding(src.rel, idx + 1, self.name,
                              "wall-clock time in the deterministic "
                              "core; simulated time comes from the "
                              "EventQueue")


class UnseededRngRule(Rule):
    name = "unseeded-rng"
    description = ("no std::rand/srand/std::random_device; use "
                   "common/random.hh (mix64/Rng) with an explicit "
                   "seed")

    RAND_RE = re.compile(
        r"\bstd::rand\b|\bsrand\s*\(|[^.\w]rand\s*\(\s*\)"
        r"|\brandom_device\b")

    def check(self, src):
        for idx, clean in enumerate(src.clean_lines):
            if self.RAND_RE.search(clean):
                yield Finding(src.rel, idx + 1, self.name,
                              "non-seeded randomness breaks "
                              "run-to-run determinism; use "
                              "common/random.hh")


class RawNewRule(Rule):
    name = "raw-new"
    description = ("no raw new/delete; ownership is audited around "
                   "unique_ptr and containers")

    NEW_RE = re.compile(r"\bnew\s+[A-Za-z_(]|\bnew\s*\[|\bdelete\b")
    DELETED_FN_RE = re.compile(r"=\s*delete\b")

    def check(self, src):
        for idx, clean in enumerate(src.clean_lines):
            if self.NEW_RE.search(self.DELETED_FN_RE.sub("", clean)):
                yield Finding(src.rel, idx + 1, self.name,
                              "raw new/delete in model code; use "
                              "std::make_unique or a container")


class IncludeGuardRule(Rule):
    name = "include-guards"
    description = "headers use KMU_<SUBDIR>_<FILE>_HH include guards"

    IFNDEF_RE = re.compile(r"^#ifndef\s+(\w+)\s*$", re.M)

    @staticmethod
    def expected_guard(rel):
        parts = list(rel.parts[:-1]) + [rel.stem, rel.suffix[1:]]
        return "KMU_" + "_".join(
            p.upper().replace("-", "_") for p in parts)

    def check(self, src):
        if not src.is_header():
            return
        want = self.expected_guard(src.rel)
        # Guards prefixed with the scan root's own name are accepted
        # too (src/ headers omit SRC_, tools/ headers carry TOOLS_).
        accepted = {want}
        if src.root_name:
            accepted.add(self.expected_guard(
                pathlib.PurePath(src.root_name) / src.rel))
        m = self.IFNDEF_RE.search(src.text)
        if not m:
            yield Finding(src.rel, 1, self.name,
                          f"missing include guard (expected {want})")
            return
        got = m.group(1)
        if got not in accepted:
            line_no = src.text[:m.start()].count("\n") + 1
            yield Finding(src.rel, line_no, self.name,
                          f"include guard {got}, expected {want}")
        if f"#define {got}" not in src.text:
            yield Finding(src.rel, 1, self.name,
                          f"guard {got} is never defined")


class UnorderedIterRule(Rule):
    name = "unordered-iter"
    description = ("no range-for over unordered containers feeding "
                   "CSV/stat/trace output (iteration order is "
                   "unspecified)")

    OUTPUT_IDENT_RE = re.compile(
        r"csv|Csv|CSV|print|record|report|dump|write|emit|log")

    def _unordered_names(self, src):
        """Names declared with std::unordered_{map,set}<...> type,
        members included (declaration = balanced template args
        followed by an identifier)."""
        names = set()
        toks = src.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident" or not t.text.startswith("unordered_"):
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "<":
                continue
            end = match_angle(toks, i + 1)
            if end is None:
                continue
            while end < len(toks) and toks[end].text in \
                    ("&", "*", "const", "&&"):
                end += 1
            if end < len(toks) and toks[end].kind == "ident":
                names.add(toks[end].text)
        return names

    def check(self, src):
        names = self._unordered_names(src)
        if not names:
            return
        toks = src.tokens
        for i, t in enumerate(toks):
            if t.text != "for" or i + 1 >= len(toks) \
                    or toks[i + 1].text != "(":
                continue
            close = match_paren(toks, i + 1)
            head = toks[i + 2:close - 1]
            colon = [k for k, h in enumerate(head) if h.text == ":"]
            if not colon:
                continue  # classic for loop
            range_expr = head[colon[-1] + 1:]
            if not any(h.kind == "ident" and h.text in names
                       for h in range_expr):
                continue
            # Body: the statement or block after the closing paren.
            if close < len(toks) and toks[close].text == "{":
                body_end = match_paren(toks, close, "{", "}")
                body = toks[close:body_end]
            else:
                body = toks[close:close + 64]
                stop = [k for k, b in enumerate(body) if b.text == ";"]
                body = body[:stop[0] + 1] if stop else body
            if self._feeds_output(body):
                yield Finding(
                    src.rel, t.line, self.name,
                    "range-for over an unordered container feeding "
                    "output; iteration order is unspecified -- sort "
                    "into a vector first")

    def _feeds_output(self, body):
        for k, b in enumerate(body):
            if b.text == "<<":
                return True
            if b.kind == "ident":
                if b.text in ("printf", "fprintf", "fputs", "fwrite",
                              "puts"):
                    return True
                if b.text == "trace" and k + 1 < len(body) \
                        and body[k + 1].text == "::":
                    return True
                if self.OUTPUT_IDENT_RE.search(b.text):
                    return True
        return False


class FloatAccumRule(Rule):
    name = "float-accum"
    description = ("no float/double accumulation in deterministic "
                   "code outside common/stats and common/table")

    DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*[;={,]")
    ACCUM_RE = re.compile(r"\b(\w+)\s*[+\-]=")

    def check(self, src):
        if not src.is_deterministic():
            return
        if any(src.rel_stem().startswith(p) for p in FLOAT_SANCTIONED):
            return
        float_names = set()
        for clean in src.clean_lines:
            float_names.update(self.DECL_RE.findall(clean))
        if not float_names:
            return
        for idx, clean in enumerate(src.clean_lines):
            for m in self.ACCUM_RE.finditer(clean):
                if m.group(1) in float_names:
                    yield Finding(
                        src.rel, idx + 1, self.name,
                        f"float accumulation into '{m.group(1)}' in "
                        "deterministic code; summation order changes "
                        "results -- accumulate integers or use a "
                        "stats Histogram")


class FiberEscapeRule(Rule):
    name = "fiber-escape"
    description = ("no by-ref captures escaping into unjoined fibers "
                   "and no container-element references held across "
                   "yield/block")

    SPAWN_RE = re.compile(r"\b(?:spawn|spawnWorker)\s*\(")
    REF_CAPTURE_RE = re.compile(r"\[\s*&")
    RUN_RE = re.compile(r"\b(?:run|join)\s*\(")
    YIELD_RE = re.compile(
        r"\byield\s*\(|\bblock\s*\(|\bblockCurrent\b|\bsuspend\s*\(")
    ELEM_REF_RE = re.compile(
        r"&\s*(\w+)\s*=\s*[^;=]*(?:\[|\.front\s*\(|\.back\s*\(|"
        r"\.data\s*\(|\.at\s*\()")

    def _function_extent(self, src, start_idx):
        """Lines [start, end) of the enclosing function, approximated
        by the kmu style rule that function/test bodies close with a
        brace in column 0."""
        end = start_idx
        while end < len(src.clean_lines):
            if src.clean_lines[end].startswith("}"):
                break
            end += 1
        return end

    def check(self, src):
        if not (src.is_fiber_code() or src.top_dir() in
                ("bench", "examples", "apps")):
            return
        yield from self._check_spawn_escapes(src)
        yield from self._check_refs_across_yield(src)

    def _check_spawn_escapes(self, src):
        for idx, clean in enumerate(src.clean_lines):
            m = self.SPAWN_RE.search(clean)
            if not m:
                continue
            # The capture list may start on this or the next line.
            window = clean[m.end():] + " " + \
                "".join(src.clean_lines[idx + 1:idx + 2])
            if not self.REF_CAPTURE_RE.search(window):
                continue
            end = self._function_extent(src, idx)
            tail = "\n".join(src.clean_lines[idx + 1:end])
            if not self.RUN_RE.search(tail):
                yield Finding(
                    src.rel, idx + 1, self.name,
                    "spawn with a by-reference capture and no "
                    "run()/join() before the enclosing function "
                    "returns: the fiber outlives the captured frame")

    def _check_refs_across_yield(self, src):
        for idx, clean in enumerate(src.clean_lines):
            m = self.ELEM_REF_RE.search(clean)
            if not m:
                continue
            name = m.group(1)
            end = self._function_extent(src, idx)
            yield_line = None
            for j in range(idx + 1, end):
                if self.YIELD_RE.search(src.clean_lines[j]):
                    yield_line = j
                    break
            if yield_line is None:
                continue
            use_re = re.compile(r"\b" + re.escape(name) + r"\b")
            for j in range(yield_line + 1, end):
                if use_re.search(src.clean_lines[j]):
                    yield Finding(
                        src.rel, idx + 1, self.name,
                        f"reference '{name}' into a container element "
                        "is used after a yield/block (line "
                        f"{j + 1}); the element may move while the "
                        "fiber is switched out -- re-look it up "
                        "after resuming")
                    break


class HostAddrBitsRule(Rule):
    name = "hostaddr-bits"
    description = ("hostAddr tag bits (gen 48..55, shard 56..61) are "
                   "manipulated only via queue/descriptor.hh and "
                   "topo/topology.hh helpers")

    SHIFT_RE = re.compile(r"(?:<<|>>)\s*(48|49|5[0-9]|6[01])\b")
    MASK_RE = re.compile(
        r"0[xX](?:00)?(?:[fF]{2}|3[fF])0{12}\b"  # 0xff<<48 / 0x3f<<56
        r"|0[xX][fF]{2}0{14}\b")                 # 0xff00000000000000
    ADDRISH_RE = re.compile(r"[aA]ddr|host|shard|[gG]en|[tT]ag")
    SETW_RE = re.compile(r"\bsetw\s*\(")

    def check(self, src):
        if any(src.rel_stem().startswith(p) for p in HOSTADDR_BLESSED):
            return
        for idx, clean in enumerate(src.clean_lines):
            if self.SETW_RE.search(clean):
                continue  # stream formatting, not address math
            shift = self.SHIFT_RE.search(clean)
            mask = self.MASK_RE.search(clean)
            if not shift and not mask:
                continue
            # Require address-ish context on the statement (this line
            # joined with the previous, for wrapped expressions) so
            # stream << 48 etc. never fire.
            stmt = (src.clean_lines[idx - 1] if idx else "") + clean
            if not self.ADDRISH_RE.search(stmt):
                continue
            what = "shift of bit " + shift.group(1) if shift \
                else "mask " + mask.group(0)
            yield Finding(
                src.rel, idx + 1, self.name,
                f"raw {what} touches the hostAddr tag bits; use the "
                "taggedHost/hostPtr/hostTag (descriptor.hh) or "
                "taggedShard/shardTag/stripShard (topology.hh) "
                "helpers")


class CapabilityRule(Rule):
    name = "capability"
    description = ("every std::atomic member/global carries "
                   "KMU_ATOMIC_ROLE(...) or KMU_GUARDED_BY(...)")

    ANNOTATIONS = ("KMU_ATOMIC_ROLE", "KMU_GUARDED_BY",
                   "KMU_PT_GUARDED_BY")

    def check(self, src):
        toks = src.tokens
        i = 0
        while i < len(toks):
            t = toks[i]
            if not (t.kind == "ident" and t.text == "atomic"
                    and i >= 2 and toks[i - 1].text == "::"
                    and toks[i - 2].text == "std"):
                i += 1
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "<":
                i += 1
                continue
            # `using` aliases and function parameters are exempt: the
            # annotation belongs on the owning declaration.
            stmt_start = i
            while stmt_start > 0 and toks[stmt_start - 1].text not in \
                    (";", "{", "}", "(", ","):
                stmt_start -= 1
            if any(tok.text in ("using", "typedef")
                   for tok in toks[stmt_start:i]):
                i += 1
                continue
            end = match_angle(toks, i + 1)
            if end is None or end >= len(toks):
                i += 1
                continue
            if toks[end].text in ("*", "&"):
                i = end  # pointer/ref to atomic: owner is elsewhere
                continue
            if toks[end].kind != "ident":
                i = end
                continue
            decl_line = toks[end].line
            j = end + 1
            annotated = False
            while j < len(toks) and toks[j].text not in (";", ","):
                if toks[j].text == "{":  # brace init ends the decl
                    break
                if toks[j].text == "(":
                    j = match_paren(toks, j)
                    continue
                if toks[j].kind == "ident" and \
                        toks[j].text in self.ANNOTATIONS:
                    annotated = True
                j += 1
            if not annotated:
                yield Finding(
                    src.rel, decl_line, self.name,
                    f"std::atomic '{toks[end].text}' lacks a "
                    "KMU_ATOMIC_ROLE(...)/KMU_GUARDED_BY(...) "
                    "annotation (common/thread_annotations.hh) "
                    "naming its ordering contract")
            i = end


ALL_RULES = [WallClockRule(), UnseededRngRule(), RawNewRule(),
             IncludeGuardRule(), UnorderedIterRule(), FloatAccumRule(),
             FiberEscapeRule(), HostAddrBitsRule(), CapabilityRule()]

RULES_BY_NAME = {r.name: r for r in ALL_RULES}


# ---------------------------------------------------------------------------
# Optional clang frontend (libclang via clang.cindex)
# ---------------------------------------------------------------------------

# Call-level spellings checked AST-accurately under --frontend=clang.
CLANG_WALLCLOCK_CALLS = {
    "now", "time", "gettimeofday", "clock_gettime", "__rdtsc"}
CLANG_WALLCLOCK_SCOPES = (
    "std::chrono::steady_clock", "std::chrono::system_clock",
    "std::chrono::high_resolution_clock")
CLANG_RNG_NAMES = {"rand", "srand", "random_device"}


class ClangFrontend:
    """AST-accurate versions of the call rules. The lexical rules
    still run for everything else; this class only *adds* precision
    where the AST genuinely helps (qualified call targets, atomic
    field declarations located through the record layout)."""

    def __init__(self, compile_db_path):
        try:
            from clang import cindex  # noqa: deferred, optional
        except ImportError as exc:
            raise RuntimeError(
                "frontend 'clang' needs the python clang bindings "
                "(clang.cindex) and libclang; install the 'clang' "
                "python package and libclang, or use the default "
                "lexical frontend") from exc
        self.cindex = cindex
        if compile_db_path is None:
            raise RuntimeError(
                "frontend 'clang' requires --compile-db")
        self.db = cindex.CompilationDatabase.fromDirectory(
            str(compile_db_path.parent))
        self.index = cindex.Index.create()

    def check_tu(self, src):
        cindex = self.cindex
        cmds = self.db.getCompileCommands(str(src.path))
        if not cmds:
            return
        args = [a for a in list(cmds[0].arguments)[1:-1]
                if a not in ("-c", "-o")]
        tu = self.index.parse(str(src.path), args=args)
        for cursor in tu.cursor.walk_preorder():
            if cursor.location.file is None or \
                    str(cursor.location.file) != str(src.path):
                continue
            if cursor.kind == cindex.CursorKind.CALL_EXPR:
                yield from self._check_call(src, cursor)

    def _check_call(self, src, cursor):
        name = cursor.spelling
        ref = cursor.referenced
        qual = ""
        if ref is not None and ref.semantic_parent is not None:
            qual = ref.semantic_parent.spelling or ""
        line = cursor.location.line
        if src.is_deterministic() and name in CLANG_WALLCLOCK_CALLS:
            if name != "now" or any(
                    s.endswith(qual) for s in CLANG_WALLCLOCK_SCOPES):
                yield Finding(src.rel, line, "wall-clock",
                              f"call to {qual}::{name} reads "
                              "wall-clock time in the deterministic "
                              "core")
        if name in CLANG_RNG_NAMES:
            yield Finding(src.rel, line, "unseeded-rng",
                          f"call to {name} is not seeded "
                          "deterministically; use common/random.hh")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def load_compile_db(path):
    """Set of absolute source paths named by compile_commands.json."""
    with open(path, encoding="utf-8") as fh:
        entries = json.load(fh)
    files = set()
    for e in entries:
        f = pathlib.Path(e["file"])
        if not f.is_absolute():
            f = pathlib.Path(e["directory"]) / f
        files.add(f.resolve())
    return files


def skip_path(path):
    return any(part in SKIP_PATH_PARTS for part in path.parts)


def collect_files(top, db_files):
    """Source files under `top`, honoring the skip list and (for
    translation units) the compile database when one was given."""
    if top.is_file():
        candidates = [top.resolve()]
    else:
        candidates = sorted(
            p.resolve() for p in top.rglob("*")
            if p.suffix in SOURCE_SUFFIXES and p.is_file())
    out = []
    for p in candidates:
        if skip_path(p.relative_to(top.resolve().parent)
                     if top.is_dir() else p):
            continue
        if db_files is not None and p.suffix in (".cc", ".cpp") \
                and p not in db_files:
            continue  # not built: generated or experimental
        out.append(p)
    return out


def run(argv):
    ap = argparse.ArgumentParser(
        prog="kmu_analyze",
        description="semantic determinism & concurrency checker",
        epilog="exit codes: 0 clean, 1 findings, 2 usage error")
    ap.add_argument("paths", nargs="*", type=pathlib.Path,
                    help="files or directories to analyze")
    ap.add_argument("--compile-db", type=pathlib.Path, default=None,
                    metavar="FILE",
                    help="compile_commands.json; unbuilt .cc files "
                         "are skipped")
    ap.add_argument("--frontend", choices=("lexical", "clang"),
                    default="lexical")
    ap.add_argument("--rules", default=None, metavar="a,b,...",
                    help="run only the named rules")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--root", type=pathlib.Path, default=None,
                    help="directory include guards are relative to "
                         "(default: each scanned directory itself)")
    args = ap.parse_args(argv)

    if not args.paths and not args.list_rules:
        ap.error("the following arguments are required: paths")

    if args.list_rules:
        width = max(len(r.name) for r in ALL_RULES)
        for r in ALL_RULES:
            print(f"  {r.name:<{width}}  {r.description}")
        return 0

    if args.rules is not None:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [w for w in wanted if w not in RULES_BY_NAME]
        if unknown:
            print(f"kmu_analyze: unknown rule(s): {', '.join(unknown)}"
                  f" (see --list-rules)", file=sys.stderr)
            return 2
        rules = [RULES_BY_NAME[w] for w in wanted]
    else:
        rules = ALL_RULES

    db_files = None
    if args.compile_db is not None:
        if not args.compile_db.exists():
            print(f"kmu_analyze: no such compile database: "
                  f"{args.compile_db}", file=sys.stderr)
            return 2
        db_files = load_compile_db(args.compile_db)

    clang_fe = None
    if args.frontend == "clang":
        try:
            clang_fe = ClangFrontend(args.compile_db)
        except RuntimeError as exc:
            print(f"kmu_analyze: {exc}", file=sys.stderr)
            return 2

    findings = []
    scanned = 0
    for top in args.paths:
        if not top.exists():
            print(f"kmu_analyze: no such path: {top}", file=sys.stderr)
            return 2
        root = (args.root or
                (top if top.is_dir() else top.parent)).resolve()
        for path in collect_files(top, db_files):
            try:
                rel = path.relative_to(root)
            except ValueError:
                rel = pathlib.Path(path.name)
            src = SourceFile(path, rel, root_name=root.name)
            scanned += 1
            for rule in rules:
                for f in rule.check(src):
                    if not src.suppressed(f.line, f.rule):
                        findings.append(f)
            if clang_fe is not None and path.suffix in (".cc", ".cpp"):
                for f in clang_fe.check_tu(src):
                    if not src.suppressed(f.line, f.rule):
                        findings.append(f)

    findings.sort(key=lambda f: (str(f.rel), f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"kmu_analyze: {len(findings)} finding(s) in "
              f"{scanned} file(s)", file=sys.stderr)
        return 1
    print(f"kmu_analyze: clean ({scanned} files)")
    return 0


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
