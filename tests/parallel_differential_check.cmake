# Parallel differential gate: KMU_PARALLEL=shards may change how
# fast the model computes, never what it computes. The battery
# re-runs every committed figure/ablation artifact, the golden
# closed-loop config list, richer kmu_sim configs (serving arrivals,
# write mixes, page interleave, partitioned chip queues), a traced
# run plus its decode, and the faultstorm campaign under the
# parallel executor — across BOTH event kernels — and requires every
# byte of output (CSV, stats dump, .kmt trace, trace exports,
# campaign CSV) to equal the serial run. Ineligible configs (shards=1,
# swqueue, fault plans, the real-time faultstorm runtime) must fall
# back to serial silently, so they are part of the same matrix: the
# environment knob must be output-neutral everywhere.
#
# Invoked by ctest as:
#   cmake -DKMU_SIM=<path> -DKMU_TRACE=<path> -DKMU_FAULTSTORM=<path>
#         -DFIG02=<path> -DFIG07=<path> -DABL_SHARDING=<path>
#         -DABL_OUTAGE=<path> -DFIG_KNEE=<path>
#         -DARTIFACT_DIR=<dir> -DWORK_DIR=<dir>
#         -P parallel_differential_check.cmake

foreach(var KMU_SIM KMU_TRACE KMU_FAULTSTORM FIG02 FIG07
        ABL_SHARDING ABL_OUTAGE FIG_KNEE ARTIFACT_DIR)
    if(NOT ${var})
        message(FATAL_ERROR "pass -D${var}=<path>")
    endif()
endforeach()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORK_DIR}/parallel_differential)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

set(ENVCMD ${CMAKE_COMMAND} -E env)

# --- 1. Committed bench artifacts under the parallel executor -----
# Every CSV the figure benches emit must match the committed
# serial-generated artifact byte-for-byte, under both event kernels.
foreach(kernel ladder heap)
    foreach(bench ${FIG02} ${FIG07} ${ABL_SHARDING} ${ABL_OUTAGE}
            ${FIG_KNEE})
        get_filename_component(name ${bench} NAME)
        set(bdir ${dir}/bench_${kernel}_${name})
        file(MAKE_DIRECTORY ${bdir})
        execute_process(
            COMMAND ${ENVCMD} KMU_PARALLEL=shards
                    KMU_EVENT_KERNEL=${kernel}
                    ${bench} jobs=4 bench_json=
            WORKING_DIRECTORY ${bdir}
            OUTPUT_FILE ${bdir}/${name}.out
            ERROR_VARIABLE err
            RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                "${name} under KMU_PARALLEL=shards/${kernel} failed "
                "(rc=${rc}): ${err}")
        endif()
        file(GLOB produced ${bdir}/*.csv)
        if(NOT produced)
            message(FATAL_ERROR "${name} produced no CSVs")
        endif()
        foreach(csv ${produced})
            get_filename_component(csvname ${csv} NAME)
            execute_process(
                COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${csv} ${ARTIFACT_DIR}/${csvname}
                RESULT_VARIABLE diff)
            if(NOT diff EQUAL 0)
                message(FATAL_ERROR
                    "'${csvname}' (${kernel} kernel) differs from "
                    "the committed artifact under "
                    "KMU_PARALLEL=shards: the parallel executor "
                    "changed observable output (fresh copy in "
                    "${bdir})")
            endif()
        endforeach()
    endforeach()
endforeach()

# --- 2. kmu_sim serial-vs-parallel pairs -------------------------
# Full stdout (CSV row + stats dump) must match between
# KMU_PARALLEL=off and KMU_PARALLEL=shards, for parallel-eligible
# configs and serial-fallback configs alike, under both kernels.
set(pair_1 mechanism=prefetch cores=2 threads=8 shards=4
           write_frac=0.3 measure_us=200 csv=1 stats=1)
set(pair_2 mechanism=ondemand smt=2 cores=4 shards=2 measure_us=200
           csv=1 stats=1)
set(pair_3 mechanism=prefetch cores=4 threads=4 shards=8
           interleave=page measure_us=200 csv=1 stats=1)
set(pair_4 mechanism=prefetch cores=2 threads=8 shards=4
           chipq_policy=partitioned write_frac=0.5 measure_us=300
           csv=1 stats=1)
set(pair_5 mechanism=prefetch cores=2 threads=8 shards=4
           arrival=bursty lambda=6 duty=0.4 zipf=0.9 measure_us=200
           csv=1 stats=1)
set(pair_6 mechanism=swqueue cores=2 threads=8 shards=4
           measure_us=200 csv=1 stats=1)
set(npairs 6)

foreach(kernel ladder heap)
    foreach(i RANGE 1 ${npairs})
        execute_process(
            COMMAND ${ENVCMD} KMU_PARALLEL=off
                    KMU_EVENT_KERNEL=${kernel}
                    ${KMU_SIM} ${pair_${i}}
            OUTPUT_FILE ${dir}/pair${i}_${kernel}_serial.txt
            RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                "kmu_sim pair ${i} serial/${kernel} failed")
        endif()
        execute_process(
            COMMAND ${ENVCMD} KMU_PARALLEL=shards
                    KMU_EVENT_KERNEL=${kernel}
                    ${KMU_SIM} ${pair_${i}}
            OUTPUT_FILE ${dir}/pair${i}_${kernel}_par.txt
            RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                "kmu_sim pair ${i} parallel/${kernel} failed")
        endif()
        execute_process(
            COMMAND ${CMAKE_COMMAND} -E compare_files
                    ${dir}/pair${i}_${kernel}_serial.txt
                    ${dir}/pair${i}_${kernel}_par.txt
            RESULT_VARIABLE diff)
        if(NOT diff EQUAL 0)
            message(FATAL_ERROR
                "kmu_sim config ${i} (${kernel} kernel) diverges "
                "under KMU_PARALLEL=shards (compare "
                "pair${i}_${kernel}_serial.txt and _par.txt in "
                "${dir})")
        endif()
    endforeach()
endforeach()

# Thread-count neutrality: sequential-window mode (threads=1) must
# match the default one-thread-per-domain run byte-for-byte.
execute_process(
    COMMAND ${ENVCMD} KMU_PARALLEL=shards KMU_PARALLEL_THREADS=1
            ${KMU_SIM} ${pair_1}
    OUTPUT_FILE ${dir}/pair1_threads1.txt
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "kmu_sim pair 1 threads=1 failed")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${dir}/pair1_threads1.txt ${dir}/pair1_ladder_par.txt
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "KMU_PARALLEL_THREADS=1 output differs from the threaded "
        "run: window execution order leaks into the model")
endif()

# --- 3. Golden closed-loop artifact ------------------------------
# The concatenated closed-loop config list must still reproduce the
# committed kmu_sim_closed_loop.csv under the parallel knob.
set(cl_1 "")
set(cl_2 mechanism=ondemand smt=2)
set(cl_3 mechanism=swqueue threads=16)
set(cl_4 mechanism=prefetch threads=10 latency_us=4)
set(cl_5 mechanism=swqueue threads=8 shards=4 write_frac=0.2)
set(closed ${dir}/closed_loop_parallel.csv)
file(WRITE ${closed} "")
foreach(i RANGE 1 5)
    execute_process(
        COMMAND ${ENVCMD} KMU_PARALLEL=shards
                ${KMU_SIM} csv=1 ${cl_${i}}
        OUTPUT_VARIABLE row
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "kmu_sim closed-loop config ${i} (parallel) failed")
    endif()
    file(APPEND ${closed} "${row}")
endforeach()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${closed} ${ARTIFACT_DIR}/kmu_sim_closed_loop.csv
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "closed-loop golden CSV differs under KMU_PARALLEL=shards "
        "(fresh copy: ${closed})")
endif()

# --- 4. Traced run + decode --------------------------------------
# Tracing requires the serial executor; a traced config must force
# itself serial under KMU_PARALLEL=shards and emit a byte-identical
# .kmt, decode JSON/CSV, and stdout.
set(TRACE_ARGS mechanism=prefetch cores=2 threads=8 shards=4
               write_frac=0.3 measure_us=200 csv=1)
foreach(mode off shards)
    execute_process(
        COMMAND ${ENVCMD} KMU_PARALLEL=${mode}
                ${KMU_SIM} ${TRACE_ARGS} trace=${dir}/par_${mode}.kmt
        OUTPUT_FILE ${dir}/par_${mode}_trace.txt
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "traced kmu_sim (${mode}) failed")
    endif()
    execute_process(
        COMMAND ${KMU_TRACE} ${dir}/par_${mode}.kmt quiet=1
                json=${dir}/par_${mode}.json
                csv=${dir}/par_${mode}.csv
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "kmu_trace decode (${mode}) failed")
    endif()
endforeach()
foreach(ext kmt json csv _trace.txt)
    string(REGEX REPLACE "^_" "" label ${ext})
    if(ext MATCHES "^_")
        set(fa ${dir}/par_off${ext})
        set(fb ${dir}/par_shards${ext})
    else()
        set(fa ${dir}/par_off.${ext})
        set(fb ${dir}/par_shards.${ext})
    endif()
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files ${fa} ${fb}
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR
            "traced output (${label}) differs under "
            "KMU_PARALLEL=shards; tracing must force the serial "
            "executor without changing a byte (${fa} vs ${fb})")
    endif()
endforeach()

# --- 5. Faultstorm campaign --------------------------------------
# The campaign drives the real-time runtime, where KMU_PARALLEL is
# legitimately inert — but it must be *verifiably* inert.
set(FS_ARGS seed=7 rates=0,0.001,0.01 ops=1500 fibers=4
            require_recovery=1)
foreach(mode off shards)
    execute_process(
        COMMAND ${ENVCMD} KMU_PARALLEL=${mode}
                ${KMU_FAULTSTORM} ${FS_ARGS}
        OUTPUT_FILE ${dir}/faultstorm_${mode}.csv
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "kmu_faultstorm (${mode}) failed (rc=${rc})")
    endif()
endforeach()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${dir}/faultstorm_off.csv ${dir}/faultstorm_shards.csv
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "faultstorm campaign CSV differs under KMU_PARALLEL=shards "
        "(compare faultstorm_off.csv and faultstorm_shards.csv in "
        "${dir})")
endif()

message(STATUS
    "parallel differential check passed: every artifact, config "
    "pair, trace, and campaign byte-identical under "
    "KMU_PARALLEL=shards x both event kernels")
