# Determinism gate: run kmu_sim twice with the same configuration and
# require byte-identical output (CSV row + full stats dump). Any
# nondeterminism in the event kernel, the RNG seeding, or container
# iteration order shows up here as a diff.
#
# Invoked by ctest as:
#   cmake -DKMU_SIM=<path-to-kmu_sim> -DWORK_DIR=<dir>
#         -P determinism_check.cmake

if(NOT KMU_SIM)
    message(FATAL_ERROR "pass -DKMU_SIM=<path to kmu_sim>")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(ARGS mechanism=swqueue cores=2 threads=8 latency_us=1
         write_frac=0.3 measure_us=200 csv=1 stats=1)

foreach(run a b)
    execute_process(
        COMMAND ${KMU_SIM} ${ARGS}
        OUTPUT_FILE ${WORK_DIR}/determinism_${run}.txt
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "kmu_sim run '${run}' failed (rc=${rc})")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/determinism_a.txt
            ${WORK_DIR}/determinism_b.txt
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "kmu_sim output differs between identical runs; the model "
        "is nondeterministic (compare determinism_a.txt and "
        "determinism_b.txt in ${WORK_DIR})")
endif()
message(STATUS "determinism check passed: outputs byte-identical")
