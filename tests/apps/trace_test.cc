/**
 * @file
 * Tests for access-trace recording, persistence, and plan synthesis.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "access/on_demand_engine.hh"
#include "apps/access_trace.hh"

namespace kmu
{
namespace
{

TEST(AccessTraceTest, RecordsBatchesAndTotals)
{
    AccessTrace trace;
    trace.add(1);
    trace.add(4);
    trace.add(2);
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.totalReads(), 7u);
    EXPECT_NEAR(trace.meanBatch(), 7.0 / 3.0, 1e-9);
    EXPECT_EQ(trace.batchAt(1), 4u);
}

TEST(AccessTraceTest, TracingEngineCapturesCalls)
{
    std::vector<std::uint8_t> image(8192, 0);
    OnDemandEngine inner(image.data(), image.size());
    AccessTrace trace;
    TracingEngine traced(inner, trace);

    traced.read64(0);
    Addr addrs[3] = {64, 128, 192};
    std::uint64_t vals[3];
    traced.readBatch(addrs, 3, vals);
    std::uint8_t buf[2 * 64];
    Addr lines[2] = {256, 512};
    traced.readLines(lines, 2, buf);

    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.batchAt(0), 1u);
    EXPECT_EQ(trace.batchAt(1), 3u);
    EXPECT_EQ(trace.batchAt(2), 2u);
    EXPECT_EQ(traced.accesses(), 6u);
    EXPECT_EQ(inner.accesses(), 6u);
}

TEST(AccessTraceTest, PlanCyclesThroughTrace)
{
    AccessTrace trace;
    trace.add(2);
    trace.add(4);
    trace.add(1);
    const auto plan = trace.makePlan(100);

    // Same (core, thread): consecutive iterations cycle the trace.
    const auto p0 = plan(0, 0, 0);
    const auto p1 = plan(0, 0, 1);
    const auto p2 = plan(0, 0, 2);
    const auto p3 = plan(0, 0, 3);
    EXPECT_EQ(p0.work, 100u);
    EXPECT_EQ(p3.batch, p0.batch); // period 3
    const std::uint32_t sum = p0.batch + p1.batch + p2.batch;
    EXPECT_EQ(sum, 7u); // one full cycle covers the trace

    // Different threads start at different offsets but draw from the
    // same distribution.
    const auto q = plan(1, 3, 0);
    EXPECT_TRUE(q.batch == 1 || q.batch == 2 || q.batch == 4);
}

TEST(AccessTraceTest, PlanOutlivesTrace)
{
    std::function<IterationPlan(CoreId, ThreadId, std::uint64_t)> plan;
    {
        AccessTrace trace;
        trace.add(3);
        plan = trace.makePlan(50);
    }
    EXPECT_EQ(plan(0, 0, 0).batch, 3u);
}

TEST(AccessTraceTest, SaveLoadRoundTrip)
{
    AccessTrace trace;
    for (std::uint32_t b : {1u, 2u, 4u, 4u, 2u, 1u, 8u})
        trace.add(b);
    const std::string path = ::testing::TempDir() + "kmu_trace.txt";
    trace.save(path);

    const AccessTrace loaded = AccessTrace::load(path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(loaded.batchAt(i), trace.batchAt(i));
    std::remove(path.c_str());
}

TEST(AccessTraceTest, EmptyTraceCannotPlan)
{
    AccessTrace trace;
    EXPECT_DEATH(trace.makePlan(100), "empty");
}

} // anonymous namespace
} // namespace kmu
