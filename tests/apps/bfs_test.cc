/**
 * @file
 * Tests for device-resident BFS across all access mechanisms.
 */

#include <gtest/gtest.h>

#include "access/runtime.hh"
#include "apps/graph/bfs.hh"

namespace kmu
{
namespace
{

struct BuiltGraph
{
    BuiltGraph(std::uint32_t scale, std::uint64_t seed)
        : params{scale, 16, seed},
          graph(params.vertices(), generateKronecker(params)),
          image(buildDeviceImage(graph, layout))
    {
    }

    KroneckerParams params;
    CsrGraph graph;
    DeviceGraphLayout layout;
    std::vector<std::uint8_t> image;
};

class BfsMechanismTest : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(BfsMechanismTest, MatchesReferenceBfs)
{
    BuiltGraph built(9, 3);
    const std::uint64_t source = built.graph.maxDegreeVertex();
    const BfsResult expect = bfsReference(built.graph, source);

    Runtime rt(built.image,
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(200)});
    BfsResult got;
    rt.spawnWorker([&](AccessEngine &dev) {
        got = bfsDevice(dev, built.layout, source);
    });
    rt.run();

    EXPECT_EQ(got.level, expect.level);
    EXPECT_EQ(got.reached, expect.reached);
    EXPECT_EQ(got.depth, expect.depth);
    EXPECT_EQ(got.edgesTraversed, expect.edgesTraversed);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, BfsMechanismTest,
                         ::testing::Values(Mechanism::OnDemand,
                                           Mechanism::Prefetch,
                                           Mechanism::SwQueue));

class BfsParallelTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BfsParallelTest, ParallelMatchesReference)
{
    const std::uint32_t workers = std::uint32_t(GetParam());
    BuiltGraph built(9, 5);
    const std::uint64_t source = built.graph.maxDegreeVertex();
    const BfsResult expect = bfsReference(built.graph, source);

    Runtime rt(built.image, {.mechanism = Mechanism::Prefetch});
    const BfsResult got =
        bfsDeviceParallel(rt, built.layout, source, workers);

    EXPECT_EQ(got.level, expect.level);
    EXPECT_EQ(got.reached, expect.reached);
    EXPECT_EQ(got.edgesTraversed, expect.edgesTraversed);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, BfsParallelTest,
                         ::testing::Values(1, 2, 7, 16));

TEST(BfsTest, LevelsSatisfyBfsInvariant)
{
    // Property: for every edge (u, v) with both sides reached,
    // |level(u) - level(v)| <= 1; and every reached non-source
    // vertex has a neighbor one level closer.
    BuiltGraph built(10, 11);
    const std::uint64_t source = built.graph.maxDegreeVertex();
    const BfsResult res = bfsReference(built.graph, source);

    for (std::uint64_t u = 0; u < built.graph.vertexCount(); ++u) {
        if (res.level[u] < 0)
            continue;
        bool has_parent_level = u == source;
        for (std::uint64_t v : built.graph.neighbors(u)) {
            ASSERT_GE(res.level[v], 0); // neighbors of reached are reached
            EXPECT_LE(std::abs(res.level[u] - res.level[v]), 1);
            has_parent_level |= res.level[v] == res.level[u] - 1;
        }
        if (built.graph.neighbors(u).size() > 0 || u == source) {
            EXPECT_TRUE(has_parent_level) << "vertex " << u;
        }
    }
}

TEST(BfsTest, SingleVertexGraph)
{
    CsrGraph g(1, {});
    DeviceGraphLayout layout;
    auto image = buildDeviceImage(g, layout);
    Runtime rt(std::move(image), {.mechanism = Mechanism::OnDemand});
    BfsResult got;
    rt.spawnWorker([&](AccessEngine &dev) {
        got = bfsDevice(dev, layout, 0);
    });
    rt.run();
    EXPECT_EQ(got.reached, 1u);
    EXPECT_EQ(got.level[0], 0);
}

TEST(BfsTest, DisconnectedComponentUnreached)
{
    // 0-1 and 2-3: starting at 0 must not reach {2, 3}.
    CsrGraph g(4, {{0, 1}, {2, 3}});
    DeviceGraphLayout layout;
    auto image = buildDeviceImage(g, layout);
    Runtime rt(std::move(image), {.mechanism = Mechanism::Prefetch});
    BfsResult got;
    rt.spawnWorker([&](AccessEngine &dev) {
        got = bfsDevice(dev, layout, 0);
    });
    rt.run();
    EXPECT_EQ(got.reached, 2u);
    EXPECT_EQ(got.level[2], -1);
    EXPECT_EQ(got.level[3], -1);
}

} // anonymous namespace
} // namespace kmu
