/**
 * @file
 * Tests for the canned application workloads and the full
 * trace-to-timing-model pipeline (Fig. 10 methodology).
 */

#include <gtest/gtest.h>

#include "apps/workloads.hh"
#include "core/sim_system.hh"

namespace kmu
{
namespace
{

AppWorkloadParams
tinyParams()
{
    AppWorkloadParams p;
    p.bfsScale = 9;
    p.bloomKeys = 4000;
    p.bloomQueries = 4000;
    p.bloomBits = 1 << 18;
    p.kvItems = 2000;
    p.kvQueries = 2000;
    p.kvBuckets = 1 << 10;
    return p;
}

TEST(WorkloadsTest, AllAppsRunAndTrace)
{
    for (AppKind app :
         {AppKind::Bfs, AppKind::Bloom, AppKind::Memcached}) {
        const auto out = runAndTrace(app, tinyParams());
        EXPECT_GT(out.operations, 0u) << appName(app);
        EXPECT_FALSE(out.trace.empty()) << appName(app);
        EXPECT_GT(out.trace.totalReads(), out.operations)
            << appName(app);
    }
}

TEST(WorkloadsTest, DeterministicChecksums)
{
    for (AppKind app :
         {AppKind::Bfs, AppKind::Bloom, AppKind::Memcached}) {
        const auto a = runAndTrace(app, tinyParams());
        const auto b = runAndTrace(app, tinyParams());
        EXPECT_EQ(a.checksum, b.checksum) << appName(app);
        EXPECT_EQ(a.trace.size(), b.trace.size()) << appName(app);
    }
}

TEST(WorkloadsTest, BatchingMatchesThePaper)
{
    // "The nature of the applications permits batches of four reads
    // for Memcached and Bloomfilter, but limits us to two reads for
    // BFS due to inherent data dependencies."
    const auto bfs = runAndTrace(AppKind::Bfs, tinyParams());
    EXPECT_GT(bfs.trace.meanBatch(), 1.3);
    EXPECT_LE(bfs.trace.meanBatch(), 2.0);

    const auto bloom = runAndTrace(AppKind::Bloom, tinyParams());
    EXPECT_DOUBLE_EQ(bloom.trace.meanBatch(), 4.0);

    const auto kv = runAndTrace(AppKind::Memcached, tinyParams());
    EXPECT_GT(kv.trace.meanBatch(), 1.5);
    EXPECT_LT(kv.trace.meanBatch(), 4.0);
}

TEST(WorkloadsTest, TraceDrivesTimingModel)
{
    // End-to-end Fig. 10 pipeline: capture a trace, replay it as the
    // per-iteration plan on both mechanisms, normalize against a
    // plan-matched DRAM baseline.
    const auto out = runAndTrace(AppKind::Bloom, tinyParams());

    SystemConfig cfg;
    cfg.plan = out.trace.makePlan(cfg.workCount);
    cfg.mechanism = Mechanism::Prefetch;
    cfg.threadsPerCore = 8;
    const double prefetch_norm = normalizedWorkIpc(cfg);

    cfg.mechanism = Mechanism::SwQueue;
    const double swq_norm = normalizedWorkIpc(cfg);

    // Bloom batches 4: the LFB-limited prefetch mechanism lands well
    // below its DRAM baseline; software queues sit lower still at
    // these thread counts (Fig. 10a vs 10b shapes).
    EXPECT_GT(prefetch_norm, 0.25);
    EXPECT_LT(prefetch_norm, 1.0);
    EXPECT_GT(swq_norm, 0.1);
    EXPECT_LT(swq_norm, prefetch_norm);
}

} // anonymous namespace
} // namespace kmu
