/**
 * @file
 * Application-level consumers of the device write path: on-device
 * Bloom insertion (read-modify-write) and in-place KV updates
 * (posted line writes), across all three mechanisms.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "access/runtime.hh"
#include "apps/bloom/bloom_filter.hh"
#include "apps/kv/kv_store.hh"
#include "common/random.hh"

namespace kmu
{
namespace
{

class AppWriteTest : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(AppWriteTest, BloomInsertOnDevice)
{
    BloomParams bp;
    bp.bits = 1 << 16;
    bp.hashes = 4;
    BloomBuilder empty(bp); // all-zero image

    Runtime rt(empty.deviceImage(),
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(200)});
    BloomProber prober(bp);
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        Rng rng(5);
        std::vector<std::uint64_t> keys;
        for (int i = 0; i < 300; ++i) {
            keys.push_back(rng.next());
            prober.insert(dev, keys.back());
        }
        // No false negatives after device-side insertion.
        for (std::uint64_t k : keys)
            ok &= prober.contains(dev, k);
        // Fresh keys are (overwhelmingly) absent in a big filter.
        Rng fresh(777);
        int fp = 0;
        for (int i = 0; i < 300; ++i)
            fp += prober.contains(dev, fresh.next());
        ok &= fp < 30;
    });
    rt.run();
    EXPECT_TRUE(ok);
    EXPECT_GT(rt.engine().writes(), 0u);
}

TEST_P(AppWriteTest, BloomDeviceMatchesHostInsertion)
{
    // Inserting the same keys on host and on device must yield the
    // same bit array (the RMW path is exact, not approximate).
    BloomParams bp;
    bp.bits = 1 << 14;
    bp.hashes = 3;
    BloomBuilder host(bp);
    BloomBuilder empty(bp);
    Rng rng(9);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 200; ++i) {
        keys.push_back(rng.next());
        host.insert(keys.back());
    }

    Runtime rt(empty.deviceImage(),
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(100)});
    BloomProber prober(bp);
    rt.spawnWorker([&](AccessEngine &dev) {
        for (std::uint64_t k : keys)
            prober.insert(dev, k);
        // Force all posted writes to land before comparison.
        dev.read64(0);
    });
    rt.run();

    const auto expect = host.deviceImage();
    EXPECT_EQ(std::memcmp(rt.deviceImage(), expect.data(),
                          expect.size()), 0);
}

TEST_P(AppWriteTest, KvInPlaceUpdate)
{
    KvParams kp;
    kp.buckets = 1 << 6;
    KvBuilder builder(kp);
    for (int i = 0; i < 64; ++i) {
        builder.put(csprintf("key-%d", i),
                    std::string(200, char('a' + i % 26)));
    }

    Runtime rt(builder.deviceImage(),
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(200)});
    KvProber prober(kp);
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        // Update half the keys in place, same length.
        for (int i = 0; i < 64; i += 2) {
            ok &= prober.update(dev, csprintf("key-%d", i),
                                std::string(200, 'Z'));
        }
        // Length mismatch and absent keys are rejected.
        ok &= !prober.update(dev, "key-0", "short");
        ok &= !prober.update(dev, "no-such-key",
                             std::string(200, 'x'));
        // Read back: updated and untouched values both correct.
        for (int i = 0; i < 64; ++i) {
            const auto got = prober.get(dev, csprintf("key-%d", i));
            const std::string expect =
                i % 2 == 0 ? std::string(200, 'Z')
                           : std::string(200, char('a' + i % 26));
            ok &= got == expect;
        }
    });
    rt.run();
    EXPECT_TRUE(ok);
    EXPECT_GT(rt.engine().writes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, AppWriteTest,
                         ::testing::Values(Mechanism::OnDemand,
                                           Mechanism::Prefetch,
                                           Mechanism::SwQueue));

} // anonymous namespace
} // namespace kmu
