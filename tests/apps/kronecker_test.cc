/**
 * @file
 * Tests for the Kronecker graph generator.
 */

#include <gtest/gtest.h>

#include "apps/graph/kronecker.hh"

namespace kmu
{
namespace
{

TEST(KroneckerTest, EdgeCountMatchesParams)
{
    KroneckerParams p;
    p.scale = 10;
    p.edgeFactor = 16;
    const auto edges = generateKronecker(p);
    EXPECT_EQ(edges.size(), (1ull << 10) * 16);
}

TEST(KroneckerTest, EndpointsInRange)
{
    KroneckerParams p;
    p.scale = 8;
    const auto edges = generateKronecker(p);
    for (const Edge &e : edges) {
        EXPECT_LT(e.u, p.vertices());
        EXPECT_LT(e.v, p.vertices());
    }
}

TEST(KroneckerTest, DeterministicPerSeed)
{
    KroneckerParams p;
    p.scale = 9;
    p.seed = 7;
    const auto a = generateKronecker(p);
    const auto b = generateKronecker(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].u, b[i].u);
        EXPECT_EQ(a[i].v, b[i].v);
    }
    p.seed = 8;
    const auto c = generateKronecker(p);
    std::size_t same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += a[i].u == c[i].u && a[i].v == c[i].v;
    EXPECT_LT(same, a.size() / 10);
}

TEST(KroneckerTest, DegreeDistributionIsSkewed)
{
    // Scale-free-ish graphs: the max degree dwarfs the mean.
    KroneckerParams p;
    p.scale = 12;
    const auto edges = generateKronecker(p);
    std::vector<std::uint64_t> degree(p.vertices(), 0);
    for (const Edge &e : edges) {
        degree[e.u]++;
        degree[e.v]++;
    }
    const std::uint64_t max_degree =
        *std::max_element(degree.begin(), degree.end());
    const double mean = 2.0 * double(edges.size()) / p.vertices();
    EXPECT_GT(double(max_degree), 10.0 * mean);
}

TEST(KroneckerTest, VertexZeroIsHot)
{
    // With A = 0.57 the (0,0) quadrant dominates, concentrating
    // edges on low vertex ids.
    KroneckerParams p;
    p.scale = 12;
    const auto edges = generateKronecker(p);
    std::uint64_t low = 0;
    for (const Edge &e : edges)
        low += e.u < p.vertices() / 4;
    EXPECT_GT(low, edges.size() / 2);
}

} // anonymous namespace
} // namespace kmu
