/**
 * @file
 * Tests for CSR construction and the on-device graph layout.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "apps/graph/csr.hh"

namespace kmu
{
namespace
{

std::vector<Edge>
diamond()
{
    // 0-1, 0-2, 1-3, 2-3, plus a self-loop (dropped) and an
    // isolated vertex 4.
    return {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 2}};
}

TEST(CsrTest, AdjacencyMatchesEdges)
{
    CsrGraph g(5, diamond());
    EXPECT_EQ(g.vertexCount(), 5u);
    EXPECT_EQ(g.directedEdgeCount(), 8u); // 4 edges, both ways

    auto sorted_neighbors = [&](std::uint64_t u) {
        auto span = g.neighbors(u);
        std::vector<std::uint64_t> v(span.begin(), span.end());
        std::sort(v.begin(), v.end());
        return v;
    };
    EXPECT_EQ(sorted_neighbors(0), (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(sorted_neighbors(1), (std::vector<std::uint64_t>{0, 3}));
    EXPECT_EQ(sorted_neighbors(2), (std::vector<std::uint64_t>{0, 3}));
    EXPECT_EQ(sorted_neighbors(3), (std::vector<std::uint64_t>{1, 2}));
    EXPECT_TRUE(sorted_neighbors(4).empty());
}

TEST(CsrTest, OffsetsMonotonic)
{
    CsrGraph g(5, diamond());
    const auto &off = g.offsetArray();
    ASSERT_EQ(off.size(), 6u);
    for (std::size_t i = 0; i + 1 < off.size(); ++i)
        EXPECT_LE(off[i], off[i + 1]);
    EXPECT_EQ(off.back(), g.directedEdgeCount());
}

TEST(CsrTest, MultiEdgesAreKept)
{
    std::vector<Edge> edges = {{0, 1}, {0, 1}};
    CsrGraph g(2, edges);
    EXPECT_EQ(g.directedEdgeCount(), 4u);
    EXPECT_EQ(g.neighbors(0).size(), 2u);
}

TEST(CsrTest, MaxDegreeVertex)
{
    std::vector<Edge> edges = {{0, 1}, {2, 1}, {3, 1}, {0, 2}};
    CsrGraph g(4, edges);
    EXPECT_EQ(g.maxDegreeVertex(), 1u);
}

TEST(CsrTest, DeviceImageRoundTrips)
{
    CsrGraph g(5, diamond());
    DeviceGraphLayout layout;
    const auto image = buildDeviceImage(g, layout);

    EXPECT_EQ(layout.n, 5u);
    EXPECT_EQ(layout.m, 8u);
    EXPECT_EQ(layout.adjBase % cacheLineSize, 0u);
    EXPECT_EQ(image.size(), layout.imageBytes());

    // Offsets and neighbors read back exactly.
    for (std::uint64_t u = 0; u <= layout.n; ++u) {
        std::uint64_t v;
        std::memcpy(&v, image.data() + layout.offsetAddr(u), 8);
        EXPECT_EQ(v, g.offsetArray()[u]);
    }
    for (std::uint64_t i = 0; i < layout.m; ++i) {
        std::uint64_t v;
        std::memcpy(&v, image.data() + layout.adjAddr(i), 8);
        EXPECT_EQ(v, g.neighborArray()[i]);
    }
}

} // anonymous namespace
} // namespace kmu
