/**
 * @file
 * Tests for the device-resident Bloom filter.
 */

#include <gtest/gtest.h>

#include "access/runtime.hh"
#include "apps/bloom/bloom_filter.hh"
#include "common/random.hh"

namespace kmu
{
namespace
{

BloomParams
smallParams()
{
    BloomParams p;
    p.bits = 1 << 18;
    p.hashes = 4;
    return p;
}

TEST(BloomTest, NoFalseNegativesHostSide)
{
    BloomBuilder builder(smallParams());
    Rng rng(1);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 5000; ++i) {
        keys.push_back(rng.next());
        builder.insert(keys.back());
    }
    for (std::uint64_t k : keys)
        EXPECT_TRUE(builder.contains(k));
}

TEST(BloomTest, FalsePositiveRateNearTheory)
{
    BloomParams p = smallParams();
    BloomBuilder builder(p);
    Rng rng(2);
    const std::uint64_t n = 30000;
    for (std::uint64_t i = 0; i < n; ++i)
        builder.insert(rng.next());

    Rng probe(999);
    const int probes = 50000;
    int fp = 0;
    for (int i = 0; i < probes; ++i)
        fp += builder.contains(probe.next());
    const double measured = double(fp) / probes;
    const double theory = p.theoreticalFpr(n);
    EXPECT_GT(theory, 0.01); // the config is meaningfully loaded
    EXPECT_NEAR(measured, theory, 0.35 * theory);
}

class BloomMechanismTest : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(BloomMechanismTest, DeviceProberMatchesHostBuilder)
{
    BloomParams p = smallParams();
    BloomBuilder builder(p);
    Rng rng(3);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 2000; ++i) {
        keys.push_back(rng.next());
        builder.insert(keys.back());
    }

    Runtime rt(builder.deviceImage(),
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(200)});
    BloomProber prober(p);
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        // Every inserted key must be found (no false negatives).
        for (std::uint64_t k : keys)
            ok &= prober.contains(dev, k);
        // And device answers equal host answers on random probes.
        Rng probe(77);
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t k = probe.next();
            ok &= prober.contains(dev, k) == builder.contains(k);
        }
    });
    rt.run();
    EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, BloomMechanismTest,
                         ::testing::Values(Mechanism::OnDemand,
                                           Mechanism::Prefetch,
                                           Mechanism::SwQueue));

TEST(BloomTest, ProbePositionsDeterministicAndBounded)
{
    BloomParams p = smallParams();
    std::uint64_t a[AccessEngine::maxBatch];
    std::uint64_t b[AccessEngine::maxBatch];
    bloomProbePositions(p, 0x1234, a);
    bloomProbePositions(p, 0x1234, b);
    for (std::uint32_t i = 0; i < p.hashes; ++i) {
        EXPECT_EQ(a[i], b[i]);
        EXPECT_LT(a[i], p.bits);
    }
    // Different keys probe different positions (overwhelmingly).
    bloomProbePositions(p, 0x5678, b);
    int same = 0;
    for (std::uint32_t i = 0; i < p.hashes; ++i)
        same += a[i] == b[i];
    EXPECT_LT(same, 2);
}

TEST(BloomTest, TheoreticalFprMonotonicInLoad)
{
    BloomParams p = smallParams();
    EXPECT_LT(p.theoreticalFpr(1000), p.theoreticalFpr(10000));
    EXPECT_LT(p.theoreticalFpr(10000), p.theoreticalFpr(100000));
    EXPECT_GT(p.theoreticalFpr(1000), 0.0);
    EXPECT_LT(p.theoreticalFpr(100000), 1.0);
}

TEST(BloomTest, HashCountMustFitBatch)
{
    BloomParams p;
    p.hashes = AccessEngine::maxBatch + 1;
    EXPECT_DEATH(BloomBuilder{p}, "batch");
}

} // anonymous namespace
} // namespace kmu
