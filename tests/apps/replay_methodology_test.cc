/**
 * @file
 * End-to-end test of the paper's two-run record-and-replay
 * methodology (Section IV-A):
 *
 *   run 1: execute the application, recording the sequence of
 *          device line addresses it reads;
 *   run 2: execute it again against the device with the recording
 *          loaded into the replay checker — every request must match
 *          the pre-recorded stream.
 *
 * Also checks the negative: replaying a *different* execution
 * produces misses (which the real FPGA would serve from its
 * on-demand module).
 */

#include <gtest/gtest.h>

#include "access/runtime.hh"
#include "apps/graph/bfs.hh"

namespace kmu
{
namespace
{

/** Engine decorator recording every read's line address in order. */
class AddressRecorder : public AccessEngine
{
  public:
    AddressRecorder(AccessEngine &inner, std::vector<Addr> &out)
        : inner(inner), out(out)
    {
    }

    std::uint64_t
    read64(Addr addr) override
    {
        out.push_back(lineAlign(addr));
        return inner.read64(addr);
    }

    void
    readBatch(const Addr *addrs, std::size_t n,
              std::uint64_t *vals) override
    {
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(lineAlign(addrs[i]));
        inner.readBatch(addrs, n, vals);
    }

    void
    readLines(const Addr *addrs, std::size_t n, void *dst) override
    {
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(lineAlign(addrs[i]));
        inner.readLines(addrs, n, dst);
    }

    void
    writeLine(Addr addr, const void *line) override
    {
        inner.writeLine(addr, line);
    }

    void
    write64(Addr addr, std::uint64_t value) override
    {
        inner.write64(addr, value);
    }

    Mechanism mechanism() const override { return inner.mechanism(); }

  private:
    AccessEngine &inner;
    std::vector<Addr> &out;
};

struct BfsSetup
{
    BfsSetup()
        : params{10, 16, 99},
          graph(params.vertices(), generateKronecker(params)),
          image(buildDeviceImage(graph, layout)),
          source(graph.maxDegreeVertex())
    {
    }

    KroneckerParams params;
    CsrGraph graph;
    DeviceGraphLayout layout;
    std::vector<std::uint8_t> image;
    std::uint64_t source;
};

std::vector<Addr>
recordBfs(const BfsSetup &setup, std::uint64_t source,
          BfsResult *result_out = nullptr)
{
    Runtime rt(setup.image, {.mechanism = Mechanism::OnDemand});
    std::vector<Addr> recording;
    BfsResult res;
    rt.spawnWorker([&](AccessEngine &dev) {
        AddressRecorder recorder(dev, recording);
        res = bfsDevice(recorder, setup.layout, source);
    });
    rt.run();
    if (result_out)
        *result_out = res;
    return recording;
}

TEST(ReplayMethodologyTest, SecondRunMatchesRecordingExactly)
{
    BfsSetup setup;
    BfsResult recorded_result;
    const auto recording =
        recordBfs(setup, setup.source, &recorded_result);
    ASSERT_GT(recording.size(), 1000u);

    // Run 2: same BFS against the software-queue device with the
    // recording loaded into the replay checker.
    Runtime rt(setup.image,
               {.mechanism = Mechanism::SwQueue,
                .deviceLatency = std::chrono::nanoseconds(200)});
    rt.emulatedDevice()->enableReplayCheck(rt.queuePairIndex(),
                                           recording, 64);
    BfsResult replayed;
    rt.spawnWorker([&](AccessEngine &dev) {
        replayed = bfsDevice(dev, setup.layout, setup.source);
    });
    rt.run();

    EXPECT_EQ(rt.emulatedDevice()->replayMisses(), 0u)
        << "a deterministic re-execution must match its recording";
    EXPECT_EQ(replayed.level, recorded_result.level);
    EXPECT_EQ(replayed.reached, recorded_result.reached);
}

TEST(ReplayMethodologyTest, DifferentExecutionMisses)
{
    BfsSetup setup;
    const auto recording = recordBfs(setup, setup.source);

    // Replay a BFS from a different source against the recording of
    // the original one: the streams diverge and requests miss.
    std::uint64_t other = setup.source;
    for (std::uint64_t v = 0; v < setup.graph.vertexCount(); ++v) {
        if (v != setup.source && !setup.graph.neighbors(v).empty()) {
            other = v;
            break;
        }
    }
    ASSERT_NE(other, setup.source);

    Runtime rt(setup.image,
               {.mechanism = Mechanism::SwQueue,
                .deviceLatency = std::chrono::nanoseconds(200)});
    rt.emulatedDevice()->enableReplayCheck(rt.queuePairIndex(),
                                           recording, 64);
    BfsResult replayed;
    rt.spawnWorker([&](AccessEngine &dev) {
        replayed = bfsDevice(dev, setup.layout, other);
    });
    rt.run();

    // Results are still *correct* — the on-demand fallback path —
    // but the replay checker reports spurious requests.
    EXPECT_GT(rt.emulatedDevice()->replayMisses(), 0u);
    const BfsResult expect = bfsReference(setup.graph, other);
    EXPECT_EQ(replayed.level, expect.level);
}

} // anonymous namespace
} // namespace kmu
