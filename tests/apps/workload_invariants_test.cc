/**
 * @file
 * Application-level invariants of the ported workloads: BFS tree
 * properties over the Kronecker graph, key-value store round trips,
 * and the Bloom filter's device-path false-positive behaviour.
 * These pin down *semantic* correctness of the app code, a level
 * above the per-structure unit tests.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "access/runtime.hh"
#include "apps/bloom/bloom_filter.hh"
#include "apps/graph/bfs.hh"
#include "apps/graph/csr.hh"
#include "apps/graph/kronecker.hh"
#include "apps/kv/kv_store.hh"
#include "common/random.hh"

namespace kmu
{
namespace
{

CsrGraph
smallGraph()
{
    KroneckerParams p;
    p.scale = 9;
    p.edgeFactor = 8;
    p.seed = 5;
    return CsrGraph(p.vertices(), generateKronecker(p));
}

TEST(WorkloadInvariantsTest, BfsLevelsFormValidTree)
{
    const CsrGraph graph = smallGraph();
    const std::uint64_t src = graph.maxDegreeVertex();
    const BfsResult res = bfsReference(graph, src);

    ASSERT_EQ(res.level.size(), graph.vertexCount());
    EXPECT_EQ(res.level[src], 0);

    std::uint64_t reached = 0;
    std::int64_t depth = -1;
    for (std::uint64_t v = 0; v < graph.vertexCount(); ++v) {
        const std::int64_t lv = res.level[v];
        if (lv < 0)
            continue;
        reached++;
        depth = std::max(depth, lv);

        std::int64_t best = lv;
        for (std::uint64_t n : graph.neighbors(v)) {
            const std::int64_t ln = res.level[n];
            // A neighbor of a reached vertex is reached, and BFS
            // levels across an edge differ by at most one.
            ASSERT_GE(ln, 0) << "unreached neighbor of reached " << v;
            ASSERT_LE(std::abs(ln - lv), 1);
            best = std::min(best, ln);
        }
        // Every non-source vertex was discovered from the previous
        // frontier: some neighbor sits exactly one level up.
        if (v != src && lv > 0) {
            EXPECT_EQ(best, lv - 1) << "vertex " << v;
        }
    }
    EXPECT_EQ(res.reached, reached);
    EXPECT_EQ(res.depth, depth);
    EXPECT_GE(res.edgesTraversed, res.reached - 1);
}

TEST(WorkloadInvariantsTest, BfsDeviceAgreesWithReference)
{
    const CsrGraph graph = smallGraph();
    const std::uint64_t src = graph.maxDegreeVertex();
    const BfsResult ref = bfsReference(graph, src);

    DeviceGraphLayout layout;
    auto image = buildDeviceImage(graph, layout);
    Runtime rt(std::move(image), {.mechanism = Mechanism::OnDemand});
    BfsResult dev;
    rt.spawnWorker([&](AccessEngine &engine) {
        dev = bfsDevice(engine, layout, src);
    });
    rt.run();

    EXPECT_EQ(dev.level, ref.level);
    EXPECT_EQ(dev.reached, ref.reached);
    EXPECT_EQ(dev.depth, ref.depth);
}

TEST(WorkloadInvariantsTest, KvEveryKeyRoundTrips)
{
    KvParams p;
    p.buckets = 1 << 8; // force chains: ~4 items per bucket
    KvBuilder builder(p);
    std::vector<std::string> keys;
    for (int i = 0; i < 1000; ++i) {
        keys.push_back("key-" + std::to_string(i));
        builder.put(keys.back(),
                    "value-" + std::to_string(i * 7) +
                        std::string(150, char('a' + i % 26)));
    }

    Runtime rt(builder.deviceImage(),
               {.mechanism = Mechanism::Prefetch});
    KvProber prober(p);
    bool ok = true;
    std::uint64_t misses = 0;
    rt.spawnWorker([&](AccessEngine &engine) {
        for (int i = 0; i < 1000; ++i) {
            const auto got = prober.get(engine, keys[i]);
            ok &= got.has_value() &&
                  *got == "value-" + std::to_string(i * 7) +
                              std::string(150, char('a' + i % 26));
        }
        // Absent keys (same shape, disjoint namespace) miss cleanly
        // even when they hash into populated buckets.
        for (int i = 0; i < 1000; ++i)
            misses += !prober.get(engine, "nokey-" +
                                              std::to_string(i));
    });
    rt.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(misses, 1000u);
}

TEST(WorkloadInvariantsTest, KvUpdateIsReadBack)
{
    KvParams p;
    p.buckets = 1 << 6;
    KvBuilder builder(p);
    for (int i = 0; i < 50; ++i) {
        builder.put("k" + std::to_string(i),
                    std::string(130, 'x'));
    }

    Runtime rt(builder.deviceImage(),
               {.mechanism = Mechanism::SwQueue,
                .deviceLatency = std::chrono::nanoseconds(200)});
    KvProber prober(p);
    bool updated = false, same_len_read = false;
    bool absent_rejected = false, resize_rejected = false;
    rt.spawnWorker([&](AccessEngine &engine) {
        const std::string fresh(130, 'y');
        updated = prober.update(engine, "k7", fresh);
        const auto got = prober.get(engine, "k7");
        same_len_read = got.has_value() && *got == fresh;
        absent_rejected =
            !prober.update(engine, "missing", fresh);
        resize_rejected =
            !prober.update(engine, "k8", std::string(10, 'z'));
    });
    rt.run();
    EXPECT_TRUE(updated);
    EXPECT_TRUE(same_len_read);
    EXPECT_TRUE(absent_rejected);
    EXPECT_TRUE(resize_rejected);
}

TEST(WorkloadInvariantsTest, BloomDeviceFprTracksTheory)
{
    BloomParams p;
    p.bits = 1 << 18;
    p.hashes = 4;
    BloomBuilder builder(p);
    Rng rng(21);
    const std::uint64_t n = 30000;
    for (std::uint64_t i = 0; i < n; ++i)
        builder.insert(rng.next());

    Runtime rt(builder.deviceImage(),
               {.mechanism = Mechanism::OnDemand});
    BloomProber prober(p);
    int fp = 0;
    const int probes = 20000;
    rt.spawnWorker([&](AccessEngine &engine) {
        Rng probe(909); // disjoint stream: all keys absent (whp)
        for (int i = 0; i < probes; ++i)
            fp += prober.contains(engine, probe.next());
    });
    rt.run();

    const double measured = double(fp) / probes;
    const double theory = p.theoreticalFpr(n);
    EXPECT_GT(theory, 0.01);
    EXPECT_NEAR(measured, theory, 0.5 * theory);
}

} // anonymous namespace
} // namespace kmu
