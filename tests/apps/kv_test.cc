/**
 * @file
 * Tests for the memcached-style KV store.
 */

#include <gtest/gtest.h>

#include "access/runtime.hh"
#include "apps/kv/kv_store.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace kmu
{
namespace
{

std::string
valueFor(std::uint64_t i, std::size_t len)
{
    std::string v(len, '\0');
    std::uint64_t state = i;
    for (auto &ch : v)
        ch = char('A' + splitMix64(state) % 26);
    return v;
}

class KvMechanismTest : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(KvMechanismTest, GetReturnsExactValues)
{
    KvParams p;
    p.buckets = 1 << 8;
    KvBuilder builder(p);
    constexpr int n = 500;
    for (int i = 0; i < n; ++i) {
        builder.put(csprintf("key-%04d", i),
                    valueFor(i, 100 + (i % 400)));
    }

    Runtime rt(builder.deviceImage(),
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(200)});
    KvProber prober(p);
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        for (int i = 0; i < n; ++i) {
            const auto got = prober.get(dev, csprintf("key-%04d", i));
            ok &= got.has_value() &&
                  *got == valueFor(i, 100 + (i % 400));
        }
        // Misses return nullopt.
        for (int i = 0; i < 100; ++i)
            ok &= !prober.get(dev, csprintf("no-%04d", i)).has_value();
    });
    rt.run();
    EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, KvMechanismTest,
                         ::testing::Values(Mechanism::OnDemand,
                                           Mechanism::Prefetch,
                                           Mechanism::SwQueue));

TEST(KvTest, CollidingChainsResolve)
{
    // One bucket: every item chains behind it.
    KvParams p;
    p.buckets = 1;
    KvBuilder builder(p);
    for (int i = 0; i < 50; ++i)
        builder.put(csprintf("chained-%d", i), valueFor(i, 64));

    Runtime rt(builder.deviceImage(),
               {.mechanism = Mechanism::OnDemand});
    KvProber prober(p);
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        for (int i = 0; i < 50; ++i) {
            const auto got = prober.get(dev, csprintf("chained-%d", i));
            ok &= got.has_value() && *got == valueFor(i, 64);
        }
        ok &= !prober.get(dev, "absent").has_value();
    });
    rt.run();
    EXPECT_TRUE(ok);
}

TEST(KvTest, ValueSizeEdgeCases)
{
    KvParams p;
    p.buckets = 16;
    KvBuilder builder(p);
    builder.put("empty", "");
    builder.put("one", "x");
    builder.put("line", std::string(64, 'y'));
    builder.put("line-plus", std::string(65, 'z'));
    builder.put("big", valueFor(9, 1000));

    Runtime rt(builder.deviceImage(),
               {.mechanism = Mechanism::Prefetch});
    KvProber prober(p);
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        ok &= prober.get(dev, "empty") == "";
        ok &= prober.get(dev, "one") == "x";
        ok &= prober.get(dev, "line") == std::string(64, 'y');
        ok &= prober.get(dev, "line-plus") == std::string(65, 'z');
        ok &= prober.get(dev, "big") == valueFor(9, 1000);
    });
    rt.run();
    EXPECT_TRUE(ok);
}

TEST(KvTest, MaxKeyLengthSupported)
{
    KvParams p;
    p.buckets = 4;
    KvBuilder builder(p);
    const std::string long_key(kvMaxKeyLen, 'k');
    builder.put(long_key, "value");

    Runtime rt(builder.deviceImage(),
               {.mechanism = Mechanism::OnDemand});
    KvProber prober(p);
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        ok &= prober.get(dev, long_key) == "value";
        // Same prefix, shorter: must not match.
        ok &= !prober.get(dev, long_key.substr(0, kvMaxKeyLen - 1))
                   .has_value();
    });
    rt.run();
    EXPECT_TRUE(ok);
}

TEST(KvTest, DuplicateKeyRejected)
{
    KvBuilder builder(KvParams{.buckets = 4});
    builder.put("dup", "a");
    EXPECT_DEATH(builder.put("dup", "b"), "duplicate");
}

TEST(KvTest, OverlongKeyRejected)
{
    KvBuilder builder(KvParams{.buckets = 4});
    EXPECT_DEATH(builder.put(std::string(kvMaxKeyLen + 1, 'k'), "v"),
                 "length");
}

TEST(KvTest, HashIsStable)
{
    EXPECT_EQ(kvHash("alpha"), kvHash("alpha"));
    EXPECT_NE(kvHash("alpha"), kvHash("beta"));
}

} // anonymous namespace
} // namespace kmu
