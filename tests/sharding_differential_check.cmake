# Sharding differential gate: the figure benches — all of which run
# the default shards=1 topology — must regenerate CSVs byte-identical
# to the artifacts committed under tests/artifacts/. Any drift means
# the multi-device topology layer leaked timing, stat-naming, or
# routing changes into the single-device model it is required to
# reproduce exactly.
#
# Invoked by ctest as:
#   cmake -DFIG02=<path> -DFIG07=<path> -DARTIFACT_DIR=<dir>
#         -DWORK_DIR=<dir> -P sharding_differential_check.cmake

if(NOT FIG02 OR NOT FIG07)
    message(FATAL_ERROR "pass -DFIG02=/-DFIG07=<paths to benches>")
endif()
if(NOT ARTIFACT_DIR)
    message(FATAL_ERROR "pass -DARTIFACT_DIR=<committed CSV dir>")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORK_DIR}/sharding_differential)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

# jobs=4 is safe: the sweep_determinism gate proves job count is
# output-neutral.
foreach(bench ${FIG02} ${FIG07})
    get_filename_component(name ${bench} NAME)
    execute_process(
        COMMAND ${bench} jobs=4 bench_json=
        WORKING_DIRECTORY ${dir}
        OUTPUT_FILE ${dir}/${name}.out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${name} failed (rc=${rc}): ${err}")
    endif()
endforeach()

file(GLOB produced ${dir}/*.csv)
if(NOT produced)
    message(FATAL_ERROR "benches produced no CSVs to compare")
endif()

foreach(csv ${produced})
    get_filename_component(name ${csv} NAME)
    if(NOT EXISTS ${ARTIFACT_DIR}/${name})
        message(FATAL_ERROR
            "no committed artifact for '${name}' in ${ARTIFACT_DIR}; "
            "if this figure is new, regenerate and commit its CSV")
    endif()
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${csv} ${ARTIFACT_DIR}/${name}
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR
            "'${name}' differs from the committed artifact: the "
            "shards=1 model no longer reproduces its pre-sharding "
            "output byte-for-byte (fresh copy in ${dir}; if the "
            "change is intentional, regenerate and commit the CSV)")
    endif()
endforeach()
message(STATUS
    "sharding differential check passed: shards=1 CSVs byte-identical "
    "to committed artifacts")
