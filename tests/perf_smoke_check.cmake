# Perf-smoke gate: the event-kernel microbench must run, report its
# events/sec measurement into the BENCH_sweep.json trajectory, and
# hold the kernel speedup vs the committed legacy-replica baseline.
#
# The gated quantities are same-process events-per-sec RATIOS, not
# absolute rates: all kernels run in the same process on the same
# machine, so ratios are stable across hosts while absolute floors
# would not be. A >30% drop against the committed baseline
# (tests/artifacts/event_kernel_baseline.json) fails, for both the
# serial ladder-vs-legacy ratio and the parallel-executor
# threads=1-vs-ladder ratio (which prices the epoch/mailbox/window
# machinery without needing spare cores). The threaded speedup
# points are recorded in the bench JSON and sanity-checked only when
# the host actually has cores to run the shard domains on.
#
# Invoked by ctest as:
#   cmake -DUBENCH=<path to ubench_event_kernel>
#         -DBASELINE=<path to event_kernel_baseline.json>
#         -DWORK_DIR=<dir> -P perf_smoke_check.cmake

if(NOT UBENCH OR NOT BASELINE)
    message(FATAL_ERROR "pass -DUBENCH= and -DBASELINE= paths")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORK_DIR}/perf_smoke)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})
set(bench_json ${dir}/BENCH_sweep.json)

execute_process(
    COMMAND ${UBENCH} events=500000 bench_json=${bench_json}
    WORKING_DIRECTORY ${dir}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "ubench_event_kernel failed (rc=${rc}): ${out}${err}")
endif()

# The events/sec self-measurement must land in the bench trajectory.
if(NOT EXISTS ${bench_json})
    message(FATAL_ERROR "microbench wrote no ${bench_json}")
endif()
file(READ ${bench_json} record)
if(NOT record MATCHES "\"events_per_s\": *([0-9.e+]+)")
    message(FATAL_ERROR
        "no events_per_s field in ${bench_json}: ${record}")
endif()
set(events_per_s ${CMAKE_MATCH_1})
if(NOT record MATCHES "\"ratio_vs_legacy\": *([0-9.e+]+)")
    message(FATAL_ERROR
        "no ratio_vs_legacy field in ${bench_json}: ${record}")
endif()
set(ratio ${CMAKE_MATCH_1})

file(READ ${BASELINE} baseline)
if(NOT baseline MATCHES "\"ratio_vs_legacy\": *([0-9.e+]+)")
    message(FATAL_ERROR
        "no ratio_vs_legacy in baseline ${BASELINE}: ${baseline}")
endif()
set(base_ratio ${CMAKE_MATCH_1})

# math(EXPR) is integer-only: scale both ratios to x100 fixed point.
function(ratio_x100 value out_var)
    if(value MATCHES "^([0-9]+)\\.([0-9])([0-9]?)")
        set(whole ${CMAKE_MATCH_1})
        set(tenth ${CMAKE_MATCH_2})
        set(hundredth "${CMAKE_MATCH_3}")
        if("${hundredth}" STREQUAL "")
            set(hundredth 0)
        endif()
        math(EXPR scaled
             "${whole} * 100 + ${tenth} * 10 + ${hundredth}")
    elseif(value MATCHES "^([0-9]+)$")
        math(EXPR scaled "${CMAKE_MATCH_1} * 100")
    else()
        message(FATAL_ERROR "unparseable ratio '${value}'")
    endif()
    set(${out_var} ${scaled} PARENT_SCOPE)
endfunction()

ratio_x100(${ratio} measured_x100)
ratio_x100(${base_ratio} baseline_x100)

# Fail on a >30% regression vs the committed baseline ratio.
math(EXPR floor_x100 "(${baseline_x100} * 70) / 100")

if(measured_x100 LESS floor_x100)
    message(FATAL_ERROR
        "event-kernel perf regression: ratio_vs_legacy=${ratio} is "
        ">30% below the committed baseline ${base_ratio} "
        "(floor ${floor_x100}/100). If the slowdown is intended, "
        "refresh tests/artifacts/event_kernel_baseline.json.")
endif()

# Parallel executor point: threads=1 runs the full epoch/window/
# mailbox machinery on one thread, so its ratio against the serial
# ladder kernel is machine-neutral and gates parallel-path
# regressions the same way.
if(NOT record MATCHES "\"parallel_t1_vs_ladder\": *([0-9.e+]+)")
    message(FATAL_ERROR
        "no parallel_t1_vs_ladder field in ${bench_json}: ${record}")
endif()
set(par_ratio ${CMAKE_MATCH_1})
if(NOT baseline MATCHES "\"parallel_t1_vs_ladder\": *([0-9.e+]+)")
    message(FATAL_ERROR
        "no parallel_t1_vs_ladder in baseline ${BASELINE}")
endif()
set(par_base ${CMAKE_MATCH_1})

ratio_x100(${par_ratio} par_measured_x100)
ratio_x100(${par_base} par_baseline_x100)
math(EXPR par_floor_x100 "(${par_baseline_x100} * 70) / 100")

if(par_measured_x100 LESS par_floor_x100)
    message(FATAL_ERROR
        "parallel-executor perf regression: "
        "parallel_t1_vs_ladder=${par_ratio} is >30% below the "
        "committed baseline ${par_base} (floor "
        "${par_floor_x100}/100): the epoch/mailbox path got "
        "slower. If the slowdown is intended, refresh "
        "tests/artifacts/event_kernel_baseline.json.")
endif()

# Threaded speedup: only meaningful with cores to spare. On capable
# hosts require that threading never *pessimizes* the executor
# catastrophically; the full >=2x scaling claim is validated on the
# multi-core CI runners via the recorded bench trajectory.
if(NOT record MATCHES "\"hw_threads\": *([0-9]+)")
    message(FATAL_ERROR "no hw_threads field in ${bench_json}")
endif()
set(hw ${CMAKE_MATCH_1})
if(NOT record MATCHES "\"parallel_speedup_vs_t1\": *([0-9.e+]+)")
    message(FATAL_ERROR
        "no parallel_speedup_vs_t1 field in ${bench_json}")
endif()
set(speedup ${CMAKE_MATCH_1})
if(hw GREATER_EQUAL 4)
    ratio_x100(${speedup} speedup_x100)
    if(speedup_x100 LESS 50)
        message(FATAL_ERROR
            "parallel executor slows down >2x with threads on a "
            "${hw}-core host (speedup ${speedup}x vs threads=1): "
            "barrier or mailbox contention regression")
    endif()
else()
    message(STATUS
        "threaded-speedup sanity check skipped: only ${hw} hw "
        "thread(s) on this host")
endif()

message(STATUS
    "perf smoke passed: ${events_per_s} events/s, "
    "${ratio}x vs legacy (baseline ${base_ratio}x), parallel t1 "
    "${par_ratio}x vs ladder (baseline ${par_base}x), threaded "
    "speedup ${speedup}x on ${hw} hw threads")
