# Perf-smoke gate: the event-kernel microbench must run, report its
# events/sec measurement into the BENCH_sweep.json trajectory, and
# hold the kernel speedup vs the committed legacy-replica baseline.
#
# The gated quantity is the new-kernel / legacy-kernel events-per-sec
# RATIO, not an absolute rate: both kernels run in the same process
# on the same machine, so the ratio is stable across hosts while an
# absolute floor would not be. A >30% drop against the committed
# baseline ratio (tests/artifacts/event_kernel_baseline.json) fails.
#
# Invoked by ctest as:
#   cmake -DUBENCH=<path to ubench_event_kernel>
#         -DBASELINE=<path to event_kernel_baseline.json>
#         -DWORK_DIR=<dir> -P perf_smoke_check.cmake

if(NOT UBENCH OR NOT BASELINE)
    message(FATAL_ERROR "pass -DUBENCH= and -DBASELINE= paths")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORK_DIR}/perf_smoke)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})
set(bench_json ${dir}/BENCH_sweep.json)

execute_process(
    COMMAND ${UBENCH} events=500000 bench_json=${bench_json}
    WORKING_DIRECTORY ${dir}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "ubench_event_kernel failed (rc=${rc}): ${out}${err}")
endif()

# The events/sec self-measurement must land in the bench trajectory.
if(NOT EXISTS ${bench_json})
    message(FATAL_ERROR "microbench wrote no ${bench_json}")
endif()
file(READ ${bench_json} record)
if(NOT record MATCHES "\"events_per_s\": *([0-9.e+]+)")
    message(FATAL_ERROR
        "no events_per_s field in ${bench_json}: ${record}")
endif()
set(events_per_s ${CMAKE_MATCH_1})
if(NOT record MATCHES "\"ratio_vs_legacy\": *([0-9.e+]+)")
    message(FATAL_ERROR
        "no ratio_vs_legacy field in ${bench_json}: ${record}")
endif()
set(ratio ${CMAKE_MATCH_1})

file(READ ${BASELINE} baseline)
if(NOT baseline MATCHES "\"ratio_vs_legacy\": *([0-9.e+]+)")
    message(FATAL_ERROR
        "no ratio_vs_legacy in baseline ${BASELINE}: ${baseline}")
endif()
set(base_ratio ${CMAKE_MATCH_1})

# math(EXPR) is integer-only: scale both ratios to x100 fixed point.
function(ratio_x100 value out_var)
    if(value MATCHES "^([0-9]+)\\.([0-9])([0-9]?)")
        set(whole ${CMAKE_MATCH_1})
        set(tenth ${CMAKE_MATCH_2})
        set(hundredth "${CMAKE_MATCH_3}")
        if("${hundredth}" STREQUAL "")
            set(hundredth 0)
        endif()
        math(EXPR scaled
             "${whole} * 100 + ${tenth} * 10 + ${hundredth}")
    elseif(value MATCHES "^([0-9]+)$")
        math(EXPR scaled "${CMAKE_MATCH_1} * 100")
    else()
        message(FATAL_ERROR "unparseable ratio '${value}'")
    endif()
    set(${out_var} ${scaled} PARENT_SCOPE)
endfunction()

ratio_x100(${ratio} measured_x100)
ratio_x100(${base_ratio} baseline_x100)

# Fail on a >30% regression vs the committed baseline ratio.
math(EXPR floor_x100 "(${baseline_x100} * 70) / 100")

if(measured_x100 LESS floor_x100)
    message(FATAL_ERROR
        "event-kernel perf regression: ratio_vs_legacy=${ratio} is "
        ">30% below the committed baseline ${base_ratio} "
        "(floor ${floor_x100}/100). If the slowdown is intended, "
        "refresh tests/artifacts/event_kernel_baseline.json.")
endif()

message(STATUS
    "perf smoke passed: ${events_per_s} events/s, "
    "${ratio}x vs legacy (baseline ${base_ratio}x)")
