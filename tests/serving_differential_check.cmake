# Serving differential gate: with the arrival generator off, the
# serving-capable binary must be byte-identical to the pre-serving
# model. The committed artifact captures the seed tree's kmu_sim CSV
# output across every mechanism (plus a sharded write-mix config);
# any drift means the admission gate, the retire hook, or the
# parked-thread scheduling changed a closed-loop code path it was
# supposed to leave untouched. Both spellings — no serving keys at
# all, and an explicit arrival=off — must match.
#
# Invoked by ctest as:
#   cmake -DKMU_SIM=<path> -DARTIFACT_DIR=<dir> -DWORK_DIR=<dir>
#         -P serving_differential_check.cmake

if(NOT KMU_SIM)
    message(FATAL_ERROR "pass -DKMU_SIM=<path to kmu_sim>")
endif()
if(NOT ARTIFACT_DIR)
    message(FATAL_ERROR "pass -DARTIFACT_DIR=<committed CSV dir>")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORK_DIR}/serving_differential)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

# Must mirror the config list the committed artifact was generated
# from (one CSV header + row per config, concatenated in order).
set(cfg_1 "")
set(cfg_2 mechanism=ondemand smt=2)
set(cfg_3 mechanism=swqueue threads=16)
set(cfg_4 mechanism=prefetch threads=10 latency_us=4)
set(cfg_5 mechanism=swqueue threads=8 shards=4 write_frac=0.2)

foreach(mode default off)
    set(out ${dir}/closed_loop_${mode}.csv)
    file(WRITE ${out} "")
    foreach(i RANGE 1 5)
        set(extra "")
        if(mode STREQUAL off)
            set(extra arrival=off)
        endif()
        execute_process(
            COMMAND ${KMU_SIM} csv=1 ${cfg_${i}} ${extra}
            OUTPUT_VARIABLE row
            RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                "kmu_sim closed-loop config ${i} (${mode}) failed "
                "(rc=${rc})")
        endif()
        file(APPEND ${out} "${row}")
    endforeach()

    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${out} ${ARTIFACT_DIR}/kmu_sim_closed_loop.csv
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR
            "closed-loop kmu_sim output (${mode}) differs from the "
            "committed pre-serving artifact: the serving hooks "
            "perturb the model when disabled (fresh copy: ${out})")
    endif()
endforeach()

message(STATUS
    "serving differential check passed: generator-off output "
    "byte-identical to the pre-serving artifact, with and without "
    "an explicit arrival=off")
