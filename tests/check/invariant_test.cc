/**
 * @file
 * Tests for the invariant-checker subsystem: the KMU_INVARIANT /
 * KMU_MODEL_CHECK machinery itself, and deliberately broken model
 * states that each wired-in conservation law must catch.
 */

#include <gtest/gtest.h>

#include "check/invariant.hh"
#include "check/sim_checker.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "core/sim_system.hh"
#include "device/replay_window.hh"
#include "mem/lfb.hh"
#include "mem/pcie_link.hh"
#include "mem/uncore_queue.hh"
#include "queue/spsc_ring.hh"

namespace kmu
{
namespace
{

TEST(InvariantTest, PassingCheckIsSilent)
{
    const std::uint64_t before = check::violationCount();
    KMU_INVARIANT(1 + 1 == 2, "arithmetic broke");
    KMU_MODEL_CHECK(true, "truth broke");
    EXPECT_EQ(check::violationCount(), before);
}

TEST(InvariantTest, TrapCapturesViolation)
{
    check::ViolationTrap trap;
    EXPECT_THROW(KMU_INVARIANT(false, "forced failure %d", 42),
                 check::ViolationError);
    EXPECT_EQ(trap.caught(), 1u);
    EXPECT_NE(trap.lastMessage().find("forced failure 42"),
              std::string::npos);
}

TEST(InvariantTest, UntrappedViolationPanics)
{
    EXPECT_DEATH(KMU_INVARIANT(false, "fatal by default"),
                 "fatal by default");
}

TEST(InvariantTest, ModelCheckTogglesAtRuntime)
{
#ifdef KMU_NO_MODEL_CHECKS
    GTEST_SKIP() << "model checks compiled out";
#else
    check::ViolationTrap trap;
    check::setModelChecks(false);
    KMU_MODEL_CHECK(false, "must be skipped while disabled");
    EXPECT_EQ(trap.caught(), 0u);
    check::setModelChecks(true);
    EXPECT_THROW(KMU_MODEL_CHECK(false, "armed again"),
                 check::ViolationError);
    EXPECT_EQ(trap.caught(), 1u);
#endif
}

TEST(InvariantTest, ModelCheckDoesNotEvaluateWhenDisabled)
{
#ifdef KMU_NO_MODEL_CHECKS
    GTEST_SKIP() << "model checks compiled out";
#else
    check::setModelChecks(false);
    int evaluations = 0;
    KMU_MODEL_CHECK((++evaluations, true), "unused");
    EXPECT_EQ(evaluations, 0);
    check::setModelChecks(true);
    KMU_MODEL_CHECK((++evaluations, true), "unused");
    EXPECT_EQ(evaluations, 1);
#endif
}

// --- Deliberately broken model states ------------------------------

TEST(BrokenModelTest, LfbFillWithoutEntry)
{
    EventQueue eq;
    StatGroup root("root");
    Lfb lfb("lfb", eq, 4, &root);
    check::ViolationTrap trap;
    EXPECT_THROW(lfb.fill(0x1000), check::ViolationError);
    EXPECT_NE(trap.lastMessage().find("no LFB entry"),
              std::string::npos);
}

TEST(BrokenModelTest, UncoreReleaseUnderflow)
{
    EventQueue eq;
    StatGroup root("root");
    UncoreQueue q("uncore", eq, 2, &root);
    check::ViolationTrap trap;
    EXPECT_THROW(q.release(), check::ViolationError);
    EXPECT_NE(trap.lastMessage().find("empty"), std::string::npos);
}

TEST(BrokenModelTest, EventScheduledInThePast)
{
    EventQueue eq;
    eq.scheduleLambda(1000, [] {});
    eq.run(2000);
    CallbackEvent late("late", [] {});
    check::ViolationTrap trap;
    EXPECT_THROW(eq.schedule(&late, 500), check::ViolationError);
    EXPECT_NE(trap.lastMessage().find("past"), std::string::npos);
}

TEST(BrokenModelTest, PcieUsefulBytesExceedPayload)
{
    EventQueue eq;
    StatGroup root("root");
    PcieLink link("pcie", eq, PcieLinkParams{}, &root);
    check::ViolationTrap trap;
    EXPECT_THROW(link.send(LinkDir::ToHost, 64, 128, [] {}),
                 check::ViolationError);
    EXPECT_NE(trap.lastMessage().find("useful bytes exceed payload"),
              std::string::npos);
}

TEST(BrokenModelTest, ReplayWindowFrontierStaysConsistent)
{
    // The stale-epoch invariant (no match below the aged-out
    // frontier) cannot be tripped through the public API — aged-out
    // entries leave the window — so this exercises every legal path
    // around the frontier: in-window reordering, deep skips that age
    // entries out, and spurious misses, asserting the frontier
    // accounting the invariant relies on.
    std::uint64_t next = 0;
    ReplayWindow win(
        [&](Addr &out) {
            out = Addr(next++ * cacheLineSize);
            return true;
        },
        4);

    // Match seq 3 -> entries 0..2 linger (all within a window of the
    // match), nothing aged out yet.
    std::uint64_t seq = 0;
    EXPECT_EQ(win.lookup(3 * cacheLineSize, &seq),
              ReplayWindow::Result::Matched);
    EXPECT_EQ(seq, 3u);
    EXPECT_EQ(win.agedOut(), 0u);

    // Matching the still-buffered oldest entry is legal (reordered
    // request), not stale.
    EXPECT_EQ(win.lookup(0, &seq), ReplayWindow::Result::Matched);
    EXPECT_EQ(seq, 0u);
    EXPECT_GE(win.outOfOrderMatches(), 1u);

    // Window now holds seqs {1,2,4,5}. Matching seq 5 leaves seq 1
    // exactly a window behind (not yet stale), but matching seq 6
    // slides the front a full window past it: it ages out for good.
    EXPECT_EQ(win.lookup(5 * cacheLineSize, &seq),
              ReplayWindow::Result::Matched);
    EXPECT_EQ(seq, 5u);
    EXPECT_EQ(win.agedOut(), 0u);
    EXPECT_EQ(win.lookup(6 * cacheLineSize, &seq),
              ReplayWindow::Result::Matched);
    EXPECT_EQ(seq, 6u);
    EXPECT_EQ(win.agedOut(), 1u);

    // Seq 2 survived the slide and remains legally matchable.
    EXPECT_EQ(win.lookup(2 * cacheLineSize, &seq),
              ReplayWindow::Result::Matched);
    EXPECT_EQ(seq, 2u);

    // An address the stream never recorded is a spurious miss.
    EXPECT_EQ(win.lookup(Addr(1) << 40), ReplayWindow::Result::Miss);
    EXPECT_GE(win.misses(), 1u);
}

TEST(BrokenModelTest, SimCheckerCatchesFailingCheck)
{
    EventQueue eq;
    StatGroup root("root");
    SimChecker checker("checker", eq, tickPerUs, &root);

    bool healthy = true;
    checker.addCheck("toy_conservation", [&]() {
        KMU_INVARIANT(healthy, "toy model went inconsistent");
    });

    checker.runChecks(); // healthy: no violation

    healthy = false;
    check::ViolationTrap trap;
    EXPECT_THROW(checker.runChecks(), check::ViolationError);
    EXPECT_NE(trap.lastMessage().find("toy model went inconsistent"),
              std::string::npos);
    EXPECT_EQ(checker.checkCount(), 1u);
}

TEST(BrokenModelTest, SimCheckerSweepsPeriodically)
{
    EventQueue eq;
    StatGroup root("root");
    SimChecker checker("checker", eq, tickPerUs, &root);
    std::uint64_t runs = 0;
    checker.addCheck("count_sweeps", [&]() { ++runs; });
    checker.start();

    // Keep the queue busy for 10 us of simulated time; the checker
    // must sweep roughly once per microsecond and then let the queue
    // drain (it never keeps an empty queue alive).
    for (int i = 1; i <= 10; ++i)
        eq.scheduleLambda(Tick(i) * tickPerUs, [] {});
    eq.run();
    EXPECT_GE(runs, 5u);
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_EQ(checker.sweepsRun.value(), runs);
}

TEST(SimSystemCheckerTest, HealthySystemSweepsClean)
{
    SystemConfig cfg;
    cfg.mechanism = Mechanism::Prefetch;
    cfg.backing = Backing::Device;
    cfg.numCores = 2;
    cfg.warmup = microseconds(5);
    cfg.measure = microseconds(20);

    const std::uint64_t before = check::violationCount();
    SimSystem sys(cfg);
    EXPECT_GE(sys.invariantChecker().checkCount(), 3u);
    sys.run();
    // The periodic sweeps ran and found a consistent model.
    EXPECT_GT(sys.invariantChecker().sweepsRun.value(), 0u);
    EXPECT_EQ(check::violationCount(), before);
}

} // anonymous namespace
} // namespace kmu
