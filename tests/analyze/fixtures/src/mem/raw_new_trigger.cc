// Fixture: MUST trigger [raw-new].
namespace kmu
{

struct Buffer
{
    int *data;
};

Buffer
makeBuffer()
{
    Buffer b;
    b.data = new int[64];
    return b;
}

void
freeBuffer(Buffer &b)
{
    delete[] b.data;
}

} // namespace kmu
