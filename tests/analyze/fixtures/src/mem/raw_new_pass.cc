// Fixture: MUST be clean for [raw-new].
#include <memory>
#include <vector>

namespace kmu
{

struct Buffer
{
    std::vector<int> data;
    std::unique_ptr<int> one;
};

Buffer
makeBuffer()
{
    Buffer b;
    b.data.resize(64);
    b.one = std::make_unique<int>(7);
    return b;
}

// Deleted special members must never be confused with delete-exprs.
struct Pinned
{
    Pinned(const Pinned &) = delete;
    Pinned &operator=(const Pinned &) = delete;
};

// A placement-new shim at an audited boundary, explicitly waived:
void *stagingNew(void *p); // kmu-analyze: allow(raw-new)

} // namespace kmu
