// Fixture: MUST trigger [capability].
// The health controller's lock-free observer surface — a packed
// per-shard state word — shared across threads without an
// ordering-contract annotation.
#include <atomic>
#include <cstdint>

namespace kmu
{
namespace health
{

class BareController
{
  public:
    std::uint64_t snapshot() const
    {
        return statesWord.load(std::memory_order_acquire);
    }

  private:
    std::atomic<std::uint64_t> statesWord{0};
};

// Per-shard epoch counters published to stats dumpers.
extern std::atomic<std::uint64_t> gEpochsClosed;

} // namespace health
} // namespace kmu
