// Fixture: MUST be clean for [capability].
// The health controller's shared atomics with their contracts named
// (mirrors src/health/health.hh).
#include <atomic>
#include <cstdint>

// Stand-in for common/thread_annotations.hh (fixtures are analyzed,
// not compiled): the annotation macros expand to nothing.
#define KMU_ATOMIC_ROLE(...)
#define KMU_GUARDED_BY(x)

namespace kmu
{
namespace health
{

class AnnotatedController
{
  public:
    std::uint64_t snapshot() const
    {
        return statesWord.load(std::memory_order_acquire);
    }

  private:
    // 2 state bits per shard: written on the control thread at every
    // transition, read by observers without synchronization.
    std::atomic<std::uint64_t> statesWord
        KMU_ATOMIC_ROLE(control_writes, observers_read){0};
};

extern std::atomic<std::uint64_t> gEpochsClosed
    KMU_ATOMIC_ROLE(control_writes, dumpers_read);

// The controller hands observers a plain pointer to the word; the
// pointer itself owns no contract — not flagged.
std::atomic<std::uint64_t> *gSnapshotView = nullptr;

// Epoch scratch local to the control thread, waived:
std::atomic<std::uint64_t> gEpochScratch{0}; // kmu-analyze: allow(capability)

} // namespace health
} // namespace kmu
