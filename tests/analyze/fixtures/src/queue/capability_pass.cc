// Fixture: MUST be clean for [capability].
#include <atomic>

// Stand-in for common/thread_annotations.hh (fixtures are analyzed,
// not compiled): the annotation macros expand to nothing.
#define KMU_ATOMIC_ROLE(...)
#define KMU_GUARDED_BY(x)

namespace kmu
{

struct AnnotatedRing
{
    std::atomic<unsigned long> head
        KMU_ATOMIC_ROLE(producer_writes, both_read){0};
    std::atomic<unsigned long> tail
        KMU_ATOMIC_ROLE(consumer_writes, both_read){0};
};

extern std::atomic<int> gCounter
    KMU_ATOMIC_ROLE(main_writes, all_read);

// Aliases and pointers don't own the contract; not flagged.
using AtomicWord = std::atomic<unsigned long>;
std::atomic<int> *gCounterAlias = nullptr;

// A process-local atomic with no cross-thread readers, waived:
std::atomic<int> gScratch{0}; // kmu-analyze: allow(capability)

} // namespace kmu
