// Fixture: MUST be clean for [include-guards].
#ifndef KMU_QUEUE_INCLUDE_GUARDS_PASS_HH
#define KMU_QUEUE_INCLUDE_GUARDS_PASS_HH

namespace kmu
{
struct Nothing
{
};
} // namespace kmu

#endif // KMU_QUEUE_INCLUDE_GUARDS_PASS_HH
