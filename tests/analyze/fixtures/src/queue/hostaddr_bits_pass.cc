// Fixture: MUST be clean for [hostaddr-bits].
#include <iomanip>
#include <iostream>

namespace kmu
{

using Addr = unsigned long long;

// The blessed-helper idiom: the layout lives in descriptor.hh /
// topology.hh and everyone else calls through.
struct RequestDescriptor
{
    static unsigned hostTag(Addr a);
    static Addr hostPtr(Addr a);
};

unsigned
viaHelpers(Addr hostAddr)
{
    return RequestDescriptor::hostTag(hostAddr);
}

// Stream formatting with a width of 48 must never be mistaken for
// address math, even in a line mentioning an address.
void
printAddr(Addr hostAddr)
{
    std::cout << std::setw(48) << hostAddr << "\n";
}

// Shifts of unrelated quantities (a 48-bit *count*, not tag bits in
// an address) are only reported when the statement smells of
// address math; this one is waived at an audited site.
Addr
packCount(Addr count, unsigned hostShard)
{
    return (count << 8) |
           (Addr(hostShard) << 56); // kmu-analyze: allow(hostaddr-bits)
}

} // namespace kmu
