// Fixture: MUST trigger [capability].
// Shared atomics without an ordering-contract annotation.
#include <atomic>

namespace kmu
{

struct BareRing
{
    std::atomic<unsigned long> head{0};
    std::atomic<unsigned long> tail{0};
};

extern std::atomic<int> gBareCounter;

} // namespace kmu
