// Fixture: MUST trigger [include-guards] (wrong guard name).
#ifndef SOME_RANDOM_GUARD_HH
#define SOME_RANDOM_GUARD_HH

namespace kmu
{
struct Nothing
{
};
} // namespace kmu

#endif // SOME_RANDOM_GUARD_HH
