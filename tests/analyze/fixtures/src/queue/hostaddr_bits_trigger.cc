// Fixture: MUST trigger [hostaddr-bits].
// Open-coded tag extraction outside the blessed helper files: the
// layout (gen 48..55, shard 56..61) is duplicated and will rot.
namespace kmu
{

using Addr = unsigned long long;

unsigned
openCodedGenTag(Addr hostAddr)
{
    return unsigned((hostAddr >> 48) & 0xff);
}

Addr
openCodedStrip(Addr hostAddr)
{
    return hostAddr & ~Addr(0xff000000000000ull << 8);
}

unsigned
openCodedShard(Addr hostAddr)
{
    return unsigned((hostAddr & 0x3f00000000000000ull) >> 56);
}

} // namespace kmu
