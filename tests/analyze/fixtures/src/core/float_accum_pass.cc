// Fixture: MUST be clean for [float-accum].
namespace kmu
{

// Integer accumulation with one final conversion: order-independent.
double
meanLatencyNs(const unsigned long long *ticks, int n)
{
    unsigned long long total = 0;
    for (int i = 0; i < n; ++i)
        total += ticks[i];
    return n ? double(total) / n : 0.0;
}

// A float accumulation over an order-fixed sequence at an audited
// site, explicitly waived:
double
auditedSum(const double *xs, int n)
{
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += xs[i]; // kmu-analyze: allow(float-accum)
    return sum;
}

} // namespace kmu
