// Fixture: MUST trigger [float-accum].
// Floating-point summation in deterministic code: the result depends
// on accumulation order.
namespace kmu
{

double
meanLatency(const double *samples, int n)
{
    double total = 0.0;
    for (int i = 0; i < n; ++i)
        total += samples[i];
    return n ? total / n : 0.0;
}

} // namespace kmu
