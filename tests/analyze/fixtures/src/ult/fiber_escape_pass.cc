// Fixture: MUST be clean for [fiber-escape].
#include <cstddef>
#include <vector>

namespace kmu
{

struct Scheduler
{
    template <typename F> void spawn(F &&);
    void run();
};

struct Slot
{
    int value;
};

namespace thisFiber
{
void yield();
} // namespace thisFiber

// By-reference capture is fine when the frame outlives the fibers:
// run() joins them before the function returns.
void
spawnAndJoin(Scheduler &sched)
{
    int local = 42;
    sched.spawn([&]() { local++; });
    sched.run();
}

// Re-look the element up after resuming: indices stay valid across
// reallocation, references do not.
int
indexAcrossYield(std::vector<Slot> &slots, std::size_t i)
{
    thisFiber::yield();
    return slots[i].value;
}

// A ref held across yield into a deque whose elements are
// pointer-stable, explicitly waived:
int
stableAcrossYield(std::vector<Slot> &slots)
{
    Slot &slot = slots[0]; // kmu-analyze: allow(fiber-escape)
    thisFiber::yield();
    return slot.value;
}

} // namespace kmu
