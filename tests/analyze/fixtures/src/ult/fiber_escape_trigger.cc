// Fixture: MUST trigger [fiber-escape] (both sub-patterns).
#include <vector>

namespace kmu
{

struct Scheduler
{
    template <typename F> void spawn(F &&);
    void run();
};

struct Slot
{
    int value;
};

namespace thisFiber
{
void yield();
} // namespace thisFiber

// Sub-pattern 1: the lambda captures the frame by reference but the
// function returns without run(); the fiber runs later against a
// dead stack frame.
void
spawnAndLeak(Scheduler &sched)
{
    int local = 42;
    sched.spawn([&]() { local++; });
}

// Sub-pattern 2: a reference into a vector element is used after a
// yield; another fiber may have grown the vector meanwhile,
// invalidating the reference.
int
refAcrossYield(std::vector<Slot> &slots)
{
    Slot &slot = slots[0];
    thisFiber::yield();
    return slot.value;
}

} // namespace kmu
