// Fixture: MUST be clean for [wall-clock].
// Simulated time comes from the event queue; the one legitimate
// wall-clock read (a self-measurement utility) carries a waiver.
namespace kmu
{

using Tick = unsigned long long;

struct EventQueue
{
    Tick now = 0;
    Tick curTick() const { return now; }
};

Tick
goodTimestamp(const EventQueue &eq)
{
    return eq.curTick();
}

// Self-timing of the analyzer harness itself, waived by design:
// kmu-analyze: allow(wall-clock)
extern unsigned long hostClockForSelfMeasurement();

} // namespace kmu
