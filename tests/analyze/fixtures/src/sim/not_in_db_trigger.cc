// Fixture: NOT in the fixture compile database. With --compile-db
// given, this translation unit must be skipped entirely, violations
// and all (it stands in for generated/experimental code).
#include <cstdlib>

namespace kmu
{

int
wouldBeFlagged()
{
    return rand();
}

} // namespace kmu
