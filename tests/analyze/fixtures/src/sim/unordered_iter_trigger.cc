// Fixture: MUST trigger [unordered-iter].
// Iterating an unordered map straight into output: the row order is
// whatever the hash table happens to produce.
#include <cstdio>
#include <string>
#include <unordered_map>

namespace kmu
{

void
dumpCsv(const std::unordered_map<std::string, long> &stats)
{
    for (const auto &entry : stats)
        printf("%s,%ld\n", entry.first.c_str(), entry.second);
}

} // namespace kmu
