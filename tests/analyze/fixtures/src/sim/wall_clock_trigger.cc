// Fixture: MUST trigger [wall-clock].
// A deterministic-core TU (under sim/) reading the OS clock. The
// analyzer has to flag every spelling below.
#include <chrono>
#include <ctime>

namespace kmu
{

unsigned long
badTimestamp()
{
    auto tp = std::chrono::steady_clock::now();
    return static_cast<unsigned long>(
        tp.time_since_epoch().count());
}

unsigned long
alsoBad()
{
    return static_cast<unsigned long>(time(nullptr));
}

} // namespace kmu
