// Fixture: MUST be clean for [unordered-iter].
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

namespace kmu
{

// Sort into a vector first: deterministic output order.
void
dumpCsvSorted(const std::unordered_map<std::string, long> &stats)
{
    std::vector<std::pair<std::string, long>> rows(stats.begin(),
                                                   stats.end());
    std::sort(rows.begin(), rows.end());
    for (const auto &row : rows)
        printf("%s,%ld\n", row.first.c_str(), row.second);
}

// Pure aggregation without output: order-independent, not flagged.
long
totalOf(const std::unordered_map<std::string, long> &stats)
{
    long sum = 0;
    for (const auto &entry : stats)
        sum += entry.second;
    return sum;
}

// Output over unordered iteration, explicitly waived (a debug-only
// dump whose order genuinely does not matter):
void
debugDump(const std::unordered_map<std::string, long> &stats)
{
    // kmu-analyze: allow(unordered-iter)
    for (const auto &entry : stats)
        printf("%s\n", entry.first.c_str());
}

} // namespace kmu
