// Fixture: MUST be clean for [unseeded-rng].
// Seeded, deterministic randomness in the repo idiom.
namespace kmu
{

struct Rng
{
    explicit Rng(unsigned long long seed) : state(seed) {}
    unsigned long long next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state;
    }
    unsigned long long state;
};

unsigned long long
goodRandom()
{
    Rng rng(0x5eed);
    return rng.next();
}

// Entropy for a non-reproducible demo mode, explicitly waived:
extern unsigned seedFromEntropy(); // kmu-analyze: allow(unseeded-rng)

} // namespace kmu
