// Fixture: MUST trigger [unseeded-rng].
#include <cstdlib>
#include <random>

namespace kmu
{

int
badRandom()
{
    return rand();
}

unsigned
alsoBad()
{
    std::random_device rd;
    return rd();
}

} // namespace kmu
