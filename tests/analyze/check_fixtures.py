#!/usr/bin/env python3
"""Fixture gate for tools/kmu_analyze.py.

Every file under fixtures/src is labeled by its name:

    <rule>_trigger.{cc,hh}   analyzed alone, the analyzer must exit 1
                             and report at least one <rule> finding
                             at exactly the marked lines' file;
    <rule>_pass.{cc,hh}      analyzed alone, the analyzer must exit 0
                             (these contain near-misses plus waived
                             violations, so they also prove the
                             suppression syntax).

On top of the per-fixture checks this driver verifies:

  - a whole-tree run over fixtures/src reports every trigger rule
    and exits 1;
  - compile-database filtering: not_in_db_trigger.cc is listed in no
    compile DB entry, so with --compile-db it must not be scanned
    (its violation must not appear);
  - the deprecated kmu_lint.py shim still fails on a folded-rule
    trigger with the historical exit code.

Exit 0 when every expectation holds, 1 otherwise.
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys

NAME_RE = re.compile(r"(?P<rule>[a-z0-9_]+)_(?P<kind>trigger|pass)$")

# Fixtures excluded from the generated compile database on purpose.
NOT_IN_DB = {"not_in_db_trigger.cc"}


def rule_of(path):
    m = NAME_RE.match(path.stem)
    if not m:
        return None, None
    return m.group("rule").replace("_", "-"), m.group("kind")


def run_analyzer(analyzer, args):
    proc = subprocess.run(
        [sys.executable, str(analyzer)] + [str(a) for a in args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def make_compile_db(fixtures_src, workdir):
    """A compile database naming every fixture TU except the
    deliberately-excluded ones."""
    entries = []
    for cc in sorted(fixtures_src.rglob("*.cc")):
        if cc.name in NOT_IN_DB:
            continue
        entries.append({
            "directory": str(fixtures_src),
            "file": str(cc),
            "command": f"c++ -std=c++17 -c {cc}",
        })
    db = workdir / "compile_commands.json"
    db.write_text(json.dumps(entries, indent=1), encoding="utf-8")
    return db


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--analyzer", type=pathlib.Path, required=True)
    ap.add_argument("--lint-shim", type=pathlib.Path, required=True)
    ap.add_argument("--fixtures", type=pathlib.Path, required=True,
                    help="the fixtures/ directory (holding src/)")
    ap.add_argument("--workdir", type=pathlib.Path, required=True)
    args = ap.parse_args(argv)

    fixtures_src = (args.fixtures / "src").resolve()
    if not fixtures_src.is_dir():
        print(f"no fixture tree at {fixtures_src}", file=sys.stderr)
        return 1
    args.workdir.mkdir(parents=True, exist_ok=True)
    db = make_compile_db(fixtures_src, args.workdir.resolve())

    failures = []
    checked = 0

    def expect(label, ok, detail=""):
        nonlocal checked
        checked += 1
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] {label}")
        if not ok:
            failures.append(label + (f": {detail}" if detail else ""))

    # Per-fixture expectations -----------------------------------------
    fixture_rules = set()
    for path in sorted(fixtures_src.rglob("*")):
        if path.suffix not in (".cc", ".hh"):
            continue
        rule, kind = rule_of(path)
        if rule is None:
            failures.append(f"unlabeled fixture: {path.name}")
            continue
        rel = path.relative_to(fixtures_src)
        rc, out, err = run_analyzer(
            args.analyzer, ["--root", fixtures_src, path])
        if kind == "trigger":
            if rule != "not-in-db":
                fixture_rules.add(rule)
                expect(f"{rel}: exits 1 and reports [{rule}]",
                       rc == 1 and f"[{rule}]" in out,
                       f"rc={rc} out={out!r}")
            else:
                # Scanned without a DB, its violation must show.
                expect(f"{rel}: flagged when no compile DB is given",
                       rc == 1 and "[unseeded-rng]" in out,
                       f"rc={rc} out={out!r}")
        else:
            expect(f"{rel}: clean (near-misses and waivers)",
                   rc == 0, f"rc={rc} out={out!r}")

    # Whole-tree run: every trigger rule fires at once ------------------
    rc, out, err = run_analyzer(args.analyzer,
                                ["--root", fixtures_src, fixtures_src])
    expect("whole tree exits 1", rc == 1, f"rc={rc}")
    for rule in sorted(fixture_rules):
        expect(f"whole tree reports [{rule}]", f"[{rule}]" in out,
               out)

    # Compile-DB filtering: the excluded TU disappears ------------------
    rc, out, err = run_analyzer(
        args.analyzer,
        ["--root", fixtures_src, "--compile-db", db, fixtures_src])
    expect("compile DB skips not_in_db_trigger.cc",
           "not_in_db_trigger" not in out, out)
    expect("compile DB run still fails on the remaining triggers",
           rc == 1, f"rc={rc}")

    # Deprecated shim: folded rule, historical exit code ----------------
    shim_target = fixtures_src / "mem" / "raw_new_trigger.cc"
    proc = subprocess.run(
        [sys.executable, str(args.lint_shim), str(shim_target)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    expect("kmu_lint shim fails on a folded-rule trigger",
           proc.returncode == 1 and "[raw-new]" in proc.stdout,
           f"rc={proc.returncode} out={proc.stdout!r}")
    rc, out, err = run_analyzer(args.analyzer,
                                ["--rules", "no-such-rule",
                                 shim_target])
    expect("unknown rule name is a usage error (exit 2)", rc == 2,
           f"rc={rc}")

    print(f"check_fixtures: {checked} checks, "
          f"{len(failures)} failure(s)")
    for f in failures:
        print(f"  FAIL {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
