/**
 * @file
 * Unit tests for the tracing core: hook gating, ring wraparound,
 * clock selection, the binary file roundtrip, span summarization,
 * and the exporters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "common/units.hh"
#include "trace/export.hh"
#include "trace/trace.hh"

namespace
{

using namespace kmu;
using trace::Kind;
using trace::Phase;
using trace::Record;
using trace::TraceBuffer;

/** Installs a sink for the test body, always removes it on exit. */
class ScopedSink
{
  public:
    explicit ScopedSink(TraceBuffer &buf) { trace::setSink(&buf); }
    ~ScopedSink() { trace::setSink(nullptr); }
};

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(TraceHooks, NoSinkRecordsNothing)
{
    ASSERT_FALSE(trace::active());
    // With no sink these are pure no-ops; nothing to observe beyond
    // "does not crash", which is the contract for every figure bench.
    trace::begin(Kind::PcieTlp, 1);
    trace::end(Kind::PcieTlp, 1);
    trace::instant(Kind::Doorbell, 2);
    trace::counter(Kind::QueueDepth, 3, 7);

    TraceBuffer buf(16);
    {
        ScopedSink sink(buf);
        ASSERT_TRUE(trace::active());
        trace::begin(Kind::PcieTlp, 1, 5, 64);
        trace::end(Kind::PcieTlp, 1, 5);
    }
    ASSERT_FALSE(trace::active());
    trace::instant(Kind::Doorbell, 9); // after removal: dropped
    EXPECT_EQ(buf.recorded(), 2u);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.at(0).phase, Phase::Begin);
    EXPECT_EQ(buf.at(0).id, 1u);
    EXPECT_EQ(buf.at(0).track, 5u);
    EXPECT_EQ(buf.at(0).arg, 64u);
    EXPECT_EQ(buf.at(1).phase, Phase::End);
}

TEST(TraceBufferTest, LogicalClockTicksPerRecord)
{
    TraceBuffer buf(8);
    buf.record(Kind::Doorbell, Phase::Instant, 0, 0, 0);
    buf.record(Kind::Doorbell, Phase::Instant, 0, 0, 0);
    buf.record(Kind::Doorbell, Phase::Instant, 0, 0, 0);
    EXPECT_EQ(buf.at(0).tick, 0u);
    EXPECT_EQ(buf.at(1).tick, 1u);
    EXPECT_EQ(buf.at(2).tick, 2u);
}

TEST(TraceBufferTest, InstalledClockStampsRecords)
{
    TraceBuffer buf(8);
    Tick now = 100;
    buf.setClock([&now] { return now; });
    buf.record(Kind::Doorbell, Phase::Instant, 0, 0, 0);
    now = 250;
    buf.record(Kind::Doorbell, Phase::Instant, 0, 0, 0);
    EXPECT_EQ(buf.at(0).tick, 100u);
    EXPECT_EQ(buf.at(1).tick, 250u);
}

TEST(TraceBufferTest, RingKeepsNewestRecords)
{
    TraceBuffer buf(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        buf.record(Kind::Doorbell, Phase::Instant, i, 0, 0);
    EXPECT_EQ(buf.recorded(), 10u);
    EXPECT_EQ(buf.size(), 4u);
    // Oldest-first: ids 6, 7, 8, 9 survive.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(buf.at(i).id, 6u + i);
    const std::vector<Record> snap = buf.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap.front().id, 6u);
    EXPECT_EQ(snap.back().id, 9u);
}

TEST(TraceBufferTest, ClearRestartsLogicalClock)
{
    TraceBuffer buf(4);
    buf.record(Kind::Doorbell, Phase::Instant, 0, 0, 0);
    buf.registerName(42, "answer");
    buf.clear();
    EXPECT_EQ(buf.recorded(), 0u);
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_TRUE(buf.names().empty());
    buf.record(Kind::Doorbell, Phase::Instant, 0, 0, 0);
    EXPECT_EQ(buf.at(0).tick, 0u);
}

TEST(TraceBufferTest, RegisterNameIsIdempotent)
{
    TraceBuffer buf(4);
    buf.registerName(7, "first");
    buf.registerName(7, "second"); // ignored: first wins
    buf.registerName(8, "other");
    const auto names = buf.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0].second, "first");
    EXPECT_EQ(names[1].second, "other");
}

TEST(TraceBufferTest, NameIdIsStableAndRegisters)
{
    const std::uint64_t id = trace::nameId("lfb0.in_use");
    EXPECT_EQ(id, trace::nameId("lfb0.in_use"));
    EXPECT_NE(id, trace::nameId("lfb1.in_use"));

    TraceBuffer buf(4);
    {
        ScopedSink sink(buf);
        trace::nameId("series_a");
    }
    const auto names = buf.names();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0].second, "series_a");
}

TEST(TraceBufferTest, FileRoundtripPreservesEverything)
{
    TraceBuffer buf(8);
    Tick now = 5;
    buf.setClock([&now] { return now; });
    buf.record(Kind::PcieTlp, Phase::Begin, 0x1234, 64, 3);
    now = 905;
    buf.record(Kind::PcieTlp, Phase::End, 0x1234, 0, 3);
    buf.record(Kind::QueueDepth, Phase::Counter, 99, 12, 1);
    buf.registerName(99, "swq0.requests");
    buf.registerName(trace::trackNameKey(3), "pcie.to_host");

    const std::string path = tempPath("roundtrip.kmt");
    buf.writeFile(path);
    const TraceBuffer::FileData data = TraceBuffer::readFile(path);

    EXPECT_EQ(data.ticksPerSec, tickPerSec);
    EXPECT_EQ(data.recorded, 3u);
    ASSERT_EQ(data.records.size(), 3u);
    EXPECT_EQ(data.records[0].tick, 5u);
    EXPECT_EQ(data.records[0].id, 0x1234u);
    EXPECT_EQ(data.records[0].arg, 64u);
    EXPECT_EQ(data.records[0].kind, Kind::PcieTlp);
    EXPECT_EQ(data.records[0].phase, Phase::Begin);
    EXPECT_EQ(data.records[0].track, 3u);
    EXPECT_EQ(data.records[1].tick, 905u);
    EXPECT_EQ(data.records[2].phase, Phase::Counter);
    ASSERT_EQ(data.names.size(), 2u);
    EXPECT_EQ(data.names[0].first, 99u);
    EXPECT_EQ(data.names[0].second, "swq0.requests");
    EXPECT_EQ(data.names[1].first, trace::trackNameKey(3));
    std::remove(path.c_str());
}

TEST(TraceBufferTest, WraparoundSurvivesRoundtrip)
{
    TraceBuffer buf(4);
    for (std::uint64_t i = 0; i < 7; ++i)
        buf.record(Kind::Doorbell, Phase::Instant, i, 0, 0);
    const std::string path = tempPath("wrap.kmt");
    buf.writeFile(path);
    const TraceBuffer::FileData data = TraceBuffer::readFile(path);
    EXPECT_EQ(data.recorded, 7u);
    ASSERT_EQ(data.records.size(), 4u);
    EXPECT_EQ(data.records.front().id, 3u);
    EXPECT_EQ(data.records.back().id, 6u);
    std::remove(path.c_str());
}

TEST(TraceKinds, NamesAreUniqueAndStable)
{
    std::set<std::string> seen;
    for (std::size_t k = 0; k < trace::kindCount; ++k) {
        const std::string name = trace::kindName(Kind(k));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "unknown");
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate kind name " << name;
    }
    EXPECT_STREQ(trace::kindName(Kind::PcieTlp), "pcie_tlp");
    EXPECT_STREQ(trace::kindName(Kind::LfbResident), "lfb_resident");
}

TraceBuffer::FileData
spanFixture()
{
    TraceBuffer buf(32);
    Tick now = 0;
    buf.setClock([&now] { return now; });
    // Two overlapping PcieTlp spans on one track, distinguished by
    // id, plus a reentrant (nested, same-key) LfbResident pair and
    // one orphan end.
    buf.record(Kind::PcieTlp, Phase::Begin, 1, 0, 0);     // t=0
    now = 100;
    buf.record(Kind::PcieTlp, Phase::Begin, 2, 0, 0);     // t=100
    now = 1000;
    buf.record(Kind::PcieTlp, Phase::End, 1, 0, 0);
    now = 1100;
    buf.record(Kind::PcieTlp, Phase::End, 2, 0, 0);
    now = 2000;
    buf.record(Kind::LfbResident, Phase::Begin, 7, 0, 0);
    now = 2100;
    buf.record(Kind::LfbResident, Phase::Begin, 7, 0, 0); // nested
    now = 2200;
    buf.record(Kind::LfbResident, Phase::End, 7, 0, 0);   // inner
    now = 2500;
    buf.record(Kind::LfbResident, Phase::End, 7, 0, 0);   // outer
    now = 3000;
    buf.record(Kind::DramRead, Phase::End, 5, 0, 0);      // orphan
    buf.record(Kind::DevService, Phase::Begin, 9, 0, 0);  // unclosed
    const std::string path =
        std::string(::testing::TempDir()) + "spans.kmt";
    buf.writeFile(path);
    TraceBuffer::FileData data = TraceBuffer::readFile(path);
    std::remove(path.c_str());
    return data;
}

const trace::KindSummary *
findKind(const std::vector<trace::KindSummary> &table, Kind kind)
{
    for (const trace::KindSummary &s : table) {
        if (s.kind == kind)
            return &s;
    }
    return nullptr;
}

TEST(TraceSummarize, MatchesOverlappingAndNestedSpans)
{
    const auto table = trace::summarize(spanFixture());

    const trace::KindSummary *tlp = findKind(table, Kind::PcieTlp);
    ASSERT_NE(tlp, nullptr);
    EXPECT_EQ(tlp->spans, 2u);
    EXPECT_EQ(tlp->unmatched, 0u);
    // Both spans are 1000 ticks = 1 ns at the ps tick base.
    EXPECT_DOUBLE_EQ(tlp->minNs, 1.0);
    EXPECT_DOUBLE_EQ(tlp->maxNs, 1.0);
    EXPECT_DOUBLE_EQ(tlp->meanNs(), 1.0);

    // Reentrant same-key spans pair LIFO: inner 100 ticks, outer 500.
    const trace::KindSummary *lfb =
        findKind(table, Kind::LfbResident);
    ASSERT_NE(lfb, nullptr);
    EXPECT_EQ(lfb->spans, 2u);
    EXPECT_DOUBLE_EQ(lfb->minNs, 0.1);
    EXPECT_DOUBLE_EQ(lfb->maxNs, 0.5);

    // An end with no live begin and a begin with no end both count
    // as unmatched, under their own kinds.
    const trace::KindSummary *dram = findKind(table, Kind::DramRead);
    ASSERT_NE(dram, nullptr);
    EXPECT_EQ(dram->spans, 0u);
    EXPECT_EQ(dram->unmatched, 1u);
    const trace::KindSummary *dev = findKind(table, Kind::DevService);
    ASSERT_NE(dev, nullptr);
    EXPECT_EQ(dev->unmatched, 1u);
}

TEST(TraceExport, SummaryCsvShapeIsStable)
{
    const std::string csv = trace::toSummaryCsv(spanFixture());
    EXPECT_EQ(csv.find("kind,begins,ends,instants,counters,spans,"
                       "unmatched,total_ns,mean_ns,min_ns,max_ns\n"),
              0u);
    EXPECT_NE(csv.find("\npcie_tlp,2,2,0,0,2,0,"), std::string::npos);
}

TEST(TraceExport, ChromeJsonCarriesTrackNamesAndEvents)
{
    TraceBuffer buf(16);
    Tick now = 1500000; // 1.5 us in ps ticks
    buf.setClock([&now] { return now; });
    buf.record(Kind::PcieTlp, Phase::Begin, 0xab, 64, 2);
    now = 2500000;
    buf.record(Kind::PcieTlp, Phase::End, 0xab, 0, 2);
    buf.record(Kind::Doorbell, Phase::Instant, 1, 0, 2);
    buf.record(Kind::QueueDepth, Phase::Counter, 99, 5, 2);
    buf.registerName(99, "swq0.requests");
    buf.registerName(trace::trackNameKey(2), "core2");

    const std::string path = tempPath("chrome.kmt");
    buf.writeFile(path);
    const std::string json =
        trace::toChromeJson(TraceBuffer::readFile(path));
    std::remove(path.c_str());

    EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ns\""), 0u);
    // Track label metadata, async begin/end pair with a scoped id,
    // the instant, and the named counter series all present.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"name\":\"core2\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":\"t2.ab\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1.500000"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"swq0.requests\",\"ph\":\"C\""),
              std::string::npos);
    // Balanced JSON framing.
    EXPECT_EQ(json.rfind("\n]}\n"), json.size() - 4);
}

} // anonymous namespace
