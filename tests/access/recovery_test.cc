/**
 * @file
 * End-to-end fault-survival tests: each recovery mechanism is pinned
 * against the fault it exists for, on a runtime whose emulated
 * device runs in deterministic manual-pump mode. Every test verifies
 * the *data* (reads still return the image pattern), not just the
 * counters — recovery that returns wrong bytes is not recovery.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "access/runtime.hh"
#include "common/random.hh"
#include "fault/fault_plan.hh"

namespace kmu
{
namespace
{

using fault::FaultPlan;
using fault::FaultSite;

constexpr std::size_t imageBytes = 64 * 1024;

std::vector<std::uint8_t>
patternImage(std::size_t bytes)
{
    std::vector<std::uint8_t> image(bytes);
    for (std::size_t off = 0; off + 8 <= bytes; off += 8) {
        const std::uint64_t v = mix64(off);
        std::memcpy(image.data() + off, &v, 8);
    }
    return image;
}

/** Run a verifying read sweep under @p plan; returns mismatches. */
std::uint64_t
faultedSweep(Runtime &rt, FaultPlan &plan, std::size_t reads = 2048)
{
    std::uint64_t bad = 0;
    rt.spawnWorker([&](AccessEngine &dev) {
        Rng rng(99);
        for (std::size_t i = 0; i < reads; ++i) {
            const Addr a = rng.nextBounded(imageBytes / 8) * 8;
            if (dev.read64(a) != mix64(a))
                ++bad;
        }
    });
    fault::ScopedPlan active(plan);
    rt.run();
    return bad;
}

TEST(RecoveryTest, WatchdogReissuesLostCompletions)
{
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::SwQueue,
                .deterministicDevice = true});
    FaultPlan plan(11);
    plan.set(FaultSite::CompletionLoss, {.rate = 0.05});
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(plan.injected(FaultSite::CompletionLoss), 0u);
    EXPECT_GT(rt.engine().recovery().timeouts, 0u);
    EXPECT_GT(rt.engine().recovery().retries, 0u);
    EXPECT_EQ(rt.engine().accesses(), 2048u);
}

TEST(RecoveryTest, CrcDetectsCorruptedPayloads)
{
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::SwQueue,
                .deterministicDevice = true});
    FaultPlan plan(12);
    plan.set(FaultSite::ResponseBitFlip, {.rate = 0.05});
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(plan.injected(FaultSite::ResponseBitFlip), 0u);
    // Every flip must be caught by the CRC, never by the data check.
    EXPECT_GE(rt.engine().recovery().crcFailures,
              plan.injected(FaultSite::ResponseBitFlip));
    EXPECT_GT(rt.engine().recovery().retries, 0u);
}

TEST(RecoveryTest, LostDoorbellsRungByWatchdog)
{
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::SwQueue,
                .deterministicDevice = true});
    FaultPlan plan(13);
    plan.set(FaultSite::DoorbellLoss, {.rate = 0.10});
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(plan.injected(FaultSite::DoorbellLoss), 0u);
    EXPECT_GT(rt.engine().recovery().recoveryDoorbells, 0u);
}

TEST(RecoveryTest, StaleCompletionsFilteredByGeneration)
{
    // No injected faults at all — instead an absurdly impatient
    // watchdog, so re-issues race their own still-in-flight
    // originals. The generation tag must shed every stale completion
    // and each access must complete exactly once with correct data.
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::SwQueue,
                .deterministicDevice = true,
                .retry = {.timeoutPolls = 2, .backoffBasePolls = 1}});
    FaultPlan plan(14); // empty plan: all rates zero
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(rt.engine().recovery().timeouts, 0u);
    EXPECT_GT(rt.engine().recovery().staleCompletions, 0u);
    EXPECT_EQ(rt.engine().accesses(), 2048u);
}

TEST(RecoveryTest, ReorderedCompletionsDoNoHarm)
{
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::SwQueue,
                .deterministicDevice = true});
    FaultPlan plan(15);
    plan.set(FaultSite::CompletionReorder, {.rate = 0.10});
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(plan.injected(FaultSite::CompletionReorder), 0u);
    EXPECT_EQ(rt.engine().accesses(), 2048u);
}

TEST(RecoveryTest, OnDemandRetriesMappedReadErrors)
{
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::OnDemand});
    FaultPlan plan(16);
    plan.set(FaultSite::MappedReadError, {.rate = 0.10});
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(rt.engine().recovery().retries, 0u);
    EXPECT_EQ(rt.engine().accesses(), 2048u);
}

TEST(RecoveryTest, GovernorDegradesPrefetchUnderPressureThenRecovers)
{
    // A widened retry budget: at 50 % burst pressure a run of 17
    // consecutive faults on one access (which would exhaust the
    // default budget) is rare but not impossible.
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::Prefetch,
                .retry = {.maxRetries = 32}});
    FaultPlan plan(17);
    // Sustained error burst, then clean: the governor must enter
    // Degraded during the burst and exit after it.
    plan.set(FaultSite::MappedReadError,
             {.rate = 0.5, .magnitude = 0, .burstPeriod = 1024,
              .burstLen = 256});
    EXPECT_EQ(faultedSweep(rt, plan, 4096), 0u);
    EXPECT_GT(rt.engine().recovery().degradedAccesses, 0u);
    EXPECT_GE(rt.degradation().degradations(), 1u);
    EXPECT_GE(rt.degradation().recoveries(), 1u);
    EXPECT_EQ(rt.engine().accesses(), 4096u);
}

} // anonymous namespace
} // namespace kmu
