/**
 * @file
 * End-to-end fault-survival tests: each recovery mechanism is pinned
 * against the fault it exists for, on a runtime whose emulated
 * device runs in deterministic manual-pump mode. Every test verifies
 * the *data* (reads still return the image pattern), not just the
 * counters — recovery that returns wrong bytes is not recovery.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "access/runtime.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "fault/fault_plan.hh"
#include "health/health.hh"

namespace kmu
{
namespace
{

using fault::FaultPlan;
using fault::FaultSite;

constexpr std::size_t imageBytes = 64 * 1024;

std::vector<std::uint8_t>
patternImage(std::size_t bytes)
{
    std::vector<std::uint8_t> image(bytes);
    for (std::size_t off = 0; off + 8 <= bytes; off += 8) {
        const std::uint64_t v = mix64(off);
        std::memcpy(image.data() + off, &v, 8);
    }
    return image;
}

/** Run a verifying read sweep under @p plan; returns mismatches. */
std::uint64_t
faultedSweep(Runtime &rt, FaultPlan &plan, std::size_t reads = 2048)
{
    std::uint64_t bad = 0;
    rt.spawnWorker([&](AccessEngine &dev) {
        Rng rng(99);
        for (std::size_t i = 0; i < reads; ++i) {
            const Addr a = rng.nextBounded(imageBytes / 8) * 8;
            if (dev.read64(a) != mix64(a))
                ++bad;
        }
    });
    fault::ScopedPlan active(plan);
    rt.run();
    return bad;
}

TEST(RecoveryTest, WatchdogReissuesLostCompletions)
{
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::SwQueue,
                .deterministicDevice = true});
    FaultPlan plan(11);
    plan.set(FaultSite::CompletionLoss, {.rate = 0.05});
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(plan.injected(FaultSite::CompletionLoss), 0u);
    EXPECT_GT(rt.engine().recovery().timeouts, 0u);
    EXPECT_GT(rt.engine().recovery().retries, 0u);
    EXPECT_EQ(rt.engine().accesses(), 2048u);
}

TEST(RecoveryTest, CrcDetectsCorruptedPayloads)
{
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::SwQueue,
                .deterministicDevice = true});
    FaultPlan plan(12);
    plan.set(FaultSite::ResponseBitFlip, {.rate = 0.05});
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(plan.injected(FaultSite::ResponseBitFlip), 0u);
    // Every flip must be caught by the CRC, never by the data check.
    EXPECT_GE(rt.engine().recovery().crcFailures,
              plan.injected(FaultSite::ResponseBitFlip));
    EXPECT_GT(rt.engine().recovery().retries, 0u);
}

TEST(RecoveryTest, LostDoorbellsRungByWatchdog)
{
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::SwQueue,
                .deterministicDevice = true});
    FaultPlan plan(13);
    plan.set(FaultSite::DoorbellLoss, {.rate = 0.10});
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(plan.injected(FaultSite::DoorbellLoss), 0u);
    EXPECT_GT(rt.engine().recovery().recoveryDoorbells, 0u);
}

TEST(RecoveryTest, StaleCompletionsFilteredByGeneration)
{
    // No injected faults at all — instead an absurdly impatient
    // watchdog, so re-issues race their own still-in-flight
    // originals. The generation tag must shed every stale completion
    // and each access must complete exactly once with correct data.
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::SwQueue,
                .deterministicDevice = true,
                .retry = {.timeoutPolls = 2, .backoffBasePolls = 1}});
    FaultPlan plan(14); // empty plan: all rates zero
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(rt.engine().recovery().timeouts, 0u);
    EXPECT_GT(rt.engine().recovery().staleCompletions, 0u);
    EXPECT_EQ(rt.engine().accesses(), 2048u);
}

TEST(RecoveryTest, ReorderedCompletionsDoNoHarm)
{
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::SwQueue,
                .deterministicDevice = true});
    FaultPlan plan(15);
    plan.set(FaultSite::CompletionReorder, {.rate = 0.10});
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(plan.injected(FaultSite::CompletionReorder), 0u);
    EXPECT_EQ(rt.engine().accesses(), 2048u);
}

TEST(RecoveryTest, OnDemandRetriesMappedReadErrors)
{
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::OnDemand});
    FaultPlan plan(16);
    plan.set(FaultSite::MappedReadError, {.rate = 0.10});
    EXPECT_EQ(faultedSweep(rt, plan), 0u);
    EXPECT_GT(rt.engine().recovery().retries, 0u);
    EXPECT_EQ(rt.engine().accesses(), 2048u);
}

TEST(RecoveryTest, GovernorDegradesPrefetchUnderPressureThenRecovers)
{
    // A widened retry budget: at 50 % burst pressure a run of 17
    // consecutive faults on one access (which would exhaust the
    // default budget) is rare but not impossible.
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::Prefetch,
                .retry = {.maxRetries = 32}});
    FaultPlan plan(17);
    // Sustained error burst, then clean: the governor must enter
    // Degraded during the burst and exit after it.
    plan.set(FaultSite::MappedReadError,
             {.rate = 0.5, .magnitude = 0, .burstPeriod = 1024,
              .burstLen = 256});
    EXPECT_EQ(faultedSweep(rt, plan, 4096), 0u);
    EXPECT_GT(rt.engine().recovery().degradedAccesses, 0u);
    EXPECT_GE(rt.degradation().degradations(), 1u);
    EXPECT_GE(rt.degradation().recoveries(), 1u);
    EXPECT_EQ(rt.engine().accesses(), 4096u);
}

/** Find a Gauge by name in @p group; fails the test if missing. */
const Gauge *
findGauge(StatGroup &group, const std::string &name)
{
    for (const StatBase *stat : group.stats()) {
        if (stat->name() == name)
            return dynamic_cast<const Gauge *>(stat);
    }
    return nullptr;
}

TEST(RecoveryTest, GaugesMirrorCountersAndConserve)
{
    // The runtime bridges its recovery and health counters as
    // pull-based Gauges so campaign drivers can dump them uniformly.
    // Run an outage, then check (a) every gauge reads live from its
    // owner — value == the counter it wraps — and (b) the health
    // transition counters satisfy their conservation law.
    Runtime rt(patternImage(imageBytes),
               {.mechanism = Mechanism::SwQueue,
                .shards = 4,
                .deterministicDevice = true,
                .retry = {.maxRetries = 1'000'000},
                .health = {.mode = health::Mode::Full}});
    FaultPlan plan = FaultPlan::outage(/*seed=*/19, /*shardMask=*/0x1,
                                       /*hangWindow=*/4096,
                                       /*period=*/std::uint64_t(1)
                                           << 20);
    std::uint64_t completed = 0;
    rt.spawnWorker([&](AccessEngine &eng) {
        Rng rng(5);
        for (std::size_t i = 0; i < 4096; ++i) {
            const Addr a = rng.nextBounded(imageBytes / 8) * 8;
            std::uint64_t got = 0;
            if (eng.tryRead64(a, got) == AccessStatus::Ok) {
                EXPECT_EQ(got, mix64(a));
                completed++;
            }
        }
    });
    fault::ScopedPlan active(plan);
    rt.run();
    EXPECT_GT(completed, 0u);

    ASSERT_NE(rt.healthController(), nullptr);
    const auto &rec = rt.engine().recovery();
    const auto health_counters = rt.healthController()->counters();
    const struct
    {
        const char *name;
        std::uint64_t want;
    } expected[] = {
        {"retries", rec.retries},
        {"timeouts", rec.timeouts},
        {"failovers", rec.failovers},
        {"deadline_errors", rec.deadlineErrors},
        {"health_degradations", health_counters.degradations},
        {"health_quarantines", health_counters.quarantines},
        {"health_recoveries", health_counters.recoveries},
        {"health_probes", health_counters.probes},
        {"health_failovers", health_counters.failovers},
    };
    for (const auto &e : expected) {
        const Gauge *gauge = findGauge(rt.stats(), e.name);
        ASSERT_NE(gauge, nullptr) << "no gauge named " << e.name;
        EXPECT_EQ(gauge->value(), e.want) << e.name;
    }

    // The outage demonstrably exercised the machinery being gauged.
    EXPECT_GE(health_counters.quarantines, 1u);
    EXPECT_GT(health_counters.failovers, 0u);
    EXPECT_GT(rec.retries, 0u);

    // Conservation: every Healthy->Degraded entry is matched by a
    // completed recovery or a shard still unhealthy right now.
    std::uint64_t unhealthy = 0;
    for (std::uint32_t s = 0; s < 4; ++s) {
        if (rt.healthController()->state(s) !=
            health::ShardState::Healthy)
            unhealthy++;
    }
    EXPECT_EQ(health_counters.degradations,
              health_counters.recoveries + unhealthy);
    // And quarantines can never outnumber degradations: the only
    // path into QUARANTINED is through DEGRADED.
    EXPECT_LE(health_counters.quarantines,
              health_counters.degradations);
}

} // anonymous namespace
} // namespace kmu
