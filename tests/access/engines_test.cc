/**
 * @file
 * Tests for the three access engines behind the unified API, plus
 * the Runtime façade.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "access/on_demand_engine.hh"
#include "access/prefetch_engine.hh"
#include "access/runtime.hh"
#include "access/sw_queue_engine.hh"
#include "common/random.hh"

namespace kmu
{
namespace
{

std::vector<std::uint8_t>
patternImage(std::size_t bytes)
{
    std::vector<std::uint8_t> image(bytes);
    for (std::size_t off = 0; off + 8 <= bytes; off += 8) {
        const std::uint64_t v = mix64(off);
        std::memcpy(image.data() + off, &v, 8);
    }
    return image;
}

class EngineParamTest : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(EngineParamTest, Read64ReturnsImageContents)
{
    Runtime rt(patternImage(64 * 1024),
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(200)});
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        for (Addr a = 0; a < 4096; a += 8)
            ok &= dev.read64(a) == mix64(a);
    });
    rt.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(rt.engine().accesses(), 4096u / 8);
}

TEST_P(EngineParamTest, ReadBatchReturnsAllWords)
{
    Runtime rt(patternImage(64 * 1024),
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(200)});
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        Addr addrs[4];
        std::uint64_t vals[4];
        for (int i = 0; i < 64; ++i) {
            for (int b = 0; b < 4; ++b)
                addrs[b] = Addr(i * 4 + b) * 128 + 8 * b;
            dev.readBatch(addrs, 4, vals);
            for (int b = 0; b < 4; ++b)
                ok &= vals[b] == mix64(addrs[b]);
        }
    });
    rt.run();
    EXPECT_TRUE(ok);
}

TEST_P(EngineParamTest, ReadLinesCopiesFullLines)
{
    auto image = patternImage(64 * 1024);
    Runtime rt(image, {.mechanism = GetParam(),
                       .deviceLatency = std::chrono::nanoseconds(200)});
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        alignas(64) std::uint8_t buf[2 * 64];
        Addr addrs[2] = {512, 4096};
        dev.readLines(addrs, 2, buf);
        ok &= std::memcmp(buf, image.data() + 512, 64) == 0;
        ok &= std::memcmp(buf + 64, image.data() + 4096, 64) == 0;
    });
    rt.run();
    EXPECT_TRUE(ok);
}

TEST_P(EngineParamTest, ManyWorkersInterleaveSafely)
{
    Runtime rt(patternImage(1 << 20),
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(100)});
    constexpr int workers = 16;
    constexpr int reads = 200;
    std::uint64_t sums[workers] = {};
    for (int w = 0; w < workers; ++w) {
        rt.spawnWorker([&sums, w](AccessEngine &dev) {
            for (int i = 0; i < reads; ++i) {
                const Addr a = (Addr(w) * reads + i) * 64;
                sums[w] += dev.read64(a);
            }
        });
    }
    rt.run();
    for (int w = 0; w < workers; ++w) {
        std::uint64_t expect = 0;
        for (int i = 0; i < reads; ++i)
            expect += mix64((Addr(w) * reads + i) * 64);
        EXPECT_EQ(sums[w], expect) << "worker " << w;
    }
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, EngineParamTest,
                         ::testing::Values(Mechanism::OnDemand,
                                           Mechanism::Prefetch,
                                           Mechanism::SwQueue),
                         [](const auto &info) {
                             return std::string(
                                 mechanismName(info.param) ==
                                         std::string("on-demand")
                                     ? "OnDemand"
                                     : mechanismName(info.param) ==
                                               std::string("prefetch")
                                           ? "Prefetch"
                                           : "SwQueue");
                         });

TEST(PrefetchEngineTest, YieldsOncePerCall)
{
    Scheduler sched;
    auto image = patternImage(8192);
    PrefetchEngine engine(image.data(), image.size(), sched);
    sched.spawn([&]() {
        engine.read64(0);
        Addr addrs[3] = {64, 128, 192};
        std::uint64_t vals[3];
        engine.readBatch(addrs, 3, vals);
    });
    sched.run();
    EXPECT_EQ(engine.yields(), 2u); // one per call, not per address
    EXPECT_EQ(engine.accesses(), 4u);
}

TEST(SwQueueEngineTest, DoorbellOnlyWhenRequested)
{
    Runtime rt(patternImage(64 * 1024),
               {.mechanism = Mechanism::SwQueue,
                .deviceLatency = std::chrono::nanoseconds(5000)});
    for (int w = 0; w < 8; ++w) {
        rt.spawnWorker([](AccessEngine &dev) {
            for (int i = 0; i < 50; ++i)
                dev.read64(Addr(i) * 64);
        });
    }
    rt.run();
    auto &engine = static_cast<SwQueueEngine &>(rt.engine());
    EXPECT_EQ(engine.completionsReaped(), 8u * 50);
    // With 8 workers keeping the fetcher busy, far fewer doorbells
    // than submissions are needed.
    EXPECT_LT(engine.doorbellsRung(), 8u * 50 / 2);
    EXPECT_GE(engine.doorbellsRung(), 1u);
}

TEST(OnDemandEngineTest, BoundsChecked)
{
    std::vector<std::uint8_t> image(4096);
    OnDemandEngine engine(image.data(), image.size());
    EXPECT_DEATH(engine.read64(4090), "out of bounds");
}

TEST(RuntimeTest, DeviceImageAccessorMatchesInput)
{
    auto image = patternImage(4096);
    Runtime rt(image, {.mechanism = Mechanism::SwQueue});
    EXPECT_EQ(std::memcmp(rt.deviceImage(), image.data(),
                          image.size()), 0);
    EXPECT_EQ(rt.deviceBytes(), image.size());
}

} // anonymous namespace
} // namespace kmu
