/**
 * @file
 * Tests for the write path (the paper's future work, implemented):
 * posted line writes and read-modify-write words across all three
 * real engines, plus the device-side write handling.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "access/runtime.hh"
#include "access/sw_queue_engine.hh"
#include "common/random.hh"

namespace kmu
{
namespace
{

std::vector<std::uint8_t>
zeroImage(std::size_t bytes)
{
    return std::vector<std::uint8_t>(bytes, 0);
}

void
fillLine(std::uint8_t *line, std::uint64_t seed)
{
    for (std::size_t i = 0; i < cacheLineSize; i += 8) {
        const std::uint64_t v = mix64(seed + i);
        std::memcpy(line + i, &v, 8);
    }
}

class WritePathTest : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(WritePathTest, WriteLineThenReadBack)
{
    Runtime rt(zeroImage(64 * 1024),
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(300)});
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        alignas(cacheLineSize) std::uint8_t line[cacheLineSize];
        alignas(cacheLineSize) std::uint8_t got[cacheLineSize];
        for (Addr a = 0; a < 32 * cacheLineSize;
             a += cacheLineSize) {
            fillLine(line, a);
            dev.writeLine(a, line);
            // Same-engine read-after-write must observe the data
            // (FIFO queue-pair ordering / plain store visibility).
            dev.readLines(&a, 1, got);
            ok &= std::memcmp(line, got, cacheLineSize) == 0;
        }
    });
    rt.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(rt.engine().writes(), 32u);
}

TEST_P(WritePathTest, Write64ReadModifyWrite)
{
    Runtime rt(zeroImage(16 * 1024),
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(200)});
    bool ok = true;
    rt.spawnWorker([&](AccessEngine &dev) {
        // Two words in the same line: the second write must not
        // clobber the first (byte-merging correctness).
        dev.write64(128, 0x1111);
        dev.write64(136, 0x2222);
        ok &= dev.read64(128) == 0x1111;
        ok &= dev.read64(136) == 0x2222;
        // And the rest of the line stays zero.
        ok &= dev.read64(144) == 0;
    });
    rt.run();
    EXPECT_TRUE(ok);
}

TEST_P(WritePathTest, WritesVisibleInBackingStore)
{
    Runtime rt(zeroImage(8 * 1024),
               {.mechanism = GetParam(),
                .deviceLatency = std::chrono::nanoseconds(100)});
    alignas(cacheLineSize) std::uint8_t line[cacheLineSize];
    fillLine(line, 7);
    rt.spawnWorker([&](AccessEngine &dev) {
        dev.writeLine(512, line);
        // Read-back forces the posted write to be consumed before
        // the runtime shuts the device down.
        alignas(cacheLineSize) std::uint8_t got[cacheLineSize];
        Addr a = 512;
        dev.readLines(&a, 1, got);
    });
    rt.run();
    EXPECT_EQ(std::memcmp(rt.deviceImage() + 512, line,
                          cacheLineSize), 0);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, WritePathTest,
                         ::testing::Values(Mechanism::OnDemand,
                                           Mechanism::Prefetch,
                                           Mechanism::SwQueue));

TEST(WritePathTest, PostedWritesDoNotBlockTheFiber)
{
    // With a long device latency, a burst of posted writes returns
    // quickly (bounded by staging-pool recycling, not by latency),
    // while the same number of reads would take ~n x latency.
    Runtime rt(zeroImage(1 << 20),
               {.mechanism = Mechanism::SwQueue,
                .deviceLatency = std::chrono::milliseconds(5)});
    alignas(cacheLineSize) std::uint8_t line[cacheLineSize] = {1};
    const auto start = std::chrono::steady_clock::now();
    rt.spawnWorker([&](AccessEngine &dev) {
        for (Addr a = 0; a < 16 * cacheLineSize; a += cacheLineSize)
            dev.writeLine(a, line);
        // No read-back: the runtime drains in-flight writes on stop.
    });
    rt.run();
    const auto elapsed =
        std::chrono::steady_clock::now() - start;
    // 16 blocking reads would need >= 80 ms; posted writes of one
    // staging-pool's worth must be far faster. The generous bound
    // keeps scheduler jitter on a busy box from flaking the test
    // while still catching writes that serialize on the latency.
    EXPECT_LT(elapsed, std::chrono::milliseconds(40));
    EXPECT_EQ(rt.engine().writes(), 16u);
}

TEST(WritePathTest, StagingPoolRecyclesUnderPressure)
{
    // Far more writes than staging slots: the engine must reap
    // write completions to recycle buffers, and every write must
    // land correctly.
    Runtime rt(zeroImage(1 << 20),
               {.mechanism = Mechanism::SwQueue,
                .deviceLatency = std::chrono::nanoseconds(500)});
    constexpr int writes = 500;
    rt.spawnWorker([&](AccessEngine &dev) {
        alignas(cacheLineSize) std::uint8_t line[cacheLineSize];
        for (int i = 0; i < writes; ++i) {
            const Addr a = Addr(i) * cacheLineSize;
            fillLine(line, a);
            dev.writeLine(a, line);
        }
        // One read forces ordering behind all prior writes.
        Addr last = Addr(writes - 1) * cacheLineSize;
        alignas(cacheLineSize) std::uint8_t got[cacheLineSize];
        dev.readLines(&last, 1, got);
    });
    rt.run();

    alignas(cacheLineSize) std::uint8_t expect[cacheLineSize];
    for (int i = 0; i < writes; ++i) {
        const Addr a = Addr(i) * cacheLineSize;
        fillLine(expect, a);
        ASSERT_EQ(std::memcmp(rt.deviceImage() + a, expect,
                              cacheLineSize), 0)
            << "write " << i << " lost or corrupted";
    }
    auto &engine = static_cast<SwQueueEngine &>(rt.engine());
    EXPECT_EQ(engine.writes(), std::uint64_t(writes));
}

TEST(WritePathTest, DescriptorOpcodeRoundTrip)
{
    const auto rd = RequestDescriptor::read(0x1000, 0xbeef);
    EXPECT_FALSE(rd.isWrite());
    EXPECT_EQ(rd.lineAddr(), 0x1000u);

    const auto wr = RequestDescriptor::write(0x1000, 0xbeef);
    EXPECT_TRUE(wr.isWrite());
    EXPECT_EQ(wr.lineAddr(), 0x1000u);
    EXPECT_EQ(wr.hostAddr, 0xbeefu);
}

} // anonymous namespace
} // namespace kmu
