/**
 * @file
 * Golden-figure regression suite.
 *
 * Downsampled points from the paper's key curves (Fig. 2 on-demand,
 * Fig. 3 prefetch vs. threads, Fig. 7 queues vs. prefetch — each
 * with 1-core and, where the mechanism scales, 4-core points) are
 * pinned to reference values under tests/golden/. The timing model
 * is a deterministic discrete-event simulation, so any drift beyond
 * floating-point noise in these normalized-IPC values means a real
 * change to modelled behaviour — the tolerance is tight on purpose.
 *
 * Regenerating after an intentional model change:
 *
 *   KMU_GOLDEN_REGEN=1 ./kmu_tests --gtest_filter='Golden*'
 *
 * then review the diff of the golden CSVs like any other code.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/sim_system.hh"

#ifndef KMU_GOLDEN_DIR
#error "KMU_GOLDEN_DIR must point at tests/golden"
#endif

namespace
{

using namespace kmu;

struct GoldenPoint
{
    Mechanism mech;
    std::uint32_t cores;
    std::uint32_t threads;
    std::uint32_t work;
    unsigned latencyUs;
};

SystemConfig
makeConfig(const GoldenPoint &p)
{
    SystemConfig cfg;
    cfg.mechanism = p.mech;
    cfg.backing = Backing::Device;
    cfg.numCores = p.cores;
    cfg.threadsPerCore = p.threads;
    cfg.workCount = p.work;
    cfg.device.latency = microseconds(p.latencyUs);
    return cfg;
}

std::string
pointKey(const GoldenPoint &p)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s,%u,%u,%u,%u",
                  mechanismName(p.mech), p.cores, p.threads, p.work,
                  p.latencyUs);
    return buf;
}

/** Baselines depend only on the workload shape; share them. */
double
normalizedPoint(const GoldenPoint &p)
{
    static std::map<std::uint32_t, RunResult> baselines;
    const SystemConfig cfg = makeConfig(p);
    auto it = baselines.find(p.work);
    if (it == baselines.end()) {
        it = baselines
                 .emplace(p.work, runSystem(baselineConfig(cfg)))
                 .first;
    }
    return normalizedWorkIpc(runSystem(cfg), it->second);
}

/**
 * Compare every point against the reference file — or, with
 * KMU_GOLDEN_REGEN=1 in the environment, rewrite the reference file
 * from the current model instead.
 */
void
checkGolden(const std::string &file,
            const std::vector<GoldenPoint> &points)
{
    const std::string path = std::string(KMU_GOLDEN_DIR) + "/" + file;
    const char *regen = std::getenv("KMU_GOLDEN_REGEN");

    if (regen && std::string(regen) != "0") {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << "mechanism,cores,threads,work,latency_us,"
               "normalized_ipc\n";
        for (const GoldenPoint &p : points) {
            char val[64];
            std::snprintf(val, sizeof(val), "%.17g",
                          normalizedPoint(p));
            out << pointKey(p) << "," << val << "\n";
        }
        ASSERT_TRUE(out.good()) << "write to " << path << " failed";
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " missing — run with KMU_GOLDEN_REGEN=1 once";
    std::map<std::string, double> expected;
    std::string line;
    std::getline(in, line); // header
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const std::size_t comma = line.rfind(',');
        ASSERT_NE(comma, std::string::npos) << "bad row: " << line;
        expected[line.substr(0, comma)] =
            std::stod(line.substr(comma + 1));
    }
    ASSERT_EQ(expected.size(), points.size())
        << path << " row count drifted from the point list";

    for (const GoldenPoint &p : points) {
        const std::string key = pointKey(p);
        auto it = expected.find(key);
        ASSERT_NE(it, expected.end()) << "no golden row for " << key;
        const double want = it->second;
        const double got = normalizedPoint(p);
        // Relative 1e-6: generous against cross-compiler FP noise,
        // far below any behavioural change worth making.
        EXPECT_NEAR(got, want, 1e-9 + 1e-6 * std::abs(want))
            << "golden drift at " << key;
    }
}

TEST(GoldenFigures, Fig02OnDemand)
{
    std::vector<GoldenPoint> points;
    for (unsigned us : {1u, 4u}) {
        for (std::uint32_t work : {50u, 250u, 1000u, 5000u})
            points.push_back({Mechanism::OnDemand, 1, 1, work, us});
    }
    checkGolden("fig02.csv", points);
}

TEST(GoldenFigures, Fig03PrefetchThreads)
{
    std::vector<GoldenPoint> points;
    for (std::uint32_t threads : {1u, 5u, 10u, 20u})
        points.push_back({Mechanism::Prefetch, 1, threads, 250, 1});
    // Multi-core scaling point (Fig. 5 companion of the same curve).
    points.push_back({Mechanism::Prefetch, 4, 10, 250, 1});
    checkGolden("fig03.csv", points);
}

TEST(GoldenFigures, Fig07QueueVsPrefetch)
{
    std::vector<GoldenPoint> points;
    for (Mechanism mech : {Mechanism::Prefetch, Mechanism::SwQueue}) {
        for (std::uint32_t threads : {1u, 10u, 40u})
            points.push_back({mech, 1, threads, 250, 1});
        // 4-core points (Fig. 8 companion): queues keep scaling.
        points.push_back({mech, 4, 10, 250, 1});
    }
    checkGolden("fig07.csv", points);
}

} // anonymous namespace
