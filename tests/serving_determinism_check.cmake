# Serving determinism gate: two identical seeded open-loop runs must
# be byte-identical end to end — the CSV row with the serving
# columns, the full stats dump (request-latency histogram included),
# and the binary .kmt trace with its per-request spans. Covers both
# arrival shapes, the Zipf sampler, and the partly-open client cap.
#
# Invoked by ctest as:
#   cmake -DKMU_SIM=<path> -DKMU_TRACE=<path> -DWORK_DIR=<dir>
#         -P serving_determinism_check.cmake

if(NOT KMU_SIM)
    message(FATAL_ERROR "pass -DKMU_SIM=<path to kmu_sim>")
endif()
if(NOT KMU_TRACE)
    message(FATAL_ERROR "pass -DKMU_TRACE=<path to kmu_trace>")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORK_DIR}/serving_determinism)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

# Two configurations: a Poisson SW-queue service and a bursty,
# Zipf-skewed, client-capped prefetch service.
set(poisson_args mechanism=swqueue threads=16 latency_us=4
    arrival=poisson lambda=1 value_lines=4 slo_us=20
    measure_us=200 csv=1 stats=1)
set(bursty_args mechanism=prefetch threads=10 latency_us=2
    arrival=bursty lambda=0.4 duty=0.25 burst_period_us=40
    zipf=0.99 keys=65536 clients=32 serve_seed=7
    measure_us=200 csv=1 stats=1)

foreach(shape poisson bursty)
    foreach(run a b)
        execute_process(
            COMMAND ${KMU_SIM} ${${shape}_args}
                    trace=${dir}/${shape}_${run}.kmt
            OUTPUT_FILE ${dir}/${shape}_${run}.txt
            RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                "kmu_sim serving run '${shape}/${run}' failed "
                "(rc=${rc})")
        endif()
        # The trace must decode, and must contain request spans.
        # Decode through a fixed filename: the dump header echoes the
        # path, which must not differ between the a/b runs.
        file(COPY_FILE ${dir}/${shape}_${run}.kmt ${dir}/decode.kmt)
        execute_process(
            COMMAND ${KMU_TRACE} ${dir}/decode.kmt
            OUTPUT_FILE ${dir}/${shape}_${run}.trace.txt
            RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                "kmu_trace failed on the ${shape}/${run} serving "
                "trace (rc=${rc})")
        endif()
        file(STRINGS ${dir}/${shape}_${run}.trace.txt req_rows
             REGEX "request")
        if(req_rows STREQUAL "")
            message(FATAL_ERROR
                "the ${shape}/${run} trace has no request spans: "
                "the serving trace lane is dead")
        endif()
    endforeach()

    foreach(artifact txt kmt trace.txt)
        execute_process(
            COMMAND ${CMAKE_COMMAND} -E compare_files
                    ${dir}/${shape}_a.${artifact}
                    ${dir}/${shape}_b.${artifact}
            RESULT_VARIABLE diff)
        if(NOT diff EQUAL 0)
            message(FATAL_ERROR
                "${shape} serving runs differ in ${artifact}: the "
                "open-loop mode is nondeterministic (compare "
                "${shape}_a.${artifact} and ${shape}_b.${artifact} "
                "in ${dir})")
        endif()
    endforeach()
endforeach()

message(STATUS
    "serving determinism check passed: stdout, stats, and .kmt "
    "traces byte-identical for both arrival shapes")
