/**
 * @file
 * Unit tests for the chip-level shared queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/uncore_queue.hh"

namespace kmu
{
namespace
{

struct UncoreFixture : public ::testing::Test
{
    EventQueue eq;
    StatGroup root{"root"};
    UncoreQueue q{"q", eq, 3, &root};
};

TEST_F(UncoreFixture, GrantsUpToCapacity)
{
    int granted = 0;
    for (int i = 0; i < 3; ++i)
        q.acquire([&]() { granted++; });
    eq.run();
    EXPECT_EQ(granted, 3);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.inUse(), 3u);
}

TEST_F(UncoreFixture, WaitersAdmittedFifoOnRelease)
{
    for (int i = 0; i < 3; ++i)
        q.acquire([]() {});
    std::vector<int> order;
    q.acquire([&]() { order.push_back(1); });
    q.acquire([&]() { order.push_back(2); });
    eq.run();
    EXPECT_TRUE(order.empty());
    EXPECT_EQ(q.waiting(), 2u);

    q.release();
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1}));
    q.release();
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.fullStalls.value(), 2u);
}

TEST_F(UncoreFixture, OccupancyNeverExceedsCapacity)
{
    int in_flight = 0;
    int peak = 0;
    for (int i = 0; i < 20; ++i) {
        q.acquire([&]() {
            in_flight++;
            peak = std::max(peak, in_flight);
            // Release after 10 ticks.
            eq.scheduleLambda(eq.curTick() + 10, [&]() {
                in_flight--;
                q.release();
            });
        });
    }
    eq.run();
    EXPECT_EQ(peak, 3);
    EXPECT_EQ(q.peakOccupancy(), 3u);
    EXPECT_EQ(q.entries.value(), 20u);
    EXPECT_EQ(q.inUse(), 0u);
}

TEST_F(UncoreFixture, ReleaseOnEmptyPanics)
{
    EXPECT_DEATH(q.release(), "empty");
}

} // anonymous namespace
} // namespace kmu
