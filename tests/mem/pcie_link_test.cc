/**
 * @file
 * Unit tests for the PCIe link model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hh"
#include "mem/pcie_link.hh"

namespace kmu
{
namespace
{

PcieLinkParams
testParams()
{
    PcieLinkParams p;
    p.bytesPerSec = 4'000'000'000ull; // 4 GB/s
    p.tlpHeaderBytes = 24;
    p.propagation = nanoseconds(100);
    return p;
}

struct LinkFixture : public ::testing::Test
{
    EventQueue eq;
    StatGroup root{"root"};
    PcieLink link{"pcie", eq, testParams(), &root};
};

TEST_F(LinkFixture, SingleTlpTiming)
{
    Tick delivered = 0;
    // 64B payload + 24B header = 88B at 4 GB/s = 22 ns, + 100 ns.
    link.send(LinkDir::ToHost, 64, 64,
              [&]() { delivered = eq.curTick(); });
    eq.run();
    EXPECT_EQ(delivered, nanoseconds(122));
}

TEST_F(LinkFixture, SerializationQueuesBackToBack)
{
    std::vector<Tick> arrivals;
    for (int i = 0; i < 3; ++i) {
        link.send(LinkDir::ToHost, 64, 64,
                  [&]() { arrivals.push_back(eq.curTick()); });
    }
    eq.run();
    ASSERT_EQ(arrivals.size(), 3u);
    // Wire occupancy is 22 ns per TLP; arrivals pipeline at 22 ns.
    EXPECT_EQ(arrivals[0], nanoseconds(122));
    EXPECT_EQ(arrivals[1], nanoseconds(144));
    EXPECT_EQ(arrivals[2], nanoseconds(166));
}

TEST_F(LinkFixture, DirectionsAreIndependent)
{
    Tick up = 0;
    Tick down = 0;
    link.send(LinkDir::ToDevice, 64, 0, [&]() { up = eq.curTick(); });
    link.send(LinkDir::ToHost, 64, 0, [&]() { down = eq.curTick(); });
    eq.run();
    // Neither waits behind the other.
    EXPECT_EQ(up, nanoseconds(122));
    EXPECT_EQ(down, nanoseconds(122));
}

TEST_F(LinkFixture, HeaderOnlyTlp)
{
    Tick at = 0;
    link.send(LinkDir::ToDevice, 0, 0, [&]() { at = eq.curTick(); });
    eq.run();
    EXPECT_EQ(at, nanoseconds(106)); // 24B = 6 ns + 100 ns
}

TEST_F(LinkFixture, ByteAccounting)
{
    link.send(LinkDir::ToHost, 64, 64, []() {});
    link.send(LinkDir::ToHost, 8, 0, []() {});
    link.send(LinkDir::ToDevice, 128, 0, []() {});
    eq.run();
    EXPECT_EQ(link.wireBytes(LinkDir::ToHost), 64u + 24 + 8 + 24);
    EXPECT_EQ(link.usefulBytes(LinkDir::ToHost), 64u);
    EXPECT_EQ(link.tlpCount(LinkDir::ToHost), 2u);
    EXPECT_EQ(link.wireBytes(LinkDir::ToDevice), 152u);
    EXPECT_EQ(link.tlpCount(LinkDir::ToDevice), 1u);

    link.resetCounters();
    EXPECT_EQ(link.wireBytes(LinkDir::ToHost), 0u);
    EXPECT_EQ(link.tlpCount(LinkDir::ToDevice), 0u);
}

TEST_F(LinkFixture, FifoDeliveryPerDirection)
{
    std::vector<int> order;
    link.send(LinkDir::ToHost, 512, 0, [&]() { order.push_back(1); });
    link.send(LinkDir::ToHost, 8, 0, [&]() { order.push_back(2); });
    eq.run();
    // The small TLP cannot overtake the large one.
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(LinkFixture, UsefulNeverExceedsPayload)
{
    EXPECT_DEATH(link.send(LinkDir::ToHost, 8, 64, []() {}),
                 "useful");
}

} // anonymous namespace
} // namespace kmu
