/**
 * @file
 * Unit tests for the DRAM path model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hh"
#include "mem/dram_model.hh"

namespace kmu
{
namespace
{

TEST(DramModelTest, FixedLatency)
{
    EventQueue eq;
    StatGroup root("root");
    DramParams p;
    p.latency = nanoseconds(60);
    DramModel dram("dram", eq, p, &root);

    Tick done = 0;
    dram.access(0, [&]() { done = eq.curTick(); });
    eq.run();
    EXPECT_EQ(done, nanoseconds(60));
    EXPECT_EQ(dram.reads.value(), 1u);
}

TEST(DramModelTest, DeepQueueAllowsManyOutstanding)
{
    EventQueue eq;
    StatGroup root("root");
    DramParams p;
    p.latency = nanoseconds(60);
    p.queueDepth = 48;
    DramModel dram("dram", eq, p, &root);

    std::vector<Tick> arrivals;
    for (int i = 0; i < 48; ++i)
        dram.access(Addr(i) * 64, [&]() {
            arrivals.push_back(eq.curTick());
        });
    eq.run();
    ASSERT_EQ(arrivals.size(), 48u);
    // All 48 fit the queue, so all complete at the same latency.
    for (Tick t : arrivals)
        EXPECT_EQ(t, nanoseconds(60));
    EXPECT_EQ(dram.queue().peakOccupancy(), 48u);
}

TEST(DramModelTest, QueueDepthLimitsParallelism)
{
    EventQueue eq;
    StatGroup root("root");
    DramParams p;
    p.latency = nanoseconds(60);
    p.queueDepth = 2;
    DramModel dram("dram", eq, p, &root);

    std::vector<Tick> arrivals;
    for (int i = 0; i < 4; ++i)
        dram.access(Addr(i) * 64, [&]() {
            arrivals.push_back(eq.curTick());
        });
    eq.run();
    ASSERT_EQ(arrivals.size(), 4u);
    EXPECT_EQ(arrivals[0], nanoseconds(60));
    EXPECT_EQ(arrivals[1], nanoseconds(60));
    EXPECT_EQ(arrivals[2], nanoseconds(120)); // waited for a slot
    EXPECT_EQ(arrivals[3], nanoseconds(120));
    EXPECT_EQ(dram.queue().peakOccupancy(), 2u);
}

} // anonymous namespace
} // namespace kmu
