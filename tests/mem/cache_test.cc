/**
 * @file
 * Unit tests for the L1 tag-array model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace kmu
{
namespace
{

struct CacheFixture : public ::testing::Test
{
    EventQueue eq;
    StatGroup root{"root"};
    // 4 sets x 2 ways of 64-byte lines.
    L1Cache cache{"l1", eq, CacheParams{512, 2}, &root};
};

TEST_F(CacheFixture, Geometry)
{
    EXPECT_EQ(cache.sets(), 4u);
    EXPECT_EQ(cache.ways(), 2u);
}

TEST_F(CacheFixture, MissThenHit)
{
    EXPECT_FALSE(cache.lookup(0));
    cache.install(0);
    EXPECT_TRUE(cache.lookup(0));
    EXPECT_EQ(cache.hits.value(), 1u);
    EXPECT_EQ(cache.misses.value(), 1u);
}

TEST_F(CacheFixture, LruEvictionWithinSet)
{
    // Lines 0, 256, 512 map to set 0 (4 sets x 64 B stride).
    cache.install(0);
    cache.install(256);
    // Touch 0 so 256 is LRU, then install a third line.
    EXPECT_TRUE(cache.lookup(0));
    cache.install(512);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(256)); // evicted
    EXPECT_TRUE(cache.contains(512));
    EXPECT_EQ(cache.evictions.value(), 1u);
}

TEST_F(CacheFixture, SetsAreIndependent)
{
    cache.install(0);   // set 0
    cache.install(64);  // set 1
    cache.install(128); // set 2
    cache.install(192); // set 3
    EXPECT_TRUE(cache.contains(0));
    EXPECT_TRUE(cache.contains(64));
    EXPECT_TRUE(cache.contains(128));
    EXPECT_TRUE(cache.contains(192));
    EXPECT_EQ(cache.evictions.value(), 0u);
}

TEST_F(CacheFixture, ContainsDoesNotPerturbLru)
{
    cache.install(0);
    cache.install(256);
    // contains() must not promote 0 to MRU...
    EXPECT_TRUE(cache.contains(0));
    cache.install(512);
    // ...so 0 (the LRU) is the victim.
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(256));
}

TEST_F(CacheFixture, InvalidateDropsLine)
{
    cache.install(0);
    cache.invalidate(0);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_EQ(cache.invalidations.value(), 1u);
    cache.invalidate(0); // idempotent on absent lines
    EXPECT_EQ(cache.invalidations.value(), 1u);
}

TEST_F(CacheFixture, ReinstallRefreshesLru)
{
    cache.install(0);
    cache.install(256);
    cache.install(0); // refresh, not duplicate
    cache.install(512);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(256));
}

TEST(CacheParamsTest, BadGeometryRejected)
{
    EventQueue eq;
    StatGroup root("root");
    // 3 sets is not a power of two (192 bytes / 64 / 1 way).
    EXPECT_DEATH((L1Cache{"bad", eq, CacheParams{192, 1}, &root}),
                 "power-of-two");
}

TEST(CacheSweepTest, HitRateTracksWorkingSet)
{
    EventQueue eq;
    StatGroup root("root");
    L1Cache cache("l1", eq, CacheParams{32 * 1024, 8}, &root);

    // Working set half the capacity: after the cold pass, all hits.
    const Addr lines = 32 * 1024 / 64 / 2;
    for (int pass = 0; pass < 4; ++pass) {
        for (Addr i = 0; i < lines; ++i) {
            if (!cache.lookup(i * 64))
                cache.install(i * 64);
        }
    }
    EXPECT_EQ(cache.misses.value(), lines);
    EXPECT_EQ(cache.hits.value(), 3 * lines);

    // Working set 4x the capacity with a sweep pattern: ~no hits.
    L1Cache big_ws("l1b", eq, CacheParams{32 * 1024, 8}, &root);
    const Addr big = 4 * 32 * 1024 / 64;
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr i = 0; i < big; ++i) {
            if (!big_ws.lookup(i * 64))
                big_ws.install(i * 64);
        }
    }
    EXPECT_EQ(big_ws.hits.value(), 0u);
}

} // anonymous namespace
} // namespace kmu
