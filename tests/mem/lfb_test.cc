/**
 * @file
 * Unit tests for the Line Fill Buffer (MSHR) model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/lfb.hh"

namespace kmu
{
namespace
{

struct LfbFixture : public ::testing::Test
{
    EventQueue eq;
    StatGroup root{"root"};
    Lfb lfb{"lfb", eq, 4, &root};
};

TEST_F(LfbFixture, AllocateUntilFull)
{
    int fills = 0;
    for (Addr line = 0; line < 4 * 64; line += 64) {
        EXPECT_EQ(lfb.request(line, [&]() { fills++; }),
                  Lfb::AllocResult::NewEntry);
    }
    EXPECT_TRUE(lfb.full());
    EXPECT_EQ(lfb.request(1024, []() {}), Lfb::AllocResult::NoEntry);
    EXPECT_EQ(lfb.rejections.value(), 1u);
    EXPECT_EQ(fills, 0);
}

TEST_F(LfbFixture, SecondaryMissMerges)
{
    int first = 0;
    int second = 0;
    EXPECT_EQ(lfb.request(0, [&]() { first++; }),
              Lfb::AllocResult::NewEntry);
    EXPECT_EQ(lfb.request(0, [&]() { second++; }),
              Lfb::AllocResult::Merged);
    EXPECT_EQ(lfb.inUse(), 1u);
    lfb.fill(0);
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 1);
    EXPECT_EQ(lfb.inUse(), 0u);
}

TEST_F(LfbFixture, FillFreesEntryForReuse)
{
    lfb.request(0, []() {});
    lfb.fill(0);
    EXPECT_FALSE(lfb.pending(0));
    EXPECT_EQ(lfb.request(0, []() {}), Lfb::AllocResult::NewEntry);
}

TEST_F(LfbFixture, WaitForFreeFifoOrder)
{
    for (Addr line = 0; line < 4 * 64; line += 64)
        lfb.request(line, []() {});

    std::vector<int> order;
    lfb.waitForFree([&]() { order.push_back(1); });
    lfb.waitForFree([&]() { order.push_back(2); });

    lfb.fill(0);
    EXPECT_EQ(order, (std::vector<int>{1}));
    lfb.fill(64);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(LfbFixture, WaitForFreeImmediateWhenNotFull)
{
    bool granted = false;
    lfb.waitForFree([&]() { granted = true; });
    EXPECT_FALSE(granted); // deferred off-stack
    eq.run();
    EXPECT_TRUE(granted);
}

TEST_F(LfbFixture, PendingReportsInFlightLines)
{
    EXPECT_FALSE(lfb.pending(64));
    lfb.request(64, []() {});
    EXPECT_TRUE(lfb.pending(64));
    EXPECT_FALSE(lfb.pending(128));
}

TEST_F(LfbFixture, StatsCountAllocationKinds)
{
    lfb.request(0, []() {});
    lfb.request(0, []() {});
    lfb.request(64, []() {});
    lfb.fill(0);
    EXPECT_EQ(lfb.allocs.value(), 2u);
    EXPECT_EQ(lfb.merges.value(), 1u);
    EXPECT_EQ(lfb.fills.value(), 1u);
}

TEST_F(LfbFixture, WaiterCanReallocateFreedEntry)
{
    for (Addr line = 0; line < 4 * 64; line += 64)
        lfb.request(line, []() {});

    bool reissued = false;
    lfb.waitForFree([&]() {
        EXPECT_EQ(lfb.request(4096, []() {}),
                  Lfb::AllocResult::NewEntry);
        reissued = true;
    });
    lfb.fill(0);
    EXPECT_TRUE(reissued);
    EXPECT_TRUE(lfb.full()); // 3 old + the reissued one
}

TEST_F(LfbFixture, FillUnknownLinePanics)
{
    EXPECT_DEATH(lfb.fill(0xdead00), "no LFB entry");
}

} // anonymous namespace
} // namespace kmu
