/**
 * @file
 * Boundary tests for the hostAddr bit budget.
 *
 * hostAddr carries three host-side fields on top of a 48-bit x86-64
 * pointer: the write marker in bit 0 (software-queue core tags), the
 * 8-bit generation tag in bits 48..55 (queue/descriptor.hh), and the
 * 6-bit shard id in bits 56..61 (topo/topology.hh). These tests walk
 * the extremes of every field to prove the packings never collide
 * and always round-trip.
 */

#include <gtest/gtest.h>

#include "queue/descriptor.hh"
#include "topo/topology.hh"

namespace kmu
{
namespace
{

/** Largest line-aligned pointer a 48-bit virtual address can hold. */
constexpr Addr maxPtr = (Addr(1) << 48) - cacheLineSize;

TEST(ShardBitsTest, FieldsAreDisjoint)
{
    EXPECT_EQ(topo::shardTagMask & RequestDescriptor::hostTagMask, 0u);
    EXPECT_EQ(topo::shardTagMask & maxPtr, 0u);
    EXPECT_EQ(RequestDescriptor::hostTagMask & maxPtr, 0u);
    // Bits 62..63 stay clear for future use.
    EXPECT_EQ(topo::shardTagMask >> 62, 0u);
    EXPECT_EQ(topo::shardTagShift, 56u);
    EXPECT_EQ(topo::maxShards, 64u);
}

TEST(ShardBitsTest, RoundTripAtEveryFieldExtreme)
{
    for (Addr ptr : {Addr(0), Addr(cacheLineSize), maxPtr}) {
        for (std::uint32_t gen : {0u, 1u, 255u}) {
            for (std::uint32_t shard : {0u, 1u, 63u}) {
                const Addr tagged = topo::taggedShard(
                    RequestDescriptor::taggedHost(ptr,
                                                  std::uint8_t(gen)),
                    shard);
                EXPECT_EQ(topo::shardTag(tagged), shard);
                EXPECT_EQ(RequestDescriptor::hostTag(tagged), gen);
                EXPECT_EQ(RequestDescriptor::hostPtr(
                              topo::stripShard(tagged)),
                          ptr);
            }
        }
    }
}

TEST(ShardBitsTest, TaggingOrderDoesNotMatter)
{
    const Addr ptr = maxPtr;
    const Addr a = topo::taggedShard(
        RequestDescriptor::taggedHost(ptr, 255), 63);
    const Addr b = RequestDescriptor::taggedHost(
        topo::taggedShard(ptr, 63), 255);
    EXPECT_EQ(a, b);
}

TEST(ShardBitsTest, ShardZeroIsTheIdentityOnUntaggedAddresses)
{
    // shards=1 systems tag everything with shard 0; for any
    // plain (pointer + generation) value that must be a no-op, so
    // the single-device wire traffic is bit-identical to the
    // pre-sharding format.
    for (Addr ptr : {Addr(0), Addr(4096), maxPtr}) {
        const Addr host = RequestDescriptor::taggedHost(ptr, 200);
        EXPECT_EQ(topo::taggedShard(host, 0), host);
        EXPECT_EQ(topo::stripShard(host), host);
    }
}

TEST(ShardBitsTest, WriteMarkerBitSurvivesTagging)
{
    // The software-queue timing core marks write completions with
    // bit 0 of the tag; shard tagging must not disturb it.
    const Addr write_tag = Addr(0x1234560) | 1;
    const Addr tagged = topo::taggedShard(write_tag, 63);
    EXPECT_EQ(tagged & 1, 1u);
    EXPECT_EQ(topo::stripShard(tagged) & 1, 1u);
    EXPECT_EQ(topo::stripShard(tagged), write_tag);
}

TEST(ShardBitsTest, StripIsFieldSelective)
{
    const Addr tagged = topo::taggedShard(
        RequestDescriptor::taggedHost(maxPtr, 255), 63);
    // stripShard removes only the shard field: the generation tag
    // survives for the retry filter.
    EXPECT_EQ(RequestDescriptor::hostTag(topo::stripShard(tagged)),
              255u);
    // hostPtr removes only the generation field: the shard id
    // survives for completion demux.
    EXPECT_EQ(topo::shardTag(RequestDescriptor::hostPtr(tagged)),
              63u);
}

TEST(ShardBitsTest, ShardIdWrapsIntoItsField)
{
    // Ids at or above maxShards cannot spill into bits 62..63.
    const Addr tagged = topo::taggedShard(0, topo::maxShards);
    EXPECT_EQ(topo::shardTag(tagged), 0u);
    EXPECT_EQ(tagged, 0u);
    EXPECT_EQ(topo::shardTag(topo::taggedShard(0, topo::maxShards + 5)),
              5u);
}

TEST(ShardBitsTest, RetaggingReplacesThePreviousShard)
{
    const Addr once = topo::taggedShard(maxPtr, 63);
    const Addr twice = topo::taggedShard(once, 1);
    EXPECT_EQ(topo::shardTag(twice), 1u);
    EXPECT_EQ(topo::stripShard(twice), maxPtr);
}

} // anonymous namespace
} // namespace kmu
