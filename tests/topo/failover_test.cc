/**
 * @file
 * Failover addressing tests: topo::failoverShard's sibling choice as
 * a pure function, and the end-to-end claim that a quarantined
 * shard's keys land on siblings — and still verify — under both
 * interleave modes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "access/runtime.hh"
#include "common/random.hh"
#include "core/run_result_wire.hh"
#include "core/sim_system.hh"
#include "fault/fault_plan.hh"
#include "health/health.hh"
#include "topo/topology.hh"

namespace kmu
{
namespace
{

using fault::FaultPlan;

TEST(FailoverShardTest, PicksOnlyRoutableSiblings)
{
    // Every candidate the salt can select is routable and is not the
    // sick shard itself.
    const std::uint64_t mask = 0b1101; // shard 1 quarantined too
    for (std::uint64_t salt = 0; salt < 16; ++salt) {
        const std::uint32_t t = topo::failoverShard(2, mask, 4, salt);
        EXPECT_NE(t, 2u);
        EXPECT_NE(t, 1u);
        EXPECT_NE(mask >> t & 1u, 0u);
    }
}

TEST(FailoverShardTest, SaltSpreadsOverAllCandidates)
{
    // With c candidates, salts 0..c-1 must cover all of them — the
    // spread is what keeps failover traffic from dogpiling one
    // sibling.
    std::uint64_t hit = 0;
    for (std::uint64_t salt = 0; salt < 3; ++salt)
        hit |= std::uint64_t(1) << topo::failoverShard(0, 0b1111, 4,
                                                       salt);
    EXPECT_EQ(hit, 0b1110u);
}

TEST(FailoverShardTest, DegeneratesToNaturalWithoutCandidates)
{
    // Single-shard topology, fully-quarantined mask, and
    // only-the-natural-routable all fall back to the natural owner.
    EXPECT_EQ(topo::failoverShard(0, 0b1, 1, 7), 0u);
    EXPECT_EQ(topo::failoverShard(1, 0b0000, 4, 7), 1u);
    EXPECT_EQ(topo::failoverShard(1, 0b0010, 4, 7), 1u);
}

TEST(FailoverShardTest, DeterministicInSalt)
{
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
        EXPECT_EQ(topo::failoverShard(3, 0b0111, 4, salt),
                  topo::failoverShard(3, 0b0111, 4, salt));
    }
}

constexpr std::size_t imageBytes = 256 * 1024;

std::vector<std::uint8_t>
patternImage()
{
    std::vector<std::uint8_t> image(imageBytes);
    for (std::size_t off = 0; off < imageBytes; off += 8) {
        const std::uint64_t v = mix64(off);
        std::memcpy(image.data() + off, &v, 8);
    }
    return image;
}

/**
 * End-to-end: hang shard 0 of a 4-shard runtime for a window long
 * enough to quarantine it, and prove its keys were served — with
 * correct data — by siblings while it was dark. The interleave mode
 * decides which lines those keys are, so both remaps must pass.
 */
void
outageFailsOverToSiblings(topo::Interleave interleave)
{
    Runtime::Config cfg;
    cfg.mechanism = Mechanism::SwQueue;
    cfg.deterministicDevice = true;
    cfg.shards = 4;
    cfg.interleave = interleave;
    cfg.health.mode = health::Mode::Full;
    // The watchdog must not exhaust while the shard is dark and
    // pre-quarantine; the deadline path bounds latency instead.
    cfg.retry.maxRetries = 1'000'000;
    Runtime rt(patternImage(), cfg);

    constexpr std::uint64_t fibers = 4;
    constexpr std::uint64_t ops = 1500;
    std::uint64_t ok = 0, deadline_errors = 0, mismatches = 0;
    for (std::uint64_t f = 0; f < fibers; ++f) {
        rt.spawnWorker([&, f](AccessEngine &eng) {
            Rng rng(mix64(0xfa110ull + f));
            for (std::uint64_t op = 0; op < ops; ++op) {
                const Addr a = rng.nextBounded(imageBytes / 8) * 8;
                std::uint64_t got = 0;
                if (eng.tryRead64(a, got) == AccessStatus::Ok) {
                    ok++;
                    if (got != mix64(a))
                        mismatches++;
                } else {
                    deadline_errors++;
                }
            }
        });
    }

    FaultPlan plan = FaultPlan::outage(/*seed=*/31, /*shardMask=*/0x1,
                                       /*hangWindow=*/4096,
                                       /*period=*/std::uint64_t(1)
                                           << 20);
    fault::install(&plan);
    rt.run();
    fault::install(nullptr);

    // Every request completed or errored, and nothing that completed
    // returned wrong bytes — a failed-over read that raced a posted
    // write would show up here.
    EXPECT_EQ(mismatches, 0u);
    EXPECT_EQ(ok + deadline_errors, fibers * ops);

    // The shard actually went dark, was quarantined, and its keys
    // were re-routed to siblings.
    ASSERT_NE(rt.healthController(), nullptr);
    const auto counters = rt.healthController()->counters();
    EXPECT_GE(counters.quarantines, 1u);
    EXPECT_GT(counters.failovers, 0u);
    EXPECT_GT(rt.engine().recovery().failovers, 0u);
}

TEST(FailoverTest, QuarantinedKeysLandOnSiblingsCacheLine)
{
    outageFailsOverToSiblings(topo::Interleave::CacheLine);
}

TEST(FailoverTest, QuarantinedKeysLandOnSiblingsPage)
{
    outageFailsOverToSiblings(topo::Interleave::Page);
}

// ---------------------------------------------------------------
// Failover vs the parallel shard executor (sim/parallel.hh).
// ---------------------------------------------------------------

SystemConfig
parallelWriteMixConfig()
{
    SystemConfig cfg;
    cfg.mechanism = Mechanism::Prefetch;
    cfg.numCores = 2;
    cfg.threadsPerCore = 8;
    cfg.device.latency = microseconds(1);
    cfg.topo.shards = 4;
    cfg.topo.interleave = topo::Interleave::Page;
    cfg.writeFraction = 0.4;
    cfg.measure = microseconds(200);
    return cfg;
}

TEST(FailoverParallelTest, HealthRoutingForcesSerialFallback)
{
    // Health-driven reroutes move a request between shard domains
    // outside the lookahead contract (a failover re-targets a
    // sibling's link with no minimum latency floor), so a
    // health-enabled config must transparently refuse the parallel
    // executor — and produce exactly the serial result — rather
    // than run with an unsound window.
    SystemConfig cfg = parallelWriteMixConfig();
    cfg.health.mode = health::Mode::Full;

    cfg.parallel = ParallelMode::Shards;
    SimSystem requested(cfg);
    EXPECT_FALSE(requested.parallelActive());
    const auto par = serializeRunResult(requested.run());

    cfg.parallel = ParallelMode::Off;
    SimSystem serial(cfg);
    const auto ser = serializeRunResult(serial.run());
    EXPECT_EQ(par, ser);
}

TEST(FailoverParallelTest, ReadYourWritesAcrossDomainThreads)
{
    // Page interleave walks every thread's access stream across all
    // four shard domains, so each lane's posted writes and its
    // later reads land on different domain threads. Read-your-
    // writes holds iff the parallel executor delivers them in the
    // serial kernel's order — witnessed by the full RunResult
    // (per-shard request extremes, write totals, latency, goodput)
    // serializing byte-identically to the serial run.
    SystemConfig cfg = parallelWriteMixConfig();
    cfg.parallel = ParallelMode::Shards;
    SimSystem par(cfg);
    ASSERT_TRUE(par.parallelActive());
    const RunResult pres = par.run();
    EXPECT_GT(pres.writes, 0u);
    EXPECT_GT(pres.accesses, 0u);
    EXPECT_GT(pres.shardRequestsMin, 0u);

    cfg.parallel = ParallelMode::Off;
    SimSystem ser(cfg);
    EXPECT_EQ(serializeRunResult(pres),
              serializeRunResult(ser.run()));
}

TEST(FailoverParallelTest, SequentialWindowsMatchThreadedWindows)
{
    // The same parallel config at threads=1 (epoch machinery on the
    // calling thread) and one-thread-per-domain must agree bit for
    // bit: ordering may never depend on which thread serviced a
    // domain's window.
    SystemConfig cfg = parallelWriteMixConfig();
    cfg.parallel = ParallelMode::Shards;

    cfg.parallelThreads = 1;
    SimSystem seq(cfg);
    ASSERT_TRUE(seq.parallelActive());
    const auto a = serializeRunResult(seq.run());

    cfg.parallelThreads = 5;
    SimSystem thr(cfg);
    ASSERT_TRUE(thr.parallelActive());
    const auto b = serializeRunResult(thr.run());
    EXPECT_EQ(a, b);
}

} // anonymous namespace
} // namespace kmu
