/**
 * @file
 * Tests for the shard-routing pure functions (topo/topology.hh):
 * address interleaving, chip-queue provisioning, component naming.
 */

#include <gtest/gtest.h>

#include "topo/topology.hh"

namespace kmu
{
namespace
{

topo::TopologyConfig
make(std::uint32_t shards, topo::Interleave il,
     topo::ChipQueuePolicy pol = topo::ChipQueuePolicy::Replicated)
{
    topo::TopologyConfig t;
    t.shards = shards;
    t.interleave = il;
    t.chipQueuePolicy = pol;
    return t;
}

TEST(TopologyTest, CacheLineInterleaveRoundRobins)
{
    const auto t = make(4, topo::Interleave::CacheLine);
    for (std::uint64_t line = 0; line < 64; ++line) {
        EXPECT_EQ(topo::shardOf(line * cacheLineSize, t), line % 4)
            << "line " << line;
    }
    // Sub-line offsets never change the owner.
    EXPECT_EQ(topo::shardOf(cacheLineSize + 63, t), 1u);
}

TEST(TopologyTest, PageInterleaveGroupsWholePages)
{
    const auto t = make(4, topo::Interleave::Page);
    for (std::uint64_t page = 0; page < 16; ++page) {
        const Addr base = page * topo::interleavePageBytes;
        const std::uint32_t owner = topo::shardOf(base, t);
        EXPECT_EQ(owner, page % 4);
        // Every line of the page routes to the same shard.
        EXPECT_EQ(topo::shardOf(base + topo::interleavePageBytes -
                                    cacheLineSize,
                                t),
                  owner);
    }
}

TEST(TopologyTest, SingleShardDegeneratesToIdentity)
{
    for (auto il : {topo::Interleave::CacheLine, topo::Interleave::Page}) {
        const auto t = make(1, il, topo::ChipQueuePolicy::Partitioned);
        EXPECT_EQ(topo::shardOf(0, t), 0u);
        EXPECT_EQ(topo::shardOf(0xdeadbeef00ull, t), 0u);
        // Even the partitioned policy keeps the full queue budget.
        EXPECT_EQ(topo::chipQueueSlice(14, t), 14u);
    }
}

TEST(TopologyTest, NonPowerOfTwoShardCounts)
{
    const auto t = make(3, topo::Interleave::CacheLine);
    std::uint64_t seen[3] = {};
    for (std::uint64_t line = 0; line < 99; ++line) {
        const std::uint32_t s = topo::shardOf(line * cacheLineSize, t);
        ASSERT_LT(s, 3u);
        seen[s]++;
    }
    EXPECT_EQ(seen[0], 33u);
    EXPECT_EQ(seen[1], 33u);
    EXPECT_EQ(seen[2], 33u);
}

TEST(TopologyTest, ChipQueueSlicePolicies)
{
    const auto repl =
        make(4, topo::Interleave::CacheLine,
             topo::ChipQueuePolicy::Replicated);
    EXPECT_EQ(topo::chipQueueSlice(14, repl), 14u);

    const auto part =
        make(4, topo::Interleave::CacheLine,
             topo::ChipQueuePolicy::Partitioned);
    EXPECT_EQ(topo::chipQueueSlice(14, part), 3u);

    // A slice never rounds down to zero entries.
    const auto wide =
        make(64, topo::Interleave::CacheLine,
             topo::ChipQueuePolicy::Partitioned);
    EXPECT_EQ(topo::chipQueueSlice(14, wide), 1u);
}

TEST(TopologyTest, ShardNamesPreserveSingleDeviceNames)
{
    // shards=1 components keep their historical names, which is
    // what keeps stat trees and trace-lane labels byte-identical.
    EXPECT_EQ(topo::shardName("pcie", 0, 1), "pcie");
    EXPECT_EQ(topo::shardName("pcie", 0, 4), "pcie_s0");
    EXPECT_EQ(topo::shardName("chip_pcie_queue", 3, 4),
              "chip_pcie_queue_s3");
}

TEST(TopologyTest, StableKnobNames)
{
    EXPECT_STREQ(topo::interleaveName(topo::Interleave::CacheLine),
                 "cacheline");
    EXPECT_STREQ(topo::interleaveName(topo::Interleave::Page), "page");
    EXPECT_STREQ(
        topo::chipQueuePolicyName(topo::ChipQueuePolicy::Replicated),
        "replicated");
    EXPECT_STREQ(
        topo::chipQueuePolicyName(topo::ChipQueuePolicy::Partitioned),
        "partitioned");
}

} // anonymous namespace
} // namespace kmu
