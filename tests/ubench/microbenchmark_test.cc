/**
 * @file
 * Tests for the host-side microbenchmark driver and work loop.
 */

#include <gtest/gtest.h>

#include "ubench/microbenchmark.hh"
#include "ubench/work_loop.hh"

namespace kmu
{
namespace
{

TEST(WorkLoopTest, DependsOnSeed)
{
    EXPECT_EQ(workLoop(1, 100), workLoop(1, 100));
    EXPECT_NE(workLoop(1, 100), workLoop(2, 100));
    EXPECT_NE(workLoop(1, 100), workLoop(1, 200));
}

TEST(WorkLoopTest, ScalesWithInstructionCount)
{
    // More requested instructions must take more time; coarse check
    // with a large ratio to stay robust on loaded machines.
    const auto time_of = [](std::uint32_t instrs) {
        const auto start = std::chrono::steady_clock::now();
        std::uint64_t acc = 0;
        for (int i = 0; i < 2000; ++i)
            acc ^= workLoop(acc + i, instrs);
        consume(acc);
        return std::chrono::steady_clock::now() - start;
    };
    // Warm up, then measure.
    time_of(100);
    const auto small = time_of(100);
    const auto large = time_of(3200);
    EXPECT_GT(large, 4 * small);
}

struct HostBenchCase
{
    Mechanism mechanism;
    std::uint32_t threads;
    std::uint32_t batch;
};

class HostBenchTest : public ::testing::TestWithParam<HostBenchCase>
{
};

TEST_P(HostBenchTest, RunsAndChecksums)
{
    // runHostMicrobenchmark internally verifies every loaded word
    // against the image; surviving the call is the data-correctness
    // assertion.
    HostBenchConfig cfg;
    cfg.mechanism = GetParam().mechanism;
    cfg.threads = GetParam().threads;
    cfg.batch = GetParam().batch;
    cfg.iterationsPerThread = 400;
    cfg.workCount = 100;
    cfg.regionBytes = 8 << 20;
    cfg.deviceLatency = std::chrono::nanoseconds(300);

    const auto res = runHostMicrobenchmark(cfg);
    EXPECT_EQ(res.iterations, 400u * cfg.threads);
    EXPECT_EQ(res.accesses, res.iterations * cfg.batch);
    EXPECT_GT(res.seconds, 0.0);
    EXPECT_GT(res.accessesPerUs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, HostBenchTest,
    ::testing::Values(
        HostBenchCase{Mechanism::OnDemand, 1, 1},
        HostBenchCase{Mechanism::Prefetch, 8, 1},
        HostBenchCase{Mechanism::Prefetch, 8, 4},
        HostBenchCase{Mechanism::SwQueue, 8, 1},
        HostBenchCase{Mechanism::SwQueue, 8, 4}));

TEST(HostBenchTest, NormalizationHelper)
{
    HostBenchResult base;
    base.workInstrsPerUs = 200.0;
    HostBenchResult other;
    other.workInstrsPerUs = 100.0;
    EXPECT_DOUBLE_EQ(hostNormalized(other, base), 0.5);
}

} // anonymous namespace
} // namespace kmu
