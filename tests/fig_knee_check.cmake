# Serving knee gate: the open-loop knee bench must (a) be
# deterministic — two identical runs produce byte-identical CSVs,
# which must also match the committed artifact — (b) degrade
# monotonically: per mechanism, p99 latency never drops by more than
# 5% as offered load rises (the slack absorbs small-sample noise at
# light load), and (c) order the mechanisms as the model predicts:
# the SW-queue path sustains the highest goodput under the fixed
# 20 us SLO, and every mechanism's p99 is past the SLO at the top of
# the sweep (each curve actually has a knee inside it).
#
# Invoked by ctest as:
#   cmake -DFIG_KNEE=<path> -DARTIFACT_DIR=<dir> -DWORK_DIR=<dir>
#         -P fig_knee_check.cmake

if(NOT FIG_KNEE)
    message(FATAL_ERROR "pass -DFIG_KNEE=<path to fig_knee>")
endif()
if(NOT ARTIFACT_DIR)
    message(FATAL_ERROR "pass -DARTIFACT_DIR=<committed CSV dir>")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORK_DIR}/fig_knee_check)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

foreach(run a b)
    file(MAKE_DIRECTORY ${dir}/${run})
    execute_process(
        COMMAND ${FIG_KNEE} jobs=4
        WORKING_DIRECTORY ${dir}/${run}
        OUTPUT_FILE ${dir}/${run}/fig_knee.out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "fig_knee run '${run}' failed (rc=${rc}): ${err}")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${dir}/a/fig_knee.csv ${dir}/b/fig_knee.csv
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "fig_knee CSVs differ between identical runs: the serving "
        "arrival stream or the latency accounting is "
        "nondeterministic (compare a/ and b/ under ${dir})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${dir}/a/fig_knee.csv ${ARTIFACT_DIR}/fig_knee.csv
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "fig_knee.csv differs from the committed artifact (fresh "
        "copy in ${dir}/a; if the change is intentional, regenerate "
        "and commit the CSV)")
endif()

# Every cell is printed with exactly three decimals; stripping the
# dot yields milli-units as integers CMake's math() can compare.
function(scaled out cell)
    string(REPLACE "." "" v "${cell}")
    string(REGEX REPLACE "^0+" "" v "${v}")
    if(v STREQUAL "")
        set(v 0)
    endif()
    set(${out} ${v} PARENT_SCOPE)
endfunction()

set(num "[0-9]+\\.[0-9]+")
set(mechs ondemand prefetch swqueue)
foreach(mech ${mechs})
    set(prev_p99_${mech} 0)
    set(max_good_${mech} 0)
    set(last_p99_${mech} 0)
endforeach()

file(STRINGS ${dir}/a/fig_knee.csv rows)
set(data_rows 0)
foreach(row ${rows})
    string(REGEX MATCH
        "^(${num}),(${num}),(${num}),(${num}),(${num}),(${num}),(${num})$"
        m "${row}")
    if(NOT m)
        continue()
    endif()
    math(EXPR data_rows "${data_rows} + 1")
    scaled(od_p99 ${CMAKE_MATCH_2})
    scaled(od_good ${CMAKE_MATCH_3})
    scaled(pf_p99 ${CMAKE_MATCH_4})
    scaled(pf_good ${CMAKE_MATCH_5})
    scaled(swq_p99 ${CMAKE_MATCH_6})
    scaled(swq_good ${CMAKE_MATCH_7})
    set(p99_ondemand ${od_p99})
    set(p99_prefetch ${pf_p99})
    set(p99_swqueue ${swq_p99})
    set(good_ondemand ${od_good})
    set(good_prefetch ${pf_good})
    set(good_swqueue ${swq_good})
    foreach(mech ${mechs})
        # Monotone degradation with 5% slack: 100*p99 >= 95*prev.
        math(EXPR lhs "100 * ${p99_${mech}}")
        math(EXPR rhs "95 * ${prev_p99_${mech}}")
        if(lhs LESS rhs)
            message(FATAL_ERROR
                "${mech} p99 drops by more than 5% between adjacent "
                "offered loads (row '${row}'): the latency curve is "
                "not monotonically degrading")
        endif()
        set(prev_p99_${mech} ${p99_${mech}})
        set(last_p99_${mech} ${p99_${mech}})
        if(good_${mech} GREATER max_good_${mech})
            set(max_good_${mech} ${good_${mech}})
        endif()
    endforeach()
endforeach()
if(NOT data_rows GREATER 4)
    message(FATAL_ERROR
        "fig_knee.csv parsed only ${data_rows} data rows; the sweep "
        "or the CSV format changed under the gate")
endif()

# The fixed SLO is 20 us = 20000 milli-units scaled. At the top of
# the sweep every mechanism must be past it — otherwise the sweep no
# longer reaches the knees it exists to show.
foreach(mech ${mechs})
    if(NOT last_p99_${mech} GREATER 20000)
        message(FATAL_ERROR
            "${mech} p99 at the highest offered load is "
            "${last_p99_${mech}} milli-us, inside the 20 us SLO: the "
            "sweep no longer saturates this mechanism")
    endif()
endforeach()

# The paper's ordering: software queues sustain the most load under
# the SLO, prefetch more than on-demand.
if(NOT max_good_swqueue GREATER ${max_good_prefetch})
    message(FATAL_ERROR
        "SW-queue peak goodput ${max_good_swqueue} does not beat "
        "prefetch's ${max_good_prefetch} under the 20 us SLO")
endif()
if(NOT max_good_swqueue GREATER ${max_good_ondemand})
    message(FATAL_ERROR
        "SW-queue peak goodput ${max_good_swqueue} does not beat "
        "on-demand's ${max_good_ondemand} under the 20 us SLO")
endif()

message(STATUS
    "fig_knee check passed: ${data_rows} loads, peak goodput "
    "swqueue=${max_good_swqueue} > prefetch=${max_good_prefetch} / "
    "ondemand=${max_good_ondemand} (milli-req/us), curves monotone, "
    "CSVs byte-identical and matching the committed artifact")
