# Outage-ablation gate: with a 1-of-4-shard outage injected, the
# full health controller must (a) keep goodput within ~70% of the
# fault-free run — measured on the deterministic makespan, since
# every cell completes the same fixed workload — (b) beat the static
# no-control-plane configuration by a clear margin, (c) lose no
# request (the bench itself exits nonzero unless every request
# completes or errors within its deadline, and on any verify error),
# and (d) be deterministic: two identical runs produce byte-identical
# CSVs, which must also match the committed artifact.
#
# Invoked by ctest as:
#   cmake -DABL_OUTAGE=<path> -DARTIFACT_DIR=<dir> -DWORK_DIR=<dir>
#         -P abl_outage_check.cmake

if(NOT ABL_OUTAGE)
    message(FATAL_ERROR "pass -DABL_OUTAGE=<path to abl_outage>")
endif()
if(NOT ARTIFACT_DIR)
    message(FATAL_ERROR "pass -DARTIFACT_DIR=<committed CSV dir>")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORK_DIR}/abl_outage_check)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

foreach(run a b)
    file(MAKE_DIRECTORY ${dir}/${run})
    execute_process(
        COMMAND ${ABL_OUTAGE}
        WORKING_DIRECTORY ${dir}/${run}
        OUTPUT_FILE ${dir}/${run}/abl_outage.out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "abl_outage run '${run}' failed (rc=${rc}): a verify "
            "error or a lost request — a read returned wrong data, "
            "or a request neither completed nor errored within its "
            "deadline: ${err}")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${dir}/a/abl_outage.csv ${dir}/b/abl_outage.csv
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "abl_outage CSVs differ between identical seeded runs; the "
        "outage schedule or the recovery path is nondeterministic "
        "(compare a/abl_outage.csv and b/abl_outage.csv in ${dir})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${dir}/a/abl_outage.csv ${ARTIFACT_DIR}/abl_outage.csv
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "abl_outage.csv differs from the committed artifact (fresh "
        "copy in ${dir}/a; if the change is intentional, regenerate "
        "and commit the CSV)")
endif()

# Pull the per-config makespans out of the CSV. total_polls is the
# last column; rows are config,...,total_polls.
file(STRINGS ${dir}/a/abl_outage.csv rows)
foreach(row ${rows})
    string(REGEX MATCH "^([a-z_]+),.*,([0-9]+)$" m "${row}")
    if(m)
        set(polls_${CMAKE_MATCH_1} ${CMAKE_MATCH_2})
    endif()
endforeach()
foreach(config fault_free static full)
    if(NOT DEFINED polls_${config})
        message(FATAL_ERROR
            "abl_outage.csv has no '${config}' row to gate on")
    endif()
endforeach()

# Goodput floor: the full controller's makespan may exceed the
# fault-free makespan by at most 10/7 — i.e. throughput on the fixed
# workload stays >= 70% of fault-free despite one of four shards
# being dark for a 16k-poll window.
math(EXPR ceiling "(${polls_fault_free} * 10) / 7")
if(polls_full GREATER ceiling)
    message(FATAL_ERROR
        "full controller makespan ${polls_full} polls exceeds "
        "${ceiling} (fault-free ${polls_fault_free} x 10/7): goodput "
        "under the outage dropped below ~70% of fault-free")
endif()

# And the control plane must actually pay for itself: the static
# configuration rides the watchdog through the whole outage window,
# so its makespan must be clearly worse than the full controller's.
if(NOT polls_static GREATER ${polls_full})
    message(FATAL_ERROR
        "static makespan ${polls_static} polls is not worse than the "
        "full controller's ${polls_full}: the injected outage no "
        "longer stresses the no-control-plane configuration")
endif()

message(STATUS
    "abl_outage check passed: full=${polls_full} polls vs "
    "fault-free=${polls_fault_free} (ceiling ${ceiling}), "
    "static=${polls_static}, CSVs byte-identical and matching the "
    "committed artifact")
