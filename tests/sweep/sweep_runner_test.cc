/**
 * @file
 * SweepRunner contract: parallel execution returns exactly the
 * serial results in submission order, whatever the worker count, and
 * a dying worker costs recovery work, never results.
 */

#include <gtest/gtest.h>

#ifdef __unix__
#include <unistd.h>
#endif

#include "core/run_result_wire.hh"
#include "sweep/sweep_runner.hh"

using namespace kmu;
using sweep::SweepRunner;

namespace
{

/** A deterministic fake point: every field derived from the index. */
RunResult
makePoint(std::size_t i)
{
    RunResult r;
    r.elapsed = Tick(1000 + i);
    r.iterations = 10 * i + 1;
    r.workInstrs = i * i;
    r.accesses = i + 7;
    r.writes = i / 2;
    r.workIpc = 1.0 + double(i) / 3.0;
    r.accessesPerUs = double(i) / 7.0;
    r.meanReadLatencyNs = 1000.0 / double(i + 1);
    r.toHostWireGBs = double(i) * 0.3;
    r.toHostUsefulGBs = double(i) * 0.2;
    r.toDeviceWireGBs = double(i) * 0.1;
    r.chipQueuePeak = std::uint32_t(i % 48);
    r.prefetchesQueued = i * 3;
    r.replayMisses = i % 5;
    r.l1Hits = i * 11;
    r.l1Misses = i * 13;
    return r;
}

/** Field-complete, bit-exact equality via the wire encoding. */
void
expectSame(const std::vector<RunResult> &got, std::size_t count)
{
    ASSERT_EQ(got.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(serializeRunResult(got[i]),
                  serializeRunResult(makePoint(i)))
            << "result " << i << " not merged in submission order";
    }
}

} // anonymous namespace

TEST(SweepRunner, SerialPathReturnsSubmissionOrder)
{
    SweepRunner pool;
    SweepRunner::Stats stats;
    const auto got = pool.run(9, makePoint, 1, &stats);
    expectSame(got, 9);
    EXPECT_EQ(stats.points, 9u);
    EXPECT_EQ(stats.jobs, 1u);
    EXPECT_EQ(stats.workersDied, 0u);
    EXPECT_EQ(stats.pointsRecovered, 0u);
}

TEST(SweepRunner, ParallelMatchesSerialBitExactly)
{
    if (!SweepRunner::forkSupported())
        GTEST_SKIP() << "no fork() on this platform";
    SweepRunner pool;
    SweepRunner::Stats stats;
    const auto got = pool.run(23, makePoint, 4, &stats);
    expectSame(got, 23);
    EXPECT_EQ(stats.jobs, 4u);
    EXPECT_EQ(stats.workersDied, 0u);
    EXPECT_GT(stats.serialSeconds, 0.0);
}

TEST(SweepRunner, MoreJobsThanPointsClampsCleanly)
{
    if (!SweepRunner::forkSupported())
        GTEST_SKIP() << "no fork() on this platform";
    SweepRunner pool;
    SweepRunner::Stats stats;
    const auto got = pool.run(3, makePoint, 16, &stats);
    expectSame(got, 3);
    EXPECT_LE(stats.jobs, 3u);
}

TEST(SweepRunner, ZeroPointsIsEmpty)
{
    SweepRunner pool;
    EXPECT_TRUE(pool.run(0, makePoint, 4).empty());
}

#ifdef __unix__
TEST(SweepRunner, WorkerDeathRecoversMissingPoints)
{
    if (!SweepRunner::forkSupported())
        GTEST_SKIP() << "no fork() on this platform";
    SweepRunner pool;
    SweepRunner::Stats stats;
    // Worker 1 (owner of indices 1, 3, 5, 7) dies on its first
    // point. The parent must detect the death and recompute every
    // unreported point in-process, where inWorker() is false.
    const auto got = pool.run(
        8,
        [](std::size_t i) {
            if (i == 1 && SweepRunner::inWorker())
                ::_exit(3);
            return makePoint(i);
        },
        2, &stats);
    expectSame(got, 8);
    EXPECT_EQ(stats.workersDied, 1u);
    EXPECT_EQ(stats.pointsRecovered, 4u);
}
#endif

TEST(SweepRunner, EnvJobsParsesStrictly)
{
    ::setenv("KMU_JOBS", "6", 1);
    EXPECT_EQ(SweepRunner::envJobs(), 6u);
    ::setenv("KMU_JOBS", "abc", 1);
    EXPECT_EQ(SweepRunner::envJobs(), 1u);
    ::setenv("KMU_JOBS", "4x", 1);
    EXPECT_EQ(SweepRunner::envJobs(), 1u);
    ::unsetenv("KMU_JOBS");
    EXPECT_EQ(SweepRunner::envJobs(), 1u);
}
