/**
 * @file
 * FigureRunner: the two-pass collect/execute/render protocol must
 * reproduce direct serial execution exactly, and the baseline memo
 * must key on the full workload shape — the shipped bug truncated
 * writeFraction via int(wf * 1000), silently sharing one baseline
 * between distinct write mixes.
 */

#include <gtest/gtest.h>

#include "core/run_result_wire.hh"
#include "sweep/figure_runner.hh"

using namespace kmu;

namespace
{

SystemConfig
tiny(unsigned threads)
{
    SystemConfig cfg;
    cfg.mechanism = Mechanism::Prefetch;
    cfg.threadsPerCore = threads;
    cfg.warmup = microseconds(5);
    cfg.measure = microseconds(25);
    return cfg;
}

} // anonymous namespace

TEST(FigureRunnerBaseline, AdjacentWriteFractionsKeyDistinctly)
{
    // Regression: int(0.1004 * 1000) == int(0.1009 * 1000) == 100,
    // so the old memo handed the 0.1009 row the 0.1004 baseline.
    SystemConfig a = tiny(1);
    SystemConfig b = tiny(1);
    a.writeFraction = 0.1004;
    b.writeFraction = 0.1009;
    EXPECT_NE(FigureRunner::baselineKey(a),
              FigureRunner::baselineKey(b));

    FigureRunner runner;
    runner.beginCollect();
    runner.baseline(a);
    runner.baseline(b);
    runner.baseline(a); // exact repeat must share its memo slot
    EXPECT_EQ(runner.baselineCount(), 2u);
    EXPECT_EQ(runner.pointCount(), 2u);
}

TEST(FigureRunnerBaseline, KeyCoversBaselineShapingFields)
{
    const SystemConfig ref = tiny(1);
    const std::string refKey = FigureRunner::baselineKey(ref);

    SystemConfig m = ref;
    m.workCount = ref.workCount + 1;
    EXPECT_NE(FigureRunner::baselineKey(m), refKey);

    m = ref;
    m.batch = ref.batch + 1;
    EXPECT_NE(FigureRunner::baselineKey(m), refKey);

    m = ref;
    m.ctxSwitchCost = ref.ctxSwitchCost + 1;
    EXPECT_NE(FigureRunner::baselineKey(m), refKey);

    m = ref;
    m.measure = ref.measure + 1;
    EXPECT_NE(FigureRunner::baselineKey(m), refKey);

    // Fields the baseline cannot observe must NOT shred sharing:
    // every thread count of a sweep column shares one DRAM baseline.
    m = ref;
    m.threadsPerCore = 32;
    m.numCores = 8;
    m.device.latency = microseconds(4);
    m.chipPcieQueue = 1024;
    EXPECT_EQ(FigureRunner::baselineKey(m), refKey);
}

TEST(FigureRunner, TwoPassMatchesDirectExecution)
{
    const unsigned threadList[] = {1u, 2u, 3u};

    std::vector<double> normals;
    std::vector<RunResult> runs;
    const auto body = [&](FigureRunner &r) {
        normals.clear();
        runs.clear();
        for (unsigned threads : threadList) {
            SystemConfig cfg = tiny(threads);
            normals.push_back(r.normalized(cfg));
            runs.push_back(r.run(cfg));
        }
    };

    FigureRunner runner;
    runner.beginCollect();
    body(runner);
    // Three normalized() points + three run() points + one shared
    // baseline (threadsPerCore is not a baseline-shaping field).
    EXPECT_EQ(runner.pointCount(), 7u);
    EXPECT_EQ(runner.baselineCount(), 1u);

    const auto stats = runner.execute(2);
    EXPECT_EQ(stats.points, 7u);

    runner.beginRender();
    body(runner);

    for (std::size_t i = 0; i < 3; ++i) {
        SystemConfig cfg = tiny(threadList[i]);
        const RunResult direct = runSystem(cfg);
        const RunResult base = runSystem(baselineConfig(cfg));
        EXPECT_EQ(serializeRunResult(runs[i]),
                  serializeRunResult(direct))
            << "run() result " << i << " differs from direct";
        EXPECT_EQ(normals[i], normalizedWorkIpc(direct, base))
            << "normalized() result " << i << " differs from direct";
    }
}

TEST(FigureRunner, CollectPassIsInert)
{
    FigureRunner runner;
    runner.beginCollect();
    const SystemConfig cfg = tiny(2);

    // Dummies keep any body-side normalizedWorkIpc() call finite.
    const RunResult dummy = runner.run(cfg);
    EXPECT_GT(dummy.workIpc, 0.0);
    EXPECT_EQ(runner.normalized(cfg), 0.0);

    // emit() must not write anything during collect.
    Table table("inert");
    table.setHeader({"a"});
    table.addRow({"1"});
    runner.emit(table, "figure_runner_test_inert.csv");
    std::FILE *f = std::fopen("figure_runner_test_inert.csv", "rb");
    EXPECT_EQ(f, nullptr);
    if (f)
        std::fclose(f);
}
