# Fault-campaign gate: kmu_faultstorm must (a) survive a composite
# fault schedule with zero verify errors / invariant violations and
# the recovery machinery demonstrably firing (require_recovery=1
# makes the tool enforce both), and (b) be deterministic — two runs
# of the same campaign produce byte-identical CSVs.
#
# Invoked by ctest as:
#   cmake -DKMU_FAULTSTORM=<path> -DWORK_DIR=<dir>
#         -P faultstorm_check.cmake

if(NOT KMU_FAULTSTORM)
    message(FATAL_ERROR "pass -DKMU_FAULTSTORM=<path to kmu_faultstorm>")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(ARGS seed=7 rates=0,0.001,0.01 ops=1500 fibers=4
         require_recovery=1)

foreach(run a b)
    execute_process(
        COMMAND ${KMU_FAULTSTORM} ${ARGS}
        OUTPUT_FILE ${WORK_DIR}/faultstorm_${run}.csv
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "kmu_faultstorm run '${run}' failed (rc=${rc}): a "
            "workload verified wrong data, an invariant tripped, or "
            "the recovery machinery never fired (see "
            "faultstorm_${run}.csv in ${WORK_DIR})")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/faultstorm_a.csv
            ${WORK_DIR}/faultstorm_b.csv
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "kmu_faultstorm CSVs differ between identical campaigns; "
        "fault injection or recovery is nondeterministic (compare "
        "faultstorm_a.csv and faultstorm_b.csv in ${WORK_DIR})")
endif()
message(STATUS "faultstorm check passed: recovery fired, CSVs "
               "byte-identical")
