/**
 * @file
 * Tests for shard-scoped fault injection: a FaultSpec's shardMask
 * must gate injection per device shard without perturbing the RNG
 * schedule of the shards it does target.
 */

#include <gtest/gtest.h>

#include "core/sim_system.hh"
#include "fault/fault_plan.hh"
#include "topo/topology.hh"

namespace kmu
{
namespace
{

TEST(FaultShardTest, MaskedShardNeverInjects)
{
    fault::FaultPlan plan(7);
    fault::FaultSpec spec;
    spec.rate = 1.0;
    spec.shardMask = std::uint64_t(1) << 1; // shard 1 only
    plan.set(fault::FaultSite::PcieTlpDrop, spec);

    for (int i = 0; i < 5; ++i) {
        EXPECT_FALSE(
            plan.shouldInject(fault::FaultSite::PcieTlpDrop, 0));
    }
    EXPECT_EQ(plan.encounters(fault::FaultSite::PcieTlpDrop), 5u);
    EXPECT_EQ(plan.injected(fault::FaultSite::PcieTlpDrop), 0u);

    EXPECT_TRUE(plan.shouldInject(fault::FaultSite::PcieTlpDrop, 1));
    EXPECT_EQ(plan.injected(fault::FaultSite::PcieTlpDrop), 1u);
}

TEST(FaultShardTest, MaskedEncountersDrawNothing)
{
    // Interleaving masked-out encounters must leave the targeted
    // shard's injection schedule untouched: the masked path may not
    // consume from the site's RNG stream.
    const auto site = fault::FaultSite::UncoreEntryStall;
    fault::FaultSpec spec;
    spec.rate = 0.5;

    fault::FaultPlan pure(42);
    spec.shardMask = ~std::uint64_t(0);
    pure.set(site, spec);
    bool expected[16];
    for (bool &e : expected)
        e = pure.shouldInject(site, 1);

    fault::FaultPlan masked(42);
    spec.shardMask = std::uint64_t(1) << 1;
    masked.set(site, spec);
    for (bool e : expected) {
        // A shard-0 encounter between every shard-1 encounter.
        EXPECT_FALSE(masked.shouldInject(site, 0));
        EXPECT_EQ(masked.shouldInject(site, 1), e);
    }
}

TEST(FaultShardTest, DefaultMaskCoversEveryShard)
{
    fault::FaultPlan plan(3);
    fault::FaultSpec spec;
    spec.rate = 1.0;
    plan.set(fault::FaultSite::CompletionLoss, spec);
    EXPECT_TRUE(
        plan.shouldInject(fault::FaultSite::CompletionLoss, 0));
    EXPECT_TRUE(
        plan.shouldInject(fault::FaultSite::CompletionLoss, 63));
}

TEST(FaultShardTest, ShardIndexWrapsAtSixtyFour)
{
    // shouldInject masks the shard index into the 64-bit mask, so a
    // (hypothetical) shard 64 aliases bit 0 rather than shifting
    // out of range.
    fault::FaultPlan plan(5);
    fault::FaultSpec spec;
    spec.rate = 1.0;
    spec.shardMask = 1; // bit 0
    plan.set(fault::FaultSite::PcieLatencySpike, spec);
    EXPECT_TRUE(
        plan.shouldInject(fault::FaultSite::PcieLatencySpike, 64));
}

/** Sharded system whose traffic all lands on shard 0 (the default
 *  stream strides 16 lines, so cache-line interleave over two
 *  shards aliases every batch-1 access to shard 0). */
SystemConfig
aliasedTwoShardConfig()
{
    SystemConfig cfg;
    cfg.mechanism = Mechanism::Prefetch;
    cfg.numCores = 2;
    cfg.threadsPerCore = 8;
    cfg.device.latency = microseconds(1);
    cfg.topo.shards = 2;
    cfg.topo.interleave = topo::Interleave::CacheLine;
    cfg.measure = microseconds(200);
    return cfg;
}

TEST(FaultShardTest, SimInjectsOnTheTrafficBearingShard)
{
    fault::FaultPlan plan(11);
    fault::FaultSpec spec;
    spec.rate = 0.25;
    spec.shardMask = 1; // shard 0: where all the traffic goes
    plan.set(fault::FaultSite::PcieLatencySpike, spec);

    fault::ScopedPlan scoped(plan);
    const auto res = runSystem(aliasedTwoShardConfig());
    EXPECT_GT(res.accesses, 0u);
    EXPECT_GT(plan.encounters(fault::FaultSite::PcieLatencySpike), 0u);
    EXPECT_GT(plan.injected(fault::FaultSite::PcieLatencySpike), 0u);
}

TEST(FaultShardTest, SimMaskedToIdleShardInjectsNothing)
{
    fault::FaultPlan plan(11);
    fault::FaultSpec spec;
    spec.rate = 0.25;
    spec.shardMask = std::uint64_t(1) << 1; // shard 1: idle
    plan.set(fault::FaultSite::PcieLatencySpike, spec);

    fault::ScopedPlan scoped(plan);
    const auto res = runSystem(aliasedTwoShardConfig());
    EXPECT_GT(res.accesses, 0u);
    // Shard 0's link encountered the site on every delivery, but
    // the mask confined injection to the idle device.
    EXPECT_GT(plan.encounters(fault::FaultSite::PcieLatencySpike), 0u);
    EXPECT_EQ(plan.injected(fault::FaultSite::PcieLatencySpike), 0u);
}

} // anonymous namespace
} // namespace kmu
