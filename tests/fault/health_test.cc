/**
 * @file
 * Boundary tests for the shard-health control plane: the
 * HealthMonitor's EWMA/stuck/hysteresis edges and the
 * RecoveryController state machine, driven directly with synthetic
 * epoch signals so every threshold is hit exactly at its boundary
 * (the end-to-end outage behaviour is covered by
 * tests/topo/failover_test.cc and the abl_outage ctest gate).
 */

#include <gtest/gtest.h>

#include "health/health.hh"
#include "topo/topology.hh"

namespace kmu
{
namespace
{

using health::Config;
using health::HealthMonitor;
using health::Mode;
using health::RecoveryController;
using health::ShardSignals;
using health::ShardState;

/** alpha=1 makes the EWMA equal the last epoch's dirty fraction, so
 *  threshold tests see exact binary fractions, not decayed ones. */
Config
stepConfig()
{
    Config cfg;
    cfg.mode = Mode::Full;
    cfg.alpha = 1.0;
    return cfg;
}

ShardSignals
epoch(std::uint64_t completions, std::uint64_t retries,
      std::uint64_t queue_depth = 0)
{
    ShardSignals sig;
    sig.completions = completions;
    sig.retries = retries;
    sig.queueDepth = queue_depth;
    return sig;
}

TEST(HealthMonitorTest, EnterThresholdIsStrictlyAbove)
{
    // enterDegraded defaults to 0.25 — an exact binary fraction, so
    // a dirty fraction of exactly 1/4 is representable and must NOT
    // trip the (strictly greater) threshold.
    HealthMonitor at(stepConfig());
    at.observe(epoch(4, 1));
    EXPECT_DOUBLE_EQ(at.ewma(), 0.25);
    EXPECT_FALSE(at.overEnter());

    HealthMonitor above(stepConfig());
    above.observe(epoch(16, 5)); // 0.3125
    EXPECT_TRUE(above.overEnter());
    EXPECT_FALSE(above.overQuarantine()); // 0.3125 < 0.70
}

TEST(HealthMonitorTest, DirtyFractionClampsToOne)
{
    // More watchdog re-issues than completions (every op retried
    // several times) must saturate, not overshoot the EWMA range.
    HealthMonitor mon(stepConfig());
    mon.observe(epoch(2, 100));
    EXPECT_DOUBLE_EQ(mon.ewma(), 1.0);
    EXPECT_TRUE(mon.overQuarantine());
}

TEST(HealthMonitorTest, StuckDetectorFiresExactlyAtStuckEpochs)
{
    // Zero completions with work queued is "stuck"; the detector
    // fires at stuckEpochs consecutive such epochs, not before.
    Config cfg = stepConfig();
    cfg.alpha = 0.0; // isolate the stuck path from the EWMA path
    HealthMonitor mon(cfg);
    for (std::uint32_t e = 1; e < cfg.stuckEpochs; ++e) {
        mon.observe(epoch(0, 0, /*queue_depth=*/5));
        EXPECT_EQ(mon.stuckRun(), e);
        EXPECT_FALSE(mon.overEnter());
    }
    mon.observe(epoch(0, 0, /*queue_depth=*/5));
    EXPECT_EQ(mon.stuckRun(), cfg.stuckEpochs);
    EXPECT_TRUE(mon.overEnter());
    EXPECT_TRUE(mon.overQuarantine());

    // One serviced epoch resets the run: stuck must be consecutive.
    mon.observe(epoch(8, 0));
    EXPECT_EQ(mon.stuckRun(), 0u);
}

TEST(HealthMonitorTest, IdleEpochsAreCleanNotStuck)
{
    // Nothing queued and nothing done is a healthy idle shard.
    HealthMonitor mon(stepConfig());
    mon.observe(epoch(0, 0, /*queue_depth=*/0));
    EXPECT_EQ(mon.stuckRun(), 0u);
    EXPECT_EQ(mon.cleanRun(), 1u);
    EXPECT_DOUBLE_EQ(mon.ewma(), 0.0);
}

TEST(HealthMonitorTest, FlapSuppressionResetsTheCleanRun)
{
    // recovered() needs hysteresisEpochs *consecutive* clean epochs:
    // a single dirty epoch anywhere in the run starts it over, so a
    // flapping shard cannot sneak back to HEALTHY.
    Config cfg = stepConfig();
    cfg.alpha = 0.5;
    cfg.exitDegraded = 0.10;
    HealthMonitor mon(cfg);
    mon.observe(epoch(4, 4)); // dirty epoch: ewma 0.5

    for (std::uint32_t e = 1; e < cfg.hysteresisEpochs; ++e) {
        mon.observe(epoch(16, 0));
        EXPECT_EQ(mon.cleanRun(), e);
        EXPECT_FALSE(mon.recovered());
    }
    mon.observe(epoch(16, 1)); // flap: one retry dirties the epoch
    EXPECT_EQ(mon.cleanRun(), 0u);
    EXPECT_FALSE(mon.recovered());

    // A full fresh run of clean epochs (by which point the EWMA has
    // also decayed under exitDegraded) completes the recovery.
    for (std::uint32_t e = 0; e < cfg.hysteresisEpochs; ++e)
        mon.observe(epoch(16, 0));
    EXPECT_EQ(mon.cleanRun(), cfg.hysteresisEpochs);
    EXPECT_LT(mon.ewma(), cfg.exitDegraded);
    EXPECT_TRUE(mon.recovered());
}

TEST(RecoveryControllerTest, LifecycleCountersConserve)
{
    // Walk one shard through the whole machine and check the
    // conservation law the transition counters must satisfy at any
    // instant: every degradation is eventually matched by a recovery
    // or by the shard still being unhealthy —
    //   degradations == recoveries + |shards not HEALTHY|.
    Config cfg = stepConfig();
    cfg.hysteresisEpochs = 2;
    RecoveryController ctrl(cfg, 4);

    const auto unhealthy = [&] {
        std::uint32_t n = 0;
        for (std::uint32_t s = 0; s < ctrl.shards(); ++s) {
            if (ctrl.state(s) != ShardState::Healthy)
                n++;
        }
        return n;
    };
    const auto conserved = [&] {
        return ctrl.counters().degradations ==
               ctrl.counters().recoveries + unhealthy();
    };

    // Moderate pressure: HEALTHY -> DEGRADED only (0.4 < 0.70).
    EXPECT_EQ(ctrl.sampleEpoch(0, epoch(10, 4)),
              ShardState::Degraded);
    ctrl.endEpoch();
    EXPECT_EQ(ctrl.counters().degradations, 1u);
    EXPECT_TRUE(conserved());

    // Stuck epoch: DEGRADED -> QUARANTINED.
    EXPECT_EQ(ctrl.sampleEpoch(0, epoch(0, 0, /*queue_depth=*/3)),
              ShardState::Quarantined);
    ctrl.endEpoch();
    EXPECT_EQ(ctrl.counters().quarantines, 1u);
    EXPECT_TRUE(conserved());

    // Probe completions accumulate across epochs; reaching
    // probeSuccesses *exactly* releases the shard to DEGRADED.
    ASSERT_GE(cfg.probeSuccesses, 2u);
    EXPECT_EQ(ctrl.sampleEpoch(0, epoch(cfg.probeSuccesses - 1, 0)),
              ShardState::Quarantined);
    ctrl.endEpoch();
    EXPECT_EQ(ctrl.sampleEpoch(0, epoch(1, 0)),
              ShardState::Degraded);
    ctrl.endEpoch();
    EXPECT_TRUE(conserved());

    // Post-probe slate is clean: hysteresisEpochs clean epochs walk
    // it home, and the books balance with everything healthy again.
    for (std::uint32_t e = 1; e < cfg.hysteresisEpochs; ++e) {
        EXPECT_EQ(ctrl.sampleEpoch(0, epoch(16, 0)),
                  ShardState::Degraded);
        ctrl.endEpoch();
    }
    EXPECT_EQ(ctrl.sampleEpoch(0, epoch(16, 0)),
              ShardState::Healthy);
    ctrl.endEpoch();
    EXPECT_EQ(ctrl.counters().recoveries, 1u);
    EXPECT_EQ(unhealthy(), 0u);
    EXPECT_TRUE(conserved());
    EXPECT_EQ(ctrl.statesSnapshot(), 0u);
}

TEST(RecoveryControllerTest, GovernorOnlyNeverQuarantines)
{
    Config cfg = stepConfig();
    cfg.mode = Mode::GovernorOnly;
    RecoveryController ctrl(cfg, 2);

    for (int e = 0; e < 8; ++e) {
        ctrl.sampleEpoch(0, epoch(0, 0, /*queue_depth=*/9));
        ctrl.endEpoch();
    }
    EXPECT_EQ(ctrl.state(0), ShardState::Degraded);
    EXPECT_EQ(ctrl.counters().quarantines, 0u);
    // And it never re-routes, even for a shard that would have been
    // quarantined in Full mode.
    for (std::uint64_t salt = 0; salt < 8; ++salt)
        EXPECT_EQ(ctrl.route(0, salt), 0u);
    EXPECT_EQ(ctrl.counters().failovers, 0u);
    EXPECT_EQ(ctrl.counters().probes, 0u);
}

/** Drive @p shard of @p ctrl straight to QUARANTINED. */
void
quarantine(RecoveryController &ctrl, std::uint32_t shard)
{
    for (int e = 0; e < 2 &&
                    ctrl.state(shard) != ShardState::Quarantined;
         ++e) {
        ctrl.sampleEpoch(shard, epoch(0, 0, /*queue_depth=*/3));
        ctrl.endEpoch();
    }
    ASSERT_EQ(ctrl.state(shard), ShardState::Quarantined);
}

TEST(RecoveryControllerTest, RouteProbesOnceInPeriodElseFailsOver)
{
    Config cfg = stepConfig();
    cfg.probePeriod = 4;
    RecoveryController ctrl(cfg, 4);
    quarantine(ctrl, 1);

    // Healthy shards keep their traffic unconditionally.
    EXPECT_EQ(ctrl.route(0, 17), 0u);

    for (std::uint64_t period = 0; period < 3; ++period) {
        // k % probePeriod == 0: the canary goes through.
        EXPECT_EQ(ctrl.route(1, period), 1u);
        // The rest of the period fails over to a routable sibling.
        for (std::uint64_t k = 1; k < cfg.probePeriod; ++k) {
            const std::uint32_t target = ctrl.route(1, k);
            EXPECT_NE(target, 1u);
            EXPECT_NE(ctrl.routableMask() >> target & 1u, 0u);
        }
    }
    EXPECT_EQ(ctrl.counters().probes, 3u);
    EXPECT_EQ(ctrl.counters().failovers,
              3u * (cfg.probePeriod - 1));
}

TEST(RecoveryControllerTest, RouteSaltSpreadsAcrossAllSiblings)
{
    RecoveryController ctrl(stepConfig(), 4);
    quarantine(ctrl, 2);
    ctrl.route(2, 0); // consume the k=0 probe slot

    std::uint64_t hit = 0;
    for (std::uint64_t salt = 0; salt < 3; ++salt)
        hit |= std::uint64_t(1) << ctrl.route(2, salt);
    EXPECT_EQ(hit, 0b1011u); // every sibling, never the sick shard
}

TEST(RecoveryControllerTest, AllQuarantinedFallsBackToNatural)
{
    RecoveryController ctrl(stepConfig(), 2);
    quarantine(ctrl, 0);
    quarantine(ctrl, 1);
    EXPECT_EQ(ctrl.routableMask(), 0u);
    // No routable sibling exists: the router must degenerate to the
    // natural owner (where the watchdog/deadline machinery takes
    // over) rather than loop or crash.
    for (std::uint64_t k = 0; k < 6; ++k)
        EXPECT_EQ(ctrl.route(0, k), 0u);
}

TEST(RecoveryControllerTest, SnapshotPacksTwoBitsPerShard)
{
    RecoveryController ctrl(stepConfig(), 3);
    quarantine(ctrl, 1);
    ctrl.sampleEpoch(2, epoch(10, 4)); // shard 2: DEGRADED
    ctrl.endEpoch();

    const std::uint64_t word = ctrl.statesSnapshot();
    EXPECT_EQ(word >> 0 & 3u,
              std::uint64_t(ShardState::Healthy));
    EXPECT_EQ(word >> 2 & 3u,
              std::uint64_t(ShardState::Quarantined));
    EXPECT_EQ(word >> 4 & 3u,
              std::uint64_t(ShardState::Degraded));
}

} // anonymous namespace
} // namespace kmu
