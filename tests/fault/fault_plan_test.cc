/**
 * @file
 * Unit tests for the deterministic fault-injection subsystem: plan
 * determinism and site isolation (the properties the faultstorm
 * campaign's byte-identical CSVs rest on), plus the retry-backoff
 * and degradation-governor survival primitives.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/fault_plan.hh"
#include "fault/recovery.hh"

namespace kmu
{
namespace
{

using fault::FaultPlan;
using fault::FaultSite;
using fault::FaultSpec;

TEST(FaultPlanTest, SameSeedSameSchedule)
{
    FaultPlan a(123);
    FaultPlan b(123);
    a.set(FaultSite::PcieTlpDrop, {.rate = 0.3});
    b.set(FaultSite::PcieTlpDrop, {.rate = 0.3});
    for (int i = 0; i < 10000; ++i) {
        ASSERT_EQ(a.shouldInject(FaultSite::PcieTlpDrop),
                  b.shouldInject(FaultSite::PcieTlpDrop))
            << "diverged at encounter " << i;
    }
    EXPECT_EQ(a.injected(FaultSite::PcieTlpDrop),
              b.injected(FaultSite::PcieTlpDrop));
    EXPECT_GT(a.injected(FaultSite::PcieTlpDrop), 2000u);
    EXPECT_LT(a.injected(FaultSite::PcieTlpDrop), 4000u);
}

TEST(FaultPlanTest, SitesDrawFromIsolatedStreams)
{
    // Interleaving encounters of a second site must not perturb the
    // first site's schedule — per-site streams are independent.
    FaultPlan pure(77);
    FaultPlan mixed(77);
    for (FaultPlan *p : {&pure, &mixed}) {
        p->set(FaultSite::CompletionLoss, {.rate = 0.25});
        p->set(FaultSite::DoorbellLoss, {.rate = 0.5});
    }
    std::vector<bool> pureSchedule;
    for (int i = 0; i < 5000; ++i)
        pureSchedule.push_back(pure.shouldInject(
            FaultSite::CompletionLoss));
    for (int i = 0; i < 5000; ++i) {
        mixed.shouldInject(FaultSite::DoorbellLoss); // interference
        ASSERT_EQ(mixed.shouldInject(FaultSite::CompletionLoss),
                  pureSchedule[std::size_t(i)])
            << "site cross-talk at encounter " << i;
    }
}

TEST(FaultPlanTest, RateZeroNeverFiresRateOneAlwaysFires)
{
    FaultPlan plan(9);
    plan.set(FaultSite::LfbFillStall, {.rate = 0.0});
    plan.set(FaultSite::OnDemandStall, {.rate = 1.0});
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(plan.shouldInject(FaultSite::LfbFillStall));
        EXPECT_TRUE(plan.shouldInject(FaultSite::OnDemandStall));
    }
    EXPECT_EQ(plan.injected(FaultSite::LfbFillStall), 0u);
    EXPECT_EQ(plan.encounters(FaultSite::LfbFillStall), 1000u);
    EXPECT_EQ(plan.injected(FaultSite::OnDemandStall), 1000u);
}

TEST(FaultPlanTest, BurstWindowGatesEligibility)
{
    FaultPlan plan(5);
    plan.set(FaultSite::MappedReadError,
             {.rate = 1.0, .magnitude = 0, .burstPeriod = 100,
              .burstLen = 25});
    std::uint64_t inBurst = 0;
    std::uint64_t outOfBurst = 0;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const bool fired = plan.shouldInject(FaultSite::MappedReadError);
        if (i % 100 < 25)
            inBurst += fired;
        else
            outOfBurst += fired;
    }
    EXPECT_EQ(inBurst, 250u);    // rate 1: every eligible encounter
    EXPECT_EQ(outOfBurst, 0u);   // never outside the burst window
}

TEST(FaultPlanTest, DrawBoundedStaysInRange)
{
    FaultPlan plan(31);
    bool sawLow = false;
    bool sawHigh = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v =
            plan.drawBounded(FaultSite::PcieLatencySpike, 8);
        ASSERT_GE(v, 1u);
        ASSERT_LE(v, 8u);
        sawLow = sawLow || v == 1;
        sawHigh = sawHigh || v == 8;
    }
    EXPECT_TRUE(sawLow);
    EXPECT_TRUE(sawHigh);
}

TEST(FaultPlanTest, NoInstalledPlanIsInert)
{
    ASSERT_EQ(fault::plan(), nullptr);
    EXPECT_FALSE(fault::fire(FaultSite::PcieTlpDrop));
    EXPECT_EQ(fault::draw(FaultSite::PcieTlpDrop, 100), 1u);

    FaultPlan plan(1);
    plan.set(FaultSite::PcieTlpDrop, {.rate = 1.0});
    {
        fault::ScopedPlan active(plan);
        EXPECT_TRUE(fault::fire(FaultSite::PcieTlpDrop));
    }
    // Uninstalled again on scope exit.
    EXPECT_EQ(fault::plan(), nullptr);
    EXPECT_FALSE(fault::fire(FaultSite::PcieTlpDrop));
    EXPECT_EQ(plan.encounters(FaultSite::PcieTlpDrop), 1u);
}

TEST(FaultPlanTest, CompositeCoversEverySite)
{
    FaultPlan plan = FaultPlan::composite(3, 0.01);
    for (std::size_t s = 0; s < fault::numFaultSites; ++s) {
        EXPECT_GT(plan.spec(FaultSite(s)).rate, 0.0)
            << faultSiteName(FaultSite(s)) << " left cold";
    }
    // The bursty governor-exercise sites carry an elevated rate.
    EXPECT_GT(plan.spec(FaultSite::MappedReadError).rate, 0.01);
    EXPECT_GT(plan.spec(FaultSite::MappedReadError).burstPeriod, 0u);
}

TEST(RetryBackoffTest, DeadlinesGrowWithAttemptsAndStayBounded)
{
    fault::RetryPolicy policy;
    fault::RetryBackoff backoff(policy);
    std::uint64_t prevCeiling = 0;
    for (std::uint32_t attempt = 1; attempt <= 12; ++attempt) {
        // The exponential component is capped by backoffMaxShift and
        // jittered, so sample a window per attempt.
        std::uint64_t lo = ~0ull;
        std::uint64_t hi = 0;
        for (int i = 0; i < 200; ++i) {
            const std::uint64_t d = backoff.deadlinePolls(attempt);
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        }
        EXPECT_GE(lo, policy.timeoutPolls);
        const std::uint64_t cap =
            policy.timeoutPolls +
            (std::uint64_t(policy.backoffBasePolls)
             << policy.backoffMaxShift) * 2;
        EXPECT_LE(hi, cap) << "attempt " << attempt;
        EXPECT_GE(hi, prevCeiling / 2); // roughly non-collapsing
        prevCeiling = hi;
    }
}

TEST(RetryBackoffTest, SameSeedSameJitterSequence)
{
    fault::RetryBackoff a{fault::RetryPolicy{}};
    fault::RetryBackoff b{fault::RetryPolicy{}};
    for (std::uint32_t attempt = 1; attempt <= 6; ++attempt) {
        for (int i = 0; i < 50; ++i) {
            ASSERT_EQ(a.deadlinePolls(attempt),
                      b.deadlinePolls(attempt));
        }
    }
}

TEST(DegradationGovernorTest, EntersAndExitsOnRetryPressure)
{
    fault::DegradationGovernor::Config cfg;
    cfg.minSamples = 32;
    fault::DegradationGovernor gov(cfg);

    // Clean warm-up: never degrades, however long it runs.
    for (int i = 0; i < 500; ++i) {
        gov.sample(false);
        ASSERT_FALSE(gov.degraded());
    }

    // Sustained retry pressure: EWMA climbs past the enter threshold.
    int toEnter = 0;
    while (!gov.degraded()) {
        gov.sample(true);
        ASSERT_LT(++toEnter, 1000) << "governor never degraded";
    }
    EXPECT_EQ(gov.degradations(), 1u);
    EXPECT_GT(gov.ewma(), 0.0);

    // Pressure relief: EWMA decays below the exit threshold.
    int toExit = 0;
    while (gov.degraded()) {
        gov.sample(false);
        ASSERT_LT(++toExit, 1000) << "governor never recovered";
    }
    EXPECT_EQ(gov.recoveries(), 1u);

    // Hysteresis: exit needs a much cleaner stream than entry, so
    // recovering took longer than degrading did.
    EXPECT_GT(toExit, toEnter);
}

TEST(DegradationGovernorTest, MinSamplesSuppressesColdStartFlap)
{
    fault::DegradationGovernor::Config cfg;
    cfg.minSamples = 64;
    fault::DegradationGovernor gov(cfg);
    // An all-retry burst shorter than minSamples must not trigger:
    // a handful of early faults is noise, not pressure.
    for (std::uint64_t i = 0; i + 1 < cfg.minSamples; ++i) {
        gov.sample(true);
        ASSERT_FALSE(gov.degraded()) << "flapped at sample " << i;
    }
}

} // anonymous namespace
} // namespace kmu
