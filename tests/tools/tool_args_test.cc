/**
 * @file
 * Unit tests for the shared strict CLI argument parsers.
 *
 * The regression pinned here: strtoull/strtod skip leading
 * whitespace and strtoull accepts a sign, so values like " -1"
 * passed the whole-string check and wrapped to huge integers (a
 * measure_us of ~1.8e19 µs panicked deep inside the simulation
 * instead of failing at the command line).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "tools/tool_args.hh"

namespace kmu::toolargs
{
namespace
{

TEST(ToolArgsTest, ParseKvSplitsKeyAndValue)
{
    std::string key, value;
    EXPECT_TRUE(parseKv("lambda=0.5", key, value));
    EXPECT_EQ(key, "lambda");
    EXPECT_EQ(value, "0.5");

    EXPECT_TRUE(parseKv("trace=", key, value));
    EXPECT_EQ(key, "trace");
    EXPECT_EQ(value, "");

    // Only the first '=' splits; the rest belongs to the value.
    EXPECT_TRUE(parseKv("expr=a=b", key, value));
    EXPECT_EQ(key, "expr");
    EXPECT_EQ(value, "a=b");

    EXPECT_FALSE(parseKv("noequals", key, value));
    EXPECT_FALSE(parseKv("=value", key, value));
}

TEST(ToolArgsTest, ParseU64AcceptsWholeNumbers)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseU64("12345", v));
    EXPECT_EQ(v, 12345u);
    EXPECT_TRUE(parseU64("0x10", v));
    EXPECT_EQ(v, 16u);
    EXPECT_TRUE(parseU64("18446744073709551615", v));
    EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

TEST(ToolArgsTest, ParseU64RejectsGarbageSignsAndOverflow)
{
    std::uint64_t v = 0;
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64("25oo", v));
    EXPECT_FALSE(parseU64("10 ", v));
    EXPECT_FALSE(parseU64("-1", v));
    EXPECT_FALSE(parseU64("+1", v));
    EXPECT_FALSE(parseU64("18446744073709551616", v)); // 2^64
}

// Regression: strtoull swallows leading whitespace and then a sign,
// so " -1" used to wrap to 18446744073709551615 with the end pointer
// at the end of the string.
TEST(ToolArgsTest, ParseU64RejectsLeadingWhitespace)
{
    std::uint64_t v = 0;
    EXPECT_FALSE(parseU64(" 1", v));
    EXPECT_FALSE(parseU64("\t1", v));
    EXPECT_FALSE(parseU64(" -1", v));
    EXPECT_FALSE(parseU64("\n-1", v));
}

TEST(ToolArgsTest, ParseU32RejectsValuesBeyond32Bits)
{
    std::uint32_t v = 0;
    EXPECT_TRUE(parseU32("4294967295", v));
    EXPECT_EQ(v, std::numeric_limits<std::uint32_t>::max());
    EXPECT_FALSE(parseU32("4294967296", v));
    EXPECT_FALSE(parseU32(" 7", v));
}

TEST(ToolArgsTest, ParseF64AcceptsFiniteNumbers)
{
    double v = 0.0;
    EXPECT_TRUE(parseF64("0.5", v));
    EXPECT_DOUBLE_EQ(v, 0.5);
    EXPECT_TRUE(parseF64("-2.25", v));
    EXPECT_DOUBLE_EQ(v, -2.25);
    EXPECT_TRUE(parseF64("1e3", v));
    EXPECT_DOUBLE_EQ(v, 1000.0);
}

TEST(ToolArgsTest, ParseF64RejectsGarbageAndNonFinite)
{
    double v = 0.0;
    EXPECT_FALSE(parseF64("", v));
    EXPECT_FALSE(parseF64("0.5x", v));
    EXPECT_FALSE(parseF64("1.5 ", v));
    EXPECT_FALSE(parseF64("nan", v));
    EXPECT_FALSE(parseF64("inf", v));
    EXPECT_FALSE(parseF64("1e999", v));
}

// Regression: strtod also skips leading whitespace, letting " 1.5"
// (and whitespace-wrapped junk) slip through the whole-string check.
TEST(ToolArgsTest, ParseF64RejectsLeadingWhitespace)
{
    double v = 0.0;
    EXPECT_FALSE(parseF64(" 1.5", v));
    EXPECT_FALSE(parseF64("\t0.5", v));
    EXPECT_FALSE(parseF64(" -1", v));
}

TEST(ToolArgsTest, ParseFlagIsExactlyZeroOrOne)
{
    bool v = false;
    EXPECT_TRUE(parseFlag("1", v));
    EXPECT_TRUE(v);
    EXPECT_TRUE(parseFlag("0", v));
    EXPECT_FALSE(v);
    EXPECT_FALSE(parseFlag("true", v));
    EXPECT_FALSE(parseFlag("2", v));
    EXPECT_FALSE(parseFlag("", v));
    EXPECT_FALSE(parseFlag(" 1", v));
}

} // anonymous namespace
} // namespace kmu::toolargs
