/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event.hh"

namespace kmu
{
namespace
{

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::string name, std::vector<std::string> &log,
                   EventPriority prio = EventPriority::Default)
        : Event(std::move(name), prio), log(log)
    {
    }

    void process() override { log.push_back(name()); }

  private:
    std::vector<std::string> &log;
};

TEST(EventQueueTest, OrdersByTick)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    RecordingEvent b("b", log);
    RecordingEvent c("c", log);
    eq.schedule(&b, 20);
    eq.schedule(&a, 10);
    eq.schedule(&c, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueueTest, SameTickFifoWithinPriority)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("first", log);
    RecordingEvent b("second", log);
    eq.schedule(&a, 5);
    eq.schedule(&b, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"first", "second"}));
}

TEST(EventQueueTest, PriorityBreaksTickTies)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent late("cpu", log, EventPriority::CpuTick);
    RecordingEvent early("resp", log, EventPriority::DeviceResponse);
    eq.schedule(&late, 5);
    eq.schedule(&early, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"resp", "cpu"}));
}

TEST(EventQueueTest, DescheduleSkipsEvent)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    RecordingEvent b("b", log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b"}));
}

// Regression: a descheduled event may be destroyed while its stale
// heap entry is still parked in the queue. The queue must recognise
// the dead entry by sequence number alone — both while servicing and
// in its own destructor — without dereferencing the freed event.
// (Found by ASan: SimChecker deschedules its sweep event in its
// destructor, which runs before ~EventQueue inside ~SimSystem.)
TEST(EventQueueTest, DescheduledEventMayDieBeforeQueue)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent keep("keep", log);
    eq.schedule(&keep, 30);
    {
        auto doomed = std::make_unique<RecordingEvent>("doomed", log);
        eq.schedule(doomed.get(), 10);
        eq.deschedule(doomed.get());
    } // freed here; its heap entry still sits in front of "keep"
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"keep"}));

    {
        auto doomed = std::make_unique<RecordingEvent>("doomed2", log);
        eq.schedule(doomed.get(), 50);
        eq.deschedule(doomed.get());
    } // stale entry survives until ~EventQueue — it must skip it
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    RecordingEvent b("b", log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b", "a"}));
}

TEST(EventQueueTest, RunHonorsLimit)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    RecordingEvent b("b", log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 100);
    eq.run(50);
    EXPECT_EQ(log, (std::vector<std::string>{"a"}));
    EXPECT_TRUE(b.scheduled());
    eq.run();
    EXPECT_EQ(log.size(), 2u);
}

TEST(EventQueueTest, ServiceOneStepsExactlyOne)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    RecordingEvent b("b", log);
    eq.schedule(&a, 1);
    eq.schedule(&b, 2);
    EXPECT_TRUE(eq.serviceOne());
    EXPECT_EQ(log.size(), 1u);
    EXPECT_TRUE(eq.serviceOne());
    EXPECT_FALSE(eq.serviceOne());
    EXPECT_EQ(eq.serviced(), 2u);
}

TEST(EventQueueTest, LambdaEventsRunAndFree)
{
    EventQueue eq;
    int hits = 0;
    for (int i = 0; i < 100; ++i)
        eq.scheduleLambda(Tick(i), [&hits]() { hits++; });
    eq.run();
    EXPECT_EQ(hits, 100);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, EventsScheduledDuringProcessing)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 5)
            eq.scheduleLambda(eq.curTick() + 10, chain);
    };
    eq.scheduleLambda(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.curTick(), 40u);
}

TEST(EventQueueTest, SizeTracksLiveEvents)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    eq.schedule(&a, 10);
    EXPECT_EQ(eq.size(), 1u);
    eq.deschedule(&a);
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueDeathTest, PastSchedulingPanics)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    eq.scheduleLambda(100, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(&a, 50), "past");
}

TEST(EventQueueDeathTest, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    eq.schedule(&a, 10);
    EXPECT_DEATH(eq.schedule(&a, 20), "twice");
    eq.deschedule(&a);
}

} // anonymous namespace
} // namespace kmu
