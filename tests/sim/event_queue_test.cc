/**
 * @file
 * Unit tests for the discrete-event kernel.
 *
 * Every test runs twice — once per pending-event scheduler (the
 * ladder calendar queue and the reference binary heap) — so the two
 * kernels are pinned to identical observable behavior.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event.hh"

namespace kmu
{
namespace
{

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::string name, std::vector<std::string> &log,
                   EventPriority prio = EventPriority::Default)
        : Event(std::move(name), prio), log(log)
    {
    }

    void process() override { log.push_back(name()); }

  private:
    std::vector<std::string> &log;
};

class EventQueueTest
    : public ::testing::TestWithParam<EventQueue::SchedulerKind>
{
};

const char *
schedulerName(
    const ::testing::TestParamInfo<EventQueue::SchedulerKind> &info)
{
    return info.param == EventQueue::SchedulerKind::Ladder ? "Ladder"
                                                           : "Heap";
}

TEST_P(EventQueueTest, OrdersByTick)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    RecordingEvent b("b", log);
    RecordingEvent c("c", log);
    eq.schedule(&b, 20);
    eq.schedule(&a, 10);
    eq.schedule(&c, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST_P(EventQueueTest, SameTickFifoWithinPriority)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent a("first", log);
    RecordingEvent b("second", log);
    eq.schedule(&a, 5);
    eq.schedule(&b, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"first", "second"}));
}

TEST_P(EventQueueTest, PriorityBreaksTickTies)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent late("cpu", log, EventPriority::CpuTick);
    RecordingEvent early("resp", log, EventPriority::DeviceResponse);
    eq.schedule(&late, 5);
    eq.schedule(&early, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"resp", "cpu"}));
}

TEST_P(EventQueueTest, DescheduleSkipsEvent)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    RecordingEvent b("b", log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b"}));
}

// Regression: a descheduled event may be destroyed while its stale
// scheduler entry is still parked in the queue. The queue must
// recognise the dead entry by sequence number alone — both while
// servicing and in its own destructor — without dereferencing the
// freed event. (Found by ASan: SimChecker deschedules its sweep event
// in its destructor, which runs before ~EventQueue inside ~SimSystem.)
TEST_P(EventQueueTest, DescheduledEventMayDieBeforeQueue)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent keep("keep", log);
    eq.schedule(&keep, 30);
    {
        auto doomed = std::make_unique<RecordingEvent>("doomed", log);
        eq.schedule(doomed.get(), 10);
        eq.deschedule(doomed.get());
    } // freed here; its scheduler entry still sits in front of "keep"
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"keep"}));

    {
        auto doomed = std::make_unique<RecordingEvent>("doomed2", log);
        eq.schedule(doomed.get(), 50);
        eq.deschedule(doomed.get());
    } // stale entry survives until ~EventQueue — it must skip it
    EXPECT_EQ(eq.size(), 0u);
}

TEST_P(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    RecordingEvent b("b", log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b", "a"}));
}

TEST_P(EventQueueTest, RunHonorsLimit)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    RecordingEvent b("b", log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 100);
    eq.run(50);
    EXPECT_EQ(log, (std::vector<std::string>{"a"}));
    EXPECT_TRUE(b.scheduled());
    eq.run();
    EXPECT_EQ(log.size(), 2u);
}

TEST_P(EventQueueTest, ServiceOneStepsExactlyOne)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    RecordingEvent b("b", log);
    eq.schedule(&a, 1);
    eq.schedule(&b, 2);
    EXPECT_TRUE(eq.serviceOne());
    EXPECT_EQ(log.size(), 1u);
    EXPECT_TRUE(eq.serviceOne());
    EXPECT_FALSE(eq.serviceOne());
    EXPECT_EQ(eq.serviced(), 2u);
}

TEST_P(EventQueueTest, LambdaEventsRunAndFree)
{
    EventQueue eq(GetParam());
    int hits = 0;
    for (int i = 0; i < 100; ++i)
        eq.scheduleLambda(Tick(i), [&hits]() { hits++; });
    eq.run();
    EXPECT_EQ(hits, 100);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.ownedPending(), 0u);
}

TEST_P(EventQueueTest, EventsScheduledDuringProcessing)
{
    EventQueue eq(GetParam());
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 5)
            eq.scheduleLambda(eq.curTick() + 10, chain);
    };
    eq.scheduleLambda(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.curTick(), 40u);
}

TEST_P(EventQueueTest, SizeTracksLiveEvents)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    eq.schedule(&a, 10);
    EXPECT_EQ(eq.size(), 1u);
    eq.deschedule(&a);
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_TRUE(eq.empty());
}

// Regression: lazy descheduling used to let cancelled scheduler
// entries accumulate without bound when far-future events are
// scheduled and cancelled faster than the scheduler meets them (the
// timeout-guard pattern). The queue now compacts once dead entries
// outnumber live ones, so the dead set stays bounded by
// max(64, liveEvents).
TEST_P(EventQueueTest, CancelledEntriesStayBounded)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent guard("guard", log);
    RecordingEvent keep("keep", log);
    eq.schedule(&keep, 1'000'000'000);

    std::size_t peak = 0;
    for (int i = 0; i < 200'000; ++i) {
        // Arm a far-future timeout guard, then cancel it before it
        // ever services — the pure churn case.
        eq.schedule(&guard, Tick(2'000'000'000) + Tick(i));
        eq.deschedule(&guard);
        peak = std::max(peak, eq.deadEntries());
    }
    // One live event, so the trigger fires at 65 dead entries.
    EXPECT_LE(peak, 65u);
    EXPECT_LE(eq.deadEntries(), 65u);
    EXPECT_EQ(eq.size(), 1u);

    // Compaction must not disturb ordering or survivors.
    eq.schedule(&guard, 999'999'999);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"guard", "keep"}));
}

// Compaction rebuilds the pending set; the surviving entries must
// keep their (tick, priority, insertion-sequence) service order
// exactly.
TEST_P(EventQueueTest, CompactionPreservesOrdering)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;

    std::vector<std::unique_ptr<RecordingEvent>> live;
    std::vector<std::unique_ptr<RecordingEvent>> dead;
    std::vector<std::string> expect;
    for (int i = 0; i < 64; ++i) {
        live.push_back(std::make_unique<RecordingEvent>(
            "live" + std::to_string(i), log));
        // Same tick for pairs exercises the seq tie-break.
        eq.schedule(live.back().get(), Tick(10 + i / 2));
        expect.push_back(live.back()->name());
    }
    for (int i = 0; i < 200; ++i) {
        dead.push_back(std::make_unique<RecordingEvent>("dead", log));
        eq.schedule(dead.back().get(), Tick(5)); // ahead of the live set
        eq.deschedule(dead.back().get());
    }
    EXPECT_LE(eq.deadEntries(), 65u); // compaction must have run
    eq.run();
    EXPECT_EQ(log, expect);
    EXPECT_TRUE(eq.empty());
}

// Regression (this PR): an event rescheduled *after* a compaction ran
// must fire exactly once at its new tick. Compaction drops the
// cancelled-seq bookkeeping wholesale; a stale mapping from the
// rescheduled event's old sequence number must not survive it, and
// the fresh entry must not be mistaken for a dead one.
TEST_P(EventQueueTest, RescheduleSurvivesCompaction)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent mover("mover", log);
    RecordingEvent churn("churn", log);

    eq.schedule(&mover, 500);
    // Cancel the first placement, leaving a dead entry behind...
    eq.reschedule(&mover, 700);
    // ...then force a compaction while that dead entry is pending.
    for (int i = 0; i < 200; ++i) {
        eq.schedule(&churn, Tick(1000) + Tick(i));
        eq.deschedule(&churn);
    }
    EXPECT_LE(eq.deadEntries(), 65u); // compaction ran
    EXPECT_TRUE(mover.scheduled());

    // And reschedule once more after the compaction.
    eq.reschedule(&mover, 600);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"mover"}));
    EXPECT_EQ(eq.curTick(), 600u);
    EXPECT_TRUE(eq.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, EventQueueTest,
    ::testing::Values(EventQueue::SchedulerKind::Ladder,
                      EventQueue::SchedulerKind::Heap),
    schedulerName);

class EventQueueDeathTest : public EventQueueTest
{
};

TEST_P(EventQueueDeathTest, PastSchedulingPanics)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    eq.scheduleLambda(100, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(&a, 50), "past");
}

TEST_P(EventQueueDeathTest, DoubleSchedulePanics)
{
    EventQueue eq(GetParam());
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    eq.schedule(&a, 10);
    EXPECT_DEATH(eq.schedule(&a, 20), "twice");
    eq.deschedule(&a);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, EventQueueDeathTest,
    ::testing::Values(EventQueue::SchedulerKind::Ladder,
                      EventQueue::SchedulerKind::Heap),
    schedulerName);

} // anonymous namespace
} // namespace kmu
