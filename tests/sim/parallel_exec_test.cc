/**
 * @file
 * Property and stress tests for the conservative parallel executor.
 *
 * The determinism contract under test: for workloads in the shape
 * the executor guarantees (host-rooted crossing chains with
 * priority-separated event classes — exactly what SimSystem
 * produces, see DESIGN.md §15), every domain's service sequence is
 * identical to the serial single-queue execution of the same
 * logical program, regardless of thread count.
 *
 * Randomized storms plant host-rooted chains (host seed -> shard
 * arrival -> shard-local work -> host response -> host-local tail)
 * with randomized ticks, fan-outs, and depths drawn at *plant* time
 * (never inside event bodies, so the draw order cannot depend on
 * the executor), then replay the identical program three ways:
 * serial single queue, parallel with sequential windows
 * (threads=1), and parallel with one thread per domain. The
 * per-domain service logs must match across all three.
 *
 * Targeted tests pin the epoch-boundary corners: a crossing landing
 * exactly at the lookahead horizon, zero-lookahead rejection,
 * lookahead-violating pushes, empty-domain epochs, a domain
 * finishing many windows before the rest, split run() calls, and
 * mailbox FIFO order for same-stamp pushes.
 *
 * The whole file is data-race-clean by construction (per-domain
 * logs are written only by the thread servicing that domain) and
 * runs under the TSan CI leg.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/event.hh"
#include "sim/parallel.hh"

namespace kmu
{
namespace
{

/** One serviced storm node: enough to compare service order. */
struct LogRec
{
    std::uint64_t id;
    Tick tick;

    bool operator==(const LogRec &o) const
    {
        return id == o.id && tick == o.tick;
    }
};

/**
 * A storm is a forest of host-rooted chains, fully materialized
 * before execution so serial and parallel replays run byte-for-byte
 * the same program. Node delays are relative to the parent's
 * service tick; crossings always carry delay >= lookahead.
 */
struct Storm
{
    struct Node
    {
        std::uint64_t id = 0;
        std::uint32_t domain = 0;
        Tick delay = 0; //!< seeds: absolute tick
        EventPriority prio = EventPriority::Default;
        std::vector<const Node *> kids;
    };

    std::deque<Node> arena; //!< stable addresses for kid pointers
    std::vector<const Node *> seeds;
    std::uint64_t nodeCount = 0;
    std::uint64_t crossings = 0;

    Node *
    make(std::uint32_t domain, Tick delay, EventPriority prio)
    {
        arena.push_back(Node{nodeCount++, domain, delay, prio, {}});
        return &arena.back();
    }
};

/**
 * Generate a randomized host-rooted storm. The class layout mirrors
 * the real system's priority separation: host->shard crossings at
 * Default, shard-local work at CpuTick, shard->host responses at
 * DeviceResponse, host-local tails at CpuTick. Within each class
 * ties in (when, prio) are plentiful by design (delays are drawn
 * from a tiny set), which is exactly what exercises the mailbox
 * stamp ordering.
 */
Storm
makeStorm(std::uint64_t seed, std::uint32_t shards, Tick lookahead)
{
    std::mt19937_64 rng(seed);
    auto draw = [&](std::uint64_t n) { return rng() % n; };

    Storm storm;
    const int nSeeds = 24 + int(draw(16));
    for (int i = 0; i < nSeeds; ++i) {
        // Cluster seeds on few ticks so many chains share windows.
        Storm::Node *host = storm.make(
            0, Tick(draw(4) * lookahead + draw(3)),
            EventPriority::Default);
        storm.seeds.push_back(host);

        const int fan = 1 + int(draw(3));
        for (int f = 0; f < fan; ++f) {
            const auto shard = std::uint32_t(1 + draw(shards));
            // Crossing: >= lookahead ahead, tiny jitter set so
            // distinct roots collide on (when, prio) often.
            Storm::Node *arrive = storm.make(
                shard, lookahead + Tick(draw(3)),
                EventPriority::Default);
            ++storm.crossings;
            host->kids.push_back(arrive);

            Storm::Node *up = arrive;
            if (draw(2) == 0) {
                // Optional shard-local hop before responding.
                Storm::Node *local = storm.make(
                    shard, Tick(draw(3)), EventPriority::CpuTick);
                arrive->kids.push_back(local);
                up = local;
            }
            if (draw(4) != 0) {
                Storm::Node *resp = storm.make(
                    0, lookahead + Tick(draw(3)),
                    EventPriority::DeviceResponse);
                ++storm.crossings;
                up->kids.push_back(resp);
                if (draw(2) == 0) {
                    resp->kids.push_back(storm.make(
                        0, Tick(draw(3)), EventPriority::CpuTick));
                }
            }
        }
    }
    return storm;
}

/** Replay context: resolves a domain id to the queue backing it. */
struct Replay
{
    std::function<EventQueue &(std::uint32_t)> queueFor;
    std::vector<std::vector<LogRec>> logs; //!< one per domain

    void
    plant(const Storm &storm)
    {
        for (const Storm::Node *seedNode : storm.seeds)
            schedule(seedNode, 0);
    }

    void
    schedule(const Storm::Node *n, Tick base)
    {
        EventQueue &q = queueFor(n->domain);
        q.scheduleLambda(
            base + n->delay,
            [this, n]() {
                EventQueue &mine = queueFor(n->domain);
                const Tick now = mine.curTick();
                logs[n->domain].push_back({n->id, now});
                for (const Storm::Node *kid : n->kids)
                    schedule(kid, now);
            },
            n->prio, "storm");
    }
};

/** Serial single-queue reference run of @p storm. */
std::vector<std::vector<LogRec>>
serialReference(const Storm &storm, std::uint32_t shards)
{
    EventQueue eq;
    Replay replay;
    replay.logs.resize(1 + shards);
    replay.queueFor = [&eq](std::uint32_t) -> EventQueue & {
        return eq;
    };
    replay.plant(storm);
    eq.run(maxTick);
    return replay.logs;
}

/** Parallel run of @p storm with @p threads OS threads. */
std::vector<std::vector<LogRec>>
parallelRun(const Storm &storm, std::uint32_t shards, Tick lookahead,
            std::uint32_t threads)
{
    EventQueue host;
    ParallelExecutor exec(host, shards, lookahead, threads);
    Replay replay;
    replay.logs.resize(1 + shards);
    replay.queueFor = [&exec](std::uint32_t d) -> EventQueue & {
        return exec.domainQueue(d);
    };
    replay.plant(storm);
    exec.run(maxTick);
    EXPECT_EQ(exec.crossingCount(), storm.crossings);
    EXPECT_EQ(exec.totalPending(), 0u);
    return replay.logs;
}

TEST(ParallelExec, StormMatchesSerialReferenceSequentialWindows)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const std::uint32_t shards = 2 + std::uint32_t(seed % 3);
        const Tick lookahead = 40 + Tick(seed * 7);
        const Storm storm = makeStorm(seed, shards, lookahead);

        const auto ref = serialReference(storm, shards);
        const auto par =
            parallelRun(storm, shards, lookahead, /*threads=*/1);

        ASSERT_EQ(ref.size(), par.size());
        for (std::size_t d = 0; d < ref.size(); ++d)
            EXPECT_EQ(ref[d], par[d]) << "seed " << seed
                                      << " domain " << d;
    }
}

TEST(ParallelExec, StormMatchesSerialReferenceThreaded)
{
    for (std::uint64_t seed = 11; seed <= 14; ++seed) {
        const std::uint32_t shards = 3;
        const Tick lookahead = 64;
        const Storm storm = makeStorm(seed, shards, lookahead);

        const auto ref = serialReference(storm, shards);
        // One thread per domain: shard domains on workers, host on
        // the caller. Under TSan this exercises the full barrier
        // protocol.
        const auto par = parallelRun(storm, shards, lookahead,
                                     /*threads=*/1 + shards);

        ASSERT_EQ(ref.size(), par.size());
        for (std::size_t d = 0; d < ref.size(); ++d)
            EXPECT_EQ(ref[d], par[d]) << "seed " << seed
                                      << " domain " << d;
    }
}

TEST(ParallelExec, StormThreadCountInvariance)
{
    // Oversubscribed (threads < domains+1) and exact thread counts
    // must produce identical per-domain logs.
    const std::uint32_t shards = 4;
    const Tick lookahead = 50;
    const Storm storm = makeStorm(99, shards, lookahead);

    const auto seq = parallelRun(storm, shards, lookahead, 1);
    const auto two = parallelRun(storm, shards, lookahead, 2);
    const auto full = parallelRun(storm, shards, lookahead, 5);
    const auto over = parallelRun(storm, shards, lookahead, 64);

    EXPECT_EQ(seq, two);
    EXPECT_EQ(seq, full);
    EXPECT_EQ(seq, over);
}

TEST(ParallelExec, CrossingExactlyAtLookaheadHorizon)
{
    // A crossing stamped when == src.now + L is the minimum legal
    // distance; it must land in a *later* epoch than its creator
    // and service at exactly that tick.
    EventQueue host;
    const Tick L = 100;
    ParallelExecutor exec(host, /*shards=*/2, L, /*threads=*/1);

    std::vector<LogRec> log;
    host.scheduleLambda(0, [&]() {
        const Tick now = host.curTick();
        exec.domainQueue(1).scheduleLambda(
            now + L, [&]() {
                log.push_back({1, exec.domainQueue(1).curTick()});
            });
    });
    exec.run(maxTick);

    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].tick, L);
    EXPECT_EQ(exec.crossingCount(), 1u);
    // Window 1 covers [0, L-1]; the crossing at L needs a second.
    EXPECT_GE(exec.epochCount(), 2u);
}

TEST(ParallelExecDeathTest, ZeroLookaheadRejected)
{
    EventQueue host;
    EXPECT_DEATH(ParallelExecutor(host, 2, /*lookahead=*/0, 1),
                 "lookahead");
}

TEST(ParallelExecDeathTest, LookaheadViolatingCrossingRejected)
{
    // A cross-domain schedule closer than the lookahead would allow
    // same-window causality; the mailbox push must refuse it.
    EventQueue host;
    const Tick L = 100;
    ParallelExecutor exec(host, 2, L, 1);
    host.scheduleLambda(0, [&]() {
        exec.domainQueue(1).scheduleLambda(host.curTick() + L - 1,
                                           []() {});
    });
    EXPECT_DEATH(exec.run(maxTick), "lookahead");
}

TEST(ParallelExecDeathTest, MemberEventMayNotCrossDomains)
{
    // Only scheduleLambda may cross shard domains: member-event
    // schedule() from another domain's context must die, not
    // silently corrupt the foreign queue.
    EventQueue host;
    ParallelExecutor exec(host, 2, 100, 1);
    CallbackEvent ev("cross-member", []() {});
    host.scheduleLambda(0, [&]() {
        exec.domainQueue(1).schedule(&ev, host.curTick() + 200);
    });
    EXPECT_DEATH(exec.run(maxTick), "cross-domain");
}

TEST(ParallelExec, EmptyDomainsAndEmptyRun)
{
    EventQueue host;
    ParallelExecutor exec(host, 4, 50, 1);

    // Entirely empty: run returns without spinning up epochs.
    exec.run(1000);
    EXPECT_EQ(exec.epochCount(), 0u);
    EXPECT_EQ(exec.totalServiced(), 0u);

    // Only shard 2 has work; domains 0/1/3/4 stay empty across
    // every epoch. Chain several windows on the one busy domain.
    std::vector<LogRec> log;
    std::function<void(int)> chain = [&](int depth) {
        log.push_back({std::uint64_t(depth),
                       exec.domainQueue(2).curTick()});
        if (depth < 5) {
            exec.domainQueue(2).scheduleLambda(
                exec.domainQueue(2).curTick() + 200,
                [&chain, depth]() { chain(depth + 1); });
        }
    };
    exec.domainQueue(2).scheduleLambda(10, [&chain]() { chain(0); });
    exec.run(maxTick);

    ASSERT_EQ(log.size(), 6u);
    for (int i = 0; i <= 5; ++i)
        EXPECT_EQ(log[i].tick, Tick(10 + 200 * i));
    EXPECT_EQ(exec.crossingCount(), 0u);
    EXPECT_EQ(exec.totalServiced(), 6u);
}

TEST(ParallelExec, DomainFinishingEarly)
{
    // Shard 1 drains in the first window; shard 2 keeps producing
    // local work for many windows after. The executor must keep
    // cycling epochs for the busy domain while the idle one parks.
    EventQueue host;
    const Tick L = 100;
    ParallelExecutor exec(host, 2, L, /*threads=*/3);

    std::vector<LogRec> early, late;
    exec.domainQueue(1).scheduleLambda(5, [&]() {
        early.push_back({0, exec.domainQueue(1).curTick()});
    });
    std::function<void(int)> tail = [&](int depth) {
        late.push_back({std::uint64_t(depth),
                        exec.domainQueue(2).curTick()});
        if (depth < 12) {
            exec.domainQueue(2).scheduleLambda(
                exec.domainQueue(2).curTick() + L,
                [&tail, depth]() { tail(depth + 1); });
        }
    };
    exec.domainQueue(2).scheduleLambda(5, [&tail]() { tail(0); });
    exec.run(maxTick);

    ASSERT_EQ(early.size(), 1u);
    EXPECT_EQ(early[0].tick, 5u);
    ASSERT_EQ(late.size(), 13u);
    EXPECT_EQ(late.back().tick, Tick(5 + 12 * L));
    // Each tail hop lands one window later: at least 13 epochs.
    EXPECT_GE(exec.epochCount(), 13u);
}

TEST(ParallelExec, MailboxPreservesPushOrderOnEqualStamps)
{
    // Same source event, same destination, same (when, prio):
    // service order must equal push order (srcSeq tie-break), which
    // is what the serial kernel's insertion sequence would do.
    EventQueue host;
    const Tick L = 100;
    ParallelExecutor exec(host, 2, L, 1);

    std::vector<LogRec> log;
    host.scheduleLambda(0, [&]() {
        const Tick when = host.curTick() + L;
        for (std::uint64_t i = 0; i < 8; ++i) {
            exec.domainQueue(1).scheduleLambda(when, [&log, i]() {
                log.push_back({i, 0});
            });
        }
    });
    exec.run(maxTick);

    ASSERT_EQ(log.size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(log[i].id, i);
    EXPECT_EQ(exec.crossingCount(), 8u);
}

TEST(ParallelExec, SplitRunMatchesSingleRun)
{
    // run(t1); run(t2) must land exactly where a single run(t2)
    // does — window construction may not depend on where previous
    // calls stopped.
    const std::uint32_t shards = 3;
    const Tick lookahead = 64;
    const Storm storm = makeStorm(7, shards, lookahead);

    const auto whole = parallelRun(storm, shards, lookahead, 1);

    EventQueue host;
    ParallelExecutor exec(host, shards, lookahead, 1);
    Replay replay;
    replay.logs.resize(1 + shards);
    replay.queueFor = [&exec](std::uint32_t d) -> EventQueue & {
        return exec.domainQueue(d);
    };
    replay.plant(storm);
    // Limits deliberately unaligned with window boundaries.
    for (Tick limit : {Tick(37), Tick(150), Tick(151), Tick(977)})
        exec.run(limit);
    exec.run(maxTick);

    EXPECT_EQ(replay.logs, whole);
    EXPECT_EQ(exec.totalPending(), 0u);
}

TEST(ParallelExec, BarrierChecksRunQuiesced)
{
    // Barrier checks observe every domain at the same tick with no
    // event mid-flight; they run at least once per epoch.
    EventQueue host;
    const Tick L = 100;
    ParallelExecutor exec(host, 2, L, /*threads=*/3);

    std::uint64_t calls = 0;
    exec.addBarrierCheck([&]() {
        ++calls;
        EXPECT_EQ(exec.totalPending(),
                  exec.domainQueue(0).size() +
                      exec.domainQueue(1).size() +
                      exec.domainQueue(2).size());
    });

    const Storm storm = makeStorm(3, 2, L);
    Replay replay;
    replay.logs.resize(3);
    replay.queueFor = [&exec](std::uint32_t d) -> EventQueue & {
        return exec.domainQueue(d);
    };
    replay.plant(storm);
    exec.run(maxTick);

    EXPECT_GE(calls, exec.epochCount());
}

} // namespace
} // namespace kmu
