/**
 * @file
 * Property and stress tests for the event kernel.
 *
 * A naive reference model — a flat vector served by min-scan over
 * (tick, priority, insertion sequence) — defines the one true service
 * order. Randomized schedule/deschedule/reschedule/service
 * interleavings are replayed against both production schedulers (the
 * ladder calendar queue and the reference binary heap), and every
 * serviced event must match the reference pop exactly.
 *
 * The tick deltas are drawn across all ladder rungs (sub-ns buckets
 * through the >17 ms overflow list), so the sweeps cross bucket
 * boundaries, trigger cascades, hit the sparse-bucket promotion path,
 * and force overflow rebasing. Targeted tests pin each of those edges
 * individually.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "sim/event.hh"

namespace kmu
{
namespace
{

class IdEvent : public Event
{
  public:
    IdEvent(int id, std::vector<int> &log,
            EventPriority prio = EventPriority::Default)
        : Event("id" + std::to_string(id), prio), id(id), log(log)
    {
    }

    void process() override { log.push_back(id); }

    const int id;

  private:
    std::vector<int> &log;
};

/**
 * The executable specification: every entry carries the same
 * (when, prio, seq) key the production schedulers order by, and
 * service is a linear min-scan. Correct by inspection.
 */
class ReferenceQueue
{
  public:
    struct RefEntry
    {
        Tick when;
        std::int32_t prio;
        std::uint64_t seq;
        int id;
    };

    struct RefEntryPop
    {
        Tick when;
        int id;
    };

    void
    insert(Tick when, EventPriority prio, std::uint64_t seq, int id)
    {
        entries.push_back(
            {when, static_cast<std::int32_t>(prio), seq, id});
    }

    void
    erase(std::uint64_t seq)
    {
        auto it = std::find_if(
            entries.begin(), entries.end(),
            [&](const RefEntry &e) { return e.seq == seq; });
        ASSERT_NE(it, entries.end());
        entries.erase(it);
    }

    /** Pop the strict (when, prio, seq) minimum. */
    RefEntryPop
    pop()
    {
        auto it = std::min_element(
            entries.begin(), entries.end(),
            [](const RefEntry &a, const RefEntry &b) {
                if (a.when != b.when)
                    return a.when < b.when;
                if (a.prio != b.prio)
                    return a.prio < b.prio;
                return a.seq < b.seq;
            });
        RefEntryPop out{it->when, it->id};
        entries.erase(it);
        return out;
    }

    std::size_t size() const { return entries.size(); }

  private:
    std::vector<RefEntry> entries;
};

class EventQueueStressTest
    : public ::testing::TestWithParam<EventQueue::SchedulerKind>
{
};

const char *
schedulerName(
    const ::testing::TestParamInfo<EventQueue::SchedulerKind> &info)
{
    return info.param == EventQueue::SchedulerKind::Ladder ? "Ladder"
                                                           : "Heap";
}

/** Tick deltas spanning every ladder rung plus the overflow list. */
Tick
drawDelta(std::mt19937_64 &rng)
{
    switch (rng() % 6) {
    case 0:
        return 0; // same-tick (priority/seq tie-breaks)
    case 1:
        return 1 + rng() % 1'000; // rung 0 (1 ns buckets)
    case 2:
        return 1'000 + rng() % 261'144; // rung 0 span edge
    case 3:
        return 262'144 + rng() % 66'846'720; // rung 1 (262 ns)
    case 4:
        return Tick(67'108'864) +
               rng() % Tick(17'112'760'320); // rung 2 (67 us)
    default:
        return Tick(17'179'869'184) +
               rng() % Tick(1'000'000'000'000); // overflow (>17 ms)
    }
}

EventPriority
drawPriority(std::mt19937_64 &rng)
{
    static constexpr std::array<EventPriority, 4> prios = {
        EventPriority::DeviceResponse, EventPriority::Default,
        EventPriority::CpuTick, EventPriority::Stats};
    return prios[rng() % prios.size()];
}

// Random interleavings of the full mutation API, validated op-by-op
// against the reference model. Seeded, so failures replay exactly.
TEST_P(EventQueueStressTest, RandomOpsMatchReferenceModel)
{
    EventQueue eq(GetParam());
    ReferenceQueue ref;
    std::mt19937_64 rng(0x5eed'0001);

    std::vector<int> log;
    constexpr int poolSize = 64;
    std::vector<std::unique_ptr<IdEvent>> pool(poolSize);

    // The reference mirrors the queue's insertion-sequence counter:
    // one seq per schedule() call, including the one inside
    // reschedule(). perEventSeq remembers each event's live entry.
    std::uint64_t nextSeq = 0;
    std::array<std::uint64_t, poolSize> perEventSeq{};

    std::vector<int> idle;    // pool indices not scheduled
    std::vector<int> pending; // pool indices scheduled
    Tick lastWhen = 0;        // reused sometimes to force exact ties

    auto drawWhen = [&]() -> Tick {
        if (rng() % 4 == 0 && lastWhen >= eq.curTick())
            return lastWhen; // exact (when) collision
        lastWhen = eq.curTick() + drawDelta(rng);
        return lastWhen;
    };

    for (int i = 0; i < poolSize; ++i)
        idle.push_back(i);

    for (int op = 0; op < 30'000; ++op) {
        const auto pick = rng() % 100;
        if (pick < 45 && !idle.empty()) {
            // Schedule an idle event at a random tick/priority.
            const int slot = int(rng() % idle.size());
            const int id = idle[slot];
            idle.erase(idle.begin() + slot);
            const Tick when = drawWhen();
            const EventPriority prio = drawPriority(rng);
            if (!pool[std::size_t(id)] ||
                pool[std::size_t(id)]->priority() != prio)
                pool[std::size_t(id)] =
                    std::make_unique<IdEvent>(id, log, prio);
            eq.schedule(pool[std::size_t(id)].get(), when);
            ref.insert(when, prio, nextSeq, id);
            perEventSeq[std::size_t(id)] = nextSeq++;
            pending.push_back(id);
        } else if (pick < 55 && !pending.empty()) {
            // Deschedule a random pending event.
            const int slot = int(rng() % pending.size());
            const int id = pending[slot];
            pending.erase(pending.begin() + slot);
            eq.deschedule(pool[std::size_t(id)].get());
            ref.erase(perEventSeq[std::size_t(id)]);
            idle.push_back(id);
        } else if (pick < 70 && !pending.empty()) {
            // Reschedule: cancels the old entry, takes a fresh seq.
            const int id = pending[rng() % pending.size()];
            const Tick when = drawWhen();
            eq.reschedule(pool[std::size_t(id)].get(), when);
            ref.erase(perEventSeq[std::size_t(id)]);
            ref.insert(when, pool[std::size_t(id)]->priority(),
                       nextSeq, id);
            perEventSeq[std::size_t(id)] = nextSeq++;
        } else {
            // Service a small burst, checking each pop against the
            // reference minimum.
            const int burst = 1 + int(rng() % 4);
            for (int k = 0; k < burst && ref.size() > 0; ++k) {
                const auto expect = ref.pop();
                ASSERT_TRUE(eq.serviceOne());
                ASSERT_FALSE(log.empty());
                ASSERT_EQ(log.back(), expect.id)
                    << "service order diverged at op " << op;
                ASSERT_EQ(eq.curTick(), expect.when);
                pending.erase(std::find(pending.begin(),
                                        pending.end(), expect.id));
                idle.push_back(expect.id);
            }
        }

        ASSERT_EQ(eq.size(), ref.size());
        // Lazy-cancel bookkeeping must stay bounded by live events
        // (with the compaction trigger's floor of 64, +1 for the
        // entry examined before the trigger fires).
        ASSERT_LE(eq.deadEntries(), std::max<std::size_t>(
                                        eq.size(), 64) + 1);
    }

    // Drain: the tail must come out in exact reference order too.
    while (ref.size() > 0) {
        const auto expect = ref.pop();
        ASSERT_TRUE(eq.serviceOne());
        ASSERT_EQ(log.back(), expect.id);
        ASSERT_EQ(eq.curTick(), expect.when);
    }
    EXPECT_FALSE(eq.serviceOne());
    EXPECT_TRUE(eq.empty());
}

// One-shot lambda churn: owned arena slots must be recycled (never
// accumulated) across schedule/run cycles, including heap-spilled
// captures larger than the inline slot.
TEST_P(EventQueueStressTest, LambdaChurnKeepsArenaBounded)
{
    EventQueue eq(GetParam());
    std::mt19937_64 rng(0x5eed'0002);
    std::uint64_t hits = 0;
    std::uint64_t expected = 0;

    for (int round = 0; round < 200; ++round) {
        const int n = 1 + int(rng() % 100);
        for (int i = 0; i < n; ++i) {
            ++expected;
            if (rng() % 8 == 0) {
                // Capture bigger than LambdaEvent's inline storage:
                // exercises the heap-spill bind/dispose pair.
                std::array<std::uint64_t, 16> big{};
                big[0] = 1;
                eq.scheduleLambda(
                    eq.curTick() + drawDelta(rng),
                    [&hits, big]() { hits += big[0]; },
                    drawPriority(rng), "spill");
            } else {
                eq.scheduleLambda(
                    eq.curTick() + 1 + rng() % 1000,
                    [&hits]() { ++hits; }, drawPriority(rng),
                    "inline");
            }
        }
        ASSERT_EQ(eq.ownedPending(), eq.size());
        eq.run();
        ASSERT_EQ(eq.ownedPending(), 0u);
        ASSERT_TRUE(eq.empty());
    }
    EXPECT_EQ(hits, expected);
}

// Lambdas still pending when the queue dies must be disposed by the
// destructor (ASan leak checking on the CI legs pins the "must free"
// half; the explicit counter pins "exactly the unserviced ones").
TEST_P(EventQueueStressTest, UnservicedLambdasFreedAtDestruction)
{
    auto alive = std::make_shared<int>(42);
    std::weak_ptr<int> watch = alive;
    {
        EventQueue eq(GetParam());
        for (int i = 0; i < 100; ++i)
            eq.scheduleLambda(Tick(1'000'000) + Tick(i),
                              [keep = alive]() { (void)*keep; });
        alive.reset();
        EXPECT_FALSE(watch.expired()); // captures hold it
        EXPECT_EQ(eq.ownedPending(), 100u);
    }
    EXPECT_TRUE(watch.expired()); // every capture disposed
}

// Ladder bucket-boundary edges: ticks straddling every rung's bucket
// and window boundaries, with priority ties on the boundary ticks.
TEST_P(EventQueueStressTest, BucketBoundaryOrdering)
{
    EventQueue eq(GetParam());
    std::vector<int> log;

    // Rung widths: 1<<10, 1<<18, 1<<26; window spans: 256 buckets.
    const std::vector<Tick> ticks = {
        1023,          1024,          1025,          // bucket edge r0
        262'143,       262'144,       262'145,       // window edge r0
        67'108'863,    67'108'864,    67'108'865,    // window edge r1
        17'179'869'183, 17'179'869'184,              // overflow edge
    };

    std::vector<std::unique_ptr<IdEvent>> events;
    std::vector<int> expect;
    int id = 0;
    // Two events per tick — same tick, different priority — inserted
    // in reverse-priority order so the scheduler must reorder them.
    for (const Tick t : ticks) {
        events.push_back(std::make_unique<IdEvent>(
            id, log, EventPriority::CpuTick));
        eq.schedule(events.back().get(), t);
        events.push_back(std::make_unique<IdEvent>(
            id + 1, log, EventPriority::DeviceResponse));
        eq.schedule(events.back().get(), t);
        expect.push_back(id + 1); // DeviceResponse first
        expect.push_back(id);
        id += 2;
    }
    eq.run();
    EXPECT_EQ(log, expect);
}

// maxTick saturation: the "never" guard tick must be schedulable and
// service last, without the ladder's window arithmetic wrapping.
TEST_P(EventQueueStressTest, MaxTickSaturation)
{
    EventQueue eq(GetParam());
    std::vector<int> log;
    IdEvent early(0, log);
    IdEvent nearEnd(1, log);
    IdEvent end1(2, log);
    IdEvent end2(3, log); // same tick: seq tie-break at saturation
    eq.schedule(&end1, maxTick);
    eq.schedule(&end2, maxTick);
    eq.schedule(&nearEnd, maxTick - 3);
    eq.schedule(&early, 10);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.curTick(), maxTick);
}

// Overflow rebase: events parked beyond the top rung's span must
// migrate into the rungs once time advances, preserving order across
// multiple rebase generations.
TEST_P(EventQueueStressTest, OverflowRebasePreservesOrder)
{
    EventQueue eq(GetParam());
    std::vector<int> log;
    std::vector<std::unique_ptr<IdEvent>> events;
    std::vector<int> expect;

    // Five generations, each ~20 ms apart (beyond the 17 ms rung-2
    // span, so each lands in the overflow list relative to the
    // previous generation's service time).
    const Tick gen = 20'000'000'000; // 20 ms in ps
    int id = 0;
    for (int g = 1; g <= 5; ++g) {
        for (int i = 0; i < 3; ++i) {
            events.push_back(std::make_unique<IdEvent>(id, log));
            eq.schedule(events.back().get(),
                        Tick(g) * gen + Tick(i) * 1'000);
            expect.push_back(id++);
        }
    }
    eq.run();
    EXPECT_EQ(log, expect);
}

// Regression: descheduling EVERY overflow entry and then draining
// (which triggers an overflow rebase that meets only dead entries)
// must not move the coarsest rung's window. The bug: the rebase set
// the window to the dead entries' far-future minimum before
// filtering, parking it well past the service point while frontEnd
// stayed low. A later insert into the uncovered gap then joined the
// active run while an earlier-tick insert landed in a stale
// finer-rung window — and was serviced second, aborting on "time
// went backwards". Timeout guards cancelled under load hit exactly
// this shape.
TEST_P(EventQueueStressTest, AllCancelledOverflowRebaseKeepsOrder)
{
    EventQueue eq(GetParam());
    std::vector<int> log;

    // Park guard events deep in the overflow list (~2^40 ps = ~1 s),
    // then cancel them all. The compaction trigger's floor keeps the
    // cancellations lazy, so the dead seqs are still stored when the
    // rebase runs.
    std::vector<std::unique_ptr<IdEvent>> guards;
    for (int i = 0; i < 4; ++i) {
        guards.push_back(std::make_unique<IdEvent>(100 + i, log));
        eq.schedule(guards.back().get(),
                    (Tick(1) << 40) + Tick(i) * 1'000);
    }
    for (auto &g : guards)
        eq.deschedule(g.get());

    // Drain: the refill cascades through the empty rungs into the
    // overflow rebase, which finds only cancelled entries.
    EXPECT_FALSE(eq.serviceOne());
    EXPECT_TRUE(eq.empty());

    // A later event into what the stale window would leave as an
    // uncovered gap, then an earlier event into the (possibly stale)
    // finest-rung window. Service order must follow the ticks.
    IdEvent later(1, log);
    IdEvent earlier(0, log);
    eq.schedule(&later, Tick(1) << 30);
    eq.schedule(&earlier, Tick(1) << 16);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.curTick(), Tick(1) << 30);

    // The rungs must still accept and rebase a fresh overflow
    // generation after the all-cancelled episode.
    IdEvent far(2, log);
    eq.schedule(&far, Tick(1) << 40);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
}

// Sparse-bucket promotion: µs-spaced events leave coarse-rung buckets
// at or below the promotion threshold, so cascading promotes them
// straight into the active run. Inserting new events *below* the
// promoted window's end must still service in exact order.
TEST_P(EventQueueStressTest, SparseBucketPromotionOrdering)
{
    EventQueue eq(GetParam());
    std::vector<int> log;
    std::vector<std::unique_ptr<IdEvent>> events;

    // A sparse µs-spaced stream (the device-completion shape).
    for (int i = 0; i < 64; ++i) {
        events.push_back(std::make_unique<IdEvent>(i, log));
        eq.schedule(events.back().get(),
                    Tick(i + 1) * 1'000'000); // every 1 µs
    }

    // Service half, injecting a near event after each pop — each
    // injection lands inside whatever window the promotion exposed.
    std::vector<int> expect;
    int nextId = 64;
    for (int i = 0; i < 32; ++i) {
        expect.push_back(i);
        ASSERT_TRUE(eq.serviceOne());
        events.push_back(std::make_unique<IdEvent>(nextId, log));
        eq.schedule(events.back().get(), eq.curTick() + 100);
        expect.push_back(nextId++);
        ASSERT_TRUE(eq.serviceOne());
    }
    for (int i = 32; i < 64; ++i)
        expect.push_back(i);
    eq.run();
    EXPECT_EQ(log, expect);
}

// The two kernels, fed one identical workload, must produce the same
// log — the observational-equivalence claim the dual-kernel escape
// hatch (KMU_EVENT_KERNEL=heap) rests on.
TEST(EventQueueStressCrossTest, KernelsAgreeOnRandomWorkload)
{
    std::array<std::vector<int>, 2> logs;
    const std::array<EventQueue::SchedulerKind, 2> kinds = {
        EventQueue::SchedulerKind::Ladder,
        EventQueue::SchedulerKind::Heap};

    for (std::size_t k = 0; k < kinds.size(); ++k) {
        EventQueue eq(kinds[k]);
        std::mt19937_64 rng(0x5eed'0003); // same stream for both
        std::vector<std::unique_ptr<IdEvent>> pool;
        std::vector<int> pending;
        for (int op = 0; op < 20'000; ++op) {
            const auto pick = rng() % 100;
            if (pick < 60) {
                const int id = int(pool.size());
                pool.push_back(std::make_unique<IdEvent>(
                    id, logs[k], drawPriority(rng)));
                eq.schedule(pool.back().get(),
                            eq.curTick() + drawDelta(rng));
                pending.push_back(id);
            } else if (pick < 70 && !pending.empty()) {
                const int slot = int(rng() % pending.size());
                eq.deschedule(
                    pool[std::size_t(pending[slot])].get());
                pending.erase(pending.begin() + slot);
            } else if (pick < 80 && !pending.empty()) {
                const int id = pending[rng() % pending.size()];
                eq.reschedule(pool[std::size_t(id)].get(),
                              eq.curTick() + drawDelta(rng));
            } else {
                for (int n = 0; n < 4 && eq.serviceOne(); ++n) {
                }
                pending.clear();
                for (std::size_t i = 0; i < pool.size(); ++i)
                    if (pool[i]->scheduled())
                        pending.push_back(int(i));
            }
        }
        eq.run();
    }
    EXPECT_EQ(logs[0], logs[1]);
    EXPECT_FALSE(logs[0].empty());
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, EventQueueStressTest,
    ::testing::Values(EventQueue::SchedulerKind::Ladder,
                      EventQueue::SchedulerKind::Heap),
    schedulerName);

} // anonymous namespace
} // namespace kmu
