/**
 * @file
 * Unit tests for ClockDomain and SimObject plumbing.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "sim/sim_object.hh"

namespace kmu
{
namespace
{

TEST(ClockDomainTest, PeriodFromFrequency)
{
    ClockDomain ghz1(1e9);
    EXPECT_EQ(ghz1.period(), nanoseconds(1));
    ClockDomain ghz2_5(2.5e9);
    EXPECT_EQ(ghz2_5.period(), picoseconds(400));
}

TEST(ClockDomainTest, CycleConversionsRoundTrip)
{
    ClockDomain clk(2.5e9);
    EXPECT_EQ(clk.cyclesToTicks(100), picoseconds(40000));
    EXPECT_EQ(clk.ticksToCycles(picoseconds(40000)), 100u);
    EXPECT_EQ(clk.ticksToCycles(picoseconds(40399)), 100u);
}

TEST(ClockDomainTest, ClockEdgeSnapsUp)
{
    ClockDomain clk(2.5e9); // 400 ps period
    EXPECT_EQ(clk.clockEdge(0), 0u);
    EXPECT_EQ(clk.clockEdge(1), 400u);
    EXPECT_EQ(clk.clockEdge(400), 400u);
    EXPECT_EQ(clk.clockEdge(401), 800u);
}

TEST(UnitsTest, TimeConstructors)
{
    EXPECT_EQ(nanoseconds(1), 1000u);
    EXPECT_EQ(microseconds(1), 1000000u);
    EXPECT_EQ(milliseconds(1), 1000000000u);
    EXPECT_DOUBLE_EQ(ticksToNs(nanoseconds(5)), 5.0);
    EXPECT_DOUBLE_EQ(ticksToUs(microseconds(3)), 3.0);
}

TEST(UnitsTest, TransferTicks)
{
    // 4 GB/s: 64 bytes take 16 ns.
    EXPECT_EQ(transferTicks(64, 4'000'000'000ull), nanoseconds(16));
    // Rounds up: 1 byte at 4 GB/s is 0.25 ns -> 250 ps exactly.
    EXPECT_EQ(transferTicks(1, 4'000'000'000ull), picoseconds(250));
    // Zero bytes transfer instantly.
    EXPECT_EQ(transferTicks(0, 1000), 0u);
}

TEST(SimObjectTest, NameQueueAndStats)
{
    EventQueue eq;
    StatGroup root("root");
    SimObject obj("widget", eq, &root);
    EXPECT_EQ(obj.name(), "widget");
    EXPECT_EQ(obj.curTick(), 0u);
    EXPECT_EQ(obj.stats().path(), "root.widget");
    eq.scheduleLambda(42, []() {});
    eq.run();
    EXPECT_EQ(obj.curTick(), 42u);
}

} // anonymous namespace
} // namespace kmu
