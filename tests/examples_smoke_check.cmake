# Examples smoke gate: every example binary must run to completion
# (exit 0) and print the line that proves it exercised its real code
# path — a quickstart that crashes, a traversal that fails
# verification, or a lookup run that silently prints nothing is a
# shipped-but-broken sample.
#
# Invoked by ctest as:
#   cmake -DQUICKSTART=<path> -DGRAPH_TRAVERSAL=<path>
#         -DKV_LOOKUP=<path> -DBLOOM_MEMBERSHIP=<path>
#         -DTRACE_TO_SIM=<path> -DWORK_DIR=<dir>
#         -P examples_smoke_check.cmake

foreach(v QUICKSTART GRAPH_TRAVERSAL KV_LOOKUP BLOOM_MEMBERSHIP
          TRACE_TO_SIM)
    if(NOT ${v})
        message(FATAL_ERROR "pass -D${v}=<path to example binary>")
    endif()
endforeach()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORK_DIR}/examples_smoke)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

# run(name binary expected_substring [args...])
function(run name binary expected)
    execute_process(
        COMMAND ${binary} ${ARGN}
        WORKING_DIRECTORY ${dir}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    file(WRITE ${dir}/${name}.out "${out}")
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "example '${name}' exited with rc=${rc}:\n${out}${err}")
    endif()
    string(FIND "${out}" "${expected}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
            "example '${name}' ran but never printed \"${expected}\" "
            "(full output in ${dir}/${name}.out)")
    endif()
    message(STATUS "example '${name}' ok")
endfunction()

run(quickstart ${QUICKSTART} "mechanism: prefetch")
# graph_traversal prints PASS only when the device BFS matches the
# host reference, and exits nonzero on FAIL.
run(graph_traversal ${GRAPH_TRAVERSAL} "verification:   PASS")
run(kv_lookup ${KV_LOOKUP} "GETs/s")
run(bloom_membership ${BLOOM_MEMBERSHIP} "measured FPR")
# Smallest app/latency point so the timing-model replay stays quick.
run(trace_to_sim ${TRACE_TO_SIM} "Reading the table:" bloom 1)

message(STATUS "examples smoke check passed: all 5 examples ran")
