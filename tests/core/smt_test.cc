/**
 * @file
 * Tests for the SMT extension of the on-demand core model.
 */

#include <gtest/gtest.h>

#include "core/on_demand_core.hh"
#include "core/sim_system.hh"

namespace kmu
{
namespace
{

SystemConfig
smtConfig(std::uint32_t contexts, Tick latency = microseconds(1))
{
    SystemConfig cfg;
    cfg.mechanism = Mechanism::OnDemand;
    cfg.backing = Backing::Device;
    cfg.smtContexts = contexts;
    cfg.device.latency = latency;
    return cfg;
}

TEST(SmtTest, SingleContextUnchangedFromBaselineModel)
{
    // smtContexts = 1 must reproduce the original single-stream
    // model exactly (it is the normalization baseline everywhere).
    SystemConfig one = smtConfig(1);
    SimSystem sys(one);
    auto &core = static_cast<OnDemandCore &>(sys.core(0));
    EXPECT_EQ(core.contexts(), 1u);
    EXPECT_EQ(core.maxInWindow(), 1u); // 250-instr iterations
}

TEST(SmtTest, TwoContextsDoubleTheThroughput)
{
    // Latency-bound regime: contexts overlap each other's stalls.
    const double one = normalizedWorkIpc(smtConfig(1));
    const double two = normalizedWorkIpc(smtConfig(2));
    EXPECT_NEAR(two, 2.0 * one, 0.1 * two);
}

TEST(SmtTest, ScalingStopsAtTheLfbLimit)
{
    // Once aggregate in-flight loads reach the shared 10-entry LFB,
    // more contexts cannot help (same ceiling as prefetch threads).
    const double c16 = normalizedWorkIpc(smtConfig(16));
    const double c32 = normalizedWorkIpc(smtConfig(32));
    EXPECT_NEAR(c32, c16, 0.03 * c16);

    // And the ceiling tracks LFB/latency: 4 us caps at half of 2 us.
    const double c32_2us =
        normalizedWorkIpc(smtConfig(32, microseconds(2)));
    const double c32_4us =
        normalizedWorkIpc(smtConfig(32, microseconds(4)));
    EXPECT_NEAR(c32_4us * 2.0, c32_2us, 0.1 * c32_2us);
}

TEST(SmtTest, RobPartitionsAcrossContexts)
{
    // With small iterations, one context overlaps iterations inside
    // its ROB share; splitting the ROB across 4 contexts shrinks the
    // per-context window.
    SystemConfig small = smtConfig(1);
    small.workCount = 40;
    SimSystem sys1(small);
    const auto win1 =
        static_cast<OnDemandCore &>(sys1.core(0)).maxInWindow();

    small.smtContexts = 4;
    SimSystem sys4(small);
    const auto win4 =
        static_cast<OnDemandCore &>(sys4.core(0)).maxInWindow();
    EXPECT_GT(win1, win4);
    EXPECT_GE(win4, 1u);
}

TEST(SmtTest, ContextsProgressIndependently)
{
    SimSystem sys(smtConfig(4));
    const auto res = sys.run();
    // All four contexts retire work: aggregate far beyond what one
    // blocked stream could manage in the window.
    const auto single = runSystem(smtConfig(1));
    EXPECT_GT(res.iterations, 3 * single.iterations);
}

TEST(SmtTest, DeterministicAcrossRuns)
{
    const auto a = runSystem(smtConfig(3));
    const auto b = runSystem(smtConfig(3));
    EXPECT_EQ(a.workInstrs, b.workInstrs);
    EXPECT_EQ(a.accesses, b.accesses);
}

} // anonymous namespace
} // namespace kmu
