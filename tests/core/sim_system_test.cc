/**
 * @file
 * Whole-system integration tests: multicore behaviour, the shared
 * chip queue, PCIe bandwidth accounting, and determinism.
 */

#include <gtest/gtest.h>

#include "core/sim_system.hh"

namespace kmu
{
namespace
{

SystemConfig
multicore(Mechanism mech, std::uint32_t cores, std::uint32_t threads,
          Tick latency = microseconds(1))
{
    SystemConfig cfg;
    cfg.mechanism = mech;
    cfg.backing = Backing::Device;
    cfg.numCores = cores;
    cfg.threadsPerCore = threads;
    cfg.device.latency = latency;
    return cfg;
}

TEST(SimSystemTest, ChipQueuePeaksAtFourteenForPrefetch)
{
    const auto res = runSystem(multicore(Mechanism::Prefetch, 4, 16,
                                         microseconds(4)));
    EXPECT_EQ(res.chipQueuePeak, 14u);
}

TEST(SimSystemTest, MulticorePrefetchCappedByChipQueue)
{
    // Fig. 5: 2 cores with enough threads already hit the 14-entry
    // shared queue; adding cores does not help.
    const auto base = runSystem(
        baselineConfig(multicore(Mechanism::Prefetch, 1, 1)));
    const auto c2 = runSystem(multicore(Mechanism::Prefetch, 2, 16,
                                        microseconds(4)));
    const auto c8 = runSystem(multicore(Mechanism::Prefetch, 8, 16,
                                        microseconds(4)));
    const double n2 = normalizedWorkIpc(c2, base);
    const double n8 = normalizedWorkIpc(c8, base);
    EXPECT_NEAR(n8, n2, 0.08 * n2);
}

TEST(SimSystemTest, EnlargedChipQueueRestoresMulticoreScaling)
{
    SystemConfig small = multicore(Mechanism::Prefetch, 8, 16,
                                   microseconds(4));
    SystemConfig big = small;
    big.chipPcieQueue = 640; // 20 x latency-us x cores
    big.lfbPerCore = 80;
    const double n_small = normalizedWorkIpc(small);
    const double n_big = normalizedWorkIpc(big);
    EXPECT_GT(n_big, 4.0 * n_small);
}

TEST(SimSystemTest, DramPathAllowsMoreParallelismThanPcie)
{
    // The paper verified >= 48 outstanding DRAM accesses vs 14 on
    // the PCIe path: with DRAM backing, 8 cores x 16 threads scale
    // far beyond the device-backed equivalent.
    SystemConfig dram_cfg = multicore(Mechanism::Prefetch, 8, 6);
    dram_cfg.backing = Backing::Dram;
    const auto base = runSystem(baselineConfig(dram_cfg));
    const auto dram_res = runSystem(dram_cfg);
    const auto dev_res = runSystem(
        multicore(Mechanism::Prefetch, 8, 6, microseconds(1)));
    EXPECT_GT(normalizedWorkIpc(dram_res, base),
              2.0 * normalizedWorkIpc(dev_res, base));
}

TEST(SimSystemTest, SwQueueScalesLinearlyAcrossCores)
{
    // Fig. 8: no shared hardware queue; performance rises linearly
    // with core count until PCIe saturates.
    const auto base = runSystem(
        baselineConfig(multicore(Mechanism::SwQueue, 1, 1)));
    const auto c1 = runSystem(multicore(Mechanism::SwQueue, 1, 24));
    const auto c4 = runSystem(multicore(Mechanism::SwQueue, 4, 24));
    const double n1 = normalizedWorkIpc(c1, base);
    const double n4 = normalizedWorkIpc(c4, base);
    EXPECT_NEAR(n4, 4.0 * n1, 0.15 * n4);
}

TEST(SimSystemTest, SwQueueUsefulBandwidthNearHalfAtEightCores)
{
    // Fig. 8's bottleneck: at 8 cores the device->host direction is
    // busy but only ~50 % of its bytes are requested data; useful
    // throughput lands near 2 GB/s of the 4 GB/s peak.
    const auto res = runSystem(multicore(Mechanism::SwQueue, 8, 24));
    EXPECT_GT(res.toHostWireGBs, 3.2);
    EXPECT_GT(res.toHostUsefulGBs, 1.6);
    EXPECT_LT(res.toHostUsefulGBs, 2.4);
    const double useful_fraction =
        res.toHostUsefulGBs / res.toHostWireGBs;
    EXPECT_NEAR(useful_fraction, 0.5, 0.08);
}

TEST(SimSystemTest, PrefetchUsesLinkMoreEfficiently)
{
    // Prefetch-based access needs one completion TLP per line; the
    // software queues add descriptor reads and CQ writes.
    const auto pf = runSystem(multicore(Mechanism::Prefetch, 1, 10));
    const auto swq = runSystem(multicore(Mechanism::SwQueue, 1, 10));
    const double pf_wire_per_line =
        pf.toHostWireGBs / pf.accessesPerUs;
    const double swq_wire_per_line =
        swq.toHostWireGBs / swq.accessesPerUs;
    EXPECT_LT(pf_wire_per_line, 0.8 * swq_wire_per_line);
}

TEST(SimSystemTest, BaselineConfigNormalizesItselfToOne)
{
    SystemConfig cfg = multicore(Mechanism::Prefetch, 4, 8);
    const SystemConfig base = baselineConfig(cfg);
    EXPECT_EQ(base.numCores, 1u);
    EXPECT_EQ(base.threadsPerCore, 1u);
    EXPECT_EQ(base.mechanism, Mechanism::OnDemand);
    EXPECT_EQ(base.backing, Backing::Dram);
    EXPECT_DOUBLE_EQ(normalizedWorkIpc(base), 1.0);
}

TEST(SimSystemTest, RunsAreDeterministic)
{
    const auto a = runSystem(multicore(Mechanism::SwQueue, 2, 12));
    const auto b = runSystem(multicore(Mechanism::SwQueue, 2, 12));
    EXPECT_EQ(a.workInstrs, b.workInstrs);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.iterations, b.iterations);

    const auto c = runSystem(multicore(Mechanism::Prefetch, 2, 12));
    const auto d = runSystem(multicore(Mechanism::Prefetch, 2, 12));
    EXPECT_EQ(c.workInstrs, d.workInstrs);
}

TEST(SimSystemTest, ReplaySourcedRunsStayMatched)
{
    // Install per-core replay sources that follow each core's actual
    // address generator; the emulator should never miss.
    SystemConfig cfg = multicore(Mechanism::Prefetch, 1, 4);
    SimSystem sys(cfg);
    // The prefetch core issues addrFor(thread, iter, slot) in strict
    // round robin, so the recorded stream is reproducible here.
    auto state = std::make_shared<std::uint64_t>(0);
    const std::uint32_t threads = cfg.threadsPerCore;
    sys.deviceEmulator()->setReplaySource(
        0, [state, threads](Addr &next) {
            const std::uint64_t i = (*state)++;
            const std::uint64_t thread = i % threads;
            const std::uint64_t iter = i / threads;
            const std::uint64_t line =
                ((0ull * 4096 + thread) << 34) +
                iter * AccessEngine::maxBatch;
            next = line * cacheLineSize;
            return true;
        });
    const auto res = sys.run();
    EXPECT_GT(res.accesses, 100u);
    EXPECT_EQ(res.replayMisses, 0u);
}

TEST(SimSystemTest, ObservedReadLatencyMatchesConfig)
{
    // Uncongested prefetch run: issue-to-fill latency must sit at
    // the configured device latency (the delay module compensates
    // for the PCIe round trip, Section IV-A).
    for (unsigned us : {1u, 2u, 4u}) {
        SystemConfig cfg = multicore(Mechanism::Prefetch, 1, 4,
                                     microseconds(us));
        const auto res = runSystem(cfg);
        EXPECT_NEAR(res.meanReadLatencyNs, us * 1000.0,
                    us * 1000.0 * 0.05)
            << us << "us device";
    }

    // DRAM baseline observes the DRAM latency.
    SystemConfig base = baselineConfig(
        multicore(Mechanism::Prefetch, 1, 1));
    const auto bres = runSystem(base);
    EXPECT_NEAR(bres.meanReadLatencyNs, 60.0, 3.0);
}

TEST(SimSystemTest, CongestionInflatesObservedLatency)
{
    // Past the chip-queue cap, requests wait for a slot: observed
    // latency rises well above the device latency.
    const auto res = runSystem(multicore(Mechanism::Prefetch, 8, 16,
                                         microseconds(1)));
    EXPECT_GT(res.meanReadLatencyNs, 1500.0);
}

TEST(SimSystemTest, RunIsSingleShot)
{
    SimSystem sys(multicore(Mechanism::Prefetch, 1, 2));
    sys.run();
    EXPECT_DEATH(sys.run(), "single-shot");
}

TEST(SimSystemDeathTest, SwQueueRequiresDeviceBacking)
{
    SystemConfig cfg = multicore(Mechanism::SwQueue, 1, 2);
    cfg.backing = Backing::Dram;
    EXPECT_DEATH(SimSystem{cfg}, "target the device");
}

} // anonymous namespace
} // namespace kmu
