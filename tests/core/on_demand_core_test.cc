/**
 * @file
 * Tests for the OoO-window on-demand core model (also the DRAM
 * baseline of every figure).
 */

#include <gtest/gtest.h>

#include "core/on_demand_core.hh"
#include "core/sim_system.hh"

namespace kmu
{
namespace
{

SystemConfig
dramBaseline(std::uint32_t work, std::uint32_t batch = 1)
{
    SystemConfig cfg;
    cfg.mechanism = Mechanism::OnDemand;
    cfg.backing = Backing::Dram;
    cfg.workCount = work;
    cfg.batch = batch;
    return cfg;
}

TEST(OnDemandCoreTest, BaselineIpcMatchesAnalyticModel)
{
    // One 250-instr iteration exceeds half the ROB, so exactly one
    // iteration is in flight: iter time = work/1.4 cycles + DRAM.
    const auto cfg = dramBaseline(250);
    const auto res = runSystem(cfg);
    const double work_ns = 250.0 / 1.4 / 2.5; // 71.4
    const double loop_ns = 8.0 / 1.4 / 2.5;
    const double iter_ns = work_ns + loop_ns + 60.0;
    const double expect = 250.0 / (iter_ns * 2.5);
    EXPECT_NEAR(res.workIpc, expect, 0.02 * expect);
}

TEST(OnDemandCoreTest, SmallIterationsOverlapDramAccesses)
{
    // 50-instr iterations fit the ROB ~3x: DRAM latency overlaps and
    // per-work-instruction throughput beats the 250-instr case.
    const auto small = runSystem(dramBaseline(50));
    const auto big = runSystem(dramBaseline(250));
    const double small_per_iter =
        small.workIpc / 50.0;  // iterations per cycle
    const double big_per_iter = big.workIpc / 250.0;
    EXPECT_GT(small_per_iter, 1.5 * big_per_iter);
}

TEST(OnDemandCoreTest, WindowAdmitsMultipleSmallIterations)
{
    SystemConfig cfg = dramBaseline(50);
    SimSystem sys(cfg);
    auto &core = static_cast<OnDemandCore &>(sys.core(0));
    EXPECT_GE(core.maxInWindow(), 2u);
    SystemConfig cfg_big = dramBaseline(1000);
    SimSystem sys_big(cfg_big);
    auto &core_big = static_cast<OnDemandCore &>(sys_big.core(0));
    EXPECT_EQ(core_big.maxInWindow(), 1u);
}

TEST(OnDemandCoreTest, DeviceLatencyCollapsesThroughput)
{
    SystemConfig dev = dramBaseline(250);
    dev.backing = Backing::Device;
    dev.device.latency = microseconds(1);
    const double norm = normalizedWorkIpc(dev);
    EXPECT_LT(norm, 0.15); // the paper's "abysmal" Fig. 2 point
    EXPECT_GT(norm, 0.05);
}

TEST(OnDemandCoreTest, MoreWorkPartiallyAbatesDeviceLatency)
{
    double prev = 0.0;
    for (std::uint32_t work : {250u, 1000u, 5000u}) {
        SystemConfig dev = dramBaseline(work);
        dev.backing = Backing::Device;
        const double norm = normalizedWorkIpc(dev);
        EXPECT_GT(norm, prev);
        prev = norm;
    }
    // Even at 5000 work instructions the gap remains (Fig. 2).
    EXPECT_LT(prev, 0.8);
    EXPECT_GT(prev, 0.5);
}

TEST(OnDemandCoreTest, LongerLatencyAlwaysWorse)
{
    double prev = 1.0;
    for (unsigned us : {1u, 2u, 4u}) {
        SystemConfig dev = dramBaseline(250);
        dev.backing = Backing::Device;
        dev.device.latency = microseconds(us);
        const double norm = normalizedWorkIpc(dev);
        EXPECT_LT(norm, prev);
        prev = norm;
    }
}

TEST(OnDemandCoreTest, BatchedLoadsOverlapInBaseline)
{
    // MLP in the window: 4 adjacent independent loads share one DRAM
    // round trip, so IPC rises with batch.
    const auto b1 = runSystem(dramBaseline(250, 1));
    const auto b4 = runSystem(dramBaseline(250, 4));
    EXPECT_GT(b4.workIpc, 1.2 * b1.workIpc);
}

TEST(OnDemandCoreTest, DeterministicAcrossRuns)
{
    const auto a = runSystem(dramBaseline(250));
    const auto b = runSystem(dramBaseline(250));
    EXPECT_EQ(a.workInstrs, b.workInstrs);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_DOUBLE_EQ(a.workIpc, b.workIpc);
}

} // anonymous namespace
} // namespace kmu
