/**
 * @file
 * Timing-model tests for the posted-write extension.
 */

#include <gtest/gtest.h>

#include "core/sim_system.hh"

namespace kmu
{
namespace
{

SystemConfig
mixConfig(Mechanism mech, double frac, std::uint32_t threads)
{
    SystemConfig cfg;
    cfg.mechanism = mech;
    cfg.backing = Backing::Device;
    cfg.threadsPerCore = threads;
    cfg.writeFraction = frac;
    return cfg;
}

TEST(WriteMixTest, WriteCountsTrackTheFraction)
{
    for (Mechanism mech :
         {Mechanism::OnDemand, Mechanism::Prefetch,
          Mechanism::SwQueue}) {
        const auto res = runSystem(mixConfig(mech, 0.5, 4));
        ASSERT_GT(res.accesses, 0u);
        const double measured =
            double(res.writes) / double(res.accesses);
        EXPECT_NEAR(measured, 0.5, 0.05)
            << "mechanism " << int(mech);
    }
}

TEST(WriteMixTest, ZeroFractionEmitsNoWrites)
{
    const auto res = runSystem(mixConfig(Mechanism::Prefetch, 0.0, 8));
    EXPECT_EQ(res.writes, 0u);
}

TEST(WriteMixTest, PrefetchHoldsParityUnderWriteHeavyMix)
{
    // The paper's conclusion: write latency hides behind the same
    // thread's later instructions. A 75 %-write mix must not drop
    // the prefetch mechanism below ~DRAM parity.
    const double norm =
        normalizedWorkIpc(mixConfig(Mechanism::Prefetch, 0.75, 10));
    EXPECT_GT(norm, 0.9);
}

TEST(WriteMixTest, WritesBypassTheLfbBottleneck)
{
    // At 4 us and 16 threads the read-only run is hard-capped by the
    // 10-entry LFB; replacing half the accesses with posted writes
    // raises normalized throughput.
    SystemConfig reads = mixConfig(Mechanism::Prefetch, 0.0, 16);
    reads.device.latency = microseconds(4);
    SystemConfig mixed = mixConfig(Mechanism::Prefetch, 0.5, 16);
    mixed.device.latency = microseconds(4);
    EXPECT_GT(normalizedWorkIpc(mixed),
              1.3 * normalizedWorkIpc(reads));
}

TEST(WriteMixTest, QueueOverheadPersistsForWrites)
{
    // Software queues pay descriptor management per write, so even
    // a write-heavy mix stays near the overhead-bound peak.
    const double norm =
        normalizedWorkIpc(mixConfig(Mechanism::SwQueue, 0.75, 32));
    EXPECT_LT(norm, 0.65);
    EXPECT_GT(norm, 0.3);
}

TEST(WriteMixTest, WriteTlpsReachTheDevice)
{
    SimSystem sys(mixConfig(Mechanism::Prefetch, 0.5, 8));
    const auto res = sys.run();
    ASSERT_GT(res.writes, 0u);
    // Every posted write becomes a TLP; at the measurement cutoff a
    // handful may still be on the wire.
    const std::uint64_t emitted = sys.core(0).writesDone();
    const std::uint64_t received =
        sys.deviceEmulator()->writesReceived.value();
    EXPECT_LE(received, emitted);
    EXPECT_GE(received + 64, emitted);
}

TEST(WriteMixTest, DeterministicWriteSlotSelection)
{
    const auto a = runSystem(mixConfig(Mechanism::Prefetch, 0.3, 6));
    const auto b = runSystem(mixConfig(Mechanism::Prefetch, 0.3, 6));
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.workInstrs, b.workInstrs);
}

} // anonymous namespace
} // namespace kmu
