/**
 * @file
 * Tests for the prefetch + context-switch core model: the LFB
 * plateaus and knees of Figs. 3, 4 and 6.
 */

#include <gtest/gtest.h>

#include "core/prefetch_core.hh"
#include "core/sim_system.hh"

namespace kmu
{
namespace
{

SystemConfig
prefetchConfig(std::uint32_t threads, Tick latency = microseconds(1))
{
    SystemConfig cfg;
    cfg.mechanism = Mechanism::Prefetch;
    cfg.backing = Backing::Device;
    cfg.threadsPerCore = threads;
    cfg.device.latency = latency;
    return cfg;
}

double
normAt(std::uint32_t threads, Tick latency = microseconds(1),
       std::uint32_t batch = 1)
{
    SystemConfig cfg = prefetchConfig(threads, latency);
    cfg.batch = batch;
    return normalizedWorkIpc(cfg);
}

TEST(PrefetchCoreTest, ThroughputScalesWithThreadsBeforeKnee)
{
    const double t1 = normAt(1);
    const double t2 = normAt(2);
    const double t4 = normAt(4);
    EXPECT_NEAR(t2, 2.0 * t1, 0.15 * t2);
    EXPECT_NEAR(t4, 4.0 * t1, 0.15 * t4);
}

TEST(PrefetchCoreTest, ApproachesDramAtTenThreadsFor1us)
{
    // The paper: "At 10 threads and 1 us device latency, the
    // performance is similar to running the application with data in
    // DRAM", marginally above it.
    const double t10 = normAt(10);
    EXPECT_GT(t10, 0.95);
    EXPECT_LT(t10, 1.25);
}

TEST(PrefetchCoreTest, LfbPlateauAtTenThreads)
{
    const double t10 = normAt(10, microseconds(4));
    const double t16 = normAt(16, microseconds(4));
    const double t32 = normAt(32, microseconds(4));
    // No improvement beyond 10 threads, and no collapse either.
    EXPECT_NEAR(t16, t10, 0.05 * t10);
    EXPECT_NEAR(t32, t10, 0.05 * t10);
}

TEST(PrefetchCoreTest, PlateauTracksLfbOverLatency)
{
    // Once latency-bound, the plateau is LFB/latency: doubling the
    // latency halves it. At 1 us the plateau is slot-bound instead
    // (full hiding), so it sits below twice the 2 us value.
    const double p1 = normAt(16, microseconds(1));
    const double p2 = normAt(16, microseconds(2));
    const double p4 = normAt(16, microseconds(4));
    EXPECT_NEAR(p4 * 2.0, p2, 0.1 * p2);
    EXPECT_LT(p1, 2.0 * p2);
    EXPECT_GT(p1, p2);
}

TEST(PrefetchCoreTest, EnlargedLfbLiftsThePlateau)
{
    // The paper's central claim: resize the queues and the plateau
    // moves. 4 us needs ~80 in-flight accesses (20 x latency-us).
    SystemConfig small = prefetchConfig(40, microseconds(4));
    SystemConfig big = prefetchConfig(40, microseconds(4));
    big.lfbPerCore = 80;
    big.chipPcieQueue = 256;
    const double with_small = normalizedWorkIpc(small);
    const double with_big = normalizedWorkIpc(big);
    EXPECT_GT(with_big, 2.5 * with_small);
    EXPECT_GT(with_big, 0.9); // approaches DRAM
}

TEST(PrefetchCoreTest, MlpConsumesLfbsFaster)
{
    // Fig. 6: knees at ~10/5/3 threads for MLP 1/2/4. Past the knee,
    // extra threads do not help.
    const double b2_at5 = normAt(5, microseconds(1), 2);
    const double b2_at10 = normAt(10, microseconds(1), 2);
    EXPECT_NEAR(b2_at10, b2_at5 * 10 / 10, 0.25 * b2_at10);
    EXPECT_LT(b2_at10, 1.15 * b2_at5 + 0.25);

    const double b4_at3 = normAt(3, microseconds(1), 4);
    const double b4_at10 = normAt(10, microseconds(1), 4);
    EXPECT_LT(b4_at10, 1.25 * b4_at3);
}

TEST(PrefetchCoreTest, MlpPlateauBelowItsOwnBaseline)
{
    // "the LFB limit is more problematic for applications with
    // inherent MLP": the 4-read plateau sits clearly below its
    // (MLP-matched) DRAM baseline, unlike the 1-read case.
    const double b1 = normAt(16, microseconds(1), 1);
    const double b4 = normAt(16, microseconds(1), 4);
    EXPECT_GT(b1, 1.0);
    EXPECT_LT(b4, 0.95);
}

TEST(PrefetchCoreTest, NoPrefetchQueuingBelowLfbLimit)
{
    SystemConfig cfg = prefetchConfig(8);
    const auto res = runSystem(cfg);
    EXPECT_EQ(res.prefetchesQueued, 0u);
    SystemConfig over = prefetchConfig(16);
    const auto res_over = runSystem(over);
    EXPECT_GT(res_over.prefetchesQueued, 0u);
}

TEST(PrefetchCoreTest, ContextSwitchCostMatters)
{
    // The paper's 2 us Pth switches would defeat the mechanism.
    SystemConfig fast = prefetchConfig(10);
    SystemConfig slow = prefetchConfig(10);
    slow.ctxSwitchCost = microseconds(2);
    const double f = normalizedWorkIpc(fast);
    const double s = normalizedWorkIpc(slow);
    EXPECT_GT(f, 3.0 * s);
}

TEST(PrefetchCoreTest, PrefetchToDramAblation)
{
    // Prefetch+yield against plain DRAM: the mechanism costs a
    // little (switch overhead) but stays near the baseline.
    SystemConfig cfg = prefetchConfig(4);
    cfg.backing = Backing::Dram;
    const double norm = normalizedWorkIpc(cfg);
    EXPECT_GT(norm, 0.7);
    EXPECT_LT(norm, 1.4);
}

} // anonymous namespace
} // namespace kmu
