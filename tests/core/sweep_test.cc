/**
 * @file
 * Property sweeps over the timing model: broad invariants that must
 * hold at every (mechanism, latency, thread-count) point.
 */

#include <gtest/gtest.h>

#include "core/sim_system.hh"

namespace kmu
{
namespace
{

struct SweepPoint
{
    Mechanism mechanism;
    unsigned latencyUs;
};

class MechanismLatencySweep
    : public ::testing::TestWithParam<SweepPoint>
{
  protected:
    SystemConfig
    configFor(std::uint32_t threads) const
    {
        SystemConfig cfg;
        cfg.mechanism = GetParam().mechanism;
        cfg.backing = Backing::Device;
        cfg.threadsPerCore = threads;
        cfg.device.latency = microseconds(GetParam().latencyUs);
        return cfg;
    }
};

TEST_P(MechanismLatencySweep, ThroughputMonotonicInThreads)
{
    // More threads never hurt (within 2% numerical slack): each
    // mechanism either gains or plateaus.
    double prev = 0.0;
    for (std::uint32_t threads : {1u, 2u, 4u, 8u, 16u, 32u}) {
        SystemConfig cfg = configFor(threads);
        if (cfg.mechanism == Mechanism::OnDemand && threads > 1)
            break; // single software thread by construction
        const auto res = runSystem(cfg);
        EXPECT_GE(res.workIpc, prev * 0.98)
            << "threads " << threads;
        prev = res.workIpc;
    }
}

TEST_P(MechanismLatencySweep, SanityBoundsHoldEverywhere)
{
    for (std::uint32_t threads : {1u, 6u, 24u}) {
        SystemConfig cfg = configFor(threads);
        if (cfg.mechanism == Mechanism::OnDemand && threads > 1)
            continue;
        SimSystem sys(cfg);
        const auto res = sys.run();

        // Normalized IPC is positive and below the physical limit
        // (workIpc cannot exceed the machine's work IPC).
        EXPECT_GT(res.workIpc, 0.0);
        EXPECT_LE(res.workIpc, cfg.workIpc * 1.001);

        // Access accounting: iterations x batch accesses completed,
        // modulo in-flight at the window edges.
        EXPECT_NEAR(double(res.accesses),
                    double(res.iterations) * cfg.batch,
                    double(3 * cfg.threadsPerCore * cfg.batch) + 4);

        // Observed latency can never be below the configured one.
        EXPECT_GE(res.meanReadLatencyNs,
                  0.98 * ticksToNs(cfg.device.latency));

        // Hardware occupancy never exceeds the configured caps.
        if (sys.chipQueue()) {
            EXPECT_LE(res.chipQueuePeak, cfg.chipPcieQueue);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MechanismLatencySweep,
    ::testing::Values(SweepPoint{Mechanism::OnDemand, 1},
                      SweepPoint{Mechanism::OnDemand, 4},
                      SweepPoint{Mechanism::Prefetch, 1},
                      SweepPoint{Mechanism::Prefetch, 2},
                      SweepPoint{Mechanism::Prefetch, 4},
                      SweepPoint{Mechanism::SwQueue, 1},
                      SweepPoint{Mechanism::SwQueue, 2},
                      SweepPoint{Mechanism::SwQueue, 4}),
    [](const auto &info) {
        return std::string(mechanismName(info.param.mechanism) ==
                                   std::string("on-demand")
                               ? "OnDemand"
                               : mechanismName(info.param.mechanism) ==
                                         std::string("prefetch")
                                     ? "Prefetch"
                                     : "SwQueue") +
               std::to_string(info.param.latencyUs) + "us";
    });

} // anonymous namespace
} // namespace kmu
