/**
 * @file
 * Tests for plan-driven cores: application traces (varying batch and
 * work per iteration) through all three timing models.
 */

#include <gtest/gtest.h>

#include "core/sim_system.hh"

namespace kmu
{
namespace
{

/** A plan cycling batches 1,2,4 with work tied to the batch. */
IterationPlan
cyclingPlan(CoreId core, ThreadId thread, std::uint64_t iter)
{
    const std::uint32_t batches[3] = {1, 2, 4};
    const std::uint32_t b =
        batches[(iter + thread + core) % 3];
    return IterationPlan{b, 100 * b};
}

SystemConfig
planConfig(Mechanism mech, std::uint32_t threads)
{
    SystemConfig cfg;
    cfg.mechanism = mech;
    cfg.backing = Backing::Device;
    cfg.threadsPerCore = threads;
    cfg.plan = cyclingPlan;
    return cfg;
}

class PlanMechanismTest : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(PlanMechanismTest, RunsAndAccountsConsistently)
{
    const auto res = runSystem(planConfig(GetParam(), 6));
    ASSERT_GT(res.iterations, 0u);
    // Work accounting: every iteration contributes batch * 100 * batch
    // work instructions; with the cycle {1,2,4} the mean work per
    // iteration is (100 + 400 + 1600) / 3 = 700.
    const double per_iter =
        double(res.workInstrs) / double(res.iterations);
    EXPECT_NEAR(per_iter, 700.0, 120.0);
    // Mean accesses per iteration = (1 + 2 + 4) / 3.
    const double acc_per_iter =
        double(res.accesses) / double(res.iterations);
    EXPECT_NEAR(acc_per_iter, 7.0 / 3.0, 0.4);
}

TEST_P(PlanMechanismTest, PlanRunsAreDeterministic)
{
    const auto a = runSystem(planConfig(GetParam(), 4));
    const auto b = runSystem(planConfig(GetParam(), 4));
    EXPECT_EQ(a.workInstrs, b.workInstrs);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.accesses, b.accesses);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, PlanMechanismTest,
                         ::testing::Values(Mechanism::OnDemand,
                                           Mechanism::Prefetch,
                                           Mechanism::SwQueue));

TEST(PlanTest, MixedBatchesStillHitLfbCeiling)
{
    // Even with mixed batches, aggregate in-flight lines cannot
    // exceed the LFB size: the chip queue never sees more than the
    // per-core cap from one core.
    SystemConfig cfg = planConfig(Mechanism::Prefetch, 24);
    SimSystem sys(cfg);
    const auto res = sys.run();
    EXPECT_GT(res.prefetchesQueued, 0u);
    EXPECT_LE(res.chipQueuePeak, cfg.lfbPerCore);
}

TEST(PlanTest, BaselineUsesTheSamePlan)
{
    // The normalization baseline must execute the identical plan;
    // with plan work far above the default workCount this shows up
    // as a large per-iteration work figure in the baseline too.
    SystemConfig cfg = planConfig(Mechanism::Prefetch, 4);
    const auto base = runSystem(baselineConfig(cfg));
    const double per_iter =
        double(base.workInstrs) / double(base.iterations);
    EXPECT_NEAR(per_iter, 700.0, 120.0);
}

} // anonymous namespace
} // namespace kmu
