/**
 * @file
 * The RunResult wire format must round-trip every field bit-exactly
 * and reject anything that is not a well-formed current-version
 * frame — the parallel sweep's determinism rests on both.
 */

#include <gtest/gtest.h>

#include "core/run_result_wire.hh"

using namespace kmu;

namespace
{

RunResult
sampleResult()
{
    RunResult r;
    r.elapsed = 123456789;
    r.iterations = 0xdeadbeefcafe;
    r.workInstrs = 987654321;
    r.accesses = 424242;
    r.writes = 1717;
    // Doubles with no short decimal representation: a text-based
    // format would lose bits here.
    r.workIpc = 1.0 / 3.0;
    r.accessesPerUs = 2.0 / 7.0;
    r.meanReadLatencyNs = 1e3 + 1e-9;
    r.toHostWireGBs = 3.9999999999999996;
    r.toHostUsefulGBs = 0.1;
    r.toDeviceWireGBs = 5e-324; // smallest subnormal
    r.chipQueuePeak = 14;
    r.prefetchesQueued = 31337;
    r.replayMisses = 3;
    r.l1Hits = 1u << 20;
    r.l1Misses = 255;
    r.shardCount = 4;
    r.shardRequestsMin = 0xabcd0123;
    r.shardRequestsMax = 0xabcd9876;
    r.healthDegraded = 11;
    r.healthQuarantines = 5;
    r.healthRecoveries = 4;
    r.failovers = 0xfeed1234;
    r.deadlineErrors = 21;
    r.serveOffered = 100000;
    r.serveCompleted = 99998;
    r.serveSloMet = 97531;
    r.serveInFlightPeak = 48;
    r.serveP50Ns = 4096.5;
    r.serveP99Ns = 1.0e5 / 3.0;
    r.serveP999Ns = 7.0e5 / 11.0;
    r.serveMeanLatencyNs = 5432.1;
    r.serveGoodputPerUs = 13.0 / 9.0;
    for (std::size_t i = 0; i < r.serveLatencyBuckets.size(); ++i)
        r.serveLatencyBuckets[i] = i * i + 1;
    r.serveLatencyUnderflow = 2;
    r.serveLatencyOverflow = 3;
    r.kernelEvents = 987654321;
    r.kernelWallSeconds = 0.125 + 1.0 / 3.0;
    return r;
}

} // anonymous namespace

TEST(RunResultWire, RoundTripIsBitExact)
{
    const RunResult in = sampleResult();
    const std::vector<std::uint8_t> wire = serializeRunResult(in);
    ASSERT_EQ(wire.size(), runResultWireBytes);

    RunResult out;
    ASSERT_TRUE(deserializeRunResult(wire.data(), wire.size(), out));

    // Serializing the decoded struct must reproduce the exact bytes:
    // this compares every field, doubles by bit pattern.
    EXPECT_EQ(serializeRunResult(out), wire);

    EXPECT_EQ(out.elapsed, in.elapsed);
    EXPECT_EQ(out.iterations, in.iterations);
    EXPECT_EQ(out.workInstrs, in.workInstrs);
    EXPECT_EQ(out.accesses, in.accesses);
    EXPECT_EQ(out.writes, in.writes);
    EXPECT_EQ(out.workIpc, in.workIpc);
    EXPECT_EQ(out.accessesPerUs, in.accessesPerUs);
    EXPECT_EQ(out.meanReadLatencyNs, in.meanReadLatencyNs);
    EXPECT_EQ(out.toHostWireGBs, in.toHostWireGBs);
    EXPECT_EQ(out.toHostUsefulGBs, in.toHostUsefulGBs);
    EXPECT_EQ(out.toDeviceWireGBs, in.toDeviceWireGBs);
    EXPECT_EQ(out.chipQueuePeak, in.chipQueuePeak);
    EXPECT_EQ(out.prefetchesQueued, in.prefetchesQueued);
    EXPECT_EQ(out.replayMisses, in.replayMisses);
    EXPECT_EQ(out.l1Hits, in.l1Hits);
    EXPECT_EQ(out.l1Misses, in.l1Misses);
    EXPECT_EQ(out.shardCount, in.shardCount);
    EXPECT_EQ(out.shardRequestsMin, in.shardRequestsMin);
    EXPECT_EQ(out.shardRequestsMax, in.shardRequestsMax);
    EXPECT_EQ(out.healthDegraded, in.healthDegraded);
    EXPECT_EQ(out.healthQuarantines, in.healthQuarantines);
    EXPECT_EQ(out.healthRecoveries, in.healthRecoveries);
    EXPECT_EQ(out.failovers, in.failovers);
    EXPECT_EQ(out.deadlineErrors, in.deadlineErrors);
    EXPECT_EQ(out.serveOffered, in.serveOffered);
    EXPECT_EQ(out.serveCompleted, in.serveCompleted);
    EXPECT_EQ(out.serveSloMet, in.serveSloMet);
    EXPECT_EQ(out.serveInFlightPeak, in.serveInFlightPeak);
    EXPECT_EQ(out.serveP50Ns, in.serveP50Ns);
    EXPECT_EQ(out.serveP99Ns, in.serveP99Ns);
    EXPECT_EQ(out.serveP999Ns, in.serveP999Ns);
    EXPECT_EQ(out.serveMeanLatencyNs, in.serveMeanLatencyNs);
    EXPECT_EQ(out.serveGoodputPerUs, in.serveGoodputPerUs);
    EXPECT_EQ(out.serveLatencyBuckets, in.serveLatencyBuckets);
    EXPECT_EQ(out.serveLatencyUnderflow, in.serveLatencyUnderflow);
    EXPECT_EQ(out.serveLatencyOverflow, in.serveLatencyOverflow);
    EXPECT_EQ(out.kernelEvents, in.kernelEvents);
    // Host timing is deliberately NOT on the wire: the serialized
    // result must be a pure function of the configuration (the
    // determinism gates byte-compare it), so the decoder leaves the
    // wall-seconds field at its default.
    EXPECT_EQ(out.kernelWallSeconds, 0.0);
}

TEST(RunResultWire, WireExcludesHostTiming)
{
    RunResult a = sampleResult();
    RunResult b = sampleResult();
    a.kernelWallSeconds = 0.25;
    b.kernelWallSeconds = 123.456;
    EXPECT_EQ(serializeRunResult(a), serializeRunResult(b));
}

TEST(RunResultWire, DefaultConstructedRoundTrips)
{
    const RunResult in;
    const auto wire = serializeRunResult(in);
    RunResult out = sampleResult();
    ASSERT_TRUE(deserializeRunResult(wire.data(), wire.size(), out));
    EXPECT_EQ(serializeRunResult(out), wire);
}

TEST(RunResultWire, RejectsBadMagic)
{
    auto wire = serializeRunResult(sampleResult());
    wire[0] ^= 0xff;
    RunResult out;
    out.iterations = 7;
    EXPECT_FALSE(deserializeRunResult(wire.data(), wire.size(), out));
    EXPECT_EQ(out.iterations, 7u); // untouched on failure
}

TEST(RunResultWire, RejectsVersionMismatch)
{
    auto wire = serializeRunResult(sampleResult());
    wire[4] = std::uint8_t(runResultWireVersion + 1);
    RunResult out;
    EXPECT_FALSE(deserializeRunResult(wire.data(), wire.size(), out));
}

TEST(RunResultWire, RejectsWrongSize)
{
    const auto wire = serializeRunResult(sampleResult());
    RunResult out;
    EXPECT_FALSE(
        deserializeRunResult(wire.data(), wire.size() - 1, out));
    EXPECT_FALSE(deserializeRunResult(wire.data(), 0, out));

    std::vector<std::uint8_t> longer = wire;
    longer.push_back(0);
    EXPECT_FALSE(
        deserializeRunResult(longer.data(), longer.size(), out));
}
