/**
 * @file
 * Tests for the L1 model + address plans inside the timing model:
 * locality-bearing streams hit in cache, skip the device, and
 * produce the "skipped entry" behaviour the paper's replay window
 * must tolerate.
 */

#include <gtest/gtest.h>

#include "core/prefetch_core.hh"
#include "core/sim_system.hh"

namespace kmu
{
namespace
{

/** Address plan cycling over a fixed working set of @p lines. */
std::function<Addr(CoreId, ThreadId, std::uint64_t, std::uint32_t)>
workingSetPlan(std::uint64_t lines)
{
    return [lines](CoreId, ThreadId thread, std::uint64_t iter,
                   std::uint32_t slot) {
        const std::uint64_t idx =
            (thread * 7919 + iter * 4 + slot) % lines;
        return Addr(idx) * cacheLineSize;
    };
}

SystemConfig
localityConfig(std::uint64_t working_set_lines)
{
    SystemConfig cfg;
    cfg.mechanism = Mechanism::Prefetch;
    cfg.backing = Backing::Device;
    cfg.threadsPerCore = 8;
    cfg.l1Enabled = true;
    cfg.addressPlan = workingSetPlan(working_set_lines);
    return cfg;
}

TEST(LocalityTest, SmallWorkingSetHitsInL1)
{
    // 64 lines: fits the 32 KiB L1 easily. After warmup, nearly
    // every access hits and the device sees almost no traffic.
    // A single thread makes the contrast visible: without the cache
    // it is latency-bound (~0.12 of DRAM); with hits it runs at
    // compute speed.
    SystemConfig cfg = localityConfig(64);
    cfg.threadsPerCore = 1;
    SimSystem sys(cfg);
    const auto res = sys.run();
    auto &l1 = sys.core(0).l1();
    const double hit_rate =
        double(l1.hits.value()) /
        double(l1.hits.value() + l1.misses.value());
    EXPECT_GT(hit_rate, 0.95);
    SystemConfig cold = localityConfig(1 << 24);
    cold.threadsPerCore = 1;
    const auto cold_res = runSystem(cold);
    EXPECT_GT(res.workIpc, 3.0 * cold_res.workIpc);
}

TEST(LocalityTest, HugeWorkingSetBehavesLikeNoCache)
{
    // Working set far beyond L1: enabling the model must not change
    // the LFB-bound result (within a whisker).
    SystemConfig with_cache = localityConfig(1 << 24);
    SystemConfig no_cache = with_cache;
    no_cache.l1Enabled = false;
    const auto a = runSystem(with_cache);
    const auto b = runSystem(no_cache);
    EXPECT_NEAR(a.workIpc, b.workIpc, 0.05 * b.workIpc);
}

TEST(LocalityTest, FiguresUnchangedWithCacheEnabled)
{
    // The paper's microbenchmark (unique addresses) must measure the
    // same with the cache model on: every access misses.
    SystemConfig cfg;
    cfg.mechanism = Mechanism::Prefetch;
    cfg.threadsPerCore = 10;
    const auto off = runSystem(cfg);
    cfg.l1Enabled = true;
    const auto on = runSystem(cfg);
    EXPECT_NEAR(on.workIpc, off.workIpc, 1e-9);

    SimSystem probe(cfg);
    probe.run();
    EXPECT_EQ(probe.core(0).l1().hits.value(), 0u);
}

TEST(LocalityTest, SharedLinesMergeInTheLfb)
{
    // Threads walk the same 16-line ring at adjacent phases, with an
    // L1 too small to hold it: concurrent misses to one line
    // coalesce into a single LFB entry instead of double-requesting.
    SystemConfig cfg;
    cfg.mechanism = Mechanism::Prefetch;
    cfg.backing = Backing::Device;
    cfg.threadsPerCore = 4;
    cfg.l1Enabled = true;
    cfg.l1 = CacheParams{512, 2}; // 8 lines: keeps missing
    cfg.addressPlan = [](CoreId, ThreadId thread, std::uint64_t iter,
                         std::uint32_t) {
        return Addr((iter + thread) % 16) * cacheLineSize;
    };
    SimSystem sys(cfg);
    sys.run();
    auto &core = static_cast<PrefetchCore &>(sys.core(0));
    EXPECT_GT(core.prefetchesMerged.value(), 0u);
    EXPECT_GT(core.lfb().merges.value(), 0u);
}

TEST(LocalityTest, CacheHitsProduceReplaySkips)
{
    // Device-side view of host caching (Section IV-A): feed the
    // replay module the *full* address stream while the host,
    // thanks to its cache, only sends the misses. The window must
    // absorb the skipped entries: every request still matches.
    SystemConfig cfg = localityConfig(48);
    cfg.threadsPerCore = 1; // deterministic single-stream order
    SimSystem sys(cfg);

    auto counter = std::make_shared<std::uint64_t>(0);
    auto plan = workingSetPlan(48);
    sys.deviceEmulator()->setReplaySource(
        0, [counter, plan](Addr &next) {
            const std::uint64_t i = (*counter)++;
            next = plan(0, 0, i / 1, std::uint32_t(i % 1));
            return true;
        });

    const auto res = sys.run();
    EXPECT_EQ(res.replayMisses, 0u)
        << "cache-hit skips must age out of the window silently";
    auto &l1 = sys.core(0).l1();
    EXPECT_GT(l1.hits.value(), 0u);
}

} // anonymous namespace
} // namespace kmu
