/**
 * @file
 * System-level tests of the sharded multi-device backend: both the
 * memory-mapped and software-queue paths must complete, balance, and
 * stay deterministic when the topology holds more than one device.
 */

#include <gtest/gtest.h>

#include "core/run_result_wire.hh"
#include "core/sim_system.hh"
#include "topo/topology.hh"

namespace kmu
{
namespace
{

SystemConfig
shardedConfig(std::uint32_t shards, topo::Interleave il)
{
    SystemConfig cfg;
    cfg.mechanism = Mechanism::Prefetch;
    cfg.numCores = 2;
    cfg.threadsPerCore = 8;
    cfg.device.latency = microseconds(1);
    cfg.topo.shards = shards;
    cfg.topo.interleave = il;
    cfg.measure = microseconds(200);
    return cfg;
}

TEST(ShardingTest, PrefetchBalancesUnderPageInterleave)
{
    const auto res =
        runSystem(shardedConfig(2, topo::Interleave::Page));
    EXPECT_GT(res.accesses, 0u);
    EXPECT_EQ(res.shardCount, 2u);
    // Page interleave walks each thread's unique-line stream across
    // both shards: neither device may sit idle, and the split stays
    // near even.
    EXPECT_GT(res.shardRequestsMin, 0u);
    EXPECT_LT(double(res.shardRequestsMax),
              1.5 * double(res.shardRequestsMin));
}

TEST(ShardingTest, RequestExtremesExposeInterleaveAliasing)
{
    // The microbenchmark's default stream strides maxBatch (16)
    // lines per iteration, so with batch=1 a cache-line interleave
    // aliases every access onto shard 0 — exactly the imbalance the
    // shardRequests extremes exist to expose.
    const auto res =
        runSystem(shardedConfig(2, topo::Interleave::CacheLine));
    EXPECT_GT(res.accesses, 0u);
    EXPECT_EQ(res.shardRequestsMin, 0u);
    EXPECT_GT(res.shardRequestsMax, 0u);
}

TEST(ShardingTest, SwQueuePathCompletesAndBalances)
{
    SystemConfig cfg = shardedConfig(2, topo::Interleave::Page);
    cfg.mechanism = Mechanism::SwQueue;
    const auto res = runSystem(cfg);
    EXPECT_GT(res.accesses, 0u);
    EXPECT_EQ(res.shardCount, 2u);
    EXPECT_GT(res.shardRequestsMin, 0u);
}

TEST(ShardingTest, FourShardsAllServe)
{
    SystemConfig cfg = shardedConfig(4, topo::Interleave::Page);
    cfg.numCores = 4;
    const auto res = runSystem(cfg);
    EXPECT_EQ(res.shardCount, 4u);
    EXPECT_GT(res.shardRequestsMin, 0u);
}

TEST(ShardingTest, ShardedRunsAreDeterministic)
{
    for (Mechanism m : {Mechanism::Prefetch, Mechanism::SwQueue}) {
        SystemConfig cfg = shardedConfig(2, topo::Interleave::Page);
        cfg.mechanism = m;
        const auto a = serializeRunResult(runSystem(cfg));
        const auto b = serializeRunResult(runSystem(cfg));
        EXPECT_EQ(a, b) << mechanismName(m);
    }
}

TEST(ShardingTest, TopologyKnobsAreInertAtOneShard)
{
    // With a single shard, routing degenerates to the identity and
    // the chip-queue slice to the full budget: interleave and
    // policy knobs must not move a single bit of the result.
    SystemConfig plain = shardedConfig(1, topo::Interleave::CacheLine);
    SystemConfig knobs = plain;
    knobs.topo.interleave = topo::Interleave::Page;
    knobs.topo.chipQueuePolicy = topo::ChipQueuePolicy::Partitioned;
    EXPECT_EQ(serializeRunResult(runSystem(plain)),
              serializeRunResult(runSystem(knobs)));
}

TEST(ShardingTest, PerLinkBandwidthScalesAggregateThroughput)
{
    // Fixed per-shard link bandwidth, thin enough that one link
    // saturates: adding shards must add aggregate throughput.
    SystemConfig cfg = shardedConfig(1, topo::Interleave::Page);
    cfg.numCores = 4;
    cfg.threadsPerCore = 16;
    cfg.pcie.bytesPerSec = 1'000'000'000ull;
    const auto one = runSystem(cfg);

    cfg.topo.shards = 4;
    const auto four = runSystem(cfg);

    EXPECT_GT(double(four.accesses), 1.5 * double(one.accesses));
    EXPECT_GT(four.toHostUsefulGBs, one.toHostUsefulGBs);
}

TEST(ShardingTest, WritePathRoutesThroughShards)
{
    SystemConfig cfg = shardedConfig(2, topo::Interleave::Page);
    cfg.writeFraction = 0.3;
    for (Mechanism m : {Mechanism::Prefetch, Mechanism::SwQueue}) {
        cfg.mechanism = m;
        const auto res = runSystem(cfg);
        EXPECT_GT(res.writes, 0u) << mechanismName(m);
        EXPECT_GT(res.shardRequestsMin, 0u) << mechanismName(m);
    }
}

} // anonymous namespace
} // namespace kmu
