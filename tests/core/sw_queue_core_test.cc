/**
 * @file
 * Tests for the software-queue core model: the overhead-bound peak
 * of Fig. 7 and the MLP degradation of Fig. 9.
 */

#include <gtest/gtest.h>

#include "core/sim_system.hh"
#include "core/sw_queue_core.hh"

namespace kmu
{
namespace
{

SystemConfig
swqConfig(std::uint32_t threads, Tick latency = microseconds(1))
{
    SystemConfig cfg;
    cfg.mechanism = Mechanism::SwQueue;
    cfg.backing = Backing::Device;
    cfg.threadsPerCore = threads;
    cfg.device.latency = latency;
    return cfg;
}

TEST(SwQueueCoreTest, TagCodecRoundTrips)
{
    for (ThreadId tid : {0u, 1u, 13u, 63u}) {
        for (std::uint32_t slot : {0u, 3u, 15u}) {
            const Addr tag = SwQueueCore::encodeTag(tid, slot);
            EXPECT_EQ(SwQueueCore::decodeThread(tag), tid);
        }
    }
}

TEST(SwQueueCoreTest, PeakNearHalfOfBaseline)
{
    // Fig. 7: "the queue management overhead ... limits the peak
    // performance of the application-managed queues to just 50% of
    // the DRAM baseline."
    const double peak = normalizedWorkIpc(swqConfig(32));
    EXPECT_GT(peak, 0.42);
    EXPECT_LT(peak, 0.60);
}

TEST(SwQueueCoreTest, NoHardwareQueuePlateau)
{
    // Unlike prefetch at 4 us (which the 10-entry LFB caps), the
    // software queues keep gaining well past 10 threads.
    const double t12 = normalizedWorkIpc(swqConfig(12, microseconds(4)));
    const double t24 = normalizedWorkIpc(swqConfig(24, microseconds(4)));
    EXPECT_GT(t24, 1.4 * t12);

    SystemConfig pf = swqConfig(24, microseconds(4));
    pf.mechanism = Mechanism::Prefetch;
    const double pf24 = normalizedWorkIpc(pf);
    EXPECT_GT(t24, pf24); // queues beat prefetch at high latency
}

TEST(SwQueueCoreTest, PrefetchBeatsQueuesAtPeak)
{
    // Second Fig. 7 effect: prefetch's peak (1 us, enough threads)
    // exceeds the queue mechanism's overhead-bound peak.
    SystemConfig pf = swqConfig(10);
    pf.mechanism = Mechanism::Prefetch;
    EXPECT_GT(normalizedWorkIpc(pf),
              1.5 * normalizedWorkIpc(swqConfig(32)));
}

TEST(SwQueueCoreTest, MlpLowersThePeak)
{
    // Fig. 9: peaks ~50/45/35 % for MLP 1/2/4.
    SystemConfig b1 = swqConfig(32);
    SystemConfig b2 = swqConfig(32);
    b2.batch = 2;
    SystemConfig b4 = swqConfig(32);
    b4.batch = 4;
    const double p1 = normalizedWorkIpc(b1);
    const double p2 = normalizedWorkIpc(b2);
    const double p4 = normalizedWorkIpc(b4);
    EXPECT_GT(p1, p2);
    EXPECT_GT(p2, p4);
    EXPECT_NEAR(p2, 0.45, 0.08);
    EXPECT_NEAR(p4, 0.35, 0.08);
}

TEST(SwQueueCoreTest, HigherLatencyNeedsMoreThreadsSamePeak)
{
    // Fig. 7: 4 us reaches the same peak as 1 us, at a higher thread
    // count ("identical peaks ... at proportionally higher thread
    // counts").
    const double p1us = normalizedWorkIpc(swqConfig(32));
    const double p4us_few = normalizedWorkIpc(swqConfig(8,
                                                        microseconds(4)));
    const double p4us_many = normalizedWorkIpc(swqConfig(48,
                                                         microseconds(4)));
    EXPECT_LT(p4us_few, 0.7 * p1us);
    EXPECT_NEAR(p4us_many, p1us, 0.12 * p1us);
}

TEST(SwQueueCoreTest, DoorbellsAreRareInSteadyState)
{
    SimSystem sys(swqConfig(16));
    sys.run();
    auto &core = static_cast<SwQueueCore &>(sys.core(0));
    // The doorbell-request flag keeps the fetcher running: far fewer
    // doorbells than submissions.
    EXPECT_LT(core.doorbellsRung.value(),
              core.submits.value() / 4);
}

TEST(SwQueueCoreTest, PollOnlyWhenNoReadyThreads)
{
    SimSystem sys(swqConfig(24));
    sys.run();
    auto &core = static_cast<SwQueueCore &>(sys.core(0));
    // With many threads the scheduler mostly switches; polls happen
    // but are bounded by iterations, not dominating them.
    EXPECT_GT(core.pollPasses.value(), 0u);
    EXPECT_LT(core.pollPasses.value(),
              2 * core.completionsHandled.value() + 16);
}

} // anonymous namespace
} // namespace kmu
