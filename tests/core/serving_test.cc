/**
 * @file
 * End-to-end tests of the open-loop serving mode through the full
 * timing model: every mechanism serves requests, the accounting is
 * self-consistent, overload behaves like an open loop (offered
 * outruns completed and latency grows without bound), runs are
 * deterministic, and a disabled generator leaves RunResult's serving
 * block all-zero.
 */

#include <gtest/gtest.h>

#include "core/run_result_wire.hh"
#include "core/sim_system.hh"

using namespace kmu;

namespace
{

SystemConfig
servedConfig(Mechanism mech, double lambda)
{
    SystemConfig cfg;
    cfg.mechanism = mech;
    cfg.device.latency = microseconds(2);
    if (mech == Mechanism::OnDemand)
        cfg.smtContexts = 2;
    else
        cfg.threadsPerCore = 8;
    cfg.warmup = microseconds(30);
    cfg.measure = microseconds(300);
    cfg.serve.arrival = serve::ArrivalKind::Poisson;
    cfg.serve.lambdaPerUs = lambda;
    cfg.serve.valueLines = 2;
    cfg.serve.sloUs = 50.0;
    return cfg;
}

} // anonymous namespace

class ServingMechanismTest
    : public ::testing::TestWithParam<Mechanism>
{
};

TEST_P(ServingMechanismTest, ServesRequestsWithSaneAccounting)
{
    const RunResult res = runSystem(servedConfig(GetParam(), 0.1));

    // ~30 arrivals in the 300us window at lambda = 0.1/us.
    EXPECT_GT(res.serveOffered, 10u);
    EXPECT_GT(res.serveCompleted, 10u);
    EXPECT_LE(res.serveSloMet, res.serveCompleted);
    EXPECT_GE(res.serveInFlightPeak, 1u);

    // Latency can never beat one device access (2us = 2000ns), and
    // at this light load p99 should stay inside the 50us SLO.
    EXPECT_GE(res.serveMeanLatencyNs, 2000.0);
    EXPECT_GE(res.serveP50Ns, 2000.0);
    EXPECT_LE(res.serveP50Ns, res.serveP99Ns);
    EXPECT_LE(res.serveP99Ns, res.serveP999Ns);
    EXPECT_EQ(res.serveSloMet, res.serveCompleted)
        << "light load must meet a 50us SLO";

    // goodput = sloMet / window.
    EXPECT_NEAR(res.serveGoodputPerUs,
                double(res.serveSloMet) / ticksToUs(res.elapsed),
                1e-12);

    // The histogram totals match the completion count.
    std::uint64_t hist = res.serveLatencyUnderflow +
                         res.serveLatencyOverflow;
    for (const std::uint64_t b : res.serveLatencyBuckets)
        hist += b;
    EXPECT_EQ(hist, res.serveCompleted);

    // The cores really did the work the requests describe: every
    // completed request is one iteration of valueLines = 2 reads
    // (slack of one request for the warmup-boundary straddler whose
    // reads landed before the window).
    EXPECT_GE(res.iterations, res.serveCompleted);
    EXPECT_GE(res.accesses + 2, 2 * res.serveCompleted);
}

TEST_P(ServingMechanismTest, DeterministicAcrossRuns)
{
    const SystemConfig cfg = servedConfig(GetParam(), 0.3);
    const RunResult a = runSystem(cfg);
    const RunResult b = runSystem(cfg);
    EXPECT_EQ(serializeRunResult(a), serializeRunResult(b));
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, ServingMechanismTest,
                         ::testing::Values(Mechanism::OnDemand,
                                           Mechanism::Prefetch,
                                           Mechanism::SwQueue),
                         [](const auto &info) {
                             switch (info.param) {
                             case Mechanism::OnDemand:
                                 return std::string("OnDemand");
                             case Mechanism::Prefetch:
                                 return std::string("Prefetch");
                             default:
                                 return std::string("SwQueue");
                             }
                         });

TEST(ServingTest, OverloadBehavesOpenLoop)
{
    // One on-demand lane at 2us/request cannot serve 1 req/us: the
    // arrival queue grows, completions fall far short of offered,
    // and the tail blows past any queueing-free latency.
    SystemConfig cfg = servedConfig(Mechanism::OnDemand, 1.0);
    cfg.smtContexts = 1;
    const RunResult res = runSystem(cfg);
    EXPECT_LT(res.serveCompleted, res.serveOffered / 2);
    EXPECT_GT(res.serveP99Ns, 50000.0);
    EXPECT_GT(res.serveInFlightPeak, 50u);
}

TEST(ServingTest, ClientCapBoundsInFlight)
{
    SystemConfig cfg = servedConfig(Mechanism::SwQueue, 2.0);
    cfg.serve.clients = 4;
    const RunResult res = runSystem(cfg);
    EXPECT_LE(res.serveInFlightPeak, 4u);
    EXPECT_GT(res.serveCompleted, 0u);
}

TEST(ServingTest, ZipfSkewStillServes)
{
    SystemConfig cfg = servedConfig(Mechanism::Prefetch, 0.2);
    cfg.serve.zipfTheta = 0.99;
    cfg.serve.numKeys = 4096;
    const RunResult res = runSystem(cfg);
    EXPECT_GT(res.serveCompleted, 10u);
}

TEST(ServingTest, ShardedServingCompletes)
{
    SystemConfig cfg = servedConfig(Mechanism::SwQueue, 0.5);
    cfg.topo.shards = 2;
    const RunResult res = runSystem(cfg);
    EXPECT_GT(res.serveCompleted, 50u);
    EXPECT_EQ(res.shardCount, 2u);
}

TEST(ServingTest, DisabledLeavesServeBlockZero)
{
    SystemConfig cfg;
    cfg.measure = microseconds(100);
    const RunResult res = runSystem(cfg);
    EXPECT_EQ(res.serveOffered, 0u);
    EXPECT_EQ(res.serveCompleted, 0u);
    EXPECT_EQ(res.serveSloMet, 0u);
    EXPECT_EQ(res.serveInFlightPeak, 0u);
    EXPECT_EQ(res.serveP99Ns, 0.0);
    EXPECT_EQ(res.serveGoodputPerUs, 0.0);
    for (const std::uint64_t b : res.serveLatencyBuckets)
        EXPECT_EQ(b, 0u);
}

TEST(ServingTest, BaselineStripsServing)
{
    const SystemConfig cfg = servedConfig(Mechanism::Prefetch, 0.5);
    const SystemConfig base = baselineConfig(cfg);
    EXPECT_FALSE(base.serve.enabled());
    EXPECT_FALSE(static_cast<bool>(base.admitGate));
    EXPECT_FALSE(static_cast<bool>(base.onRetire));
}
