/**
 * @file
 * Unit tests for the open-loop arrival processes.
 *
 * The serving mode's determinism and its statistical fidelity both
 * live here: the seeded streams must never change across refactors
 * (golden first-arrivals), Poisson must hit its configured rate and
 * memoryless shape, and the bursty source must confine arrivals to
 * its ON windows while preserving the long-run rate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/units.hh"
#include "serve/arrival.hh"

using namespace kmu;
using namespace kmu::serve;

namespace
{

ServeConfig
poissonCfg(double lambda, std::uint64_t seed)
{
    ServeConfig cfg;
    cfg.arrival = ArrivalKind::Poisson;
    cfg.lambdaPerUs = lambda;
    cfg.seed = seed;
    return cfg;
}

ServeConfig
burstyCfg(double lambda, double duty, double period_us,
          std::uint64_t seed)
{
    ServeConfig cfg;
    cfg.arrival = ArrivalKind::Bursty;
    cfg.lambdaPerUs = lambda;
    cfg.duty = duty;
    cfg.burstPeriodUs = period_us;
    cfg.seed = seed;
    return cfg;
}

} // anonymous namespace

TEST(ArrivalTest, PoissonStreamIsMonotone)
{
    ArrivalGen gen(poissonCfg(2.0, 1));
    Tick prev = 0;
    for (int i = 0; i < 10000; ++i) {
        const Tick t = gen.next();
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(ArrivalTest, PoissonMeanRateWithinTolerance)
{
    // 100k draws at lambda = 2/us: the relative error of the mean
    // inter-arrival is ~1/sqrt(100k) ~ 0.3%; gate at 2%.
    const double lambda = 2.0;
    ArrivalGen gen(poissonCfg(lambda, 1234));
    const int n = 100000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = gen.next();
    const double mean_us = ticksToUs(last) / n;
    EXPECT_NEAR(mean_us, 1.0 / lambda, 0.02 / lambda);
}

TEST(ArrivalTest, PoissonIsMemoryless)
{
    // Exponential inter-arrivals: P(X > 2/lambda) = e^-2 ~ 13.5%,
    // and the coefficient of variation is 1. Both separate a Poisson
    // stream from a paced (deterministic) or heavy-tailed one.
    const double lambda = 1.0;
    ArrivalGen gen(poissonCfg(lambda, 5));
    const int n = 100000;
    std::vector<double> gaps;
    gaps.reserve(n);
    Tick prev = 0;
    for (int i = 0; i < n; ++i) {
        const Tick t = gen.next();
        gaps.push_back(ticksToUs(t - prev));
        prev = t;
    }
    double sum = 0.0, sumsq = 0.0;
    int over = 0;
    for (const double g : gaps) {
        sum += g;
        sumsq += g * g;
        if (g > 2.0 / lambda)
            over++;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    const double cv = std::sqrt(var) / mean;
    EXPECT_NEAR(cv, 1.0, 0.03);
    EXPECT_NEAR(double(over) / n, std::exp(-2.0), 0.01);
}

TEST(ArrivalTest, PoissonSeedGolden)
{
    // The exact first arrivals of seed 42 at lambda = 2/us. A change
    // here silently invalidates every committed serving artifact
    // (fig_knee.csv, the determinism goldens) — regenerate them all
    // or revert.
    ArrivalGen gen(poissonCfg(2.0, 42));
    const Tick expected[] = {43794,   281990,  851775,
                             2144866, 4546915, 5281187};
    for (const Tick t : expected)
        EXPECT_EQ(gen.next(), t);
}

TEST(ArrivalTest, SameSeedSameStream)
{
    ArrivalGen a(poissonCfg(0.7, 99));
    ArrivalGen b(poissonCfg(0.7, 99));
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(ArrivalTest, DifferentSeedsDiverge)
{
    ArrivalGen a(poissonCfg(0.7, 1));
    ArrivalGen b(poissonCfg(0.7, 2));
    bool diverged = false;
    for (int i = 0; i < 100 && !diverged; ++i)
        diverged = a.next() != b.next();
    EXPECT_TRUE(diverged);
}

TEST(ArrivalTest, BurstyConfinesArrivalsToOnWindows)
{
    // duty 0.25, period 40us: every arrival must land inside
    // [k*40, k*40 + 10) us for some integer k.
    const double period_us = 40.0;
    const double duty = 0.25;
    ArrivalGen gen(burstyCfg(1.0, duty, period_us, 3));
    for (int i = 0; i < 20000; ++i) {
        const double us = ticksToUs(gen.next());
        const double phase =
            us - std::floor(us / period_us) * period_us;
        EXPECT_LT(phase, duty * period_us)
            << "arrival at " << us << "us is outside the ON window";
    }
}

TEST(ArrivalTest, BurstyLongRunRateIsLambda)
{
    // The ON-rate is lambda/duty, but averaged over whole periods
    // the offered load must come out at lambda again.
    const double lambda = 1.0;
    ArrivalGen gen(burstyCfg(lambda, 0.25, 40.0, 11));
    const int n = 100000;
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = gen.next();
    const double rate = n / ticksToUs(last);
    EXPECT_NEAR(rate, lambda, 0.02 * lambda);
}

TEST(ArrivalTest, BurstyDutyCycleShapesOccupancy)
{
    // Bin arrivals by period phase: the ON quarter must hold every
    // arrival, and each ON sub-bin should carry roughly equal mass
    // (the virtual clock is uniform within the ON span).
    ArrivalGen gen(burstyCfg(2.0, 0.25, 40.0, 17));
    const int n = 40000;
    int bins[4] = {0, 0, 0, 0}; // 10us quarters of the 40us period
    for (int i = 0; i < n; ++i) {
        const double us = ticksToUs(gen.next());
        const double phase = us - std::floor(us / 40.0) * 40.0;
        bins[int(phase / 10.0)]++;
    }
    EXPECT_EQ(bins[0], n);
    EXPECT_EQ(bins[1] + bins[2] + bins[3], 0);
}

TEST(ArrivalTest, BurstySeedGolden)
{
    ArrivalGen gen(burstyCfg(1.0, 0.25, 40.0, 7));
    const Tick expected[] = {301474,  383166,  840730,
                             1832849, 3006630, 3522077};
    for (const Tick t : expected)
        EXPECT_EQ(gen.next(), t);
}
