/**
 * @file
 * Unit tests for the ServeDriver's dispatch protocol: admission
 * binding, FIFO wake order, in-order retirement, latency accounting
 * (queueing included), the partly-open client cap, and measurement
 * windowing.
 *
 * The driver is exercised directly against an EventQueue with the
 * test standing in for the cores: admit()/retire() calls at chosen
 * ticks, no SimSystem.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "serve/serve_driver.hh"
#include "sim/event.hh"

using namespace kmu;
using namespace kmu::serve;

namespace
{

ServeConfig
testCfg(double lambda = 1.0)
{
    ServeConfig cfg;
    cfg.arrival = ArrivalKind::Poisson;
    cfg.lambdaPerUs = lambda;
    cfg.numKeys = 1024;
    cfg.valueLines = 2;
    cfg.seed = 42;
    return cfg;
}

struct Harness
{
    EventQueue eq;
    StatGroup root{"root", nullptr};
    ServeDriver driver;

    explicit Harness(const ServeConfig &cfg, std::uint32_t lanes = 1)
        : driver(cfg, eq, &root, lanes)
    {
    }
};

} // anonymous namespace

TEST(ServeDriverTest, AdmitBlocksUntilArrivalThenWakes)
{
    Harness h(testCfg(1.0));
    int wakes = 0;
    // Before start() no request exists: the lane parks.
    EXPECT_FALSE(h.driver.admit(0, 0, [&]() { wakes++; }));
    h.driver.start();
    // Run to the first arrival: it binds to the parked lane and the
    // wake fires.
    while (wakes == 0 && h.eq.serviceOne()) {
    }
    EXPECT_EQ(wakes, 1);
    // The woken lane re-admits the same iteration: idempotent true.
    EXPECT_TRUE(h.driver.admit(0, 0, []() {}));
    EXPECT_TRUE(h.driver.admit(0, 0, []() {}));
}

TEST(ServeDriverTest, AddressesCoverValueLinesBelowTagBits)
{
    ServeConfig cfg = testCfg();
    Harness h(cfg);
    EXPECT_FALSE(h.driver.admit(0, 0, []() {}));
    h.driver.start();
    while (h.eq.serviceOne() && !h.driver.admit(0, 0, []() {})) {
    }
    const Addr a0 = h.driver.addressFor(0, 0, 0);
    const Addr a1 = h.driver.addressFor(0, 0, 1);
    EXPECT_EQ(a1, a0 + cacheLineSize); // value lines are contiguous
    EXPECT_EQ(a0 % cacheLineSize, 0u);
    // Addresses stay below the shard/generation tag bits (48+).
    EXPECT_LT(a1, Addr(1) << 48);
}

TEST(ServeDriverTest, LatencyIncludesQueueingDelay)
{
    // One lane, high offered load: bind the first request, sit on it
    // for a while, then retire. The recorded latency must be the
    // arrival->retire span, not the service time the lane spent.
    Harness h(testCfg(2.0));
    h.driver.setMeasureStart(0);
    bool bound = false;
    h.driver.admit(0, 0, [&]() { bound = true; });
    h.driver.start();
    while (!bound && h.eq.serviceOne()) {
    }
    ASSERT_TRUE(bound);
    const Tick arrival = h.eq.curTick();
    // Let more arrivals pile up while the lane "works".
    const Tick retire_at = arrival + microseconds(30);
    h.eq.scheduleLambda(retire_at, [&]() { h.driver.retire(0, 0); });
    h.eq.run(retire_at);
    EXPECT_EQ(h.driver.completed(), 1u);
    // One sample of ~30us = 30000ns: the histogram quantile must
    // land in its log2 bucket [16384, 32768) ns.
    const double p50 = h.driver.latencyLog().quantile(0.5);
    EXPECT_GE(p50, 16384.0);
    EXPECT_LE(p50, 32768.0);
    EXPECT_GT(h.driver.offered(), 1u) << "arrivals kept flowing";
}

TEST(ServeDriverTest, FifoWakeOrderAcrossLanes)
{
    // Three lanes park in order 2, 0, 1: arrivals must wake them in
    // exactly that order (longest-parked first).
    Harness h(testCfg(1.0), 3);
    std::vector<std::uint32_t> order;
    for (const std::uint32_t lane : {2u, 0u, 1u}) {
        EXPECT_FALSE(h.driver.admit(
            lane, 0, [&order, lane]() { order.push_back(lane); }));
    }
    h.driver.start();
    while (order.size() < 3 && h.eq.serviceOne()) {
    }
    EXPECT_EQ(order, (std::vector<std::uint32_t>{2, 0, 1}));
}

TEST(ServeDriverTest, ClientCapPausesArrivals)
{
    // clients = 2 and nobody retiring: after two arrivals the clock
    // must stop (partly-open back-pressure), leaving the queue
    // empty. Retiring one request resumes it.
    ServeConfig cfg = testCfg(10.0);
    cfg.clients = 2;
    Harness h(cfg);
    bool bound = false;
    h.driver.admit(0, 0, [&]() { bound = true; });
    h.driver.start();
    h.eq.run(); // drains: the third arrival is withheld
    EXPECT_TRUE(bound);
    EXPECT_EQ(h.driver.offered(), 2u);
    EXPECT_EQ(h.driver.inFlightPeak(), 2u);

    h.driver.retire(0, 0); // frees a client; the clock resumes
    ASSERT_FALSE(h.eq.empty());
    while (h.driver.offered() < 3 && h.eq.serviceOne()) {
    }
    EXPECT_EQ(h.driver.offered(), 3u);
}

TEST(ServeDriverTest, MeasureStartGatesCounters)
{
    // Arrivals and retires before the measurement window start are
    // driven but not counted.
    Harness h(testCfg(1.0));
    h.driver.setMeasureStart(microseconds(1000));
    bool bound = false;
    h.driver.admit(0, 0, [&]() { bound = true; });
    h.driver.start();
    while (!bound && h.eq.serviceOne()) {
    }
    h.driver.retire(0, 0);
    EXPECT_EQ(h.driver.offered(), 0u);
    EXPECT_EQ(h.driver.completed(), 0u);
    EXPECT_EQ(h.driver.latencyLog().samples(), 0u);
}

TEST(ServeDriverTest, InOrderRetirePerLane)
{
    // Bind two requests to one lane and retire both: iteration
    // numbers must advance in order and addressFor() must track the
    // oldest unretired request.
    Harness h(testCfg(5.0));
    h.driver.start();
    // Admit iterations 0 and 1 as requests arrive.
    std::uint64_t iter = 0;
    while (iter < 2 && h.eq.serviceOne()) {
        while (iter < 2 && h.driver.admit(0, iter, []() {}))
            iter++;
    }
    ASSERT_EQ(iter, 2u);
    const Addr first = h.driver.addressFor(0, 0, 0);
    h.driver.retire(0, 0);
    const Addr second = h.driver.addressFor(0, 1, 0);
    h.driver.retire(0, 1);
    EXPECT_EQ(h.driver.completed(), 2u);
    // Different keys were drawn, so the two requests' addresses are
    // distinct with overwhelming probability under seed 42.
    EXPECT_NE(first, second);
}
