/**
 * @file
 * Unit tests for the Zipfian key-popularity sampler.
 *
 * Gates: the fitted distribution must actually be Zipf (the
 * rank-frequency curve matches 1/r^theta both pointwise and in
 * log-log slope), theta = 0 must degenerate to uniform, and the
 * draw stream must be seed-stable (golden draws).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "serve/popularity.hh"

using namespace kmu;
using namespace kmu::serve;

TEST(PopularityTest, DrawsStayInRange)
{
    ZipfSampler zipf(1000, 0.99);
    Rng rng(1);
    for (int i = 0; i < 100000; ++i)
        EXPECT_LT(zipf.draw(rng), 1000u);
}

TEST(PopularityTest, RankProbabilitiesSumToOne)
{
    ZipfSampler zipf(5000, 0.9);
    double sum = 0.0;
    for (std::uint64_t r = 0; r < zipf.keys(); ++r)
        sum += zipf.rankProbability(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PopularityTest, UniformWhenThetaZero)
{
    // theta = 0: every key equally likely. 256 keys x 100k draws
    // gives ~390 per key, sd ~20; gate each bin at +-25%.
    const std::uint64_t n = 256;
    ZipfSampler zipf(n, 0.0);
    Rng rng(7);
    std::vector<int> counts(n, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        counts[zipf.draw(rng)]++;
    const double expect = double(draws) / double(n);
    for (std::uint64_t r = 0; r < n; ++r) {
        EXPECT_NEAR(counts[r], expect, 0.25 * expect)
            << "key " << r << " is not uniform";
    }
}

TEST(PopularityTest, RankFrequencyMatchesTheory)
{
    // Empirical frequency of the hottest ranks must match the
    // analytic 1/r^theta curve the sampler claims to implement.
    const double theta = 0.99;
    ZipfSampler zipf(1000, theta);
    Rng rng(123);
    std::vector<int> counts(1000, 0);
    const int draws = 400000;
    for (int i = 0; i < draws; ++i)
        counts[zipf.draw(rng)]++;
    // 15% pointwise: Gray's constant-time draw puts slightly more
    // mass on rank 1 than the exact pmf (the price of avoiding
    // rejection); the log-log slope test below pins the shape.
    for (const std::uint64_t r : {0u, 1u, 3u, 7u, 15u, 63u}) {
        const double expect = zipf.rankProbability(r) * draws;
        EXPECT_NEAR(counts[r], expect, 0.15 * expect + 30)
            << "rank " << r << " off the Zipf curve";
    }
}

TEST(PopularityTest, LogLogSlopeIsMinusTheta)
{
    // Least-squares slope of log(freq) vs log(rank+1) over the head
    // of the distribution: a true Zipf sample gives -theta.
    const double theta = 0.8;
    ZipfSampler zipf(4096, theta);
    Rng rng(42);
    std::vector<int> counts(4096, 0);
    const int draws = 500000;
    for (int i = 0; i < draws; ++i)
        counts[zipf.draw(rng)]++;

    std::vector<double> xs, ys;
    for (std::uint64_t r = 0; r < 64; ++r) {
        ASSERT_GT(counts[r], 0) << "head rank " << r << " never drawn";
        xs.push_back(std::log(double(r + 1)));
        ys.push_back(std::log(double(counts[r])));
    }
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        mx += xs[i];
        my += ys[i];
    }
    mx /= double(xs.size());
    my /= double(ys.size());
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
    }
    const double slope = sxy / sxx;
    EXPECT_NEAR(slope, -theta, 0.05);
}

TEST(PopularityTest, SeedGolden)
{
    // Exact first draws of Rng(99) against a 1000-key theta=0.99
    // sampler; a change invalidates the committed serving artifacts.
    ZipfSampler zipf(1000, 0.99);
    Rng rng(99);
    const std::uint64_t expected[] = {6, 36, 8, 337, 199, 2, 3, 0};
    for (const std::uint64_t want : expected)
        EXPECT_EQ(zipf.draw(rng), want);
}

TEST(PopularityTest, SameSeedSameDraws)
{
    ZipfSampler zipf(1 << 20, 0.99);
    Rng a(5), b(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(zipf.draw(a), zipf.draw(b));
}
