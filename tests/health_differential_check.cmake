# Health differential gate: on a fault-free workload the health
# control plane must be inert. A campaign run with health=off,
# health=governor, and health=full must produce byte-identical CSVs
# (modulo the column that names the mode): same data-path results,
# zero health-counter activity, no routing or timing perturbation
# from epoch sampling, deadline arming, or ordered routing. Any
# drift means the control plane leaked into the healthy fast path —
# which would also invalidate every committed fig*/abl_* artifact.
#
# Invoked by ctest as:
#   cmake -DKMU_FAULTSTORM=<path> -DWORK_DIR=<dir>
#         -P health_differential_check.cmake

if(NOT KMU_FAULTSTORM)
    message(FATAL_ERROR "pass -DKMU_FAULTSTORM=<path to kmu_faultstorm>")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(dir ${WORK_DIR}/health_differential)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

# Fault-free (rates=0) on a sharded topology: the modes may only
# differ when fault pressure produces health signals.
set(ARGS seed=7 rates=0 ops=1500 fibers=4 shards=4)

foreach(mode off governor full)
    execute_process(
        COMMAND ${KMU_FAULTSTORM} ${ARGS} health=${mode}
        OUTPUT_FILE ${dir}/health_${mode}.csv
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "kmu_faultstorm health=${mode} failed (rc=${rc}): ${err}")
    endif()
endforeach()

file(READ ${dir}/health_off.csv baseline)
foreach(mode governor full)
    file(READ ${dir}/health_${mode}.csv got)
    # The `health` CSV column names the mode; normalize it before
    # comparing. Everything else must match byte-for-byte.
    string(REPLACE ",${mode}," ",off," got "${got}")
    if(NOT got STREQUAL baseline)
        message(FATAL_ERROR
            "health=${mode} perturbed a fault-free run: CSV differs "
            "from health=off beyond the mode column (compare "
            "health_off.csv and health_${mode}.csv in ${dir}). The "
            "control plane must be inert without fault pressure.")
    endif()
endforeach()
message(STATUS
    "health differential check passed: fault-free runs byte-identical "
    "across health=off/governor/full")
