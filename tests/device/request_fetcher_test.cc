/**
 * @file
 * Timing tests for the software-queue request fetcher.
 */

#include <gtest/gtest.h>

#include <vector>

#include "check/invariant.hh"
#include "common/units.hh"
#include "common/thread_annotations.hh"
#include "device/request_fetcher.hh"
#include "fault/fault_plan.hh"

namespace kmu
{
namespace
{

struct FetcherFixture : public ::testing::Test
{
    FetcherFixture()
        : link("pcie", eq, PcieLinkParams{}, &root),
          qp(64)
    {
        DeviceParams params;
        params.latency = microseconds(1);
        fetcher = std::make_unique<RequestFetcher>(
            "fetch0", eq, 0, params, qp, link, nanoseconds(60),
            [this](const CompletionDescriptor &c) {
                completions.push_back(c.hostAddr);
                completionTicks.push_back(eq.curTick());
            },
            &root);
    }

    EventQueue eq;
    StatGroup root{"root"};
    PcieLink link;
    SwQueuePair qp;
    std::unique_ptr<RequestFetcher> fetcher;
    std::vector<Addr> completions;
    std::vector<Tick> completionTicks;
};

TEST_F(FetcherFixture, DoorbellFetchesAndCompletes)
{
    RoleGuard host(qp.hostRole); // single-threaded sim: test is host
    ASSERT_TRUE(qp.submit({0, 0xaaa}));
    ASSERT_TRUE(qp.consumeDoorbellRequest());
    fetcher->ringDoorbell();
    eq.run();

    ASSERT_EQ(completions.size(), 1u);
    EXPECT_EQ(completions[0], 0xaaau);
    EXPECT_EQ(fetcher->descriptorsFetched.value(), 1u);
    EXPECT_EQ(fetcher->responses.value(), 1u);
    // The completion is visible in the host-side queue too.
    CompletionDescriptor c;
    EXPECT_TRUE(qp.reapCompletion(c));
    EXPECT_EQ(c.hostAddr, 0xaaau);
    // Fetcher parked again and requested a doorbell.
    EXPECT_FALSE(fetcher->fetching());
    EXPECT_TRUE(qp.doorbellRequested());
}

TEST_F(FetcherFixture, EndToEndLatencyIncludesFetchPath)
{
    RoleGuard host(qp.hostRole); // single-threaded sim: test is host
    qp.submit({0, 1});
    qp.consumeDoorbellRequest();
    fetcher->ringDoorbell();
    eq.run();
    ASSERT_EQ(completionTicks.size(), 1u);
    // doorbell TLP + descriptor fetch round trip + 200 ns hold +
    // data & completion writes: the protocol cannot beat ~1.2 us and
    // should stay under ~2.5 us.
    EXPECT_GT(completionTicks[0], microseconds(1));
    EXPECT_LT(completionTicks[0], nanoseconds(2500));
}

TEST_F(FetcherFixture, BurstServicesManyPerRead)
{
    RoleGuard host(qp.hostRole); // single-threaded sim: test is host
    for (std::uint64_t i = 0; i < 8; ++i)
        qp.submit({i * 64, i});
    qp.consumeDoorbellRequest();
    fetcher->ringDoorbell();
    eq.run();
    EXPECT_EQ(completions.size(), 8u);
    // All eight came from one burst (plus trailing empty reads).
    EXPECT_EQ(fetcher->descriptorsFetched.value(), 8u);
    EXPECT_GE(fetcher->burstReads.value(), 2u);
    EXPECT_GE(fetcher->emptyBursts.value(), 1u);
}

TEST_F(FetcherFixture, KeepsFetchingWhileDescriptorsFlow)
{
    RoleGuard host(qp.hostRole); // single-threaded sim: test is host
    // Submit a second request while the first is being serviced; no
    // second doorbell is needed.
    qp.submit({0, 1});
    qp.consumeDoorbellRequest();
    fetcher->ringDoorbell();
    eq.scheduleLambda(nanoseconds(600), [this]() {
        RoleGuard host(qp.hostRole);
        ASSERT_TRUE(qp.submit({64, 2}));
        // The fetcher is still active: flag must not be set yet.
        EXPECT_FALSE(qp.consumeDoorbellRequest());
    });
    eq.run();
    EXPECT_EQ(completions.size(), 2u);
    EXPECT_EQ(fetcher->doorbells.value(), 1u);
}

TEST_F(FetcherFixture, RacedSubmissionSweptAfterFlagWrite)
{
    RoleGuard host(qp.hostRole); // single-threaded sim: test is host
    // A descriptor that lands between the fetcher's empty read and
    // its flag write must still be serviced (the post-flag sweep).
    qp.submit({0, 1});
    qp.consumeDoorbellRequest();
    fetcher->ringDoorbell();
    bool injected = false;
    // Poll each 50 ns; inject the raced descriptor the moment the
    // first completion lands (the fetcher is then winding down).
    std::function<void()> poll = [&]() {
        RoleGuard host(qp.hostRole);
        if (!injected && !completions.empty()) {
            injected = true;
            ASSERT_TRUE(qp.submit({64, 2}));
            // Do NOT ring the doorbell: emulate the race where the
            // flag write was still in flight.
            return;
        }
        if (!injected)
            eq.scheduleLambda(eq.curTick() + nanoseconds(50), poll);
    };
    eq.scheduleLambda(nanoseconds(50), poll);
    eq.run();
    EXPECT_EQ(completions.size(), 2u);
}

// Regression for the doorbell-clear race: the fetcher may park ONLY
// with the doorbell-request flag published (now a KMU_INVARIANT in
// the park path — parking with the flag clear strands any descriptor
// whose submitter saw the clear flag and skipped its doorbell). Here
// truncation faults force many extra empty bursts and park/sweep
// rounds; every one of them must leave the protocol in the legal
// parked state, with nothing stranded and no invariant tripped.
TEST_F(FetcherFixture, ParkingAlwaysPublishesDoorbellFlag)
{
    RoleGuard host(qp.hostRole); // single-threaded sim: test is host
    fault::FaultPlan plan(0xdb01);
    plan.set(fault::FaultSite::DescFetchTruncation, {.rate = 0.5});
    fault::ScopedPlan active(plan);
    const std::uint64_t violationsBefore = check::violationCount();

    for (int round = 0; round < 8; ++round) {
        for (std::uint64_t i = 0; i < 4; ++i)
            ASSERT_TRUE(qp.submit({i * 64, round * 100ull + i}));
        ASSERT_TRUE(qp.consumeDoorbellRequest());
        fetcher->ringDoorbell();
        eq.run();
        // Parked, flag republished, nothing left in the ring.
        EXPECT_FALSE(fetcher->fetching());
        EXPECT_TRUE(qp.doorbellRequested());
        std::vector<RequestDescriptor> leftover;
        {
            // Inspect the ring from the (now parked) device side.
            RoleGuard device(qp.deviceRole);
            qp.fetchBurst(leftover, 8);
        }
        EXPECT_TRUE(leftover.empty()) << "stranded descriptors";
    }
    EXPECT_EQ(completions.size(), 32u);
    EXPECT_EQ(check::violationCount(), violationsBefore);
    EXPECT_GT(plan.injected(fault::FaultSite::DescFetchTruncation), 0u);
}

// The ring-counter gauges surface the SPSC rings' push/reject/pop
// atomics through the fetcher's stat group.
TEST_F(FetcherFixture, RingGaugesTrackQueueCounters)
{
    RoleGuard host(qp.hostRole); // single-threaded sim: test is host
    for (std::uint64_t i = 0; i < 8; ++i)
        ASSERT_TRUE(qp.submit({i * 64, i}));
    qp.consumeDoorbellRequest();
    fetcher->ringDoorbell();
    eq.run();
    EXPECT_EQ(fetcher->requestPushes.value(), 8u);
    EXPECT_EQ(fetcher->completionPops.value(), 0u); // nothing reaped
    CompletionDescriptor c;
    while (qp.reapCompletion(c))
        ;
    EXPECT_EQ(fetcher->completionPops.value(), 8u);

    // Overfill the request ring (capacity 64): the 65th submission
    // is rejected and the reject gauge sees it.
    std::uint64_t rejects = 0;
    for (std::uint64_t i = 0; i < 70; ++i) {
        if (!qp.submit({i * 64, i}))
            ++rejects;
    }
    EXPECT_GT(rejects, 0u);
    EXPECT_EQ(fetcher->requestRejects.value(), rejects);

    // reset latches a baseline: the next dump reports deltas.
    fetcher->requestPushes.reset();
    EXPECT_EQ(fetcher->requestPushes.value(), 0u);
}

TEST_F(FetcherFixture, DataWritePrecedesCompletionOnTheWire)
{
    RoleGuard host(qp.hostRole); // single-threaded sim: test is host
    qp.submit({0, 7});
    qp.consumeDoorbellRequest();
    fetcher->ringDoorbell();
    eq.run();
    // 64B data (88B wire) + 8B completion (32B wire): the completion
    // notify must arrive at least the data-TLP serialization later
    // than the hold expiry.
    ASSERT_EQ(completionTicks.size(), 1u);
    EXPECT_EQ(link.usefulBytes(LinkDir::ToHost), 64u);
    EXPECT_GE(link.wireBytes(LinkDir::ToHost), 88u + 32u);
}

TEST_F(FetcherFixture, RedundantDoorbellIgnoredWhileActive)
{
    RoleGuard host(qp.hostRole); // single-threaded sim: test is host
    qp.submit({0, 1});
    qp.consumeDoorbellRequest();
    fetcher->ringDoorbell();
    fetcher->ringDoorbell(); // spurious second ring
    eq.run();
    EXPECT_EQ(completions.size(), 1u);
    EXPECT_EQ(fetcher->doorbells.value(), 2u);
}

} // anonymous namespace
} // namespace kmu
