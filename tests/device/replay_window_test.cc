/**
 * @file
 * Unit and property tests for the sliding-window replay matcher —
 * the trickiest functional piece of the paper's device emulator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hh"
#include "device/replay_window.hh"

namespace kmu
{
namespace
{

ReplayWindow::SequenceSource
vectorSource(std::vector<Addr> seq)
{
    auto state = std::make_shared<std::pair<std::vector<Addr>,
                                            std::size_t>>(
        std::move(seq), 0);
    return [state](Addr &next) {
        if (state->second >= state->first.size())
            return false;
        next = state->first[state->second++];
        return true;
    };
}

std::vector<Addr>
linearSequence(std::size_t n)
{
    std::vector<Addr> seq(n);
    for (std::size_t i = 0; i < n; ++i)
        seq[i] = Addr(i) * 64;
    return seq;
}

TEST(ReplayWindowTest, InOrderStreamMatches)
{
    auto seq = linearSequence(100);
    ReplayWindow window(vectorSource(seq), 8);
    for (Addr a : seq) {
        std::uint64_t idx = ~0ull;
        EXPECT_EQ(window.lookup(a, &idx), ReplayWindow::Result::Matched);
        EXPECT_EQ(idx, a / 64);
    }
    EXPECT_EQ(window.matches(), 100u);
    EXPECT_EQ(window.misses(), 0u);
    EXPECT_EQ(window.outOfOrderMatches(), 0u);
}

TEST(ReplayWindowTest, SkippedEntriesToleratedAsCacheHits)
{
    // The host "hits in cache" on every third access and never sends
    // those requests.
    auto seq = linearSequence(60);
    ReplayWindow window(vectorSource(seq), 16);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        if (i % 3 == 2)
            continue;
        EXPECT_EQ(window.lookup(seq[i]), ReplayWindow::Result::Matched)
            << "at index " << i;
    }
    EXPECT_EQ(window.misses(), 0u);
}

TEST(ReplayWindowTest, ReorderedRequestsMatchWithinWindow)
{
    auto seq = linearSequence(40);
    ReplayWindow window(vectorSource(seq), 8);
    // Swap neighbours pairwise: 1,0,3,2,...
    for (std::size_t i = 0; i + 1 < seq.size(); i += 2) {
        EXPECT_EQ(window.lookup(seq[i + 1]),
                  ReplayWindow::Result::Matched);
        EXPECT_EQ(window.lookup(seq[i]),
                  ReplayWindow::Result::Matched);
    }
    EXPECT_EQ(window.misses(), 0u);
    EXPECT_GT(window.outOfOrderMatches(), 0u);
}

TEST(ReplayWindowTest, SpuriousRequestMisses)
{
    auto seq = linearSequence(10);
    ReplayWindow window(vectorSource(seq), 8);
    EXPECT_EQ(window.lookup(0xdead0000),
              ReplayWindow::Result::Miss);
    EXPECT_EQ(window.misses(), 1u);
    // The stream is undisturbed.
    EXPECT_EQ(window.lookup(seq[0]), ReplayWindow::Result::Matched);
}

TEST(ReplayWindowTest, RepeatedAddressMatchesOldestFirst)
{
    std::vector<Addr> seq = {64, 128, 64, 192};
    ReplayWindow window(vectorSource(seq), 8);
    std::uint64_t idx;
    ASSERT_EQ(window.lookup(64, &idx), ReplayWindow::Result::Matched);
    EXPECT_EQ(idx, 0u); // age-based: oldest occurrence first
    ASSERT_EQ(window.lookup(64, &idx), ReplayWindow::Result::Matched);
    EXPECT_EQ(idx, 2u);
}

TEST(ReplayWindowTest, ExhaustedSourceMisses)
{
    auto seq = linearSequence(4);
    ReplayWindow window(vectorSource(seq), 8);
    for (Addr a : seq)
        window.lookup(a);
    EXPECT_EQ(window.lookup(seq[0]), ReplayWindow::Result::Miss);
    EXPECT_EQ(window.buffered(), 0u);
}

TEST(ReplayWindowTest, SkippedEntriesAgeOut)
{
    auto seq = linearSequence(100);
    const std::size_t w = 8;
    ReplayWindow window(vectorSource(seq), w);
    // Never request entry 0; march far past it.
    for (std::size_t i = 1; i < 50; ++i)
        ASSERT_EQ(window.lookup(seq[i]), ReplayWindow::Result::Matched);
    EXPECT_GT(window.agedOut(), 0u);
    // Entry 0 is long gone: it must miss, not match.
    EXPECT_EQ(window.lookup(seq[0]), ReplayWindow::Result::Miss);
}

/**
 * Property: any request stream derived from the recorded sequence by
 * (a) dropping arbitrary entries and (b) reordering within a
 * distance smaller than the window matches completely.
 */
class ReplayPerturbation : public ::testing::TestWithParam<int>
{
};

TEST_P(ReplayPerturbation, PerturbedStreamsFullyMatch)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    const std::size_t n = 500;
    const std::size_t window_size = 32;

    auto seq = linearSequence(n);

    // Drop ~20 % of entries (cache hits).
    std::vector<Addr> requests;
    for (Addr a : seq) {
        if (!rng.nextBool(0.2))
            requests.push_back(a);
    }

    // Bounded local reordering: sorting by (index + noise) displaces
    // every request by at most the noise amplitude in either
    // direction — half the window, as a real core's reorder window
    // would.
    std::vector<std::pair<std::size_t, Addr>> keyed;
    keyed.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        keyed.emplace_back(i + rng.nextBounded(window_size / 2),
                           requests[i]);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    for (std::size_t i = 0; i < requests.size(); ++i)
        requests[i] = keyed[i].second;

    ReplayWindow window(vectorSource(seq), window_size);
    for (Addr a : requests) {
        ASSERT_EQ(window.lookup(a), ReplayWindow::Result::Matched)
            << "request " << a << " seed " << seed;
    }
    EXPECT_EQ(window.matches(), requests.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayPerturbation,
                         ::testing::Range(1, 9));

} // anonymous namespace
} // namespace kmu
