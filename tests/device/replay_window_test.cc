/**
 * @file
 * Unit and property tests for the sliding-window replay matcher —
 * the trickiest functional piece of the paper's device emulator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hh"
#include "device/replay_window.hh"

namespace kmu
{
namespace
{

ReplayWindow::SequenceSource
vectorSource(std::vector<Addr> seq)
{
    auto state = std::make_shared<std::pair<std::vector<Addr>,
                                            std::size_t>>(
        std::move(seq), 0);
    return [state](Addr &next) {
        if (state->second >= state->first.size())
            return false;
        next = state->first[state->second++];
        return true;
    };
}

std::vector<Addr>
linearSequence(std::size_t n)
{
    std::vector<Addr> seq(n);
    for (std::size_t i = 0; i < n; ++i)
        seq[i] = Addr(i) * 64;
    return seq;
}

TEST(ReplayWindowTest, InOrderStreamMatches)
{
    auto seq = linearSequence(100);
    ReplayWindow window(vectorSource(seq), 8);
    for (Addr a : seq) {
        std::uint64_t idx = ~0ull;
        EXPECT_EQ(window.lookup(a, &idx), ReplayWindow::Result::Matched);
        EXPECT_EQ(idx, a / 64);
    }
    EXPECT_EQ(window.matches(), 100u);
    EXPECT_EQ(window.misses(), 0u);
    EXPECT_EQ(window.outOfOrderMatches(), 0u);
}

TEST(ReplayWindowTest, SkippedEntriesToleratedAsCacheHits)
{
    // The host "hits in cache" on every third access and never sends
    // those requests.
    auto seq = linearSequence(60);
    ReplayWindow window(vectorSource(seq), 16);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        if (i % 3 == 2)
            continue;
        EXPECT_EQ(window.lookup(seq[i]), ReplayWindow::Result::Matched)
            << "at index " << i;
    }
    EXPECT_EQ(window.misses(), 0u);
}

TEST(ReplayWindowTest, ReorderedRequestsMatchWithinWindow)
{
    auto seq = linearSequence(40);
    ReplayWindow window(vectorSource(seq), 8);
    // Swap neighbours pairwise: 1,0,3,2,...
    for (std::size_t i = 0; i + 1 < seq.size(); i += 2) {
        EXPECT_EQ(window.lookup(seq[i + 1]),
                  ReplayWindow::Result::Matched);
        EXPECT_EQ(window.lookup(seq[i]),
                  ReplayWindow::Result::Matched);
    }
    EXPECT_EQ(window.misses(), 0u);
    EXPECT_GT(window.outOfOrderMatches(), 0u);
}

TEST(ReplayWindowTest, SpuriousRequestMisses)
{
    auto seq = linearSequence(10);
    ReplayWindow window(vectorSource(seq), 8);
    EXPECT_EQ(window.lookup(0xdead0000),
              ReplayWindow::Result::Miss);
    EXPECT_EQ(window.misses(), 1u);
    // The stream is undisturbed.
    EXPECT_EQ(window.lookup(seq[0]), ReplayWindow::Result::Matched);
}

TEST(ReplayWindowTest, RepeatedAddressMatchesOldestFirst)
{
    std::vector<Addr> seq = {64, 128, 64, 192};
    ReplayWindow window(vectorSource(seq), 8);
    std::uint64_t idx;
    ASSERT_EQ(window.lookup(64, &idx), ReplayWindow::Result::Matched);
    EXPECT_EQ(idx, 0u); // age-based: oldest occurrence first
    ASSERT_EQ(window.lookup(64, &idx), ReplayWindow::Result::Matched);
    EXPECT_EQ(idx, 2u);
}

TEST(ReplayWindowTest, ExhaustedSourceMisses)
{
    auto seq = linearSequence(4);
    ReplayWindow window(vectorSource(seq), 8);
    for (Addr a : seq)
        window.lookup(a);
    EXPECT_EQ(window.lookup(seq[0]), ReplayWindow::Result::Miss);
    EXPECT_EQ(window.buffered(), 0u);
}

TEST(ReplayWindowTest, SkippedEntriesAgeOut)
{
    auto seq = linearSequence(100);
    const std::size_t w = 8;
    ReplayWindow window(vectorSource(seq), w);
    // Never request entry 0; march far past it.
    for (std::size_t i = 1; i < 50; ++i)
        ASSERT_EQ(window.lookup(seq[i]), ReplayWindow::Result::Matched);
    EXPECT_GT(window.agedOut(), 0u);
    // Entry 0 is long gone: it must miss, not match.
    EXPECT_EQ(window.lookup(seq[0]), ReplayWindow::Result::Miss);
}

// ---- Directed corner tests: the three protocol deviations at the
// ---- window's boundary states (empty, single-entry, full under
// ---- eviction pressure), where off-by-one bugs in the aged-out
// ---- frontier or the refill path would hide from the bulk tests.

TEST(ReplayWindowCornerTest, EmptyWindowMissesEverything)
{
    // Empty from birth: the source never produces an entry.
    ReplayWindow window(vectorSource({}), 8);
    EXPECT_EQ(window.buffered(), 0u);
    EXPECT_EQ(window.lookup(0), ReplayWindow::Result::Miss);
    EXPECT_EQ(window.lookup(64), ReplayWindow::Result::Miss);
    EXPECT_EQ(window.misses(), 2u);
    // Eviction on an empty window is a no-op, not a crash.
    EXPECT_EQ(window.evictOldest(4), 0u);
    EXPECT_EQ(window.agedOut(), 0u);
}

TEST(ReplayWindowCornerTest, SingleEntryWindowAllDeviations)
{
    // A window of capacity 1 holds exactly the next recorded entry:
    // the degenerate case where "oldest" and "newest" coincide.
    auto seq = linearSequence(6);
    ReplayWindow window(vectorSource(seq), 1);
    EXPECT_EQ(window.buffered(), 1u);

    // Spurious request: misses without disturbing the single entry.
    EXPECT_EQ(window.lookup(0xdead0000), ReplayWindow::Result::Miss);
    EXPECT_EQ(window.buffered(), 1u);

    // In-order request: matches and the window refills by one.
    std::uint64_t idx = ~0ull;
    EXPECT_EQ(window.lookup(seq[0], &idx),
              ReplayWindow::Result::Matched);
    EXPECT_EQ(idx, 0u);
    EXPECT_EQ(window.buffered(), 1u);

    // Reordered request: entry 2 while entry 1 fronts the window. A
    // 1-entry window cannot hold both, so this must miss (fall back
    // on-demand), never match a stale epoch.
    EXPECT_EQ(window.lookup(seq[2]), ReplayWindow::Result::Miss);

    // Skipped entry: requesting entry 1 still works — it is the one
    // buffered entry; nothing aged out yet.
    EXPECT_EQ(window.lookup(seq[1]), ReplayWindow::Result::Matched);
}

TEST(ReplayWindowCornerTest, FullWindowEvictionAdvancesFrontier)
{
    auto seq = linearSequence(64);
    const std::size_t w = 8;
    ReplayWindow window(vectorSource(seq), w);
    EXPECT_EQ(window.buffered(), w);

    // Evict half of a full window: the frontier advances exactly
    // that far and the window refills back to capacity.
    EXPECT_EQ(window.evictOldest(w / 2), w / 2);
    EXPECT_EQ(window.agedOut(), w / 2);
    EXPECT_EQ(window.buffered(), w);

    // Requests for evicted entries are now indistinguishable from
    // spurious ones: they miss and fall back to the on-demand path.
    for (std::size_t i = 0; i < w / 2; ++i) {
        EXPECT_EQ(window.lookup(seq[i]), ReplayWindow::Result::Miss)
            << "evicted entry " << i << " matched a stale epoch";
    }

    // Survivors and refilled entries still match in order, including
    // a reordered pair straddling the eviction boundary.
    EXPECT_EQ(window.lookup(seq[w / 2 + 1]),
              ReplayWindow::Result::Matched);
    EXPECT_EQ(window.lookup(seq[w / 2]),
              ReplayWindow::Result::Matched);
    EXPECT_GT(window.outOfOrderMatches(), 0u);
    for (std::size_t i = w / 2 + 2; i < 32; ++i) {
        EXPECT_EQ(window.lookup(seq[i]), ReplayWindow::Result::Matched)
            << "post-eviction entry " << i;
    }
}

TEST(ReplayWindowCornerTest, EvictionBeyondOccupancyIsBounded)
{
    auto seq = linearSequence(4); // source shorter than the window
    ReplayWindow window(vectorSource(seq), 8);
    EXPECT_EQ(window.buffered(), 4u);
    // Ask for more than is buffered: only what exists is evicted,
    // and the drained source cannot refill.
    EXPECT_EQ(window.evictOldest(100), 4u);
    EXPECT_EQ(window.buffered(), 0u);
    EXPECT_EQ(window.agedOut(), 4u);
    EXPECT_EQ(window.lookup(seq[0]), ReplayWindow::Result::Miss);
}

/**
 * Property: any request stream derived from the recorded sequence by
 * (a) dropping arbitrary entries and (b) reordering within a
 * distance smaller than the window matches completely.
 */
class ReplayPerturbation : public ::testing::TestWithParam<int>
{
};

TEST_P(ReplayPerturbation, PerturbedStreamsFullyMatch)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    const std::size_t n = 500;
    const std::size_t window_size = 32;

    auto seq = linearSequence(n);

    // Drop ~20 % of entries (cache hits).
    std::vector<Addr> requests;
    for (Addr a : seq) {
        if (!rng.nextBool(0.2))
            requests.push_back(a);
    }

    // Bounded local reordering: sorting by (index + noise) displaces
    // every request by at most the noise amplitude in either
    // direction — half the window, as a real core's reorder window
    // would.
    std::vector<std::pair<std::size_t, Addr>> keyed;
    keyed.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        keyed.emplace_back(i + rng.nextBounded(window_size / 2),
                           requests[i]);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    for (std::size_t i = 0; i < requests.size(); ++i)
        requests[i] = keyed[i].second;

    ReplayWindow window(vectorSource(seq), window_size);
    for (Addr a : requests) {
        ASSERT_EQ(window.lookup(a), ReplayWindow::Result::Matched)
            << "request " << a << " seed " << seed;
    }
    EXPECT_EQ(window.matches(), requests.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayPerturbation,
                         ::testing::Range(1, 9));

} // anonymous namespace
} // namespace kmu
