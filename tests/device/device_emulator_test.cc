/**
 * @file
 * Timing tests for the memory-mapped device emulator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hh"
#include "device/device_emulator.hh"

namespace kmu
{
namespace
{

PcieLinkParams
linkParams()
{
    PcieLinkParams p;
    p.propagation = nanoseconds(386);
    return p;
}

DeviceParams
deviceParams(Tick latency)
{
    DeviceParams p;
    p.latency = latency;
    p.rttAllowance = nanoseconds(800);
    return p;
}

struct EmulatorFixture : public ::testing::Test
{
    EventQueue eq;
    StatGroup root{"root"};
    PcieLink link{"pcie", eq, linkParams(), &root};
};

TEST_F(EmulatorFixture, EndToEndLatencyMatchesConfig)
{
    DeviceEmulator dev("dev", eq, deviceParams(microseconds(1)), link,
                       1, &root);
    Tick done = 0;
    dev.hostRead(0, 0, [&]() { done = eq.curTick(); });
    eq.run();
    // Request TLP: 6 ns wire + 386 ns; hold 200 ns; response TLP:
    // 22 ns wire + 386 ns  => ~1000 ns end to end.
    EXPECT_NEAR(double(done), double(microseconds(1)),
                double(nanoseconds(30)));
    EXPECT_EQ(dev.requests.value(), 1u);
    EXPECT_EQ(dev.responsesSent.value(), 1u);
}

TEST_F(EmulatorFixture, HoldTimeClampedForFastDevices)
{
    // A 500 ns device cannot beat the PCIe round trip.
    DeviceEmulator dev("dev", eq, deviceParams(nanoseconds(500)), link,
                       1, &root);
    Tick done = 0;
    dev.hostRead(0, 0, [&]() { done = eq.curTick(); });
    eq.run();
    EXPECT_GE(done, nanoseconds(386 + 386)); // at least the RTT
    EXPECT_LT(done, nanoseconds(900));
}

TEST_F(EmulatorFixture, LiveModeCountsAllAsMatches)
{
    DeviceEmulator dev("dev", eq, deviceParams(microseconds(1)), link,
                       2, &root);
    int done = 0;
    for (int i = 0; i < 5; ++i)
        dev.hostRead(i % 2, Addr(i) * 64, [&]() { done++; });
    eq.run();
    EXPECT_EQ(done, 5);
    EXPECT_EQ(dev.replayMatches.value(), 5u);
    EXPECT_EQ(dev.replayMisses.value(), 0u);
}

TEST_F(EmulatorFixture, ReplaySourcePenalizesSpurious)
{
    DeviceParams params = deviceParams(microseconds(1));
    params.onDemandLatency = nanoseconds(300);
    DeviceEmulator dev("dev", eq, params, link, 1, &root);

    // Recorded stream: lines 0..9.
    auto cursor = std::make_shared<Addr>(0);
    dev.setReplaySource(0, [cursor](Addr &next) {
        if (*cursor >= 10 * 64)
            return false;
        next = *cursor;
        *cursor += 64;
        return true;
    });

    Tick expected_done = 0;
    Tick spurious_done = 0;
    dev.hostRead(0, 0, [&]() { expected_done = eq.curTick(); });
    dev.hostRead(0, 0xbeef00, [&]() { spurious_done = eq.curTick(); });
    eq.run();

    EXPECT_EQ(dev.replayMatches.value(), 1u);
    EXPECT_EQ(dev.replayMisses.value(), 1u);
    // Spurious requests pay the on-demand on-board DRAM penalty.
    EXPECT_GE(spurious_done, expected_done + nanoseconds(300));
}

TEST_F(EmulatorFixture, PerCoreReplayModulesAreIndependent)
{
    DeviceEmulator dev("dev", eq, deviceParams(microseconds(1)), link,
                       2, &root);
    auto make_source = [](std::shared_ptr<Addr> cursor) {
        return [cursor](Addr &next) {
            next = *cursor;
            *cursor += 64;
            return *cursor <= 64 * 8;
        };
    };
    dev.setReplaySource(0, make_source(std::make_shared<Addr>(0)));
    dev.setReplaySource(1, make_source(std::make_shared<Addr>(0)));

    int done = 0;
    // Each core consumes its own stream from the beginning.
    dev.hostRead(0, 0, [&]() { done++; });
    dev.hostRead(1, 0, [&]() { done++; });
    eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(dev.replayMisses.value(), 0u);
}

TEST_F(EmulatorFixture, ResponsesSerializeOnTheLink)
{
    DeviceEmulator dev("dev", eq, deviceParams(microseconds(1)), link,
                       1, &root);
    std::vector<Tick> arrivals;
    for (int i = 0; i < 4; ++i) {
        dev.hostRead(0, Addr(i) * 64,
                     [&]() { arrivals.push_back(eq.curTick()); });
    }
    eq.run();
    ASSERT_EQ(arrivals.size(), 4u);
    // 88-byte completions serialize at 22 ns on a 4 GB/s wire; the
    // requests themselves were spaced by the 6 ns request TLPs.
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GE(arrivals[i], arrivals[i - 1] + nanoseconds(6));
}

} // anonymous namespace
} // namespace kmu
