/**
 * @file
 * Functional tests for the real-time software device.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "common/random.hh"
#include "common/thread_annotations.hh"
#include "device/emulated_device.hh"

namespace kmu
{
namespace
{

std::vector<std::uint8_t>
patternImage(std::size_t bytes)
{
    std::vector<std::uint8_t> image(bytes);
    for (std::size_t off = 0; off + 8 <= bytes; off += 8) {
        const std::uint64_t v = mix64(off);
        std::memcpy(image.data() + off, &v, 8);
    }
    return image;
}

/** Submit, doorbell if requested, and spin until the completion. */
void
readLineBlocking(EmulatedDevice &dev, std::size_t pair, Addr device_addr,
                 void *host_buf)
{
    SwQueuePair &qp = dev.queuePair(pair);
    RoleGuard host(qp.hostRole); // test thread = host side
    RequestDescriptor desc;
    desc.deviceAddr = device_addr;
    desc.hostAddr = reinterpret_cast<std::uintptr_t>(host_buf);
    ASSERT_TRUE(qp.submit(desc));
    if (qp.consumeDoorbellRequest())
        dev.doorbell(pair);
    CompletionDescriptor comp;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!qp.reapCompletion(comp)) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "completion never arrived";
    }
    ASSERT_EQ(comp.hostAddr, desc.hostAddr);
}

TEST(EmulatedDeviceTest, ReturnsCorrectData)
{
    auto image = patternImage(64 * 1024);
    EmulatedDevice dev(image, {.latency = std::chrono::nanoseconds(500),
                               .queueDepth = 64});
    const std::size_t pair = dev.addQueuePair();
    dev.start();

    alignas(64) std::uint8_t buf[64];
    for (Addr line = 0; line < 16 * 64; line += 64) {
        readLineBlocking(dev, pair, line, buf);
        EXPECT_EQ(std::memcmp(buf, image.data() + line, 64), 0)
            << "line " << line;
    }
    dev.stop();
    EXPECT_EQ(dev.requestsServiced(), 16u);
}

TEST(EmulatedDeviceTest, MultipleQueuePairs)
{
    auto image = patternImage(16 * 1024);
    EmulatedDevice dev(image, {.latency = std::chrono::nanoseconds(100),
                               .queueDepth = 32});
    const std::size_t p0 = dev.addQueuePair();
    const std::size_t p1 = dev.addQueuePair();
    dev.start();

    alignas(64) std::uint8_t buf0[64];
    alignas(64) std::uint8_t buf1[64];
    readLineBlocking(dev, p0, 0, buf0);
    readLineBlocking(dev, p1, 64, buf1);
    dev.stop();

    EXPECT_EQ(std::memcmp(buf0, image.data(), 64), 0);
    EXPECT_EQ(std::memcmp(buf1, image.data() + 64, 64), 0);
}

TEST(EmulatedDeviceTest, LatencyIsRoughlyHonored)
{
    auto image = patternImage(4096);
    const auto latency = std::chrono::microseconds(2);
    EmulatedDevice dev(image, {.latency = latency, .queueDepth = 32});
    const std::size_t pair = dev.addQueuePair();
    dev.start();

    alignas(64) std::uint8_t buf[64];
    const auto start = std::chrono::steady_clock::now();
    readLineBlocking(dev, pair, 0, buf);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    dev.stop();

    // Lower bound holds even on a loaded machine; no tight upper
    // bound (scheduling noise on shared CPUs).
    EXPECT_GE(elapsed, latency);
}

TEST(EmulatedDeviceTest, DrainsInFlightOnStop)
{
    auto image = patternImage(64 * 256);
    EmulatedDevice dev(image, {.latency = std::chrono::microseconds(50),
                               .queueDepth = 64});
    const std::size_t pair = dev.addQueuePair();
    SwQueuePair &qp = dev.queuePair(pair);
    RoleGuard host(qp.hostRole); // test thread = host side

    alignas(64) std::uint8_t bufs[8][64];
    for (std::uint64_t i = 0; i < 8; ++i) {
        RequestDescriptor desc;
        desc.deviceAddr = i * 64;
        desc.hostAddr = reinterpret_cast<std::uintptr_t>(&bufs[i][0]);
        ASSERT_TRUE(qp.submit(desc));
    }
    dev.start();
    if (qp.consumeDoorbellRequest())
        dev.doorbell(pair);
    // Give the fetch stage a moment, then stop: stop() must drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    dev.stop();

    EXPECT_EQ(dev.requestsServiced(), 8u);
    CompletionDescriptor comp;
    std::size_t reaped = 0;
    while (qp.reapCompletion(comp))
        reaped++;
    EXPECT_EQ(reaped, 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(std::memcmp(bufs[i], image.data() + i * 64, 64), 0);
}

TEST(EmulatedDeviceTest, ReplayCheckCountsSpurious)
{
    auto image = patternImage(64 * 64);
    EmulatedDevice dev(image, {.latency = std::chrono::nanoseconds(100),
                               .queueDepth = 32});
    const std::size_t pair = dev.addQueuePair();
    dev.enableReplayCheck(pair, {0, 64, 128}, 8);
    dev.start();

    alignas(64) std::uint8_t buf[64];
    readLineBlocking(dev, pair, 0, buf);
    readLineBlocking(dev, pair, 64, buf);
    readLineBlocking(dev, pair, 1024, buf); // not in the recording
    dev.stop();

    EXPECT_EQ(dev.replayMisses(), 1u);
}

TEST(EmulatedDeviceTest, OutOfRangeReadPanics)
{
    auto image = patternImage(4096);
    EmulatedDevice dev(image, {.latency = std::chrono::nanoseconds(1),
                               .queueDepth = 16});
    const std::size_t pair = dev.addQueuePair();
    SwQueuePair &qp = dev.queuePair(pair);
    RoleGuard host(qp.hostRole); // test thread = host side
    alignas(64) std::uint8_t buf[64];
    RequestDescriptor desc;
    desc.deviceAddr = 1 << 20; // beyond the backing store
    desc.hostAddr = reinterpret_cast<std::uintptr_t>(buf);
    qp.submit(desc);
    EXPECT_DEATH(
        {
            dev.start();
            if (qp.consumeDoorbellRequest())
                dev.doorbell(pair);
            std::this_thread::sleep_for(std::chrono::seconds(2));
        },
        "beyond backing store");
}

} // anonymous namespace
} // namespace kmu
