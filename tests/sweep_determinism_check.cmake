# Parallel-sweep determinism gate: a figure bench run with jobs=4
# must produce byte-identical stdout and CSVs to the jobs=1 serial
# run. Any divergence in the submission-order merge, the RunResult
# wire round trip, or the two-pass body replay shows up here.
#
# Invoked by ctest as:
#   cmake -DFIG02=<path> -DFIG07=<path> -DWORK_DIR=<dir>
#         -P sweep_determinism_check.cmake

if(NOT FIG02 OR NOT FIG07)
    message(FATAL_ERROR "pass -DFIG02=/-DFIG07=<paths to benches>")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

foreach(jobs 1 4)
    set(dir ${WORK_DIR}/sweep_det_jobs${jobs})
    file(REMOVE_RECURSE ${dir})
    file(MAKE_DIRECTORY ${dir})
    foreach(bench ${FIG02} ${FIG07})
        get_filename_component(name ${bench} NAME)
        execute_process(
            COMMAND ${bench} jobs=${jobs} bench_json=
            WORKING_DIRECTORY ${dir}
            OUTPUT_FILE ${dir}/${name}.out
            ERROR_VARIABLE err
            RESULT_VARIABLE rc)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                "${name} jobs=${jobs} failed (rc=${rc}): ${err}")
        endif()
    endforeach()
endforeach()

file(GLOB serial_files
     ${WORK_DIR}/sweep_det_jobs1/*.csv
     ${WORK_DIR}/sweep_det_jobs1/*.out)
if(NOT serial_files)
    message(FATAL_ERROR "serial run produced no CSVs to compare")
endif()

foreach(serial ${serial_files})
    get_filename_component(name ${serial} NAME)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${serial} ${WORK_DIR}/sweep_det_jobs4/${name}
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR
            "'${name}' differs between jobs=1 and jobs=4; the "
            "parallel sweep is not output-neutral (compare "
            "sweep_det_jobs1/ and sweep_det_jobs4/ in ${WORK_DIR})")
    endif()
endforeach()
message(STATUS
    "sweep determinism check passed: jobs=4 byte-identical to serial")
