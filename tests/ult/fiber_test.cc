/**
 * @file
 * Tests for the fiber library: context switching, scheduling order,
 * blocking, barriers, and stack integrity.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ult/barrier.hh"
#include "ult/scheduler.hh"

namespace kmu
{
namespace
{

TEST(FiberTest, RunsToCompletion)
{
    Scheduler sched;
    bool ran = false;
    sched.spawn([&]() { ran = true; });
    sched.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(sched.liveFibers(), 0u);
}

TEST(FiberTest, RoundRobinOrder)
{
    Scheduler sched;
    std::vector<int> order;
    for (int f = 0; f < 3; ++f) {
        sched.spawn([&order, f, &sched]() {
            for (int round = 0; round < 3; ++round) {
                order.push_back(f * 10 + round);
                sched.yield();
            }
        });
    }
    sched.run();
    // Strict round robin: 00 10 20 01 11 21 02 12 22.
    EXPECT_EQ(order, (std::vector<int>{0, 10, 20, 1, 11, 21, 2, 12,
                                       22}));
}

TEST(FiberTest, ManyFibers)
{
    Scheduler sched;
    std::uint64_t sum = 0;
    constexpr int n = 1000;
    for (int f = 0; f < n; ++f) {
        sched.spawn([&sum, f, &sched]() {
            sched.yield();
            sum += std::uint64_t(f);
            sched.yield();
        }, 16 * 1024);
    }
    sched.run();
    EXPECT_EQ(sum, std::uint64_t(n) * (n - 1) / 2);
    EXPECT_GE(sched.switches(), std::uint64_t(n) * 3);
}

TEST(FiberTest, LocalsSurviveSwitches)
{
    Scheduler sched;
    bool ok = true;
    for (int f = 0; f < 8; ++f) {
        sched.spawn([&ok, f, &sched]() {
            // Fill a chunk of stack with fiber-specific data.
            int locals[256];
            std::iota(locals, locals + 256, f * 1000);
            for (int round = 0; round < 10; ++round)
                sched.yield();
            for (int i = 0; i < 256; ++i)
                ok &= locals[i] == f * 1000 + i;
        });
    }
    sched.run();
    EXPECT_TRUE(ok);
}

TEST(FiberTest, BlockAndUnblock)
{
    Scheduler sched;
    std::vector<int> order;
    Fiber *sleeper = nullptr;
    sleeper = &sched.spawn([&]() {
        order.push_back(1);
        sched.block();
        order.push_back(3);
    });
    sched.spawn([&]() {
        order.push_back(2);
        sched.unblock(*sleeper);
        sched.yield();
        order.push_back(4);
    });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(FiberTest, IdleHandlerResolvesAllBlocked)
{
    Scheduler sched;
    Fiber *blocked = nullptr;
    int idle_calls = 0;
    blocked = &sched.spawn([&]() { sched.block(); });
    sched.setIdleHandler([&]() {
        idle_calls++;
        sched.unblock(*blocked);
        return true;
    });
    sched.run();
    EXPECT_EQ(idle_calls, 1);
}

TEST(FiberTest, DeadlockPanicsWithoutIdleHandler)
{
    EXPECT_DEATH(
        {
            Scheduler sched;
            sched.spawn([&]() { sched.block(); });
            sched.run();
        },
        "deadlock");
}

TEST(FiberTest, NestedSpawnFromFiber)
{
    Scheduler sched;
    std::vector<int> order;
    sched.spawn([&]() {
        order.push_back(1);
        sched.spawn([&]() { order.push_back(3); });
        order.push_back(2);
    });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(FiberTest, ThisFiberHelpers)
{
    Scheduler sched;
    int hits = 0;
    sched.spawn([&]() {
        EXPECT_EQ(Scheduler::currentScheduler(), &sched);
        EXPECT_NE(sched.current(), nullptr);
        thisFiber::yield();
        hits++;
    });
    sched.run();
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(Scheduler::currentScheduler(), nullptr);
    EXPECT_EQ(sched.current(), nullptr);
}

TEST(FiberTest, StackHeadroomDetectsUsage)
{
    Scheduler sched;
    Fiber &small = sched.spawn([]() {}, 32 * 1024);
    // Before running, stacks are untouched except the seed frame.
    EXPECT_GT(small.stackHeadroom(), 31 * 1024u);
    sched.run();

    Scheduler sched2;
    std::size_t headroom = 0;
    sched2.spawn([&headroom, &sched2]() {
        volatile char burn[8 * 1024];
        for (std::size_t i = 0; i < sizeof(burn); ++i)
            burn[i] = char(i);
        headroom = sched2.current()->stackHeadroom();
    }, 32 * 1024);
    sched2.run();
    EXPECT_LT(headroom, 24 * 1024u); // at least 8 KiB consumed
    EXPECT_GT(headroom, 1024u);      // but nowhere near exhausted
}

namespace
{

/** Burn ~1 KiB of stack per level until headroom drops below
 *  @p stop_below; the frame is touched after the recursive call so
 *  the compiler cannot turn this into a tail call. */
std::size_t
recurseUntilLow(Scheduler &sched, std::size_t stop_below, int &depth)
{
    volatile char frame[1024];
    frame[0] = char(depth);
    depth++;
    const std::size_t headroom = sched.current()->stackHeadroom();
    std::size_t result = headroom;
    if (headroom >= stop_below)
        result = recurseUntilLow(sched, stop_below, depth);
    frame[1] = frame[0]; // keep the frame live across the call
    return result;
}

} // anonymous namespace

TEST(FiberTest, StackHeadroomTracksDeepRecursion)
{
    Scheduler sched;
    int depth = 0;
    std::size_t shallow = 0;
    std::size_t deep = 0;
    sched.spawn([&]() {
        shallow = sched.current()->stackHeadroom();
        deep = recurseUntilLow(sched, 16 * 1024, depth);
    }, 256 * 1024);
    sched.run();
    // Recursion went meaningfully deep, headroom tracked it downward,
    // and the fiber unwound cleanly well before the guard page.
    EXPECT_GT(depth, 20);
    EXPECT_LT(deep, 16 * 1024u);
    EXPECT_LT(deep, shallow);
    EXPECT_GT(shallow, 128 * 1024u);
}

TEST(FiberDeathTest, StackOverflowHitsGuardPage)
{
    // Re-exec rather than fork for this death test: under TSan a
    // bare fork() can inherit a held runtime lock and deadlock the
    // child before it ever reaches the guard page.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    // A frame far larger than the stack must fault on the guard
    // page instead of silently corrupting neighbouring memory.
    EXPECT_DEATH(
        {
            Scheduler sched;
            sched.spawn([]() {
                volatile char big[64 * 1024];
                for (std::size_t i = 0; i < sizeof(big); ++i)
                    big[i] = char(i);
            }, 16 * 1024);
            sched.run();
        },
        "");
}

TEST(FiberBarrierTest, SynchronizesPhases)
{
    Scheduler sched;
    FiberBarrier barrier(sched, 3);
    std::vector<int> log;
    for (int f = 0; f < 3; ++f) {
        sched.spawn([&, f]() {
            for (int phase = 0; phase < 4; ++phase) {
                log.push_back(phase * 10 + f);
                barrier.arrive();
            }
        });
    }
    sched.run();
    ASSERT_EQ(log.size(), 12u);
    // Within each phase block of three entries, all share the phase.
    for (int phase = 0; phase < 4; ++phase) {
        for (int i = 0; i < 3; ++i)
            EXPECT_EQ(log[phase * 3 + i] / 10, phase);
    }
    EXPECT_EQ(barrier.generations(), 4u);
}

TEST(FiberBarrierTest, ExactlyOneLeaderPerGeneration)
{
    Scheduler sched;
    FiberBarrier barrier(sched, 4);
    int leaders = 0;
    for (int f = 0; f < 4; ++f) {
        sched.spawn([&]() {
            for (int phase = 0; phase < 5; ++phase) {
                if (barrier.arrive())
                    leaders++;
            }
        });
    }
    sched.run();
    EXPECT_EQ(leaders, 5);
}

} // anonymous namespace
} // namespace kmu
