# Trace determinism gate: run kmu_sim twice with tracing enabled on
# the same configuration and require (a) byte-identical binary trace
# files and (b) byte-identical kmu_trace JSON + summary-CSV exports.
# Trace records are stamped with sim ticks, never wall clock, so any
# diff here means a nondeterministic instrumentation site.
#
# Invoked by ctest as:
#   cmake -DKMU_SIM=<path> -DKMU_TRACE=<path> -DWORK_DIR=<dir>
#         -P trace_determinism_check.cmake

if(NOT KMU_SIM)
    message(FATAL_ERROR "pass -DKMU_SIM=<path to kmu_sim>")
endif()
if(NOT KMU_TRACE)
    message(FATAL_ERROR "pass -DKMU_TRACE=<path to kmu_trace>")
endif()
if(NOT WORK_DIR)
    set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

# A fig07-style point that exercises the software-queue path end to
# end: doorbells, descriptor bursts, PCIe TLPs, completions.
set(ARGS mechanism=swqueue cores=2 threads=10 latency_us=1
         measure_us=200 csv=1)

foreach(run a b)
    set(kmt ${WORK_DIR}/trace_det_${run}.kmt)
    execute_process(
        COMMAND ${KMU_SIM} ${ARGS} trace=${kmt}
        OUTPUT_FILE ${WORK_DIR}/trace_det_${run}.txt
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "kmu_sim run '${run}' failed (rc=${rc})")
    endif()
    execute_process(
        COMMAND ${KMU_TRACE} ${kmt} quiet=1
                json=${WORK_DIR}/trace_det_${run}.json
                csv=${WORK_DIR}/trace_det_${run}.csv
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "kmu_trace run '${run}' failed (rc=${rc})")
    endif()
endforeach()

foreach(ext kmt json csv txt)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/trace_det_a.${ext}
                ${WORK_DIR}/trace_det_b.${ext}
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR
            "trace output (.${ext}) differs between identical runs; "
            "compare trace_det_a.${ext} and trace_det_b.${ext} in "
            "${WORK_DIR}")
    endif()
endforeach()
message(STATUS "trace determinism check passed: traces and exports "
               "byte-identical")
