# Bad-input gate for the CLI tools: every malformed key=value pair
# must be rejected up front with a non-zero exit and a diagnostic
# naming the offending input — never a silent wrap (the historical
# failure: strtoull skips leading whitespace and accepts a sign, so
# "measure_us= -1" wrapped to ~1.8e19 µs and panicked deep inside the
# simulation instead of failing at the command line).
#
# Invoked by ctest as:
#   cmake -DKMU_SIM=<path> -DKMU_TRACE=<path> -DKMU_FAULTSTORM=<path>
#         -DABL_OUTAGE=<path> -P cli_badinput_check.cmake

foreach(tool KMU_SIM KMU_TRACE KMU_FAULTSTORM ABL_OUTAGE)
    if(NOT ${tool})
        message(FATAL_ERROR "pass -D${tool}=<path>")
    endif()
endforeach()

# reject(<diag-fragment> <tool> [args...]): the run must exit
# non-zero and mention the fragment on stderr.
function(reject fragment)
    execute_process(
        COMMAND ${ARGN}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(rc EQUAL 0)
        message(FATAL_ERROR
            "accepted bad input: ${ARGN} (expected failure)")
    endif()
    if(NOT err MATCHES "${fragment}")
        message(FATAL_ERROR
            "bad-input diagnostic for '${ARGN}' does not name the "
            "offending input '${fragment}': ${err}")
    endif()
endfunction()

# kmu_sim: trailing garbage, leading whitespace (the wrap bug),
# unknown keys, non-key=value arguments, bad enum values.
reject("lambda=0.5x"      ${KMU_SIM} "lambda=0.5x")
reject("lambda= -1"       ${KMU_SIM} "lambda= -1")
reject("measure_us= -1"   ${KMU_SIM} "measure_us= -1")
reject("measure_us=10us"  ${KMU_SIM} "measure_us=10us")
reject("no_such_key"      ${KMU_SIM} "no_such_key=1")
reject("noequals"         ${KMU_SIM} "noequals")
reject("mechanism=bogus"  ${KMU_SIM} "mechanism=bogus")

# kmu_faultstorm: bad rate lists and whitespace-wrapped integers.
reject("rates=0.1,x"      ${KMU_FAULTSTORM} "rates=0.1,x")
reject("seed= -1"         ${KMU_FAULTSTORM} "seed= -1")
reject("ops=25oo"         ${KMU_FAULTSTORM} "ops=25oo")

# kmu_trace: non-key=value junk after the trace path and missing
# files must both fail loudly.
reject("noequals"         ${KMU_TRACE} "in.kmt" "noequals")
reject("no-such-trace"    ${KMU_TRACE} "no-such-trace.kmt")

# abl_outage: the bench formerly used bare strtoull for these.
reject("ops=25oo"         ${ABL_OUTAGE} "ops=25oo")
reject("seed= -1"         ${ABL_OUTAGE} "seed= -1")
reject("fibers=0x"        ${ABL_OUTAGE} "fibers=0x")
reject("no_such_key"      ${ABL_OUTAGE} "no_such_key=1")

# Positive control: a well-formed invocation of the strictest parser
# still succeeds (guards against over-rejection).
execute_process(
    COMMAND ${KMU_SIM} mechanism=ondemand latency_us=1 measure_us=20
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "well-formed kmu_sim invocation rejected (rc=${rc}): ${err}")
endif()

message(STATUS "cli bad-input gate passed")
