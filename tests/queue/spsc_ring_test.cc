/**
 * @file
 * Unit and concurrency tests for the SPSC ring buffer.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.hh"
#include "common/thread_annotations.hh"
#include "queue/spsc_ring.hh"

namespace kmu
{
namespace
{

TEST(SpscRingTest, PushPopRoundTrip)
{
    SpscRing<int> ring(8);
    // Single-threaded driver: embodies both ring roles.
    RoleGuard producer(ring.producerRole);
    RoleGuard consumer(ring.consumerRole);
    EXPECT_TRUE(ring.empty());
    EXPECT_TRUE(ring.tryPush(42));
    EXPECT_EQ(ring.size(), 1u);
    int out = 0;
    EXPECT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, 42);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, CapacityIsDepthMinusOne)
{
    SpscRing<int> ring(8);
    // Single-threaded driver: embodies both ring roles.
    RoleGuard producer(ring.producerRole);
    RoleGuard consumer(ring.consumerRole);
    EXPECT_EQ(ring.capacity(), 7u);
    for (int i = 0; i < 7; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(7)); // full
    int out;
    EXPECT_TRUE(ring.tryPop(out));
    EXPECT_TRUE(ring.tryPush(7)); // room again
}

TEST(SpscRingTest, PopOnEmptyFails)
{
    SpscRing<int> ring(4);
    // Single-threaded driver: embodies both ring roles.
    RoleGuard producer(ring.producerRole);
    RoleGuard consumer(ring.consumerRole);
    int out = -1;
    EXPECT_FALSE(ring.tryPop(out));
    EXPECT_EQ(out, -1);
}

TEST(SpscRingTest, FifoOrderAcrossWraparound)
{
    SpscRing<int> ring(4);
    // Single-threaded driver: embodies both ring roles.
    RoleGuard producer(ring.producerRole);
    RoleGuard consumer(ring.consumerRole);
    int expect = 0;
    int produced = 0;
    for (int round = 0; round < 10; ++round) {
        while (ring.tryPush(produced))
            produced++;
        int out;
        while (ring.tryPop(out))
            EXPECT_EQ(out, expect++);
    }
    EXPECT_EQ(expect, produced);
    EXPECT_GT(produced, 20);
}

TEST(SpscRingTest, PopBurstHonorsMax)
{
    SpscRing<int> ring(16);
    // Single-threaded driver: embodies both ring roles.
    RoleGuard producer(ring.producerRole);
    RoleGuard consumer(ring.consumerRole);
    for (int i = 0; i < 10; ++i)
        ring.tryPush(i);
    std::vector<int> out;
    EXPECT_EQ(ring.popBurst(out, 8), 8u);
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(ring.popBurst(out, 8), 2u);
    EXPECT_EQ(out.size(), 10u);
    EXPECT_EQ(ring.popBurst(out, 8), 0u);
}

TEST(SpscRingTest, NonPowerOfTwoRejected)
{
    EXPECT_DEATH(SpscRing<int>(6), "power of two");
}

TEST(SpscRingTest, ThreadedProducerConsumer)
{
    SpscRing<std::uint64_t> ring(64);
    constexpr std::uint64_t total = 200000;

    std::thread producer([&]() {
        RoleGuard produce(ring.producerRole); // this thread: producer
        for (std::uint64_t i = 0; i < total;) {
            if (ring.tryPush(i))
                i++;
        }
    });

    RoleGuard consume(ring.consumerRole); // main thread: consumer
    std::uint64_t expect = 0;
    std::uint64_t sum = 0;
    while (expect < total) {
        std::uint64_t v;
        if (ring.tryPop(v)) {
            ASSERT_EQ(v, expect);
            sum += v;
            expect++;
        }
    }
    producer.join();
    EXPECT_EQ(sum, total * (total - 1) / 2);
}

TEST(SpscRingTest, ThreadedStressMultiWordPayload)
{
    // Heavier cross-thread exercise of the release/acquire edges
    // documented in spsc_ring.hh: a multi-word payload would tear if
    // a slot were visible before fully written (edge 1) or recycled
    // before fully read (edge 2). Bursty pacing (derived from mix64,
    // so deterministic) forces frequent full/empty transitions, the
    // regime where stale-index bugs surface. Run under
    // KMU_SANITIZE=thread this doubles as the TSan proof for the
    // ring.
    struct Payload
    {
        std::uint64_t seq;
        std::uint64_t a, b, c;
    };
    SpscRing<Payload> ring(8); // tiny: maximizes wraparound pressure
    constexpr std::uint64_t total = 100000;

    std::uint64_t attempts = 0; // producer-side push-call count
    std::thread producer([&]() {
        RoleGuard produce(ring.producerRole); // this thread: producer
        std::uint64_t i = 0;
        while (i < total) {
            // Bursts of 1..8 pushes, then give the consumer a window.
            const std::uint64_t burst = 1 + (mix64(i) & 7);
            for (std::uint64_t k = 0; k < burst && i < total;) {
                const Payload p{i, mix64(i), mix64(i ^ 0xabcdef),
                                ~i};
                ++attempts;
                if (ring.tryPush(p)) {
                    ++i;
                    ++k;
                }
            }
            std::this_thread::yield();
        }
    });

    RoleGuard consume(ring.consumerRole); // main thread: consumer
    std::uint64_t expect = 0;
    while (expect < total) {
        Payload v;
        if (!ring.tryPop(v)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(v.seq, expect);
        ASSERT_EQ(v.a, mix64(expect));
        ASSERT_EQ(v.b, mix64(expect ^ 0xabcdef));
        ASSERT_EQ(v.c, ~expect);
        ++expect;
    }
    producer.join();

    // Cumulative accounting reconciles exactly once both sides
    // quiesce. Conservation laws: every push call either entered the
    // ring or was rejected (attempts = pushes + rejects), and with
    // the ring drained every accepted element left it (pops = pushes).
    EXPECT_EQ(ring.totalPushes(), total);
    EXPECT_EQ(ring.totalPops(), total);
    EXPECT_EQ(ring.totalPushes() + ring.totalRejects(), attempts);
    EXPECT_EQ(ring.totalPops(), ring.totalPushes());
    // Tiny ring + bursty producer: backpressure must actually have
    // been exercised, otherwise this test proves nothing about the
    // full path.
    EXPECT_GT(ring.totalRejects(), 0u);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, RejectCounterCountsFullPushes)
{
    SpscRing<int> ring(4); // capacity 3
    // Single-threaded driver: embodies both ring roles.
    RoleGuard producer(ring.producerRole);
    RoleGuard consumer(ring.consumerRole);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    EXPECT_EQ(ring.totalRejects(), 0u);
    EXPECT_FALSE(ring.tryPush(3));
    EXPECT_FALSE(ring.tryPush(4));
    EXPECT_EQ(ring.totalRejects(), 2u);
    // A rejected push leaves the ring contents untouched.
    int out;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(ring.tryPush(3)); // room again: accepted, no reject
    EXPECT_EQ(ring.totalRejects(), 2u);
    EXPECT_EQ(ring.totalPushes(), 4u);
}

} // anonymous namespace
} // namespace kmu
