/**
 * @file
 * Protocol tests for the request/completion queue pair.
 */

#include <gtest/gtest.h>

#include "common/thread_annotations.hh"
#include "queue/sw_queue_pair.hh"

namespace kmu
{
namespace
{

TEST(SwQueuePairTest, SubmitAndFetchBurst)
{
    SwQueuePair qp(64);
    // Single-threaded driver: embodies both queue-pair roles.
    RoleGuard host(qp.hostRole);
    RoleGuard device(qp.deviceRole);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_TRUE(qp.submit({i * 64, i}));
    EXPECT_EQ(qp.pendingRequests(), 5u);

    std::vector<RequestDescriptor> burst;
    EXPECT_EQ(qp.fetchBurst(burst), 5u);
    EXPECT_EQ(burst[3].deviceAddr, 3u * 64);
    EXPECT_EQ(burst[3].hostAddr, 3u);
    EXPECT_EQ(qp.pendingRequests(), 0u);
}

TEST(SwQueuePairTest, BurstCapsAtEight)
{
    SwQueuePair qp(64);
    // Single-threaded driver: embodies both queue-pair roles.
    RoleGuard host(qp.hostRole);
    RoleGuard device(qp.deviceRole);
    for (std::uint64_t i = 0; i < 12; ++i)
        qp.submit({i, i});
    std::vector<RequestDescriptor> burst;
    EXPECT_EQ(qp.fetchBurst(burst), descriptorBurst);
    EXPECT_EQ(burst.size(), 8u);
    burst.clear();
    EXPECT_EQ(qp.fetchBurst(burst), 4u);
}

TEST(SwQueuePairTest, DoorbellStartsRequested)
{
    SwQueuePair qp(16);
    // Single-threaded driver: embodies both queue-pair roles.
    RoleGuard host(qp.hostRole);
    RoleGuard device(qp.deviceRole);
    EXPECT_TRUE(qp.doorbellRequested());
    EXPECT_TRUE(qp.consumeDoorbellRequest());
    // Consumed: second check fails until the device re-requests.
    EXPECT_FALSE(qp.consumeDoorbellRequest());
    qp.requestDoorbell();
    EXPECT_TRUE(qp.doorbellRequested());
    EXPECT_TRUE(qp.consumeDoorbellRequest());
}

TEST(SwQueuePairTest, CompletionFlow)
{
    SwQueuePair qp(16);
    // Single-threaded driver: embodies both queue-pair roles.
    RoleGuard host(qp.hostRole);
    RoleGuard device(qp.deviceRole);
    EXPECT_TRUE(qp.postCompletion({0xabc}));
    EXPECT_TRUE(qp.postCompletion({0xdef}));
    EXPECT_EQ(qp.pendingCompletions(), 2u);

    CompletionDescriptor c;
    EXPECT_TRUE(qp.reapCompletion(c));
    EXPECT_EQ(c.hostAddr, 0xabcu);
    EXPECT_TRUE(qp.reapCompletion(c));
    EXPECT_EQ(c.hostAddr, 0xdefu);
    EXPECT_FALSE(qp.reapCompletion(c));
}

TEST(SwQueuePairTest, SubmitFailsWhenFull)
{
    SwQueuePair qp(4); // capacity 3
    // Single-threaded driver: embodies both queue-pair roles.
    RoleGuard host(qp.hostRole);
    RoleGuard device(qp.deviceRole);
    EXPECT_TRUE(qp.submit({1, 1}));
    EXPECT_TRUE(qp.submit({2, 2}));
    EXPECT_TRUE(qp.submit({3, 3}));
    EXPECT_FALSE(qp.submit({4, 4}));
}

TEST(SwQueuePairTest, DescriptorWireFormat)
{
    // The 16-byte layout is part of the device-visible ABI.
    RequestDescriptor d{0x1122334455667788ull, 0x99aabbccddeeff00ull};
    EXPECT_EQ(sizeof(d), 16u);
    auto *bytes = reinterpret_cast<const std::uint8_t *>(&d);
    // Little-endian x86: first field serializes first.
    EXPECT_EQ(bytes[0], 0x88);
    EXPECT_EQ(bytes[8], 0x00);
}

} // anonymous namespace
} // namespace kmu
