/**
 * @file
 * Unit tests for common/logging.hh.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace kmu
{
namespace
{

TEST(LoggingTest, Csprintf)
{
    EXPECT_EQ(csprintf("plain"), "plain");
    EXPECT_EQ(csprintf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(csprintf("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(csprintf("%#x", 0xff), "0xff");
}

TEST(LoggingTest, CsprintfLongOutput)
{
    const std::string big(10000, 'x');
    EXPECT_EQ(csprintf("%s", big.c_str()).size(), big.size());
}

TEST(LoggingTest, LogLevelRoundTrip)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(saved);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, AssertMacroAborts)
{
    EXPECT_DEATH(kmuAssert(1 == 2, "impossible %s", "case"),
                 "impossible case");
}

TEST(LoggingTest, AssertMacroPassesQuietly)
{
    kmuAssert(2 + 2 == 4, "arithmetic broke");
    SUCCEED();
}

} // anonymous namespace
} // namespace kmu
