/**
 * @file
 * Unit and property tests for common/random.hh.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"

namespace kmu
{
namespace
{

TEST(RandomTest, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(RandomTest, ReseedRestartsSequence)
{
    Rng rng(7);
    const auto first = rng.next();
    rng.next();
    rng.seed(7);
    EXPECT_EQ(rng.next(), first);
}

TEST(RandomTest, Mix64IsStableAndSpreads)
{
    EXPECT_EQ(mix64(0x1234), mix64(0x1234));
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 1000u); // no collisions on a tiny domain
}

TEST(RandomTest, NextDoubleInUnitInterval)
{
    Rng rng(99);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RandomTest, NextBoolRespectsProbability)
{
    Rng rng(5);
    int trues = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        trues += rng.nextBool(0.25);
    EXPECT_NEAR(double(trues) / n, 0.25, 0.02);
}

class BoundedDraw : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BoundedDraw, StaysInBoundAndHitsAllResidues)
{
    const std::uint64_t bound = GetParam();
    Rng rng(bound * 7919 + 3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng.nextBounded(bound);
        EXPECT_LT(v, bound);
        seen.insert(v);
    }
    if (bound <= 16) {
        EXPECT_EQ(seen.size(), bound); // small bounds fully covered
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, BoundedDraw,
                         ::testing::Values(1, 2, 3, 10, 16, 1000,
                                           1ull << 40));

TEST(RandomTest, NextRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.nextRange(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo |= v == 10;
        saw_hi |= v == 13;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, RoughUniformity)
{
    Rng rng(2024);
    const int buckets = 16;
    const int n = 160000;
    int counts[16] = {};
    for (int i = 0; i < n; ++i)
        counts[rng.nextBounded(buckets)]++;
    for (int b = 0; b < buckets; ++b)
        EXPECT_NEAR(counts[b], n / buckets, n / buckets / 5);
}

} // anonymous namespace
} // namespace kmu
