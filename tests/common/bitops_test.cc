/**
 * @file
 * Unit tests for common/bitops.hh.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"

namespace kmu
{
namespace
{

TEST(BitopsTest, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 63));
    EXPECT_FALSE(isPowerOf2((1ull << 63) + 1));
}

TEST(BitopsTest, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(floorLog2(~0ull), 63u);
}

TEST(BitopsTest, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
}

TEST(BitopsTest, RoundUpDown)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
    EXPECT_EQ(roundDown(63, 64), 0u);
    EXPECT_EQ(roundDown(64, 64), 64u);
    EXPECT_EQ(roundDown(127, 64), 64u);
}

TEST(BitopsTest, DivCeil)
{
    EXPECT_EQ(divCeil(0, 7), 0u);
    EXPECT_EQ(divCeil(1, 7), 1u);
    EXPECT_EQ(divCeil(7, 7), 1u);
    EXPECT_EQ(divCeil(8, 7), 2u);
}

/** Property sweep: roundUp is the least multiple >= value. */
class RoundUpProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RoundUpProperty, LeastMultipleNotBelow)
{
    const std::uint64_t align = GetParam();
    for (std::uint64_t v = 0; v < 4 * align; ++v) {
        const std::uint64_t r = roundUp(v, align);
        EXPECT_GE(r, v);
        EXPECT_EQ(r % align, 0u);
        EXPECT_LT(r - v, align);
    }
}

INSTANTIATE_TEST_SUITE_P(Alignments, RoundUpProperty,
                         ::testing::Values(1, 2, 8, 64, 4096));

} // anonymous namespace
} // namespace kmu
