/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace kmu
{
namespace
{

TEST(StatsTest, CounterIncrements)
{
    StatGroup group("g");
    Counter c(group, "events", "test events");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatsTest, AverageTracksMoments)
{
    StatGroup group("g");
    Average a(group, "lat", "latency");
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(10.0);
    a.sample(20.0);
    a.sample(30.0);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
    EXPECT_EQ(a.samples(), 3u);
    a.reset();
    EXPECT_EQ(a.samples(), 0u);
    EXPECT_EQ(a.min(), 0.0);
}

TEST(StatsTest, HistogramBinsAndOutliers)
{
    StatGroup group("g");
    Histogram h(group, "h", "hist", 0.0, 10.0, 4); // [0,40) in 4 bins
    h.sample(-1.0);  // underflow
    h.sample(0.0);   // bin 0
    h.sample(9.99);  // bin 0
    h.sample(10.0);  // bin 1
    h.sample(39.9);  // bin 3
    h.sample(40.0);  // overflow
    h.sample(1000);  // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 0u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.samples(), 7u);
}

TEST(StatsTest, GroupPathsNest)
{
    StatGroup root("system");
    StatGroup child("core0", &root);
    StatGroup grand("lfb", &child);
    EXPECT_EQ(root.path(), "system");
    EXPECT_EQ(child.path(), "system.core0");
    EXPECT_EQ(grand.path(), "system.core0.lfb");
}

TEST(StatsTest, DumpContainsAllStats)
{
    StatGroup root("sys");
    StatGroup child("sub", &root);
    Counter a(root, "alpha", "first");
    Counter b(child, "beta", "second");
    a += 7;
    b += 9;

    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sys.alpha"), std::string::npos);
    EXPECT_NE(out.find("sys.sub.beta"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("# second"), std::string::npos);
}

TEST(StatsTest, ResetAllRecurses)
{
    StatGroup root("sys");
    StatGroup child("sub", &root);
    Counter a(root, "a", "");
    Counter b(child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatsTest, ChildUnregistersOnDestruction)
{
    StatGroup root("sys");
    {
        StatGroup child("gone", &root);
        Counter c(child, "x", "");
        c += 1;
    }
    std::ostringstream os;
    root.dump(os); // must not touch the destroyed child
    EXPECT_EQ(os.str().find("gone"), std::string::npos);
}

} // anonymous namespace
} // namespace kmu
