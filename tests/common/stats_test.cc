/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace kmu
{
namespace
{

TEST(StatsTest, CounterIncrements)
{
    StatGroup group("g");
    Counter c(group, "events", "test events");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatsTest, AverageTracksMoments)
{
    StatGroup group("g");
    Average a(group, "lat", "latency");
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(10.0);
    a.sample(20.0);
    a.sample(30.0);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
    EXPECT_EQ(a.samples(), 3u);
    a.reset();
    EXPECT_EQ(a.samples(), 0u);
    EXPECT_EQ(a.min(), 0.0);
}

TEST(StatsTest, HistogramBinsAndOutliers)
{
    StatGroup group("g");
    Histogram h(group, "h", "hist", 0.0, 10.0, 4); // [0,40) in 4 bins
    h.sample(-1.0);  // underflow
    h.sample(0.0);   // bin 0
    h.sample(9.99);  // bin 0
    h.sample(10.0);  // bin 1
    h.sample(39.9);  // bin 3
    h.sample(40.0);  // overflow
    h.sample(1000);  // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 0u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.samples(), 7u);
}

TEST(StatsTest, GroupPathsNest)
{
    StatGroup root("system");
    StatGroup child("core0", &root);
    StatGroup grand("lfb", &child);
    EXPECT_EQ(root.path(), "system");
    EXPECT_EQ(child.path(), "system.core0");
    EXPECT_EQ(grand.path(), "system.core0.lfb");
}

TEST(StatsTest, DumpContainsAllStats)
{
    StatGroup root("sys");
    StatGroup child("sub", &root);
    Counter a(root, "alpha", "first");
    Counter b(child, "beta", "second");
    a += 7;
    b += 9;

    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sys.alpha"), std::string::npos);
    EXPECT_NE(out.find("sys.sub.beta"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("# second"), std::string::npos);
}

TEST(StatsTest, ResetAllRecurses)
{
    StatGroup root("sys");
    StatGroup child("sub", &root);
    Counter a(root, "a", "");
    Counter b(child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatsTest, GaugeTracksSourceAndLatchesBaseline)
{
    StatGroup root("sys");
    std::uint64_t raw = 40;
    Gauge g(root, "g", "live value", [&raw] { return raw; });
    EXPECT_EQ(g.value(), 40u);
    EXPECT_EQ(g.render(), "40");

    // reset() latches the current raw value: dumps after resetAll()
    // report deltas, exactly like Counter.
    g.reset();
    EXPECT_EQ(g.value(), 0u);
    raw = 47;
    EXPECT_EQ(g.value(), 7u);
    EXPECT_EQ(g.render(), "7");
}

TEST(StatsTest, HistogramMergeFoldsCounts)
{
    StatGroup group("g");
    Histogram a(group, "a", "", 0.0, 10.0, 4);
    Histogram b(group, "b", "", 0.0, 10.0, 4);
    a.sample(5.0);   // bin 0
    a.sample(-1.0);  // underflow
    b.sample(15.0);  // bin 1
    b.sample(100.0); // overflow
    a.merge(b);
    EXPECT_EQ(a.samples(), 4u);
    EXPECT_EQ(a.binCount(0), 1u);
    EXPECT_EQ(a.binCount(1), 1u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), (5.0 - 1.0 + 15.0 + 100.0) / 4.0);
    // The merged-from histogram is untouched.
    EXPECT_EQ(b.samples(), 2u);
}

TEST(StatsTest, LogHistogramBucketBoundaries)
{
    StatGroup group("g");
    LogHistogram h(group, "lat", "", 1.0, 8); // [1, 256) + outliers
    EXPECT_EQ(h.buckets(), 8u);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(3), 8.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(7), 128.0);

    // A bucket's inclusive lower edge lands in that bucket; one ulp
    // under it lands one bucket down.
    h.sample(1.0);    // bucket 0
    h.sample(1.99);   // bucket 0
    h.sample(2.0);    // bucket 1
    h.sample(8.0);    // bucket 3
    h.sample(255.0);  // bucket 7
    h.sample(0.5);    // underflow
    h.sample(256.0);  // overflow (= lo * 2^buckets)
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(7), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.samples(), 7u);

    std::ostringstream os;
    os << h.render();
    EXPECT_NE(os.str().find("[<1|2 1 0 1 0 0 0 1|>1]"),
              std::string::npos);

    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(StatsTest, LogHistogramMergeRequiresSameShape)
{
    StatGroup group("g");
    LogHistogram a(group, "a", "", 1.0, 4);
    LogHistogram b(group, "b", "", 1.0, 4);
    a.sample(1.5);
    b.sample(3.0);
    b.sample(100.0); // overflow for 4 buckets ([1,16))
    a.merge(b);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_EQ(a.bucketCount(0), 1u);
    EXPECT_EQ(a.bucketCount(1), 1u);
    EXPECT_EQ(a.overflow(), 1u);
}

TEST(StatsTest, LogHistogramQuantileEmptyIsZero)
{
    StatGroup group("g");
    LogHistogram h(group, "lat", "", 1.0, 8);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(StatsTest, LogHistogramQuantileSingleSample)
{
    StatGroup group("g");
    LogHistogram h(group, "lat", "", 1.0, 8);
    h.sample(3.0); // bucket 1 spans [2, 4)
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
    // Out-of-range q clamps rather than walking off the buckets.
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(2.0), 4.0);
}

TEST(StatsTest, LogHistogramQuantileAllOneBucket)
{
    StatGroup group("g");
    LogHistogram h(group, "lat", "", 1.0, 8);
    for (int i = 0; i < 4; ++i)
        h.sample(5.0); // bucket 2 spans [4, 8)
    // Linear interpolation inside the one populated bucket.
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 6.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
}

TEST(StatsTest, LogHistogramQuantileSpansBuckets)
{
    StatGroup group("g");
    LogHistogram h(group, "lat", "", 1.0, 8);
    h.sample(1.5);  // bucket 0: [1, 2)
    h.sample(3.0);  // bucket 1: [2, 4)
    h.sample(3.5);  // bucket 1
    h.sample(10.0); // bucket 3: [8, 16)
    // Rank 1 of 4 fills bucket 0 exactly: its upper edge.
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.0);
    // Rank 2 of 4 is halfway into bucket 1.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
    // Rank 4 of 4 fills bucket 3: its upper edge.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 16.0);
}

TEST(StatsTest, LogHistogramQuantileOutlierClamps)
{
    StatGroup group("g");
    LogHistogram lo(group, "lo", "", 2.0, 4);
    lo.sample(0.5); // underflow
    lo.sample(1.0); // underflow
    EXPECT_DOUBLE_EQ(lo.quantile(0.5), 2.0);  // clamps to lower bound
    EXPECT_DOUBLE_EQ(lo.quantile(1.0), 2.0);

    LogHistogram hi(group, "hi", "", 1.0, 4); // covers [1, 16)
    hi.sample(3.0);
    hi.sample(100.0); // overflow
    hi.sample(200.0); // overflow
    // Ranks landing in the overflow clamp to its lower edge.
    EXPECT_DOUBLE_EQ(hi.quantile(1.0), 16.0);
    EXPECT_DOUBLE_EQ(hi.quantile(0.9), 16.0);
}

TEST(StatsTest, LogHistogramMergeThenQuantile)
{
    StatGroup group("g");
    LogHistogram a(group, "a", "", 1.0, 8);
    LogHistogram b(group, "b", "", 1.0, 8);
    LogHistogram all(group, "all", "", 1.0, 8);
    const double samples[] = {1.5, 3.0, 3.5, 6.0, 10.0, 24.0};
    for (std::size_t i = 0; i < 6; ++i) {
        (i < 3 ? a : b).sample(samples[i]);
        all.sample(samples[i]);
    }
    a.merge(b);
    EXPECT_EQ(a.samples(), all.samples());
    // Merged counts answer the same quantile queries as one
    // histogram fed every sample.
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q));
    EXPECT_DOUBLE_EQ(a.quantile(0.5), 4.0);
}

TEST(StatsDeathTest, LogHistogramMergeShapeMismatchPanics)
{
    StatGroup group("g");
    LogHistogram a(group, "a", "", 1.0, 4);
    LogHistogram c(group, "c", "", 2.0, 4);
    LogHistogram d(group, "d", "", 1.0, 5);
    EXPECT_DEATH(a.merge(c), "shape");
    EXPECT_DEATH(a.merge(d), "shape");
}

TEST(StatsTest, ChildUnregistersOnDestruction)
{
    StatGroup root("sys");
    {
        StatGroup child("gone", &root);
        Counter c(child, "x", "");
        c += 1;
    }
    std::ostringstream os;
    root.dump(os); // must not touch the destroyed child
    EXPECT_EQ(os.str().find("gone"), std::string::npos);
}

} // anonymous namespace
} // namespace kmu
