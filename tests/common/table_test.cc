/**
 * @file
 * Unit tests for the result-table emitters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/table.hh"

namespace kmu
{
namespace
{

Table
sampleTable()
{
    Table t("Fig X");
    t.setHeader({"threads", "1us", "4us"});
    t.addRow({"1", "0.125", "0.033"});
    t.addRow({"10", "1.064", "0.328"});
    return t;
}

TEST(TableTest, Dimensions)
{
    Table t = sampleTable();
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.row(1)[1], "1.064");
}

TEST(TableTest, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(1.0, 3), "1.000");
    EXPECT_EQ(Table::num(std::uint64_t(42)), "42");
}

TEST(TableTest, AsciiContainsAlignedCells)
{
    std::ostringstream os;
    sampleTable().printAscii(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== Fig X =="), std::string::npos);
    EXPECT_NE(out.find("threads"), std::string::npos);
    EXPECT_NE(out.find("1.064"), std::string::npos);
    EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TableTest, CsvPlain)
{
    std::ostringstream os;
    sampleTable().printCsv(os);
    EXPECT_EQ(os.str(),
              "threads,1us,4us\n1,0.125,0.033\n10,1.064,0.328\n");
}

TEST(TableTest, CsvEscaping)
{
    Table t("esc");
    t.setHeader({"a,b", "c\"d"});
    t.addRow({"x\ny", "plain"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "\"a,b\",\"c\"\"d\"\n\"x\ny\",plain\n");
}

TEST(TableTest, WriteCsvFile)
{
    const std::string path = ::testing::TempDir() + "kmu_table.csv";
    sampleTable().writeCsvFile(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "threads,1us,4us");
    std::remove(path.c_str());
}

TEST(TableTest, NumCanonicalizesNonFinite)
{
    // printf would emit "nan"/"-nan"/"inf" with libc-specific sign
    // handling; the emitter canonicalizes so CSVs stay byte-stable
    // across toolchains.
    EXPECT_EQ(Table::num(std::numeric_limits<double>::quiet_NaN()),
              "nan");
    EXPECT_EQ(Table::num(-std::numeric_limits<double>::quiet_NaN()),
              "nan");
    EXPECT_EQ(Table::num(std::numeric_limits<double>::infinity()),
              "inf");
    EXPECT_EQ(Table::num(-std::numeric_limits<double>::infinity()),
              "-inf");
}

TEST(TableTest, NumPrecisionAndHugeIntegers)
{
    EXPECT_EQ(Table::num(2.0 / 3.0, 4), "0.6667");
    EXPECT_EQ(Table::num(1.0, 0), "1");
    EXPECT_EQ(Table::num(-0.125, 2), "-0.12"); // round-to-even
    // Tick counts use the full u64 range (ps ticks overflow u32 in
    // milliseconds); the integer overload must not round-trip
    // through double.
    EXPECT_EQ(Table::num(std::uint64_t(18446744073709551615ull)),
              "18446744073709551615");
    EXPECT_EQ(Table::num(std::uint64_t(0)), "0");
}

TEST(TableTest, CsvQuotesCarriageReturn)
{
    Table t("cr");
    t.setHeader({"a", "b"});
    t.addRow({"x\ry", "plain"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x\ry\",plain\n");
}

TEST(TableTest, NonFiniteCellsReachCsvCanonically)
{
    Table t("nf");
    t.setHeader({"v"});
    t.addRow({Table::num(std::numeric_limits<double>::quiet_NaN())});
    t.addRow({Table::num(std::numeric_limits<double>::infinity())});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "v\nnan\ninf\n");
}

TEST(TableDeathTest, RowArityMismatchPanics)
{
    Table t("bad");
    t.setHeader({"one", "two"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

} // anonymous namespace
} // namespace kmu
