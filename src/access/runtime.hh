/**
 * @file
 * Host runtime: one-stop assembly of device image, fiber scheduler,
 * emulated device, and access engine.
 *
 * This is the library façade a downstream application uses:
 *
 *   kmu::Runtime rt(std::move(image), {.mechanism = Mechanism::Prefetch});
 *   for (int t = 0; t < 10; ++t)
 *       rt.spawnWorker([&](kmu::AccessEngine &dev) { ... });
 *   rt.run();
 *
 * With Mechanism::OnDemand or Prefetch, the device image is a plain
 * cacheable host-memory region (standing in for an MMIO BAR mapped
 * cacheable via MTRRs, as the paper does). With Mechanism::SwQueue,
 * an EmulatedDevice thread services the queues with the configured
 * emulated latency.
 */

#ifndef KMU_ACCESS_RUNTIME_HH
#define KMU_ACCESS_RUNTIME_HH

#include <chrono>
#include <memory>
#include <vector>

#include "access/access_engine.hh"
#include "common/stats.hh"
#include "common/thread_annotations.hh"
#include "device/emulated_device.hh"
#include "fault/recovery.hh"
#include "health/health.hh"
#include "topo/topology.hh"
#include "ult/scheduler.hh"

namespace kmu
{

class Runtime
{
  public:
    struct Config
    {
        Mechanism mechanism = Mechanism::Prefetch;

        /** Emulated device latency (SwQueue mechanism only). */
        std::chrono::nanoseconds deviceLatency{1000};

        /** Queue-pair ring depth (SwQueue mechanism only). */
        std::size_t queueDepth = 256;

        /**
         * Device shards (SwQueue mechanism only): the engine gets
         * one queue pair per shard and routes each line address to
         * its shard by @p interleave (src/topo). 1 = the paper's
         * single-device platform.
         */
        std::uint32_t shards = 1;
        topo::Interleave interleave = topo::Interleave::CacheLine;

        /**
         * SwQueue only: run the emulated device in manual-pump mode
         * (no device thread; the engine pumps it from its wait
         * loops). The whole runtime becomes single-threaded and —
         * with a fixed seed and fault plan — bit-for-bit
         * reproducible, which is what fault campaigns need.
         */
        bool deterministicDevice = false;

        /** Watchdog / bounded-retry parameters for all engines. */
        fault::RetryPolicy retry{};

        /** Degradation governor parameters (shared EWMA). */
        fault::DegradationGovernor::Config governor{};

        /**
         * Shard-health control plane (SwQueue mechanism only). With
         * mode != Off the runtime owns a health::RecoveryController
         * and hands it to the engine: per-shard signals are sampled
         * every health.epochPolls poll ticks, sick shards degrade /
         * quarantine, and (in Full mode) quarantined shards fail
         * over or deadline-fail their requests. Off keeps every
         * engine code path byte-identical to a controller-free
         * build.
         */
        health::Config health{};
    };

    /**
     * @param device_image the dataset "stored on the device";
     *                     engines bounds-check against its size.
     */
    Runtime(std::vector<std::uint8_t> device_image, Config config);
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** Worker body: application code holding the engine. */
    using Worker = std::function<void(AccessEngine &)>;

    /** Spawn one user-level worker thread (before run()). */
    void spawnWorker(Worker worker,
                     std::size_t stack_bytes = Fiber::defaultStackBytes);

    /** Run all workers to completion (starts/stops the device). */
    void run();

    /**
     * The host-thread role: run() embodies it for the calling
     * thread. Every engine host-side queue operation (submit, reap,
     * doorbell consume) happens on this thread, inside worker fibers
     * multiplexed by the scheduler — fibers migrate between blocks
     * but never leave the thread, so the role is held for the whole
     * run. The device role lives on the EmulatedDevice service
     * thread (or is taken per-pump-pass in manual mode).
     */
    ThreadRole hostRole;

    AccessEngine &engine() { return *accessEngine; }
    Scheduler &scheduler() { return sched; }

    /** Device image size in bytes. */
    std::size_t deviceBytes() const { return imageBytes; }

    /** Read-only host view of the device image (for verification;
     *  a real device would not offer this). */
    const std::uint8_t *deviceImage() const;

    /** The emulated device (SwQueue mechanism only, else nullptr);
     *  exposed so callers can enable replay checking before run(). */
    EmulatedDevice *emulatedDevice() { return device.get(); }

    /** First queue-pair index of this runtime's engine (SwQueue
     *  only; shard s of a sharded runtime owns index pairIndex + s). */
    std::size_t queuePairIndex() const { return pairIndex; }

    /** Shared degradation governor (for campaign reporting). */
    const fault::DegradationGovernor &degradation() const
    {
        return governor;
    }

    /** Health controller (nullptr unless Config::health.mode != Off
     *  and the mechanism is SwQueue). */
    health::RecoveryController *healthController()
    {
        return healthCtrl.get();
    }

    /**
     * Pull-based runtime statistics: watchdog re-issue counters and
     * governor / health-controller flip counters, bridged as Gauges
     * so campaign drivers can dump or diff them uniformly. Valid
     * from construction; values read live from their owners.
     */
    StatGroup &stats() { return statGroup; }

  private:
    Config cfg;
    Scheduler sched;
    std::size_t imageBytes;
    fault::DegradationGovernor governor;

    /** OnDemand/Prefetch: the image lives here as the mapped BAR. */
    std::vector<std::uint8_t> mappedRegion;

    /** SwQueue: the image lives inside the emulated device. */
    std::unique_ptr<EmulatedDevice> device;
    std::size_t pairIndex = 0;

    std::unique_ptr<health::RecoveryController> healthCtrl;
    std::unique_ptr<AccessEngine> accessEngine;

    StatGroup statGroup{"runtime"};
    std::vector<std::unique_ptr<Gauge>> gauges;

    /** Register the Gauge bridges (after engine construction). */
    void registerGauges();
};

} // namespace kmu

#endif // KMU_ACCESS_RUNTIME_HH
