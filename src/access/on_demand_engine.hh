/**
 * @file
 * On-demand access engine: the unmodified-software baseline.
 *
 * Reads are plain loads against the mapped device region. Latency
 * hiding is left entirely to the core's out-of-order machinery —
 * which, per the paper's Fig. 2, is hopeless for microsecond
 * devices. On a real host the mapped region is DRAM, so this engine
 * doubles as the paper's "DRAM baseline".
 */

#ifndef KMU_ACCESS_ON_DEMAND_ENGINE_HH
#define KMU_ACCESS_ON_DEMAND_ENGINE_HH

#include "access/access_engine.hh"
#include "fault/recovery.hh"

namespace kmu
{

class OnDemandEngine : public AccessEngine
{
  public:
    /**
     * @param base   start of the mapped device region.
     * @param bytes  size of the region (bounds-checked accesses).
     * @param gov    shared degradation governor (optional; on-demand
     *               has no cheaper mode to fall back to, but its
     *               retry pressure still feeds the shared EWMA).
     * @param policy bounded-retry parameters for detected read
     *               errors (fault::FaultSite::MappedReadError).
     */
    OnDemandEngine(std::uint8_t *base, std::size_t bytes,
                   fault::DegradationGovernor *gov = nullptr,
                   fault::RetryPolicy policy = {});

    std::uint64_t read64(Addr addr) override;
    void readBatch(const Addr *addrs, std::size_t n,
                   std::uint64_t *out) override;
    void readLines(const Addr *addrs, std::size_t n, void *out) override;
    void writeLine(Addr addr, const void *line) override;
    void write64(Addr addr, std::uint64_t value) override;

    Mechanism mechanism() const override { return Mechanism::OnDemand; }

  private:
    /** One bounded-retry mapped access; @return retry count. */
    std::uint32_t surviveMappedRead();

    std::uint8_t *base;
    std::size_t bytes;
    fault::DegradationGovernor *governor;
    fault::RetryPolicy retryPolicy;
};

} // namespace kmu

#endif // KMU_ACCESS_ON_DEMAND_ENGINE_HH
