/**
 * @file
 * Prefetch + user-level-yield access engine (the paper's Listing 1).
 *
 * Every read issues a non-binding prefetcht0 for the target line,
 * yields the calling fiber (round robin), and performs the demand
 * load on resumption — by which time the line should be in the L1.
 * Batched reads issue all prefetches before the single yield, which
 * is exactly how the paper builds its MLP variants ("a single
 * context switch after issuing multiple prefetches").
 */

#ifndef KMU_ACCESS_PREFETCH_ENGINE_HH
#define KMU_ACCESS_PREFETCH_ENGINE_HH

#include "access/access_engine.hh"
#include "fault/recovery.hh"
#include "ult/scheduler.hh"

namespace kmu
{

class PrefetchEngine : public AccessEngine
{
  public:
    /**
     * @param base      start of the mapped (cacheable) device region.
     * @param bytes     size of the region.
     * @param scheduler fiber scheduler to yield into.
     * @param gov       shared degradation governor (optional). While
     *                  it reports Degraded, reads skip the
     *                  prefetch+yield pair and run on-demand — under
     *                  sustained fault pressure the prefetched line
     *                  rarely survives to the demand load, so the
     *                  yield is pure overhead.
     * @param policy    bounded-retry parameters for detected read
     *                  errors (fault::FaultSite::MappedReadError).
     */
    PrefetchEngine(std::uint8_t *base, std::size_t bytes,
                   Scheduler &scheduler,
                   fault::DegradationGovernor *gov = nullptr,
                   fault::RetryPolicy policy = {});

    std::uint64_t read64(Addr addr) override;
    void readBatch(const Addr *addrs, std::size_t n,
                   std::uint64_t *out) override;
    void readLines(const Addr *addrs, std::size_t n, void *out) override;

    /** Plain stores: posted by the store buffer, so no yield is
     *  needed — exactly why the paper expects writes to hide. */
    void writeLine(Addr addr, const void *line) override;
    void write64(Addr addr, std::uint64_t value) override;

    Mechanism mechanism() const override { return Mechanism::Prefetch; }

    /** Yields performed (== dev_access calls + batch calls). */
    std::uint64_t yields() const { return yieldCount; }

  private:
    /** Issue the non-binding prefetch for one address. */
    void prefetch(Addr addr) const;

    /** True while the governor has the engine in on-demand mode. */
    bool degradedNow() const;

    /** Bounded retry of a faulted mapped read; @return retries. */
    std::uint32_t surviveMappedRead(Addr addr, bool degraded);

    std::uint8_t *base;
    std::size_t bytes;
    Scheduler &sched;
    fault::DegradationGovernor *governor;
    fault::RetryPolicy retryPolicy;
    std::uint64_t yieldCount = 0;
};

} // namespace kmu

#endif // KMU_ACCESS_PREFETCH_ENGINE_HH
