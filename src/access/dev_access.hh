/**
 * @file
 * Listing 1 of the paper, verbatim as an inline function.
 *
 * The prefetch-based device access: enqueue the address in the
 * hardware request queue with a non-binding prefetch, context-switch
 * to another user-level thread while the line is fetched, and issue
 * the demand load afterwards — ideally hitting in the L1.
 *
 * Usable against any cacheable mapping (in this repository, host
 * DRAM standing in for a memory-mapped device BAR).
 */

#ifndef KMU_ACCESS_DEV_ACCESS_HH
#define KMU_ACCESS_DEV_ACCESS_HH

#include <cstdint>

#include "ult/scheduler.hh"

namespace kmu
{

/**
 * Prefetch-based device read of one 64-bit word (Listing 1):
 *
 *   int dev_access(uint64 *addr) {
 *       asm volatile("prefetcht0 %0" :: "m"(*addr));
 *       userctx_yield();
 *       return *addr;
 *   }
 */
inline std::uint64_t
dev_access(const std::uint64_t *addr)
{
#if defined(__x86_64__)
    asm volatile("prefetcht0 %0" : : "m"(*addr));
#else
    __builtin_prefetch(addr, 0 /* read */, 3 /* t0: all levels */);
#endif
    thisFiber::yield();
    return *addr;
}

} // namespace kmu

#endif // KMU_ACCESS_DEV_ACCESS_HH
