#include "access/access_engine.hh"

#include "common/logging.hh"

namespace kmu
{

const char *
mechanismName(Mechanism mech)
{
    switch (mech) {
      case Mechanism::OnDemand:
        return "on-demand";
      case Mechanism::Prefetch:
        return "prefetch";
      case Mechanism::SwQueue:
        return "sw-queue";
    }
    panic("unknown mechanism %d", int(mech));
}

} // namespace kmu
