/**
 * @file
 * Engine-side trace helpers shared by the three access mechanisms.
 *
 * Every engine read becomes one AccessRead span on the calling
 * fiber's lane — issue to data-in-hand, covering any yields, blocks,
 * retries, and watchdog re-issues in between — and every posted
 * write an AccessWrite instant. A fiber has at most one read in
 * flight (engines are synchronous per fiber), so the lane doubles as
 * the span id. The lane lookup itself is gated on trace::active() to
 * keep the disabled path at a single branch.
 */

#ifndef KMU_ACCESS_ACCESS_TRACE_HH
#define KMU_ACCESS_ACCESS_TRACE_HH

#include "trace/trace.hh"
#include "ult/scheduler.hh"

namespace kmu
{
namespace access_trace
{

/** Open the calling fiber's read span (@p lines in the batch). */
inline void
readBegin(std::uint32_t lines)
{
    if (trace::active()) {
        const std::uint16_t lane = thisFiber::traceLane();
        trace::begin(trace::Kind::AccessRead, lane, lane, lines);
    }
}

/** Close the calling fiber's read span. */
inline void
readEnd()
{
    if (trace::active()) {
        const std::uint16_t lane = thisFiber::traceLane();
        trace::end(trace::Kind::AccessRead, lane, lane);
    }
}

/** Mark a posted write of @p line leaving the engine. */
inline void
writeMark(Addr line)
{
    if (trace::active()) {
        trace::instant(trace::Kind::AccessWrite, line,
                       thisFiber::traceLane());
    }
}

} // namespace access_trace
} // namespace kmu

#endif // KMU_ACCESS_ACCESS_TRACE_HH
