/**
 * @file
 * Unified device-access interface for the host runtime.
 *
 * An AccessEngine hides one of the paper's three access mechanisms
 * behind a synchronous, fiber-friendly read API: the calling fiber
 * observes a blocking read, while the engine overlaps the latency
 * with other fibers' work (prefetch + yield, or software queues) or
 * not at all (on-demand baseline). Applications written against this
 * interface switch mechanisms by construction flag only — the
 * "minimal source changes" property the paper's library targets.
 */

#ifndef KMU_ACCESS_ACCESS_ENGINE_HH
#define KMU_ACCESS_ACCESS_ENGINE_HH

#include <cstdint>

#include "common/types.hh"

namespace kmu
{

/** The device-access mechanisms studied in the paper. */
enum class Mechanism
{
    OnDemand, //!< plain loads; hardware queues only (Section V-A)
    Prefetch, //!< prefetch + user-level yield + load (Section V-B)
    SwQueue   //!< application-managed software queues (Section V-C)
};

/** Human-readable mechanism name (for tables and logs). */
const char *mechanismName(Mechanism mech);

/**
 * Outcome of a bounded-latency access. Only the software-queue
 * engine under a Full health controller ever reports
 * DeadlineExceeded: a request stuck on a quarantined shard past its
 * per-request deadline is failed back to the workload instead of
 * hanging it (the error is the bound).
 */
enum class AccessStatus
{
    Ok,
    DeadlineExceeded
};

class AccessEngine
{
  public:
    virtual ~AccessEngine() = default;

    /** Largest batch readBatch()/readLines() accepts. */
    static constexpr std::size_t maxBatch = 16;

    /**
     * Read the 64-bit word at device address @p addr (must be
     * 8-byte aligned). Synchronous to the calling fiber.
     */
    virtual std::uint64_t read64(Addr addr) = 0;

    /**
     * Deadline-aware variant of read64(): under a Full health
     * controller a stuck request returns DeadlineExceeded (with
     * @p out unspecified) instead of blocking forever. Engines
     * without a deadline path — and any engine with health off —
     * always return Ok, so workloads can use this unconditionally.
     */
    virtual AccessStatus
    tryRead64(Addr addr, std::uint64_t &out)
    {
        out = read64(addr);
        return AccessStatus::Ok;
    }

    /**
     * Read @p n independent 64-bit words in one batch (the paper's
     * MLP experiments): all requests are issued before the fiber
     * waits, so their latencies overlap each other.
     */
    virtual void readBatch(const Addr *addrs, std::size_t n,
                           std::uint64_t *out) = 0;

    /**
     * Read @p n full cache lines into @p out (64 bytes each,
     * concatenated). Line-aligned addresses required.
     */
    virtual void readLines(const Addr *addrs, std::size_t n,
                           void *out) = 0;

    /**
     * Write one full cache line (the paper's future-work write
     * path). Writes are *posted*: the call returns as soon as the
     * store is on its way, because — as the paper's conclusion
     * notes — writes have no return value and do not block the
     * reorder buffer. Ordering guarantee: a later read through the
     * same engine observes the write.
     */
    virtual void writeLine(Addr addr, const void *line) = 0;

    /**
     * Write one 64-bit word. On the memory-mapped mechanisms this
     * is a plain store; on the software-queue mechanism it must
     * read-modify-write the containing line (the programmability
     * cost of non-coherent queue interfaces that Section V-C of the
     * paper warns about).
     */
    virtual void write64(Addr addr, std::uint64_t value) = 0;

    /** Which mechanism this engine implements. */
    virtual Mechanism mechanism() const = 0;

    /** Total read requests issued through this engine. */
    std::uint64_t accesses() const { return accessCount; }

    /** Total line writes issued through this engine. */
    std::uint64_t writes() const { return writeCount; }

    /**
     * Fault-survival bookkeeping, uniform across mechanisms so
     * campaign drivers report all engines the same way. All zero
     * unless a fault plan is active and faults actually landed.
     */
    struct RecoveryCounters
    {
        std::uint64_t retries = 0;           //!< accesses re-issued
        std::uint64_t timeouts = 0;          //!< watchdog expirations
        std::uint64_t crcFailures = 0;       //!< payload CRC mismatches
        std::uint64_t staleCompletions = 0;  //!< filtered stale/dup
        std::uint64_t degradedAccesses = 0;  //!< served degraded
        std::uint64_t recoveryDoorbells = 0; //!< watchdog doorbells
        std::uint64_t deadlineErrors = 0;    //!< failed at deadline
        std::uint64_t failovers = 0;         //!< re-routed off-shard
    };

    const RecoveryCounters &recovery() const { return recoveryStats; }

  protected:
    std::uint64_t accessCount = 0;
    std::uint64_t writeCount = 0;
    RecoveryCounters recoveryStats;
};

} // namespace kmu

#endif // KMU_ACCESS_ACCESS_ENGINE_HH
