#include "access/prefetch_engine.hh"

#include <cstring>

#include "access/access_trace.hh"
#include "common/logging.hh"
#include "fault/fault_plan.hh"

namespace kmu
{

PrefetchEngine::PrefetchEngine(std::uint8_t *region_base,
                               std::size_t region_bytes,
                               Scheduler &scheduler,
                               fault::DegradationGovernor *gov,
                               fault::RetryPolicy policy)
    : base(region_base), bytes(region_bytes), sched(scheduler),
      governor(gov), retryPolicy(policy)
{
    kmuAssert(base != nullptr, "prefetch engine needs a region");
}

bool
PrefetchEngine::degradedNow() const
{
    return governor != nullptr && governor->degraded();
}

std::uint32_t
PrefetchEngine::surviveMappedRead(Addr addr, bool degraded)
{
    // Detected bad mapped read: re-arm (prefetch + yield, unless the
    // governor already dropped us to on-demand) and re-issue,
    // bounded by the retry policy.
    std::uint32_t attempts = 0;
    while (fault::fire(fault::FaultSite::MappedReadError)) {
        attempts++;
        recoveryStats.retries++;
        kmuAssert(attempts <= retryPolicy.maxRetries,
                  "mapped read failed %u consecutive times", attempts);
        if (!degraded) {
            prefetch(addr);
            yieldCount++;
            sched.yield();
        }
    }
    if (governor)
        governor->sample(attempts > 0);
    return attempts;
}

void
PrefetchEngine::prefetch(Addr addr) const
{
    const std::uint8_t *p = base + addr;
#if defined(__x86_64__)
    asm volatile("prefetcht0 %0" : : "m"(*p));
#else
    __builtin_prefetch(p, 0, 3);
#endif
}

std::uint64_t
PrefetchEngine::read64(Addr addr)
{
    kmuAssert(addr + 8 <= bytes, "read64 out of bounds: %#llx",
              (unsigned long long)addr);
    accessCount++;
    access_trace::readBegin(1);
    const bool degraded = degradedNow();
    if (degraded) {
        recoveryStats.degradedAccesses++;
    } else {
        prefetch(addr);
        yieldCount++;
        sched.yield();
    }
    surviveMappedRead(addr, degraded);
    std::uint64_t value;
    std::memcpy(&value, base + addr, sizeof(value));
    access_trace::readEnd();
    return value;
}

void
PrefetchEngine::readBatch(const Addr *addrs, std::size_t n,
                          std::uint64_t *out)
{
    kmuAssert(n <= maxBatch, "batch of %zu exceeds maxBatch", n);
    access_trace::readBegin(std::uint32_t(n));
    const bool degraded = degradedNow();
    if (degraded) {
        recoveryStats.degradedAccesses += n;
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            kmuAssert(addrs[i] + 8 <= bytes, "readBatch out of bounds");
            prefetch(addrs[i]);
        }
        yieldCount++;
        sched.yield();
    }
    accessCount += n;
    for (std::size_t i = 0; i < n; ++i) {
        kmuAssert(addrs[i] + 8 <= bytes, "readBatch out of bounds");
        surviveMappedRead(addrs[i], degraded);
        std::memcpy(&out[i], base + addrs[i], sizeof(out[0]));
    }
    access_trace::readEnd();
}

void
PrefetchEngine::readLines(const Addr *addrs, std::size_t n, void *out)
{
    kmuAssert(n <= maxBatch, "batch of %zu exceeds maxBatch", n);
    access_trace::readBegin(std::uint32_t(n));
    auto *dst = static_cast<std::uint8_t *>(out);
    const bool degraded = degradedNow();
    if (degraded) {
        recoveryStats.degradedAccesses += n;
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            kmuAssert(isLineAligned(addrs[i]), "readLines needs "
                      "aligned addresses");
            kmuAssert(addrs[i] + cacheLineSize <= bytes,
                      "readLines out of bounds");
            prefetch(addrs[i]);
        }
        yieldCount++;
        sched.yield();
    }
    accessCount += n;
    for (std::size_t i = 0; i < n; ++i) {
        kmuAssert(isLineAligned(addrs[i]), "readLines needs aligned "
                  "addresses");
        kmuAssert(addrs[i] + cacheLineSize <= bytes,
                  "readLines out of bounds");
        surviveMappedRead(addrs[i], degraded);
        std::memcpy(dst + i * cacheLineSize, base + addrs[i],
                    cacheLineSize);
    }
    access_trace::readEnd();
}

void
PrefetchEngine::writeLine(Addr addr, const void *line)
{
    kmuAssert(isLineAligned(addr), "writeLine needs alignment");
    kmuAssert(addr + cacheLineSize <= bytes, "writeLine out of bounds");
    writeCount++;
    access_trace::writeMark(addr);
    std::memcpy(base + addr, line, cacheLineSize);
}

void
PrefetchEngine::write64(Addr addr, std::uint64_t value)
{
    kmuAssert(addr + 8 <= bytes, "write64 out of bounds");
    writeCount++;
    std::memcpy(base + addr, &value, sizeof(value));
}

} // namespace kmu
