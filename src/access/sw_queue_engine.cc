#include "access/sw_queue_engine.hh"

#include <algorithm>
#include <cstring>
#include <thread>

#include "access/access_trace.hh"
#include "common/crc.hh"
#include "common/logging.hh"
#include "common/thread_annotations.hh"

namespace kmu
{

SwQueueEngine::SwQueueEngine(Scheduler &scheduler, EmulatedDevice &device,
                             std::size_t pair,
                             fault::DegradationGovernor *gov,
                             fault::RetryPolicy policy)
    : SwQueueEngine(scheduler, device, std::vector<std::size_t>{pair},
                    topo::Interleave::CacheLine, gov, policy)
{
}

SwQueueEngine::SwQueueEngine(Scheduler &scheduler, EmulatedDevice &device,
                             std::vector<std::size_t> pair_list,
                             topo::Interleave interleave,
                             fault::DegradationGovernor *gov,
                             fault::RetryPolicy policy,
                             health::RecoveryController *ctrl)
    : sched(scheduler), dev(device), pairIndices(std::move(pair_list)),
      governor(gov), backoff(policy), controller(ctrl)
{
    kmuAssert(!pairIndices.empty() &&
                  pairIndices.size() <= topo::maxShards,
              "need 1..%u queue pairs", topo::maxShards);
    topoCfg.shards = std::uint32_t(pairIndices.size());
    topoCfg.interleave = interleave;
    pairs.reserve(pairIndices.size());
    for (std::size_t idx : pairIndices)
        pairs.push_back(&device.queuePair(idx));
    if (controller != nullptr) {
        kmuAssert(controller->shards() == topoCfg.shards,
                  "controller built for %u shards, engine has %u",
                  controller->shards(), topoCfg.shards);
        shardSignals.resize(topoCfg.shards);
        epochBase.resize(topoCfg.shards);
        shardLive.assign(topoCfg.shards, 0);
        oldestScratch.assign(topoCfg.shards, 0);
        nextEpochAt = controller->config().epochPolls;
    }

    sched.setIdleHandler([this]() { return pollCompletions(); });
    staging.reserve(stagingSlots);
    for (std::size_t i = 0; i < stagingSlots; ++i) {
        staging.push_back(std::make_unique<StagingBuffer>());
        const Addr key = reinterpret_cast<std::uintptr_t>(
            &staging.back()->line[0]);
        stagingIndex.emplace(key, i);
        freeStaging.push_back(i);
    }
}

SwQueueEngine::FiberIo &
SwQueueEngine::ioState()
{
    Fiber *self = sched.current();
    kmuAssert(self != nullptr, "SwQueueEngine used outside a fiber");

    auto it = ioStates.find(self);
    if (it == ioStates.end()) {
        auto io = std::make_unique<FiberIo>();
        io->fiber = self;
        for (std::size_t i = 0; i < maxBatch; ++i)
            io->buffers[i] = leaseBuffer(*io, i);
        ioList.push_back(io.get());
        it = ioStates.emplace(self, std::move(io)).first;
    }
    return *it->second;
}

std::uint8_t *
SwQueueEngine::leaseBuffer(FiberIo &io, std::size_t slot)
{
    std::uint8_t *buf;
    if (!freeBuffers.empty()) {
        buf = freeBuffers.back();
        freeBuffers.pop_back();
    } else {
        bufferPool.push_back(std::make_unique<LineBuffer>());
        buf = &bufferPool.back()->line[0];
        const Addr key = reinterpret_cast<std::uintptr_t>(buf);
        // The generation tag lives in hostAddr bits 48..55, so
        // buffer addresses must leave them clear.
        kmuAssert(RequestDescriptor::hostPtr(key) == key,
                  "response buffer address uses tag bits: %#llx",
                  (unsigned long long)key);
    }
    bufStates[reinterpret_cast<Addr>(buf)] = BufState{&io, slot, 0};
    return buf;
}

void
SwQueueEngine::quarantineBufferIfLive(FiberIo &io, std::size_t slot)
{
    const Addr key = reinterpret_cast<Addr>(io.buffers[slot]);
    auto it = bufStates.find(key);
    kmuAssert(it != bufStates.end(), "slot buffer not leased");
    if (it->second.outstanding == 0)
        return; // every attempt answered: the buffer is idle
    // A twin naming this buffer is still queued somewhere; its DMA
    // will land whenever that ring drains. Park the buffer until
    // then and move the slot to a fresh lease.
    it->second.io = nullptr;
    io.buffers[slot] = leaseBuffer(io, slot);
}

void
SwQueueEngine::deviceBackoff()
{
    if (dev.manualMode())
        dev.pump();
    else
        std::this_thread::yield(); // let the device thread run
}

void
SwQueueEngine::stalledWait()
{
    if (drainCompletions() == 0)
        deviceBackoff();
    pollTick++;
    watchdogScan();
    healthEpochMaybe();
}

std::uint32_t
SwQueueEngine::routeFor(Addr line)
{
    const std::uint32_t natural = shardFor(line);
    if (controller == nullptr)
        return natural;
    const std::uint32_t routed =
        controller->route(natural, line / cacheLineSize);
    if (routed != natural)
        recoveryStats.failovers++;
    return routed;
}

std::uint32_t
SwQueueEngine::routeForOrdered(Addr line, std::size_t excludeSlot)
{
    if (controller != nullptr) {
        std::size_t best = stagingSlots;
        for (std::size_t s = 0; s < stagingSlots; ++s) {
            if (s == excludeSlot || !writeState[s].pending ||
                writeState[s].line != line)
                continue;
            if (best == stagingSlots ||
                writeState[s].seq > writeState[best].seq)
                best = s;
        }
        if (best != stagingSlots)
            return writeState[best].shard;
    }
    return routeFor(line);
}

void
SwQueueEngine::failRead(FiberIo &io, std::size_t slot)
{
    kmuAssert(io.pending[slot], "deadline-failing an idle slot");
    io.pending[slot] = false;
    io.failed[slot] = true;
    // The failed attempt (and any twins) may still be queued on a
    // hung ring; the slot must not reuse their response buffer.
    quarantineBufferIfLive(io, slot);
    recoveryStats.deadlineErrors++;
    if (controller != nullptr && shardLive[io.shard[slot]] > 0)
        shardLive[io.shard[slot]]--;
    kmuAssert(io.outstanding > 0, "deadline fail with no outstanding");
    io.outstanding--;
    inFlight--;
    if (io.outstanding == 0)
        sched.unblock(*io.fiber);
}

void
SwQueueEngine::healthEpochMaybe()
{
    if (controller == nullptr || pollTick < nextEpochAt)
        return;

    // Completion-age watermark per routed shard. Scan order is
    // deterministic (fibers in first-use order, then staging slots
    // by index), so health decisions replay bit-identically.
    std::fill(oldestScratch.begin(), oldestScratch.end(), 0);
    for (FiberIo *iop : ioList) {
        FiberIo &io = *iop;
        if (io.outstanding == 0)
            continue;
        for (std::size_t slot = 0; slot < maxBatch; ++slot) {
            if (!io.pending[slot])
                continue;
            const std::uint64_t age = pollTick - io.issuedAt[slot];
            oldestScratch[io.shard[slot]] =
                std::max(oldestScratch[io.shard[slot]], age);
        }
    }
    for (std::size_t slot = 0; slot < stagingSlots; ++slot) {
        const WriteState &ws = writeState[slot];
        if (!ws.pending)
            continue;
        const std::uint64_t age = pollTick - ws.issuedAt;
        oldestScratch[ws.shard] =
            std::max(oldestScratch[ws.shard], age);
    }

    for (std::uint32_t s = 0; s < topoCfg.shards; ++s) {
        health::ShardSignals sig;
        sig.completions =
            shardSignals[s].completions - epochBase[s].completions;
        sig.retries = shardSignals[s].retries - epochBase[s].retries;
        sig.rejects = shardSignals[s].rejects - epochBase[s].rejects;
        sig.queueDepth = shardLive[s];
        sig.oldestAge = oldestScratch[s];
        controller->sampleEpoch(s, sig);
        epochBase[s] = shardSignals[s];
    }
    controller->endEpoch();
    nextEpochAt = pollTick + controller->config().epochPolls;
}

SwQueueEngine::FiberIo &
SwQueueEngine::submitAndWait(const Addr *addrs, std::size_t n)
{
    kmuAssert(n >= 1 && n <= maxBatch, "bad batch size %zu", n);
    FiberIo &io = ioState();
    kmuAssert(io.outstanding == 0, "fiber re-entered submitAndWait");

    access_trace::readBegin(std::uint32_t(n));
    io.outstanding = std::uint32_t(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Fresh generation per logical read: a stale completion for
        // this buffer — from a lost-then-recovered earlier op or a
        // timed-out twin — no longer matches and gets filtered.
        io.pending[i] = true;
        io.gen[i] = std::uint8_t(io.gen[i] + 1u);
        io.line[i] = lineAlign(addrs[i]);
        io.attempts[i] = 0;
        io.failed[i] = false;
        io.issuedAt[i] = pollTick;
        io.deadlineAt[i] = pollTick + backoff.deadlinePolls(1);
        const std::uint32_t shard = routeForOrdered(io.line[i]);
        io.shard[i] = shard;
        RequestDescriptor desc = RequestDescriptor::read(
            io.line[i],
            topo::taggedShard(
                RequestDescriptor::taggedHost(
                    reinterpret_cast<std::uintptr_t>(
                        &io.buffers[i][0]),
                    io.gen[i]),
                shard));
        SwQueuePair &qp = *pairs[shard];
        RoleGuard host(qp.hostRole); // engine fibers are the host side
        while (!qp.submit(desc)) {
            // Request ring full: let other fibers and the device
            // make progress, then retry.
            if (controller != nullptr)
                shardSignals[shard].rejects++;
            stalledWait();
            sched.yield();
        }
        bufStates.at(reinterpret_cast<Addr>(io.buffers[i]))
            .outstanding++;
        if (controller != nullptr)
            shardLive[shard]++;
        accessCount++;
    }
    inFlight += n;
    doorbellIfRequested();
    sched.block();
    kmuAssert(io.outstanding == 0, "fiber woken with requests pending");
    access_trace::readEnd();
    return io;
}

std::uint64_t
SwQueueEngine::read64(Addr addr)
{
    FiberIo &io = submitAndWait(&addr, 1);
    kmuAssert(!io.failed[0],
              "read64 of %#llx exceeded its deadline; use tryRead64 "
              "under a Full health controller",
              (unsigned long long)addr);
    std::uint64_t value;
    const std::size_t offset = addr - lineAlign(addr);
    kmuAssert(offset + 8 <= cacheLineSize, "read64 straddles lines");
    std::memcpy(&value, &io.buffers[0][offset], sizeof(value));
    return value;
}

AccessStatus
SwQueueEngine::tryRead64(Addr addr, std::uint64_t &out)
{
    FiberIo &io = submitAndWait(&addr, 1);
    if (io.failed[0])
        return AccessStatus::DeadlineExceeded;
    const std::size_t offset = addr - lineAlign(addr);
    kmuAssert(offset + 8 <= cacheLineSize, "read64 straddles lines");
    std::memcpy(&out, &io.buffers[0][offset], sizeof(out));
    return AccessStatus::Ok;
}

void
SwQueueEngine::readBatch(const Addr *addrs, std::size_t n,
                         std::uint64_t *out)
{
    FiberIo &io = submitAndWait(addrs, n);
    for (std::size_t i = 0; i < n; ++i) {
        kmuAssert(!io.failed[i], "batch read %zu exceeded deadline", i);
        const std::size_t offset = addrs[i] - lineAlign(addrs[i]);
        kmuAssert(offset + 8 <= cacheLineSize, "read straddles lines");
        std::memcpy(&out[i], &io.buffers[i][offset], sizeof(out[0]));
    }
}

void
SwQueueEngine::readLines(const Addr *addrs, std::size_t n, void *out)
{
    for (std::size_t i = 0; i < n; ++i)
        kmuAssert(isLineAligned(addrs[i]), "readLines needs alignment");
    FiberIo &io = submitAndWait(addrs, n);
    auto *dst = static_cast<std::uint8_t *>(out);
    for (std::size_t i = 0; i < n; ++i) {
        kmuAssert(!io.failed[i], "line read %zu exceeded deadline", i);
        std::memcpy(dst + i * cacheLineSize, &io.buffers[i][0],
                    cacheLineSize);
    }
}

void
SwQueueEngine::doorbellIfRequested()
{
    // Doorbell-request protocol: only ring the shards whose device
    // side asked for one.
    for (std::uint32_t s = 0; s < pairs.size(); ++s) {
        SwQueuePair &qp = *pairs[s];
        RoleGuard host(qp.hostRole);
        if (qp.consumeDoorbellRequest()) {
            doorbells++;
            trace::instant(trace::Kind::Doorbell, doorbells,
                           std::uint16_t(pairIndices[s]));
            dev.doorbell(pairIndices[s]);
        }
    }
}

void
SwQueueEngine::forceDoorbell(std::uint32_t shard)
{
    // Recovery path: the doorbell (or the completion that would have
    // made one unnecessary) may have been lost, so ring regardless
    // of the request flag. Consume the flag first so the protocol
    // state stays consistent with a rung doorbell.
    SwQueuePair &qp = *pairs[shard];
    RoleGuard host(qp.hostRole);
    qp.consumeDoorbellRequest();
    recoveryStats.recoveryDoorbells++;
    doorbells++;
    trace::instant(trace::Kind::Doorbell, doorbells,
                   std::uint16_t(pairIndices[shard]), 1 /* recovery */);
    dev.doorbell(pairIndices[shard]);
}

void
SwQueueEngine::reissueRead(FiberIo &io, std::size_t slot)
{
    // Retry pressure is evidence about the shard the failed attempt
    // was routed to, not the interleave-natural owner.
    if (controller != nullptr)
        shardSignals[io.shard[slot]].retries++;
    // Bounded-latency contract: under a Full controller a request
    // that outlived its deadline (or its retry budget) fails back to
    // the workload instead of retrying forever against a shard that
    // may never answer.
    if (deadlineMode() &&
        (pollTick - io.issuedAt[slot] >=
             controller->config().requestDeadlinePolls ||
         io.attempts[slot] >= backoff.policy().maxRetries)) {
        failRead(io, slot);
        return;
    }
    recoveryStats.retries++;
    io.attempts[slot]++;
    kmuAssert(io.attempts[slot] <= backoff.policy().maxRetries,
              "read of line %#llx exhausted its %u retries",
              (unsigned long long)io.line[slot],
              backoff.policy().maxRetries);
    io.gen[slot] = std::uint8_t(io.gen[slot] + 1u);
    // Hedged re-issue: a quarantined natural owner re-routes to a
    // sibling shard (the backing store is shared, so any pair can
    // serve the line).
    const std::uint32_t shard = routeForOrdered(io.line[slot]);
    if (controller != nullptr && shard != io.shard[slot]) {
        if (shardLive[io.shard[slot]] > 0)
            shardLive[io.shard[slot]]--;
        shardLive[shard]++;
        // Leaving the old ring's FIFO order: twins still queued
        // there must not share a response buffer with this attempt.
        quarantineBufferIfLive(io, slot);
    }
    io.shard[slot] = shard;
    RequestDescriptor desc = RequestDescriptor::read(
        io.line[slot],
        topo::taggedShard(
            RequestDescriptor::taggedHost(
                reinterpret_cast<std::uintptr_t>(
                    &io.buffers[slot][0]),
                io.gen[slot]),
            shard));
    // Push the deadline whether or not the submit lands: a full ring
    // resolves by draining, and the watchdog will come back.
    io.deadlineAt[slot] =
        pollTick + backoff.deadlinePolls(io.attempts[slot] + 1);
    SwQueuePair &qp = *pairs[shard];
    RoleGuard host(qp.hostRole);
    if (qp.submit(desc)) {
        bufStates.at(reinterpret_cast<Addr>(io.buffers[slot]))
            .outstanding++;
        forceDoorbell(shard);
    }
}

void
SwQueueEngine::reissueWrite(std::size_t slot)
{
    WriteState &ws = writeState[slot];
    if (controller != nullptr)
        shardSignals[ws.shard].retries++;
    recoveryStats.retries++;
    ws.attempts++;
    kmuAssert(ws.attempts <= backoff.policy().maxRetries,
              "write of line %#llx exhausted its %u retries",
              (unsigned long long)ws.line,
              backoff.policy().maxRetries);
    ws.gen = std::uint8_t(ws.gen + 1u);
    // Writes never deadline-fail: the first retry after a quarantine
    // re-routes to a healthy sibling, and the shared backing image
    // keeps cross-shard writes data-safe.
    const std::uint32_t shard = routeForOrdered(ws.line, slot);
    if (controller != nullptr && shard != ws.shard) {
        if (shardLive[ws.shard] > 0)
            shardLive[ws.shard]--;
        shardLive[shard]++;
    }
    ws.shard = shard;
    RequestDescriptor desc = RequestDescriptor::write(
        ws.line,
        topo::taggedShard(
            RequestDescriptor::taggedHost(
                reinterpret_cast<std::uintptr_t>(
                    &staging[slot]->line[0]),
                ws.gen),
            shard));
    ws.deadlineAt = pollTick + backoff.deadlinePolls(ws.attempts + 1);
    SwQueuePair &qp = *pairs[shard];
    RoleGuard host(qp.hostRole);
    if (qp.submit(desc)) {
        ws.outstanding++;
        forceDoorbell(shard);
    }
}

void
SwQueueEngine::watchdogScan()
{
    // Deterministic order: fibers in first-use order, then staging
    // slots by index. Device writes are idempotent and reads are
    // generation-tagged, so re-issuing is always safe — the cost of
    // a spurious re-issue is one stale completion.
    for (FiberIo *iop : ioList) {
        FiberIo &io = *iop;
        if (io.outstanding == 0)
            continue;
        for (std::size_t slot = 0; slot < maxBatch; ++slot) {
            if (io.pending[slot] && pollTick >= io.deadlineAt[slot]) {
                // Per-request deadline (Full health mode): convert a
                // stuck request into a bounded-latency error instead
                // of another retry. timeouts counts only actual
                // watchdog re-issues.
                if (deadlineMode() &&
                    pollTick - io.issuedAt[slot] >=
                        controller->config().requestDeadlinePolls) {
                    if (controller != nullptr)
                        shardSignals[io.shard[slot]].retries++;
                    failRead(io, slot);
                    continue;
                }
                recoveryStats.timeouts++;
                reissueRead(io, slot);
            }
        }
    }
    for (std::size_t slot = 0; slot < stagingSlots; ++slot) {
        if (writeState[slot].pending &&
            pollTick >= writeState[slot].deadlineAt) {
            recoveryStats.timeouts++;
            reissueWrite(slot);
        }
    }
}

std::size_t
SwQueueEngine::drainCompletions()
{
    std::size_t count = 0;
    for (std::uint32_t s = 0; s < pairs.size(); ++s)
        count += drainPair(s);
    return count;
}

std::size_t
SwQueueEngine::drainPair(std::uint32_t s)
{
    CompletionDescriptor comp;
    std::size_t count = 0;
    SwQueuePair &qp = *pairs[s];
    RoleGuard host(qp.hostRole);
    while (qp.reapCompletion(comp)) {
        count++;
        reaped++;
        kmuAssert(topo::shardTag(comp.hostAddr) == s,
                  "shard-%u completion reaped from shard %u's queue",
                  topo::shardTag(comp.hostAddr), s);
        const Addr buf = RequestDescriptor::hostPtr(
            topo::stripShard(comp.hostAddr));
        const std::uint8_t tag = RequestDescriptor::hostTag(comp.hostAddr);

        // Posted-write completion: recycle the staging buffer once
        // every attempt that DMA-reads it has been answered.
        auto write_it = stagingIndex.find(buf);
        if (write_it != stagingIndex.end()) {
            const std::size_t slot = write_it->second;
            WriteState &ws = writeState[slot];
            if (ws.outstanding > 0)
                ws.outstanding--;
            if (!ws.pending || ws.gen != tag) {
                // Twin of a write the watchdog already re-issued (or
                // whose retry already completed). If it was the last
                // attempt holding an already-acknowledged slot, the
                // staging buffer is finally safe to hand out again.
                recoveryStats.staleCompletions++;
                if (!ws.pending && ws.outstanding == 0)
                    freeStaging.push_back(slot);
                continue;
            }
            ws.pending = false;
            if (ws.outstanding == 0)
                freeStaging.push_back(slot);
            inFlight--;
            if (controller != nullptr) {
                shardSignals[ws.shard].completions++;
                if (shardLive[ws.shard] > 0)
                    shardLive[ws.shard]--;
            }
            if (governor)
                governor->sample(ws.attempts > 0);
            continue;
        }

        auto it = bufStates.find(buf);
        kmuAssert(it != bufStates.end(),
                  "completion for unknown buffer %#llx",
                  (unsigned long long)comp.hostAddr);
        BufState &bs = it->second;
        if (bs.outstanding > 0)
            bs.outstanding--;
        if (bs.io == nullptr) {
            // Tombstoned buffer: its slot abandoned these attempts
            // (deadline fail or cross-ring re-issue) and moved to a
            // fresh lease. The DMA landed harmlessly in the parked
            // buffer; the last twin returns it to the pool.
            recoveryStats.staleCompletions++;
            if (bs.outstanding == 0) {
                freeBuffers.push_back(
                    reinterpret_cast<std::uint8_t *>(
                        static_cast<std::uintptr_t>(buf)));
                bufStates.erase(it);
            }
            continue;
        }
        FiberIo &io = *bs.io;
        const std::size_t slot = bs.slot;
        kmuAssert(slot < maxBatch, "completion buffer slot %zu", slot);
        if (!io.pending[slot] || io.gen[slot] != tag) {
            // Stale: a duplicate from a recovered loss, or the slow
            // twin of a timed-out request. Same ring as the live
            // generation (cross-ring attempts are tombstoned above),
            // so FIFO order makes its buffer write harmless — the
            // live generation's data lands after it.
            recoveryStats.staleCompletions++;
            continue;
        }
        // Exact-data contract: the completion's CRC covers the line
        // the device meant to deliver. A mismatch means the payload
        // was corrupted in flight; re-issue instead of handing the
        // application bad data.
        if (crc32c(&io.buffers[slot][0], cacheLineSize) != comp.crc) {
            recoveryStats.crcFailures++;
            reissueRead(io, slot);
            continue;
        }
        io.pending[slot] = false;
        kmuAssert(io.outstanding > 0, "completion overflow for fiber");
        io.outstanding--;
        inFlight--;
        if (controller != nullptr) {
            shardSignals[io.shard[slot]].completions++;
            if (shardLive[io.shard[slot]] > 0)
                shardLive[io.shard[slot]]--;
        }
        if (governor)
            governor->sample(io.attempts[slot] > 0);
        if (io.outstanding == 0)
            sched.unblock(*io.fiber);
    }
    return count;
}

void
SwQueueEngine::writeLine(Addr addr, const void *line)
{
    kmuAssert(isLineAligned(addr), "writeLine needs alignment");

    // Claim a staging buffer; reap completions while waiting so a
    // write burst longer than the pool self-drains.
    while (freeStaging.empty()) {
        stagingStalls++;
        stalledWait();
    }
    const std::size_t slot = freeStaging.back();
    freeStaging.pop_back();
    std::memcpy(&staging[slot]->line[0], line, cacheLineSize);

    WriteState &ws = writeState[slot];
    kmuAssert(ws.outstanding == 0,
              "recycled staging slot %zu still has attempts in "
              "flight", slot);
    ws.pending = true;
    ws.gen = std::uint8_t(ws.gen + 1u);
    ws.line = addr;
    ws.attempts = 0;
    ws.issuedAt = pollTick;
    ws.deadlineAt = pollTick + backoff.deadlinePolls(1);
    ws.seq = ++writeSeq;

    const std::uint32_t shard = routeForOrdered(addr, slot);
    ws.shard = shard;
    RequestDescriptor desc = RequestDescriptor::write(
        addr, topo::taggedShard(
                  RequestDescriptor::taggedHost(
                      reinterpret_cast<std::uintptr_t>(
                          &staging[slot]->line[0]),
                      ws.gen),
                  shard));
    {
        SwQueuePair &qp = *pairs[shard];
        RoleGuard host(qp.hostRole);
        while (!qp.submit(desc)) {
            if (controller != nullptr)
                shardSignals[shard].rejects++;
            stalledWait();
        }
    }
    ws.outstanding++;
    if (controller != nullptr)
        shardLive[shard]++;
    writeCount++;
    access_trace::writeMark(addr);
    inFlight++;
    doorbellIfRequested();
    // Posted: return without blocking the fiber.
}

void
SwQueueEngine::write64(Addr addr, std::uint64_t value)
{
    // No byte enables in the line-granular protocol: fetch the
    // containing line, merge, and write it back.
    const Addr line_addr = lineAlign(addr);
    alignas(cacheLineSize) std::uint8_t buf[cacheLineSize];
    readLines(&line_addr, 1, buf);
    std::memcpy(buf + (addr - line_addr), &value, sizeof(value));
    writeLine(line_addr, buf);
}

bool
SwQueueEngine::pollCompletions()
{
    polls++;
    pollTick++;
    if (inFlight == 0)
        return false; // true deadlock: nothing will ever complete

    std::size_t pending = 0;
    for (SwQueuePair *pair : pairs)
        pending += pair->pendingCompletions();
    if (pending == 0) {
        // Nothing has arrived yet: hand the CPU to the device
        // instead of spinning it off the core (the single-CPU
        // analogue of the paper's dedicated device).
        deviceBackoff();
    }
    drainCompletions();
    watchdogScan();
    healthEpochMaybe();

    // Returning true keeps the scheduler polling while requests are
    // in flight at the device, even if this pass woke nobody.
    return true;
}

} // namespace kmu
