#include "access/sw_queue_engine.hh"

#include <cstring>
#include <thread>

#include "access/access_trace.hh"
#include "common/crc.hh"
#include "common/logging.hh"
#include "common/thread_annotations.hh"

namespace kmu
{

SwQueueEngine::SwQueueEngine(Scheduler &scheduler, EmulatedDevice &device,
                             std::size_t pair,
                             fault::DegradationGovernor *gov,
                             fault::RetryPolicy policy)
    : SwQueueEngine(scheduler, device, std::vector<std::size_t>{pair},
                    topo::Interleave::CacheLine, gov, policy)
{
}

SwQueueEngine::SwQueueEngine(Scheduler &scheduler, EmulatedDevice &device,
                             std::vector<std::size_t> pair_list,
                             topo::Interleave interleave,
                             fault::DegradationGovernor *gov,
                             fault::RetryPolicy policy)
    : sched(scheduler), dev(device), pairIndices(std::move(pair_list)),
      governor(gov), backoff(policy)
{
    kmuAssert(!pairIndices.empty() &&
                  pairIndices.size() <= topo::maxShards,
              "need 1..%u queue pairs", topo::maxShards);
    topoCfg.shards = std::uint32_t(pairIndices.size());
    topoCfg.interleave = interleave;
    pairs.reserve(pairIndices.size());
    for (std::size_t idx : pairIndices)
        pairs.push_back(&device.queuePair(idx));

    sched.setIdleHandler([this]() { return pollCompletions(); });
    staging.reserve(stagingSlots);
    for (std::size_t i = 0; i < stagingSlots; ++i) {
        staging.push_back(std::make_unique<StagingBuffer>());
        const Addr key = reinterpret_cast<std::uintptr_t>(
            &staging.back()->line[0]);
        stagingIndex.emplace(key, i);
        freeStaging.push_back(i);
    }
}

SwQueueEngine::FiberIo &
SwQueueEngine::ioState()
{
    Fiber *self = sched.current();
    kmuAssert(self != nullptr, "SwQueueEngine used outside a fiber");

    auto it = ioStates.find(self);
    if (it == ioStates.end()) {
        auto io = std::make_unique<FiberIo>();
        io->fiber = self;
        for (std::size_t i = 0; i < maxBatch; ++i) {
            const Addr key = reinterpret_cast<std::uintptr_t>(
                &io->buffers[i][0]);
            // The generation tag lives in hostAddr bits 48..55, so
            // buffer addresses must leave them clear.
            kmuAssert(RequestDescriptor::hostPtr(key) == key,
                      "response buffer address uses tag bits: %#llx",
                      (unsigned long long)key);
            bufferOwner.emplace(key, io.get());
        }
        ioList.push_back(io.get());
        it = ioStates.emplace(self, std::move(io)).first;
    }
    return *it->second;
}

void
SwQueueEngine::deviceBackoff()
{
    if (dev.manualMode())
        dev.pump();
    else
        std::this_thread::yield(); // let the device thread run
}

void
SwQueueEngine::stalledWait()
{
    if (drainCompletions() == 0)
        deviceBackoff();
    pollTick++;
    watchdogScan();
}

SwQueueEngine::FiberIo &
SwQueueEngine::submitAndWait(const Addr *addrs, std::size_t n)
{
    kmuAssert(n >= 1 && n <= maxBatch, "bad batch size %zu", n);
    FiberIo &io = ioState();
    kmuAssert(io.outstanding == 0, "fiber re-entered submitAndWait");

    access_trace::readBegin(std::uint32_t(n));
    io.outstanding = std::uint32_t(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Fresh generation per logical read: a stale completion for
        // this buffer — from a lost-then-recovered earlier op or a
        // timed-out twin — no longer matches and gets filtered.
        io.pending[i] = true;
        io.gen[i] = std::uint8_t(io.gen[i] + 1u);
        io.line[i] = lineAlign(addrs[i]);
        io.attempts[i] = 0;
        io.deadlineAt[i] = pollTick + backoff.deadlinePolls(1);
        const std::uint32_t shard = shardFor(io.line[i]);
        RequestDescriptor desc = RequestDescriptor::read(
            io.line[i],
            topo::taggedShard(
                RequestDescriptor::taggedHost(
                    reinterpret_cast<std::uintptr_t>(
                        &io.buffers[i][0]),
                    io.gen[i]),
                shard));
        SwQueuePair &qp = *pairs[shard];
        RoleGuard host(qp.hostRole); // engine fibers are the host side
        while (!qp.submit(desc)) {
            // Request ring full: let other fibers and the device
            // make progress, then retry.
            stalledWait();
            sched.yield();
        }
        accessCount++;
    }
    inFlight += n;
    doorbellIfRequested();
    sched.block();
    kmuAssert(io.outstanding == 0, "fiber woken with requests pending");
    access_trace::readEnd();
    return io;
}

std::uint64_t
SwQueueEngine::read64(Addr addr)
{
    FiberIo &io = submitAndWait(&addr, 1);
    std::uint64_t value;
    const std::size_t offset = addr - lineAlign(addr);
    kmuAssert(offset + 8 <= cacheLineSize, "read64 straddles lines");
    std::memcpy(&value, &io.buffers[0][offset], sizeof(value));
    return value;
}

void
SwQueueEngine::readBatch(const Addr *addrs, std::size_t n,
                         std::uint64_t *out)
{
    FiberIo &io = submitAndWait(addrs, n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t offset = addrs[i] - lineAlign(addrs[i]);
        kmuAssert(offset + 8 <= cacheLineSize, "read straddles lines");
        std::memcpy(&out[i], &io.buffers[i][offset], sizeof(out[0]));
    }
}

void
SwQueueEngine::readLines(const Addr *addrs, std::size_t n, void *out)
{
    for (std::size_t i = 0; i < n; ++i)
        kmuAssert(isLineAligned(addrs[i]), "readLines needs alignment");
    FiberIo &io = submitAndWait(addrs, n);
    auto *dst = static_cast<std::uint8_t *>(out);
    for (std::size_t i = 0; i < n; ++i) {
        std::memcpy(dst + i * cacheLineSize, &io.buffers[i][0],
                    cacheLineSize);
    }
}

void
SwQueueEngine::doorbellIfRequested()
{
    // Doorbell-request protocol: only ring the shards whose device
    // side asked for one.
    for (std::uint32_t s = 0; s < pairs.size(); ++s) {
        SwQueuePair &qp = *pairs[s];
        RoleGuard host(qp.hostRole);
        if (qp.consumeDoorbellRequest()) {
            doorbells++;
            trace::instant(trace::Kind::Doorbell, doorbells,
                           std::uint16_t(pairIndices[s]));
            dev.doorbell(pairIndices[s]);
        }
    }
}

void
SwQueueEngine::forceDoorbell(std::uint32_t shard)
{
    // Recovery path: the doorbell (or the completion that would have
    // made one unnecessary) may have been lost, so ring regardless
    // of the request flag. Consume the flag first so the protocol
    // state stays consistent with a rung doorbell.
    SwQueuePair &qp = *pairs[shard];
    RoleGuard host(qp.hostRole);
    qp.consumeDoorbellRequest();
    recoveryStats.recoveryDoorbells++;
    doorbells++;
    trace::instant(trace::Kind::Doorbell, doorbells,
                   std::uint16_t(pairIndices[shard]), 1 /* recovery */);
    dev.doorbell(pairIndices[shard]);
}

void
SwQueueEngine::reissueRead(FiberIo &io, std::size_t slot)
{
    recoveryStats.retries++;
    io.attempts[slot]++;
    kmuAssert(io.attempts[slot] <= backoff.policy().maxRetries,
              "read of line %#llx exhausted its %u retries",
              (unsigned long long)io.line[slot],
              backoff.policy().maxRetries);
    io.gen[slot] = std::uint8_t(io.gen[slot] + 1u);
    const std::uint32_t shard = shardFor(io.line[slot]);
    RequestDescriptor desc = RequestDescriptor::read(
        io.line[slot],
        topo::taggedShard(
            RequestDescriptor::taggedHost(
                reinterpret_cast<std::uintptr_t>(
                    &io.buffers[slot][0]),
                io.gen[slot]),
            shard));
    // Push the deadline whether or not the submit lands: a full ring
    // resolves by draining, and the watchdog will come back.
    io.deadlineAt[slot] =
        pollTick + backoff.deadlinePolls(io.attempts[slot] + 1);
    SwQueuePair &qp = *pairs[shard];
    RoleGuard host(qp.hostRole);
    if (qp.submit(desc))
        forceDoorbell(shard);
}

void
SwQueueEngine::reissueWrite(std::size_t slot)
{
    WriteState &ws = writeState[slot];
    recoveryStats.retries++;
    ws.attempts++;
    kmuAssert(ws.attempts <= backoff.policy().maxRetries,
              "write of line %#llx exhausted its %u retries",
              (unsigned long long)ws.line,
              backoff.policy().maxRetries);
    ws.gen = std::uint8_t(ws.gen + 1u);
    const std::uint32_t shard = shardFor(ws.line);
    RequestDescriptor desc = RequestDescriptor::write(
        ws.line,
        topo::taggedShard(
            RequestDescriptor::taggedHost(
                reinterpret_cast<std::uintptr_t>(
                    &staging[slot]->line[0]),
                ws.gen),
            shard));
    ws.deadlineAt = pollTick + backoff.deadlinePolls(ws.attempts + 1);
    SwQueuePair &qp = *pairs[shard];
    RoleGuard host(qp.hostRole);
    if (qp.submit(desc))
        forceDoorbell(shard);
}

void
SwQueueEngine::watchdogScan()
{
    // Deterministic order: fibers in first-use order, then staging
    // slots by index. Device writes are idempotent and reads are
    // generation-tagged, so re-issuing is always safe — the cost of
    // a spurious re-issue is one stale completion.
    for (FiberIo *iop : ioList) {
        FiberIo &io = *iop;
        if (io.outstanding == 0)
            continue;
        for (std::size_t slot = 0; slot < maxBatch; ++slot) {
            if (io.pending[slot] && pollTick >= io.deadlineAt[slot]) {
                recoveryStats.timeouts++;
                reissueRead(io, slot);
            }
        }
    }
    for (std::size_t slot = 0; slot < stagingSlots; ++slot) {
        if (writeState[slot].pending &&
            pollTick >= writeState[slot].deadlineAt) {
            recoveryStats.timeouts++;
            reissueWrite(slot);
        }
    }
}

std::size_t
SwQueueEngine::drainCompletions()
{
    std::size_t count = 0;
    for (std::uint32_t s = 0; s < pairs.size(); ++s)
        count += drainPair(s);
    return count;
}

std::size_t
SwQueueEngine::drainPair(std::uint32_t s)
{
    CompletionDescriptor comp;
    std::size_t count = 0;
    SwQueuePair &qp = *pairs[s];
    RoleGuard host(qp.hostRole);
    while (qp.reapCompletion(comp)) {
        count++;
        reaped++;
        kmuAssert(topo::shardTag(comp.hostAddr) == s,
                  "shard-%u completion reaped from shard %u's queue",
                  topo::shardTag(comp.hostAddr), s);
        const Addr buf = RequestDescriptor::hostPtr(
            topo::stripShard(comp.hostAddr));
        const std::uint8_t tag = RequestDescriptor::hostTag(comp.hostAddr);

        // Posted-write completion: recycle the staging buffer.
        auto write_it = stagingIndex.find(buf);
        if (write_it != stagingIndex.end()) {
            const std::size_t slot = write_it->second;
            WriteState &ws = writeState[slot];
            if (!ws.pending || ws.gen != tag) {
                // Twin of a write the watchdog already re-issued (or
                // whose retry already completed).
                recoveryStats.staleCompletions++;
                continue;
            }
            ws.pending = false;
            freeStaging.push_back(slot);
            inFlight--;
            if (governor)
                governor->sample(ws.attempts > 0);
            continue;
        }

        auto it = bufferOwner.find(buf);
        kmuAssert(it != bufferOwner.end(),
                  "completion for unknown buffer %#llx",
                  (unsigned long long)comp.hostAddr);
        FiberIo &io = *it->second;
        const std::size_t slot =
            std::size_t(buf - reinterpret_cast<std::uintptr_t>(
                                  &io.buffers[0][0])) /
            cacheLineSize;
        kmuAssert(slot < maxBatch, "completion buffer slot %zu", slot);
        if (!io.pending[slot] || io.gen[slot] != tag) {
            // Stale: a duplicate from a recovered loss, or the slow
            // twin of a timed-out request. The buffer write it may
            // have carried is harmless — either the same data, or
            // about to be overwritten by the live generation.
            recoveryStats.staleCompletions++;
            continue;
        }
        // Exact-data contract: the completion's CRC covers the line
        // the device meant to deliver. A mismatch means the payload
        // was corrupted in flight; re-issue instead of handing the
        // application bad data.
        if (crc32c(&io.buffers[slot][0], cacheLineSize) != comp.crc) {
            recoveryStats.crcFailures++;
            reissueRead(io, slot);
            continue;
        }
        io.pending[slot] = false;
        kmuAssert(io.outstanding > 0, "completion overflow for fiber");
        io.outstanding--;
        inFlight--;
        if (governor)
            governor->sample(io.attempts[slot] > 0);
        if (io.outstanding == 0)
            sched.unblock(*io.fiber);
    }
    return count;
}

void
SwQueueEngine::writeLine(Addr addr, const void *line)
{
    kmuAssert(isLineAligned(addr), "writeLine needs alignment");

    // Claim a staging buffer; reap completions while waiting so a
    // write burst longer than the pool self-drains.
    while (freeStaging.empty()) {
        stagingStalls++;
        stalledWait();
    }
    const std::size_t slot = freeStaging.back();
    freeStaging.pop_back();
    std::memcpy(&staging[slot]->line[0], line, cacheLineSize);

    WriteState &ws = writeState[slot];
    ws.pending = true;
    ws.gen = std::uint8_t(ws.gen + 1u);
    ws.line = addr;
    ws.attempts = 0;
    ws.deadlineAt = pollTick + backoff.deadlinePolls(1);

    const std::uint32_t shard = shardFor(addr);
    RequestDescriptor desc = RequestDescriptor::write(
        addr, topo::taggedShard(
                  RequestDescriptor::taggedHost(
                      reinterpret_cast<std::uintptr_t>(
                          &staging[slot]->line[0]),
                      ws.gen),
                  shard));
    {
        SwQueuePair &qp = *pairs[shard];
        RoleGuard host(qp.hostRole);
        while (!qp.submit(desc))
            stalledWait();
    }
    writeCount++;
    access_trace::writeMark(addr);
    inFlight++;
    doorbellIfRequested();
    // Posted: return without blocking the fiber.
}

void
SwQueueEngine::write64(Addr addr, std::uint64_t value)
{
    // No byte enables in the line-granular protocol: fetch the
    // containing line, merge, and write it back.
    const Addr line_addr = lineAlign(addr);
    alignas(cacheLineSize) std::uint8_t buf[cacheLineSize];
    readLines(&line_addr, 1, buf);
    std::memcpy(buf + (addr - line_addr), &value, sizeof(value));
    writeLine(line_addr, buf);
}

bool
SwQueueEngine::pollCompletions()
{
    polls++;
    pollTick++;
    if (inFlight == 0)
        return false; // true deadlock: nothing will ever complete

    std::size_t pending = 0;
    for (SwQueuePair *pair : pairs)
        pending += pair->pendingCompletions();
    if (pending == 0) {
        // Nothing has arrived yet: hand the CPU to the device
        // instead of spinning it off the core (the single-CPU
        // analogue of the paper's dedicated device).
        deviceBackoff();
    }
    drainCompletions();
    watchdogScan();

    // Returning true keeps the scheduler polling while requests are
    // in flight at the device, even if this pass woke nobody.
    return true;
}

} // namespace kmu
