#include "access/sw_queue_engine.hh"

#include <cstring>
#include <thread>

#include "common/logging.hh"

namespace kmu
{

SwQueueEngine::SwQueueEngine(Scheduler &scheduler, EmulatedDevice &device,
                             std::size_t pair)
    : sched(scheduler), dev(device), pairIndex(pair),
      queues(device.queuePair(pair))
{
    sched.setIdleHandler([this]() { return pollCompletions(); });
    staging.reserve(stagingSlots);
    for (std::size_t i = 0; i < stagingSlots; ++i) {
        staging.push_back(std::make_unique<StagingBuffer>());
        const Addr key = reinterpret_cast<std::uintptr_t>(
            &staging.back()->line[0]);
        stagingIndex.emplace(key, i);
        freeStaging.push_back(i);
    }
}

SwQueueEngine::FiberIo &
SwQueueEngine::ioState()
{
    Fiber *self = sched.current();
    kmuAssert(self != nullptr, "SwQueueEngine used outside a fiber");

    auto it = ioStates.find(self);
    if (it == ioStates.end()) {
        auto io = std::make_unique<FiberIo>();
        io->fiber = self;
        for (std::size_t i = 0; i < maxBatch; ++i) {
            const Addr key = reinterpret_cast<std::uintptr_t>(
                &io->buffers[i][0]);
            bufferOwner.emplace(key, io.get());
        }
        it = ioStates.emplace(self, std::move(io)).first;
    }
    return *it->second;
}

SwQueueEngine::FiberIo &
SwQueueEngine::submitAndWait(const Addr *addrs, std::size_t n)
{
    kmuAssert(n >= 1 && n <= maxBatch, "bad batch size %zu", n);
    FiberIo &io = ioState();
    kmuAssert(io.outstanding == 0, "fiber re-entered submitAndWait");

    io.outstanding = std::uint32_t(n);
    for (std::size_t i = 0; i < n; ++i) {
        RequestDescriptor desc = RequestDescriptor::read(
            lineAlign(addrs[i]),
            reinterpret_cast<std::uintptr_t>(&io.buffers[i][0]));
        while (!queues.submit(desc)) {
            // Request ring full: let other fibers and the device
            // make progress, then retry.
            if (drainCompletions() == 0)
                std::this_thread::yield();
            sched.yield();
        }
        accessCount++;
    }
    inFlight += n;
    doorbellIfRequested();
    sched.block();
    kmuAssert(io.outstanding == 0, "fiber woken with requests pending");
    return io;
}

std::uint64_t
SwQueueEngine::read64(Addr addr)
{
    FiberIo &io = submitAndWait(&addr, 1);
    std::uint64_t value;
    const std::size_t offset = addr - lineAlign(addr);
    kmuAssert(offset + 8 <= cacheLineSize, "read64 straddles lines");
    std::memcpy(&value, &io.buffers[0][offset], sizeof(value));
    return value;
}

void
SwQueueEngine::readBatch(const Addr *addrs, std::size_t n,
                         std::uint64_t *out)
{
    FiberIo &io = submitAndWait(addrs, n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t offset = addrs[i] - lineAlign(addrs[i]);
        kmuAssert(offset + 8 <= cacheLineSize, "read straddles lines");
        std::memcpy(&out[i], &io.buffers[i][offset], sizeof(out[0]));
    }
}

void
SwQueueEngine::readLines(const Addr *addrs, std::size_t n, void *out)
{
    for (std::size_t i = 0; i < n; ++i)
        kmuAssert(isLineAligned(addrs[i]), "readLines needs alignment");
    FiberIo &io = submitAndWait(addrs, n);
    auto *dst = static_cast<std::uint8_t *>(out);
    for (std::size_t i = 0; i < n; ++i) {
        std::memcpy(dst + i * cacheLineSize, &io.buffers[i][0],
                    cacheLineSize);
    }
}

void
SwQueueEngine::doorbellIfRequested()
{
    // Doorbell-request protocol: only ring when the device asked.
    if (queues.consumeDoorbellRequest()) {
        doorbells++;
        dev.doorbell(pairIndex);
    }
}

std::size_t
SwQueueEngine::drainCompletions()
{
    CompletionDescriptor comp;
    std::size_t count = 0;
    while (queues.reapCompletion(comp)) {
        count++;
        reaped++;
        inFlight--;

        // Posted-write completion: just recycle the staging buffer.
        auto write_it = stagingIndex.find(comp.hostAddr);
        if (write_it != stagingIndex.end()) {
            freeStaging.push_back(write_it->second);
            continue;
        }

        auto it = bufferOwner.find(comp.hostAddr);
        kmuAssert(it != bufferOwner.end(),
                  "completion for unknown buffer %#llx",
                  (unsigned long long)comp.hostAddr);
        FiberIo &io = *it->second;
        kmuAssert(io.outstanding > 0, "completion overflow for fiber");
        io.outstanding--;
        if (io.outstanding == 0)
            sched.unblock(*io.fiber);
    }
    return count;
}

void
SwQueueEngine::writeLine(Addr addr, const void *line)
{
    kmuAssert(isLineAligned(addr), "writeLine needs alignment");

    // Claim a staging buffer; reap completions while waiting so a
    // write burst longer than the pool self-drains.
    while (freeStaging.empty()) {
        stagingStalls++;
        if (drainCompletions() == 0)
            std::this_thread::yield(); // let the device thread run
    }
    const std::size_t slot = freeStaging.back();
    freeStaging.pop_back();
    std::memcpy(&staging[slot]->line[0], line, cacheLineSize);

    RequestDescriptor desc = RequestDescriptor::write(
        addr, reinterpret_cast<std::uintptr_t>(
                  &staging[slot]->line[0]));
    while (!queues.submit(desc)) {
        if (drainCompletions() == 0)
            std::this_thread::yield();
    }
    writeCount++;
    inFlight++;
    doorbellIfRequested();
    // Posted: return without blocking the fiber.
}

void
SwQueueEngine::write64(Addr addr, std::uint64_t value)
{
    // No byte enables in the line-granular protocol: fetch the
    // containing line, merge, and write it back.
    const Addr line_addr = lineAlign(addr);
    alignas(cacheLineSize) std::uint8_t buf[cacheLineSize];
    readLines(&line_addr, 1, buf);
    std::memcpy(buf + (addr - line_addr), &value, sizeof(value));
    writeLine(line_addr, buf);
}

bool
SwQueueEngine::pollCompletions()
{
    polls++;
    if (inFlight == 0)
        return false; // true deadlock: nothing will ever complete

    if (queues.pendingCompletions() == 0) {
        // Nothing has arrived yet: hand the CPU to the device
        // service thread instead of spinning it off the core (the
        // single-CPU analogue of the paper's dedicated device).
        std::this_thread::yield();
    }
    drainCompletions();

    // Returning true keeps the scheduler polling while requests are
    // in flight at the device, even if this pass woke nobody.
    return true;
}

} // namespace kmu
