#include "access/on_demand_engine.hh"

#include <cstring>

#include "access/access_trace.hh"
#include "common/logging.hh"
#include "fault/fault_plan.hh"

namespace kmu
{

OnDemandEngine::OnDemandEngine(std::uint8_t *region_base,
                               std::size_t region_bytes,
                               fault::DegradationGovernor *gov,
                               fault::RetryPolicy policy)
    : base(region_base), bytes(region_bytes), governor(gov),
      retryPolicy(policy)
{
    kmuAssert(base != nullptr, "on-demand engine needs a region");
}

std::uint32_t
OnDemandEngine::surviveMappedRead()
{
    // MappedReadError models a hardware-detected bad MMIO read (the
    // load completes poisoned and faults). Survival is a bounded
    // re-issue of the load.
    std::uint32_t attempts = 0;
    while (fault::fire(fault::FaultSite::MappedReadError)) {
        attempts++;
        recoveryStats.retries++;
        kmuAssert(attempts <= retryPolicy.maxRetries,
                  "mapped read failed %u consecutive times", attempts);
    }
    if (governor)
        governor->sample(attempts > 0);
    return attempts;
}

std::uint64_t
OnDemandEngine::read64(Addr addr)
{
    kmuAssert(addr + 8 <= bytes, "read64 out of bounds: %#llx",
              (unsigned long long)addr);
    accessCount++;
    access_trace::readBegin(1);
    surviveMappedRead();
    std::uint64_t value;
    std::memcpy(&value, base + addr, sizeof(value));
    access_trace::readEnd();
    return value;
}

void
OnDemandEngine::readBatch(const Addr *addrs, std::size_t n,
                          std::uint64_t *out)
{
    kmuAssert(n <= maxBatch, "batch of %zu exceeds maxBatch", n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = read64(addrs[i]);
}

void
OnDemandEngine::readLines(const Addr *addrs, std::size_t n, void *out)
{
    kmuAssert(n <= maxBatch, "batch of %zu exceeds maxBatch", n);
    access_trace::readBegin(std::uint32_t(n));
    auto *dst = static_cast<std::uint8_t *>(out);
    for (std::size_t i = 0; i < n; ++i) {
        kmuAssert(isLineAligned(addrs[i]), "readLines needs aligned "
                  "addresses");
        kmuAssert(addrs[i] + cacheLineSize <= bytes,
                  "readLines out of bounds");
        accessCount++;
        surviveMappedRead();
        std::memcpy(dst + i * cacheLineSize, base + addrs[i],
                    cacheLineSize);
    }
    access_trace::readEnd();
}

void
OnDemandEngine::writeLine(Addr addr, const void *line)
{
    kmuAssert(isLineAligned(addr), "writeLine needs alignment");
    kmuAssert(addr + cacheLineSize <= bytes, "writeLine out of bounds");
    writeCount++;
    access_trace::writeMark(addr);
    std::memcpy(base + addr, line, cacheLineSize);
}

void
OnDemandEngine::write64(Addr addr, std::uint64_t value)
{
    kmuAssert(addr + 8 <= bytes, "write64 out of bounds");
    writeCount++;
    std::memcpy(base + addr, &value, sizeof(value));
}

} // namespace kmu
