/**
 * @file
 * Application-managed software-queue access engine.
 *
 * Reads are posted as 16-byte descriptors into the in-memory request
 * queue; the calling fiber blocks, the scheduler keeps running other
 * fibers, and — only once no fiber is ready — its idle handler polls
 * the completion queue and wakes the requesters (the paper's
 * Section IV-B design: FIFO thread management, poll-on-idle,
 * doorbell-request flag, device-side burst fetch).
 *
 * Each fiber owns a registered set of 64-byte response buffers; the
 * device writes response data there before posting the completion.
 */

#ifndef KMU_ACCESS_SW_QUEUE_ENGINE_HH
#define KMU_ACCESS_SW_QUEUE_ENGINE_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "access/access_engine.hh"
#include "device/emulated_device.hh"
#include "fault/recovery.hh"
#include "health/health.hh"
#include "topo/topology.hh"
#include "ult/scheduler.hh"

namespace kmu
{

class SwQueueEngine : public AccessEngine
{
  public:
    /**
     * @param scheduler fiber scheduler (idle handler is installed).
     * @param device    running (or about-to-run) emulated device.
     * @param pair      index of this engine's queue pair.
     * @param gov       shared degradation governor (optional): fed
     *                  one sample per completed logical access so
     *                  queue-path retry pressure shows in the EWMA.
     * @param policy    watchdog timeout / bounded-retry parameters.
     */
    SwQueueEngine(Scheduler &scheduler, EmulatedDevice &device,
                  std::size_t pair,
                  fault::DegradationGovernor *gov = nullptr,
                  fault::RetryPolicy policy = {});

    /**
     * Sharded variant: one queue pair per device shard, with line
     * addresses routed by @p interleave (topo::shardOf). Every
     * descriptor carries its shard id in hostAddr bits 56..61, so
     * completions demux shard-safely. A one-element @p pairs list is
     * exactly the single-pair engine.
     */
    /**
     * @param ctrl optional health controller (src/health): routes
     *             new and re-issued requests away from quarantined
     *             shards, fails requests stuck past their deadline,
     *             and is fed per-shard signals every epochPolls poll
     *             ticks. nullptr keeps every code path byte-identical
     *             to a controller-free build.
     */
    SwQueueEngine(Scheduler &scheduler, EmulatedDevice &device,
                  std::vector<std::size_t> pairs,
                  topo::Interleave interleave,
                  fault::DegradationGovernor *gov = nullptr,
                  fault::RetryPolicy policy = {},
                  health::RecoveryController *ctrl = nullptr);

    std::uint64_t read64(Addr addr) override;
    AccessStatus tryRead64(Addr addr, std::uint64_t &out) override;
    void readBatch(const Addr *addrs, std::size_t n,
                   std::uint64_t *out) override;
    void readLines(const Addr *addrs, std::size_t n, void *out) override;

    /**
     * Posted line write: copies @p line into a staging buffer,
     * submits a write descriptor, and returns without blocking the
     * fiber. The staging buffer recycles when the device posts the
     * write's completion. A later read through this engine observes
     * the write (FIFO service order per queue pair).
     */
    void writeLine(Addr addr, const void *line) override;

    /** Read-modify-write of one word (the full-line protocol has no
     *  byte enables — the coherence cost of Section V-C). */
    void write64(Addr addr, std::uint64_t value) override;

    Mechanism mechanism() const override { return Mechanism::SwQueue; }

    /** @{ Protocol statistics. */
    std::uint64_t doorbellsRung() const { return doorbells; }
    std::uint64_t completionsReaped() const { return reaped; }
    std::uint64_t pollCalls() const { return polls; }
    std::uint64_t writeStalls() const { return stagingStalls; }
    /** @} */

    /** Watchdog clock: poll passes since construction. In
     *  manual-pump (deterministic-device) mode this is a logical
     *  clock, so deltas of it are a bit-reproducible latency unit
     *  for benches. */
    std::uint64_t pollTicks() const { return pollTick; }

  private:
    /**
     * Per-fiber response buffers and outstanding-request count, plus
     * per-slot watchdog state: a read slot is `pending` from submit
     * until a completion with the matching generation tag (and a
     * valid payload CRC) arrives; the watchdog re-issues slots whose
     * poll-tick deadline has passed with a bumped generation, so a
     * late twin of the original request is recognizably stale.
     */
    struct FiberIo
    {
        /**
         * Response buffer of each slot, leased from the engine's
         * pool. Indirection matters for failure handling: when a
         * slot abandons an attempt whose twin may still be queued
         * on a hung ring (deadline fail, cross-ring re-issue), the
         * lease is swapped for a fresh buffer and the old one is
         * tombstoned until the twin's DMA and completion drain —
         * otherwise that late DMA would land in a buffer the slot
         * has already reused for different data.
         */
        std::uint8_t *buffers[maxBatch] = {};
        std::uint32_t outstanding = 0;
        Fiber *fiber = nullptr;

        bool pending[maxBatch] = {};
        std::uint8_t gen[maxBatch] = {};
        Addr line[maxBatch] = {}; //!< device line, for re-issue
        std::uint64_t deadlineAt[maxBatch] = {}; //!< pollTick deadline
        std::uint32_t attempts[maxBatch] = {};
        /** Shard the slot's live request is currently routed to
         *  (differs from the interleave-natural owner after a
         *  failover re-issue). */
        std::uint32_t shard[maxBatch] = {};
        /** pollTick of first submit: the per-request deadline is
         *  measured from here, across re-issues. */
        std::uint64_t issuedAt[maxBatch] = {};
        /** Slot failed with DeadlineExceeded this batch. */
        bool failed[maxBatch] = {};
    };

    /** Get (or lazily create and register) the caller's IO state. */
    FiberIo &ioState();

    /** Submit @p n line reads and block until they all complete. */
    FiberIo &submitAndWait(const Addr *addrs, std::size_t n);

    /** Scheduler idle handler: reap completions, wake fibers. */
    bool pollCompletions();

    /** Reap every available completion on every pair; @return how
     *  many. */
    std::size_t drainCompletions();

    /** Reap every available completion of shard @p s's pair. */
    std::size_t drainPair(std::uint32_t s);

    /** Ring each shard's doorbell if its device requested one. */
    void doorbellIfRequested();

    /** Shard owning device line @p line under this topology. */
    std::uint32_t shardFor(Addr line) const
    {
        return topo::shardOf(line, topoCfg);
    }

    /**
     * Routed destination of a request for @p line: the natural owner
     * unless the health controller quarantined it, in which case the
     * controller picks probe-or-failover. Counts failovers.
     */
    std::uint32_t routeFor(Addr line);

    /**
     * Routed destination for a new request on @p line, preserving
     * read-your-writes across failovers: if a posted write for the
     * same line is still in flight, follow the *latest* such write's
     * currently-routed shard so per-ring FIFO order keeps the new
     * request behind it. Without this, a hedged read re-routed to a
     * healthy sibling can pass a write still queued on the sick
     * shard and observe stale data. @p excludeSlot lets a write
     * re-issue skip its own staging slot.
     */
    std::uint32_t routeForOrdered(Addr line,
                                  std::size_t excludeSlot = stagingSlots);

    /** True when stuck requests must be deadline-failed instead of
     *  retried forever (Full health mode). */
    bool
    deadlineMode() const
    {
        return controller != nullptr &&
               controller->config().mode == health::Mode::Full;
    }

    /** Fail one read slot with DeadlineExceeded and wake its fiber
     *  if it was the last outstanding request of the batch. */
    void failRead(FiberIo &io, std::size_t slot);

    /** Close the signal epoch and feed the controller, when due. */
    void healthEpochMaybe();

    /** Wait-loop backoff: pump a manual-mode device, else yield the
     *  OS thread so the device service thread can run. */
    void deviceBackoff();

    /** One pass of a fiber-side wait loop (ring full / staging dry):
     *  drain, back off, and keep the watchdog clock moving so lost
     *  completions cannot stall the loop forever. */
    void stalledWait();

    /** Re-issue one read slot with a fresh generation tag. */
    void reissueRead(FiberIo &io, std::size_t slot);

    /** Re-issue one pending posted write from its staging slot. */
    void reissueWrite(std::size_t slot);

    /** Watchdog: re-issue every pending op past its deadline. */
    void watchdogScan();

    /** Recovery doorbell on @p shard: ring even without a device
     *  request (the original doorbell may itself have been lost). */
    void forceDoorbell(std::uint32_t shard);

    /** Staging buffers backing posted writes. */
    static constexpr std::size_t stagingSlots = 32;

    struct StagingBuffer
    {
        alignas(cacheLineSize) std::uint8_t line[cacheLineSize];
    };

    /** Watchdog state of one posted write (per staging slot). */
    struct WriteState
    {
        bool pending = false;
        std::uint8_t gen = 0;
        Addr line = 0; //!< device line address, for re-issue
        std::uint64_t deadlineAt = 0; //!< pollTick re-issue deadline
        std::uint32_t attempts = 0;
        std::uint32_t shard = 0;      //!< current routed shard
        std::uint64_t issuedAt = 0;   //!< pollTick of first submit
        /**
         * Attempts submitted but not yet answered (stale twins
         * included). The staging slot recycles only at zero: a twin
         * parked on a hung ring DMA-reads the staging buffer when
         * the ring finally drains, so handing the buffer to a new
         * write before then would graft the new payload onto the
         * old write's line address.
         */
        std::uint32_t outstanding = 0;
        /** Program-order stamp: routeForOrdered follows the newest
         *  pending write of a line, and poll ticks alone cannot
         *  order two writes submitted in the same tick. */
        std::uint64_t seq = 0;
    };

    Scheduler &sched;
    EmulatedDevice &dev;
    /** One device queue-pair index + pair per shard; element s is
     *  shard s. Single-device engines hold one element. */
    std::vector<std::size_t> pairIndices;
    std::vector<SwQueuePair *> pairs;
    topo::TopologyConfig topoCfg;
    fault::DegradationGovernor *governor;
    fault::RetryBackoff backoff;
    health::RecoveryController *controller;

    /** Per-shard health signals (cumulative; the epoch driver takes
     *  deltas against epochBase). Empty when no controller. */
    struct ShardSignalCounters
    {
        std::uint64_t completions = 0;
        std::uint64_t retries = 0;
        std::uint64_t rejects = 0;
    };
    std::vector<ShardSignalCounters> shardSignals;
    std::vector<ShardSignalCounters> epochBase;
    /** Live in-flight ops per routed shard (reads + writes). */
    std::vector<std::uint64_t> shardLive;
    /** Scratch for the epoch driver's oldest-age scan. */
    std::vector<std::uint64_t> oldestScratch;
    std::uint64_t nextEpochAt = 0;

    std::unordered_map<Fiber *, std::unique_ptr<FiberIo>> ioStates;
    /** Creation-ordered view of ioStates: the watchdog iterates this
     *  so its scan order (and RNG consumption) is deterministic. */
    std::vector<FiberIo *> ioList;

    /** One pooled response buffer (stable address for its lifetime). */
    struct LineBuffer
    {
        alignas(cacheLineSize) std::uint8_t line[cacheLineSize];
    };

    /**
     * Who a response buffer currently serves. `io == nullptr` marks
     * a tombstone: the buffer's slot moved on, but attempts naming
     * it are still unanswered — it returns to the free pool once
     * `outstanding` drains to zero.
     */
    struct BufState
    {
        FiberIo *io = nullptr;
        std::size_t slot = 0;
        std::uint32_t outstanding = 0; //!< submitted, not yet answered
    };

    /** Lease a buffer for @p io's @p slot (reuses the free pool,
     *  grows it when dry). */
    std::uint8_t *leaseBuffer(FiberIo &io, std::size_t slot);

    /**
     * Called before a slot abandons its current attempt for a path
     * outside its ring's FIFO order (deadline fail, or re-issue to
     * a different shard). If attempts on the current buffer are
     * still unanswered, tombstone it and lease a replacement;
     * otherwise the buffer is provably idle and stays.
     */
    void quarantineBufferIfLive(FiberIo &io, std::size_t slot);

    std::vector<std::unique_ptr<LineBuffer>> bufferPool;
    std::vector<std::uint8_t *> freeBuffers;
    std::unordered_map<Addr, BufState> bufStates;

    std::vector<std::unique_ptr<StagingBuffer>> staging;
    std::vector<std::size_t> freeStaging;
    std::unordered_map<Addr, std::size_t> stagingIndex;
    WriteState writeState[stagingSlots];

    std::uint64_t writeSeq = 0; //!< program-order write stamp source
    std::uint64_t inFlight = 0; //!< logical ops awaiting completion
    std::uint64_t pollTick = 0; //!< watchdog clock: poll passes
    std::uint64_t doorbells = 0;
    std::uint64_t reaped = 0;
    std::uint64_t polls = 0;
    std::uint64_t stagingStalls = 0;
};

} // namespace kmu

#endif // KMU_ACCESS_SW_QUEUE_ENGINE_HH
