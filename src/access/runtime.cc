#include "access/runtime.hh"

#include "access/on_demand_engine.hh"
#include "access/prefetch_engine.hh"
#include "access/sw_queue_engine.hh"
#include "common/logging.hh"

namespace kmu
{

Runtime::Runtime(std::vector<std::uint8_t> device_image, Config config)
    : cfg(config), imageBytes(device_image.size()),
      governor(config.governor)
{
    kmuAssert(imageBytes >= cacheLineSize,
              "device image must hold at least one line");

    switch (cfg.mechanism) {
      case Mechanism::OnDemand:
        mappedRegion = std::move(device_image);
        accessEngine = std::make_unique<OnDemandEngine>(
            mappedRegion.data(), imageBytes, &governor, cfg.retry);
        break;
      case Mechanism::Prefetch:
        mappedRegion = std::move(device_image);
        accessEngine = std::make_unique<PrefetchEngine>(
            mappedRegion.data(), imageBytes, sched, &governor,
            cfg.retry);
        break;
      case Mechanism::SwQueue: {
        kmuAssert(cfg.shards >= 1 && cfg.shards <= topo::maxShards,
                  "shard count %u out of [1, %u]", cfg.shards,
                  topo::maxShards);
        EmulatedDevice::Config dev_cfg;
        dev_cfg.latency = cfg.deviceLatency;
        dev_cfg.queueDepth = cfg.queueDepth;
        dev_cfg.manual = cfg.deterministicDevice;
        device = std::make_unique<EmulatedDevice>(
            std::move(device_image), dev_cfg);
        // One queue pair per shard; contiguous indices starting at
        // pairIndex (shard s = pairIndex + s).
        std::vector<std::size_t> pair_list;
        pair_list.reserve(cfg.shards);
        for (std::uint32_t s = 0; s < cfg.shards; ++s)
            pair_list.push_back(device->addQueuePair());
        pairIndex = pair_list.front();
        accessEngine = std::make_unique<SwQueueEngine>(
            sched, *device, std::move(pair_list), cfg.interleave,
            &governor, cfg.retry);
        break;
      }
    }
}

Runtime::~Runtime() = default;

const std::uint8_t *
Runtime::deviceImage() const
{
    return device ? device->contents() : mappedRegion.data();
}

void
Runtime::spawnWorker(Worker worker, std::size_t stack_bytes)
{
    kmuAssert(worker != nullptr, "null worker");
    sched.spawn([this, worker = std::move(worker)]() {
        worker(*accessEngine);
    }, stack_bytes);
}

void
Runtime::run()
{
    RoleGuard host(hostRole); // calling thread is the host side
    if (device && !device->running())
        device->start();
    sched.run();
    // Manual-mode devices are never "running" but still need their
    // drain pass so late completions land before teardown.
    if (device && (device->manualMode() || device->running()))
        device->stop();
}

} // namespace kmu
