#include "access/runtime.hh"

#include "access/on_demand_engine.hh"
#include "access/prefetch_engine.hh"
#include "access/sw_queue_engine.hh"
#include "common/logging.hh"

namespace kmu
{

Runtime::Runtime(std::vector<std::uint8_t> device_image, Config config)
    : cfg(config), imageBytes(device_image.size()),
      governor(config.governor)
{
    kmuAssert(imageBytes >= cacheLineSize,
              "device image must hold at least one line");

    switch (cfg.mechanism) {
      case Mechanism::OnDemand:
        mappedRegion = std::move(device_image);
        accessEngine = std::make_unique<OnDemandEngine>(
            mappedRegion.data(), imageBytes, &governor, cfg.retry);
        break;
      case Mechanism::Prefetch:
        mappedRegion = std::move(device_image);
        accessEngine = std::make_unique<PrefetchEngine>(
            mappedRegion.data(), imageBytes, sched, &governor,
            cfg.retry);
        break;
      case Mechanism::SwQueue: {
        kmuAssert(cfg.shards >= 1 && cfg.shards <= topo::maxShards,
                  "shard count %u out of [1, %u]", cfg.shards,
                  topo::maxShards);
        EmulatedDevice::Config dev_cfg;
        dev_cfg.latency = cfg.deviceLatency;
        dev_cfg.queueDepth = cfg.queueDepth;
        dev_cfg.manual = cfg.deterministicDevice;
        device = std::make_unique<EmulatedDevice>(
            std::move(device_image), dev_cfg);
        // One queue pair per shard; contiguous indices starting at
        // pairIndex (shard s = pairIndex + s).
        std::vector<std::size_t> pair_list;
        pair_list.reserve(cfg.shards);
        for (std::uint32_t s = 0; s < cfg.shards; ++s)
            pair_list.push_back(device->addQueuePair());
        pairIndex = pair_list.front();
        if (cfg.health.mode != health::Mode::Off)
            healthCtrl = std::make_unique<health::RecoveryController>(
                cfg.health, cfg.shards);
        accessEngine = std::make_unique<SwQueueEngine>(
            sched, *device, std::move(pair_list), cfg.interleave,
            &governor, cfg.retry, healthCtrl.get());
        break;
      }
    }
    registerGauges();
}

void
Runtime::registerGauges()
{
    const auto gauge = [this](const char *name, const char *desc,
                              Gauge::Source src) {
        gauges.push_back(std::make_unique<Gauge>(
            statGroup, name, desc, std::move(src)));
    };
    AccessEngine *eng = accessEngine.get();
    gauge("retries", "accesses re-issued by the watchdog",
          [eng] { return eng->recovery().retries; });
    gauge("timeouts", "watchdog deadline expirations",
          [eng] { return eng->recovery().timeouts; });
    gauge("crc_failures", "payload CRC mismatches",
          [eng] { return eng->recovery().crcFailures; });
    gauge("stale_completions", "stale/duplicate completions filtered",
          [eng] { return eng->recovery().staleCompletions; });
    gauge("recovery_doorbells", "watchdog-forced doorbells",
          [eng] { return eng->recovery().recoveryDoorbells; });
    gauge("deadline_errors", "requests failed at their deadline",
          [eng] { return eng->recovery().deadlineErrors; });
    gauge("failovers", "requests re-routed off their natural shard",
          [eng] { return eng->recovery().failovers; });
    const fault::DegradationGovernor *gov = &governor;
    gauge("governor_degradations", "governor Normal->Degraded flips",
          [gov] { return gov->degradations(); });
    gauge("governor_recoveries", "governor Degraded->Normal flips",
          [gov] { return gov->recoveries(); });
    if (healthCtrl) {
        const health::RecoveryController *hc = healthCtrl.get();
        gauge("health_degradations",
              "shard Healthy->Degraded transitions",
              [hc] { return hc->counters().degradations; });
        gauge("health_quarantines",
              "shard Degraded->Quarantined transitions",
              [hc] { return hc->counters().quarantines; });
        gauge("health_recoveries",
              "shard Degraded->Healthy transitions",
              [hc] { return hc->counters().recoveries; });
        gauge("health_probes", "canary requests routed to "
              "quarantined shards",
              [hc] { return hc->counters().probes; });
        gauge("health_failovers",
              "controller-chosen sibling re-routes",
              [hc] { return hc->counters().failovers; });
    }
}

Runtime::~Runtime() = default;

const std::uint8_t *
Runtime::deviceImage() const
{
    return device ? device->contents() : mappedRegion.data();
}

void
Runtime::spawnWorker(Worker worker, std::size_t stack_bytes)
{
    kmuAssert(worker != nullptr, "null worker");
    sched.spawn([this, worker = std::move(worker)]() {
        worker(*accessEngine);
    }, stack_bytes);
}

void
Runtime::run()
{
    RoleGuard host(hostRole); // calling thread is the host side
    if (device && !device->running())
        device->start();
    sched.run();
    // Manual-mode devices are never "running" but still need their
    // drain pass so late completions land before teardown.
    if (device && (device->manualMode() || device->running()))
        device->stop();
}

} // namespace kmu
