/**
 * @file
 * kmu-check: machine-checked model invariants.
 *
 * The timing model's whole output rests on queue-occupancy accounting
 * (10 LFBs/core, the 14-entry chip queue, the 48-entry DRAM path) and
 * on conservation laws (in-flight = issued - completed). A silent
 * bookkeeping bug produces plausible-but-wrong curves, so the model
 * asserts its own conservation laws at the point where each quantity
 * changes:
 *
 *  - KMU_INVARIANT(cond, fmt, ...): always compiled in, cheap (a
 *    predicted-untaken branch); use for laws whose violation makes
 *    continuing meaningless (occupancy past capacity, time running
 *    backwards, freeing what was never allocated).
 *  - KMU_MODEL_CHECK(cond, fmt, ...): heavier cross-checks (counter
 *    reconciliation, ordered-window scans). Compiled out entirely
 *    with -DKMU_NO_MODEL_CHECKS (CMake -DKMU_MODEL_CHECKS=OFF) and
 *    skippable at runtime via check::setModelChecks(false).
 *
 * By default a violation panics, naming the expression and site. A
 * test that wants to *prove* a broken model is caught installs a
 * check::ViolationTrap, which converts violations into a thrown
 * check::ViolationError instead (the state of the violated component
 * is unspecified afterwards — end the test there).
 */

#ifndef KMU_CHECK_INVARIANT_HH
#define KMU_CHECK_INVARIANT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/logging.hh"

namespace kmu
{
namespace check
{

/** Thrown by a ViolationTrap'd invariant failure. */
class ViolationError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Central violation sink used by the KMU_INVARIANT/KMU_MODEL_CHECK
 * macros. Panics unless a ViolationTrap is active, in which case it
 * records the violation and throws ViolationError.
 */
[[gnu::cold]]
void reportViolation(const char *expr, const char *file, int line,
                     const std::string &message);

/** Total violations observed process-wide (trapped ones included). */
std::uint64_t violationCount();

/** Runtime switch for KMU_MODEL_CHECK (default on). */
bool modelChecksEnabled();
void setModelChecks(bool enabled);

/**
 * RAII scope that converts invariant violations into exceptions.
 * Single-threaded, non-reentrant — exactly one trap may be active.
 */
class ViolationTrap
{
  public:
    ViolationTrap();
    ~ViolationTrap();

    ViolationTrap(const ViolationTrap &) = delete;
    ViolationTrap &operator=(const ViolationTrap &) = delete;

    /** Violations caught by this trap. */
    std::uint64_t caught() const { return caughtCount; }

    /** Message of the most recent caught violation ("" if none). */
    const std::string &lastMessage() const { return lastMsg; }

  private:
    friend void reportViolation(const char *, const char *, int,
                                const std::string &);

    std::uint64_t caughtCount = 0;
    std::string lastMsg;
};

} // namespace check
} // namespace kmu

/**
 * Always-on conservation-law check.
 * Usage: KMU_INVARIANT(used <= cap, "occupancy %u over %u", used, cap);
 */
#define KMU_INVARIANT(cond, ...)                                        \
    do {                                                                \
        if (!(cond)) [[unlikely]] {                                     \
            ::kmu::check::reportViolation(                              \
                #cond, __FILE__, __LINE__,                              \
                ::kmu::csprintf(__VA_ARGS__));                          \
        }                                                               \
    } while (0)

/**
 * Heavier debug-time model check; compiled out under
 * KMU_NO_MODEL_CHECKS and skippable at runtime.
 */
#ifdef KMU_NO_MODEL_CHECKS
#define KMU_MODEL_CHECK(cond, ...)                                      \
    do {                                                                \
        (void)sizeof((cond));                                           \
    } while (0)
#else
#define KMU_MODEL_CHECK(cond, ...)                                      \
    do {                                                                \
        if (::kmu::check::modelChecksEnabled() && !(cond))              \
            [[unlikely]] {                                              \
            ::kmu::check::reportViolation(                              \
                #cond, __FILE__, __LINE__,                              \
                ::kmu::csprintf(__VA_ARGS__));                          \
        }                                                               \
    } while (0)
#endif

#endif // KMU_CHECK_INVARIANT_HH
