/**
 * @file
 * SimChecker: periodic whole-model invariant sweeps.
 *
 * The KMU_INVARIANT/KMU_MODEL_CHECK call sites in the components
 * validate each state *transition*; the SimChecker validates global
 * conservation laws that no single transition can see (e.g. the sum
 * of per-core LFB occupancy against chip-queue occupancy, or stat
 * counters reconciling with live structure sizes). Components — or
 * the SimSystem that assembles them — register named check functions;
 * the checker sweeps them at a fixed simulated-time interval.
 *
 * The sweep event only reschedules itself while other events remain,
 * so attaching a checker never keeps an otherwise-drained event queue
 * alive (queue-drain termination still works).
 *
 * Header-only: SimChecker sits above kmu_sim in the layering, while
 * the invariant core (check/invariant.hh) sits below it — keeping
 * this class inline avoids a dependency cycle between the two
 * libraries.
 */

#ifndef KMU_CHECK_SIM_CHECKER_HH
#define KMU_CHECK_SIM_CHECKER_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "check/invariant.hh"
#include "sim/sim_object.hh"

namespace kmu
{

class SimChecker : public SimObject
{
  public:
    /** A registered check: calls KMU_INVARIANT/KMU_MODEL_CHECK. */
    using CheckFn = std::function<void()>;

    SimChecker(std::string name, EventQueue &queue, Tick interval,
               StatGroup *stat_parent)
        : SimObject(std::move(name), queue, stat_parent),
          sweepsRun(stats(), "sweeps", "invariant sweeps executed"),
          checksRun(stats(), "checks", "individual checks executed"),
          sweepEvent(
              this->name() + ".sweep", [this]() { sweep(); },
              EventPriority::Stats),
          sweepInterval(interval)
    {
        kmuAssert(interval > 0, "checker interval must be positive");
    }

    ~SimChecker() override
    {
        if (sweepEvent.scheduled())
            eventQueue().deschedule(&sweepEvent);
    }

    /** Register a named invariant-sweep function. */
    void
    addCheck(std::string label, CheckFn fn)
    {
        kmuAssert(fn != nullptr, "null check function");
        checks.emplace_back(std::move(label), std::move(fn));
    }

    /** Run every registered check once, immediately. */
    void
    runChecks()
    {
        for (auto &check : checks) {
            check.second();
            ++checksRun;
        }
    }

    /** Begin periodic sweeps every interval ticks from now. */
    void
    start()
    {
        if (!sweepEvent.scheduled())
            scheduleIn(&sweepEvent, sweepInterval);
    }

    std::size_t checkCount() const { return checks.size(); }

    /**
     * Extra "work remains" probe consulted by the reschedule
     * decision. The parallel executor partitions the event space, so
     * the checker's own queue going empty no longer means the model
     * is drained; the probe reports whether other domains still owe
     * events at the sweep tick. It must be a deterministic function
     * of model state visible to the sweeping thread — SimSystem
     * derives it from host-side issue/completion bookkeeping, which
     * makes the parallel sweep schedule reproduce the serial one
     * exactly (see DESIGN.md §15).
     */
    void setPendingProbe(std::function<bool(Tick)> probe)
    {
        pendingProbe = std::move(probe);
    }

    Counter sweepsRun;
    Counter checksRun;

  private:
    void
    sweep()
    {
        runChecks();
        ++sweepsRun;
        // Reschedule only while other work remains: a lone checker
        // event must not keep a drained queue spinning forever.
        if (eventQueue().size() > 0 ||
            (pendingProbe && pendingProbe(curTick()))) {
            scheduleIn(&sweepEvent, sweepInterval);
        }
    }

    std::function<bool(Tick)> pendingProbe;
    std::vector<std::pair<std::string, CheckFn>> checks;
    CallbackEvent sweepEvent;
    Tick sweepInterval;
};

} // namespace kmu

#endif // KMU_CHECK_SIM_CHECKER_HH
