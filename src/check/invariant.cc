#include "check/invariant.hh"

namespace kmu
{
namespace check
{

namespace
{

// The model is single-threaded by construction (one EventQueue per
// SimSystem, driven from one OS thread), so plain globals suffice.
std::uint64_t violations = 0;
bool modelChecks = true;
ViolationTrap *activeTrap = nullptr;

} // anonymous namespace

void
reportViolation(const char *expr, const char *file, int line,
                const std::string &message)
{
    violations++;
    if (activeTrap) {
        activeTrap->caughtCount++;
        activeTrap->lastMsg =
            csprintf("model invariant '%s' violated at %s:%d: %s",
                     expr, file, line, message.c_str());
        throw ViolationError(activeTrap->lastMsg);
    }
    panic("model invariant '%s' violated at %s:%d: %s", expr, file,
          line, message.c_str());
}

std::uint64_t
violationCount()
{
    return violations;
}

bool
modelChecksEnabled()
{
    return modelChecks;
}

void
setModelChecks(bool enabled)
{
    modelChecks = enabled;
}

ViolationTrap::ViolationTrap()
{
    kmuAssert(activeTrap == nullptr,
              "nested check::ViolationTrap is not supported");
    activeTrap = this;
}

ViolationTrap::~ViolationTrap()
{
    activeTrap = nullptr;
}

} // namespace check
} // namespace kmu
