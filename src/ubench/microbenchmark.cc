#include "ubench/microbenchmark.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/random.hh"
#include "ubench/work_loop.hh"

namespace kmu
{

namespace
{

/** Fill the device image with deterministic per-word values so the
 *  benchmark can checksum what it loads. */
std::vector<std::uint8_t>
buildImage(std::size_t bytes)
{
    std::vector<std::uint8_t> image(bytes);
    for (std::size_t off = 0; off + 8 <= bytes;
         off += cacheLineSize) {
        const std::uint64_t value = mix64(off);
        std::memcpy(image.data() + off, &value, sizeof(value));
    }
    return image;
}

} // anonymous namespace

HostBenchResult
runHostMicrobenchmark(const HostBenchConfig &cfg)
{
    kmuAssert(cfg.threads >= 1, "need at least one thread");
    kmuAssert(cfg.batch >= 1 && cfg.batch <= AccessEngine::maxBatch,
              "bad batch");

    Runtime::Config rt_cfg;
    rt_cfg.mechanism = cfg.mechanism;
    rt_cfg.deviceLatency = cfg.deviceLatency;
    Runtime rt(buildImage(cfg.regionBytes), rt_cfg);

    // Per-thread region slices: each access hits a fresh line.
    const std::uint64_t lines = cfg.regionBytes / cacheLineSize;
    const std::uint64_t lines_per_thread = lines / cfg.threads;
    const std::uint64_t needed =
        cfg.iterationsPerThread * cfg.batch;
    kmuAssert(lines_per_thread >= 1,
              "region too small for thread count");

    std::vector<std::uint64_t> checksums(cfg.threads, 0);
    for (std::uint32_t t = 0; t < cfg.threads; ++t) {
        rt.spawnWorker([t, &cfg, &checksums, lines_per_thread,
                        needed](AccessEngine &dev) {
            const std::uint64_t base_line = t * lines_per_thread;
            std::uint64_t sum = 0;
            Addr addrs[AccessEngine::maxBatch];
            std::uint64_t vals[AccessEngine::maxBatch];
            for (std::uint64_t i = 0; i < cfg.iterationsPerThread;
                 ++i) {
                for (std::uint32_t b = 0; b < cfg.batch; ++b) {
                    const std::uint64_t line =
                        base_line +
                        (i * cfg.batch + b) % lines_per_thread;
                    addrs[b] = line * cacheLineSize;
                }
                dev.readBatch(addrs, cfg.batch, vals);
                for (std::uint32_t b = 0; b < cfg.batch; ++b) {
                    sum += vals[b];
                    consume(workLoop(vals[b], cfg.workCount));
                }
            }
            (void)needed;
            checksums[t] = sum;
        });
    }

    const auto start = std::chrono::steady_clock::now();
    rt.run();
    const auto stop = std::chrono::steady_clock::now();

    // Verify the loaded data against the known image contents.
    for (std::uint32_t t = 0; t < cfg.threads; ++t) {
        std::uint64_t expect = 0;
        const std::uint64_t base_line = t * lines_per_thread;
        for (std::uint64_t i = 0; i < cfg.iterationsPerThread; ++i) {
            for (std::uint32_t b = 0; b < cfg.batch; ++b) {
                const std::uint64_t line =
                    base_line +
                    (i * cfg.batch + b) % lines_per_thread;
                expect += mix64(line * cacheLineSize);
            }
        }
        kmuAssert(checksums[t] == expect,
                  "thread %u checksum mismatch: data corruption", t);
    }

    HostBenchResult res;
    res.seconds = std::chrono::duration<double>(stop - start).count();
    res.iterations =
        std::uint64_t(cfg.threads) * cfg.iterationsPerThread;
    res.accesses = res.iterations * cfg.batch;
    if (res.seconds > 0.0) {
        res.accessesPerUs = double(res.accesses) / (res.seconds * 1e6);
        res.workInstrsPerUs =
            double(res.accesses) * cfg.workCount /
            (res.seconds * 1e6);
    }
    return res;
}

double
hostNormalized(const HostBenchResult &result,
               const HostBenchResult &baseline)
{
    kmuAssert(baseline.workInstrsPerUs > 0.0, "degenerate baseline");
    return result.workInstrsPerUs / baseline.workInstrsPerUs;
}

} // namespace kmu
