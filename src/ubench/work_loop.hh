/**
 * @file
 * The paper's "benign work loop": dependent arithmetic instructions.
 *
 * The microbenchmark follows every device access with work that (a)
 * depends on the loaded value, (b) touches no memory, and (c) has
 * enough internal dependencies to limit IPC to roughly 1.4 on a
 * 4-wide out-of-order core. This header provides that loop for the
 * real host runtime and the ported applications; the timing model
 * charges the equivalent time analytically via SystemConfig::workIpc.
 */

#ifndef KMU_UBENCH_WORK_LOOP_HH
#define KMU_UBENCH_WORK_LOOP_HH

#include <cstdint>

namespace kmu
{

/**
 * Execute approximately @p instrs dependent arithmetic instructions
 * seeded by @p seed (the loaded value, creating the data dependence
 * on the device access). Returns a value that must be consumed to
 * keep the optimizer honest.
 */
inline std::uint64_t
workLoop(std::uint64_t seed, std::uint32_t instrs)
{
    std::uint64_t x = seed | 1;
    std::uint64_t y = seed ^ 0x9e3779b97f4a7c15ull;
    std::uint64_t z = ~seed;
    // ~7 arithmetic ops per round: two dependent chains (x, y) plus
    // one semi-independent accumulator (z) — mirrors a mix an OoO
    // core sustains at IPC ~1.4.
    const std::uint32_t rounds = instrs / 7 + 1;
    for (std::uint32_t i = 0; i < rounds; ++i) {
        x *= 0x2545f4914f6cdd1dull; // chain 1
        x ^= x >> 29;               // chain 1 (dep)
        y += x;                     // joins chains
        y ^= y << 9;                // chain 2 (dep)
        z += 0x9e3779b9;            // independent
        z ^= x;                     // dep on chain 1
        x += z >> 17;               // feedback
    }
    return x + y + z;
}

/**
 * Optimization barrier: forces @p value to be materialized.
 */
inline void
consume(std::uint64_t value)
{
    asm volatile("" : : "r"(value) : "memory");
}

} // namespace kmu

#endif // KMU_UBENCH_WORK_LOOP_HH
