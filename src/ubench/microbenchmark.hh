/**
 * @file
 * The paper's microbenchmark, runnable two ways:
 *
 *  1. on the real host runtime (fibers + engines) — wall-clock
 *     measurements of the mechanisms on this machine;
 *  2. on the timing model — regenerating the paper's figures with
 *     the modelled Xeon/PCIe/FPGA platform.
 *
 * The loop per user-level thread is: read `batch` independent fresh
 * cache lines, then execute `workCount` dependent arithmetic
 * instructions per read. Every access targets a distinct line, so
 * there is no temporal or spatial locality across accesses.
 */

#ifndef KMU_UBENCH_MICROBENCHMARK_HH
#define KMU_UBENCH_MICROBENCHMARK_HH

#include <chrono>
#include <cstdint>

#include "access/runtime.hh"

namespace kmu
{

/** Configuration of a real-host microbenchmark run. */
struct HostBenchConfig
{
    Mechanism mechanism = Mechanism::Prefetch;
    std::uint32_t threads = 8;
    std::uint64_t iterationsPerThread = 20000;
    std::uint32_t workCount = 250;   //!< work instrs per access
    std::uint32_t batch = 1;         //!< reads per iteration (MLP)
    std::chrono::nanoseconds deviceLatency{1000}; //!< SwQueue only
    std::size_t regionBytes = 64 << 20; //!< mapped device image size
};

/** Results of a real-host microbenchmark run. */
struct HostBenchResult
{
    double seconds = 0.0;
    std::uint64_t iterations = 0;
    std::uint64_t accesses = 0;
    double accessesPerUs = 0.0;
    double workInstrsPerUs = 0.0;
};

/**
 * Run the microbenchmark on the real host runtime.
 *
 * Each thread walks its own slice of the region with a stride of one
 * line per access; the checksum of all loaded words is verified
 * against a host-side computation to catch data corruption.
 */
HostBenchResult runHostMicrobenchmark(const HostBenchConfig &cfg);

/**
 * Normalized performance of @p result against @p baseline
 * (work throughput ratio, the host analogue of normalized work IPC).
 */
double hostNormalized(const HostBenchResult &result,
                      const HostBenchResult &baseline);

} // namespace kmu

#endif // KMU_UBENCH_MICROBENCHMARK_HH
