#include "health/health.hh"

#include "common/logging.hh"
#include "topo/topology.hh"

namespace kmu
{
namespace health
{

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Off:          return "off";
      case Mode::GovernorOnly: return "governor";
      case Mode::Full:         return "full";
    }
    panic("bad health mode %u", unsigned(mode));
}

bool
parseMode(const char *text, Mode &out)
{
    const std::string s(text != nullptr ? text : "");
    if (s == "off") {
        out = Mode::Off;
    } else if (s == "governor") {
        out = Mode::GovernorOnly;
    } else if (s == "full") {
        out = Mode::Full;
    } else {
        return false;
    }
    return true;
}

const char *
shardStateName(ShardState state)
{
    switch (state) {
      case ShardState::Healthy:     return "healthy";
      case ShardState::Degraded:    return "degraded";
      case ShardState::Quarantined: return "quarantined";
    }
    panic("bad shard state %u", unsigned(state));
}

RecoveryController::RecoveryController(const Config &config,
                                       std::uint32_t shard_count)
    : cfg(config)
{
    kmuAssert(cfg.mode != Mode::Off,
              "Mode::Off means: do not construct a controller");
    kmuAssert(shard_count >= 1 && shard_count <= 32,
              "health controller supports 1..32 shards (2 state bits "
              "each in the snapshot word), got %u", shard_count);
    kmuAssert(cfg.epochPolls > 0, "epochPolls must be positive");
    kmuAssert(cfg.probePeriod > 0, "probePeriod must be positive");
    mons.assign(shard_count, HealthMonitor(cfg));
    states.assign(shard_count, ShardState::Healthy);
    probeDone.assign(shard_count, 0);
    probeClock.assign(shard_count, 0);
    publish();
}

void
RecoveryController::publish()
{
    std::uint64_t word = 0;
    for (std::size_t s = 0; s < states.size(); ++s)
        word |= std::uint64_t(states[s]) << (2 * s);
    statesWord.store(word, std::memory_order_release);
}

void
RecoveryController::transition(std::uint32_t shard, ShardState to)
{
    const ShardState from = states[shard];
    if (from == to)
        return;
    states[shard] = to;
    if (from == ShardState::Healthy && to == ShardState::Degraded)
        stats.degradations++;
    if (to == ShardState::Quarantined) {
        stats.quarantines++;
        probeDone[shard] = 0;
        probeClock[shard] = 0;
    }
    if (to == ShardState::Healthy)
        stats.recoveries++;
    publish();
}

ShardState
RecoveryController::sampleEpoch(std::uint32_t shard,
                                const ShardSignals &sig)
{
    kmuAssert(shard < shards(), "bad shard %u", shard);
    HealthMonitor &mon = mons[shard];

    if (states[shard] == ShardState::Quarantined) {
        // A quarantined shard's EWMA is frozen: the only traffic it
        // sees is probes, and the verdict on those is the completion
        // count itself. Exactly reaching probeSuccesses releases it.
        probeDone[shard] += sig.completions;
        if (probeDone[shard] >= cfg.probeSuccesses) {
            mon.resetAfterProbe();
            transition(shard, ShardState::Degraded);
        }
        return states[shard];
    }

    mon.observe(sig);
    switch (states[shard]) {
      case ShardState::Healthy:
        if (mon.overEnter())
            transition(shard, ShardState::Degraded);
        break;
      case ShardState::Degraded:
        if (cfg.mode == Mode::Full && mon.overQuarantine())
            transition(shard, ShardState::Quarantined);
        else if (mon.recovered())
            transition(shard, ShardState::Healthy);
        break;
      case ShardState::Quarantined:
        break; // handled above
    }
    return states[shard];
}

ShardState
RecoveryController::state(std::uint32_t shard) const
{
    kmuAssert(shard < shards(), "bad shard %u", shard);
    return states[shard];
}

double
RecoveryController::ewma(std::uint32_t shard) const
{
    kmuAssert(shard < shards(), "bad shard %u", shard);
    return mons[shard].ewma();
}

bool
RecoveryController::degraded(std::uint32_t shard) const
{
    return state(shard) != ShardState::Healthy;
}

bool
RecoveryController::quarantined(std::uint32_t shard) const
{
    return state(shard) == ShardState::Quarantined;
}

std::uint64_t
RecoveryController::routableMask() const
{
    std::uint64_t mask = 0;
    for (std::size_t s = 0; s < states.size(); ++s) {
        if (states[s] != ShardState::Quarantined)
            mask |= std::uint64_t(1) << s;
    }
    return mask;
}

std::uint32_t
RecoveryController::route(std::uint32_t natural, std::uint64_t salt)
{
    kmuAssert(natural < shards(), "bad shard %u", natural);
    if (cfg.mode != Mode::Full ||
        states[natural] != ShardState::Quarantined) {
        return natural;
    }
    // Deterministic canary cadence: the k-th request aimed at a
    // quarantined shard goes through iff k % probePeriod == 0, so
    // probe traffic is bounded and reproducible.
    const std::uint64_t k = probeClock[natural]++;
    if (k % cfg.probePeriod == 0) {
        stats.probes++;
        return natural;
    }
    const std::uint32_t target = topo::failoverShard(
        natural, routableMask(), shards(), salt);
    if (target != natural)
        stats.failovers++;
    return target;
}

} // namespace health
} // namespace kmu
