/**
 * @file
 * kmu::health — shard failure domains and the epoch-based recovery
 * control plane.
 *
 * The fault layer (src/fault) provokes domain-scale misbehaviour —
 * a link outage, a hung device, a brownout — and the sharded topology
 * (src/topo) gives the system N independent failure domains. This
 * subsystem closes the loop: a HealthMonitor folds each shard's
 * per-epoch signals (completions, watchdog re-issues, ring rejects,
 * queue depth, oldest in-flight age) into a retry-pressure EWMA and a
 * stuck detector, and a RecoveryController runs a per-shard state
 * machine on top:
 *
 *   HEALTHY ──ewma/stuck──▶ DEGRADED ──ewma/stuck──▶ QUARANTINED
 *      ▲                        │                        │
 *      └──── hysteresisEpochs ──┘◀──── probe successes ──┘
 *
 * DEGRADED shards keep serving but shed optimism (the embedding layer
 * flips prefetch→on-demand and shrinks the shard's chip-queue slice);
 * QUARANTINED shards stop receiving new requests — the router fails
 * them over to sibling shards under the interleave remap, except for
 * a deterministic 1-in-probePeriod canary probe that tests whether
 * the shard came back. Probe completions accumulate toward
 * probeSuccesses; reaching the threshold drops the shard back to
 * DEGRADED, and hysteresisEpochs consecutive clean epochs complete
 * the recovery to HEALTHY (any dirty epoch resets the run, which is
 * the flap suppression).
 *
 * Everything here is pure, deterministic logic: no clocks, no RNG,
 * no threads. The embedding layer (SwQueueEngine's poll-tick loop or
 * SimSystem's event queue) decides when an epoch elapses and what the
 * signals are; with the controller disabled (Mode::Off) no embedding
 * layer constructs one, so health-off runs are byte-identical to a
 * build without this subsystem.
 */

#ifndef KMU_HEALTH_HEALTH_HH
#define KMU_HEALTH_HEALTH_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.hh"

namespace kmu
{
namespace health
{

/** How much of the control plane is armed. */
enum class Mode : std::uint32_t
{
    Off,          //!< no controller at all (byte-identical baseline)
    GovernorOnly, //!< degrade effects only; never quarantines
    Full          //!< degrade + quarantine + failover + probes
};

/** Stable short name (CSV columns, CLI). */
const char *modeName(Mode mode);

/** Parse "off" / "governor" / "full"; returns false on junk. */
bool parseMode(const char *text, Mode &out);

/** Per-shard controller state. */
enum class ShardState : std::uint32_t
{
    Healthy,
    Degraded,
    Quarantined
};

/** Stable short name (trace args, logs, CSVs). */
const char *shardStateName(ShardState state);

/**
 * Control-plane parameters. Epoch timing is owned by the embedding
 * layer (poll ticks in the runtime, sim ticks in the timing model);
 * everything here counts epochs, requests, or fractions.
 */
struct Config
{
    Mode mode = Mode::Off;

    /** Epoch length in the embedder's watchdog clock (poll ticks in
     *  the runtime; the sim converts its epoch event period). */
    std::uint64_t epochPolls = 256;

    /** Per-epoch EWMA smoothing factor over the dirty fraction. */
    double alpha = 0.30;

    /** HEALTHY→DEGRADED when the EWMA exceeds this. */
    double enterDegraded = 0.25;

    /** DEGRADED→HEALTHY requires the EWMA below this (plus the
     *  clean-epoch run below). */
    double exitDegraded = 0.05;

    /** DEGRADED→QUARANTINED when the EWMA exceeds this (Full mode). */
    double enterQuarantine = 0.70;

    /** Consecutive epochs of zero completions with work queued that
     *  count as "stuck" (forces the next-worse state). */
    std::uint32_t stuckEpochs = 2;

    /** Consecutive clean epochs required to leave DEGRADED. */
    std::uint32_t hysteresisEpochs = 3;

    /** While QUARANTINED, every probePeriod-th request routed at the
     *  shard is sent there as a canary probe instead of failing over. */
    std::uint32_t probePeriod = 64;

    /** Completions a quarantined shard must deliver before it is
     *  allowed back to DEGRADED. */
    std::uint32_t probeSuccesses = 4;

    /** Per-request deadline in the embedder's watchdog clock: past
     *  it, a stuck request is failed with DeadlineExceeded instead of
     *  retried forever (Full mode only). */
    std::uint64_t requestDeadlinePolls = 8192;
};

/** One shard's signals over one epoch (deltas, except the gauges). */
struct ShardSignals
{
    std::uint64_t completions = 0; //!< ops completed this epoch
    std::uint64_t retries = 0;     //!< watchdog re-issues this epoch
    std::uint64_t rejects = 0;     //!< ring-full submit rejects
    std::uint64_t queueDepth = 0;  //!< in-flight ops at epoch end
    std::uint64_t oldestAge = 0;   //!< age of oldest in-flight op
};

/**
 * Per-shard signal folding: dirty-fraction EWMA plus the stuck and
 * clean-run counters the state machine consumes. Kept separate from
 * RecoveryController so the boundary tests can drive it directly.
 */
class HealthMonitor
{
  public:
    explicit HealthMonitor(const Config &config) : cfg(config) {}

    /**
     * Fold one epoch's signals. The dirty fraction of an epoch is
     * retries/completions (clamped to 1); an epoch with queued work
     * but zero completions is maximally dirty (the shard is stuck);
     * an idle epoch (nothing queued, nothing done) is clean.
     */
    void
    observe(const ShardSignals &sig)
    {
        double dirty;
        if (sig.completions == 0) {
            dirty = sig.queueDepth > 0 ? 1.0 : 0.0;
        } else {
            dirty = double(sig.retries) / double(sig.completions);
            if (dirty > 1.0)
                dirty = 1.0;
        }
        ewma_ += cfg.alpha * (dirty - ewma_);
        if (sig.completions == 0 && sig.queueDepth > 0)
            stuckRun_++;
        else
            stuckRun_ = 0;
        if (dirty == 0.0 && sig.rejects == 0)
            cleanRun_++;
        else
            cleanRun_ = 0;
    }

    double ewma() const { return ewma_; }

    /** Consecutive stuck epochs ending at the last observe(). */
    std::uint32_t stuckRun() const { return stuckRun_; }

    /** Consecutive clean epochs ending at the last observe(). */
    std::uint32_t cleanRun() const { return cleanRun_; }

    /** True when the shard warrants DEGRADED (or worse). */
    bool
    overEnter() const
    {
        return ewma_ > cfg.enterDegraded || stuckRun_ >= cfg.stuckEpochs;
    }

    /** True when the shard warrants QUARANTINED (Full mode). */
    bool
    overQuarantine() const
    {
        return ewma_ > cfg.enterQuarantine ||
               stuckRun_ >= cfg.stuckEpochs;
    }

    /** True when the hysteresis run clears a DEGRADED shard. */
    bool
    recovered() const
    {
        return ewma_ < cfg.exitDegraded &&
               cleanRun_ >= cfg.hysteresisEpochs;
    }

    /** Probes proved the shard serves again: restart from a clean
     *  slate so stale pressure cannot instantly re-quarantine it. */
    void
    resetAfterProbe()
    {
        ewma_ = 0.0;
        stuckRun_ = 0;
        cleanRun_ = 0;
    }

  private:
    Config cfg;
    double ewma_ = 0.0;
    std::uint32_t stuckRun_ = 0;
    std::uint32_t cleanRun_ = 0;
};

/**
 * The per-shard state machine plus the request router. Single-writer:
 * all mutating calls happen on the embedding layer's control thread
 * (the runtime host thread / the sim event loop); the packed state
 * word below is the only cross-thread surface.
 */
class RecoveryController
{
  public:
    /** Aggregate transition / routing counters (for RunResult and
     *  campaign CSVs). */
    struct Counters
    {
        std::uint64_t degradations = 0; //!< HEALTHY→DEGRADED
        std::uint64_t quarantines = 0;  //!< DEGRADED→QUARANTINED
        std::uint64_t recoveries = 0;   //!< DEGRADED→HEALTHY
        std::uint64_t probes = 0;       //!< canary requests routed
        std::uint64_t failovers = 0;    //!< requests re-routed away
    };

    RecoveryController(const Config &config, std::uint32_t shard_count);

    const Config &config() const { return cfg; }
    std::uint32_t shards() const { return std::uint32_t(mons.size()); }
    std::uint64_t epoch() const { return epoch_; }

    /**
     * Fold shard @p shard's signals for the epoch being closed.
     * @return the state after any transition this sample caused.
     */
    ShardState sampleEpoch(std::uint32_t shard,
                           const ShardSignals &sig);

    /** Advance the epoch counter (call once per epoch, after all
     *  shards sampled). */
    void endEpoch() { epoch_++; }

    ShardState state(std::uint32_t shard) const;
    double ewma(std::uint32_t shard) const;
    bool degraded(std::uint32_t shard) const;
    bool quarantined(std::uint32_t shard) const;

    /** Bit s set when shard s accepts new requests (not
     *  quarantined). Never returns 0: with every shard quarantined,
     *  routing falls back to the natural owner anyway. */
    std::uint64_t routableMask() const;

    /**
     * Route one new request whose interleave-natural owner is
     * @p natural. Healthy/degraded owners keep their traffic; a
     * quarantined owner receives every probePeriod-th request as a
     * canary and fails the rest over to a sibling chosen by @p salt
     * (deterministic spread — use the line index). GovernorOnly mode
     * never re-routes.
     */
    std::uint32_t route(std::uint32_t natural, std::uint64_t salt);

    const Counters &counters() const { return stats; }

    /**
     * Lock-free observer snapshot: 2 state bits per shard, shard s
     * at bits (2s)..(2s+1). Written on the control thread at every
     * transition; readable from any thread (stats dumpers, the
     * device-side trace hooks) without synchronizing with the
     * controller.
     */
    std::uint64_t statesSnapshot() const
    {
        return statesWord.load(std::memory_order_acquire);
    }

  private:
    void publish();
    void transition(std::uint32_t shard, ShardState to);

    Config cfg;
    std::vector<HealthMonitor> mons;
    std::vector<ShardState> states;
    /** Completions observed on each shard since it was quarantined
     *  (probe successes). */
    std::vector<std::uint64_t> probeDone;
    /** Per-shard request counter driving the 1-in-N probe cadence. */
    std::vector<std::uint64_t> probeClock;
    Counters stats;
    std::uint64_t epoch_ = 0;
    std::atomic<std::uint64_t> statesWord
        KMU_ATOMIC_ROLE(control_writes, observers_read){0};
};

} // namespace health
} // namespace kmu

#endif // KMU_HEALTH_HEALTH_HH
