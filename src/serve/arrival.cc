#include "serve/arrival.hh"

#include <cmath>

#include "common/logging.hh"

namespace kmu
{
namespace serve
{

ArrivalGen::ArrivalGen(const ServeConfig &cfg)
    : kind(cfg.arrival), ratePerUs(cfg.lambdaPerUs),
      onSpanUs(cfg.duty * cfg.burstPeriodUs),
      periodUs(cfg.burstPeriodUs), rng(cfg.seed)
{
    kmuAssert(cfg.lambdaPerUs > 0.0,
              "arrival rate must be positive");
    if (kind == ArrivalKind::Bursty) {
        kmuAssert(cfg.duty > 0.0 && cfg.duty <= 1.0,
                  "bursty duty cycle must be in (0, 1]");
        kmuAssert(cfg.burstPeriodUs > 0.0,
                  "bursty period must be positive");
        // Drawing at lambda/duty while ON keeps the long-run offered
        // rate at lambda.
        ratePerUs = cfg.lambdaPerUs / cfg.duty;
    }
}

Tick
ArrivalGen::next()
{
    kmuAssert(kind != ArrivalKind::Off,
              "arrival generator constructed with serving off");
    // Exponential inter-arrival: nextDouble() is in [0, 1), so
    // 1 - u is in (0, 1] and the log is finite and non-positive.
    const double u = rng.nextDouble();
    virtualUs += -std::log(1.0 - u) / ratePerUs;
    double realUs = virtualUs;
    if (kind == ArrivalKind::Bursty) {
        // Map the virtual ON-clock onto real time: ON-span k of
        // length onSpanUs occupies the head of real period k.
        const double span = std::floor(virtualUs / onSpanUs);
        realUs = span * periodUs + (virtualUs - span * onSpanUs);
    }
    return Tick(realUs * 1e6); // us -> ps
}

} // namespace serve
} // namespace kmu
