/**
 * @file
 * Seeded open-loop arrival processes.
 *
 * An ArrivalGen hands out a monotone stream of absolute arrival
 * ticks. Two shapes:
 *
 *  - Poisson: memoryless exponential inter-arrivals at rate lambda,
 *    the classic open-loop datacenter load model.
 *  - Bursty:  an ON/OFF modulated Poisson source. Arrivals are drawn
 *    at rate lambda/duty on a *virtual* clock that only advances
 *    while the source is ON, then mapped onto real time by slotting
 *    each ON-span of length duty*period at the head of its period.
 *    The long-run rate stays lambda, but requests cluster into
 *    bursts that stress queueing far beyond the Poisson case.
 *
 * Determinism: one Rng seeded from ServeConfig::seed, pure double
 * arithmetic, no wall clock — identical seeds give identical tick
 * streams on every run and machine.
 */

#ifndef KMU_SERVE_ARRIVAL_HH
#define KMU_SERVE_ARRIVAL_HH

#include "common/random.hh"
#include "common/types.hh"
#include "serve/serve_config.hh"

namespace kmu
{
namespace serve
{

class ArrivalGen
{
  public:
    explicit ArrivalGen(const ServeConfig &cfg);

    /**
     * Absolute tick of the next arrival. Monotone non-decreasing;
     * successive calls walk the arrival stream.
     */
    Tick next();

  private:
    ArrivalKind kind;
    double ratePerUs;    //!< draw rate on the (virtual) clock
    double onSpanUs;     //!< ON window length (Bursty only)
    double periodUs;     //!< ON+OFF period length (Bursty only)
    double virtualUs = 0.0; //!< cumulative virtual arrival clock
    Rng rng;
};

} // namespace serve
} // namespace kmu

#endif // KMU_SERVE_ARRIVAL_HH
