#include "serve/serve_driver.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace kmu
{
namespace serve
{

ServeDriver::ServeDriver(const ServeConfig &config, EventQueue &queue,
                         StatGroup *parent, std::uint32_t num_lanes)
    : SimObject("serve", queue, parent), cfg(config), gen(config),
      zipf(config.numKeys, config.zipfTheta),
      keyRng(mix64(config.seed ^ 0x5e27e0ull)),
      lanes(num_lanes),
      sloTicks(Tick(config.sloUs * 1e6)),
      arrived(stats(), "requests_arrived",
              "requests emitted by the arrival process"),
      retired(stats(), "requests_completed",
              "requests retired by the cores"),
      underSlo(stats(), "requests_under_slo",
               "completed requests within the latency SLO"),
      latencyNs(stats(), "request_latency_log_ns",
                "arrival-to-retirement latency incl. queueing (ns)",
                1.0, latencyBuckets)
{
    kmuAssert(cfg.enabled(), "serve driver needs arrivals enabled");
    kmuAssert(num_lanes > 0, "serve driver needs at least one lane");
    kmuAssert(cfg.valueLines > 0, "requests must read >= 1 line");
    // Request addresses must stay clear of the generation-tag and
    // shard-id bits (hostAddr bits 48..61).
    const Addr top = Addr(cfg.numKeys) * cfg.valueLines;
    kmuAssert(top < (Addr(1) << (48 - cacheLineShift)),
              "keyspace times value size overflows the address tags");
}

void
ServeDriver::start()
{
    scheduleNext();
}

void
ServeDriver::scheduleNext()
{
    const Tick at = gen.next();
    if (cfg.clients != 0 && inFlight >= cfg.clients) {
        // Partly-open loop: every emulated client is waiting on a
        // response, so the arrival clock pauses. retire() resumes
        // it from the withheld tick.
        paused = true;
        pausedAt = at;
        return;
    }
    const Tick when = std::max(at, curTick());
    eventQueue().scheduleLambda(when, [this] { onArrival(); });
}

void
ServeDriver::bindTo(Lane &lane, const Request &req)
{
    lane.bound.push_back(req);
    lane.boundCount++;
}

void
ServeDriver::onArrival()
{
    Request req{curTick(), zipf.draw(keyRng), nextSeq++};
    if (curTick() >= measureStart)
        ++arrived;
    inFlight++;
    peakInFlight = std::max(peakInFlight, inFlight);
    trace::begin(trace::Kind::Request, req.seq, traceLane);
    if (!waiters.empty()) {
        // Hand the request straight to the longest-parked lane; its
        // re-entered gate call finds the iteration already bound.
        const std::uint32_t id = waiters.front();
        waiters.pop_front();
        Lane &lane = lanes[id];
        lane.waiting = false;
        bindTo(lane, req);
        auto wake = std::move(lane.wake);
        lane.wake = nullptr;
        kmuAssert(wake != nullptr, "parked lane lost its wake hook");
        wake();
    } else {
        pendingRequests.push_back(req);
    }
    scheduleNext();
}

bool
ServeDriver::admit(std::uint32_t lane_id, std::uint64_t iter,
                   std::function<void()> wake)
{
    kmuAssert(lane_id < lanes.size(), "admit: lane out of range");
    Lane &lane = lanes[lane_id];
    if (iter < lane.boundCount)
        return true; // already bound (re-entry after a wake)
    kmuAssert(iter == lane.boundCount,
              "lanes must bind iterations in order");
    if (!pendingRequests.empty()) {
        bindTo(lane, pendingRequests.front());
        pendingRequests.pop_front();
        return true;
    }
    // Park. Refresh the wake hook even when already queued so the
    // newest continuation is the one that runs.
    lane.wake = std::move(wake);
    if (!lane.waiting) {
        lane.waiting = true;
        waiters.push_back(lane_id);
    }
    return false;
}

Addr
ServeDriver::addressFor(std::uint32_t lane_id, std::uint64_t iter,
                        std::uint32_t slot) const
{
    kmuAssert(lane_id < lanes.size(), "address: lane out of range");
    const Lane &lane = lanes[lane_id];
    kmuAssert(iter >= lane.retiredCount && iter < lane.boundCount,
              "address query for an unbound iteration");
    const std::size_t idx = std::size_t(iter - lane.retiredCount);
    const Request &req = lane.bound[idx];
    return (Addr(req.key) * cfg.valueLines + slot) * cacheLineSize;
}

void
ServeDriver::retire(std::uint32_t lane_id, std::uint64_t iter)
{
    kmuAssert(lane_id < lanes.size(), "retire: lane out of range");
    Lane &lane = lanes[lane_id];
    kmuAssert(!lane.bound.empty() && iter == lane.retiredCount,
              "lanes must retire iterations in order");
    const Request req = lane.bound.front();
    lane.bound.pop_front();
    lane.retiredCount++;
    kmuAssert(inFlight > 0, "retire without an in-flight request");
    inFlight--;

    const Tick latency = curTick() - req.arrivalTick;
    const double latencyNsValue = double(latency) / 1000.0;
    if (curTick() >= measureStart) {
        ++retired;
        latencyNs.sample(latencyNsValue);
        if (latency <= sloTicks)
            ++underSlo;
    }
    const auto arg = std::uint32_t(std::min<double>(
        latencyNsValue, std::numeric_limits<std::uint32_t>::max()));
    trace::end(trace::Kind::Request, req.seq, traceLane, arg);

    if (paused && (cfg.clients == 0 || inFlight < cfg.clients)) {
        paused = false;
        const Tick when = std::max(pausedAt, curTick());
        eventQueue().scheduleLambda(when, [this] { onArrival(); });
    }
}

} // namespace serve
} // namespace kmu
