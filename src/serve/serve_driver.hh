/**
 * @file
 * Open-loop request driver for the timing model.
 *
 * A ServeDriver turns the closed-loop microbenchmark cores into an
 * RPC-style service: a seeded arrival process (ArrivalGen) emits
 * requests whose keys a ZipfSampler draws, and cores only begin an
 * iteration once a request has been bound to them. Each request is
 * timestamped at arrival and at retirement, so the recorded latency
 * includes the time it queued waiting for a free execution lane —
 * the quantity a closed loop structurally cannot observe, and the
 * one that produces the latency knee as offered load approaches
 * capacity.
 *
 * Execution lanes: every independent iteration stream in the system
 * is one lane — an SMT context for the on-demand model, a ULT thread
 * for prefetch and SW-queue — numbered core * lanesPerCore + thread.
 * Dispatch is globally FIFO two ways at once: an arriving request
 * binds to the longest-parked lane if one is idle, and a lane that
 * finds no request parks in arrival order behind its wake callback.
 * Within a lane, requests bind and retire strictly in order, which
 * is what lets addressFor() index in-flight requests by iteration
 * number.
 *
 * The three core hooks (installed into SystemConfig by SimSystem):
 *
 *   admit(lane, iter, wake)  gate called before an iteration starts;
 *                            false parks the lane until an arrival
 *   addressFor(lane, iter, slot)  line address of one value read
 *   retire(lane, iter)       completion timestamp + latency sample
 *
 * Measurement windowing: arrivals and retirements before
 * setMeasureStart()'s tick are driven normally but not counted, so
 * offered/completed/latency cover exactly the measurement window.
 * A request in flight across the boundary counts toward the window
 * it retires in, queueing delay included — steady-state accounting,
 * not a cold start.
 */

#ifndef KMU_SERVE_SERVE_DRIVER_HH
#define KMU_SERVE_SERVE_DRIVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "serve/arrival.hh"
#include "serve/popularity.hh"
#include "serve/serve_config.hh"
#include "sim/sim_object.hh"

namespace kmu
{
namespace serve
{

class ServeDriver : public SimObject
{
  public:
    /** Buckets of the request-latency log histogram (ns, log2). */
    static constexpr std::size_t latencyBuckets = 32;

    /**
     * @param cfg        serving knobs (must be enabled()).
     * @param eq         the system event queue.
     * @param parent     stat parent (the system root group).
     * @param num_lanes  independent iteration streams in the system.
     */
    ServeDriver(const ServeConfig &cfg, EventQueue &queue,
                StatGroup *parent, std::uint32_t num_lanes);

    /** Schedule the first arrival (call once, before run()). */
    void start();

    /**
     * Admission gate for iteration @p iter of lane @p lane. True
     * binds a request to the lane (idempotent for an already-bound
     * iteration); false parks the lane and stores @p wake to be
     * invoked when a request arrives for it.
     */
    bool admit(std::uint32_t lane, std::uint64_t iter,
               std::function<void()> wake);

    /** Line address of read @p slot of the request bound at @p iter. */
    Addr addressFor(std::uint32_t lane, std::uint64_t iter,
                    std::uint32_t slot) const;

    /** Retire the oldest bound request of @p lane (= @p iter). */
    void retire(std::uint32_t lane, std::uint64_t iter);

    /** Trace lane request spans are recorded on. */
    void setTraceLane(std::uint16_t lane) { traceLane = lane; }

    /** Arrivals/retires before @p tick go uncounted (warmup). */
    void setMeasureStart(Tick tick) { measureStart = tick; }

    /** @{ Results, scoped to the measurement window. */
    std::uint64_t offered() const { return arrived.value(); }
    std::uint64_t completed() const { return retired.value(); }
    std::uint64_t sloMet() const { return underSlo.value(); }
    std::uint64_t inFlightPeak() const { return peakInFlight; }
    const LogHistogram &latencyLog() const { return latencyNs; }
    /** @} */

  private:
    struct Request
    {
        Tick arrivalTick;
        std::uint64_t key;
        std::uint64_t seq;
    };

    struct Lane
    {
        /** Bound, not yet retired; front is the oldest. */
        std::deque<Request> bound;
        std::uint64_t boundCount = 0;   //!< iterations ever bound
        std::uint64_t retiredCount = 0; //!< iterations ever retired
        bool waiting = false;           //!< queued in waiters
        std::function<void()> wake;
    };

    void onArrival();
    void scheduleNext();
    void bindTo(Lane &lane, const Request &req);

    ServeConfig cfg;
    ArrivalGen gen;
    ZipfSampler zipf;
    Rng keyRng; //!< popularity draws (separate from arrival stream)

    std::vector<Lane> lanes;
    std::deque<Request> pendingRequests; //!< arrived, no free lane
    std::deque<std::uint32_t> waiters;   //!< parked lanes, FIFO

    std::uint64_t nextSeq = 0;
    std::uint32_t inFlight = 0;
    std::uint32_t peakInFlight = 0;
    bool paused = false;   //!< client cap reached; clock withheld
    Tick pausedAt = 0;     //!< pending next-arrival tick while paused
    Tick measureStart = 0; //!< stats ignore events before this tick
    Tick sloTicks;
    std::uint16_t traceLane = 0;

    Counter arrived;
    Counter retired;
    Counter underSlo;
    LogHistogram latencyNs;
};

} // namespace serve
} // namespace kmu

#endif // KMU_SERVE_SERVE_DRIVER_HH
