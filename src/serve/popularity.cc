#include "serve/popularity.hh"

#include <cmath>

#include "common/logging.hh"

namespace kmu
{
namespace serve
{

namespace
{

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(double(i), theta);
    return sum;
}

} // namespace

ZipfSampler::ZipfSampler(std::uint64_t keys, double skew)
    : n(keys), theta(skew)
{
    kmuAssert(n > 0, "zipf sampler needs a non-empty keyspace");
    kmuAssert(theta >= 0.0 && theta < 1.0,
              "zipf theta must be in [0, 1)");
    if (theta == 0.0)
        return; // uniform: no normalizer needed
    alpha = 1.0 / (1.0 - theta);
    zetan = zeta(n, theta);
    const double zeta2 = zeta(2 < n ? 2 : n, theta);
    eta = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
          (1.0 - zeta2 / zetan);
}

std::uint64_t
ZipfSampler::draw(Rng &rng) const
{
    if (theta == 0.0)
        return rng.nextBounded(n);
    const double u = rng.nextDouble();
    const double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (n > 1 && uz < 1.0 + std::pow(0.5, theta))
        return 1;
    const double r =
        double(n) * std::pow(eta * u - eta + 1.0, alpha);
    std::uint64_t rank = std::uint64_t(r);
    if (rank >= n)
        rank = n - 1;
    return rank;
}

double
ZipfSampler::rankProbability(std::uint64_t r) const
{
    kmuAssert(r < n, "rank out of range");
    if (theta == 0.0)
        return 1.0 / double(n);
    return 1.0 / (std::pow(double(r + 1), theta) * zetan);
}

} // namespace serve
} // namespace kmu
