/**
 * @file
 * Configuration of the open-loop serving mode (src/serve).
 *
 * Plain data only: the struct is embedded in SystemConfig and must
 * survive fork() into sweep workers, carry no pointers, and pull in
 * no heavyweight headers (core links serve, never the reverse).
 */

#ifndef KMU_SERVE_SERVE_CONFIG_HH
#define KMU_SERVE_SERVE_CONFIG_HH

#include <cstdint>

namespace kmu
{
namespace serve
{

/** Shape of the arrival process. */
enum class ArrivalKind : std::uint8_t
{
    Off,     //!< serving disabled: the classic closed-loop replay
    Poisson, //!< memoryless arrivals at rate lambda
    Bursty   //!< ON/OFF modulated Poisson (duty-cycled bursts)
};

/**
 * Open-loop load generator knobs.
 *
 * With arrival == Off nothing in the system changes: SimSystem
 * installs no hooks and every existing figure stays byte-identical.
 * Otherwise a ServeDriver paces request admission: cores only start
 * an iteration when a request has arrived for it, and each request
 * is timestamped at arrival and at retirement so the recorded
 * latency includes queueing delay — the open-loop property that
 * closed-loop replay cannot measure.
 */
struct ServeConfig
{
    ArrivalKind arrival = ArrivalKind::Off;

    /** Mean offered load in requests per microsecond. */
    double lambdaPerUs = 1.0;

    /**
     * Zipf skew of key popularity (theta in [0, 1)); 0 draws keys
     * uniformly. YCSB's default is 0.99.
     */
    double zipfTheta = 0.0;

    /** Number of distinct keys in the keyspace. */
    std::uint64_t numKeys = 1u << 20;

    /** Cache lines fetched per request (the value size). */
    std::uint32_t valueLines = 1;

    /**
     * Emulated client population: arrivals pause while this many
     * requests are in flight (0 = unlimited, a pure open loop).
     * Finite clients make the generator "partly open": a saturated
     * system back-pressures the arrival clock instead of queueing
     * unboundedly.
     */
    std::uint32_t clients = 0;

    /** Per-request latency SLO in microseconds (goodput threshold). */
    double sloUs = 100.0;

    /** Seed of the arrival/popularity stream. */
    std::uint64_t seed = 1;

    /** @{ Bursty (ON/OFF) shape; ignored for Poisson. */
    /** Fraction of time the source is ON (0 < duty <= 1). */
    double duty = 0.5;
    /** Length of one ON+OFF period in microseconds. */
    double burstPeriodUs = 50.0;
    /** @} */

    bool enabled() const { return arrival != ArrivalKind::Off; }
};

} // namespace serve
} // namespace kmu

#endif // KMU_SERVE_SERVE_CONFIG_HH
