/**
 * @file
 * Zipfian key-popularity sampler (YCSB flavour).
 *
 * Implements the constant-time rejection-free Zipf draw of Gray et
 * al. ("Quickly generating billion-record synthetic databases"), the
 * same algorithm YCSB's ZipfianGenerator uses: the harmonic
 * normalizer zeta(n, theta) is computed once at construction, after
 * which each draw costs one uniform double and one pow(). Rank 0 is
 * the most popular key. theta = 0 degenerates to a uniform draw.
 */

#ifndef KMU_SERVE_POPULARITY_HH
#define KMU_SERVE_POPULARITY_HH

#include <cstdint>

#include "common/random.hh"

namespace kmu
{
namespace serve
{

class ZipfSampler
{
  public:
    /**
     * @param n      keyspace size (> 0).
     * @param theta  skew in [0, 1); 0 = uniform, YCSB default 0.99.
     */
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw a key rank in [0, n); rank 0 is the hottest key. */
    std::uint64_t draw(Rng &rng) const;

    std::uint64_t keys() const { return n; }
    double skew() const { return theta; }

    /**
     * Expected probability of rank @p r under the fitted
     * distribution (1/r^theta normalized); test hook.
     */
    double rankProbability(std::uint64_t r) const;

  private:
    std::uint64_t n;
    double theta;
    double alpha = 0.0; //!< 1 / (1 - theta)
    double zetan = 0.0; //!< zeta(n, theta)
    double eta = 0.0;
};

} // namespace serve
} // namespace kmu

#endif // KMU_SERVE_POPULARITY_HH
