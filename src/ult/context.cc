#include "ult/context.hh"

#include "common/logging.hh"

extern "C" void kmuFiberBootstrap();

namespace kmu
{

FiberContext
makeFiberContext(void *stack, std::size_t size, FiberEntryFn entry,
                 void *arg)
{
    kmuAssert(size >= 1024, "fiber stack too small (%zu bytes)", size);

    // Highest 16-byte-aligned address within the stack.
    auto top = (reinterpret_cast<std::uintptr_t>(stack) + size) & ~15ull;

    // Seed the frame that kmuCtxSwitch's restore path consumes:
    //   [top-8]  terminator (fake return address for unwinders)
    //   [top-16] kmuFiberBootstrap   <- `ret` target
    //   [top-24] rbp slot = arg
    //   [top-32] rbx slot = entry
    //   [top-40] r12 = 0 ... [top-64] r15 = 0
    auto *slots = reinterpret_cast<std::uintptr_t *>(top);
    slots[-1] = 0;
    slots[-2] = reinterpret_cast<std::uintptr_t>(&kmuFiberBootstrap);
    slots[-3] = reinterpret_cast<std::uintptr_t>(arg);
    slots[-4] = reinterpret_cast<std::uintptr_t>(entry);
    slots[-5] = 0;
    slots[-6] = 0;
    slots[-7] = 0;
    slots[-8] = 0;

    FiberContext ctx;
    ctx.sp = reinterpret_cast<void *>(top - 8 * sizeof(std::uintptr_t));
    return ctx;
}

} // namespace kmu
