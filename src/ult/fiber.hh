/**
 * @file
 * Stackful user-level threads (fibers).
 *
 * A Fiber owns a private stack and an entry callable. Fibers are
 * cooperative: they run until they call Scheduler::yield()/block()
 * or return from their entry. They are the unit the paper's
 * latency-hiding software uses — tens of fibers per core, switched
 * in 20–50 ns, each issuing a device access and yielding.
 */

#ifndef KMU_ULT_FIBER_HH
#define KMU_ULT_FIBER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "ult/context.hh"

namespace kmu
{

class Scheduler;

/** Lifecycle of a fiber. */
enum class FiberState
{
    Ready,    //!< runnable, waiting in the scheduler queue
    Running,  //!< currently executing
    Blocked,  //!< waiting for an external wake (device completion)
    Finished  //!< entry returned; stack reclaimable
};

class Fiber
{
  public:
    static constexpr std::size_t defaultStackBytes = 64 * 1024;

    /**
     * @param entry fiber body; runs on the fiber's own stack.
     * @param stack_bytes private stack size (rounded up to whole
     *        pages; an inaccessible guard page below the stack turns
     *        overflow into an immediate fault instead of silent
     *        corruption).
     */
    explicit Fiber(std::function<void()> entry,
                   std::size_t stack_bytes = defaultStackBytes);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    FiberState state() const { return fiberState; }
    bool finished() const { return fiberState == FiberState::Finished; }

    /** Stack bytes never written (0xAB watermark intact); a health
     *  check for sizing stacks. Valid any time after construction. */
    std::size_t stackHeadroom() const;

    std::size_t stackBytes() const { return stackSize; }

    /** Spawn-order index within the owning scheduler; stable for the
     *  fiber's whole life, used as its trace lane. */
    std::uint32_t index() const { return spawnIndex; }

  private:
    friend class Scheduler;

    /** Static entry thunk handed to makeFiberContext. */
    static void entryThunk(void *self);

    std::function<void()> entry;
    void *mapping = nullptr;      //!< mmap base (guard page first)
    std::size_t mappingSize = 0;  //!< guard page + stack
    std::uint8_t *stack = nullptr; //!< usable stack base
    std::size_t stackSize;
    FiberContext context;
    FiberState fiberState = FiberState::Ready;
    Scheduler *owner = nullptr;
    std::uint32_t spawnIndex = 0;

    // Sanitizer bookkeeping (both nullptr in unsanitized builds; see
    // common/sanitizer.hh). tsanFiber is this fiber's TSan shadow
    // context; fakeStack is the ASan fake-stack handle saved whenever
    // this fiber's stack is switched away from.
    void *tsanFiber = nullptr;
    void *fakeStack = nullptr;
};

} // namespace kmu

#endif // KMU_ULT_FIBER_HH
