#include "ult/fiber.hh"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/sanitizer.hh"
#include "ult/scheduler.hh"

namespace kmu
{

namespace
{

/** Watermark byte used to measure stack headroom. */
constexpr std::uint8_t stackWatermark = 0xab;

} // anonymous namespace

Fiber::Fiber(std::function<void()> entry_fn, std::size_t stack_bytes)
    : entry(std::move(entry_fn))
{
    kmuAssert(entry != nullptr, "fiber requires an entry function");

    // Page-granular mapping with an inaccessible guard page at the
    // low end (stacks grow down): overflow faults instead of
    // scribbling over a neighbouring fiber's stack.
    const std::size_t page = std::size_t(sysconf(_SC_PAGESIZE));
    stackSize = roundUp(stack_bytes, page);
    mappingSize = stackSize + page;
    mapping = mmap(nullptr, mappingSize, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mapping == MAP_FAILED)
        fatal("cannot map a %zu-byte fiber stack", mappingSize);
    if (mprotect(mapping, page, PROT_NONE) != 0)
        fatal("cannot protect the fiber stack guard page");

    stack = static_cast<std::uint8_t *>(mapping) + page;
    // mmap may hand back an address range a dead fiber's stack once
    // occupied; its ASan shadow still carries that fiber's redzones.
    kmuSanUnpoisonStack(stack, stackSize);
    std::memset(stack, stackWatermark, stackSize);
    context = makeFiberContext(stack, stackSize,
                               &Fiber::entryThunk, this);

    tsanFiber = kmuSanCreateFiber();
    kmuSanSetFiberName(tsanFiber, "kmu::Fiber");
}

Fiber::~Fiber()
{
    kmuAssert(fiberState != FiberState::Running,
              "fiber destroyed while running");
    kmuSanDestroyFiber(tsanFiber);
    if (mapping) {
        kmuSanUnpoisonStack(stack, stackSize);
        munmap(mapping, mappingSize);
    }
}

std::size_t
Fiber::stackHeadroom() const
{
    std::size_t untouched = 0;
    while (untouched < stackSize &&
           stack[untouched] == stackWatermark) {
        untouched++;
    }
    return untouched;
}

void
Fiber::entryThunk(void *self)
{
    auto *fiber = static_cast<Fiber *>(self);
    // First instructions on this stack: complete the sanitizer-level
    // switch the dispatching scheduler started (records the host
    // stack's bounds in the owner as a side effect).
    kmuAssert(fiber->owner != nullptr, "fiber activated with no owner");
    fiber->owner->sanFinishFirstActivation();
    fiber->entry();
    fiber->fiberState = FiberState::Finished;
    // Hand control back to the scheduler for good; the scheduler
    // never resumes a Finished fiber.
    kmuAssert(fiber->owner != nullptr, "finished fiber has no owner");
    fiber->owner->yield();
    panic("finished fiber was resumed");
}

} // namespace kmu
