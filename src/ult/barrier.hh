/**
 * @file
 * Cooperative barrier for fibers of one scheduler.
 *
 * Used by level-synchronous algorithms (e.g. multi-worker BFS): each
 * worker calls arrive() at the end of a phase; the last arrival
 * releases everyone and the barrier resets for the next phase.
 */

#ifndef KMU_ULT_BARRIER_HH
#define KMU_ULT_BARRIER_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "ult/scheduler.hh"

namespace kmu
{

class FiberBarrier
{
  public:
    FiberBarrier(Scheduler &scheduler, std::size_t party_count)
        : sched(scheduler), parties(party_count)
    {
        kmuAssert(parties >= 1, "barrier needs at least one party");
        waiters.reserve(parties);
    }

    /**
     * Arrive at the barrier.
     * @return true for exactly one caller per generation (the last
     *         arrival), which may perform phase-transition work
     *         before the others resume.
     */
    bool
    arrive()
    {
        if (waiters.size() + 1 == parties) {
            // Last arrival: release the generation.
            for (Fiber *fiber : waiters)
                sched.unblock(*fiber);
            waiters.clear();
            generation++;
            return true;
        }
        Fiber *self = sched.current();
        kmuAssert(self != nullptr, "barrier arrive outside a fiber");
        waiters.push_back(self);
        sched.block();
        return false;
    }

    std::uint64_t generations() const { return generation; }

  private:
    Scheduler &sched;
    std::size_t parties;
    std::vector<Fiber *> waiters;
    std::uint64_t generation = 0;
};

} // namespace kmu

#endif // KMU_ULT_BARRIER_HH
