/**
 * @file
 * Raw user-level context-switch primitive.
 *
 * The paper reduced GNU Pth's 2 µs context switches to 20–50 ns by
 * stripping the switch down to the bare minimum: save callee-saved
 * registers, swap stack pointers, restore. This header exposes that
 * primitive; Fiber and the schedulers build on it.
 *
 * On x86-64 SysV the switch is ~12 instructions of hand-written
 * assembly (context_switch.S). Signal masks, FPU environment, and TLS
 * are deliberately *not* switched — the same functionality the paper
 * sacrificed for speed.
 */

#ifndef KMU_ULT_CONTEXT_HH
#define KMU_ULT_CONTEXT_HH

#include <cstddef>
#include <cstdint>

namespace kmu
{

/**
 * Saved execution context: just the stack pointer. All other state
 * lives on the fiber's stack.
 */
struct FiberContext
{
    void *sp = nullptr;
};

/** Signature of a fiber entry function; @p arg is caller-defined. */
using FiberEntryFn = void (*)(void *arg);

/**
 * Suspend the current context into @p from and resume @p to.
 * Returns when some other context switches back into @p from.
 */
extern "C" void kmuCtxSwitch(FiberContext *from, FiberContext *to);

/**
 * Prepare a fresh context at the top of [stack, stack+size) that,
 * when first switched to, invokes entry(arg). The entry function
 * must never return; it must switch away (and its owner must never
 * resume it again) when finished.
 *
 * @return the initialized context.
 */
FiberContext makeFiberContext(void *stack, std::size_t size,
                              FiberEntryFn entry, void *arg);

} // namespace kmu

#endif // KMU_ULT_CONTEXT_HH
