/**
 * @file
 * Cooperative round-robin scheduler for fibers.
 *
 * The scheduler runs on its caller's (OS thread's) context. run()
 * repeatedly resumes the next ready fiber; fibers come back via
 * yield() (requeue at the tail — round robin), block() (wait for an
 * external unblock(), e.g. a device completion), or by finishing.
 *
 * When no fiber is ready but some are blocked, the scheduler invokes
 * the *idle handler* — the hook where the software-queue runtime
 * polls its completion queue, mirroring the paper's design ("the
 * scheduler polls the completion queue only when no threads remain
 * in the ready state"). Fibers are managed strictly FIFO, which also
 * keeps device access sequences deterministic for replay.
 */

#ifndef KMU_ULT_SCHEDULER_HH
#define KMU_ULT_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "ult/fiber.hh"

namespace kmu
{

class Scheduler
{
  public:
    /**
     * Called when every live fiber is blocked. Should make progress
     * toward unblocking at least one (e.g. reap completions).
     * Return false to declare deadlock and abort run().
     */
    using IdleHandler = std::function<bool()>;

    Scheduler();
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Create a fiber owned by this scheduler; it becomes Ready. */
    Fiber &spawn(std::function<void()> entry,
                 std::size_t stack_bytes = Fiber::defaultStackBytes);

    /** Run until all fibers have finished. */
    void run();

    /** From inside a fiber: requeue self and resume the scheduler. */
    void yield();

    /** From inside a fiber: mark self Blocked and switch away. The
     *  fiber resumes only after some context calls unblock(). */
    void block();

    /** Make a Blocked fiber Ready (FIFO order). Callable from the
     *  scheduler context or from another fiber of this scheduler. */
    void unblock(Fiber &fiber);

    /** Install the all-blocked hook (see IdleHandler). */
    void setIdleHandler(IdleHandler handler);

    /** Fiber currently executing, or nullptr in scheduler context. */
    Fiber *current() { return running; }

    /** Fibers not yet finished. */
    std::size_t liveFibers() const { return live; }

    /** Total fiber-to-scheduler-to-fiber switch pairs performed. */
    std::uint64_t switches() const { return switchCount; }

    /** The scheduler of the calling OS thread's innermost run(). */
    static Scheduler *currentScheduler();

  private:
    friend class Fiber;

    /** Resume @p fiber from the scheduler context. */
    void dispatch(Fiber &fiber);

    /** From a fiber: save into the fiber, resume scheduler context. */
    void switchToScheduler();

    /**
     * Complete the sanitizer-level stack switch on a fiber's very
     * first activation; called by Fiber::entryThunk before any user
     * code runs. Captures the host (dispatching) stack's bounds so
     * later fiber-to-scheduler switches can announce them to ASan.
     */
    void sanFinishFirstActivation();

    std::vector<std::unique_ptr<Fiber>> fibers;
    std::uint32_t nextSpawnIndex = 0;
    std::deque<Fiber *> readyQueue;
    Fiber *running = nullptr;
    FiberContext schedulerContext;
    IdleHandler idleHandler;
    std::size_t live = 0;
    std::uint64_t switchCount = 0;
    bool inRun = false;

    // Sanitizer view of the host context (the stack run() was called
    // on). The bounds are learned from the first fiber activation's
    // finish-switch and refreshed on every return to the scheduler;
    // all of this is inert in unsanitized builds.
    const void *hostStackBottom = nullptr;
    std::size_t hostStackSize = 0;
    void *hostFakeStack = nullptr;
    void *hostTsanFiber = nullptr;
};

/**
 * Convenience free functions targeting the calling thread's active
 * scheduler; these are what application code and dev_access() use.
 */
namespace thisFiber
{

/** Yield the current fiber (round-robin requeue). */
void yield();

/** Block the current fiber until unblocked. */
void block();

/** Trace lane of the calling fiber (its spawn index), or 0 when
 *  called outside any fiber. */
std::uint16_t traceLane();

} // namespace thisFiber

} // namespace kmu

#endif // KMU_ULT_SCHEDULER_HH
