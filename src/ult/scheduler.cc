#include "ult/scheduler.hh"

#include "common/logging.hh"
#include "common/sanitizer.hh"
#include "trace/trace.hh"

namespace kmu
{

namespace
{

thread_local Scheduler *activeScheduler = nullptr;

} // anonymous namespace

Scheduler::Scheduler() = default;

Scheduler::~Scheduler()
{
    kmuAssert(!inRun, "scheduler destroyed while running");
}

Scheduler *
Scheduler::currentScheduler()
{
    return activeScheduler;
}

Fiber &
Scheduler::spawn(std::function<void()> entry, std::size_t stack_bytes)
{
    auto fiber = std::make_unique<Fiber>(std::move(entry), stack_bytes);
    fiber->owner = this;
    fiber->spawnIndex = nextSpawnIndex++;
    Fiber &ref = *fiber;
    fibers.push_back(std::move(fiber));
    readyQueue.push_back(&ref);
    live++;
    return ref;
}

void
Scheduler::dispatch(Fiber &fiber)
{
    kmuAssert(fiber.fiberState == FiberState::Ready,
              "dispatching a non-ready fiber");
    fiber.fiberState = FiberState::Running;
    running = &fiber;
    switchCount++;
    trace::begin(trace::Kind::FiberRun, fiber.spawnIndex,
                 std::uint16_t(fiber.spawnIndex));
    // Tell the sanitizers we are leaving the host stack for the
    // fiber's; the matching finish runs on the fiber side (entryThunk
    // on first activation, switchToScheduler's resume path after).
    kmuSanSwitchToFiber(fiber.tsanFiber);
    kmuSanStartSwitchFiber(&hostFakeStack, fiber.stack, fiber.stackSize);
    kmuCtxSwitch(&schedulerContext, &fiber.context);
    kmuSanFinishSwitchFiber(hostFakeStack, &hostStackBottom,
                            &hostStackSize);
    trace::end(trace::Kind::FiberRun, fiber.spawnIndex,
               std::uint16_t(fiber.spawnIndex),
               fiber.fiberState == FiberState::Finished ? 1 : 0);
    running = nullptr;
    if (fiber.fiberState == FiberState::Finished) {
        kmuAssert(live > 0, "live fiber count underflow");
        live--;
    }
}

void
Scheduler::switchToScheduler()
{
    Fiber *self = running;
    // A Finished fiber never runs again: pass nullptr so ASan frees
    // its fake stack instead of parking a handle that would leak.
    const bool dying = self->fiberState == FiberState::Finished;
    kmuSanSwitchToFiber(hostTsanFiber);
    kmuSanStartSwitchFiber(dying ? nullptr : &self->fakeStack,
                           hostStackBottom, hostStackSize);
    kmuCtxSwitch(&self->context, &schedulerContext);
    kmuSanFinishSwitchFiber(self->fakeStack, &hostStackBottom,
                            &hostStackSize);
}

void
Scheduler::sanFinishFirstActivation()
{
    kmuSanFinishSwitchFiber(nullptr, &hostStackBottom, &hostStackSize);
}

void
Scheduler::yield()
{
    kmuAssert(running != nullptr, "yield outside a fiber");
    Fiber *self = running;
    if (self->fiberState != FiberState::Finished) {
        self->fiberState = FiberState::Ready;
        readyQueue.push_back(self);
    }
    switchToScheduler();
}

void
Scheduler::block()
{
    kmuAssert(running != nullptr, "block outside a fiber");
    running->fiberState = FiberState::Blocked;
    trace::instant(trace::Kind::FiberBlock, running->spawnIndex,
                   std::uint16_t(running->spawnIndex));
    switchToScheduler();
}

void
Scheduler::unblock(Fiber &fiber)
{
    kmuAssert(fiber.owner == this, "unblock of a foreign fiber");
    kmuAssert(fiber.fiberState == FiberState::Blocked,
              "unblock of a non-blocked fiber");
    fiber.fiberState = FiberState::Ready;
    trace::instant(trace::Kind::FiberUnblock, fiber.spawnIndex,
                   std::uint16_t(fiber.spawnIndex));
    readyQueue.push_back(&fiber);
}

void
Scheduler::setIdleHandler(IdleHandler handler)
{
    idleHandler = std::move(handler);
}

void
Scheduler::run()
{
    kmuAssert(!inRun, "re-entrant Scheduler::run");
    inRun = true;
    Scheduler *previous = activeScheduler;
    activeScheduler = this;
    // TSan context of the host stack; for a nested run() (a fiber
    // driving another scheduler) this is the outer fiber's context.
    hostTsanFiber = kmuSanCurrentFiber();

    while (live > 0) {
        if (readyQueue.empty()) {
            // All live fibers are blocked: poll for completions.
            if (!idleHandler || !idleHandler()) {
                panic("scheduler deadlock: %zu fibers blocked with no "
                      "idle progress", live);
            }
            continue;
        }
        Fiber *next = readyQueue.front();
        readyQueue.pop_front();
        dispatch(*next);
    }

    activeScheduler = previous;
    inRun = false;

    // All fibers finished; release their stacks.
    fibers.clear();
    readyQueue.clear();
}

namespace thisFiber
{

void
yield()
{
    Scheduler *sched = Scheduler::currentScheduler();
    kmuAssert(sched != nullptr, "thisFiber::yield with no scheduler");
    sched->yield();
}

void
block()
{
    Scheduler *sched = Scheduler::currentScheduler();
    kmuAssert(sched != nullptr, "thisFiber::block with no scheduler");
    sched->block();
}

std::uint16_t
traceLane()
{
    Scheduler *sched = Scheduler::currentScheduler();
    if (!sched || !sched->current())
        return 0;
    return std::uint16_t(sched->current()->index());
}

} // namespace thisFiber

} // namespace kmu
