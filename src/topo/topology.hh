/**
 * @file
 * kmu::topo — multi-device shard topology.
 *
 * The paper's platform hangs one microsecond-latency device off one
 * PCIe link; this subsystem generalizes the model to N smaller
 * devices on N links ("what if the capacity came from N devices?").
 * A TopologyConfig describes how many shards exist, how host line
 * addresses interleave across them, and how the chip-level queue
 * budget is provisioned per link. Routing is a pure function of the
 * address, so both the timing model (SimSystem) and the real-time
 * runtime (SwQueueEngine) shard identically.
 *
 * Shard identity also travels on the wire: descriptors' hostAddr
 * fields carry the shard id in bits 56..61 — directly above the
 * 8-bit generation tags in bits 48..55 (queue/descriptor.hh) and
 * still clear of x86-64's 48-bit virtual addresses — so a completion
 * can always be attributed to the link it came back on, and a record
 * arriving on the wrong shard's completion queue is detectable.
 */

#ifndef KMU_TOPO_TOPOLOGY_HH
#define KMU_TOPO_TOPOLOGY_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"
#include "queue/descriptor.hh"

namespace kmu
{
namespace topo
{

/** Granularity at which host addresses interleave across shards. */
enum class Interleave
{
    CacheLine, //!< consecutive 64 B lines round-robin across shards
    Page       //!< consecutive 4 KiB pages round-robin across shards
};

/**
 * How the chip-level PCIe-path queue budget is provisioned when the
 * device population grows from one link to N.
 */
enum class ChipQueuePolicy
{
    /**
     * Every link brings its own full-size root-port queue (the
     * paper's measured 14 entries *per link*): N physical links mean
     * N independent queues. This is what real multi-slot topologies
     * look like, and is the default.
     */
    Replicated,

    /**
     * One port's credit budget is sliced across the shards
     * (capacity / shards, at least 1 per shard): models carving a
     * single bifurcated slot into N narrower links without gaining
     * queue entries. Separates "queue-entries bottleneck" from
     * "single-link bottleneck" in the abl_sharding sweep.
     */
    Partitioned
};

/** Interleave unit in bytes. */
constexpr std::uint64_t interleavePageBytes = 4096;

/** @{
 * hostAddr shard-id bits.
 *
 * Bits 48..55 hold the 8-bit generation tag
 * (RequestDescriptor::hostTagMask); bits 56..61 are still free and
 * hold the shard id, capping the topology at 64 shards. Bits 62..63
 * stay clear. The packing must never collide with the generation
 * tags — tests/topo/shard_bits_test.cc walks the boundary cases.
 */
constexpr unsigned shardTagShift = 56;
constexpr unsigned shardTagBits = 6;
constexpr std::uint32_t maxShards = 1u << shardTagBits;
constexpr Addr shardTagMask = Addr(maxShards - 1) << shardTagShift;

static_assert((shardTagMask & RequestDescriptor::hostTagMask) == 0,
              "shard-id bits collide with the generation tag bits");
static_assert(shardTagShift >= RequestDescriptor::hostTagShift + 8,
              "shard-id field must sit above the 8-bit generation tag");
static_assert((shardTagMask >> 62) == 0,
              "shard-id field must leave bits 62..63 clear");
/** @} */

/** Stamp @p shard into the shard-id field of @p host. */
inline Addr
taggedShard(Addr host, std::uint32_t shard)
{
    return (host & ~shardTagMask) |
           (Addr(shard & (maxShards - 1)) << shardTagShift);
}

/** Shard id carried in a (possibly tagged) host address. */
inline std::uint32_t
shardTag(Addr tagged)
{
    return std::uint32_t((tagged & shardTagMask) >> shardTagShift);
}

/** Host address with the shard-id field cleared. */
inline Addr
stripShard(Addr tagged)
{
    return tagged & ~shardTagMask;
}

/** Static shard topology of one system. */
struct TopologyConfig
{
    /** Device shard count; 1 reproduces the single-device model
     *  exactly (routing degenerates to the identity). */
    std::uint32_t shards = 1;

    /** Address-to-shard interleaving granularity. */
    Interleave interleave = Interleave::CacheLine;

    /** Chip-queue provisioning per link (memory-mapped paths). */
    ChipQueuePolicy chipQueuePolicy = ChipQueuePolicy::Replicated;
};

/** Shard owning host line address @p addr under topology @p topo. */
inline std::uint32_t
shardOf(Addr addr, const TopologyConfig &topo)
{
    if (topo.shards <= 1)
        return 0;
    const std::uint64_t unit = topo.interleave == Interleave::Page
                                   ? interleavePageBytes
                                   : cacheLineSize;
    return std::uint32_t((addr / unit) % topo.shards);
}

/** Per-shard chip-queue capacity out of @p total entries. */
inline std::uint32_t
chipQueueSlice(std::uint32_t total, const TopologyConfig &topo)
{
    if (topo.shards <= 1 ||
        topo.chipQueuePolicy == ChipQueuePolicy::Replicated) {
        return total;
    }
    const std::uint32_t slice = total / topo.shards;
    return slice > 0 ? slice : 1;
}

/**
 * Component name for shard @p shard: the bare @p base when the
 * topology has a single shard (so shards=1 systems keep the exact
 * pre-sharding stat and trace names), "<base>_s<shard>" otherwise.
 */
inline std::string
shardName(const std::string &base, std::uint32_t shard,
          std::uint32_t shards)
{
    if (shards <= 1)
        return base;
    return base + csprintf("_s%u", shard);
}

/**
 * Failover target for a request whose natural owner @p natural is
 * not routable: the surviving shards (set bits of @p routableMask
 * below @p shards, excluding @p natural) split the refugee traffic,
 * selected by @p salt in ring order starting after the natural owner
 * — so under either interleave a quarantined shard's keys spread
 * across *all* siblings instead of piling onto one. Pure function:
 * both stacks, the health controller, and the tests route
 * identically. Returns @p natural when no sibling is routable.
 */
inline std::uint32_t
failoverShard(std::uint32_t natural, std::uint64_t routableMask,
              std::uint32_t shards, std::uint64_t salt)
{
    if (shards <= 1)
        return natural;
    std::uint32_t candidates = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
        if (s != natural && (routableMask >> s & 1u))
            candidates++;
    }
    if (candidates == 0)
        return natural;
    std::uint32_t pick = std::uint32_t(salt % candidates);
    for (std::uint32_t i = 1; i < shards; ++i) {
        const std::uint32_t s = (natural + i) % shards;
        if ((routableMask >> s & 1u) == 0)
            continue;
        if (pick == 0)
            return s;
        pick--;
    }
    return natural; // unreachable: candidates > 0
}

/**
 * Conservative-parallel lookahead of a sharded topology: the minimum
 * simulated latency any event needs to cross a shard boundary. Every
 * boundary today is a PCIe link, whose one-way propagation delay
 * lower-bounds both directions (requests additionally pay wire
 * serialization, completions pay device service), so the link
 * propagation is the tightest safe epoch width for the parallel
 * executor (sim/parallel.hh). Heterogeneous per-shard links would
 * take the minimum here; the topology currently provisions identical
 * links, so the single @p link_propagation is exact. Returns 0 —
 * "no safe window, run serial" — when propagation is 0.
 */
inline Tick
lookaheadTicks(const TopologyConfig &topo, Tick link_propagation)
{
    (void)topo; // uniform links: no per-shard minimum to take yet
    return link_propagation;
}

/** Stable short name of an interleave mode (CLI, CSV columns). */
const char *interleaveName(Interleave mode);

/** Stable short name of a chip-queue policy. */
const char *chipQueuePolicyName(ChipQueuePolicy policy);

} // namespace topo
} // namespace kmu

#endif // KMU_TOPO_TOPOLOGY_HH
