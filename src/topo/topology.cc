#include "topo/topology.hh"

namespace kmu
{
namespace topo
{

const char *
interleaveName(Interleave mode)
{
    switch (mode) {
      case Interleave::CacheLine: return "cacheline";
      case Interleave::Page:      return "page";
    }
    panic("bad interleave mode %u", unsigned(mode));
}

const char *
chipQueuePolicyName(ChipQueuePolicy policy)
{
    switch (policy) {
      case ChipQueuePolicy::Replicated:  return "replicated";
      case ChipQueuePolicy::Partitioned: return "partitioned";
    }
    panic("bad chip-queue policy %u", unsigned(policy));
}

} // namespace topo
} // namespace kmu
