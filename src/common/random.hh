/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in kmu (graph generators, workload
 * synthesis, replay fuzzing) draws from an explicitly seeded Rng so
 * that experiments are reproducible bit-for-bit across runs and
 * machines. The generator is xoshiro256**, seeded via SplitMix64.
 */

#ifndef KMU_COMMON_RANDOM_HH
#define KMU_COMMON_RANDOM_HH

#include <cstdint>

namespace kmu
{

/** SplitMix64 step; used for seeding and cheap hashing. */
std::uint64_t splitMix64(std::uint64_t &state);

/** Stateless 64-bit mix of a value (finalizer of SplitMix64). */
std::uint64_t mix64(std::uint64_t value);

/**
 * xoshiro256** generator with convenience draws.
 *
 * Not thread-safe; give each thread/component its own instance.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed in place. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p = 0.5);

  private:
    std::uint64_t s[4];
};

} // namespace kmu

#endif // KMU_COMMON_RANDOM_HH
