/**
 * @file
 * Lightweight statistics package (gem5-flavoured).
 *
 * Components own a StatGroup and register named statistics with it.
 * At the end of a run the group can be dumped as aligned text or CSV.
 * Four stat kinds cover everything kmu needs:
 *
 *  - Counter:   a monotonically increasing event count / byte count.
 *  - Average:   running mean of sampled values (also tracks min/max).
 *  - Histogram: fixed-width linear bins with underflow/overflow.
 *  - Gauge:     pull-based value read from its owner at dump time
 *               (bridges counters that live outside the stats
 *               package, e.g. lock-free ring counters).
 */

#ifndef KMU_COMMON_STATS_HH
#define KMU_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace kmu
{

class StatGroup;

/** Common metadata for all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup &parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Render the value portion of a dump line. */
    virtual std::string render() const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** Monotonic event counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { count += 1; return *this; }
    Counter &operator+=(std::uint64_t n) { count += n; return *this; }

    std::uint64_t value() const { return count; }

    std::string render() const override;
    void reset() override { count = 0; }

  private:
    std::uint64_t count = 0;
};

/** Running mean over sampled values; tracks min and max too. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double value);

    std::uint64_t samples() const { return sampleCount; }
    double mean() const;
    double min() const { return sampleCount ? minValue : 0.0; }
    double max() const { return sampleCount ? maxValue : 0.0; }

    std::string render() const override;
    void reset() override;

  private:
    std::uint64_t sampleCount = 0;
    double sum = 0.0;
    double minValue = std::numeric_limits<double>::infinity();
    double maxValue = -std::numeric_limits<double>::infinity();
};

/**
 * Pull-based statistic: the value is fetched from a callback at
 * render time instead of being pushed sample by sample. Used to
 * surface counters whose owner cannot depend on the stats package
 * (the SPSC ring's push/pop/reject atomics, device-side totals).
 * reset() latches the current value as a baseline so dumps after a
 * resetAll() report deltas, matching Counter semantics.
 */
class Gauge : public StatBase
{
  public:
    using Source = std::function<std::uint64_t()>;

    Gauge(StatGroup &parent, std::string name, std::string desc,
          Source source);

    std::uint64_t value() const;

    std::string render() const override;
    void reset() override { baseline = source ? source() : 0; }

  private:
    Source source;
    std::uint64_t baseline = 0;
};

/** Linear-bin histogram with underflow/overflow buckets. */
class Histogram : public StatBase
{
  public:
    /**
     * @param lo     lower bound of the first bin.
     * @param width  width of each bin (must be > 0).
     * @param bins   number of bins between the outlier buckets.
     */
    Histogram(StatGroup &parent, std::string name, std::string desc,
              double lo, double width, std::size_t bins);

    void sample(double value);

    /** Fold another histogram's counts in; shapes must match. */
    void merge(const Histogram &other);

    std::uint64_t samples() const { return sampleCount; }
    std::uint64_t binCount(std::size_t i) const { return counts.at(i); }
    std::uint64_t underflow() const { return below; }
    std::uint64_t overflow() const { return above; }
    double mean() const;

    std::string render() const override;
    void reset() override;

  private:
    double lowBound;
    double binWidth;
    std::vector<std::uint64_t> counts;
    std::uint64_t below = 0;
    std::uint64_t above = 0;
    std::uint64_t sampleCount = 0;
    double sum = 0.0;
};

/**
 * Logarithmically bucketed histogram: bucket i spans
 * [lo*2^i, lo*2^(i+1)), with underflow below lo and overflow at or
 * above lo*2^buckets. The geometric spacing makes one histogram span
 * nanosecond cache hits and multi-microsecond device misses — the
 * paper's killer-microsecond range — without thousands of linear
 * bins. Bucket search walks the boundaries with the same doubling
 * arithmetic bucketLow() exposes, so boundary values land exactly in
 * the bucket whose lower edge they equal on every compiler.
 */
class LogHistogram : public StatBase
{
  public:
    /**
     * @param lo       lower bound of bucket 0 (must be > 0).
     * @param buckets  number of log2 buckets before overflow.
     */
    LogHistogram(StatGroup &parent, std::string name,
                 std::string desc, double lo, std::size_t buckets);

    void sample(double value);

    /** Fold another log-histogram's counts in; shapes must match. */
    void merge(const LogHistogram &other);

    std::uint64_t samples() const { return sampleCount; }
    std::size_t buckets() const { return counts.size(); }
    std::uint64_t bucketCount(std::size_t i) const
    {
        return counts.at(i);
    }
    /** Inclusive lower edge of bucket @p i (= lo * 2^i). */
    double bucketLow(std::size_t i) const;
    std::uint64_t underflow() const { return below; }
    std::uint64_t overflow() const { return above; }
    double mean() const;

    /**
     * Estimate the @p q quantile (q in [0, 1], clamped) of the
     * sampled distribution, interpolating linearly inside the bucket
     * the target rank lands in. Underflow samples clamp to the lower
     * bound and overflow samples to the overflow bucket's lower edge,
     * so the estimate is always finite. Returns 0 for an empty
     * histogram. Deterministic: a pure walk over the same doubling
     * boundaries sample() buckets with.
     */
    double quantile(double q) const;

    std::string render() const override;
    void reset() override;

  private:
    double lowBound;
    std::vector<std::uint64_t> counts;
    std::uint64_t below = 0;
    std::uint64_t above = 0;
    std::uint64_t sampleCount = 0;
    double sum = 0.0;
};

/**
 * Named collection of statistics belonging to one component.
 * Groups nest: a SimSystem group holds per-core child groups.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return groupName; }

    /** Fully qualified dotted name (parent.child). */
    std::string path() const;

    /** Dump this group and children as aligned "path value # desc". */
    void dump(std::ostream &os) const;

    /** Reset all stats in this group and its children. */
    void resetAll();

    /** @{ Registration hooks used by StatBase / child groups. */
    void registerStat(StatBase *stat);
    void registerChild(StatGroup *child);
    void unregisterChild(StatGroup *child);
    /** @} */

    const std::vector<StatBase *> &stats() const { return ownedStats; }

  private:
    std::string groupName;
    StatGroup *parent;
    std::vector<StatBase *> ownedStats;
    std::vector<StatGroup *> children;
};

} // namespace kmu

#endif // KMU_COMMON_STATS_HH
