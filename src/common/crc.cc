#include "common/crc.hh"

#include <array>

namespace kmu
{

namespace
{

// Reflected CRC-32C table for the Castagnoli polynomial 0x1EDC6F41
// (reflected form 0x82F63B78), built once at static-init time.
std::array<std::uint32_t, 256>
buildTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> crcTable = buildTable();

} // anonymous namespace

std::uint32_t
crc32c(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        crc = crcTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace kmu
