/**
 * @file
 * Thread-safety capability annotations (clang -Wthread-safety).
 *
 * The concurrency discipline of this codebase is not lock-based: the
 * cross-thread structures (SpscRing, SwQueuePair, the emulated
 * device's doorbell state) are single-owner-per-side lock-free
 * protocols. Clang's thread-safety analysis still applies through
 * *role capabilities*: a ThreadRole is a zero-size capability token
 * standing for "I am the producer side" / "I am the host side", a
 * function that exercises a role declares KMU_REQUIRES(role), and the
 * function that legitimately embodies the role asserts it with a
 * scoped RoleGuard. Any new call path that reaches a role-gated
 * function without declaring the role fails the clang build
 * (-Werror=thread-safety-analysis on the CI clang legs), which is the
 * compile-time cousin of what TSan checks dynamically.
 *
 * On gcc (which has no thread-safety analysis) every macro expands to
 * nothing and ThreadRole/RoleGuard are empty inline types, so the
 * annotations are zero-runtime-cost everywhere.
 *
 * KMU_ATOMIC_ROLE(...) is special: it always expands to nothing, but
 * tools/kmu_analyze requires it (or KMU_GUARDED_BY) on every
 * std::atomic field in the tree, so each shared atomic carries a
 * machine-checked statement of which side writes it and which side
 * reads it.
 */

#ifndef KMU_COMMON_THREAD_ANNOTATIONS_HH
#define KMU_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#  if __has_attribute(capability)
#    define KMU_THREAD_ANNOTATION(x) __attribute__((x))
#  endif
#endif
#ifndef KMU_THREAD_ANNOTATION
#  define KMU_THREAD_ANNOTATION(x) // gcc: no thread-safety analysis
#endif

/** Class attribute: the type is a capability (role, lock, ...). */
#define KMU_CAPABILITY(x) KMU_THREAD_ANNOTATION(capability(x))

/** Class attribute: RAII type that holds a capability for its scope. */
#define KMU_SCOPED_CAPABILITY KMU_THREAD_ANNOTATION(scoped_lockable)

/** Field attribute: reads/writes require holding @p x. */
#define KMU_GUARDED_BY(x) KMU_THREAD_ANNOTATION(guarded_by(x))

/** Field attribute: the pointee is guarded by @p x. */
#define KMU_PT_GUARDED_BY(x) KMU_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function attribute: caller must hold the capabilities. */
#define KMU_REQUIRES(...) \
    KMU_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function attribute: caller must hold them at least shared. */
#define KMU_REQUIRES_SHARED(...) \
    KMU_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function attribute: the function acquires the capabilities. */
#define KMU_ACQUIRE(...) \
    KMU_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function attribute: the function releases the capabilities. */
#define KMU_RELEASE(...) \
    KMU_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function attribute: acquires on a true return. */
#define KMU_TRY_ACQUIRE(...) \
    KMU_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function attribute: must be called *without* the capabilities. */
#define KMU_EXCLUDES(...) KMU_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function attribute: returns a reference to the capability. */
#define KMU_RETURN_CAPABILITY(x) KMU_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch for functions the analysis cannot model (document
 *  why at every use). */
#define KMU_NO_THREAD_SAFETY_ANALYSIS \
    KMU_THREAD_ANNOTATION(no_thread_safety_analysis)

/**
 * Ordering-contract marker for lock-free atomic fields.
 *
 * A std::atomic member *is* the synchronization device, so
 * KMU_GUARDED_BY would be a lie (no capability protects it; its own
 * memory orders do). Instead each atomic field states its contract:
 *
 *   std::atomic<std::size_t> head
 *       KMU_ATOMIC_ROLE(producer_writes, both_read) {0};
 *
 * Expands to nothing on every compiler; tools/kmu_analyze fails the
 * build when an atomic field carries neither this marker nor
 * KMU_GUARDED_BY (rule `capability`).
 */
#define KMU_ATOMIC_ROLE(...)

namespace kmu
{

/**
 * Zero-size capability token for a single-owner role (producer side,
 * consumer side, host side, device side). Declared as a (public)
 * member of the structure whose protocol defines the role; gated
 * functions declare KMU_REQUIRES(role) and legitimate embodiments
 * assert it with a RoleGuard.
 */
class KMU_CAPABILITY("role") ThreadRole
{
  public:
    constexpr ThreadRole() = default;

    ThreadRole(const ThreadRole &) = delete;
    ThreadRole &operator=(const ThreadRole &) = delete;

    /** Assert the role for manual (non-scoped) regions. */
    void acquire() const KMU_ACQUIRE() {}
    void release() const KMU_RELEASE() {}
};

/**
 * Scope-bound role assertion: constructing a RoleGuard states "this
 * scope runs as the named role". Purely a compile-time token — no
 * code is generated — but clang now verifies every role-gated call
 * in the scope against it.
 */
class KMU_SCOPED_CAPABILITY RoleGuard
{
  public:
    explicit RoleGuard(const ThreadRole &role) KMU_ACQUIRE(role)
    {
        (void)role;
    }
    ~RoleGuard() KMU_RELEASE() {}

    RoleGuard(const RoleGuard &) = delete;
    RoleGuard &operator=(const RoleGuard &) = delete;
};

} // namespace kmu

#endif // KMU_COMMON_THREAD_ANNOTATIONS_HH
