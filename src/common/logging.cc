#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace kmu
{

namespace
{

LogLevel globalLevel = LogLevel::Normal;

void
emit(const char *prefix, const char *fmt, std::va_list args)
{
    std::string body = vcsprintf(fmt, args);
    std::fprintf(stderr, "%s%s\n", prefix, body.c_str());
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

std::string
vcsprintf(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(std::size_t(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), std::size_t(needed));
}

std::string
csprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("panic: ", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("warn: ", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("info: ", fmt, args);
    va_end(args);
}

} // namespace kmu
