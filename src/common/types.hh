/**
 * @file
 * Fundamental scalar types shared by every kmu module.
 *
 * The timing model follows the gem5 convention of an integral global
 * time base ("ticks"); kmu fixes one tick to one picosecond, which is
 * fine enough to express both sub-nanosecond core events and
 * multi-microsecond device latencies without rounding.
 */

#ifndef KMU_COMMON_TYPES_HH
#define KMU_COMMON_TYPES_HH

#include <cstdint>

namespace kmu
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Largest representable tick; used as "never" by the event queue. */
constexpr Tick maxTick = ~Tick(0);

/** Physical (device or host) byte address. */
using Addr = std::uint64_t;

/** Core clock cycles (dimensionless count, bound to a ClockDomain). */
using Cycles = std::uint64_t;

/** Identifier of a processor core in the simulated system. */
using CoreId = std::uint32_t;

/** Identifier of a user-level thread within one core. */
using ThreadId = std::uint32_t;

/** Bytes in one cache line; all device accesses are line-granular. */
constexpr std::uint32_t cacheLineSize = 64;

/** Shift amount corresponding to cacheLineSize. */
constexpr std::uint32_t cacheLineShift = 6;

/** Round an address down to its containing cache-line base. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~Addr(cacheLineSize - 1);
}

/** True iff the address is the first byte of a cache line. */
constexpr bool
isLineAligned(Addr addr)
{
    return (addr & Addr(cacheLineSize - 1)) == 0;
}

/** Line number (address divided by line size). */
constexpr Addr
lineNumber(Addr addr)
{
    return addr >> cacheLineShift;
}

} // namespace kmu

#endif // KMU_COMMON_TYPES_HH
