/**
 * @file
 * Sanitizer shim: fiber-switch annotations for ASan and TSan.
 *
 * The hand-rolled stack switch in ult/context_switch.S is invisible
 * to the sanitizer runtimes: ASan tracks one stack region per thread
 * and interprets a foreign %rsp as stack corruption, while TSan keeps
 * its shadow call stack per OS thread and crashes (or reports bogus
 * races) when the stack pointer teleports. Both runtimes therefore
 * export explicit fiber hooks:
 *
 *  - ASan/common: __sanitizer_start_switch_fiber() must run just
 *    before leaving a stack and __sanitizer_finish_switch_fiber()
 *    first thing on the destination stack;
 *  - TSan: a fiber context object per stack, created with
 *    __tsan_create_fiber() and selected with __tsan_switch_to_fiber()
 *    immediately before each switch.
 *
 * This header wraps those hooks behind kmuSan*() inline functions
 * that compile to nothing in unsanitized builds, so the ULT layer
 * can annotate unconditionally. Detection covers both GCC
 * (__SANITIZE_ADDRESS__/__SANITIZE_THREAD__) and Clang
 * (__has_feature).
 */

#ifndef KMU_COMMON_SANITIZER_HH
#define KMU_COMMON_SANITIZER_HH

#include <cstddef>

#if defined(__has_feature)
#  if __has_feature(address_sanitizer)
#    define KMU_ASAN_ENABLED 1
#  endif
#  if __has_feature(thread_sanitizer)
#    define KMU_TSAN_ENABLED 1
#  endif
#endif
#if defined(__SANITIZE_ADDRESS__) && !defined(KMU_ASAN_ENABLED)
#  define KMU_ASAN_ENABLED 1
#endif
#if defined(__SANITIZE_THREAD__) && !defined(KMU_TSAN_ENABLED)
#  define KMU_TSAN_ENABLED 1
#endif

#ifndef KMU_ASAN_ENABLED
#  define KMU_ASAN_ENABLED 0
#endif
#ifndef KMU_TSAN_ENABLED
#  define KMU_TSAN_ENABLED 0
#endif

#if KMU_ASAN_ENABLED
#  include <sanitizer/asan_interface.h>
#  include <sanitizer/common_interface_defs.h>
#endif
#if KMU_TSAN_ENABLED
#  include <sanitizer/tsan_interface.h>
#endif

namespace kmu
{

/**
 * Announce an imminent stack switch to ASan.
 *
 * @param fake_stack_save where ASan parks the departing context's
 *        fake-stack handle; pass nullptr when the departing context
 *        will never run again (lets ASan free the fake stack).
 * @param bottom lowest address of the destination stack.
 * @param size   destination stack size in bytes.
 */
inline void
kmuSanStartSwitchFiber(void **fake_stack_save, const void *bottom,
                       std::size_t size)
{
#if KMU_ASAN_ENABLED
    __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
    (void)fake_stack_save;
    (void)bottom;
    (void)size;
#endif
}

/**
 * Complete a stack switch; must run first thing on the destination
 * stack.
 *
 * @param fake_stack_save handle saved when this stack was last left
 *        (nullptr on a stack's first activation).
 * @param bottom_old out: lowest address of the stack just departed.
 * @param size_old   out: size of the stack just departed.
 */
inline void
kmuSanFinishSwitchFiber(void *fake_stack_save, const void **bottom_old,
                        std::size_t *size_old)
{
#if KMU_ASAN_ENABLED
    __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old,
                                    size_old);
#else
    (void)fake_stack_save;
    if (bottom_old)
        *bottom_old = nullptr;
    if (size_old)
        *size_old = 0;
#endif
}

/**
 * Clear ASan shadow poison over a retired fiber stack.
 *
 * Frames that ran on a fiber stack leave redzone poison in its
 * shadow; munmap() does not clear shadow, so a later mmap() reusing
 * the address range would inherit stale poison and fault on the
 * first legitimate write. Call when a stack region is released (and
 * defensively when one is allocated).
 */
inline void
kmuSanUnpoisonStack(const void *bottom, std::size_t size)
{
#if KMU_ASAN_ENABLED
    __asan_unpoison_memory_region(bottom, size);
#else
    (void)bottom;
    (void)size;
#endif
}

/** Create a TSan fiber context; returns nullptr when TSan is off. */
inline void *
kmuSanCreateFiber()
{
#if KMU_TSAN_ENABLED
    return __tsan_create_fiber(0);
#else
    return nullptr;
#endif
}

/** Destroy a TSan fiber context (never the currently active one). */
inline void
kmuSanDestroyFiber(void *fiber)
{
#if KMU_TSAN_ENABLED
    if (fiber)
        __tsan_destroy_fiber(fiber);
#else
    (void)fiber;
#endif
}

/** TSan context of the calling thread/fiber (nullptr when off). */
inline void *
kmuSanCurrentFiber()
{
#if KMU_TSAN_ENABLED
    return __tsan_get_current_fiber();
#else
    return nullptr;
#endif
}

/** Select the TSan context to run after the next stack switch. */
inline void
kmuSanSwitchToFiber(void *fiber)
{
#if KMU_TSAN_ENABLED
    if (fiber)
        __tsan_switch_to_fiber(fiber, 0);
#else
    (void)fiber;
#endif
}

/** Attach a debug name to a TSan fiber context. */
inline void
kmuSanSetFiberName(void *fiber, const char *name)
{
#if KMU_TSAN_ENABLED
    if (fiber)
        __tsan_set_fiber_name(fiber, name);
#else
    (void)fiber;
    (void)name;
#endif
}

} // namespace kmu

#endif // KMU_COMMON_SANITIZER_HH
