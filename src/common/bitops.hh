/**
 * @file
 * Small bit-manipulation helpers used across the codebase.
 */

#ifndef KMU_COMMON_BITOPS_HH
#define KMU_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace kmu
{

/** True iff @p value is a power of two (zero is not). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); value must be non-zero. */
constexpr std::uint32_t
floorLog2(std::uint64_t value)
{
    return 63u - std::uint32_t(std::countl_zero(value));
}

/** ceil(log2(value)); value must be non-zero. */
constexpr std::uint32_t
ceilLog2(std::uint64_t value)
{
    return value <= 1 ? 0 : floorLog2(value - 1) + 1;
}

/** Round @p value up to the next multiple of @p align (a power of 2). */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of @p align (a power of 2). */
constexpr std::uint64_t
roundDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t num, std::uint64_t den)
{
    return (num + den - 1) / den;
}

} // namespace kmu

#endif // KMU_COMMON_BITOPS_HH
