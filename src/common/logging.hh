/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — an internal invariant was violated; aborts.
 * fatal()  — the user asked for something impossible; exits cleanly.
 * warn()   — suspicious but survivable condition.
 * inform() — progress / status messages.
 *
 * All functions accept printf-style format strings.
 */

#ifndef KMU_COMMON_LOGGING_HH
#define KMU_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace kmu
{

/** Verbosity threshold for inform(); warnings always print. */
enum class LogLevel
{
    Quiet,   //!< only panic/fatal
    Normal,  //!< + warn and inform
    Verbose  //!< + verbose diagnostics
};

/** Set the process-wide verbosity (default Normal). */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

/** Abort: an internal kmu bug. Never returns. */
[[noreturn]] [[gnu::format(printf, 1, 2)]]
void panic(const char *fmt, ...);

/** Exit(1): unusable configuration or input. Never returns. */
[[noreturn]] [[gnu::format(printf, 1, 2)]]
void fatal(const char *fmt, ...);

/** Print a warning to stderr. */
[[gnu::format(printf, 1, 2)]]
void warn(const char *fmt, ...);

/** Print a status message to stderr (suppressed when Quiet). */
[[gnu::format(printf, 1, 2)]]
void inform(const char *fmt, ...);

/** Printf-style formatting into a std::string. */
[[gnu::format(printf, 1, 2)]]
std::string csprintf(const char *fmt, ...);

/** vprintf-style formatting into a std::string. */
std::string vcsprintf(const char *fmt, std::va_list args);

/**
 * Invariant check that stays active in release builds.
 * Usage: kmuAssert(cond, "message with %d details", x);
 */
#define kmuAssert(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::kmu::panic("assertion '%s' failed at %s:%d: %s",          \
                         #cond, __FILE__, __LINE__,                     \
                         ::kmu::csprintf(__VA_ARGS__).c_str());         \
        }                                                               \
    } while (0)

} // namespace kmu

#endif // KMU_COMMON_LOGGING_HH
