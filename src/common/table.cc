#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/logging.hh"

namespace kmu
{

Table::Table(std::string title)
    : tableTitle(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> names)
{
    kmuAssert(body.empty(), "setHeader must precede addRow");
    header = std::move(names);
}

void
Table::addRow(std::vector<std::string> cells)
{
    kmuAssert(cells.size() == header.size(),
              "row arity %zu != header arity %zu",
              cells.size(), header.size());
    body.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    kmuAssert(precision >= 0, "negative precision %d", precision);
    // Canonicalize non-finite values: printf renders the sign of a
    // NaN ("nan" vs "-nan") differently across libcs, which would
    // break byte-identical CSV comparisons.
    if (std::isnan(value))
        return "nan";
    if (std::isinf(value))
        return value < 0 ? "-inf" : "inf";
    return csprintf("%.*f", precision, value);
}

std::string
Table::num(std::uint64_t value)
{
    return csprintf("%llu", (unsigned long long)value);
}

const std::vector<std::string> &
Table::row(std::size_t i) const
{
    kmuAssert(i < body.size(), "row index %zu out of range", i);
    return body[i];
}

void
Table::printAscii(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size(), 0);
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row_cells : body)
        for (std::size_t c = 0; c < row_cells.size(); ++c)
            widths[c] = std::max(widths[c], row_cells[c].size());

    auto rule = [&]() {
        os << "+";
        for (auto w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << " " << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    os << "== " << tableTitle << " ==\n";
    rule();
    line(header);
    rule();
    for (const auto &row_cells : body)
        line(row_cells);
    rule();
}

namespace
{

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // anonymous namespace

void
Table::printCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < header.size(); ++c)
        os << csvEscape(header[c]) << (c + 1 == header.size() ? "" : ",");
    os << "\n";
    for (const auto &row_cells : body) {
        for (std::size_t c = 0; c < row_cells.size(); ++c) {
            os << csvEscape(row_cells[c])
               << (c + 1 == row_cells.size() ? "" : ",");
        }
        os << "\n";
    }
}

void
Table::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    printCsv(out);
    out.flush();
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

} // namespace kmu
