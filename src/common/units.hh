/**
 * @file
 * Time and data-rate unit helpers for the picosecond tick base.
 */

#ifndef KMU_COMMON_UNITS_HH
#define KMU_COMMON_UNITS_HH

#include "common/types.hh"

namespace kmu
{

/** Ticks per picosecond (the tick base itself). */
constexpr Tick tickPerPs = 1;
/** Ticks per nanosecond. */
constexpr Tick tickPerNs = 1000;
/** Ticks per microsecond. */
constexpr Tick tickPerUs = 1000 * 1000;
/** Ticks per millisecond. */
constexpr Tick tickPerMs = Tick(1000) * 1000 * 1000;
/** Ticks per second. */
constexpr Tick tickPerSec = Tick(1000) * 1000 * 1000 * 1000;

/** User-facing literal-style constructors. */
constexpr Tick
picoseconds(std::uint64_t n)
{
    return n * tickPerPs;
}

constexpr Tick
nanoseconds(std::uint64_t n)
{
    return n * tickPerNs;
}

constexpr Tick
microseconds(std::uint64_t n)
{
    return n * tickPerUs;
}

constexpr Tick
milliseconds(std::uint64_t n)
{
    return n * tickPerMs;
}

/** Convert ticks to (double) nanoseconds for reporting. */
constexpr double
ticksToNs(Tick t)
{
    return double(t) / double(tickPerNs);
}

/** Convert ticks to (double) microseconds for reporting. */
constexpr double
ticksToUs(Tick t)
{
    return double(t) / double(tickPerUs);
}

/** Convert ticks to (double) seconds for reporting. */
constexpr double
ticksToSec(Tick t)
{
    return double(t) / double(tickPerSec);
}

/**
 * Time to serialize @p bytes on a link of @p bytes_per_sec, rounded up
 * to a whole tick so zero-cost transfers cannot occur.
 */
constexpr Tick
transferTicks(std::uint64_t bytes, std::uint64_t bytes_per_sec)
{
    // ticks = bytes / (bytes/sec) * tickPerSec, computed without
    // overflow for realistic rates (<= tens of GB/s).
    const __uint128_t num = __uint128_t(bytes) * tickPerSec;
    return Tick((num + bytes_per_sec - 1) / bytes_per_sec);
}

/** Bytes per second from a GB/s figure (decimal GB). */
constexpr std::uint64_t
gbPerSec(double gb)
{
    return std::uint64_t(gb * 1e9);
}

} // namespace kmu

#endif // KMU_COMMON_UNITS_HH
