#include "common/random.hh"

#include "common/logging.hh"

namespace kmu
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    return mix64(state);
}

std::uint64_t
mix64(std::uint64_t value)
{
    std::uint64_t z = value;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : s)
        word = splitMix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((s[0] | s[1] | s[2] | s[3]) == 0)
        s[0] = 0x9e3779b97f4a7c15ull;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    kmuAssert(bound > 0, "nextBounded requires a positive bound");
    // Lemire's nearly-divisionless method.
    __uint128_t m = __uint128_t(next()) * bound;
    std::uint64_t low = std::uint64_t(m);
    if (low < bound) {
        const std::uint64_t threshold = (0 - bound) % bound;
        while (low < threshold) {
            m = __uint128_t(next()) * bound;
            low = std::uint64_t(m);
        }
    }
    return std::uint64_t(m >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    kmuAssert(lo <= hi, "nextRange with inverted bounds");
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return double(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace kmu
