/**
 * @file
 * CRC-32C (Castagnoli) — the payload-integrity check of the
 * device↔host exact-data contract.
 *
 * The device computes the CRC of every cache line it serves and
 * carries it in the completion record; the host recomputes it over
 * the DMA-written buffer before trusting the data. A mismatch means
 * the payload was corrupted between the device's backing store and
 * host memory (provoked by the ResponseBitFlip fault site), and the
 * access must be re-issued. Software table-driven implementation —
 * 64 bytes per access is far off any hot path we measure.
 */

#ifndef KMU_COMMON_CRC_HH
#define KMU_COMMON_CRC_HH

#include <cstddef>
#include <cstdint>

namespace kmu
{

/** CRC-32C of @p len bytes at @p data (seed/xorout per RFC 3720). */
std::uint32_t crc32c(const void *data, std::size_t len);

} // namespace kmu

#endif // KMU_COMMON_CRC_HH
