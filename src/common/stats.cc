#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace kmu
{

StatBase::StatBase(StatGroup &parent, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    parent.registerStat(this);
}

std::string
Counter::render() const
{
    return csprintf("%llu", (unsigned long long)count);
}

Gauge::Gauge(StatGroup &parent, std::string name, std::string desc,
             Source value_source)
    : StatBase(parent, std::move(name), std::move(desc)),
      source(std::move(value_source))
{
    kmuAssert(source != nullptr, "gauge needs a value source");
}

std::uint64_t
Gauge::value() const
{
    return source() - baseline;
}

std::string
Gauge::render() const
{
    return csprintf("%llu", (unsigned long long)value());
}

void
Average::sample(double value)
{
    sampleCount++;
    sum += value;
    minValue = std::min(minValue, value);
    maxValue = std::max(maxValue, value);
}

double
Average::mean() const
{
    return sampleCount ? sum / double(sampleCount) : 0.0;
}

std::string
Average::render() const
{
    return csprintf("%.4f (n=%llu min=%.4f max=%.4f)", mean(),
                    (unsigned long long)sampleCount, min(), max());
}

void
Average::reset()
{
    sampleCount = 0;
    sum = 0.0;
    minValue = std::numeric_limits<double>::infinity();
    maxValue = -std::numeric_limits<double>::infinity();
}

Histogram::Histogram(StatGroup &parent, std::string name, std::string desc,
                     double lo, double width, std::size_t bins)
    : StatBase(parent, std::move(name), std::move(desc)),
      lowBound(lo), binWidth(width), counts(bins, 0)
{
    kmuAssert(width > 0.0, "histogram bin width must be positive");
    kmuAssert(bins > 0, "histogram needs at least one bin");
}

void
Histogram::sample(double value)
{
    sampleCount++;
    sum += value;
    if (value < lowBound) {
        below++;
        return;
    }
    const auto idx = std::size_t((value - lowBound) / binWidth);
    if (idx >= counts.size())
        above++;
    else
        counts[idx]++;
}

double
Histogram::mean() const
{
    return sampleCount ? sum / double(sampleCount) : 0.0;
}

std::string
Histogram::render() const
{
    std::string out = csprintf("n=%llu mean=%.3f [",
                               (unsigned long long)sampleCount, mean());
    out += csprintf("<%llu|", (unsigned long long)below);
    for (std::size_t i = 0; i < counts.size(); ++i) {
        out += csprintf("%llu", (unsigned long long)counts[i]);
        if (i + 1 != counts.size())
            out += " ";
    }
    out += csprintf("|>%llu]", (unsigned long long)above);
    return out;
}

void
Histogram::merge(const Histogram &other)
{
    kmuAssert(other.lowBound == lowBound &&
              other.binWidth == binWidth &&
              other.counts.size() == counts.size(),
              "cannot merge histograms of different shape");
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    below += other.below;
    above += other.above;
    sampleCount += other.sampleCount;
    sum += other.sum;
}

void
Histogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    below = above = sampleCount = 0;
    sum = 0.0;
}

LogHistogram::LogHistogram(StatGroup &parent, std::string name,
                           std::string desc, double lo,
                           std::size_t buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      lowBound(lo), counts(buckets, 0)
{
    kmuAssert(lo > 0.0, "log histogram needs a positive lower bound");
    kmuAssert(buckets > 0, "log histogram needs at least one bucket");
}

double
LogHistogram::bucketLow(std::size_t i) const
{
    double edge = lowBound;
    for (std::size_t k = 0; k < i; ++k)
        edge *= 2.0;
    return edge;
}

void
LogHistogram::sample(double value)
{
    sampleCount++;
    sum += value;
    if (value < lowBound) {
        below++;
        return;
    }
    // Walk the doubling boundaries instead of taking log2(): the
    // comparison then uses the exact same doubles bucketLow()
    // produces, so edge values can't mis-bucket to FP rounding.
    double edge = lowBound;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        edge *= 2.0;
        if (value < edge) {
            counts[i]++;
            return;
        }
    }
    above++;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    kmuAssert(other.lowBound == lowBound &&
              other.counts.size() == counts.size(),
              "cannot merge log histograms of different shape");
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    below += other.below;
    above += other.above;
    sampleCount += other.sampleCount;
    sum += other.sum;
}

double
LogHistogram::mean() const
{
    return sampleCount ? sum / double(sampleCount) : 0.0;
}

double
LogHistogram::quantile(double q) const
{
    if (sampleCount == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;

    // Target rank in (0, n]: the q-quantile is the value at position
    // q*n of the sorted samples (with rank 0 pinned into the first
    // populated bucket so quantile(0) reports that bucket's edge).
    const double target = q * double(sampleCount);
    double cum = double(below);
    if (target <= cum && below > 0)
        return lowBound; // underflow values clamp to the lower bound
    double edge = lowBound;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double low = edge;
        edge *= 2.0;
        if (counts[i] == 0)
            continue;
        const double in_bucket = double(counts[i]);
        if (target <= cum + in_bucket || i + 1 == counts.size()) {
            if (target > cum + in_bucket)
                break; // ranks beyond the last bucket: overflow
            double frac = (target - cum) / in_bucket;
            if (frac < 0.0)
                frac = 0.0;
            return low + frac * (edge - low);
        }
        cum += in_bucket;
    }
    // Overflow samples clamp to the overflow bucket's lower edge.
    return bucketLow(counts.size());
}

std::string
LogHistogram::render() const
{
    std::string out = csprintf("n=%llu mean=%.3f [",
                               (unsigned long long)sampleCount, mean());
    out += csprintf("<%llu|", (unsigned long long)below);
    for (std::size_t i = 0; i < counts.size(); ++i) {
        out += csprintf("%llu", (unsigned long long)counts[i]);
        if (i + 1 != counts.size())
            out += " ";
    }
    out += csprintf("|>%llu]", (unsigned long long)above);
    return out;
}

void
LogHistogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    below = above = sampleCount = 0;
    sum = 0.0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent_group)
    : groupName(std::move(name)), parent(parent_group)
{
    if (parent)
        parent->registerChild(this);
}

StatGroup::~StatGroup()
{
    if (parent)
        parent->unregisterChild(this);
}

std::string
StatGroup::path() const
{
    if (!parent)
        return groupName;
    return parent->path() + "." + groupName;
}

void
StatGroup::registerStat(StatBase *stat)
{
    ownedStats.push_back(stat);
}

void
StatGroup::registerChild(StatGroup *child)
{
    children.push_back(child);
}

void
StatGroup::unregisterChild(StatGroup *child)
{
    auto it = std::find(children.begin(), children.end(), child);
    if (it != children.end())
        children.erase(it);
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = path();
    for (const StatBase *stat : ownedStats) {
        os << std::left << std::setw(48) << (prefix + "." + stat->name())
           << " " << std::setw(32) << stat->render()
           << " # " << stat->desc() << "\n";
    }
    for (const StatGroup *child : children)
        child->dump(os);
}

void
StatGroup::resetAll()
{
    for (StatBase *stat : ownedStats)
        stat->reset();
    for (StatGroup *child : children)
        child->resetAll();
}

} // namespace kmu
