/**
 * @file
 * Result table emitters used by the figure-reproduction benches.
 *
 * A Table is a column-major grid of strings with a title; it renders
 * either as an aligned ASCII table (for the terminal) or as CSV (for
 * replotting). Figure benches build one Table per paper figure so the
 * printed rows mirror the paper's series.
 */

#ifndef KMU_COMMON_TABLE_HH
#define KMU_COMMON_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace kmu
{

class Table
{
  public:
    explicit Table(std::string title);

    /** Define the column headers; must precede addRow(). */
    void setHeader(std::vector<std::string> names);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with fixed precision. */
    static std::string num(double value, int precision = 3);

    /** Convenience: format an integer. */
    static std::string num(std::uint64_t value);

    const std::string &title() const { return tableTitle; }
    std::size_t rows() const { return body.size(); }
    std::size_t cols() const { return header.size(); }
    const std::vector<std::string> &row(std::size_t i) const;

    /** Aligned, boxed ASCII rendering. */
    void printAscii(std::ostream &os) const;

    /** RFC-4180-ish CSV rendering (header row first). */
    void printCsv(std::ostream &os) const;

    /** Write CSV to @p path, creating/overwriting the file. */
    void writeCsvFile(const std::string &path) const;

  private:
    std::string tableTitle;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

} // namespace kmu

#endif // KMU_COMMON_TABLE_HH
