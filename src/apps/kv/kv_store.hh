/**
 * @file
 * Memcached-style key-value store with its data on the device.
 *
 * The paper's third application performs the lookup path of
 * memcached: hash the key, read the bucket head, walk the chain
 * comparing keys, then retrieve the value. Values span multiple
 * cache lines, and those line reads are independent — the paper
 * batches four reads per retrieval; chain walking, by contrast, is
 * inherently serial (pointer chasing).
 *
 * On-device layout:
 *   [0 .. 8*buckets)   bucket heads: device address of first item
 *   items region       64-byte-aligned items:
 *     line 0:  keyHash(8) | next(8) | keyLen(4) | valLen(4) | key…
 *              (keys up to 40 bytes live inline in the header line)
 *     line 1+: value bytes
 */

#ifndef KMU_APPS_KV_KV_STORE_HH
#define KMU_APPS_KV_KV_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "access/access_engine.hh"
#include "common/types.hh"

namespace kmu
{

struct KvParams
{
    std::uint64_t buckets = 1ull << 16; //!< power of two
    std::uint32_t valueBatch = 4;       //!< value lines per batch
};

/** Longest key that fits inline in the item header line. */
constexpr std::uint32_t kvMaxKeyLen = 40;

/** Hash used for bucket selection and fast key comparison. */
std::uint64_t kvHash(const std::string &key);

/**
 * Host-side builder: populate the store, then serialize it as a
 * device image.
 */
class KvBuilder
{
  public:
    explicit KvBuilder(KvParams params);

    /**
     * Insert a key/value pair (no overwrite support: inserting a
     * duplicate key is a usage error, as in a pre-populated lookup
     * benchmark).
     */
    void put(const std::string &key, const std::string &value);

    std::uint64_t itemCount() const { return items; }
    const KvParams &params() const { return cfg; }

    /** Serialize bucket array + items as the device image. */
    std::vector<std::uint8_t> deviceImage() const;

  private:
    struct PendingItem
    {
        std::uint64_t hash;
        std::string key;
        std::string value;
    };

    KvParams cfg;
    std::vector<std::vector<PendingItem>> chains;
    std::uint64_t items = 0;
};

/**
 * Device-side lookup engine for an image built by KvBuilder.
 */
class KvProber
{
  public:
    KvProber(KvParams params, Addr image_base = 0);

    /**
     * memcached GET: returns the value, or nullopt when absent.
     * Performs: one bucket read, one header-line read per chain
     * item visited, then value-line reads batched `valueBatch` at
     * a time.
     */
    std::optional<std::string> get(AccessEngine &engine,
                                   const std::string &key) const;

    /**
     * In-place value update (same length) through the device write
     * path: locates the item via the read path, then writes the
     * value lines with posted line writes. Returns false when the
     * key is absent or the length differs (this store has no
     * on-device allocator). Single-writer per engine, per the
     * Section V-C coherence caveat.
     */
    bool update(AccessEngine &engine, const std::string &key,
                const std::string &value) const;

    const KvParams &params() const { return cfg; }

  private:
    KvParams cfg;
    Addr base;
};

} // namespace kmu

#endif // KMU_APPS_KV_KV_STORE_HH
