#include "apps/kv/kv_store.hh"

#include <cstring>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace kmu
{

namespace
{

/** Item header layout within its first line. */
struct ItemHeader
{
    std::uint64_t keyHash;
    Addr next; //!< device address of the next item, 0 at chain end
    std::uint32_t keyLen;
    std::uint32_t valLen;
};

static_assert(sizeof(ItemHeader) == 24, "header layout is part of "
              "the device image format");

/** Bytes an item occupies on the device (header+key line, then the
 *  value rounded up to whole lines). */
std::uint64_t
itemBytes(std::uint32_t val_len)
{
    return cacheLineSize + roundUp(val_len, cacheLineSize);
}

} // anonymous namespace

std::uint64_t
kvHash(const std::string &key)
{
    // FNV-1a, finalized with the SplitMix64 mixer.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char ch : key) {
        h ^= ch;
        h *= 0x100000001b3ull;
    }
    return mix64(h);
}

KvBuilder::KvBuilder(KvParams params)
    : cfg(params), chains(params.buckets)
{
    kmuAssert(isPowerOf2(cfg.buckets), "bucket count must be 2^k");
    kmuAssert(cfg.valueBatch >= 1 &&
              cfg.valueBatch <= AccessEngine::maxBatch,
              "bad value batch");
}

void
KvBuilder::put(const std::string &key, const std::string &value)
{
    kmuAssert(!key.empty() && key.size() <= kvMaxKeyLen,
              "key length %zu out of range [1, %u]", key.size(),
              kvMaxKeyLen);
    const std::uint64_t hash = kvHash(key);
    auto &chain = chains[hash & (cfg.buckets - 1)];
    for (const PendingItem &item : chain) {
        kmuAssert(item.key != key, "duplicate key '%s'", key.c_str());
    }
    chain.push_back(PendingItem{hash, key, value});
    items++;
}

std::vector<std::uint8_t>
KvBuilder::deviceImage() const
{
    // Pass 1: place items after the bucket array.
    const Addr items_base = roundUp(cfg.buckets * 8, cacheLineSize);
    std::uint64_t total = items_base;
    for (const auto &chain : chains) {
        for (const PendingItem &item : chain)
            total += itemBytes(std::uint32_t(item.value.size()));
    }

    std::vector<std::uint8_t> image(std::max<std::uint64_t>(
        total, cacheLineSize));

    // Pass 2: serialize chains (head = last placed, as memcached
    // prepends; order within a chain does not matter for lookups).
    Addr cursor = items_base;
    for (std::uint64_t b = 0; b < cfg.buckets; ++b) {
        Addr head = 0;
        for (const PendingItem &item : chains[b]) {
            ItemHeader header;
            header.keyHash = item.hash;
            header.next = head;
            header.keyLen = std::uint32_t(item.key.size());
            header.valLen = std::uint32_t(item.value.size());

            std::memcpy(image.data() + cursor, &header,
                        sizeof(header));
            std::memcpy(image.data() + cursor + sizeof(header),
                        item.key.data(), item.key.size());
            std::memcpy(image.data() + cursor + cacheLineSize,
                        item.value.data(), item.value.size());

            head = cursor;
            cursor += itemBytes(header.valLen);
        }
        std::memcpy(image.data() + b * 8, &head, sizeof(head));
    }
    kmuAssert(cursor == total, "image layout mismatch");
    return image;
}

KvProber::KvProber(KvParams params, Addr image_base)
    : cfg(params), base(image_base)
{
}

std::optional<std::string>
KvProber::get(AccessEngine &engine, const std::string &key) const
{
    kmuAssert(!key.empty() && key.size() <= kvMaxKeyLen,
              "key length out of range");
    const std::uint64_t hash = kvHash(key);

    // 1. Bucket head.
    const Addr bucket_addr = base + (hash & (cfg.buckets - 1)) * 8;
    Addr item = engine.read64(bucket_addr);

    // 2. Chain walk: header line per item (serial pointer chase).
    alignas(cacheLineSize) std::uint8_t header_line[cacheLineSize];
    while (item != 0) {
        const Addr line = base + item;
        engine.readLines(&line, 1, header_line);

        ItemHeader header;
        std::memcpy(&header, header_line, sizeof(header));

        const bool match =
            header.keyHash == hash && header.keyLen == key.size() &&
            std::memcmp(header_line + sizeof(header), key.data(),
                        key.size()) == 0;
        if (!match) {
            item = header.next;
            continue;
        }

        // 3. Value retrieval: independent line reads, batched.
        std::string value(header.valLen, '\0');
        const std::uint64_t lines =
            divCeil(header.valLen, cacheLineSize);
        alignas(cacheLineSize)
            std::uint8_t chunk[AccessEngine::maxBatch][cacheLineSize];
        for (std::uint64_t first = 0; first < lines;
             first += cfg.valueBatch) {
            const std::size_t n = std::min<std::uint64_t>(
                cfg.valueBatch, lines - first);
            Addr addrs[AccessEngine::maxBatch];
            for (std::size_t i = 0; i < n; ++i) {
                addrs[i] = base + item + cacheLineSize +
                           (first + i) * cacheLineSize;
            }
            engine.readLines(addrs, n, chunk[0]);
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t off =
                    (first + i) * cacheLineSize;
                const std::size_t take = std::min<std::uint64_t>(
                    cacheLineSize, header.valLen - off);
                std::memcpy(value.data() + off, chunk[i], take);
            }
        }
        return value;
    }
    return std::nullopt;
}

bool
KvProber::update(AccessEngine &engine, const std::string &key,
                 const std::string &value) const
{
    kmuAssert(!key.empty() && key.size() <= kvMaxKeyLen,
              "key length out of range");
    const std::uint64_t hash = kvHash(key);

    const Addr bucket_addr = base + (hash & (cfg.buckets - 1)) * 8;
    Addr item = engine.read64(bucket_addr);

    alignas(cacheLineSize) std::uint8_t header_line[cacheLineSize];
    while (item != 0) {
        const Addr line = base + item;
        engine.readLines(&line, 1, header_line);

        ItemHeader header;
        std::memcpy(&header, header_line, sizeof(header));

        const bool match =
            header.keyHash == hash && header.keyLen == key.size() &&
            std::memcmp(header_line + sizeof(header), key.data(),
                        key.size()) == 0;
        if (!match) {
            item = header.next;
            continue;
        }

        if (header.valLen != value.size())
            return false; // no on-device allocator: in-place only

        // Posted line writes of the new value; a subsequent read
        // through the same engine observes them (FIFO ordering).
        const std::uint64_t lines =
            divCeil(header.valLen, cacheLineSize);
        alignas(cacheLineSize) std::uint8_t buf[cacheLineSize];
        for (std::uint64_t l = 0; l < lines; ++l) {
            const std::uint64_t off = l * cacheLineSize;
            const std::size_t take = std::min<std::uint64_t>(
                cacheLineSize, header.valLen - off);
            std::memset(buf, 0, cacheLineSize);
            std::memcpy(buf, value.data() + off, take);
            engine.writeLine(base + item + cacheLineSize + off, buf);
        }
        return true;
    }
    return false;
}

} // namespace kmu
