#include "apps/access_trace.hh"

#include <fstream>

#include "common/logging.hh"

namespace kmu
{

std::uint64_t
AccessTrace::totalReads() const
{
    std::uint64_t total = 0;
    for (auto b : batches)
        total += b;
    return total;
}

double
AccessTrace::meanBatch() const
{
    if (batches.empty())
        return 0.0;
    return double(totalReads()) / double(batches.size());
}

std::function<IterationPlan(CoreId, ThreadId, std::uint64_t)>
AccessTrace::makePlan(std::uint32_t work) const
{
    kmuAssert(!batches.empty(), "cannot plan from an empty trace");
    // Copy the batch sequence into the closure so the plan outlives
    // this AccessTrace.
    auto seq = std::make_shared<std::vector<std::uint8_t>>(batches);
    return [seq, work](CoreId core, ThreadId thread,
                       std::uint64_t iter) {
        const std::uint64_t offset =
            (std::uint64_t(core) * 131 + thread) * 17 + iter;
        const std::uint8_t batch = (*seq)[offset % seq->size()];
        return IterationPlan{batch, work};
    };
}

void
AccessTrace::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    for (auto b : batches)
        out << unsigned(b) << "\n";
}

AccessTrace
AccessTrace::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    AccessTrace trace;
    unsigned batch;
    while (in >> batch)
        trace.add(batch);
    return trace;
}

} // namespace kmu
