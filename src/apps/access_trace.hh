/**
 * @file
 * Access traces: the bridge from real application runs to the
 * timing model (the paper's Fig. 10 methodology).
 *
 * The paper replaces each application's post-access computation with
 * the benign work loop and keeps only the core data-structure
 * accesses, batched as the application's dependences permit (4 for
 * Memcached and Bloom filter, 2 for BFS). We reproduce this by
 * recording, from a functional run of the ported application, the
 * sequence of batch sizes it issues; the timing model then replays
 * that sequence as its per-iteration plan with the standard work
 * count attached.
 */

#ifndef KMU_APPS_ACCESS_TRACE_HH
#define KMU_APPS_ACCESS_TRACE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/system_config.hh"

namespace kmu
{

class AccessTrace
{
  public:
    /** Record one batched access group of @p batch reads. */
    void
    add(std::uint32_t batch)
    {
        kmuAssert(batch >= 1 && batch <= AccessEngine::maxBatch,
                  "trace batch out of range");
        batches.push_back(std::uint8_t(batch));
    }

    std::size_t size() const { return batches.size(); }
    bool empty() const { return batches.empty(); }
    std::uint32_t batchAt(std::size_t i) const { return batches.at(i); }

    /** Total reads across all records. */
    std::uint64_t totalReads() const;

    /** Mean batch size (the workload's software MLP). */
    double meanBatch() const;

    /**
     * Produce a SystemConfig::plan that cycles this trace (offset by
     * thread so cores don't run in lockstep), attaching @p work
     * instructions of benign work per read.
     */
    std::function<IterationPlan(CoreId, ThreadId, std::uint64_t)>
    makePlan(std::uint32_t work) const;

    /** Save as one batch size per line (plain text). */
    void save(const std::string &path) const;

    /** Load a trace saved by save(). */
    static AccessTrace load(const std::string &path);

  private:
    std::vector<std::uint8_t> batches;
};

/**
 * AccessEngine decorator that records the batch-size sequence of
 * every read call while forwarding to the wrapped engine.
 */
class TracingEngine : public AccessEngine
{
  public:
    TracingEngine(AccessEngine &wrapped, AccessTrace &sink)
        : inner(wrapped), trace(sink)
    {
    }

    std::uint64_t
    read64(Addr addr) override
    {
        trace.add(1);
        accessCount++;
        return inner.read64(addr);
    }

    void
    readBatch(const Addr *addrs, std::size_t n,
              std::uint64_t *out) override
    {
        trace.add(std::uint32_t(n));
        accessCount += n;
        inner.readBatch(addrs, n, out);
    }

    void
    readLines(const Addr *addrs, std::size_t n, void *out) override
    {
        trace.add(std::uint32_t(n));
        accessCount += n;
        inner.readLines(addrs, n, out);
    }

    void
    writeLine(Addr addr, const void *line) override
    {
        // Writes are posted and off the critical path (paper
        // conclusion); traces capture the read stream only.
        writeCount++;
        inner.writeLine(addr, line);
    }

    void
    write64(Addr addr, std::uint64_t value) override
    {
        writeCount++;
        inner.write64(addr, value);
    }

    Mechanism mechanism() const override { return inner.mechanism(); }

  private:
    AccessEngine &inner;
    AccessTrace &trace;
};

} // namespace kmu

#endif // KMU_APPS_ACCESS_TRACE_HH
