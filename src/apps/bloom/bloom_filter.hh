/**
 * @file
 * Bloom filter with its bit array on the microsecond-latency device.
 *
 * The paper's second application: membership lookups against a
 * pre-populated, space-efficient probabilistic set. The k probe
 * words of a query are independent, which is what lets the ported
 * code batch four reads per lookup (the paper's Fig. 10 batching).
 *
 * Hashing is double hashing h_i = h1 + i * h2 over a 64-bit mix, the
 * standard construction whose false-positive rate matches the
 * (1 - e^{-kn/m})^k model.
 */

#ifndef KMU_APPS_BLOOM_BLOOM_FILTER_HH
#define KMU_APPS_BLOOM_BLOOM_FILTER_HH

#include <cstdint>
#include <vector>

#include "access/access_engine.hh"
#include "common/types.hh"

namespace kmu
{

struct BloomParams
{
    std::uint64_t bits = 1ull << 24; //!< m: filter size in bits
    std::uint32_t hashes = 4;        //!< k: probes per query

    /** Theoretical false-positive rate after @p n insertions. */
    double theoreticalFpr(std::uint64_t n) const;
};

/**
 * Host-side builder: insert keys, then serialize the bit array as a
 * device image.
 */
class BloomBuilder
{
  public:
    explicit BloomBuilder(BloomParams params);

    void insert(std::uint64_t key);

    /** Host-side query (ground truth for tests). */
    bool contains(std::uint64_t key) const;

    std::uint64_t insertions() const { return count; }
    const BloomParams &params() const { return cfg; }

    /** The bit array as a device image (word-per-8-bytes layout). */
    std::vector<std::uint8_t> deviceImage() const;

  private:
    BloomParams cfg;
    std::vector<std::uint64_t> words;
    std::uint64_t count = 0;
};

/**
 * Device-side querier: probes the bit array through an AccessEngine,
 * batching all k word reads of one lookup together.
 */
class BloomProber
{
  public:
    BloomProber(BloomParams params, Addr image_base = 0);

    /** Membership query via batched device reads. */
    bool contains(AccessEngine &engine, std::uint64_t key) const;

    /**
     * Insert a key directly on the device via read-modify-write of
     * the k probe words (the paper's future-work write path at
     * application level).
     *
     * Concurrency caveat — the coherence problem of Section V-C
     * made concrete: the read and write of one word are separate
     * device operations, so two fibers inserting keys that share a
     * probe word can lose an update. Use a single writer fiber (or
     * partition the filter) when inserting through this API.
     */
    void insert(AccessEngine &engine, std::uint64_t key) const;

    const BloomParams &params() const { return cfg; }

  private:
    BloomParams cfg;
    Addr base;
};

/** Probe positions shared by builder and prober. */
void bloomProbePositions(const BloomParams &params, std::uint64_t key,
                         std::uint64_t *bit_positions);

} // namespace kmu

#endif // KMU_APPS_BLOOM_BLOOM_FILTER_HH
