#include "apps/bloom/bloom_filter.hh"

#include <cmath>
#include <cstring>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace kmu
{

double
BloomParams::theoreticalFpr(std::uint64_t n) const
{
    const double exponent =
        -double(hashes) * double(n) / double(bits);
    return std::pow(1.0 - std::exp(exponent), double(hashes));
}

void
bloomProbePositions(const BloomParams &params, std::uint64_t key,
                    std::uint64_t *bit_positions)
{
    const std::uint64_t h1 = mix64(key);
    const std::uint64_t h2 = mix64(key ^ 0xdeadbeefcafef00dull) | 1;
    for (std::uint32_t i = 0; i < params.hashes; ++i)
        bit_positions[i] = (h1 + i * h2) % params.bits;
}

BloomBuilder::BloomBuilder(BloomParams params)
    : cfg(params), words(divCeil(params.bits, 64), 0)
{
    kmuAssert(cfg.hashes >= 1 &&
              cfg.hashes <= AccessEngine::maxBatch,
              "hash count must fit one access batch");
    kmuAssert(cfg.bits >= 64, "filter too small");
}

void
BloomBuilder::insert(std::uint64_t key)
{
    std::uint64_t pos[AccessEngine::maxBatch];
    bloomProbePositions(cfg, key, pos);
    for (std::uint32_t i = 0; i < cfg.hashes; ++i)
        words[pos[i] / 64] |= 1ull << (pos[i] % 64);
    count++;
}

bool
BloomBuilder::contains(std::uint64_t key) const
{
    std::uint64_t pos[AccessEngine::maxBatch];
    bloomProbePositions(cfg, key, pos);
    for (std::uint32_t i = 0; i < cfg.hashes; ++i) {
        if (!(words[pos[i] / 64] & (1ull << (pos[i] % 64))))
            return false;
    }
    return true;
}

std::vector<std::uint8_t>
BloomBuilder::deviceImage() const
{
    std::vector<std::uint8_t> image(
        roundUp(words.size() * 8, cacheLineSize));
    std::memcpy(image.data(), words.data(), words.size() * 8);
    return image;
}

BloomProber::BloomProber(BloomParams params, Addr image_base)
    : cfg(params), base(image_base)
{
}

void
BloomProber::insert(AccessEngine &engine, std::uint64_t key) const
{
    std::uint64_t pos[AccessEngine::maxBatch];
    bloomProbePositions(cfg, key, pos);

    // Fetch all k words in one batch, then write back the ones that
    // change. write64 performs the line-granular read-modify-write
    // the queue protocol requires.
    Addr addrs[AccessEngine::maxBatch];
    std::uint64_t vals[AccessEngine::maxBatch];
    for (std::uint32_t i = 0; i < cfg.hashes; ++i)
        addrs[i] = base + (pos[i] / 64) * 8;
    engine.readBatch(addrs, cfg.hashes, vals);

    // Two probes can land in the same word; merge their bits into
    // the first occurrence so the later write cannot clobber the
    // earlier one.
    std::uint64_t merged[AccessEngine::maxBatch];
    for (std::uint32_t i = 0; i < cfg.hashes; ++i)
        merged[i] = vals[i];
    for (std::uint32_t i = 0; i < cfg.hashes; ++i) {
        const std::uint64_t bit = 1ull << (pos[i] % 64);
        for (std::uint32_t f = 0; f <= i; ++f) {
            if (addrs[f] == addrs[i]) {
                merged[f] |= bit;
                break;
            }
        }
    }
    for (std::uint32_t i = 0; i < cfg.hashes; ++i) {
        bool first = true;
        for (std::uint32_t f = 0; f < i; ++f)
            first &= addrs[f] != addrs[i];
        if (first && merged[i] != vals[i])
            engine.write64(addrs[i], merged[i]);
    }
}

bool
BloomProber::contains(AccessEngine &engine, std::uint64_t key) const
{
    std::uint64_t pos[AccessEngine::maxBatch];
    bloomProbePositions(cfg, key, pos);

    // All k probe words are independent: one batched access (the
    // paper's 4-read batching for the Bloom filter benchmark).
    Addr addrs[AccessEngine::maxBatch];
    std::uint64_t vals[AccessEngine::maxBatch];
    for (std::uint32_t i = 0; i < cfg.hashes; ++i)
        addrs[i] = base + (pos[i] / 64) * 8;
    engine.readBatch(addrs, cfg.hashes, vals);

    for (std::uint32_t i = 0; i < cfg.hashes; ++i) {
        if (!(vals[i] & (1ull << (pos[i] % 64))))
            return false;
    }
    return true;
}

} // namespace kmu
