#include "apps/graph/bfs.hh"

#include <cstring>

#include "common/logging.hh"
#include "ult/barrier.hh"

namespace kmu
{

namespace
{

/** Scan one vertex's neighbor range through the engine, line pair by
 *  line pair (BFS's dependence-limited batch of two), invoking
 *  visit(v) for every neighbor. */
template <typename Visit>
void
scanNeighbors(AccessEngine &engine, const DeviceGraphLayout &layout,
              std::uint64_t begin, std::uint64_t end, Visit visit)
{
    if (begin >= end)
        return;

    const Addr first_line = lineAlign(layout.adjAddr(begin));
    const Addr last_line = lineAlign(layout.adjAddr(end - 1));

    alignas(cacheLineSize) std::uint8_t scratch[2 * cacheLineSize];
    for (Addr line = first_line; line <= last_line;
         line += 2 * cacheLineSize) {
        const std::size_t lines =
            (line + cacheLineSize <= last_line) ? 2 : 1;
        Addr addrs[2] = {line, line + cacheLineSize};
        engine.readLines(addrs, lines, scratch);

        // Neighbor words covered by the fetched line(s).
        const std::uint64_t lo = std::max(
            begin, (line - layout.adjBase) / 8);
        const std::uint64_t hi = std::min(
            end,
            (line + lines * cacheLineSize - layout.adjBase) / 8);
        for (std::uint64_t i = lo; i < hi; ++i) {
            std::uint64_t v;
            const std::size_t off =
                std::size_t(layout.adjAddr(i) - line);
            std::memcpy(&v, scratch + off, sizeof(v));
            visit(v);
        }
    }
}

/** Process one frontier vertex: offset pair, then neighbor lines. */
template <typename Visit>
std::uint64_t
expandVertex(AccessEngine &engine, const DeviceGraphLayout &layout,
             std::uint64_t u, Visit visit)
{
    Addr offset_addrs[2] = {layout.offsetAddr(u),
                            layout.offsetAddr(u + 1)};
    std::uint64_t offsets[2];
    engine.readBatch(offset_addrs, 2, offsets);
    kmuAssert(offsets[0] <= offsets[1] && offsets[1] <= layout.m,
              "corrupt CSR offsets for vertex %llu",
              (unsigned long long)u);
    scanNeighbors(engine, layout, offsets[0], offsets[1], visit);
    return offsets[1] - offsets[0];
}

} // anonymous namespace

BfsResult
bfsReference(const CsrGraph &graph, std::uint64_t source)
{
    const std::uint64_t n = graph.vertexCount();
    kmuAssert(source < n, "BFS source out of range");

    BfsResult res;
    res.level.assign(n, -1);
    res.level[source] = 0;
    res.reached = 1;

    std::vector<std::uint64_t> frontier{source};
    std::vector<std::uint64_t> next;
    std::int64_t depth = 0;
    while (!frontier.empty()) {
        next.clear();
        for (std::uint64_t u : frontier) {
            for (std::uint64_t v : graph.neighbors(u)) {
                res.edgesTraversed++;
                if (res.level[v] < 0) {
                    res.level[v] = depth + 1;
                    res.reached++;
                    next.push_back(v);
                }
            }
        }
        res.depth = depth;
        depth++;
        frontier.swap(next);
    }
    return res;
}

BfsResult
bfsDevice(AccessEngine &engine, const DeviceGraphLayout &layout,
          std::uint64_t source)
{
    kmuAssert(source < layout.n, "BFS source out of range");

    BfsResult res;
    res.level.assign(layout.n, -1);
    res.level[source] = 0;
    res.reached = 1;

    std::vector<std::uint64_t> frontier{source};
    std::vector<std::uint64_t> next;
    std::int64_t depth = 0;
    while (!frontier.empty()) {
        next.clear();
        for (std::uint64_t u : frontier) {
            expandVertex(engine, layout, u, [&](std::uint64_t v) {
                kmuAssert(v < layout.n, "neighbor out of range");
                res.edgesTraversed++;
                if (res.level[v] < 0) {
                    res.level[v] = depth + 1;
                    res.reached++;
                    next.push_back(v);
                }
            });
        }
        res.depth = depth;
        depth++;
        frontier.swap(next);
    }
    return res;
}

BfsResult
bfsDeviceParallel(Runtime &rt, const DeviceGraphLayout &layout,
                  std::uint64_t source, std::uint32_t workers)
{
    kmuAssert(source < layout.n, "BFS source out of range");
    kmuAssert(workers >= 1, "need at least one worker");

    struct Shared
    {
        BfsResult res;
        std::vector<std::uint64_t> frontier;
        std::vector<std::vector<std::uint64_t>> localNext;
        std::int64_t depth = 0;
        bool done = false;
    };

    Shared shared;
    shared.res.level.assign(layout.n, -1);
    shared.res.level[source] = 0;
    shared.res.reached = 1;
    shared.frontier.push_back(source);
    shared.localNext.resize(workers);

    FiberBarrier barrier(rt.scheduler(), workers);

    for (std::uint32_t w = 0; w < workers; ++w) {
        rt.spawnWorker([w, workers, &shared, &barrier,
                        &layout](AccessEngine &engine) {
            while (!shared.done) {
                // Slice of this level's frontier.
                const std::uint64_t len = shared.frontier.size();
                const std::uint64_t lo = len * w / workers;
                const std::uint64_t hi = len * (w + 1) / workers;
                auto &next = shared.localNext[w];
                for (std::uint64_t i = lo; i < hi; ++i) {
                    const std::uint64_t u = shared.frontier[i];
                    expandVertex(
                        engine, layout, u, [&](std::uint64_t v) {
                            shared.res.edgesTraversed++;
                            // Fibers are cooperative and there is no
                            // yield between the check and the set, so
                            // this claim is race-free.
                            if (shared.res.level[v] < 0) {
                                shared.res.level[v] =
                                    shared.depth + 1;
                                shared.res.reached++;
                                next.push_back(v);
                            }
                        });
                }

                if (barrier.arrive()) {
                    // Last arrival: the others are unblocked but
                    // cannot resume until we yield, and this merge
                    // has no yield points — so it completes before
                    // any worker observes the new frontier.
                    shared.frontier.clear();
                    for (auto &local : shared.localNext) {
                        shared.frontier.insert(shared.frontier.end(),
                                               local.begin(),
                                               local.end());
                        local.clear();
                    }
                    shared.res.depth = shared.depth;
                    shared.depth++;
                    if (shared.frontier.empty())
                        shared.done = true;
                }
            }
        });
    }

    rt.run();
    return std::move(shared.res);
}

} // namespace kmu
