/**
 * @file
 * Breadth-first search over a device-resident CSR graph.
 *
 * The Graph500 BFS kernel, ported to the kmu access API the way the
 * paper ports it: the CSR arrays live on the microsecond-latency
 * device and are read through an AccessEngine; BFS bookkeeping
 * (levels, frontiers) stays in host DRAM. Dependences limit the
 * batching to two reads (the paper's observation): a vertex's two
 * adjacent offsets are fetched together, and neighbor lines are
 * streamed in pairs.
 */

#ifndef KMU_APPS_GRAPH_BFS_HH
#define KMU_APPS_GRAPH_BFS_HH

#include <cstdint>
#include <vector>

#include "access/access_engine.hh"
#include "access/runtime.hh"
#include "apps/graph/csr.hh"

namespace kmu
{

/** Result of one BFS: level per vertex (-1 if unreached). */
struct BfsResult
{
    std::vector<std::int64_t> level;
    std::uint64_t reached = 0;
    std::uint64_t edgesTraversed = 0;
    std::int64_t depth = -1;
};

/** Host-reference BFS (plain arrays); ground truth for tests. */
BfsResult bfsReference(const CsrGraph &graph, std::uint64_t source);

/**
 * Device BFS run by the *calling fiber* through @p engine.
 * Suitable for single-worker runs and for trace recording.
 */
BfsResult bfsDevice(AccessEngine &engine,
                    const DeviceGraphLayout &layout,
                    std::uint64_t source);

/**
 * Device BFS with @p workers fibers splitting each frontier,
 * synchronized by a cooperative barrier per level. Spawns workers
 * on @p rt and runs them to completion.
 */
BfsResult bfsDeviceParallel(Runtime &rt,
                            const DeviceGraphLayout &layout,
                            std::uint64_t source,
                            std::uint32_t workers);

} // namespace kmu

#endif // KMU_APPS_GRAPH_BFS_HH
