#include "apps/graph/csr.hh"

#include <cstring>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace kmu
{

CsrGraph::CsrGraph(std::uint64_t num_vertices,
                   const std::vector<Edge> &edges)
    : n(num_vertices)
{
    kmuAssert(n >= 1, "graph needs vertices");

    // Counting pass (both directions; drop self-loops).
    std::vector<std::uint64_t> degree(n, 0);
    std::uint64_t directed = 0;
    for (const Edge &e : edges) {
        kmuAssert(e.u < n && e.v < n, "edge endpoint out of range");
        if (e.u == e.v)
            continue;
        degree[e.u]++;
        degree[e.v]++;
        directed += 2;
    }

    offsets.assign(n + 1, 0);
    for (std::uint64_t u = 0; u < n; ++u)
        offsets[u + 1] = offsets[u] + degree[u];

    adj.assign(directed, 0);
    std::vector<std::uint64_t> cursor(offsets.begin(),
                                      offsets.end() - 1);
    for (const Edge &e : edges) {
        if (e.u == e.v)
            continue;
        adj[cursor[e.u]++] = e.v;
        adj[cursor[e.v]++] = e.u;
    }
}

std::uint64_t
CsrGraph::maxDegreeVertex() const
{
    std::uint64_t best = 0;
    std::uint64_t best_degree = 0;
    for (std::uint64_t u = 0; u < n; ++u) {
        const std::uint64_t deg = offsets[u + 1] - offsets[u];
        if (deg > best_degree) {
            best_degree = deg;
            best = u;
        }
    }
    return best;
}

std::vector<std::uint8_t>
buildDeviceImage(const CsrGraph &graph, DeviceGraphLayout &layout)
{
    layout.n = graph.vertexCount();
    layout.m = graph.directedEdgeCount();
    layout.offsetsBase = 0;
    layout.adjBase = roundUp((layout.n + 1) * 8, cacheLineSize);

    std::vector<std::uint8_t> image(layout.imageBytes());
    std::memcpy(image.data() + layout.offsetsBase,
                graph.offsetArray().data(), (layout.n + 1) * 8);
    // An edgeless graph has an empty (null-data) neighbour array;
    // memcpy's arguments are declared nonnull even for size 0.
    if (layout.m > 0) {
        std::memcpy(image.data() + layout.adjBase,
                    graph.neighborArray().data(), layout.m * 8);
    }
    return image;
}

} // namespace kmu
