/**
 * @file
 * Compressed sparse row graph and its on-device layout.
 *
 * The graph's adjacency structure (offset and neighbor arrays) is
 * what the paper stores on the microsecond-latency device; auxiliary
 * BFS state (visited marks, frontier queues) stays in host DRAM.
 */

#ifndef KMU_APPS_GRAPH_CSR_HH
#define KMU_APPS_GRAPH_CSR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "apps/graph/kronecker.hh"
#include "common/types.hh"

namespace kmu
{

/** In-host CSR representation (reference and build source). */
class CsrGraph
{
  public:
    /**
     * Build an undirected CSR from an edge list over @p num_vertices
     * vertices. Self-loops are dropped; multi-edges are kept (as in
     * the Graph500 reference implementation).
     */
    CsrGraph(std::uint64_t num_vertices, const std::vector<Edge> &edges);

    std::uint64_t vertexCount() const { return n; }
    std::uint64_t directedEdgeCount() const { return adj.size(); }

    /** Neighbors of @p u. */
    std::span<const std::uint64_t>
    neighbors(std::uint64_t u) const
    {
        return {adj.data() + offsets[u],
                adj.data() + offsets[u + 1]};
    }

    /** Offset array (size n + 1). */
    const std::vector<std::uint64_t> &offsetArray() const
    {
        return offsets;
    }

    /** Neighbor array (size = directedEdgeCount()). */
    const std::vector<std::uint64_t> &neighborArray() const
    {
        return adj;
    }

    /** Vertex of maximum degree (a good BFS source). */
    std::uint64_t maxDegreeVertex() const;

  private:
    std::uint64_t n;
    std::vector<std::uint64_t> offsets;
    std::vector<std::uint64_t> adj;
};

/**
 * Where the CSR lives in device address space:
 *   [0 .. 8(n+1))                     offsets (xadj)
 *   [adjBase .. adjBase + 8m)         neighbors (adjncy)
 * adjBase is the offset array size rounded up to a cache line.
 */
struct DeviceGraphLayout
{
    std::uint64_t n = 0;
    std::uint64_t m = 0;
    Addr offsetsBase = 0;
    Addr adjBase = 0;

    Addr offsetAddr(std::uint64_t u) const
    {
        return offsetsBase + u * 8;
    }

    Addr adjAddr(std::uint64_t index) const
    {
        return adjBase + index * 8;
    }

    /** Image size, padded to whole lines so the last neighbors can
     *  be fetched with line-granular reads. */
    std::uint64_t
    imageBytes() const
    {
        const std::uint64_t raw = adjBase + m * 8;
        return (raw + cacheLineSize - 1) & ~Addr(cacheLineSize - 1);
    }
};

/** Serialize @p graph into a device image; layout returned via out. */
std::vector<std::uint8_t> buildDeviceImage(const CsrGraph &graph,
                                           DeviceGraphLayout &layout);

} // namespace kmu

#endif // KMU_APPS_GRAPH_CSR_HH
