#include "apps/graph/kronecker.hh"

#include "common/logging.hh"

namespace kmu
{

std::vector<Edge>
generateKronecker(const KroneckerParams &params)
{
    kmuAssert(params.scale >= 1 && params.scale <= 32,
              "kronecker scale out of range");
    const double ab = params.a + params.b;
    const double abc = ab + params.c;
    kmuAssert(abc < 1.0, "initiator probabilities exceed 1");

    Rng rng(params.seed);
    std::vector<Edge> edges;
    edges.reserve(params.edges());

    for (std::uint64_t e = 0; e < params.edges(); ++e) {
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        for (std::uint32_t bit = 0; bit < params.scale; ++bit) {
            const double r = rng.nextDouble();
            u <<= 1;
            v <<= 1;
            if (r < params.a) {
                // quadrant A: (0, 0)
            } else if (r < ab) {
                v |= 1; // quadrant B: (0, 1)
            } else if (r < abc) {
                u |= 1; // quadrant C: (1, 0)
            } else {
                u |= 1; // quadrant D: (1, 1)
                v |= 1;
            }
        }
        edges.push_back(Edge{u, v});
    }
    return edges;
}

} // namespace kmu
