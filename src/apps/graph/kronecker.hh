/**
 * @file
 * Graph500-style Kronecker graph generator.
 *
 * The BFS benchmark of the paper is the Graph500 kernel; its input
 * is a scale-free graph sampled from the stochastic Kronecker model
 * with initiator probabilities (A, B, C, D) = (0.57, 0.19, 0.19,
 * 0.05) and 16 edges per vertex. Generation is deterministic for a
 * given seed.
 */

#ifndef KMU_APPS_GRAPH_KRONECKER_HH
#define KMU_APPS_GRAPH_KRONECKER_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"

namespace kmu
{

/** One undirected edge. */
struct Edge
{
    std::uint64_t u;
    std::uint64_t v;
};

struct KroneckerParams
{
    std::uint32_t scale = 14;      //!< 2^scale vertices
    std::uint32_t edgeFactor = 16; //!< edges per vertex
    std::uint64_t seed = 1;

    /** @{ Initiator matrix (Graph500 defaults). */
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;
    /** @} */

    std::uint64_t vertices() const { return 1ull << scale; }
    std::uint64_t edges() const { return vertices() * edgeFactor; }
};

/** Sample an edge list from the Kronecker model. */
std::vector<Edge> generateKronecker(const KroneckerParams &params);

} // namespace kmu

#endif // KMU_APPS_GRAPH_KRONECKER_HH
