/**
 * @file
 * Canned application workloads: dataset synthesis, a functional run
 * through the host runtime, and access-trace capture for the timing
 * model (the full Fig. 10 pipeline).
 */

#ifndef KMU_APPS_WORKLOADS_HH
#define KMU_APPS_WORKLOADS_HH

#include <cstdint>
#include <string>

#include "apps/access_trace.hh"

namespace kmu
{

/** The paper's three application benchmarks. */
enum class AppKind
{
    Bfs,      //!< Graph500 breadth-first search (batch limit 2)
    Bloom,    //!< Bloom filter lookups (batch 4)
    Memcached //!< memcached-style GETs (batch 4 value reads)
};

const char *appName(AppKind app);

/** Scale knobs for workload synthesis (defaults are test-sized). */
struct AppWorkloadParams
{
    std::uint64_t seed = 42;

    /** @{ BFS: Kronecker scale / edge factor. */
    std::uint32_t bfsScale = 12;
    std::uint32_t bfsEdgeFactor = 16;
    /** @} */

    /** @{ Bloom: filter population and query count. */
    std::uint64_t bloomKeys = 20000;
    std::uint64_t bloomQueries = 30000;
    std::uint64_t bloomBits = 1ull << 21;
    std::uint32_t bloomHashes = 4;
    /** @} */

    /** @{ Memcached: population and query count. */
    std::uint64_t kvItems = 20000;
    std::uint64_t kvQueries = 20000;
    std::uint32_t kvValueBytes = 256; //!< 4 lines: the paper's batch
    std::uint64_t kvBuckets = 1ull << 14;
    /** @} */
};

/** Outcome of a functional run + trace capture. */
struct AppRunOutcome
{
    AccessTrace trace;             //!< batch-size sequence
    std::uint64_t operations = 0;  //!< app-level ops performed
    std::uint64_t checksum = 0;    //!< result digest (determinism)
};

/**
 * Build the dataset for @p app, run it functionally on the host
 * runtime's on-demand engine, and capture its access trace.
 * Deterministic for fixed parameters.
 */
AppRunOutcome runAndTrace(AppKind app, const AppWorkloadParams &params);

} // namespace kmu

#endif // KMU_APPS_WORKLOADS_HH
