#include "apps/workloads.hh"

#include "apps/bloom/bloom_filter.hh"
#include "apps/graph/bfs.hh"
#include "apps/graph/csr.hh"
#include "apps/graph/kronecker.hh"
#include "apps/kv/kv_store.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace kmu
{

const char *
appName(AppKind app)
{
    switch (app) {
      case AppKind::Bfs:
        return "BFS";
      case AppKind::Bloom:
        return "Bloomfilter";
      case AppKind::Memcached:
        return "Memcached";
    }
    panic("unknown app kind %d", int(app));
}

namespace
{

AppRunOutcome
runBfs(const AppWorkloadParams &params)
{
    KroneckerParams kp;
    kp.scale = params.bfsScale;
    kp.edgeFactor = params.bfsEdgeFactor;
    kp.seed = params.seed;
    const auto edges = generateKronecker(kp);
    const CsrGraph graph(kp.vertices(), edges);

    DeviceGraphLayout layout;
    auto image = buildDeviceImage(graph, layout);

    Runtime rt(std::move(image), {.mechanism = Mechanism::OnDemand});

    AppRunOutcome outcome;
    rt.spawnWorker([&](AccessEngine &engine) {
        TracingEngine traced(engine, outcome.trace);
        const auto res =
            bfsDevice(traced, layout, graph.maxDegreeVertex());
        outcome.operations = res.reached;
        outcome.checksum =
            res.reached * 1000003 + std::uint64_t(res.depth);
    });
    rt.run();
    return outcome;
}

AppRunOutcome
runBloom(const AppWorkloadParams &params)
{
    BloomParams bp;
    bp.bits = params.bloomBits;
    bp.hashes = params.bloomHashes;
    BloomBuilder builder(bp);

    Rng rng(params.seed);
    for (std::uint64_t i = 0; i < params.bloomKeys; ++i)
        builder.insert(rng.next());

    Runtime rt(builder.deviceImage(),
               {.mechanism = Mechanism::OnDemand});
    BloomProber prober(bp);

    AppRunOutcome outcome;
    rt.spawnWorker([&](AccessEngine &engine) {
        TracingEngine traced(engine, outcome.trace);
        // Half re-queries of inserted keys, half random probes.
        Rng requery(params.seed);
        Rng fresh(params.seed ^ 0xabcdef);
        std::uint64_t hits = 0;
        for (std::uint64_t q = 0; q < params.bloomQueries; ++q) {
            const bool member = (q % 2) == 0;
            const std::uint64_t key =
                member ? requery.next() : fresh.next();
            if (member && q / 2 >= params.bloomKeys)
                break;
            hits += prober.contains(traced, key) ? 1 : 0;
        }
        outcome.operations = params.bloomQueries;
        outcome.checksum = hits;
    });
    rt.run();
    return outcome;
}

AppRunOutcome
runMemcached(const AppWorkloadParams &params)
{
    KvParams kp;
    kp.buckets = params.kvBuckets;
    KvBuilder builder(kp);

    auto key_of = [](std::uint64_t i) {
        return csprintf("key-%016llx", (unsigned long long)mix64(i));
    };
    auto value_of = [&params](std::uint64_t i) {
        std::string v(params.kvValueBytes, '\0');
        std::uint64_t state = i;
        for (auto &ch : v)
            ch = char('a' + splitMix64(state) % 26);
        return v;
    };
    for (std::uint64_t i = 0; i < params.kvItems; ++i)
        builder.put(key_of(i), value_of(i));

    Runtime rt(builder.deviceImage(),
               {.mechanism = Mechanism::OnDemand});
    KvProber prober(kp);

    AppRunOutcome outcome;
    rt.spawnWorker([&](AccessEngine &engine) {
        TracingEngine traced(engine, outcome.trace);
        Rng rng(params.seed ^ 0x5eed);
        std::uint64_t found = 0;
        std::uint64_t bytes = 0;
        for (std::uint64_t q = 0; q < params.kvQueries; ++q) {
            // 90 % hits, 10 % misses — a cache-like mix.
            const bool hit = rng.nextDouble() < 0.9;
            const std::string key =
                hit ? key_of(rng.nextBounded(params.kvItems))
                    : csprintf("missing-%llu",
                               (unsigned long long)rng.next());
            const auto value = prober.get(traced, key);
            kmuAssert(value.has_value() == hit,
                      "memcached lookup result mismatch");
            if (value) {
                found++;
                bytes += value->size();
            }
        }
        outcome.operations = params.kvQueries;
        outcome.checksum = found * 1000003 + bytes;
    });
    rt.run();
    return outcome;
}

} // anonymous namespace

AppRunOutcome
runAndTrace(AppKind app, const AppWorkloadParams &params)
{
    switch (app) {
      case AppKind::Bfs:
        return runBfs(params);
      case AppKind::Bloom:
        return runBloom(params);
      case AppKind::Memcached:
        return runMemcached(params);
    }
    panic("unknown app kind %d", int(app));
}

} // namespace kmu
