/**
 * @file
 * Deterministic fault-injection plans.
 *
 * The paper's protocol (Section IV) is defined by the corner cases it
 * must absorb — skipped, reordered, and spurious accesses — yet a
 * reproduction that only ever runs the happy path proves nothing
 * about them. A FaultPlan provokes those corner cases *on purpose and
 * reproducibly*: every injection site draws from its own xoshiro
 * stream seeded from (plan seed, site id), never from wall clock, so
 * the same seed and plan produce the same fault schedule bit-for-bit
 * — which is what lets tools/kmu_faultstorm emit byte-identical CSVs
 * and lets a test replay the exact campaign that broke something.
 *
 * Per-site streams also isolate sites from each other: adding a draw
 * at one site cannot perturb the schedule of any other site, and in
 * the real-time runtime (host thread + device thread) each site is
 * only ever exercised from one thread, so per-site state needs no
 * locking.
 *
 * Injection is opt-in and zero-cost when off: components consult the
 * process-wide plan through fault::fire(), which is a null-pointer
 * check when no plan is installed. With no plan the model's behaviour
 * — and therefore every figure and ablation CSV — is bit-identical
 * to a build without this subsystem.
 */

#ifndef KMU_FAULT_FAULT_PLAN_HH
#define KMU_FAULT_FAULT_PLAN_HH

#include <array>
#include <cstdint>

#include "common/random.hh"

namespace kmu
{
namespace fault
{

/**
 * Every place a fault can be provoked. Sites mirror the layers of
 * the stack: the PCIe link, the uncore/LFB hardware queues, the
 * device emulator, and the software-queue protocol.
 */
enum class FaultSite : std::uint32_t
{
    // --- PCIe link (transaction layer protected by link-level CRC:
    //     drops and bit flips become NAK + retransmission, costing
    //     wire bandwidth and latency but never losing TLPs) ---
    PcieTlpDrop,        //!< lost TLP: replay after the retry timeout
    PcieTlpDuplicate,   //!< dup TLP: extra wire traffic, one delivery
    PcieTlpBitFlip,     //!< LCRC failure: NAK + retransmission
    PcieLatencySpike,   //!< tail-latency blowup on one delivery

    // --- uncore queue and LFB ---
    UncoreEntryStall,   //!< arbitration stall before slot grant
    UncoreTransientFull,//!< slot briefly unavailable despite headroom
    LfbTransientFull,   //!< allocation conflict: behave as full once
    LfbFillStall,       //!< fill delivery delayed

    // --- device emulator ---
    DoorbellLoss,       //!< doorbell MMIO write never lands
    DescFetchTruncation,//!< DMA burst truncated mid-burst-of-8
    ReplayEvictionStorm,//!< replay window evicts a run of entries
    OnDemandStall,      //!< on-demand module (slow DRAM) stalls

    // --- software-queue completion path ---
    CompletionLoss,     //!< completion record never posted
    CompletionReorder,  //!< completion delivered out of order
    ResponseBitFlip,    //!< response payload corrupted in flight

    // --- memory-mapped (on-demand / prefetch) read path ---
    MappedReadError,    //!< detected MMIO read error: must re-issue

    // --- domain-scale shapes (whole-shard failure domains; scope
    //     with FaultSpec::shardMask, magnitude = window length) ---
    LinkOutage,         //!< PCIe link drops everything for a window
    DeviceHang,         //!< device stops servicing for a window
    Brownout,           //!< service latency multiplied for a window

    NumSites
};

constexpr std::size_t numFaultSites =
    static_cast<std::size_t>(FaultSite::NumSites);

/** Stable short name (CSV columns, logs). */
const char *faultSiteName(FaultSite site);

/**
 * Per-site fault schedule.
 *
 * `rate` is the Bernoulli probability of injecting at each encounter
 * of the site. When `burstPeriod` is nonzero, injection is eligible
 * only during the first `burstLen` encounters of every
 * `burstPeriod`-encounter window — modelling the sustained fault
 * pressure (then relief) that the degradation governor must detect
 * and recover from, while staying a pure function of the encounter
 * counter.
 *
 * `magnitude` parameterizes sites that need a size: stall ticks for
 * *Stall sites, extra propagation ticks for PcieLatencySpike,
 * entries evicted for ReplayEvictionStorm, extra service steps for
 * the real-time device. Zero selects a site-specific default.
 *
 * `shardMask` scopes the site to a subset of device shards in a
 * sharded topology (src/topo): bit s enables injection at the
 * instance of this site on shard s. Components that are not
 * per-shard (LFBs, the access engines) encounter their sites as
 * shard 0. The all-ones default keeps single-device plans
 * bit-identical to the pre-sharding behaviour. A masked-out
 * encounter still advances the site's encounter counter (so burst
 * windows stay aligned with wall progress) but draws nothing from
 * the site's RNG stream.
 */
struct FaultSpec
{
    double rate = 0.0;
    std::uint64_t magnitude = 0;
    std::uint64_t burstPeriod = 0;
    std::uint64_t burstLen = 0;
    std::uint64_t shardMask = ~std::uint64_t(0);
};

class FaultPlan
{
  public:
    explicit FaultPlan(std::uint64_t seed);

    std::uint64_t seed() const { return planSeed; }

    /** Install one site's schedule (overwrites any previous spec). */
    void set(FaultSite site, FaultSpec spec);

    const FaultSpec &spec(FaultSite site) const;

    /**
     * Composite schedule: the same base rate at every injection
     * site, with a bursty MappedReadError/OnDemandStall phase so a
     * campaign exercises the degradation governor's enter *and* exit
     * transitions. This is the schedule kmu_faultstorm escalates.
     */
    static FaultPlan composite(std::uint64_t seed, double rate);

    /**
     * Domain-outage schedule: the shards selected by @p shardMask
     * suffer periodic device hangs (window of @p hangWindow service
     * steps, once per @p period encounters) and a brownout
     * (service latency ×@p brownoutFactor) while the rest of the
     * system runs fault-free. This is the schedule abl_outage and
     * kmu_faultstorm's outage mode inject — the shape the health
     * controller exists to contain.
     */
    static FaultPlan outage(std::uint64_t seed, std::uint64_t shardMask,
                            std::uint64_t hangWindow,
                            std::uint64_t period,
                            std::uint64_t brownoutFactor = 0);

    /**
     * One encounter of @p site on device shard @p shard: advances
     * the site's encounter counter and draws whether to inject.
     * Deterministic given the plan seed and the site's encounter
     * history. Shards excluded by the spec's shardMask never inject
     * and never draw.
     */
    bool shouldInject(FaultSite site, std::uint32_t shard = 0);

    /**
     * Deterministic magnitude draw in [1, bound] from the site's
     * stream (for sites that need a parameter after firing).
     */
    std::uint64_t drawBounded(FaultSite site, std::uint64_t bound);

    /** Site magnitude, or @p fallback when the spec leaves it 0. */
    std::uint64_t magnitudeOr(FaultSite site,
                              std::uint64_t fallback) const;

    /** @{ Per-site accounting (for CSVs and tests). */
    std::uint64_t encounters(FaultSite site) const;
    std::uint64_t injected(FaultSite site) const;
    /** @} */

    /** Total injections across all sites. */
    std::uint64_t totalInjected() const;

  private:
    struct SiteState
    {
        FaultSpec spec;
        Rng rng;
        /**
         * Encounter counters are per shard: the burst window gate
         * (encounter % burstPeriod) must track each failure domain's
         * own progress. A global counter would stride by the number
         * of shards under round-robin service and alias with
         * burstPeriod — a shard could sit permanently outside its
         * burst window no matter how long the plan runs.
         */
        std::array<std::uint64_t, 64> shardEncounters{};
        std::uint64_t injectedCount = 0;
    };

    SiteState &state(FaultSite site);
    const SiteState &state(FaultSite site) const;

    std::uint64_t planSeed;
    std::array<SiteState, numFaultSites> sites;
};

/**
 * Install @p plan as the process-wide active plan (nullptr to
 * disable). The caller keeps ownership and must keep the plan alive
 * while installed. Not thread-safe: install before starting the
 * device thread / fiber scheduler, uninstall after they stop.
 */
void install(FaultPlan *plan);

/** The active plan, or nullptr when injection is off. */
FaultPlan *plan();

/** RAII installer for tests and tools. */
class ScopedPlan
{
  public:
    explicit ScopedPlan(FaultPlan &p) { install(&p); }
    ~ScopedPlan() { install(nullptr); }

    ScopedPlan(const ScopedPlan &) = delete;
    ScopedPlan &operator=(const ScopedPlan &) = delete;
};

/** Fast-path encounter: false (one branch) when no plan is active.
 *  @p shard addresses the site instance in a sharded topology;
 *  components that predate sharding encounter their sites as
 *  shard 0. */
inline bool
fire(FaultSite site, std::uint32_t shard = 0)
{
    FaultPlan *p = plan();
    return p != nullptr && p->shouldInject(site, shard);
}

/** Magnitude of @p site under the active plan, else @p fallback.
 *  Call only after fire() returned true (a plan is active). */
std::uint64_t magnitude(FaultSite site, std::uint64_t fallback);

/** Bounded draw from the active plan's site stream (1 when no plan
 *  is active, so callers need no separate guard). */
std::uint64_t draw(FaultSite site, std::uint64_t bound);

} // namespace fault
} // namespace kmu

#endif // KMU_FAULT_FAULT_PLAN_HH
