#include "fault/fault_plan.hh"

#include "common/logging.hh"

namespace kmu
{
namespace fault
{

namespace
{

FaultPlan *activePlan = nullptr;

} // anonymous namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::PcieTlpDrop:         return "pcie_tlp_drop";
      case FaultSite::PcieTlpDuplicate:    return "pcie_tlp_dup";
      case FaultSite::PcieTlpBitFlip:      return "pcie_tlp_bitflip";
      case FaultSite::PcieLatencySpike:    return "pcie_latency_spike";
      case FaultSite::UncoreEntryStall:    return "uncore_entry_stall";
      case FaultSite::UncoreTransientFull: return "uncore_transient_full";
      case FaultSite::LfbTransientFull:    return "lfb_transient_full";
      case FaultSite::LfbFillStall:        return "lfb_fill_stall";
      case FaultSite::DoorbellLoss:        return "doorbell_loss";
      case FaultSite::DescFetchTruncation: return "desc_fetch_truncation";
      case FaultSite::ReplayEvictionStorm: return "replay_eviction_storm";
      case FaultSite::OnDemandStall:       return "on_demand_stall";
      case FaultSite::CompletionLoss:      return "completion_loss";
      case FaultSite::CompletionReorder:   return "completion_reorder";
      case FaultSite::ResponseBitFlip:     return "response_bitflip";
      case FaultSite::MappedReadError:     return "mapped_read_error";
      case FaultSite::LinkOutage:          return "link_outage";
      case FaultSite::DeviceHang:          return "device_hang";
      case FaultSite::Brownout:            return "brownout";
      case FaultSite::NumSites:            break;
    }
    panic("bad fault site %u", unsigned(site));
}

FaultPlan::FaultPlan(std::uint64_t seed) : planSeed(seed)
{
    // Decorrelate the site streams: each gets its own generator
    // seeded from the plan seed and the site index, so one site's
    // draw count never influences another site's schedule.
    for (std::size_t i = 0; i < numFaultSites; ++i)
        sites[i].rng.seed(mix64(seed ^ mix64(0xfa17u + i)));
}

FaultPlan::SiteState &
FaultPlan::state(FaultSite site)
{
    const auto index = static_cast<std::size_t>(site);
    kmuAssert(index < numFaultSites, "bad fault site %zu", index);
    return sites[index];
}

const FaultPlan::SiteState &
FaultPlan::state(FaultSite site) const
{
    const auto index = static_cast<std::size_t>(site);
    kmuAssert(index < numFaultSites, "bad fault site %zu", index);
    return sites[index];
}

void
FaultPlan::set(FaultSite site, FaultSpec spec)
{
    kmuAssert(spec.rate >= 0.0 && spec.rate <= 1.0,
              "fault rate %f out of [0,1]", spec.rate);
    kmuAssert(spec.burstPeriod == 0 ||
                  spec.burstLen <= spec.burstPeriod,
              "burst length %llu exceeds period %llu",
              (unsigned long long)spec.burstLen,
              (unsigned long long)spec.burstPeriod);
    state(site).spec = spec;
}

const FaultSpec &
FaultPlan::spec(FaultSite site) const
{
    return state(site).spec;
}

FaultPlan
FaultPlan::composite(std::uint64_t seed, double rate)
{
    FaultPlan plan(seed);
    if (rate <= 0.0)
        return plan;

    for (std::size_t i = 0; i < numFaultSites; ++i)
        plan.set(static_cast<FaultSite>(i), FaultSpec{rate, 0, 0, 0});

    // The mapped-read and device-stall sites run bursty: windows of
    // concentrated pressure (amplified rate) followed by quiet
    // stretches. Sustained pressure is what pushes the retry-rate
    // EWMA over the governor's enter threshold; the quiet stretch is
    // what lets it recover — both within one campaign step.
    const double burst_rate = rate * 40.0 > 0.9 ? 0.9 : rate * 40.0;
    plan.set(FaultSite::MappedReadError,
             FaultSpec{burst_rate, 0, 2048, 512});
    plan.set(FaultSite::OnDemandStall,
             FaultSpec{burst_rate, 0, 2048, 512});
    return plan;
}

FaultPlan
FaultPlan::outage(std::uint64_t seed, std::uint64_t shardMask,
                  std::uint64_t hangWindow, std::uint64_t period,
                  std::uint64_t brownoutFactor)
{
    FaultPlan plan(seed);
    kmuAssert(hangWindow > 0, "outage needs a positive hang window");
    kmuAssert(period > 0, "outage needs a positive period");
    // One guaranteed hang at the top of every period-encounter
    // window. While a component is inside a hang window it stops
    // encountering the site, so consecutive windows never merge.
    plan.set(FaultSite::DeviceHang,
             FaultSpec{1.0, hangWindow, period, 1, shardMask});
    plan.set(FaultSite::LinkOutage,
             FaultSpec{1.0, hangWindow, period, 1, shardMask});
    if (brownoutFactor > 1) {
        // Brownout rides alongside the hangs: every serviced request
        // of the sick shards runs brownoutFactor× slow.
        plan.set(FaultSite::Brownout,
                 FaultSpec{1.0, brownoutFactor, 0, 0, shardMask});
    }
    return plan;
}

bool
FaultPlan::shouldInject(FaultSite site, std::uint32_t shard)
{
    SiteState &s = state(site);
    if ((s.spec.shardMask >> (shard & 63u) & 1u) == 0) {
        // Shard excluded: count the encounter (the per-shard window
        // position still tracks its progress) but leave the RNG
        // stream untouched so the enabled shards' schedules are
        // independent of how often the masked ones run.
        s.shardEncounters[shard & 63u]++;
        return false;
    }
    const std::uint64_t encounter = s.shardEncounters[shard & 63u]++;
    if (s.spec.rate <= 0.0)
        return false;
    if (s.spec.burstPeriod != 0 &&
        (encounter % s.spec.burstPeriod) >= s.spec.burstLen)
        return false;
    if (!s.rng.nextBool(s.spec.rate))
        return false;
    s.injectedCount++;
    return true;
}

std::uint64_t
FaultPlan::drawBounded(FaultSite site, std::uint64_t bound)
{
    kmuAssert(bound > 0, "drawBounded needs a positive bound");
    return 1 + state(site).rng.nextBounded(bound);
}

std::uint64_t
FaultPlan::magnitudeOr(FaultSite site, std::uint64_t fallback) const
{
    const std::uint64_t m = state(site).spec.magnitude;
    return m != 0 ? m : fallback;
}

std::uint64_t
FaultPlan::encounters(FaultSite site) const
{
    std::uint64_t total = 0;
    for (const std::uint64_t n : state(site).shardEncounters)
        total += n;
    return total;
}

std::uint64_t
FaultPlan::injected(FaultSite site) const
{
    return state(site).injectedCount;
}

std::uint64_t
FaultPlan::totalInjected() const
{
    std::uint64_t total = 0;
    for (const SiteState &s : sites)
        total += s.injectedCount;
    return total;
}

void
install(FaultPlan *plan_to_install)
{
    activePlan = plan_to_install;
}

FaultPlan *
plan()
{
    return activePlan;
}

std::uint64_t
magnitude(FaultSite site, std::uint64_t fallback)
{
    FaultPlan *p = plan();
    return p != nullptr ? p->magnitudeOr(site, fallback) : fallback;
}

std::uint64_t
draw(FaultSite site, std::uint64_t bound)
{
    FaultPlan *p = plan();
    return p != nullptr ? p->drawBounded(site, bound) : 1;
}

} // namespace fault
} // namespace kmu
