/**
 * @file
 * Recovery policies: bounded retry with backoff, and the
 * prefetch→on-demand degradation governor.
 *
 * The survival half of the fault subsystem. Injection (fault_plan.hh)
 * provokes losses and stalls; these classes define how the host
 * runtime absorbs them:
 *
 *  - RetryPolicy/RetryBackoff: a timed-out or corrupted access is
 *    re-issued, at most maxRetries times, with exponential backoff
 *    plus deterministic jitter (drawn from a seeded Rng, never wall
 *    clock). Timeouts are counted in *poll ticks* — completion-queue
 *    poll passes — rather than nanoseconds, which makes the watchdog
 *    deterministic under the manually-pumped device and still
 *    bounded under the free-running device thread.
 *
 *  - DegradationGovernor: tracks a retry-rate EWMA across accesses.
 *    Sustained fault pressure (EWMA over the enter threshold)
 *    switches the runtime into Degraded mode, where prefetch-mode
 *    fibers stop issuing prefetch+yield pairs and fall back to plain
 *    on-demand loads — under a stalling device the prefetched line
 *    never arrives in time, so the yield is pure overhead. When the
 *    EWMA decays below the exit threshold the governor recovers to
 *    Normal. Both transitions are counted for campaign CSVs.
 */

#ifndef KMU_FAULT_RECOVERY_HH
#define KMU_FAULT_RECOVERY_HH

#include <cstdint>

#include "common/random.hh"

namespace kmu
{
namespace fault
{

/** Bounded-retry parameters shared by all engines of one runtime. */
struct RetryPolicy
{
    /** Re-issues allowed per logical access before giving up. */
    std::uint32_t maxRetries = 16;

    /** Poll ticks without progress before the first re-issue. */
    std::uint64_t timeoutPolls = 256;

    /** Backoff added after attempt k: base << (k-1), plus jitter. */
    std::uint64_t backoffBasePolls = 32;

    /** Backoff growth cap (shift amount), keeps 1 << k bounded. */
    std::uint32_t backoffMaxShift = 6;

    /** Jitter fraction of the computed backoff, in [0, 1]. */
    double jitter = 0.5;

    /** Seed of the jitter stream (deterministic, never wall clock). */
    std::uint64_t seed = 0x5eedfau;
};

/**
 * Deadline calculator for one runtime's watchdog. Owns the jitter
 * stream; single-threaded (everything runs on the host thread).
 */
class RetryBackoff
{
  public:
    explicit RetryBackoff(const RetryPolicy &policy)
        : cfg(policy), rng(policy.seed)
    {
    }

    const RetryPolicy &policy() const { return cfg; }

    /**
     * Poll ticks to wait before re-issue number @p attempt
     * (1-based): timeout + exponential backoff + jitter.
     */
    std::uint64_t
    deadlinePolls(std::uint32_t attempt)
    {
        const std::uint32_t shift =
            attempt > cfg.backoffMaxShift ? cfg.backoffMaxShift
                                          : attempt;
        const std::uint64_t backoff = cfg.backoffBasePolls
                                      << (shift > 0 ? shift - 1 : 0);
        std::uint64_t wait = cfg.timeoutPolls + backoff;
        if (cfg.jitter > 0.0 && backoff > 0) {
            const auto span =
                std::uint64_t(double(backoff) * cfg.jitter);
            if (span > 0)
                wait += rng.nextBounded(span + 1);
        }
        return wait;
    }

  private:
    RetryPolicy cfg;
    Rng rng;
};

/**
 * Retry-pressure EWMA and the Normal↔Degraded state machine.
 */
class DegradationGovernor
{
  public:
    struct Config
    {
        /** EWMA smoothing factor per access sample. */
        double alpha = 0.05;

        /** Enter Degraded when the EWMA exceeds this. */
        double enterThreshold = 0.20;

        /** Recover to Normal when the EWMA falls below this. */
        double exitThreshold = 0.02;

        /** Samples required before the first transition (keeps a
         *  lucky early burst from flapping the governor). */
        std::uint64_t minSamples = 64;
    };

    DegradationGovernor() = default;
    explicit DegradationGovernor(Config config) : cfg(config) {}

    /** Record one access outcome; may transition the state. */
    void
    sample(bool retried)
    {
        samples_++;
        ewma_ += cfg.alpha * ((retried ? 1.0 : 0.0) - ewma_);
        if (samples_ < cfg.minSamples)
            return;
        if (!degraded_ && ewma_ > cfg.enterThreshold) {
            degraded_ = true;
            degradations_++;
        } else if (degraded_ && ewma_ < cfg.exitThreshold) {
            degraded_ = false;
            recoveries_++;
        }
    }

    bool degraded() const { return degraded_; }
    double ewma() const { return ewma_; }
    std::uint64_t samples() const { return samples_; }
    std::uint64_t degradations() const { return degradations_; }
    std::uint64_t recoveries() const { return recoveries_; }

  private:
    Config cfg;
    double ewma_ = 0.0;
    std::uint64_t samples_ = 0;
    bool degraded_ = false;
    std::uint64_t degradations_ = 0;
    std::uint64_t recoveries_ = 0;
};

} // namespace fault
} // namespace kmu

#endif // KMU_FAULT_RECOVERY_HH
