/**
 * @file
 * Prefetch + user-level-context-switch core model (the paper's main
 * proposal, Section V-B).
 *
 * T user-level threads run round robin on the core. Each visit:
 *
 *   resume -> demand-load the lines prefetched last visit
 *             (L1 hit if filled; stall on the MSHR if still in
 *              flight)
 *          -> execute the dependent work block
 *          -> issue the next iteration's prefetches (batch = MLP)
 *          -> user-level context switch to the next thread.
 *
 * A software prefetch that finds all 10 LFB entries busy is not
 * dropped outright: it sits in the core's load buffers and allocates
 * an entry as soon as one frees (FIFO). In-flight lines per core are
 * therefore hard-capped at the LFB size, which produces the paper's
 * plateaus: at 10 threads for MLP 1 (Fig. 3), ~5 threads for MLP 2
 * and ~3 for MLP 4 (Fig. 6); the 14-entry chip-level queue caps all
 * cores combined (Fig. 5).
 */

#ifndef KMU_CORE_PREFETCH_CORE_HH
#define KMU_CORE_PREFETCH_CORE_HH

#include <vector>

#include "core/core_base.hh"

namespace kmu
{

class PrefetchCore : public CoreBase
{
  public:
    PrefetchCore(std::string name, EventQueue &queue, CoreId id,
                 const SystemConfig &cfg, IssueLine issue,
                 StatGroup *stat_parent);

    void start() override;

    /** @{ Mechanism statistics. */
    Counter prefetchesIssued;
    Counter prefetchesQueued;
    Counter prefetchesMerged;
    Counter loadStalls;
    /** @} */

  private:
    /** Cached "<name>.serve_wake": per-admission wakeup. */
    const std::string serveWakeName = name() + ".serve_wake";

    enum class SlotState
    {
        Filled, //!< prefetch completed; load will hit in the L1
        Pending //!< in the LFB (or queued for one); load must wait
    };

    /** Sentinel: the core is not blocked on any slot. */
    static constexpr std::uint32_t noWait = ~0u;

    struct UThread
    {
        bool firstVisit = true;
        bool parked = false; //!< serving mode: awaiting an arrival
        std::uint64_t iter = 0;
        IterationPlan plan{1, 0}; //!< plan of iteration `iter`
        std::vector<SlotState> slots;
        std::vector<bool> writeSlots; //!< posted-write positions
        std::uint32_t waitingSlot = noWait;
    };

    /** Begin the current thread's visit. */
    void runCurrent();

    /**
     * Serving mode: consult the admission gate for the current
     * thread's next iteration. On failure the thread parks (its
     * next visit re-enters the prefetch-issue path), the scheduler
     * skips to a runnable thread, and false is returned — the
     * caller must not touch the thread further.
     */
    bool admitCurrent();

    /** Wake hook: the parked thread's request arrived. */
    void unpark(std::uint32_t thread_id);

    /** Consume the loads of the current thread from @p slot on. */
    void consumeLoads(std::uint32_t slot);

    /** Work block, then next iteration's prefetches, then switch. */
    void finishVisit();

    /** Issue prefetches for the current thread's next iteration. */
    void issuePrefetches();

    /** Allocate an LFB entry for (thread, slot), waiting FIFO in the
     *  load buffers if the LFB is currently full. */
    void allocatePrefetch(std::uint32_t thread_id, std::uint32_t slot);

    /** Context switch to the next thread (round robin), after
     *  charging for the @p issued prefetch instructions. */
    void switchAway(std::uint32_t issued);

    std::vector<UThread> threads;
    std::uint32_t current = 0;
    std::uint32_t parkedCount = 0; //!< serving mode: parked threads
    bool coreIdle = false;         //!< every thread is parked
};

} // namespace kmu

#endif // KMU_CORE_PREFETCH_CORE_HH
