#include "core/prefetch_core.hh"

namespace kmu
{

PrefetchCore::PrefetchCore(std::string name, EventQueue &queue, CoreId id,
                           const SystemConfig &config, IssueLine issue,
                           StatGroup *stat_parent)
    : CoreBase(std::move(name), queue, id, config, std::move(issue),
               stat_parent),
      prefetchesIssued(stats(), "prefetches_issued",
                       "software prefetches that allocated an LFB "
                       "entry immediately"),
      prefetchesQueued(stats(), "prefetches_queued",
                       "software prefetches that waited in the load "
                       "buffers for a free LFB entry"),
      prefetchesMerged(stats(), "prefetches_merged",
                       "prefetches coalesced into an in-flight miss"),
      loadStalls(stats(), "load_stalls",
                 "demand loads that waited on an in-flight prefetch")
{
    kmuAssert(cfg.threadsPerCore >= 1, "prefetch core needs threads");
    threads.resize(cfg.threadsPerCore);
}

void
PrefetchCore::start()
{
    runCurrent();
}

void
PrefetchCore::runCurrent()
{
    // Serving mode: skip parked threads without charge; with every
    // thread parked the core goes idle until an arrival unparks one.
    // parkedCount is 0 whenever serving is off, so the closed-loop
    // path never takes this branch.
    if (parkedCount > 0) {
        std::uint32_t scanned = 0;
        while (threads[current].parked &&
               scanned < threads.size()) {
            current = (current + 1) % std::uint32_t(threads.size());
            scanned++;
        }
        if (threads[current].parked) {
            coreIdle = true;
            return;
        }
    }
    UThread &t = threads[current];
    if (t.firstVisit) {
        if (!admitCurrent())
            return;
        t.firstVisit = false;
        issuePrefetches();
        switchAway(t.plan.batch);
        return;
    }
    consumeLoads(0);
}

bool
PrefetchCore::admitCurrent()
{
    if (!cfg.admitGate)
        return true;
    UThread &t = threads[current];
    const std::uint32_t tid = current;
    if (cfg.admitGate(id(), tid, t.iter,
                      [this, tid]() { unpark(tid); })) {
        return true;
    }
    // No request yet: park with firstVisit set so the next visit
    // re-enters the prefetch-issue path, and let the scheduler find
    // a runnable thread (or idle the core).
    t.parked = true;
    t.firstVisit = true;
    parkedCount++;
    runCurrent();
    return false;
}

void
PrefetchCore::unpark(std::uint32_t thread_id)
{
    UThread &t = threads[thread_id];
    kmuAssert(t.parked, "unpark of a running thread");
    t.parked = false;
    kmuAssert(parkedCount > 0, "unpark without parked threads");
    parkedCount--;
    if (coreIdle) {
        // The woken thread restarts the otherwise-quiet core.
        coreIdle = false;
        current = thread_id;
        eventQueue().scheduleLambda(
            curTick(), [this]() { runCurrent(); },
            EventPriority::CpuTick, serveWakeName);
    }
}

void
PrefetchCore::consumeLoads(std::uint32_t slot)
{
    UThread &t = threads[current];
    // Walk slots, accumulating L1-hit (or posted-store) time, until
    // one is not ready.
    Tick charge = 0;
    while (slot < t.plan.batch &&
           t.slots[slot] == SlotState::Filled) {
        if (t.writeSlots[slot]) {
            // Posted store: the line write leaves via the store
            // buffer without stalling the thread.
            charge += cfg.storeLatency;
            emitWrite(current, t.iter, slot);
        } else {
            charge += cfg.loadHitLatency;
            accessesCompleted++;
        }
        slot++;
    }

    if (slot == t.plan.batch) {
        chargeAndThen(charge, [this]() { finishVisit(); });
        return;
    }

    // The load finds its line still in flight (in the MSHR or queued
    // for it) and blocks the core until the fill; the fill callback
    // registered at prefetch time resumes us.
    const std::uint32_t stuck = slot;
    ++loadStalls;
    chargeAndThen(charge, [this, stuck]() {
        UThread &tt = threads[current];
        if (tt.slots[stuck] == SlotState::Filled) {
            consumeLoads(stuck);
        } else {
            tt.waitingSlot = stuck;
        }
    });
}

void
PrefetchCore::finishVisit()
{
    const IterationPlan done = threads[current].plan;
    chargeAndThen(cfg.workTicks(done), [this, done]() {
        retireIteration(done);
        if (cfg.onRetire)
            cfg.onRetire(id(), current, threads[current].iter);
        threads[current].iter++;
        if (!admitCurrent())
            return;
        issuePrefetches();

        // Count the prefetches actually issued (write slots issue
        // none). A write-only iteration has no latency to hide, so
        // the scheduler is not invoked at all — the thread keeps
        // running, exactly the paper's "hidden by later instructions
        // of the same thread" argument for writes.
        const UThread &t = threads[current];
        std::uint32_t reads = 0;
        for (std::uint32_t slot = 0; slot < t.plan.batch; ++slot)
            reads += t.writeSlots[slot] ? 0 : 1;
        if (reads == 0) {
            consumeLoads(0);
            return;
        }
        switchAway(reads);
    });
}

void
PrefetchCore::issuePrefetches()
{
    UThread &t = threads[current];
    const std::uint32_t thread_id = current;

    t.plan = cfg.planFor(id(), thread_id, t.iter);
    kmuAssert(t.plan.batch >= 1 &&
              t.plan.batch <= AccessEngine::maxBatch,
              "bad plan batch %u", t.plan.batch);
    t.slots.assign(t.plan.batch, SlotState::Pending);
    t.writeSlots.assign(t.plan.batch, false);

    for (std::uint32_t slot = 0; slot < t.plan.batch; ++slot) {
        if (isWriteSlot(thread_id, t.iter, slot)) {
            // Writes need no prefetch and nothing to wait for; the
            // store itself happens at consume time.
            t.writeSlots[slot] = true;
            t.slots[slot] = SlotState::Filled;
            continue;
        }
        const Addr line = lineAlign(addrFor(thread_id, t.iter, slot));
        if (l1Hit(line)) {
            // Already cached: the prefetch is a no-op and the load
            // will hit without touching the LFBs or the device.
            t.slots[slot] = SlotState::Filled;
            continue;
        }
        allocatePrefetch(thread_id, slot);
    }
}

void
PrefetchCore::allocatePrefetch(std::uint32_t thread_id,
                               std::uint32_t slot)
{
    UThread &t = threads[thread_id];
    const Addr line = lineAlign(addrFor(thread_id, t.iter, slot));
    const auto result = lineFillBuffers.request(
        line, [this, thread_id, slot]() {
            UThread &tt = threads[thread_id];
            tt.slots[slot] = SlotState::Filled;
            if (thread_id == current && tt.waitingSlot == slot) {
                tt.waitingSlot = noWait;
                consumeLoads(slot);
            }
        });

    switch (result) {
      case Lfb::AllocResult::NewEntry:
        ++prefetchesIssued;
        issueLine(line, [this, line]() {
            l1Install(line);
            lineFillBuffers.fill(line);
        });
        break;
      case Lfb::AllocResult::Merged:
        // Another thread already has this line in flight (possible
        // only with locality-bearing address plans): our callback is
        // attached to the existing entry.
        ++prefetchesMerged;
        break;
      case Lfb::AllocResult::NoEntry:
        // The prefetch waits in the load buffers; it allocates an
        // entry (FIFO) once one frees up. The thread's eventual
        // demand load simply finds the line still Pending.
        ++prefetchesQueued;
        lineFillBuffers.waitForFree([this, thread_id, slot]() {
            allocatePrefetch(thread_id, slot);
        });
        break;
    }
}

void
PrefetchCore::switchAway(std::uint32_t issued)
{
    chargeAndThen(Tick(issued) * cfg.prefetchIssueLatency +
                      cfg.ctxSwitchCost,
                  [this]() {
                      current = (current + 1) %
                                std::uint32_t(threads.size());
                      runCurrent();
                  });
}

} // namespace kmu
