#include "core/run_result_wire.hh"

#include <cstring>

namespace kmu
{

namespace
{

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(std::uint8_t(v >> shift));
}

void
putF64(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int b = 7; b >= 0; --b)
        v = (v << 8) | p[b];
    return v;
}

double
getF64(const std::uint8_t *p)
{
    const std::uint64_t bits = getU64(p);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    return std::uint32_t(p[0]) | std::uint32_t(p[1]) << 8 |
           std::uint32_t(p[2]) << 16 | std::uint32_t(p[3]) << 24;
}

} // anonymous namespace

std::vector<std::uint8_t>
serializeRunResult(const RunResult &res)
{
    std::vector<std::uint8_t> out;
    out.reserve(runResultWireBytes);
    putU64(out, std::uint64_t(runResultWireVersion) << 32 |
                    runResultWireMagic);
    putU64(out, res.elapsed);
    putU64(out, res.iterations);
    putU64(out, res.workInstrs);
    putU64(out, res.accesses);
    putU64(out, res.writes);
    putF64(out, res.workIpc);
    putF64(out, res.accessesPerUs);
    putF64(out, res.meanReadLatencyNs);
    putF64(out, res.toHostWireGBs);
    putF64(out, res.toHostUsefulGBs);
    putF64(out, res.toDeviceWireGBs);
    putU64(out, res.chipQueuePeak);
    putU64(out, res.prefetchesQueued);
    putU64(out, res.replayMisses);
    putU64(out, res.l1Hits);
    putU64(out, res.l1Misses);
    putU64(out, res.shardCount);
    putU64(out, res.shardRequestsMin);
    putU64(out, res.shardRequestsMax);
    putU64(out, res.healthDegraded);
    putU64(out, res.healthQuarantines);
    putU64(out, res.healthRecoveries);
    putU64(out, res.failovers);
    putU64(out, res.deadlineErrors);
    putU64(out, res.serveOffered);
    putU64(out, res.serveCompleted);
    putU64(out, res.serveSloMet);
    putU64(out, res.serveInFlightPeak);
    putF64(out, res.serveP50Ns);
    putF64(out, res.serveP99Ns);
    putF64(out, res.serveP999Ns);
    putF64(out, res.serveMeanLatencyNs);
    putF64(out, res.serveGoodputPerUs);
    for (const std::uint64_t bucket : res.serveLatencyBuckets)
        putU64(out, bucket);
    putU64(out, res.serveLatencyUnderflow);
    putU64(out, res.serveLatencyOverflow);
    putU64(out, res.kernelEvents);
    return out;
}

bool
deserializeRunResult(const std::uint8_t *data, std::size_t size,
                     RunResult &out)
{
    if (size != runResultWireBytes)
        return false;
    if (getU32(data) != runResultWireMagic ||
        getU32(data + 4) != runResultWireVersion)
        return false;

    const std::uint8_t *p = data + 8;
    RunResult r;
    r.elapsed = Tick(getU64(p)); p += 8;
    r.iterations = getU64(p); p += 8;
    r.workInstrs = getU64(p); p += 8;
    r.accesses = getU64(p); p += 8;
    r.writes = getU64(p); p += 8;
    r.workIpc = getF64(p); p += 8;
    r.accessesPerUs = getF64(p); p += 8;
    r.meanReadLatencyNs = getF64(p); p += 8;
    r.toHostWireGBs = getF64(p); p += 8;
    r.toHostUsefulGBs = getF64(p); p += 8;
    r.toDeviceWireGBs = getF64(p); p += 8;
    r.chipQueuePeak = std::uint32_t(getU64(p)); p += 8;
    r.prefetchesQueued = getU64(p); p += 8;
    r.replayMisses = getU64(p); p += 8;
    r.l1Hits = getU64(p); p += 8;
    r.l1Misses = getU64(p); p += 8;
    r.shardCount = std::uint32_t(getU64(p)); p += 8;
    r.shardRequestsMin = getU64(p); p += 8;
    r.shardRequestsMax = getU64(p); p += 8;
    r.healthDegraded = getU64(p); p += 8;
    r.healthQuarantines = getU64(p); p += 8;
    r.healthRecoveries = getU64(p); p += 8;
    r.failovers = getU64(p); p += 8;
    r.deadlineErrors = getU64(p); p += 8;
    r.serveOffered = getU64(p); p += 8;
    r.serveCompleted = getU64(p); p += 8;
    r.serveSloMet = getU64(p); p += 8;
    r.serveInFlightPeak = getU64(p); p += 8;
    r.serveP50Ns = getF64(p); p += 8;
    r.serveP99Ns = getF64(p); p += 8;
    r.serveP999Ns = getF64(p); p += 8;
    r.serveMeanLatencyNs = getF64(p); p += 8;
    r.serveGoodputPerUs = getF64(p); p += 8;
    for (std::uint64_t &bucket : r.serveLatencyBuckets) {
        bucket = getU64(p);
        p += 8;
    }
    r.serveLatencyUnderflow = getU64(p); p += 8;
    r.serveLatencyOverflow = getU64(p); p += 8;
    r.kernelEvents = getU64(p);
    out = r;
    return true;
}

} // namespace kmu
