#include "core/on_demand_core.hh"

namespace kmu
{

OnDemandCore::OnDemandCore(std::string name, EventQueue &queue, CoreId id,
                           const SystemConfig &config, IssueLine issue,
                           StatGroup *stat_parent)
    : CoreBase(std::move(name), queue, id, config, std::move(issue),
               stat_parent)
{
    kmuAssert(cfg.smtContexts >= 1, "need at least one SMT context");
    ctxs.resize(cfg.smtContexts);
    robShare = std::max<std::uint64_t>(1,
                                       cfg.robSize / cfg.smtContexts);
}

std::uint32_t
OnDemandCore::maxInWindow() const
{
    const std::uint64_t per_iter = cfg.iterationInstrs();
    return std::uint32_t(
        std::max<std::uint64_t>(1, robShare / per_iter));
}

void
OnDemandCore::start()
{
    for (std::uint32_t c = 0; c < ctxs.size(); ++c)
        admitLoop(c);
}

void
OnDemandCore::admitLoop(std::uint32_t ctx_id)
{
    Context &ctx = ctxs[ctx_id];
    if (ctx.issuing)
        return;

    // Serving mode: an iteration only starts once the driver has a
    // request for this SMT context. The wake re-enters this loop on
    // arrival; an already-bound iteration (re-entry) admits at once.
    if (cfg.admitGate &&
        !cfg.admitGate(id(), ctx_id, ctx.nextIter, [this, ctx_id]() {
            eventQueue().scheduleLambda(
                curTick(), [this, ctx_id]() { admitLoop(ctx_id); },
                EventPriority::CpuTick, serveWakeName);
        })) {
        return;
    }

    // Admit the next iteration if its instructions fit in this
    // context's ROB share alongside the in-flight ones; an empty
    // window always admits (the machine makes forward progress even
    // when one iteration exceeds the share).
    const IterationPlan plan = cfg.planFor(id(), ctx_id, ctx.nextIter);
    const std::uint64_t instrs = cfg.iterationInstrs(plan);
    if (!ctx.window.empty() &&
        ctx.instrsInWindow + instrs > robShare) {
        return;
    }

    // Writes are posted stores: they occupy no LFB entry and block
    // nothing; only the read slots contribute outstanding fills.
    std::uint32_t reads = 0;
    for (std::uint32_t slot = 0; slot < plan.batch; ++slot)
        reads += isWriteSlot(ctx_id, ctx.nextIter, slot) ? 0 : 1;

    ctx.issuing = true;
    ctx.instrsInWindow += instrs;
    ctx.window.push_back(IterRec{plan, ctx.nextIter, instrs, reads,
                                 plan.batch - reads});
    issueSlot(ctx_id, ctx.nextIter, 0);
}

void
OnDemandCore::issueSlot(std::uint32_t ctx_id, std::uint64_t iter,
                        std::uint32_t slot)
{
    Context &ctx = ctxs[ctx_id];
    const IterationPlan plan = ctx.window.back().plan;
    if (slot == plan.batch) {
        // All loads of this iteration issued.
        ctx.issuing = false;
        ctx.nextIter++;
        // An all-write iteration has nothing to wait for.
        IterRec &rec = ctx.window.back();
        if (rec.fillsLeft == 0 && !rec.ready) {
            rec.ready = true;
            tryWork();
        }
        admitLoop(ctx_id);
        return;
    }

    if (isWriteSlot(ctx_id, iter, slot)) {
        issueSlot(ctx_id, iter, slot + 1);
        return;
    }

    const Addr line = lineAlign(addrFor(ctx_id, iter, slot));
    if (l1Hit(line)) {
        // Cache hit: satisfied without the LFB or the device.
        IterRec &rec = ctx.window.back();
        kmuAssert(rec.fillsLeft > 0, "hit for a filled iteration");
        rec.fillsLeft--;
        accessesCompleted++;
        issueSlot(ctx_id, iter, slot + 1);
        return;
    }

    const auto result = lineFillBuffers.request(
        line, [this, ctx_id, iter]() { onFill(ctx_id, iter); });

    switch (result) {
      case Lfb::AllocResult::NewEntry:
        issueLine(line, [this, line]() {
            l1Install(line);
            lineFillBuffers.fill(line);
        });
        issueSlot(ctx_id, iter, slot + 1);
        break;
      case Lfb::AllocResult::Merged:
        // Another context already has this line in flight.
        issueSlot(ctx_id, iter, slot + 1);
        break;
      case Lfb::AllocResult::NoEntry:
        // Demand load: stall issue until an entry frees up.
        lineFillBuffers.waitForFree(
            [this, ctx_id, iter, slot]() {
                issueSlot(ctx_id, iter, slot);
            });
        break;
    }
}

void
OnDemandCore::onFill(std::uint32_t ctx_id, std::uint64_t iter)
{
    Context &ctx = ctxs[ctx_id];
    kmuAssert(iter >= ctx.oldestIter &&
              iter - ctx.oldestIter < ctx.window.size(),
              "fill for an iteration outside the window");
    IterRec &rec = ctx.window[std::size_t(iter - ctx.oldestIter)];
    kmuAssert(rec.fillsLeft > 0, "duplicate fill");
    rec.fillsLeft--;
    accessesCompleted++;
    if (rec.fillsLeft == 0) {
        rec.ready = true;
        tryWork();
    }
}

void
OnDemandCore::tryWork()
{
    if (workBusy)
        return;

    // Round-robin among contexts whose oldest iteration is ready:
    // the shared execution resource runs one work block at a time.
    std::uint32_t picked = ~0u;
    for (std::uint32_t i = 0; i < ctxs.size(); ++i) {
        const std::uint32_t c =
            (workRotor + i) % std::uint32_t(ctxs.size());
        if (!ctxs[c].window.empty() && ctxs[c].window.front().ready) {
            picked = c;
            break;
        }
    }
    if (picked == ~0u)
        return;
    workRotor = (picked + 1) % std::uint32_t(ctxs.size());

    workBusy = true;
    Context &ctx = ctxs[picked];
    const IterRec &front = ctx.window.front();
    const Tick extra = Tick(front.writes) * cfg.storeLatency;
    chargeAndThen(cfg.workTicks(front.plan) + extra, [this, picked]() {
        workBusy = false;
        Context &done_ctx = ctxs[picked];
        const IterRec rec = done_ctx.window.front();
        done_ctx.window.pop_front();
        done_ctx.oldestIter++;
        done_ctx.instrsInWindow -= rec.instrs;
        // Emit the iteration's posted writes alongside its work.
        for (std::uint32_t slot = 0; slot < rec.plan.batch; ++slot) {
            if (isWriteSlot(picked, rec.index, slot))
                emitWrite(picked, rec.index, slot);
        }
        retireIteration(rec.plan);
        if (cfg.onRetire)
            cfg.onRetire(id(), picked, rec.index);
        admitLoop(picked);
        tryWork();
    });
}

} // namespace kmu
