/**
 * @file
 * Versioned, bit-exact wire format for RunResult.
 *
 * The parallel sweep runner (src/sweep) ships each RunResult from a
 * forked worker back to the parent over a pipe. Determinism of the
 * regenerated figures hinges on this round trip being *bit-exact*:
 * doubles cross the wire as their IEEE-754 bit patterns, never as
 * decimal text, so a point computed in a worker formats to exactly
 * the same CSV cell as the same point computed in-process.
 *
 * The format is versioned so a stale worker (exec'd from an old
 * binary — impossible with fork, but cheap to guard) or a truncated
 * frame is rejected instead of silently misdecoded.
 */

#ifndef KMU_CORE_RUN_RESULT_WIRE_HH
#define KMU_CORE_RUN_RESULT_WIRE_HH

#include <cstdint>
#include <vector>

#include "core/sim_system.hh"

namespace kmu
{

/** 'K''M''R''R' little-endian. */
constexpr std::uint32_t runResultWireMagic = 0x5252'4d4b;

/** Bump whenever a field is added/removed/reordered. */
constexpr std::uint32_t runResultWireVersion = 6;

/** Serialized size: magic + version + 24 base 8-byte fields + the
 *  serving block (4 counters, 5 doubles, 32-bucket histogram with
 *  under/overflow = 43 more 8-byte fields) + the kernel event
 *  count. The kernel wall time deliberately stays OUT of the wire:
 *  the serialized result is a pure function of the configuration
 *  (the determinism gates byte-compare it across runs), and host
 *  timing never is. Workers report timing in the frame header. */
constexpr std::size_t runResultWireBytes =
    8 + 24 * 8 + (4 + 5 + serveLatencyBucketCount + 2) * 8 + 1 * 8;

/** Encode @p res; always exactly runResultWireBytes long. */
std::vector<std::uint8_t> serializeRunResult(const RunResult &res);

/**
 * Decode @p size bytes at @p data into @p out. Returns false (and
 * leaves @p out untouched) on bad magic, version mismatch, or a
 * short/long buffer.
 */
bool deserializeRunResult(const std::uint8_t *data, std::size_t size,
                          RunResult &out);

} // namespace kmu

#endif // KMU_CORE_RUN_RESULT_WIRE_HH
