#include "core/sim_system.hh"

#include "core/on_demand_core.hh"
#include "core/prefetch_core.hh"
#include "core/sw_queue_core.hh"
#include "trace/occupancy_sampler.hh"
#include "trace/trace.hh"

namespace kmu
{

namespace
{

/** Ring depth for the software queues: must absorb every thread's
 *  maximum batch simultaneously. */
constexpr std::size_t swQueueDepth = 4096;

} // anonymous namespace

SimSystem::SimSystem(SystemConfig config)
    : cfg(std::move(config)), root("system")
{
    kmuAssert(cfg.numCores >= 1, "need at least one core");
    kmuAssert(cfg.threadsPerCore >= 1, "need at least one thread");
    kmuAssert(cfg.batch >= 1 && cfg.batch <= AccessEngine::maxBatch,
              "batch out of range");

    dram = std::make_unique<DramModel>("dram", eq, cfg.dram, &root);
    readLatency = std::make_unique<Average>(
        root, "read_latency_ns", "issue-to-fill read latency");
    readLatencyLog = std::make_unique<LogHistogram>(
        root, "read_latency_log_ns",
        "issue-to-fill read latency, log2 ns buckets", 1.0, 24);

    if (cfg.mechanism == Mechanism::SwQueue) {
        kmuAssert(cfg.backing == Backing::Device,
                  "software queues target the device");
        buildSwQueue();
    } else {
        buildMemoryMapped();
    }
    buildChecker();
}

SimSystem::~SimSystem() = default;

RequestFetcher *
SimSystem::fetcher(std::size_t i)
{
    return i < fetchers.size() ? fetchers[i].get() : nullptr;
}

void
SimSystem::buildMemoryMapped()
{
    const bool to_device = cfg.backing == Backing::Device;
    const bool membus =
        to_device && cfg.attach == DeviceAttach::MemoryBus;
    if (to_device && !membus) {
        link = std::make_unique<PcieLink>("pcie", eq, cfg.pcie, &root);
        chipPcie = std::make_unique<UncoreQueue>(
            "chip_pcie_queue", eq, cfg.chipPcieQueue, &root);
        device = std::make_unique<DeviceEmulator>(
            "device", eq, cfg.device, *link, cfg.numCores, &root);
    }
    if (membus) {
        // Memory-bus attach: the device answers like a slow DIMM
        // behind the chip's deep DRAM-path queue; the configured
        // latency already covers the on-bus round trip.
        chipPcie = std::make_unique<UncoreQueue>(
            "chip_membus_queue", eq, cfg.chipDramQueue, &root);
    }

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        CoreBase::IssueLine issue;
        if (membus) {
            issue = [this](Addr line, std::function<void()> fill) {
                (void)line;
                const Tick issued = eq.curTick();
                chipPcie->acquire([this, issued,
                                   fill = std::move(fill)]() mutable {
                    eq.scheduleLambda(
                        eq.curTick() + cfg.device.latency,
                        [this, issued, fill = std::move(fill)]() {
                            chipPcie->release();
                            sampleReadLatency(
                                ticksToNs(eq.curTick() - issued));
                            fill();
                        },
                        EventPriority::DeviceResponse,
                        "membus.fill");
                });
            };
        } else if (to_device) {
            issue = [this, c](Addr line, std::function<void()> fill) {
                const Tick issued = eq.curTick();
                chipPcie->acquire(
                    [this, c, line, issued,
                     fill = std::move(fill)]() mutable {
                        device->hostRead(
                            c, line,
                            [this, issued,
                             fill = std::move(fill)]() {
                                chipPcie->release();
                                sampleReadLatency(
                                    ticksToNs(eq.curTick() - issued));
                                fill();
                            });
                    });
            };
        } else {
            issue = [this](Addr line, std::function<void()> fill) {
                const Tick issued = eq.curTick();
                dram->access(
                    line,
                    [this, issued, fill = std::move(fill)]() {
                        sampleReadLatency(
                            ticksToNs(eq.curTick() - issued));
                        fill();
                    });
            };
        }

        const std::string name = csprintf("core%u", c);
        if (cfg.mechanism == Mechanism::OnDemand) {
            cores.push_back(std::make_unique<OnDemandCore>(
                name, eq, c, cfg, std::move(issue), &root));
        } else {
            cores.push_back(std::make_unique<PrefetchCore>(
                name, eq, c, cfg, std::move(issue), &root));
        }

        if (to_device && !membus) {
            cores.back()->setWriteHook([this, c](Addr line) {
                device->hostWrite(c, line);
            });
        }
        // Memory-bus-attached and DRAM-backed writes are absorbed by
        // the write buffers / bus posting: no hook needed.
    }
}

void
SimSystem::buildSwQueue()
{
    link = std::make_unique<PcieLink>("pcie", eq, cfg.pcie, &root);

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        queuePairs.push_back(
            std::make_unique<SwQueuePair>(swQueueDepth));
        fetchers.push_back(std::make_unique<RequestFetcher>(
            csprintf("fetcher%u", c), eq, c, cfg.device,
            *queuePairs.back(), *link, cfg.dram.latency,
            [this, c](const CompletionDescriptor &) {
                static_cast<SwQueueCore &>(*cores[c])
                    .onCompletionPosted();
            },
            &root));
    }

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        RequestFetcher *fetch = fetchers[c].get();
        cores.push_back(std::make_unique<SwQueueCore>(
            csprintf("core%u", c), eq, c, cfg, *queuePairs[c],
            [fetch]() { fetch->ringDoorbell(); }, &root));
    }
}

void
SimSystem::buildChecker()
{
    checker = std::make_unique<SimChecker>("checker", eq, tickPerUs,
                                           &root);

    // Global conservation laws that no single transition sees: stat
    // counters must reconcile with the live structure sizes they
    // shadow, and no occupancy may exceed its hardware capacity.
    checker->addCheck("lfb_conservation", [this]() {
        for (auto &core : cores) {
            Lfb &lfb = core->lfb();
            KMU_INVARIANT(lfb.inUse() <= lfb.capacity(),
                          "%s holds %u entries, capacity %u",
                          lfb.name().c_str(), lfb.inUse(),
                          lfb.capacity());
            KMU_MODEL_CHECK(
                lfb.allocs.value() - lfb.fills.value() == lfb.inUse(),
                "%s in-flight %u != allocated %llu - filled %llu",
                lfb.name().c_str(), lfb.inUse(),
                (unsigned long long)lfb.allocs.value(),
                (unsigned long long)lfb.fills.value());
        }
    });
    checker->addCheck("chip_queue_conservation", [this]() {
        if (!chipPcie)
            return;
        KMU_INVARIANT(chipPcie->inUse() <= chipPcie->capacity(),
                      "%s holds %u slots, capacity %u",
                      chipPcie->name().c_str(), chipPcie->inUse(),
                      chipPcie->capacity());
        KMU_MODEL_CHECK(
            chipPcie->entries.value() - chipPcie->totalReleases() ==
                chipPcie->inUse(),
            "%s slots in use %u != granted %llu - released %llu",
            chipPcie->name().c_str(), chipPcie->inUse(),
            (unsigned long long)chipPcie->entries.value(),
            (unsigned long long)chipPcie->totalReleases());
        KMU_MODEL_CHECK(chipPcie->waiting() == 0 || chipPcie->full(),
                        "%zu waiters stalled on a non-full %s",
                        chipPcie->waiting(),
                        chipPcie->name().c_str());
    });
    checker->addCheck("link_goodput", [this]() {
        if (!link)
            return;
        for (LinkDir dir : {LinkDir::ToDevice, LinkDir::ToHost}) {
            KMU_MODEL_CHECK(
                link->usefulBytes(dir) <= link->wireBytes(dir),
                "%s useful bytes %llu exceed wire bytes %llu",
                link->name().c_str(),
                (unsigned long long)link->usefulBytes(dir),
                (unsigned long long)link->wireBytes(dir));
        }
    });
    checker->addCheck("sw_queue_conservation", [this]() {
        for (auto &pair : queuePairs) {
            KMU_MODEL_CHECK(
                pair->requestRing().totalPops() <=
                    pair->requestRing().totalPushes(),
                "request ring popped more than was pushed");
            KMU_MODEL_CHECK(
                pair->completionRing().totalPops() <=
                    pair->completionRing().totalPushes(),
                "completion ring popped more than was pushed");
        }
    });
}

void
SimSystem::sampleReadLatency(double ns)
{
    readLatency->sample(ns);
    readLatencyLog->sample(ns);
}

void
SimSystem::enableTracing(trace::TraceBuffer &buf, Tick samplePeriod)
{
    kmuAssert(!ran, "enable tracing before run()");
    buf.setClock([this] { return eq.curTick(); });

    // Trace-lane layout: one lane per core (LFB, fetcher, and the
    // device's per-core service engine all share it), then dedicated
    // lanes for the shared components behind the cores.
    const std::uint16_t n = std::uint16_t(cores.size());
    const std::uint16_t dramLane = n;
    const std::uint16_t chipLane = std::uint16_t(n + 1);
    const std::uint16_t linkLane = std::uint16_t(n + 2);

    for (std::uint16_t c = 0; c < n; ++c) {
        cores[c]->setTraceTrack(c);
        cores[c]->lfb().setTraceTrack(c);
        buf.registerName(trace::trackNameKey(c),
                         csprintf("core%u", unsigned(c)));
    }
    for (std::size_t c = 0; c < fetchers.size(); ++c)
        fetchers[c]->setTraceTrack(std::uint16_t(c));

    dram->setTraceTrack(dramLane);
    buf.registerName(trace::trackNameKey(dramLane), "dram");
    if (chipPcie) {
        chipPcie->setTraceTrack(chipLane);
        buf.registerName(trace::trackNameKey(chipLane),
                         chipPcie->name());
    }
    if (link) {
        link->setTraceTrack(linkLane);
        buf.registerName(trace::trackNameKey(linkLane),
                         "pcie.to_device");
        buf.registerName(trace::trackNameKey(std::uint16_t(linkLane
                                                           + 1)),
                         "pcie.to_host");
    }

    // Periodic occupancy timeline: per-core LFB and software rings,
    // plus the shared chip-level queue.
    sampler = std::make_unique<trace::OccupancySampler>(eq,
                                                        samplePeriod);
    for (std::uint16_t c = 0; c < n; ++c) {
        Lfb &lfb = cores[c]->lfb();
        sampler->addProbe(csprintf("lfb%u.in_use", unsigned(c)), c,
                          [&lfb] { return lfb.inUse(); });
    }
    for (std::size_t c = 0; c < queuePairs.size(); ++c) {
        SwQueuePair *pair = queuePairs[c].get();
        sampler->addProbe(csprintf("swq%u.requests", unsigned(c)),
                          std::uint16_t(c), [pair] {
                              return std::uint32_t(
                                  pair->pendingRequests());
                          });
        sampler->addProbe(csprintf("swq%u.completions", unsigned(c)),
                          std::uint16_t(c), [pair] {
                              return std::uint32_t(
                                  pair->pendingCompletions());
                          });
    }
    if (chipPcie) {
        sampler->addProbe(chipPcie->name() + ".in_use", chipLane,
                          [this] { return chipPcie->inUse(); });
    }
    sampler->start();
}

RunResult
SimSystem::run()
{
    kmuAssert(!ran, "SimSystem::run is single-shot");
    ran = true;

    checker->start();
    for (auto &core : cores) {
        core->setLatencySampler(
            [this](double ns) { sampleReadLatency(ns); });
        core->start();
    }

    // Warmup window.
    eq.run(cfg.warmup);

    struct Snapshot
    {
        std::uint64_t iters, work, accesses, writes;
    };
    std::vector<Snapshot> snaps;
    snaps.reserve(cores.size());
    for (auto &core : cores) {
        snaps.push_back(Snapshot{core->iterations(), core->workInstrs(),
                                 core->accessesDone(),
                                 core->writesDone()});
    }
    if (link)
        link->resetCounters();

    // Measurement window.
    const Tick end = cfg.warmup + cfg.measure;
    eq.run(end);

    RunResult res;
    res.elapsed = cfg.measure;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        res.iterations += cores[i]->iterations() - snaps[i].iters;
        res.workInstrs += cores[i]->workInstrs() - snaps[i].work;
        res.accesses += cores[i]->accessesDone() - snaps[i].accesses;
        res.writes += cores[i]->writesDone() - snaps[i].writes;
    }

    const double cycles =
        double(res.elapsed) * cfg.coreFreqHz / double(tickPerSec);
    res.workIpc = cycles > 0 ? double(res.workInstrs) / cycles : 0.0;
    res.accessesPerUs =
        double(res.accesses) / ticksToUs(res.elapsed);

    if (link) {
        const double secs = ticksToSec(res.elapsed);
        res.toHostWireGBs =
            double(link->wireBytes(LinkDir::ToHost)) / secs / 1e9;
        res.toHostUsefulGBs =
            double(link->usefulBytes(LinkDir::ToHost)) / secs / 1e9;
        res.toDeviceWireGBs =
            double(link->wireBytes(LinkDir::ToDevice)) / secs / 1e9;
    }
    res.meanReadLatencyNs = readLatency->mean();
    if (chipPcie)
        res.chipQueuePeak = chipPcie->peakOccupancy();
    if (device)
        res.replayMisses = device->replayMisses.value();

    for (auto &core : cores) {
        if (auto *pf = dynamic_cast<PrefetchCore *>(core.get()))
            res.prefetchesQueued += pf->prefetchesQueued.value();
    }
    if (cfg.l1Enabled) {
        for (auto &core : cores) {
            res.l1Hits += core->l1().hits.value();
            res.l1Misses += core->l1().misses.value();
        }
    }
    return res;
}

RunResult
runSystem(const SystemConfig &cfg)
{
    SimSystem system(cfg);
    return system.run();
}

SystemConfig
baselineConfig(const SystemConfig &cfg)
{
    SystemConfig base = cfg;
    base.mechanism = Mechanism::OnDemand;
    base.backing = Backing::Dram;
    base.numCores = 1;
    base.threadsPerCore = 1;
    base.smtContexts = 1; // the paper's hyperthreading-off baseline
    return base;
}

double
normalizedWorkIpc(const RunResult &result, const RunResult &baseline)
{
    kmuAssert(baseline.workIpc > 0.0, "degenerate baseline");
    return result.workIpc / baseline.workIpc;
}

double
normalizedWorkIpc(const SystemConfig &cfg)
{
    return normalizedWorkIpc(runSystem(cfg),
                             runSystem(baselineConfig(cfg)));
}

} // namespace kmu
