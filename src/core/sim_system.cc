#include "core/sim_system.hh"

#include <chrono>

#include <algorithm>

#include "core/on_demand_core.hh"
#include "core/prefetch_core.hh"
#include "core/sw_queue_core.hh"
#include "fault/fault_plan.hh"
#include "serve/serve_driver.hh"
#include "trace/occupancy_sampler.hh"
#include "trace/trace.hh"

namespace kmu
{

static_assert(serveLatencyBucketCount ==
                  serve::ServeDriver::latencyBuckets,
              "RunResult histogram shape must match the driver's");

namespace
{

/** Ring depth for the software queues: must absorb every thread's
 *  maximum batch simultaneously. */
constexpr std::size_t swQueueDepth = 4096;

} // anonymous namespace

SimSystem::SimSystem(SystemConfig config)
    : cfg(std::move(config)), root("system")
{
    kmuAssert(cfg.numCores >= 1, "need at least one core");
    kmuAssert(cfg.threadsPerCore >= 1, "need at least one thread");
    kmuAssert(cfg.batch >= 1 && cfg.batch <= AccessEngine::maxBatch,
              "batch out of range");
    kmuAssert(cfg.topo.shards >= 1 &&
                  cfg.topo.shards <= topo::maxShards,
              "shard count %u out of [1, %u]", cfg.topo.shards,
              topo::maxShards);

    if (cfg.health.mode != health::Mode::Off) {
        kmuAssert(cfg.backing == Backing::Device,
                  "health control plane needs a device to watch");
        kmuAssert(cfg.mechanism == Mechanism::SwQueue ||
                      cfg.attach == DeviceAttach::Pcie,
                  "health control plane is per-shard; the memory-bus "
                  "attach has no shards to fail over");
        healthCtrl = std::make_unique<health::RecoveryController>(
            cfg.health, cfg.topo.shards);
        healthBase.resize(cfg.topo.shards);
        healthPeriod = Tick(cfg.health.epochPolls) * cfg.pollCost;
        kmuAssert(healthPeriod > 0, "health epoch must span time");
    }

    // Executor selection must precede component construction: the
    // shard-bound components take their domain queue by reference.
    buildParallel();

    dram = std::make_unique<DramModel>("dram", eq, cfg.dram, &root);
    readLatency = std::make_unique<Average>(
        root, "read_latency_ns", "issue-to-fill read latency");
    readLatencyLog = std::make_unique<LogHistogram>(
        root, "read_latency_log_ns",
        "issue-to-fill read latency, log2 ns buckets", 1.0, 24);

    // The serving hooks must be installed into cfg before the cores
    // are built: they capture cfg by reference but read the hooks on
    // every iteration, so ordering only matters for the assertions.
    if (cfg.serve.enabled())
        buildServing();

    if (cfg.mechanism == Mechanism::SwQueue) {
        kmuAssert(cfg.backing == Backing::Device,
                  "software queues target the device");
        buildSwQueue();
    } else {
        buildMemoryMapped();
    }
    buildChecker();
}

void
SimSystem::buildParallel()
{
    const ParallelMode mode = cfg.parallel == ParallelMode::Auto
                                  ? defaultParallelMode()
                                  : cfg.parallel;
    if (mode != ParallelMode::Shards)
        return;

    // Eligibility: the shard boundary is the only lookahead boundary
    // the model has, so the executor needs (a) more than one shard,
    // (b) the memory-mapped PCIe device path (software queues and
    // the memory-bus attach schedule host<->device work with no
    // link-latency separation), and (c) none of the serial-only
    // subsystems armed — an installed fault plan draws from shared
    // per-site RNG streams in component order, and the health
    // controller reads shard counters from host events mid-run; both
    // are correct only single-threaded. Ineligible configurations
    // silently run serial: KMU_PARALLEL may only change speed, never
    // output.
    const Tick lookahead =
        topo::lookaheadTicks(cfg.topo, cfg.pcie.propagation);
    if (cfg.topo.shards <= 1 || lookahead == 0 ||
        cfg.mechanism == Mechanism::SwQueue ||
        cfg.backing != Backing::Device ||
        cfg.attach != DeviceAttach::Pcie ||
        cfg.health.mode != health::Mode::Off ||
        fault::plan() != nullptr) {
        return;
    }

    const std::uint32_t threads = cfg.parallelThreads != 0
                                      ? cfg.parallelThreads
                                      : defaultParallelThreads();
    parExec = std::make_unique<ParallelExecutor>(
        eq, cfg.topo.shards, lookahead, threads);
    parWriteDelivers.resize(cfg.topo.shards);
}

std::uint32_t
SimSystem::lanesPerCore() const
{
    return cfg.mechanism == Mechanism::OnDemand ? cfg.smtContexts
                                                : cfg.threadsPerCore;
}

void
SimSystem::buildServing()
{
    kmuAssert(!cfg.plan && !cfg.addressPlan,
              "serving mode owns the iteration and address plans");
    kmuAssert(cfg.writeFraction == 0.0,
              "serving mode models a read-only KV service");
    const std::uint32_t lanes = cfg.numCores * lanesPerCore();
    serving = std::make_unique<serve::ServeDriver>(cfg.serve, eq,
                                                   &root, lanes);
    serving->setMeasureStart(cfg.warmup);

    serve::ServeDriver *sd = serving.get();
    const std::uint32_t lpc = lanesPerCore();
    const IterationPlan request_plan{cfg.serve.valueLines,
                                     cfg.workCount};
    cfg.plan = [request_plan](CoreId, ThreadId, std::uint64_t) {
        return request_plan;
    };
    cfg.addressPlan = [sd, lpc](CoreId c, ThreadId t,
                                std::uint64_t iter,
                                std::uint32_t slot) {
        return sd->addressFor(c * lpc + t, iter, slot);
    };
    cfg.admitGate = [sd, lpc](CoreId c, ThreadId t,
                              std::uint64_t iter,
                              std::function<void()> wake) {
        return sd->admit(c * lpc + t, iter, std::move(wake));
    };
    cfg.onRetire = [sd, lpc](CoreId c, ThreadId t,
                             std::uint64_t iter) {
        sd->retire(c * lpc + t, iter);
    };
}

SimSystem::~SimSystem() = default;

PcieLink *
SimSystem::pcieLink(std::size_t s)
{
    return s < links.size() ? links[s].get() : nullptr;
}

UncoreQueue *
SimSystem::chipQueue(std::size_t s)
{
    return s < chipQueues.size() ? chipQueues[s].get() : nullptr;
}

DeviceEmulator *
SimSystem::deviceEmulator(std::size_t s)
{
    return s < devices.size() ? devices[s].get() : nullptr;
}

RequestFetcher *
SimSystem::fetcher(std::size_t i)
{
    return i < fetchers.size() ? fetchers[i].get() : nullptr;
}

void
SimSystem::buildMemoryMapped()
{
    const bool to_device = cfg.backing == Backing::Device;
    const bool membus =
        to_device && cfg.attach == DeviceAttach::MemoryBus;
    const std::uint32_t shards = cfg.topo.shards;
    if (to_device && !membus) {
        // One link + chip queue + device emulator per shard, built
        // in the single-device order so a shards=1 system registers
        // the exact pre-sharding stat tree.
        for (std::uint32_t s = 0; s < shards; ++s) {
            // Under the parallel executor the link + device live on
            // shard domain 1+s; completions route back to the host
            // queue. Chip queues stay host-side (grants run in the
            // issuing core's event context).
            EventQueue &shard_q =
                parExec ? parExec->domainQueue(1 + s) : eq;
            links.push_back(std::make_unique<PcieLink>(
                topo::shardName("pcie", s, shards), shard_q, cfg.pcie,
                &root));
            links.back()->setFaultShard(s);
            if (parExec)
                links.back()->setHostSideQueue(&eq);
            chipQueues.push_back(std::make_unique<UncoreQueue>(
                topo::shardName("chip_pcie_queue", s, shards), eq,
                topo::chipQueueSlice(cfg.chipPcieQueue, cfg.topo),
                &root));
            chipQueues.back()->setFaultShard(s);
            devices.push_back(std::make_unique<DeviceEmulator>(
                topo::shardName("device", s, shards), shard_q,
                cfg.device, *links.back(), cfg.numCores, &root));
        }
    }
    if (membus) {
        // Memory-bus attach: the device answers like a slow DIMM
        // behind the chip's deep DRAM-path queue; the configured
        // latency already covers the on-bus round trip. The memory
        // interconnect has no per-slot links to multiply, so the
        // attach stays single-shard.
        kmuAssert(shards == 1,
                  "memory-bus attach models a single device");
        chipQueues.push_back(std::make_unique<UncoreQueue>(
            "chip_membus_queue", eq, cfg.chipDramQueue, &root));
    }

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        CoreBase::IssueLine issue;
        if (membus) {
            issue = [this](Addr line, std::function<void()> fill) {
                (void)line;
                const Tick issued = eq.curTick();
                chipQueues[0]->acquire(
                    [this, issued, fill = std::move(fill)]() mutable {
                    eq.scheduleLambda(
                        eq.curTick() + cfg.device.latency,
                        [this, issued, fill = std::move(fill)]() {
                            chipQueues[0]->release();
                            sampleReadLatency(
                                ticksToNs(eq.curTick() - issued));
                            fill();
                        },
                        EventPriority::DeviceResponse,
                        "membus.fill");
                });
            };
        } else if (to_device) {
            issue = [this, c](Addr line, std::function<void()> fill) {
                const Tick issued = eq.curTick();
                const std::uint32_t natural =
                    topo::shardOf(line, cfg.topo);
                const std::uint32_t s =
                    healthCtrl ? healthCtrl->route(
                                     natural, line / cacheLineSize)
                               : natural;
                chipQueues[s]->acquire(
                    [this, c, s, line, issued,
                     fill = std::move(fill)]() mutable {
                        // Grant and fill are both host events, so
                        // this counter replays identically serial
                        // or parallel; it feeds the checker's
                        // pending-work probe (parallel only).
                        if (parExec)
                            ++parReadsInFlight;
                        devices[s]->hostRead(
                            c, line,
                            [this, s, issued,
                             fill = std::move(fill)]() {
                                if (parExec)
                                    --parReadsInFlight;
                                chipQueues[s]->release();
                                sampleReadLatency(
                                    ticksToNs(eq.curTick() - issued));
                                fill();
                            });
                    });
            };
        } else {
            issue = [this](Addr line, std::function<void()> fill) {
                const Tick issued = eq.curTick();
                dram->access(
                    line,
                    [this, issued, fill = std::move(fill)]() {
                        sampleReadLatency(
                            ticksToNs(eq.curTick() - issued));
                        fill();
                    });
            };
        }

        const std::string name = csprintf("core%u", c);
        if (cfg.mechanism == Mechanism::OnDemand) {
            cores.push_back(std::make_unique<OnDemandCore>(
                name, eq, c, cfg, std::move(issue), &root));
        } else {
            cores.push_back(std::make_unique<PrefetchCore>(
                name, eq, c, cfg, std::move(issue), &root));
        }

        if (to_device && !membus) {
            cores.back()->setWriteHook([this, c](Addr line) {
                const std::uint32_t s = topo::shardOf(line, cfg.topo);
                const Tick deliver = devices[s]->hostWrite(c, line);
                // Posted writes leave no host-side completion, so
                // the pending-work probe tracks their absorb ticks
                // instead (per-shard ToDevice delivery is monotone,
                // so each deque stays sorted).
                if (parExec)
                    parWriteDelivers[s].push_back(deliver);
            });
        }
        // Memory-bus-attached and DRAM-backed writes are absorbed by
        // the write buffers / bus posting: no hook needed.
    }
}

void
SimSystem::buildSwQueue()
{
    const std::uint32_t shards = cfg.topo.shards;
    for (std::uint32_t s = 0; s < shards; ++s) {
        links.push_back(std::make_unique<PcieLink>(
            topo::shardName("pcie", s, shards), eq, cfg.pcie, &root));
        links.back()->setFaultShard(s);
    }

    // Each core keeps one queue pair + request fetcher per shard
    // (core-major layout), so a shard's descriptor traffic rides its
    // own link and doorbell register.
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        for (std::uint32_t s = 0; s < shards; ++s) {
            queuePairs.push_back(
                std::make_unique<SwQueuePair>(swQueueDepth));
            fetchers.push_back(std::make_unique<RequestFetcher>(
                topo::shardName(csprintf("fetcher%u", c), s, shards),
                eq, c, cfg.device, *queuePairs.back(), *links[s],
                cfg.dram.latency,
                [this, c](const CompletionDescriptor &) {
                    static_cast<SwQueueCore &>(*cores[c])
                        .onCompletionPosted();
                },
                &root));
            fetchers.back()->setFaultShard(s);
        }
    }

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        std::vector<SwQueuePair *> pairs;
        std::vector<SwQueueCore::RingDoorbell> rings;
        for (std::uint32_t s = 0; s < shards; ++s) {
            pairs.push_back(queuePairs[c * shards + s].get());
            RequestFetcher *fetch = fetchers[c * shards + s].get();
            rings.push_back([fetch]() { fetch->ringDoorbell(); });
        }
        cores.push_back(std::make_unique<SwQueueCore>(
            csprintf("core%u", c), eq, c, cfg, std::move(pairs),
            std::move(rings), &root));
        if (healthCtrl) {
            health::RecoveryController *hc = healthCtrl.get();
            static_cast<SwQueueCore &>(*cores.back())
                .setShardRouter(
                    [hc](std::uint32_t natural, Addr line) {
                        return hc->route(natural,
                                         line / cacheLineSize);
                    });
        }
    }
}

void
SimSystem::buildChecker()
{
    checker = std::make_unique<SimChecker>("checker", eq, tickPerUs,
                                           &root);

    // Global conservation laws that no single transition sees: stat
    // counters must reconcile with the live structure sizes they
    // shadow, and no occupancy may exceed its hardware capacity.
    checker->addCheck("lfb_conservation", [this]() {
        for (auto &core : cores) {
            Lfb &lfb = core->lfb();
            KMU_INVARIANT(lfb.inUse() <= lfb.capacity(),
                          "%s holds %u entries, capacity %u",
                          lfb.name().c_str(), lfb.inUse(),
                          lfb.capacity());
            KMU_MODEL_CHECK(
                lfb.allocs.value() - lfb.fills.value() == lfb.inUse(),
                "%s in-flight %u != allocated %llu - filled %llu",
                lfb.name().c_str(), lfb.inUse(),
                (unsigned long long)lfb.allocs.value(),
                (unsigned long long)lfb.fills.value());
        }
    });
    checker->addCheck("chip_queue_conservation", [this]() {
        for (auto &chip : chipQueues) {
            // The health controller's DEGRADED effect shrinks the
            // slice without evicting holders, so occupancy may
            // transiently exceed the *current* capacity — but never
            // the full configured slice every grant was checked
            // against.
            const std::uint32_t bound =
                healthCtrl ? std::max(chip->capacity(),
                                      topo::chipQueueSlice(
                                          cfg.chipPcieQueue, cfg.topo))
                           : chip->capacity();
            KMU_INVARIANT(chip->inUse() <= bound,
                          "%s holds %u slots, capacity %u",
                          chip->name().c_str(), chip->inUse(),
                          bound);
            KMU_MODEL_CHECK(
                chip->entries.value() - chip->totalReleases() ==
                    chip->inUse(),
                "%s slots in use %u != granted %llu - released %llu",
                chip->name().c_str(), chip->inUse(),
                (unsigned long long)chip->entries.value(),
                (unsigned long long)chip->totalReleases());
            KMU_MODEL_CHECK(chip->waiting() == 0 || chip->full(),
                            "%zu waiters stalled on a non-full %s",
                            chip->waiting(), chip->name().c_str());
        }
    });
    checker->addCheck("link_goodput", [this]() {
        for (auto &lnk : links) {
            // Under the parallel executor the ToHost counters are
            // written by the shard threads mid-window, so the sweep
            // (a host event) validates only the host-written
            // direction; the full both-direction check runs at
            // every epoch barrier instead (registered below). The
            // check itself stays registered either way so the
            // sweeps/checks stat counters match serial exactly.
            if (parExec) {
                KMU_MODEL_CHECK(
                    lnk->usefulBytes(LinkDir::ToDevice) <=
                        lnk->wireBytes(LinkDir::ToDevice),
                    "%s useful bytes %llu exceed wire bytes %llu",
                    lnk->name().c_str(),
                    (unsigned long long)lnk->usefulBytes(
                        LinkDir::ToDevice),
                    (unsigned long long)lnk->wireBytes(
                        LinkDir::ToDevice));
                continue;
            }
            for (LinkDir dir : {LinkDir::ToDevice, LinkDir::ToHost}) {
                KMU_MODEL_CHECK(
                    lnk->usefulBytes(dir) <= lnk->wireBytes(dir),
                    "%s useful bytes %llu exceed wire bytes %llu",
                    lnk->name().c_str(),
                    (unsigned long long)lnk->usefulBytes(dir),
                    (unsigned long long)lnk->wireBytes(dir));
            }
        }
    });
    checker->addCheck("sw_queue_conservation", [this]() {
        for (auto &pair : queuePairs) {
            KMU_MODEL_CHECK(
                pair->requestRing().totalPops() <=
                    pair->requestRing().totalPushes(),
                "request ring popped more than was pushed");
            KMU_MODEL_CHECK(
                pair->completionRing().totalPops() <=
                    pair->completionRing().totalPushes(),
                "completion ring popped more than was pushed");
        }
    });

    if (parExec) {
        // The serial sweep keeps rescheduling while the (global)
        // queue holds events. With the event space partitioned the
        // host queue alone can drain while read/write chains live on
        // shard domains, so the probe reports in-flight work from
        // host-side bookkeeping — a deterministic function of the
        // host event stream, which makes the parallel sweep count
        // equal serial's (DESIGN.md §15).
        checker->setPendingProbe([this](Tick t) {
            for (auto &dq : parWriteDelivers) {
                while (!dq.empty() && dq.front() <= t)
                    dq.pop_front();
            }
            if (parReadsInFlight > 0)
                return true;
            for (const auto &dq : parWriteDelivers) {
                if (!dq.empty())
                    return true;
            }
            return false;
        });

        // The barrier-time counterpart of the sweep's link check:
        // all domains are quiesced here, so both directions'
        // counters are safe (assert-only — no observable output).
        parExec->addBarrierCheck([this]() {
            for (auto &lnk : links) {
                for (LinkDir dir :
                     {LinkDir::ToDevice, LinkDir::ToHost}) {
                    KMU_MODEL_CHECK(
                        lnk->usefulBytes(dir) <= lnk->wireBytes(dir),
                        "%s useful bytes %llu exceed wire bytes %llu",
                        lnk->name().c_str(),
                        (unsigned long long)lnk->usefulBytes(dir),
                        (unsigned long long)lnk->wireBytes(dir));
                }
            }
        });
    }
}

void
SimSystem::healthEpoch()
{
    const std::uint32_t shards = cfg.topo.shards;
    for (std::uint32_t s = 0; s < shards; ++s) {
        // Gather the shard's cumulative signal sources and delta
        // them against the previous epoch. The timing model has no
        // watchdog, so retries/oldestAge stay zero — the stuck
        // detector (queued work, zero completions) is what catches a
        // hung shard here.
        std::uint64_t completions = 0, rejects = 0, depth = 0;
        if (!devices.empty()) {
            completions = devices[s]->responsesSent.value();
            rejects = chipQueues[s]->fullStalls.value();
            depth = chipQueues[s]->inUse() + chipQueues[s]->waiting();
        } else {
            for (CoreId c = 0; c < cfg.numCores; ++c) {
                RequestFetcher *f = fetchers[c * shards + s].get();
                completions += f->responses.value();
                SwQueuePair *pair = queuePairs[c * shards + s].get();
                rejects += pair->requestRing().totalRejects();
                depth += pair->pendingRequests();
            }
        }
        health::ShardSignals sig;
        sig.completions = completions - healthBase[s].completions;
        sig.rejects = rejects - healthBase[s].rejects;
        sig.queueDepth = depth;
        healthBase[s].completions = completions;
        healthBase[s].rejects = rejects;

        const health::ShardState before = healthCtrl->state(s);
        const health::ShardState after =
            healthCtrl->sampleEpoch(s, sig);
        if (after == before)
            continue;
        trace::instant(trace::Kind::HealthState, s, healthLane,
                       std::uint32_t(after));
        // DEGRADED effect on the memory-mapped path: halve the
        // shard's chip-queue slice (shed optimism, keep serving);
        // restore it on full recovery. The software-queue path has
        // no hardware queue to shrink — its effect is routing only.
        if (!chipQueues.empty()) {
            const std::uint32_t full =
                topo::chipQueueSlice(cfg.chipPcieQueue, cfg.topo);
            chipQueues[s]->setCapacity(
                after == health::ShardState::Healthy
                    ? full
                    : std::max<std::uint32_t>(1, full / 2));
        }
    }
    healthCtrl->endEpoch();
    eq.scheduleLambda(eq.curTick() + healthPeriod,
                      [this]() { healthEpoch(); },
                      EventPriority::Default, "health.epoch");
}

void
SimSystem::sampleReadLatency(double ns)
{
    readLatency->sample(ns);
    readLatencyLog->sample(ns);
}

Tick
SimSystem::runTo(Tick limit)
{
    return parExec ? parExec->run(limit) : eq.run(limit);
}

void
SimSystem::enableTracing(trace::TraceBuffer &buf, Tick samplePeriod)
{
    kmuAssert(!ran, "enable tracing before run()");
    // Trace sinks are single-threaded and shard components emit
    // records from worker threads; callers that trace must construct
    // the system with parallel == Off (tools/kmu_sim does).
    kmuAssert(!parExec,
              "tracing requires the serial executor; construct with "
              "SystemConfig::parallel = ParallelMode::Off");
    buf.setClock([this] { return eq.curTick(); });

    // Trace-lane layout: one lane per core (LFB, shard-0 fetcher,
    // and shard 0's per-core device service engine share it), then a
    // block of three lanes per shard for the shared components (chip
    // queue, link to-device, link to-host). With one shard this is
    // the exact pre-sharding layout; extra shards append their lane
    // blocks after shard 0's, and their per-core device/fetcher
    // spans move to dedicated lane blocks after the link lanes so
    // span ids never collide on a lane.
    const std::uint16_t n = std::uint16_t(cores.size());
    const std::uint32_t shards = cfg.topo.shards;
    const std::uint16_t dramLane = n;
    const auto chipLaneOf = [n](std::uint32_t s) {
        return std::uint16_t(n + 1 + 3 * s);
    };
    const auto linkLaneOf = [n](std::uint32_t s) {
        return std::uint16_t(n + 2 + 3 * s);
    };
    // First lane of shard s's per-core block (shards > 1 only).
    const auto deviceLaneOf = [n, shards](std::uint32_t s) {
        return std::uint16_t(n + 1 + 3 * shards + s * n);
    };

    for (std::uint16_t c = 0; c < n; ++c) {
        cores[c]->setTraceTrack(c);
        cores[c]->lfb().setTraceTrack(c);
        buf.registerName(trace::trackNameKey(c),
                         csprintf("core%u", unsigned(c)));
    }
    for (std::size_t i = 0; i < fetchers.size(); ++i) {
        const auto c = std::uint32_t(i / shards);
        const auto s = std::uint32_t(i % shards);
        const std::uint16_t lane =
            shards <= 1 ? std::uint16_t(c)
                        : std::uint16_t(deviceLaneOf(s) + c);
        fetchers[i]->setTraceTrack(lane);
        if (shards > 1)
            buf.registerName(trace::trackNameKey(lane),
                             fetchers[i]->name());
    }
    for (std::size_t s = 0; s < devices.size(); ++s) {
        if (shards <= 1)
            break; // device spans share the core lanes
        devices[s]->setTraceLaneBase(deviceLaneOf(std::uint32_t(s)));
        for (std::uint16_t c = 0; c < n; ++c) {
            const auto lane = std::uint16_t(
                deviceLaneOf(std::uint32_t(s)) + c);
            buf.registerName(trace::trackNameKey(lane),
                             csprintf("%s.core%u",
                                      devices[s]->name().c_str(),
                                      unsigned(c)));
        }
    }

    dram->setTraceTrack(dramLane);
    buf.registerName(trace::trackNameKey(dramLane), "dram");
    for (std::size_t s = 0; s < chipQueues.size(); ++s) {
        const std::uint16_t lane = chipLaneOf(std::uint32_t(s));
        chipQueues[s]->setTraceTrack(lane);
        buf.registerName(trace::trackNameKey(lane),
                         chipQueues[s]->name());
    }
    for (std::size_t s = 0; s < links.size(); ++s) {
        const std::uint16_t lane = linkLaneOf(std::uint32_t(s));
        links[s]->setTraceTrack(lane);
        const std::string base =
            topo::shardName("pcie", std::uint32_t(s), shards);
        buf.registerName(trace::trackNameKey(lane),
                         base + ".to_device");
        buf.registerName(trace::trackNameKey(std::uint16_t(lane + 1)),
                         base + ".to_host");
    }

    // HealthState instants get their own lane after every component
    // block (only ever allocated when the controller exists, so the
    // health-off lane layout is untouched).
    if (healthCtrl) {
        healthLane = std::uint16_t(n + 1 + 3 * shards +
                                   (shards > 1 ? shards * n : 0));
        buf.registerName(trace::trackNameKey(healthLane), "health");
    }

    // Request spans get a lane of their own after everything else
    // (allocated only in serving mode, so the closed-loop lane
    // layout is untouched).
    if (serving) {
        const auto serveLane = std::uint16_t(
            n + 1 + 3 * shards + (shards > 1 ? shards * n : 0) +
            (healthCtrl ? 1 : 0));
        serving->setTraceLane(serveLane);
        buf.registerName(trace::trackNameKey(serveLane), "serve");
    }

    // Periodic occupancy timeline: per-core LFB and software rings,
    // plus each shard's chip-level queue.
    sampler = std::make_unique<trace::OccupancySampler>(eq,
                                                        samplePeriod);
    for (std::uint16_t c = 0; c < n; ++c) {
        Lfb &lfb = cores[c]->lfb();
        sampler->addProbe(csprintf("lfb%u.in_use", unsigned(c)), c,
                          [&lfb] { return lfb.inUse(); });
    }
    for (std::size_t i = 0; i < queuePairs.size(); ++i) {
        const auto c = std::uint32_t(i / shards);
        const auto s = std::uint32_t(i % shards);
        const std::string base = topo::shardName(
            csprintf("swq%u", c), s, shards);
        SwQueuePair *pair = queuePairs[i].get();
        sampler->addProbe(base + ".requests", std::uint16_t(c),
                          [pair] {
                              return std::uint32_t(
                                  pair->pendingRequests());
                          });
        sampler->addProbe(base + ".completions", std::uint16_t(c),
                          [pair] {
                              return std::uint32_t(
                                  pair->pendingCompletions());
                          });
    }
    for (std::size_t s = 0; s < chipQueues.size(); ++s) {
        UncoreQueue *chip = chipQueues[s].get();
        sampler->addProbe(chip->name() + ".in_use",
                          chipLaneOf(std::uint32_t(s)),
                          [chip] { return chip->inUse(); });
    }
    sampler->start();
}

RunResult
SimSystem::run()
{
    kmuAssert(!ran, "SimSystem::run is single-shot");
    ran = true;

    checker->start();
    if (healthCtrl) {
        eq.scheduleLambda(healthPeriod, [this]() { healthEpoch(); },
                          EventPriority::Default, "health.epoch");
    }
    if (serving)
        serving->start();
    for (auto &core : cores) {
        core->setLatencySampler(
            [this](double ns) { sampleReadLatency(ns); });
        core->start();
    }

    // Warmup window (kernel-timed along with the measurement
    // window: the events/sec self-measurement covers every event
    // this run services). The wall-clock read is measurement-only:
    // it feeds the bench trajectory, never the model, a CSV, or the
    // serialized RunResult.
    // kmu-analyze: allow(wall-clock)
    const auto kernel0 = std::chrono::steady_clock::now();
    runTo(cfg.warmup);

    struct Snapshot
    {
        std::uint64_t iters, work, accesses, writes;
    };
    std::vector<Snapshot> snaps;
    snaps.reserve(cores.size());
    for (auto &core : cores) {
        snaps.push_back(Snapshot{core->iterations(), core->workInstrs(),
                                 core->accessesDone(),
                                 core->writesDone()});
    }
    for (auto &lnk : links)
        lnk->resetCounters();

    // Measurement window.
    const Tick end = cfg.warmup + cfg.measure;
    runTo(end);
    // kmu-analyze: allow(wall-clock)
    const auto kernel1 = std::chrono::steady_clock::now();
    const double kernelSecs =
        std::chrono::duration<double>(kernel1 - kernel0).count();

    RunResult res;
    res.elapsed = cfg.measure;
    res.kernelEvents = totalServiced();
    res.kernelWallSeconds = kernelSecs;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        res.iterations += cores[i]->iterations() - snaps[i].iters;
        res.workInstrs += cores[i]->workInstrs() - snaps[i].work;
        res.accesses += cores[i]->accessesDone() - snaps[i].accesses;
        res.writes += cores[i]->writesDone() - snaps[i].writes;
    }

    const double cycles =
        double(res.elapsed) * cfg.coreFreqHz / double(tickPerSec);
    res.workIpc = cycles > 0 ? double(res.workInstrs) / cycles : 0.0;
    res.accessesPerUs =
        double(res.accesses) / ticksToUs(res.elapsed);

    if (!links.empty()) {
        const double secs = ticksToSec(res.elapsed);
        std::uint64_t to_host_wire = 0, to_host_useful = 0,
                      to_device_wire = 0;
        for (auto &lnk : links) {
            to_host_wire += lnk->wireBytes(LinkDir::ToHost);
            to_host_useful += lnk->usefulBytes(LinkDir::ToHost);
            to_device_wire += lnk->wireBytes(LinkDir::ToDevice);
        }
        res.toHostWireGBs = double(to_host_wire) / secs / 1e9;
        res.toHostUsefulGBs = double(to_host_useful) / secs / 1e9;
        res.toDeviceWireGBs = double(to_device_wire) / secs / 1e9;
    }
    res.meanReadLatencyNs = readLatency->mean();
    for (auto &chip : chipQueues)
        res.chipQueuePeak =
            std::max(res.chipQueuePeak, chip->peakOccupancy());
    for (auto &dev : devices)
        res.replayMisses += dev->replayMisses.value();

    // Per-shard request extremes (device side, warmup included):
    // equal min/max means the interleave balanced the traffic.
    res.shardCount = cfg.topo.shards;
    if (!devices.empty() || !fetchers.empty()) {
        const std::uint32_t shards = cfg.topo.shards;
        for (std::uint32_t s = 0; s < shards; ++s) {
            std::uint64_t reqs = 0;
            if (!devices.empty()) {
                reqs = devices[s]->requests.value();
            } else {
                for (CoreId c = 0; c < cfg.numCores; ++c)
                    reqs += fetchers[c * shards + s]
                                ->responses.value();
            }
            res.shardRequestsMin =
                s == 0 ? reqs : std::min(res.shardRequestsMin, reqs);
            res.shardRequestsMax =
                std::max(res.shardRequestsMax, reqs);
        }
    }

    if (healthCtrl) {
        const health::RecoveryController::Counters &hc =
            healthCtrl->counters();
        res.healthDegraded = hc.degradations;
        res.healthQuarantines = hc.quarantines;
        res.healthRecoveries = hc.recoveries;
        res.failovers = hc.failovers;
        // deadlineErrors stays 0: per-request deadlines are the
        // real-time engine's effect (see RunResult).
    }

    if (serving) {
        res.serveOffered = serving->offered();
        res.serveCompleted = serving->completed();
        res.serveSloMet = serving->sloMet();
        res.serveInFlightPeak = serving->inFlightPeak();
        const LogHistogram &lat = serving->latencyLog();
        res.serveP50Ns = lat.quantile(0.50);
        res.serveP99Ns = lat.quantile(0.99);
        res.serveP999Ns = lat.quantile(0.999);
        res.serveMeanLatencyNs = lat.mean();
        res.serveGoodputPerUs =
            double(res.serveSloMet) / ticksToUs(res.elapsed);
        for (std::size_t i = 0; i < serveLatencyBucketCount; ++i)
            res.serveLatencyBuckets[i] = lat.bucketCount(i);
        res.serveLatencyUnderflow = lat.underflow();
        res.serveLatencyOverflow = lat.overflow();
    }

    for (auto &core : cores) {
        if (auto *pf = dynamic_cast<PrefetchCore *>(core.get()))
            res.prefetchesQueued += pf->prefetchesQueued.value();
    }
    if (cfg.l1Enabled) {
        for (auto &core : cores) {
            res.l1Hits += core->l1().hits.value();
            res.l1Misses += core->l1().misses.value();
        }
    }
    return res;
}

RunResult
runSystem(const SystemConfig &cfg)
{
    SimSystem system(cfg);
    return system.run();
}

SystemConfig
baselineConfig(const SystemConfig &cfg)
{
    SystemConfig base = cfg;
    base.mechanism = Mechanism::OnDemand;
    base.backing = Backing::Dram;
    base.numCores = 1;
    base.threadsPerCore = 1;
    base.smtContexts = 1; // the paper's hyperthreading-off baseline
    base.topo = topo::TopologyConfig{}; // no device, no shards
    // The normalization baseline is always the closed-loop replay:
    // serving measures latency against a load, not peak IPC.
    base.serve = serve::ServeConfig{};
    base.admitGate = nullptr;
    base.onRetire = nullptr;
    return base;
}

double
normalizedWorkIpc(const RunResult &result, const RunResult &baseline)
{
    kmuAssert(baseline.workIpc > 0.0, "degenerate baseline");
    return result.workIpc / baseline.workIpc;
}

double
normalizedWorkIpc(const SystemConfig &cfg)
{
    return normalizedWorkIpc(runSystem(cfg),
                             runSystem(baselineConfig(cfg)));
}

} // namespace kmu
