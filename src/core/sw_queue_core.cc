#include "core/sw_queue_core.hh"

#include "check/invariant.hh"
#include "common/thread_annotations.hh"

namespace kmu
{

SwQueueCore::SwQueueCore(std::string name, EventQueue &queue, CoreId id,
                         const SystemConfig &config,
                         std::vector<SwQueuePair *> queue_pairs,
                         std::vector<RingDoorbell> rings,
                         StatGroup *stat_parent)
    : CoreBase(std::move(name), queue, id, config,
               IssueLine{}, // software queues bypass the LFB path
               stat_parent),
      submits(stats(), "submits", "request descriptors enqueued"),
      doorbellsRung(stats(), "doorbells_rung",
                    "MMIO doorbells performed (flag observed set)"),
      pollPasses(stats(), "poll_passes",
                 "completion-queue poll passes"),
      completionsHandled(stats(), "completions_handled",
                         "completion records reaped"),
      idleWaits(stats(), "idle_waits",
                "times the scheduler ran out of ready threads and "
                "completions alike"),
      queues(std::move(queue_pairs)), doorbells(std::move(rings))
{
    kmuAssert(!queues.empty() && queues.size() == doorbells.size(),
              "need one queue pair and one doorbell per shard");
    kmuAssert(queues.size() <= 64, "shard count exceeds ring mask");
    threads.resize(cfg.threadsPerCore);
}

void
SwQueueCore::start()
{
    for (ThreadId tid = 0; tid < threads.size(); ++tid)
        readyQueue.push_back(tid);
    coreLoop();
}

void
SwQueueCore::coreLoop()
{
    if (!readyQueue.empty()) {
        const ThreadId tid = readyQueue.front();
        readyQueue.pop_front();
        chargeAndThen(cfg.ctxSwitchCost,
                      [this, tid]() { visitThread(tid); });
        return;
    }
    pollLoop();
}

void
SwQueueCore::visitThread(ThreadId tid)
{
    UThread &t = threads[tid];
    if (!t.started) {
        t.started = true;
        submitPhase(tid);
        return;
    }
    if (t.parkedAtSubmit) {
        // Serving mode: the thread parked in submitPhase waiting for
        // an arrival and was re-queued by onRequestReady — there are
        // no responses to consume, go straight back to submission.
        t.parkedAtSubmit = false;
        submitPhase(tid);
        return;
    }

    // Consume the read responses (first touch of each DMA-written
    // buffer) and run the dependent work block; posted writes left
    // nothing to consume.
    const Tick consume = Tick(t.reads) * cfg.responseReadCost;
    const Tick work = cfg.workTicks(t.plan);
    chargeAndThen(consume + work, [this, tid]() {
        retireIteration(threads[tid].plan);
        if (cfg.onRetire)
            cfg.onRetire(id(), tid, threads[tid].iter);
        threads[tid].iter++;
        submitPhase(tid);
    });
}

void
SwQueueCore::submitPhase(ThreadId tid)
{
    UThread &t0 = threads[tid];
    // Serving mode: only submit once a request is bound to this
    // thread. On failure the thread parks off the ready queue; the
    // wake re-queues it and the scheduler keeps running the rest.
    if (cfg.admitGate &&
        !cfg.admitGate(id(), tid, t0.iter, [this, tid]() {
            onRequestReady(tid);
        })) {
        t0.parkedAtSubmit = true;
        coreLoop();
        return;
    }
    t0.plan = cfg.planFor(id(), tid, t0.iter);
    kmuAssert(t0.plan.batch >= 1 &&
              t0.plan.batch <= AccessEngine::maxBatch,
              "bad plan batch %u", t0.plan.batch);
    const Tick enqueue = Tick(t0.plan.batch) * cfg.qEnqueueCost;
    chargeAndThen(enqueue, [this, tid]() {
        UThread &t = threads[tid];
        std::uint32_t reads = 0;
        Tick staging_cost = 0;
        std::uint64_t touched = 0; //!< shards that got a descriptor
        for (std::uint32_t slot = 0; slot < t.plan.batch; ++slot) {
            const Addr line = lineAlign(addrFor(tid, t.iter, slot));
            std::uint32_t shard = topo::shardOf(line, cfg.topo);
            if (router)
                shard = router(shard, line);
            RequestDescriptor desc;
            if (isWriteSlot(tid, t.iter, slot)) {
                // Posted write: stage the line, submit, don't wait.
                desc = RequestDescriptor::write(
                    line, topo::taggedShard(encodeTag(tid, slot) | 1,
                                            shard));
                staging_cost += cfg.storeLatency;
                writesPosted++;
                accessesCompleted++;
            } else {
                desc = RequestDescriptor::read(
                    line, topo::taggedShard(encodeTag(tid, slot),
                                            shard));
                submitTicks[desc.hostAddr] = curTick();
                reads++;
            }
            SwQueuePair &qp = *queues[shard];
            RoleGuard host(qp.hostRole); // the modeled core is host
            const bool ok = qp.submit(desc);
            kmuAssert(ok, "request ring overflow: deepen queueDepth");
            ++submits;
            touched |= std::uint64_t(1) << shard;
        }
        t.reads = reads;
        t.pendingFills = reads;
        if (reads == 0) {
            // All-write iteration: nothing to wait for; the thread
            // goes straight back on the ready queue.
            readyQueue.push_back(tid);
        }
        // Staging the write payloads costs core time; doorbells add
        // the MMIO cost per shard whose flag protocol demands one.
        Tick post_cost = staging_cost;
        std::uint64_t ring = 0;
        if (!cfg.device.doorbellFlag) {
            // Ablation: no flag protocol — every submission batch
            // pays the MMIO doorbell on every shard it touched.
            ring = touched;
        } else {
            for (std::uint32_t s = 0; s < queues.size(); ++s) {
                SwQueuePair &qp = *queues[s];
                RoleGuard host(qp.hostRole);
                if (qp.consumeDoorbellRequest())
                    ring |= std::uint64_t(1) << s;
            }
        }
        const auto rings =
            std::uint32_t(__builtin_popcountll(ring));
        if (rings > 0) {
            doorbellsRung += rings;
            post_cost += Tick(rings) * cfg.doorbellCost;
        }
        if (post_cost == 0) {
            coreLoop();
            return;
        }
        chargeAndThen(post_cost, [this, ring]() {
            for (std::uint32_t s = 0; s < doorbells.size(); ++s) {
                if ((ring >> s & 1) != 0)
                    doorbells[s]();
            }
            coreLoop();
        });
    });
}

void
SwQueueCore::pollLoop()
{
    ++pollPasses;
    chargeAndThen(Tick(queues.size()) * cfg.pollCost, [this]() {
        std::uint32_t reaped = 0;
        CompletionDescriptor comp;
        for (std::uint32_t s = 0; s < queues.size(); ++s) {
            SwQueuePair &qp = *queues[s];
            RoleGuard host(qp.hostRole);
            while (qp.reapCompletion(comp)) {
                KMU_INVARIANT(topo::shardTag(comp.hostAddr) == s,
                              "%s reaped a shard-%u completion from "
                              "shard %u's queue", name().c_str(),
                              topo::shardTag(comp.hostAddr), s);
                ++completionsHandled;
                reaped++;
                if (isWriteTag(comp.hostAddr)) {
                    // Posted-write completion: bookkeeping only.
                    continue;
                }
                const ThreadId tid = decodeThread(comp.hostAddr);
                kmuAssert(tid < threads.size(),
                          "completion for unknown thread %u", tid);
                UThread &t = threads[tid];
                kmuAssert(t.pendingFills > 0, "unexpected completion");
                auto sub = submitTicks.find(comp.hostAddr);
                if (sub != submitTicks.end()) {
                    if (sampleLatency)
                        sampleLatency(
                            ticksToNs(curTick() - sub->second));
                    submitTicks.erase(sub);
                }
                t.pendingFills--;
                accessesCompleted++;
                if (t.pendingFills == 0)
                    readyQueue.push_back(tid);
            }
        }

        if (reaped > 0) {
            chargeAndThen(Tick(reaped) * cfg.completionHandleCost,
                          [this]() { coreLoop(); });
            return;
        }

        // A request may have arrived for a parked thread during the
        // poll charge (serving mode only — closed-loop threads can't
        // become ready without a reaped completion): run it rather
        // than sleeping with work queued.
        if (!readyQueue.empty()) {
            coreLoop();
            return;
        }

        // Nothing arrived: sleep until the device posts a completion.
        ++idleWaits;
        idleWaiting = true;
    });
}

void
SwQueueCore::onRequestReady(ThreadId tid)
{
    readyQueue.push_back(tid);
    if (!idleWaiting)
        return; // the running scheduler will reach it
    idleWaiting = false;
    eventQueue().scheduleLambda(curTick(), [this]() { coreLoop(); },
                                EventPriority::CpuTick,
                                serveWakeName);
}

void
SwQueueCore::onCompletionPosted()
{
    if (!idleWaiting)
        return;
    idleWaiting = false;
    // Wake the scheduler; the next poll pass reaps the record.
    eventQueue().scheduleLambda(curTick(), [this]() { pollLoop(); },
                                EventPriority::CpuTick,
                                wakeName);
}

} // namespace kmu
