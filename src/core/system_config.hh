/**
 * @file
 * All knobs of the timing model, with defaults calibrated to the
 * paper's platform (Xeon E5-2670v3 host, PCIe Gen2 x8 FPGA device).
 *
 * Calibration notes (see EXPERIMENTS.md for the derivation):
 *  - core: 2.5 GHz, 4-wide, ROB 192, work IPC ~1.4 (the paper's
 *    dependent arithmetic loop);
 *  - LFB: 10 per core; chip-level PCIe-path queue: 14 (measured by
 *    the paper); DRAM-path queue: 48;
 *  - context switch: 50 ns (paper: 20-50 ns after optimization);
 *  - software-queue per-request costs dominate that mechanism's
 *    ~50 % peak (paper Fig. 7/9).
 */

#ifndef KMU_CORE_SYSTEM_CONFIG_HH
#define KMU_CORE_SYSTEM_CONFIG_HH

#include <cstdint>
#include <functional>

#include "access/access_engine.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "device/device_params.hh"
#include "health/health.hh"
#include "mem/cache.hh"
#include "mem/dram_model.hh"
#include "mem/pcie_link.hh"
#include "serve/serve_config.hh"
#include "sim/parallel.hh"
#include "topo/topology.hh"

namespace kmu
{

/** Where the workload's data structure lives. */
enum class Backing
{
    Dram,  //!< baseline: data in host DRAM
    Device //!< data on the microsecond-latency device
};

/**
 * Where the device attaches (memory-mapped mechanisms only).
 *
 * The paper's implication: "shared hardware queues on the DRAM
 * access path are larger than on the PCIe path. Therefore,
 * integrating microsecond-latency devices on the memory
 * interconnect ... may be a step in the right direction."
 * MemoryBus models exactly that: the device sits behind the deep
 * DRAM-path queue (48 entries) with no PCIe TLP overheads; QPI/DDR
 * transport time is folded into the configured device latency.
 */
enum class DeviceAttach
{
    Pcie,     //!< behind the 14-entry chip queue and the TLP link
    MemoryBus //!< behind the 48-entry DRAM-path queue
};

/** Shape of one microbenchmark iteration. */
struct IterationPlan
{
    std::uint32_t batch;     //!< independent reads issued together
    std::uint32_t work;      //!< work instructions per read
};

struct SystemConfig
{
    /** @{ Topology. */
    std::uint32_t numCores = 1;
    std::uint32_t threadsPerCore = 1;

    /**
     * Device-side topology: how many device shards the system
     * instantiates and how host lines interleave across them. The
     * default (one shard) reproduces the paper's single-device
     * platform exactly. See src/topo/topology.hh.
     */
    topo::TopologyConfig topo;

    /**
     * Health-driven recovery control plane (src/health). Off by
     * default, which keeps every figure byte-identical to the
     * pre-health model: with mode == Off the system constructs no
     * controller and takes no health branches. In the timing model
     * the DEGRADED effect shrinks the shard's chip-queue slice and
     * QUARANTINED re-routes requests to sibling shards; per-request
     * deadlines (Full mode's engine-level effect) apply to the
     * real-time runtime only.
     */
    health::Config health;

    /**
     * Conservative parallel execution across shard domains
     * (sim/parallel.hh). Auto follows the KMU_PARALLEL environment
     * knob; Shards requests the shard-domain executor, Off forces
     * the serial kernel. The request only takes effect when the
     * configuration is eligible — multi-shard, device-backed,
     * memory-mapped PCIe, no fault plan, no health controller, no
     * tracing — and is silently ignored otherwise, so a process-wide
     * KMU_PARALLEL=shards never changes what a run computes, only
     * how fast it computes it (output stays byte-identical either
     * way).
     */
    ParallelMode parallel = ParallelMode::Auto;

    /**
     * OS threads for the parallel executor, caller included; 0 (the
     * default) resolves KMU_PARALLEL_THREADS, and failing that one
     * thread per domain. 1 runs the executor's epoch machinery
     * sequentially on the calling thread (same output, no
     * concurrency — useful for differential testing).
     */
    std::uint32_t parallelThreads = 0;
    /** @} */

    /** @{ Core microarchitecture. */
    double coreFreqHz = 2.5e9;
    std::uint32_t robSize = 192;

    /**
     * Hardware SMT contexts per core, used by the on-demand model
     * only (the paper's Section III: SMT lets a core progress in one
     * context while another blocks on a long-latency access, but
     * commodity parts offer just two contexts). The ROB partitions
     * evenly among active contexts. The paper's evaluation disables
     * hyperthreading, so the default is 1.
     */
    std::uint32_t smtContexts = 1;
    double workIpc = 1.4;          //!< dependent arithmetic chain
    std::uint32_t loopOverheadInstrs = 8;
    Tick loadHitLatency = picoseconds(1200);    //!< L1 hit
    Tick prefetchIssueLatency = picoseconds(800);
    /** @} */

    /** @{ Hardware queues (the paper's bottlenecks). */
    std::uint32_t lfbPerCore = 10;
    std::uint32_t chipPcieQueue = 14;
    std::uint32_t chipDramQueue = 48;
    /** @} */

    /** Device attach point (see DeviceAttach). */
    DeviceAttach attach = DeviceAttach::Pcie;

    /**
     * Model the L1 cache in front of the LFBs (memory-mapped
     * mechanisms). Off by default: the paper's microbenchmark
     * touches every line exactly once, so the figures are
     * cache-free by construction. Enable it together with an
     * addressPlan that has temporal locality (e.g. replayed
     * application address traces) — hits skip the device entirely,
     * which is also what produces the replay window's "skipped"
     * entries on the device side.
     */
    bool l1Enabled = false;
    CacheParams l1;

    /** @{ Memory and interconnect. */
    DramParams dram;
    PcieLinkParams pcie;
    DeviceParams device;
    /** @} */

    /** @{ User-level threading library. */
    Tick ctxSwitchCost = nanoseconds(50);
    /** @} */

    /** @{ Software-managed queue costs (host side). */
    Tick qEnqueueCost = nanoseconds(45);   //!< build+store descriptor
    Tick doorbellCost = nanoseconds(100);  //!< MMIO write, when needed
    Tick pollCost = nanoseconds(15);       //!< one empty CQ check
    Tick completionHandleCost = nanoseconds(30); //!< per reaped entry
    Tick responseReadCost = nanoseconds(60); //!< first touch of the
                                             //!< DMA-written buffer
    /** @} */

    /** @{ Workload (the paper's microbenchmark). */
    Mechanism mechanism = Mechanism::Prefetch;
    Backing backing = Backing::Device;
    std::uint32_t workCount = 250;  //!< work instrs per device access
    std::uint32_t batch = 1;        //!< reads per iteration (MLP)

    /**
     * Fraction of accesses that are line writes (0.0 = the paper's
     * read-only study; >0 exercises its future-work write path).
     * Writes are posted: memory-mapped stores retire from the store
     * buffer without blocking, and software-queue writes submit a
     * write descriptor without waiting for its completion.
     */
    double writeFraction = 0.0;

    /** Core-side cost of one posted line store. */
    Tick storeLatency = picoseconds(800);

    /**
     * Optional per-iteration plan override; lets application traces
     * (Fig. 10) drive the cores with varying batch sizes and work
     * counts. When unset, every iteration is {batch, workCount}.
     */
    std::function<IterationPlan(CoreId, ThreadId, std::uint64_t)> plan;

    /**
     * Optional address override: the line address each access
     * touches. When unset, every access targets a globally unique
     * line (no locality, as the paper's microbenchmark). Combine
     * with l1Enabled to model workloads with temporal locality.
     */
    std::function<Addr(CoreId, ThreadId, std::uint64_t iter,
                       std::uint32_t slot)>
        addressPlan;
    /** @} */

    /** @{ Open-loop serving mode (src/serve).
     *
     * With serve.arrival == Off (the default) the hooks below stay
     * unset and every closed-loop path is untouched. When enabled,
     * SimSystem constructs a ServeDriver and installs all four of
     * plan/addressPlan/admitGate/onRetire from it — they are not for
     * users to set directly in serving mode.
     */
    serve::ServeConfig serve;

    /**
     * Admission gate, consulted before a core starts iteration
     * @p iter of a thread/context. Returning true binds a request
     * to the (core, thread) lane (idempotent for an already-bound
     * iteration). Returning false means no request has arrived: the
     * lane parks and @p wake re-enters its admission path later.
     */
    std::function<bool(CoreId, ThreadId, std::uint64_t iter,
                       std::function<void()> wake)>
        admitGate;

    /** Completion hook: iteration @p iter of the lane retired. */
    std::function<void(CoreId, ThreadId, std::uint64_t iter)> onRetire;
    /** @} */

    /** @{ Measurement window. */
    Tick warmup = microseconds(60);
    Tick measure = microseconds(600);
    /** @} */

    /** Ticks to execute @p instrs work instructions at workIpc. */
    Tick
    workTicks(std::uint64_t instrs) const
    {
        const double cycles = double(instrs) / workIpc;
        return Tick(cycles * 1e12 / coreFreqHz);
    }

    /** Resolve the plan for one iteration. */
    IterationPlan
    planFor(CoreId core, ThreadId thread, std::uint64_t iter) const
    {
        if (plan)
            return plan(core, thread, iter);
        return IterationPlan{batch, workCount};
    }

    /** Instructions one iteration of @p p occupies in the ROB. */
    std::uint64_t
    iterationInstrs(const IterationPlan &p) const
    {
        return std::uint64_t(p.work) * p.batch + loopOverheadInstrs +
               2 * p.batch; // load + address-generation per access
    }

    /** Instructions per iteration of the default plan. */
    std::uint64_t
    iterationInstrs() const
    {
        return iterationInstrs(IterationPlan{batch, workCount});
    }

    /** Core time of the work portion of @p p. */
    Tick
    workTicks(const IterationPlan &p) const
    {
        return workTicks(std::uint64_t(p.work) * p.batch +
                         loopOverheadInstrs);
    }
};

} // namespace kmu

#endif // KMU_CORE_SYSTEM_CONFIG_HH
