/**
 * @file
 * Application-managed software-queue core model (Section V-C).
 *
 * T user-level threads submit 16-byte descriptors into the in-memory
 * request queue and block; the user-level scheduler runs other
 * threads, and polls the completion queue only when no thread is
 * ready (FIFO thread management, as the paper's support software).
 * The doorbell-request flag protocol decides when the (costly) MMIO
 * doorbell must be rung.
 *
 * No hardware queue limits apply — that is the mechanism's strength
 * (Fig. 7/8) — but every access pays software costs: descriptor
 * enqueue, completion reaping, and the first touch of the DMA-written
 * response buffer. These costs bound peak performance near 50 % of
 * the DRAM baseline (Fig. 7) and fall further with MLP (Fig. 9).
 */

#ifndef KMU_CORE_SW_QUEUE_CORE_HH
#define KMU_CORE_SW_QUEUE_CORE_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "core/core_base.hh"
#include "queue/sw_queue_pair.hh"
#include "topo/topology.hh"

namespace kmu
{

class SwQueueCore : public CoreBase
{
  public:
    /** Ring one shard's per-core doorbell register on its device. */
    using RingDoorbell = std::function<void()>;

    /**
     * Final routing say over a descriptor's target shard: receives
     * the interleave's natural shard and the line address, returns
     * the shard to submit to. SimSystem installs the health
     * controller's failover here; unset (the default) keeps natural
     * routing and the pre-health submit path bit-identical.
     */
    using ShardRouter =
        std::function<std::uint32_t(std::uint32_t natural, Addr line)>;

    /**
     * @p queue_pairs / @p rings hold one queue pair and one doorbell
     * closure per device shard (a single element in the paper's
     * single-device topology). Descriptors route to the shard owning
     * their line address (topo::shardOf), and every shard's
     * completion queue is swept in each poll pass.
     */
    SwQueueCore(std::string name, EventQueue &queue, CoreId id,
                const SystemConfig &cfg,
                std::vector<SwQueuePair *> queue_pairs,
                std::vector<RingDoorbell> rings,
                StatGroup *stat_parent);

    void start() override;

    /**
     * Hook for the device side: a completion record became visible
     * in the completion queue (call at CQ-write TLP arrival).
     */
    void onCompletionPosted();

    /** Install a shard-routing override (see ShardRouter). */
    void setShardRouter(ShardRouter r) { router = std::move(r); }

    /** Encode a descriptor tag for (thread, slot). */
    static Addr
    encodeTag(ThreadId thread, std::uint32_t slot)
    {
        return (Addr(thread) * 64 + slot) * cacheLineSize;
    }

    /** Decode the thread id from a completion tag (the tag may carry
     *  a shard id in bits 56..61; strip it first). */
    static ThreadId
    decodeThread(Addr tag)
    {
        return ThreadId((topo::stripShard(tag) & ~Addr(1)) /
                        cacheLineSize / 64);
    }

    /** Write completions carry bit 0 (posted-write recycle only). */
    static bool
    isWriteTag(Addr tag)
    {
        return (tag & 1) != 0;
    }

    /** @{ Mechanism statistics. */
    Counter submits;
    Counter doorbellsRung;
    Counter pollPasses;
    Counter completionsHandled;
    Counter idleWaits;
    /** @} */

  private:
    /** Cached wakeup event names (scheduled per poll/serve). */
    const std::string serveWakeName = name() + ".serve_wake";
    const std::string wakeName = name() + ".wake";

    struct UThread
    {
        bool started = false;
        bool parkedAtSubmit = false; //!< serving: no request yet
        std::uint64_t iter = 0;
        IterationPlan plan{1, 0}; //!< plan of iteration `iter`
        std::uint32_t reads = 0;  //!< read slots of iteration `iter`
        std::uint32_t pendingFills = 0;
    };

    /** Scheduler: run the next ready thread or poll. */
    void coreLoop();

    /** One visit of thread @p tid (consume results, work, resubmit). */
    void visitThread(ThreadId tid);

    /** Enqueue the next iteration's descriptors for @p tid. */
    void submitPhase(ThreadId tid);

    /** Poll pass over the completion queue. */
    void pollLoop();

    /** Serving mode: a request arrived for parked thread @p tid. */
    void onRequestReady(ThreadId tid);

    std::vector<SwQueuePair *> queues;    //!< one per device shard
    std::vector<RingDoorbell> doorbells;  //!< one per device shard
    ShardRouter router;                   //!< optional reroute hook
    std::unordered_map<Addr, Tick> submitTicks; //!< read tag -> tick
    std::vector<UThread> threads;
    std::deque<ThreadId> readyQueue;
    bool idleWaiting = false;
};

} // namespace kmu

#endif // KMU_CORE_SW_QUEUE_CORE_HH
