/**
 * @file
 * Common base of the per-mechanism core timing models.
 *
 * A core model is a state machine over the event queue: it "executes"
 * by charging time for each software action (work block, context
 * switch, queue management) and interacting with the memory system
 * through the issue hook the SimSystem wires up. One core model
 * instance represents one physical core running the microbenchmark
 * loop with the configured mechanism.
 */

#ifndef KMU_CORE_CORE_BASE_HH
#define KMU_CORE_CORE_BASE_HH

#include <functional>

#include "common/random.hh"
#include "core/system_config.hh"
#include "mem/cache.hh"
#include "mem/lfb.hh"
#include "sim/sim_object.hh"

namespace kmu
{

class CoreBase : public SimObject
{
  public:
    /**
     * Issue one cache-line read beyond the LFB (chip queue, link,
     * device or DRAM); the callback runs when the line is on-chip.
     */
    using IssueLine = std::function<void(Addr, std::function<void()>)>;

    /** Emit one posted line write toward the backing store. */
    using PostWrite = std::function<void(Addr)>;

    CoreBase(std::string name, EventQueue &queue, CoreId id,
             const SystemConfig &cfg, IssueLine issue,
             StatGroup *stat_parent);

    /** Kick off execution at the current tick. */
    virtual void start() = 0;

    /** Install the posted-write path (default: absorbed silently). */
    void setWriteHook(PostWrite hook) { postWrite = std::move(hook); }

    /** Install the read-latency sampler (ns per completed read). */
    void
    setLatencySampler(std::function<void(double)> sampler)
    {
        sampleLatency = std::move(sampler);
    }

    CoreId id() const { return coreId; }

    /** Completed microbenchmark iterations. */
    std::uint64_t iterations() const { return iterationsDone; }

    /** Work instructions retired (workCount per access). */
    std::uint64_t workInstrs() const { return workRetired; }

    /** Device/DRAM accesses completed (reads and writes). */
    std::uint64_t accessesDone() const { return accessesCompleted; }

    /** Posted line writes emitted. */
    std::uint64_t writesDone() const { return writesPosted; }

    /** This core's line fill buffers. */
    Lfb &lfb() { return lineFillBuffers; }

    /** This core's L1 tag model (consulted when cfg.l1Enabled). */
    L1Cache &l1() { return l1Cache; }

  protected:
    /** Model the core being busy for @p delay, then continue. The
     *  continuation goes straight into the queue's lambda arena —
     *  templated so no std::function materialises on this hot path. */
    template <typename F>
    void
    chargeAndThen(Tick delay, F &&cont)
    {
        eventQueue().scheduleLambda(curTick() + delay,
                                    std::forward<F>(cont),
                                    EventPriority::CpuTick, stepName);
    }

    /** Line address for (thread, iteration, slot): by default every
     *  access touches a fresh line, as in the paper's benchmark; an
     *  addressPlan substitutes real (locality-bearing) streams. */
    Addr
    addrFor(ThreadId thread, std::uint64_t iter,
            std::uint32_t slot) const
    {
        if (cfg.addressPlan) {
            return lineAlign(
                cfg.addressPlan(coreId, thread, iter, slot));
        }
        const std::uint64_t line =
            ((std::uint64_t(coreId) * 4096 + thread) << 34) +
            iter * AccessEngine::maxBatch + slot;
        return line * cacheLineSize;
    }

    /** L1 lookup (false when the cache model is disabled). */
    bool
    l1Hit(Addr line)
    {
        return cfg.l1Enabled && l1Cache.lookup(line);
    }

    /** Install a filled line when the cache model is enabled. */
    void
    l1Install(Addr line)
    {
        if (cfg.l1Enabled)
            l1Cache.install(line);
    }

    /** Book one finished iteration (work block retired). */
    void
    retireIteration(const IterationPlan &plan)
    {
        iterationsDone++;
        workRetired += std::uint64_t(plan.work) * plan.batch;
    }

    /**
     * Deterministically decide whether (thread, iter, slot) is a
     * write access under cfg.writeFraction (hash-based so both the
     * device run and its DRAM baseline pick identical slots).
     */
    bool
    isWriteSlot(ThreadId thread, std::uint64_t iter,
                std::uint32_t slot) const
    {
        if (cfg.writeFraction <= 0.0)
            return false;
        const std::uint64_t h =
            mix64(addrFor(thread, iter, slot) ^ 0x57a7e5eedull);
        return double(h >> 11) * 0x1.0p-53 < cfg.writeFraction;
    }

    /** Emit one posted write and account for it. */
    void
    emitWrite(ThreadId thread, std::uint64_t iter, std::uint32_t slot)
    {
        writesPosted++;
        accessesCompleted++;
        const Addr line = lineAlign(addrFor(thread, iter, slot));
        // Write-through, no-allocate: drop any cached copy.
        if (cfg.l1Enabled)
            l1Cache.invalidate(line);
        if (postWrite)
            postWrite(line);
    }

    const SystemConfig &cfg;
    /** Cached "<name>.step" — scheduling must not rebuild it. */
    const std::string stepName;
    IssueLine issueLine;
    PostWrite postWrite;
    std::function<void(double)> sampleLatency;
    Lfb lineFillBuffers;
    L1Cache l1Cache;

    std::uint64_t iterationsDone = 0;
    std::uint64_t workRetired = 0;
    std::uint64_t accessesCompleted = 0;
    std::uint64_t writesPosted = 0;

  private:
    CoreId coreId;
};

} // namespace kmu

#endif // KMU_CORE_CORE_BASE_HH
