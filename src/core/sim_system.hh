/**
 * @file
 * Whole-system assembly of the timing model.
 *
 * A SimSystem instantiates, for one SystemConfig: the cores (one
 * model per mechanism), per-core LFBs, the chip-level shared queues,
 * the PCIe link, the device emulator (memory-mapped) or per-core
 * request fetchers + software queue pairs (software-queue mode), and
 * host DRAM. run() executes warmup + measurement windows and returns
 * aggregate metrics.
 *
 * Normalization follows the paper: every result is divided by the
 * work IPC of a single-threaded, single-core, on-demand run with the
 * data in DRAM and the same iteration plan ("normalized work IPC").
 */

#ifndef KMU_CORE_SIM_SYSTEM_HH
#define KMU_CORE_SIM_SYSTEM_HH

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "check/sim_checker.hh"
#include "core/core_base.hh"
#include "core/system_config.hh"
#include "device/device_emulator.hh"
#include "device/request_fetcher.hh"
#include "mem/dram_model.hh"
#include "mem/pcie_link.hh"
#include "mem/uncore_queue.hh"
#include "queue/sw_queue_pair.hh"

namespace kmu
{

namespace trace
{
class OccupancySampler;
class TraceBuffer;
} // namespace trace

namespace serve
{
class ServeDriver;
} // namespace serve

/** Buckets of RunResult's per-request latency histogram (log2 ns);
 *  must equal serve::ServeDriver::latencyBuckets (static_assert in
 *  sim_system.cc). */
constexpr std::size_t serveLatencyBucketCount = 32;

/** Aggregate metrics of one measured window. */
struct RunResult
{
    Tick elapsed = 0;               //!< measurement window length
    std::uint64_t iterations = 0;   //!< completed across all cores
    std::uint64_t workInstrs = 0;   //!< work instructions retired
    std::uint64_t accesses = 0;     //!< device/DRAM accesses done
    std::uint64_t writes = 0;       //!< posted line writes emitted

    double workIpc = 0.0;           //!< work instrs per core cycle
    double accessesPerUs = 0.0;     //!< aggregate access throughput

    double meanReadLatencyNs = 0.0; //!< issue-to-fill, host observed

    double toHostWireGBs = 0.0;     //!< PCIe device->host, with headers
    double toHostUsefulGBs = 0.0;   //!< PCIe device->host, data only
    double toDeviceWireGBs = 0.0;   //!< PCIe host->device, with headers

    std::uint32_t chipQueuePeak = 0;   //!< peak PCIe-path occupancy
    std::uint64_t prefetchesQueued = 0; //!< prefetches that waited for
                                        //!< a free LFB entry
    std::uint64_t replayMisses = 0;     //!< spurious device requests

    /** @{ L1 totals across cores, warmup included (l1Enabled only). */
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    /** @} */

    /** @{
     * Shard topology of the run (src/topo). shardCount is 1 for the
     * paper's single-device platform; the request extremes expose
     * interleave imbalance (warmup included, device side: emulator
     * requests on the memory-mapped paths, fetcher response pairs on
     * the software-queue path; zero when no device is present).
     */
    std::uint32_t shardCount = 1;
    std::uint64_t shardRequestsMin = 0;
    std::uint64_t shardRequestsMax = 0;
    /** @} */

    /** @{
     * Health control plane totals (src/health), warmup included;
     * all zero when cfg.health.mode == Off. deadlineErrors is the
     * engine-level Full-mode effect, which exists in the real-time
     * runtime only — the field is carried here (and in the wire
     * format) so campaign CSVs share one schema, and is always 0 in
     * timing-model results.
     */
    std::uint64_t healthDegraded = 0;    //!< HEALTHY→DEGRADED flips
    std::uint64_t healthQuarantines = 0; //!< DEGRADED→QUARANTINED
    std::uint64_t healthRecoveries = 0;  //!< DEGRADED→HEALTHY
    std::uint64_t failovers = 0;         //!< requests re-routed away
    std::uint64_t deadlineErrors = 0;    //!< reserved; 0 in the sim
    /** @} */

    /** @{
     * Open-loop serving mode (src/serve); all zero with
     * serve.arrival == Off. Counts cover the measurement window:
     * offered = arrivals, completed = retirements (under overload
     * completed < offered — requests pile up in the arrival queue),
     * sloMet = completions within serve.sloUs. Latency is
     * arrival-to-retirement in ns, queueing included; the histogram
     * uses log2 buckets [2^i, 2^(i+1)) ns, and the percentiles
     * interpolate inside buckets (LogHistogram::quantile).
     * inFlightPeak covers the whole run, warmup included.
     */
    std::uint64_t serveOffered = 0;
    std::uint64_t serveCompleted = 0;
    std::uint64_t serveSloMet = 0;
    std::uint64_t serveInFlightPeak = 0;

    double serveP50Ns = 0.0;
    double serveP99Ns = 0.0;
    double serveP999Ns = 0.0;
    double serveMeanLatencyNs = 0.0;
    /** SLO-met completions per microsecond of the window. */
    double serveGoodputPerUs = 0.0;

    std::array<std::uint64_t, serveLatencyBucketCount>
        serveLatencyBuckets{};
    std::uint64_t serveLatencyUnderflow = 0;
    std::uint64_t serveLatencyOverflow = 0;
    /** @} */

    /** @{
     * Event-kernel self-measurement: how fast the simulator itself
     * ran this point. kernelEvents counts every event serviced by
     * the run (warmup included); kernelWallSeconds is the host wall
     * time spent inside EventQueue::run. The ratio is the kernel's
     * events/sec for this workload. Host-dependent by design — it
     * feeds the BENCH_sweep.json trajectory and is never printed
     * into CSVs or compared by determinism gates.
     */
    std::uint64_t kernelEvents = 0;
    double kernelWallSeconds = 0.0;
    /** @} */
};

class SimSystem
{
  public:
    explicit SimSystem(SystemConfig config);
    ~SimSystem();

    SimSystem(const SimSystem &) = delete;
    SimSystem &operator=(const SimSystem &) = delete;

    /** Execute warmup + measurement; callable once per SimSystem. */
    RunResult run();

    /**
     * Route this system's trace records into @p buf: binds the
     * buffer's clock to this system's event queue, labels every
     * component's trace lane, and starts a periodic queue-occupancy
     * sampler (per-core LFB, chip queue, software rings) emitting
     * every @p samplePeriod ticks. Call before run(); the caller
     * keeps @p buf alive past the run and owns sink installation
     * via trace::setSink().
     */
    void enableTracing(trace::TraceBuffer &buf, Tick samplePeriod);

    /** @{ Component access for tests.
     * The zero-arg accessors return shard 0's component (the only
     * one in a single-device system); the indexed overloads address
     * one shard of a sharded topology. Software-queue fetchers and
     * queue pairs are laid out core-major: index core * shards +
     * shard. */
    EventQueue &eventQueue() { return eq; }
    const SystemConfig &config() const { return cfg; }

    /** True when this system runs under the shard-domain parallel
     *  executor (the parallel request was made and the configuration
     *  is eligible; see SystemConfig::parallel). */
    bool parallelActive() const { return parExec != nullptr; }
    ParallelExecutor *parallelExecutor() { return parExec.get(); }

    /** Events serviced across every domain — equals eq.serviced()
     *  for a serial run, and matches it event for event under the
     *  parallel executor (the differential battery compares it). */
    std::uint64_t totalServiced() const
    {
        return parExec ? parExec->totalServiced() : eq.serviced();
    }

    CoreBase &core(std::size_t i) { return *cores.at(i); }
    std::size_t coreCount() const { return cores.size(); }
    std::uint32_t shardCount() const { return cfg.topo.shards; }
    PcieLink *pcieLink(std::size_t s = 0);
    UncoreQueue *chipQueue(std::size_t s = 0);
    DeviceEmulator *deviceEmulator(std::size_t s = 0);
    RequestFetcher *fetcher(std::size_t i);
    StatGroup &stats() { return root; }
    SimChecker &invariantChecker() { return *checker; }
    health::RecoveryController *healthController()
    {
        return healthCtrl.get();
    }
    serve::ServeDriver *serveDriver() { return serving.get(); }
    /** @} */

  private:
    void buildMemoryMapped();
    void buildSwQueue();
    void buildChecker();

    /** Construct the ServeDriver and install the serving hooks into
     *  cfg (must run before the cores copy-capture them). */
    void buildServing();

    /** Iteration streams per core (SMT contexts for on-demand, ULT
     *  threads otherwise) — the serving lane geometry. */
    std::uint32_t lanesPerCore() const;

    /** Close one health epoch: gather per-shard signals, sample the
     *  controller, apply state effects, re-arm the epoch event. */
    void healthEpoch();

    /** One shard's cumulative signal sources (for epoch deltas). */
    struct HealthBase
    {
        std::uint64_t completions = 0;
        std::uint64_t rejects = 0;
    };

    SystemConfig cfg;
    EventQueue eq;
    StatGroup root;

    /**
     * Conservative parallel executor (sim/parallel.hh); null for a
     * serial run. Declared before the links/devices so the shard
     * domain queues it owns are destroyed after every component
     * bound to them, and so its worker threads are joined only once
     * all post-run result reads are done.
     */
    std::unique_ptr<ParallelExecutor> parExec;

    /** @{
     * Host-side pending-work bookkeeping for the checker's sweep
     * probe under the parallel executor: reads in flight between
     * chip-queue grant and host fill, and per-shard absorb ticks of
     * posted writes still travelling. Both are touched only from
     * host-domain events, so the probe is a deterministic function
     * of the host event stream — which is what keeps the parallel
     * sweep schedule (and the sweeps/checks stat counters) identical
     * to serial. Untouched (and empty) in serial runs.
     */
    std::uint64_t parReadsInFlight = 0;
    std::vector<std::deque<Tick>> parWriteDelivers;
    /** @} */

    std::unique_ptr<DramModel> dram;
    /** One link / chip queue / device emulator per shard (shard 0 is
     *  the whole system when cfg.topo.shards == 1). */
    std::vector<std::unique_ptr<PcieLink>> links;
    std::vector<std::unique_ptr<UncoreQueue>> chipQueues;
    std::vector<std::unique_ptr<DeviceEmulator>> devices;
    /** Core-major: element core * shards + shard. */
    std::vector<std::unique_ptr<SwQueuePair>> queuePairs;
    std::vector<std::unique_ptr<RequestFetcher>> fetchers;
    std::vector<std::unique_ptr<CoreBase>> cores;
    std::unique_ptr<Average> readLatency; //!< ns, issue to fill
    std::unique_ptr<LogHistogram> readLatencyLog; //!< ns, log2 buckets
    std::unique_ptr<SimChecker> checker; //!< periodic invariant sweeps
    std::unique_ptr<trace::OccupancySampler> sampler;
    /** Health control plane (nullptr when cfg.health.mode == Off,
     *  which keeps every pre-health run byte-identical). */
    std::unique_ptr<health::RecoveryController> healthCtrl;
    std::vector<HealthBase> healthBase; //!< per-shard epoch baselines
    Tick healthPeriod = 0;              //!< epoch length in sim ticks
    std::uint16_t healthLane = 0;       //!< HealthState trace lane
    /** Open-loop request driver (nullptr when serve.arrival == Off,
     *  which keeps every closed-loop run byte-identical). */
    std::unique_ptr<serve::ServeDriver> serving;
    bool ran = false;

    /** Record one issue-to-fill latency in both latency stats. */
    void sampleReadLatency(double ns);

    /** Service all events up to @p limit on whichever executor this
     *  run uses. */
    Tick runTo(Tick limit);

    /** Construct the parallel executor when the config requests it
     *  and is eligible; no-op (serial) otherwise. */
    void buildParallel();
};

/** Build and run one system; convenience for benches and tests. */
RunResult runSystem(const SystemConfig &cfg);

/**
 * The paper's normalization baseline for @p cfg: single-core,
 * single-thread, on-demand accesses with data in DRAM, same
 * iteration plan and work shape.
 */
SystemConfig baselineConfig(const SystemConfig &cfg);

/** Normalized work IPC of @p result against @p baseline. */
double normalizedWorkIpc(const RunResult &result,
                         const RunResult &baseline);

/** Run both @p cfg and its baseline, returning the normalized IPC. */
double normalizedWorkIpc(const SystemConfig &cfg);

} // namespace kmu

#endif // KMU_CORE_SIM_SYSTEM_HH
