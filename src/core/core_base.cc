#include "core/core_base.hh"

namespace kmu
{

CoreBase::CoreBase(std::string name, EventQueue &queue, CoreId id,
                   const SystemConfig &config, IssueLine issue,
                   StatGroup *stat_parent)
    : SimObject(std::move(name), queue, stat_parent),
      cfg(config), stepName(this->name() + ".step"),
      issueLine(std::move(issue)),
      lineFillBuffers(this->name() + ".lfb", queue, config.lfbPerCore,
                      &stats()),
      l1Cache(this->name() + ".l1", queue, config.l1, &stats()),
      coreId(id)
{
}

} // namespace kmu
