/**
 * @file
 * On-demand core model: unmodified software, out-of-order hardware.
 *
 * One or more hardware (SMT) contexts each run a software thread
 * performing demand loads followed by dependent work. The only
 * latency hiding available is the OoO window — younger iterations'
 * independent loads may issue while an older load is outstanding,
 * but only as long as the younger iteration's instructions fit in
 * the (per-context share of the) ROB — plus, with smtContexts > 1,
 * the ability of one context to execute work while another blocks
 * on a long-latency access (the paper's Section III observation).
 *
 * Modelled structure per context:
 *  - the ROB partitions evenly across contexts; at most
 *    floor(share / instructions-per-iteration) iterations (min 1)
 *    are in flight;
 *  - loads issue when their iteration enters the window (subject to
 *    a free LFB entry — the LFB is shared by all contexts) and
 *    complete after the memory-path latency;
 *  - posted writes occupy no LFB entry and never block;
 *  - work blocks execute in order within a context, and the
 *    execution resource serializes across contexts (one work block
 *    at a time, round-robin among ready contexts);
 *  - an iteration leaves the window when its work retires.
 *
 * With the default smtContexts = 1 this is the paper's Fig. 2
 * configuration and the DRAM baseline that normalizes every figure.
 */

#ifndef KMU_CORE_ON_DEMAND_CORE_HH
#define KMU_CORE_ON_DEMAND_CORE_HH

#include <deque>
#include <vector>

#include "core/core_base.hh"

namespace kmu
{

class OnDemandCore : public CoreBase
{
  public:
    OnDemandCore(std::string name, EventQueue &queue, CoreId id,
                 const SystemConfig &cfg, IssueLine issue,
                 StatGroup *stat_parent);

    void start() override;

    /** Iterations of the *default* plan one context admits. */
    std::uint32_t maxInWindow() const;

    /** Hardware contexts this core runs. */
    std::uint32_t contexts() const
    {
        return std::uint32_t(ctxs.size());
    }

  private:
    /** Cached "<name>.serve_wake": per-admission wakeup. */
    const std::string serveWakeName = name() + ".serve_wake";

    struct IterRec
    {
        IterationPlan plan;
        std::uint64_t index;      //!< absolute iteration number
        std::uint64_t instrs;
        std::uint32_t fillsLeft;  //!< outstanding *read* fills
        std::uint32_t writes;     //!< posted-write slots
        bool ready = false;
    };

    /** Per-SMT-context execution state. */
    struct Context
    {
        std::uint64_t nextIter = 0;   //!< next iteration to admit
        std::uint64_t oldestIter = 0; //!< iteration at window head
        std::uint64_t instrsInWindow = 0;
        std::deque<IterRec> window;
        bool issuing = false;         //!< issueSlot chain active
    };

    /** Admit iterations into @p ctx while its window has room. */
    void admitLoop(std::uint32_t ctx);

    /** Issue the load for (ctx, iteration, slot). */
    void issueSlot(std::uint32_t ctx, std::uint64_t iter,
                   std::uint32_t slot);

    /** A load of (ctx, iter) returned. */
    void onFill(std::uint32_t ctx, std::uint64_t iter);

    /** Start the next ready work block if the core is free. */
    void tryWork();

    std::uint64_t robShare;       //!< ROB entries per context
    std::vector<Context> ctxs;
    std::uint32_t workRotor = 0;  //!< round-robin work arbitration
    bool workBusy = false;        //!< a work block occupies the core
};

} // namespace kmu

#endif // KMU_CORE_ON_DEMAND_CORE_HH
