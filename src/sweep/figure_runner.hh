/**
 * @file
 * Two-pass figure driver: collect points, execute in parallel,
 * render tables — with CSVs byte-identical to a serial run.
 *
 * A figure bench is a deterministic loop nest that builds
 * SystemConfigs and formats their RunResults into a Table. To
 * parallelize it without restructuring every bench into explicit
 * batch submissions, the same body runs twice:
 *
 *  1. COLLECT — run()/baseline()/normalized() record the config and
 *     return inert dummies (emit() and stdout are suppressed);
 *  2. the recorded points execute on a SweepRunner worker pool;
 *  3. RENDER — the body runs again; the k-th run() call returns the
 *     k-th recorded point's result, baselines resolve from the memo.
 *
 * Determinism argument: the body's control flow may depend on its
 * loop constants but never on result *values* (results only feed
 * formatting), so both passes make the same call sequence, and the
 * submission-order merge means every cell is computed by the exact
 * code that computed it serially — same process image, same
 * SimSystem seeding, same FP environment. kmuAssert guards the
 * sequence against a body that violates this contract.
 *
 * The plan-matched DRAM baseline of each workload shape is a sweep
 * point like any other: computed once on the pool and broadcast to
 * every cell that normalizes against it.
 */

#ifndef KMU_SWEEP_FIGURE_RUNNER_HH
#define KMU_SWEEP_FIGURE_RUNNER_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/sim_system.hh"
#include "sweep/sweep_runner.hh"

namespace kmu
{

class FigureRunner
{
  public:
    enum class Phase
    {
        Collect, //!< record configs, return dummies
        Render   //!< replay the body against computed results
    };

    /** Result of one configuration (a sweep point). */
    RunResult run(const SystemConfig &cfg);

    /**
     * The plan-matched DRAM baseline for cfg's workload shape,
     * computed once per distinct shape (see baselineKey()).
     * Configs carrying a plan/addressPlan closure are uncacheable
     * (closures have no identity) and get a point per call site.
     */
    const RunResult &baseline(const SystemConfig &cfg);

    /** Normalized work IPC against the cached baseline. */
    double normalized(const SystemConfig &cfg);

    /** Print the table and write its CSV (render pass only). */
    void emit(const Table &table, const std::string &csvName);

    Phase phase() const { return ph; }
    std::size_t pointCount() const { return points.size(); }
    std::size_t baselineCount() const { return keyed.size(); }

    /** @{ Pass driver, used by figureMain() and the tests. */
    void beginCollect();
    sweep::SweepRunner::Stats execute(unsigned jobs);
    void beginRender();
    /** @} */

    /**
     * Memo key of the baseline cfg maps to: every config field that
     * shapes a single-core, single-thread, on-demand, DRAM-backed
     * run of cfg's workload. Doubles enter as exact bit patterns —
     * adjacent write fractions never collapse into one bucket.
     */
    static std::string baselineKey(const SystemConfig &cfg);

  private:
    std::size_t enqueue(const SystemConfig &cfg);
    const RunResult &nextSequenced(const SystemConfig &cfg,
                                   const RunResult &dummy);

    Phase ph = Phase::Collect;
    std::vector<SystemConfig> points;
    std::vector<RunResult> results;
    std::vector<std::size_t> order; //!< point index per sequenced call
    std::size_t cursor = 0;         //!< render-pass call position
    std::map<std::string, std::size_t> keyed; //!< baselineKey -> point
    bool executed = false;
};

/**
 * Shared main() of every figure bench: parses jobs=N/bench_json=
 * (defaults: KMU_JOBS, KMU_BENCH_JSON or BENCH_sweep.json), runs
 * @p body through collect/execute/render, appends the figure's
 * self-measurement record, and prints a perf summary to stderr.
 */
int figureMain(int argc, char **argv, const std::string &figure,
               const std::function<void(FigureRunner &)> &body);

} // namespace kmu

#endif // KMU_SWEEP_FIGURE_RUNNER_HH
