/**
 * @file
 * Process-pool executor for independent timing-model points.
 *
 * A figure sweep is a list of fully independent SimSystem runs — no
 * point reads another's state. SweepRunner fans a list of
 * (index -> RunResult) closures across `jobs` forked worker
 * processes and merges the results back **in submission order**, so
 * a parallel sweep is byte-identical to the serial one:
 *
 *  - fork(2) workers inherit the parent's memory, so closures over
 *    SystemConfig (including its std::function plan members) need no
 *    serialization; only the fixed-size RunResult crosses back, as
 *    its bit-exact versioned wire format (core/run_result_wire.hh);
 *  - worker w statically owns indices w, w+jobs, w+2*jobs, ... —
 *    assignment is a pure function of (index, jobs), never of
 *    completion timing;
 *  - a worker that dies (crash, OOM-kill) is detected by pipe EOF +
 *    wait status; its unreported points are re-run serially in the
 *    parent, so results are complete whenever the points themselves
 *    are runnable;
 *  - jobs=1, a single point, or a platform without fork() takes the
 *    plain in-process serial path.
 *
 * Per-point wall time is measured in the worker and shipped with
 * each result, so the parent can report an honest serial-time
 * estimate (and thus speedup) without a second, serial run.
 */

#ifndef KMU_SWEEP_SWEEP_RUNNER_HH
#define KMU_SWEEP_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "core/sim_system.hh"

namespace kmu::sweep
{

class SweepRunner
{
  public:
    /** Compute point @p index; must not depend on other points. */
    using PointFn = std::function<RunResult(std::size_t index)>;

    /** Self-measurement of one run() call. */
    struct Stats
    {
        double wallSeconds = 0.0;   //!< whole run(), parent clock
        double serialSeconds = 0.0; //!< sum of per-point wall times
        std::size_t points = 0;
        unsigned jobs = 1;          //!< workers actually used
        unsigned workersDied = 0;   //!< abnormal worker exits
        std::size_t pointsRecovered = 0; //!< re-run in the parent

        /** @{ Event-kernel totals summed over the points' RunResult
         *  self-measurement (events serviced, wall seconds inside
         *  EventQueue::run). Their ratio is the kernel events/sec
         *  for this sweep's workload. */
        std::uint64_t kernelEvents = 0;
        double kernelSeconds = 0.0;
        /** @} */
    };

    /**
     * Execute points 0..count-1 and return their results in index
     * order. @p jobs == 0 means "one per online CPU"; the effective
     * worker count is clamped to @p count.
     */
    std::vector<RunResult> run(std::size_t count, const PointFn &fn,
                               unsigned jobs,
                               Stats *stats = nullptr);

    /** Whether this platform can fork worker processes at all. */
    static bool forkSupported();

    /** True while executing inside a forked worker (for tests). */
    static bool inWorker();

    /** Jobs requested via KMU_JOBS (malformed/absent -> 1). */
    static unsigned envJobs();
};

} // namespace kmu::sweep

#endif // KMU_SWEEP_SWEEP_RUNNER_HH
