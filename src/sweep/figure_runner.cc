#include "sweep/figure_runner.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/logging.hh"
#include "sweep/bench_log.hh"

namespace kmu
{

namespace
{

/** Exact bit pattern of a double, for collision-free memo keys. */
unsigned long long
bits(double v)
{
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

const RunResult &
baselineDummy()
{
    // Collect-pass placeholder. workIpc=1 keeps any stray
    // normalizedWorkIpc(point, baseline) call in a bench body finite
    // (the real values only exist in the render pass).
    static const RunResult dummy = [] {
        RunResult r;
        r.workIpc = 1.0;
        r.elapsed = 1;
        return r;
    }();
    return dummy;
}

} // anonymous namespace

std::string
FigureRunner::baselineKey(const SystemConfig &cfg)
{
    // Everything baselineConfig() does NOT override and that a
    // single-core, single-thread, on-demand, DRAM-backed run can
    // observe. Deliberately absent: device/PCIe parameters, the
    // attach point, chip queue caps, SMT count, prefetch issue cost,
    // and the software-queue cost block — none of them exist on the
    // baseline's access path, and keying on them would only shred
    // baseline sharing across sweep columns.
    return csprintf(
        "wc%u b%u wf%016llx st%llu lfb%u "
        "f%016llx ipc%016llx rob%u loop%u hit%llu ctx%llu "
        "dr%llu dq%u l1%d:%u:%u p%d a%d wu%llu me%llu",
        cfg.workCount, cfg.batch, bits(cfg.writeFraction),
        (unsigned long long)cfg.storeLatency, cfg.lfbPerCore,
        bits(cfg.coreFreqHz), bits(cfg.workIpc), cfg.robSize,
        cfg.loopOverheadInstrs,
        (unsigned long long)cfg.loadHitLatency,
        (unsigned long long)cfg.ctxSwitchCost,
        (unsigned long long)cfg.dram.latency, cfg.dram.queueDepth,
        int(cfg.l1Enabled), cfg.l1.sizeBytes, cfg.l1.ways,
        int(bool(cfg.plan)), int(bool(cfg.addressPlan)),
        (unsigned long long)cfg.warmup,
        (unsigned long long)cfg.measure);
}

std::size_t
FigureRunner::enqueue(const SystemConfig &cfg)
{
    points.push_back(cfg);
    return points.size() - 1;
}

const RunResult &
FigureRunner::nextSequenced(const SystemConfig &cfg,
                            const RunResult &dummy)
{
    if (ph == Phase::Collect) {
        order.push_back(enqueue(cfg));
        return dummy;
    }
    kmuAssert(cursor < order.size(),
              "render pass made more runner calls than collect "
              "(call %zu of %zu): figure bodies must be "
              "deterministic", cursor, order.size());
    return results[order[cursor++]];
}

RunResult
FigureRunner::run(const SystemConfig &cfg)
{
    // The same inert placeholder as baselines: bodies routinely feed
    // collect-pass results straight into normalizedWorkIpc(), which
    // rejects a zero-IPC baseline.
    return nextSequenced(cfg, baselineDummy());
}

const RunResult &
FigureRunner::baseline(const SystemConfig &cfg)
{
    // Closures have no comparable identity: a config carrying one
    // cannot share a memo slot, so it pays one baseline point per
    // call site instead of risking a wrong-bucket hit.
    if (cfg.plan || cfg.addressPlan)
        return nextSequenced(baselineConfig(cfg), baselineDummy());

    const std::string key = baselineKey(cfg);
    if (ph == Phase::Collect) {
        if (keyed.find(key) == keyed.end())
            keyed.emplace(key, enqueue(baselineConfig(cfg)));
        return baselineDummy();
    }
    const auto it = keyed.find(key);
    kmuAssert(it != keyed.end(),
              "baseline for key '%s' was never collected",
              key.c_str());
    return results[it->second];
}

double
FigureRunner::normalized(const SystemConfig &cfg)
{
    const RunResult res = run(cfg);
    const RunResult &base = baseline(cfg);
    if (ph == Phase::Collect)
        return 0.0;
    return normalizedWorkIpc(res, base);
}

void
FigureRunner::emit(const Table &table, const std::string &csvName)
{
    if (ph != Phase::Render)
        return;
    table.printAscii(std::cout);
    table.writeCsvFile(csvName);
    std::cout << "(csv written to " << csvName << ")\n\n";
}

void
FigureRunner::beginCollect()
{
    ph = Phase::Collect;
    points.clear();
    results.clear();
    order.clear();
    keyed.clear();
    cursor = 0;
    executed = false;
}

sweep::SweepRunner::Stats
FigureRunner::execute(unsigned jobs)
{
    kmuAssert(ph == Phase::Collect && !executed,
              "execute() follows exactly one collect pass");
    sweep::SweepRunner::Stats stats;
    sweep::SweepRunner pool;
    results = pool.run(
        points.size(),
        [this](std::size_t i) { return runSystem(points[i]); },
        jobs, &stats);
    executed = true;
    return stats;
}

void
FigureRunner::beginRender()
{
    kmuAssert(executed, "render requires executed results");
    ph = Phase::Render;
    cursor = 0;
}

namespace
{

/** Swallows the collect pass's table/notes output. */
class NullBuf : public std::streambuf
{
  protected:
    int
    overflow(int c) override
    {
        return c == traits_type::eof() ? 0 : c;
    }
};

bool
parseJobs(const std::string &value, unsigned &jobs)
{
    if (value.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (errno != 0 || *end != '\0' || v > 4096)
        return false;
    jobs = unsigned(v);
    return true;
}

} // anonymous namespace

int
figureMain(int argc, char **argv, const std::string &figure,
           const std::function<void(FigureRunner &)> &body)
{
    unsigned jobs = sweep::SweepRunner::envJobs();
    const char *env_json = std::getenv("KMU_BENCH_JSON");
    std::string bench_json = env_json ? env_json : "BENCH_sweep.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::size_t eq = arg.find('=');
        const std::string key =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "jobs" && eq != std::string::npos &&
            parseJobs(value, jobs))
            continue;
        if (key == "bench_json" && eq != std::string::npos) {
            bench_json = value;
            continue;
        }
        std::fprintf(stderr,
            "%s: bad option '%s'\n"
            "usage: %s [jobs=N] [bench_json=FILE]\n"
            "  jobs=N          worker processes; 0 = one per CPU\n"
            "                  (default: KMU_JOBS env, else 1)\n"
            "  bench_json=FILE self-measurement log, '' disables\n"
            "                  (default: KMU_BENCH_JSON env, else "
            "BENCH_sweep.json)\n",
            figure.c_str(), arg.c_str(), figure.c_str());
        return 1;
    }

    FigureRunner runner;
    runner.beginCollect();
    {
        NullBuf null;
        std::streambuf *saved = std::cout.rdbuf(&null);
        body(runner);
        std::cout.rdbuf(saved);
    }

    const sweep::SweepRunner::Stats stats = runner.execute(jobs);

    runner.beginRender();
    body(runner);

    if (!bench_json.empty() &&
        !sweep::appendBenchRecord(bench_json, figure, stats)) {
        std::fprintf(stderr, "%s: cannot write %s\n", figure.c_str(),
                     bench_json.c_str());
    }
    std::fprintf(stderr,
                 "%s: %zu points, jobs=%u, %.3fs wall "
                 "(serial est %.3fs, %.2fx), %.3g Mevents/s%s\n",
                 figure.c_str(), stats.points, stats.jobs,
                 stats.wallSeconds, stats.serialSeconds,
                 stats.wallSeconds > 0.0
                     ? stats.serialSeconds / stats.wallSeconds
                     : 1.0,
                 stats.kernelSeconds > 0.0
                     ? double(stats.kernelEvents) /
                           stats.kernelSeconds / 1e6
                     : 0.0,
                 stats.pointsRecovered
                     ? csprintf(" [%zu points recovered]",
                                stats.pointsRecovered).c_str()
                     : "");
    return 0;
}

} // namespace kmu
