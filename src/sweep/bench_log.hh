/**
 * @file
 * BENCH_sweep.json — the harness's own perf trajectory.
 *
 * Every figure regeneration appends one record (figure, jobs,
 * points, wall seconds, points/sec, serial estimate, speedup) to a
 * JSON array on disk, so harness performance is tracked the same way
 * the modelled system's figures are.
 */

#ifndef KMU_SWEEP_BENCH_LOG_HH
#define KMU_SWEEP_BENCH_LOG_HH

#include <string>

#include "sweep/sweep_runner.hh"

namespace kmu::sweep
{

/**
 * Append one self-measurement record for @p figure to the JSON
 * array at @p path (created if absent, recovered if unparseable).
 * Returns false if the file could not be written.
 */
bool appendBenchRecord(const std::string &path,
                       const std::string &figure,
                       const SweepRunner::Stats &stats);

/** The record JSON object, without trailing newline (for tests). */
std::string benchRecordJson(const std::string &figure,
                            const SweepRunner::Stats &stats);

/**
 * Append an arbitrary pre-formatted JSON object @p record to the
 * array at @p path (same create/recover semantics as
 * appendBenchRecord). For self-measurements that are not figure
 * sweeps — e.g. the event-kernel microbench.
 */
bool appendBenchJson(const std::string &path,
                     const std::string &record);

} // namespace kmu::sweep

#endif // KMU_SWEEP_BENCH_LOG_HH
