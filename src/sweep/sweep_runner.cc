#include "sweep/sweep_runner.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define KMU_SWEEP_HAVE_FORK 1
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define KMU_SWEEP_HAVE_FORK 0
#endif

#include "common/logging.hh"
#include "core/run_result_wire.hh"

namespace kmu::sweep
{

namespace
{

bool inWorkerFlag = false;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** One result frame on a worker pipe. Host timing rides in the
 *  header, never inside the serialized RunResult (which must stay a
 *  pure function of the configuration). */
constexpr std::size_t frameHeaderBytes =
    4 + 8 + 8; // index + durationNs + kernelNs
constexpr std::size_t frameBytes =
    frameHeaderBytes + runResultWireBytes;

/** Run @p index in-process, recording its wall time. */
RunResult
runTimed(const SweepRunner::PointFn &fn, std::size_t index,
         double &serialSeconds)
{
    const auto t0 = Clock::now();
    RunResult res = fn(index);
    serialSeconds += secondsSince(t0);
    return res;
}

#if KMU_SWEEP_HAVE_FORK

bool
writeAll(int fd, const std::uint8_t *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += std::size_t(n);
    }
    return true;
}

/** Child body: run indices w, w+jobs, ..., frame each result out. */
[[noreturn]] void
workerMain(int fd, std::size_t worker, std::size_t jobs,
           std::size_t count, const SweepRunner::PointFn &fn)
{
    inWorkerFlag = true;
    for (std::size_t i = worker; i < count; i += jobs) {
        const auto t0 = Clock::now();
        const RunResult res = fn(i);
        const std::uint64_t durNs = std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());

        std::uint8_t frame[frameBytes];
        const std::uint32_t idx32 = std::uint32_t(i);
        const std::uint64_t kernelNs =
            std::uint64_t(res.kernelWallSeconds * 1e9);
        std::memcpy(frame, &idx32, 4);
        std::memcpy(frame + 4, &durNs, 8);
        std::memcpy(frame + 12, &kernelNs, 8);
        const std::vector<std::uint8_t> wire =
            serializeRunResult(res);
        std::memcpy(frame + frameHeaderBytes, wire.data(),
                    runResultWireBytes);
        if (!writeAll(fd, frame, frameBytes))
            ::_exit(2); // parent vanished; nothing useful left
    }
    ::close(fd);
    ::_exit(0);
}

struct Worker
{
    pid_t pid = -1;
    int fd = -1;
    std::vector<std::uint8_t> buf; //!< unparsed pipe bytes
    bool eof = false;
};

#endif // KMU_SWEEP_HAVE_FORK

} // anonymous namespace

bool
SweepRunner::forkSupported()
{
    return KMU_SWEEP_HAVE_FORK != 0;
}

bool
SweepRunner::inWorker()
{
    return inWorkerFlag;
}

unsigned
SweepRunner::envJobs()
{
    const char *env = std::getenv("KMU_JOBS");
    if (!env || !*env)
        return 1;
    char *end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (errno != 0 || end == env || *end != '\0')
        return 1;
    return unsigned(v);
}

std::vector<RunResult>
SweepRunner::run(std::size_t count, const PointFn &fn, unsigned jobs,
                 Stats *stats)
{
    const auto wall0 = Clock::now();
    Stats st;
    st.points = count;

    std::vector<RunResult> results(count);
    std::vector<bool> have(count, false);

#if KMU_SWEEP_HAVE_FORK
    if (jobs == 0) {
        const long online = ::sysconf(_SC_NPROCESSORS_ONLN);
        jobs = online > 0 ? unsigned(online) : 1u;
    }
#else
    if (jobs == 0)
        jobs = 1;
#endif
    if (jobs > count)
        jobs = unsigned(count);
    const bool parallel = forkSupported() && jobs > 1 && count > 1;
    st.jobs = parallel ? jobs : 1;

    if (!parallel) {
        for (std::size_t i = 0; i < count; ++i) {
            results[i] = runTimed(fn, i, st.serialSeconds);
            have[i] = true;
        }
        st.wallSeconds = secondsSince(wall0);
        for (const RunResult &r : results) {
            st.kernelEvents += r.kernelEvents;
            st.kernelSeconds += r.kernelWallSeconds;
        }
        if (stats)
            *stats = st;
        return results;
    }

#if KMU_SWEEP_HAVE_FORK
    // Inherited stdio buffers would be flushed once per worker on a
    // library _exit path; make them empty before forking.
    std::fflush(nullptr);

    std::vector<Worker> workers(jobs);
    std::vector<int> readFds;
    readFds.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) {
        int fds[2];
        if (::pipe(fds) != 0)
            fatal("sweep: pipe failed: %s", std::strerror(errno));
        const pid_t pid = ::fork();
        if (pid < 0) {
            // Can't grow the pool: close this pipe and run what this
            // worker would have owned in the parent, below.
            ::close(fds[0]);
            ::close(fds[1]);
            st.workersDied++;
            continue;
        }
        if (pid == 0) {
            ::close(fds[0]);
            for (int fd : readFds)
                ::close(fd);
            workerMain(fds[1], w, jobs, count, fn);
        }
        ::close(fds[1]);
        workers[w].pid = pid;
        workers[w].fd = fds[0];
        readFds.push_back(fds[0]);
    }

    // Drain every worker pipe until EOF, parsing complete frames as
    // they arrive (workers block on a full pipe otherwise).
    std::size_t open = 0;
    for (const Worker &w : workers)
        open += w.pid >= 0 ? 1 : 0;
    while (open > 0) {
        std::vector<struct pollfd> pfds;
        std::vector<std::size_t> owner;
        for (std::size_t w = 0; w < workers.size(); ++w) {
            if (workers[w].pid >= 0 && !workers[w].eof) {
                struct pollfd pf;
                pf.fd = workers[w].fd;
                pf.events = POLLIN;
                pf.revents = 0;
                pfds.push_back(pf);
                owner.push_back(w);
            }
        }
        int ready = ::poll(pfds.data(), nfds_t(pfds.size()), -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            fatal("sweep: poll failed: %s", std::strerror(errno));
        }
        for (std::size_t p = 0; p < pfds.size(); ++p) {
            if (!(pfds[p].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Worker &w = workers[owner[p]];
            std::uint8_t chunk[4096];
            const ssize_t n = ::read(w.fd, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                fatal("sweep: read failed: %s",
                      std::strerror(errno));
            }
            if (n == 0) {
                w.eof = true;
                ::close(w.fd);
                --open;
                continue;
            }
            w.buf.insert(w.buf.end(), chunk, chunk + n);
            while (w.buf.size() >= frameBytes) {
                std::uint32_t idx32;
                std::uint64_t durNs;
                std::uint64_t kernelNs;
                std::memcpy(&idx32, w.buf.data(), 4);
                std::memcpy(&durNs, w.buf.data() + 4, 8);
                std::memcpy(&kernelNs, w.buf.data() + 12, 8);
                RunResult res;
                if (idx32 >= count ||
                    !deserializeRunResult(
                        w.buf.data() + frameHeaderBytes,
                        runResultWireBytes, res)) {
                    // Corrupt stream: stop trusting this worker; its
                    // unreported points are re-run below.
                    w.buf.clear();
                    w.eof = true;
                    ::close(w.fd);
                    --open;
                    st.workersDied++;
                    break;
                }
                results[idx32] = res;
                have[idx32] = true;
                st.serialSeconds += double(durNs) * 1e-9;
                st.kernelSeconds += double(kernelNs) * 1e-9;
                w.buf.erase(w.buf.begin(),
                            w.buf.begin() +
                                std::ptrdiff_t(frameBytes));
            }
        }
    }

    for (Worker &w : workers) {
        if (w.pid < 0)
            continue;
        int status = 0;
        pid_t r;
        do {
            r = ::waitpid(w.pid, &status, 0);
        } while (r < 0 && errno == EINTR);
        if (r == w.pid &&
            !(WIFEXITED(status) && WEXITSTATUS(status) == 0))
            st.workersDied++;
    }

    // Whatever a dead (or never-forked) worker failed to report is
    // recomputed here, serially: identical results, just slower.
    for (std::size_t i = 0; i < count; ++i) {
        if (!have[i]) {
            results[i] = runTimed(fn, i, st.serialSeconds);
            have[i] = true;
            st.pointsRecovered++;
        }
    }
#endif // KMU_SWEEP_HAVE_FORK

    st.wallSeconds = secondsSince(wall0);
    // The deterministic event count crosses the wire inside each
    // RunResult; kernel wall time arrives via the frame headers
    // (already totalled above), so worker-delivered results carry
    // kernelWallSeconds == 0 and only parent-run points add here.
    for (const RunResult &r : results) {
        st.kernelEvents += r.kernelEvents;
        st.kernelSeconds += r.kernelWallSeconds;
    }
    if (stats)
        *stats = st;
    return results;
}

} // namespace kmu::sweep
