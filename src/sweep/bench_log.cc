#include "sweep/bench_log.hh"

#include <cstdio>

#include "common/logging.hh"

namespace kmu::sweep
{

std::string
benchRecordJson(const std::string &figure,
                const SweepRunner::Stats &st)
{
    const double pointsPerSec =
        st.wallSeconds > 0.0 ? double(st.points) / st.wallSeconds
                             : 0.0;
    const double speedup = st.wallSeconds > 0.0
                               ? st.serialSeconds / st.wallSeconds
                               : 1.0;
    const double eventsPerSec =
        st.kernelSeconds > 0.0
            ? double(st.kernelEvents) / st.kernelSeconds
            : 0.0;
    return csprintf(
        "{\"figure\": \"%s\", \"jobs\": %u, \"points\": %zu, "
        "\"wall_s\": %.6g, \"serial_est_s\": %.6g, "
        "\"points_per_s\": %.6g, \"speedup_vs_serial\": %.6g, "
        "\"workers_died\": %u, \"points_recovered\": %zu, "
        "\"events\": %llu, \"events_per_s\": %.6g}",
        figure.c_str(), st.jobs, st.points, st.wallSeconds,
        st.serialSeconds, pointsPerSec, speedup, st.workersDied,
        st.pointsRecovered, (unsigned long long)st.kernelEvents,
        eventsPerSec);
}

bool
appendBenchRecord(const std::string &path, const std::string &figure,
                  const SweepRunner::Stats &stats)
{
    return appendBenchJson(path, benchRecordJson(figure, stats));
}

bool
appendBenchJson(const std::string &path, const std::string &record)
{
    // Load whatever is there; a missing or non-array file restarts
    // the log rather than failing the figure run.
    std::string existing;
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            existing.append(buf, n);
        std::fclose(f);
    }

    std::string out;
    const std::size_t close = existing.rfind(']');
    if (!existing.empty() && existing[0] == '[' &&
        close != std::string::npos) {
        // Splice before the closing bracket; "[]" gets no comma.
        std::string head = existing.substr(0, close);
        while (!head.empty() &&
               (head.back() == '\n' || head.back() == ' ' ||
                head.back() == ','))
            head.pop_back();
        out = head + (head == "[" ? "\n" : ",\n") + record + "\n]\n";
    } else {
        out = "[\n" + record + "\n]\n";
    }

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(out.data(), 1, out.size(), f) == out.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace kmu::sweep
