/**
 * @file
 * Request/completion queue pair with the doorbell-request protocol.
 *
 * The paper's best software-managed interface pairs two in-memory
 * rings with two optimizations that it found strictly necessary:
 *
 *  1. a *doorbell-request flag*: the device keeps fetching requests
 *     on its own until a burst read returns nothing new; it then sets
 *     the flag and stops. The host only performs the (costly) MMIO
 *     doorbell when it observes the flag set, and clears it after.
 *  2. *burst reads*: descriptors are fetched eight at a time to
 *     amortize per-transaction costs.
 *
 * This class is the host-memory state shared by both sides; the
 * timing model and the real runtime layer their costs on top of it.
 */

#ifndef KMU_QUEUE_SW_QUEUE_PAIR_HH
#define KMU_QUEUE_SW_QUEUE_PAIR_HH

#include <atomic>
#include <cstdint>

#include "common/thread_annotations.hh"
#include "queue/descriptor.hh"
#include "queue/spsc_ring.hh"

namespace kmu
{

class SwQueuePair
{
  public:
    /** @param depth ring capacity (power of two). */
    explicit SwQueuePair(std::size_t depth = 256)
        : requests(depth), completions(depth)
    {
    }

    /** @{
     * Role capabilities: the queue pair is shared by exactly two
     * contexts — the host (request producer / completion consumer)
     * and the device (request consumer / completion producer). The
     * protocol functions below are gated on these roles; each maps
     * onto the proper ring-side role internally, so the SPSC
     * single-owner discipline is enforced end to end at compile time
     * on clang (-Wthread-safety).
     */
    ThreadRole hostRole;
    ThreadRole deviceRole;
    /** @} */

    /** Host side: enqueue one request descriptor.
     *  @return false when the request ring is full. */
    bool
    submit(const RequestDescriptor &desc) KMU_REQUIRES(hostRole)
    {
        RoleGuard producer(requests.producerRole);
        return requests.tryPush(desc);
    }

    /**
     * Host side: check-and-clear the doorbell-request flag. Call
     * after submit(); a true return means the host must ring the
     * MMIO doorbell to restart the fetcher.
     */
    bool
    consumeDoorbellRequest() KMU_REQUIRES(hostRole)
    {
        bool expected = true;
        return doorbellNeeded.compare_exchange_strong(
            expected, false, std::memory_order_acq_rel);
    }

    /** Host side: poll one completion. */
    bool
    reapCompletion(CompletionDescriptor &out) KMU_REQUIRES(hostRole)
    {
        RoleGuard consumer(completions.consumerRole);
        return completions.tryPop(out);
    }

    /** Device side: burst-fetch up to @p max requests (default: the
     *  paper's burst of eight). */
    std::size_t
    fetchBurst(std::vector<RequestDescriptor> &out,
               std::size_t max = descriptorBurst) KMU_REQUIRES(deviceRole)
    {
        RoleGuard consumer(requests.consumerRole);
        return requests.popBurst(out, max);
    }

    /** Device side: post a completion (after the data write). */
    bool
    postCompletion(const CompletionDescriptor &desc) KMU_REQUIRES(deviceRole)
    {
        RoleGuard producer(completions.producerRole);
        return completions.tryPush(desc);
    }

    /** Device side: no new descriptors seen — request a doorbell. */
    void
    requestDoorbell() KMU_REQUIRES(deviceRole)
    {
        doorbellNeeded.store(true, std::memory_order_release);
    }

    /** True when the fetcher is parked waiting for a doorbell. */
    bool
    doorbellRequested() const
    {
        return doorbellNeeded.load(std::memory_order_acquire);
    }

    std::size_t pendingRequests() const { return requests.size(); }
    std::size_t pendingCompletions() const { return completions.size(); }

    /** @{ Ring access for invariant sweeps and tests. */
    const SpscRing<RequestDescriptor> &
    requestRing() const
    {
        return requests;
    }
    const SpscRing<CompletionDescriptor> &
    completionRing() const
    {
        return completions;
    }
    /** @} */

  private:
    SpscRing<RequestDescriptor> requests;
    SpscRing<CompletionDescriptor> completions;
    std::atomic<bool> doorbellNeeded //!< starts parked
        KMU_ATOMIC_ROLE(device_sets, host_clears, both_read){true};
};

} // namespace kmu

#endif // KMU_QUEUE_SW_QUEUE_PAIR_HH
