/**
 * @file
 * Descriptor formats for the application-managed software queues.
 *
 * Mirrors the paper's Section IV-A protocol: the host writes request
 * descriptors into an in-memory Request Queue; the device DMA-reads
 * them (in bursts of eight), performs the access, writes the response
 * data to the host buffer named by the descriptor, and then writes a
 * completion descriptor into the Completion Queue. Completion-queue
 * writes are ordered after the corresponding data writes.
 */

#ifndef KMU_QUEUE_DESCRIPTOR_HH
#define KMU_QUEUE_DESCRIPTOR_HH

#include <cstdint>

#include "common/types.hh"

namespace kmu
{

/**
 * One request, as laid out in host memory (16 bytes).
 *
 * Matches the paper's wire format: "each descriptor contains the
 * address to read, and the target address where the response data is
 * to be stored". The paper studies reads only; this implementation
 * adds line-granular writes (its stated future work) by carrying a
 * one-bit opcode in the low bit of the line-aligned device address —
 * the usual trick when a descriptor format has no spare field.
 */
struct RequestDescriptor
{
    /** Device line address (bit 0: 0 = read, 1 = write). */
    Addr deviceAddr = 0;

    /** Read: host buffer the device writes the 64-byte response
     *  into. Write: host buffer holding the 64 bytes to store. The
     *  host runtime also uses it as the completion tag. */
    Addr hostAddr = 0;

    /** Build a read descriptor for a line-aligned address. */
    static RequestDescriptor
    read(Addr device_line, Addr host)
    {
        return RequestDescriptor{device_line, host};
    }

    /** Build a write descriptor for a line-aligned address. */
    static RequestDescriptor
    write(Addr device_line, Addr host)
    {
        return RequestDescriptor{device_line | 1, host};
    }

    /** True for write descriptors. */
    bool isWrite() const { return (deviceAddr & 1) != 0; }

    /** Device line address with the opcode bit stripped. */
    Addr lineAddr() const { return deviceAddr & ~Addr(1); }

    /** @{
     * Generation tagging for retried requests.
     *
     * Host virtual addresses on x86-64 fit in 48 bits, so bits
     * 48..55 of hostAddr are free to carry an 8-bit generation tag.
     * The device echoes hostAddr verbatim into the completion, so
     * the host runtime can tell a fresh completion from a stale one
     * that raced with a watchdog re-issue of the same buffer. The
     * 16-byte wire layout is untouched.
     */
    static constexpr unsigned hostTagShift = 48;
    static constexpr Addr hostTagMask = Addr(0xff) << hostTagShift;

    static Addr
    taggedHost(Addr host, std::uint8_t gen)
    {
        return (host & ~hostTagMask) | (Addr(gen) << hostTagShift);
    }

    /** Host buffer address with the generation tag stripped. */
    static Addr hostPtr(Addr tagged) { return tagged & ~hostTagMask; }

    /** Generation tag carried in a (possibly tagged) host address. */
    static std::uint8_t
    hostTag(Addr tagged)
    {
        return std::uint8_t((tagged & hostTagMask) >> hostTagShift);
    }
    /** @} */
};

static_assert(sizeof(RequestDescriptor) == 16,
              "descriptor layout must match the 16-byte wire format");

/**
 * One completion record: echo of hostAddr plus an end-to-end CRC-32C
 * of the 64 response bytes (exact-data contract check; zero for
 * writes, which carry no response data). Only the first
 * completionWireBytes travel on the modeled wire — the CRC models
 * metadata the real device folds into its data TLP digest, so the
 * timing model's byte accounting is unchanged.
 */
struct CompletionDescriptor
{
    Addr hostAddr = 0;
    std::uint32_t crc = 0;
    std::uint32_t reserved = 0;
};

/** Bytes of a completion record on the modeled wire (hostAddr echo). */
constexpr std::uint32_t completionWireBytes = 8;

/** Descriptors fetched per DMA burst read (paper Section IV-A). */
constexpr std::uint32_t descriptorBurst = 8;

} // namespace kmu

#endif // KMU_QUEUE_DESCRIPTOR_HH
