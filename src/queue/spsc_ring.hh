/**
 * @file
 * Bounded single-producer / single-consumer ring buffer.
 *
 * This is the in-host-memory structure backing both the Request Queue
 * (host produces, device consumes) and the Completion Queue (device
 * produces, host consumes). It is lock-free with acquire/release
 * atomics so the real runtime can run the device emulator on another
 * OS thread; used single-threadedly by the timing model, the atomics
 * compile down to plain loads/stores.
 *
 * Capacity must be a power of two. One slot is sacrificed to
 * distinguish full from empty.
 */

#ifndef KMU_QUEUE_SPSC_RING_HH
#define KMU_QUEUE_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace kmu
{

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
        : slots(capacity), mask(capacity - 1)
    {
        kmuAssert(isPowerOf2(capacity),
                  "SPSC ring capacity must be a power of two");
        kmuAssert(capacity >= 2, "SPSC ring needs at least two slots");
    }

    /** Usable capacity (one slot is reserved). */
    std::size_t capacity() const { return slots.size() - 1; }

    /** Producer: true on success, false when full. */
    bool
    tryPush(const T &value)
    {
        const std::size_t h = head.load(std::memory_order_relaxed);
        const std::size_t next = (h + 1) & mask;
        if (next == tail.load(std::memory_order_acquire))
            return false;
        slots[h] = value;
        head.store(next, std::memory_order_release);
        return true;
    }

    /** Consumer: true on success, false when empty. */
    bool
    tryPop(T &out)
    {
        const std::size_t t = tail.load(std::memory_order_relaxed);
        if (t == head.load(std::memory_order_acquire))
            return false;
        out = slots[t];
        tail.store((t + 1) & mask, std::memory_order_release);
        return true;
    }

    /**
     * Consumer: pop up to @p max items into @p out (appended).
     * Models the device's burst descriptor read.
     * @return number of items popped.
     */
    std::size_t
    popBurst(std::vector<T> &out, std::size_t max)
    {
        std::size_t n = 0;
        T item;
        while (n < max && tryPop(item)) {
            out.push_back(item);
            n++;
        }
        return n;
    }

    /** Consumer-side snapshot of queued item count (approximate
     *  under concurrency, exact single-threaded). */
    std::size_t
    size() const
    {
        const std::size_t h = head.load(std::memory_order_acquire);
        const std::size_t t = tail.load(std::memory_order_acquire);
        return (h - t) & mask;
    }

    bool empty() const { return size() == 0; }

  private:
    std::vector<T> slots;
    std::size_t mask;
    alignas(64) std::atomic<std::size_t> head{0};
    alignas(64) std::atomic<std::size_t> tail{0};
};

} // namespace kmu

#endif // KMU_QUEUE_SPSC_RING_HH
