/**
 * @file
 * Bounded single-producer / single-consumer ring buffer.
 *
 * This is the in-host-memory structure backing both the Request Queue
 * (host produces, device consumes) and the Completion Queue (device
 * produces, host consumes). It is lock-free with acquire/release
 * atomics so the real runtime can run the device emulator on another
 * OS thread; used single-threadedly by the timing model, the atomics
 * compile down to plain loads/stores.
 *
 * Capacity must be a power of two. One slot is sacrificed to
 * distinguish full from empty.
 *
 * Memory-ordering audit (the two synchronization edges):
 *
 *  1. producer publishes a slot:   slots[h] = v;  head.store(release)
 *     consumer observes it:        head.load(acquire);  read slots[t]
 *     The release/acquire pair on `head` guarantees the slot write
 *     is visible before the consumer can see the advanced head, so
 *     the consumer never reads a half-written slot.
 *
 *  2. consumer retires a slot:     out = slots[t];  tail.store(release)
 *     producer observes it:        tail.load(acquire);  write slots[h]
 *     The release/acquire pair on `tail` guarantees the consumer has
 *     fully read a slot before the producer can see the advanced tail
 *     and overwrite it.
 *
 *  Each side loads its *own* index relaxed (single writer: the value
 *  is always its own last store, so no synchronization is needed).
 *  The cumulative push/pop counters piggyback on the same two edges:
 *  each side bumps its counter *before* its index release-store, so
 *  the opposite side's acquire load makes the counter value current
 *  enough for the occupancy invariants below to be exact bounds
 *  (a stale opposite counter only ever weakens the check toward
 *  passing, never toward a false positive).
 *
 *  size() uses two acquire loads but still only yields a snapshot:
 *  exact when single-threaded, approximate (bounded by capacity)
 *  under concurrency.
 */

#ifndef KMU_QUEUE_SPSC_RING_HH
#define KMU_QUEUE_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <vector>

#include "check/invariant.hh"
#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/thread_annotations.hh"

namespace kmu
{

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
        : slots(capacity), mask(capacity - 1)
    {
        kmuAssert(isPowerOf2(capacity),
                  "SPSC ring capacity must be a power of two");
        kmuAssert(capacity >= 2, "SPSC ring needs at least two slots");
    }

    /** Usable capacity (one slot is reserved). */
    std::size_t capacity() const { return slots.size() - 1; }

    /** @{
     * Role capabilities: exactly one context may act as producer and
     * one as consumer at any time. Callers of the gated functions
     * below assert the role with a RoleGuard; clang's thread-safety
     * analysis rejects call paths that reach them role-less.
     */
    ThreadRole producerRole;
    ThreadRole consumerRole;
    /** @} */

    /** Producer: true on success, false when full. */
    bool
    tryPush(const T &value) KMU_REQUIRES(producerRole)
    {
        const std::size_t h = head.load(std::memory_order_relaxed);
        KMU_INVARIANT(h < slots.size(),
                      "ring head index %zu out of range", h);
        const std::size_t next = (h + 1) & mask;
        if (next == tail.load(std::memory_order_acquire)) {
            rejects.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        slots[h] = value;
        pushes.fetch_add(1, std::memory_order_relaxed);
        head.store(next, std::memory_order_release);
        // pops lags at most to the tail value acquired above, so this
        // bound can only be loose in the passing direction.
        KMU_MODEL_CHECK(
            pushes.load(std::memory_order_relaxed) -
                    pops.load(std::memory_order_relaxed) <=
                capacity(),
            "ring occupancy exceeds capacity %zu", capacity());
        return true;
    }

    /** Consumer: true on success, false when empty. */
    bool
    tryPop(T &out) KMU_REQUIRES(consumerRole)
    {
        const std::size_t t = tail.load(std::memory_order_relaxed);
        KMU_INVARIANT(t < slots.size(),
                      "ring tail index %zu out of range", t);
        if (t == head.load(std::memory_order_acquire))
            return false;
        out = slots[t];
        pops.fetch_add(1, std::memory_order_relaxed);
        tail.store((t + 1) & mask, std::memory_order_release);
        // pushes is at least the value acquired via head above, so a
        // stale read only weakens the check toward passing.
        KMU_MODEL_CHECK(pops.load(std::memory_order_relaxed) <=
                            pushes.load(std::memory_order_relaxed),
                        "ring popped more items than were pushed");
        return true;
    }

    /**
     * Consumer: pop up to @p max items into @p out (appended).
     * Models the device's burst descriptor read.
     * @return number of items popped.
     */
    std::size_t
    popBurst(std::vector<T> &out, std::size_t max) KMU_REQUIRES(consumerRole)
    {
        std::size_t n = 0;
        T item;
        while (n < max && tryPop(item)) {
            out.push_back(item);
            n++;
        }
        return n;
    }

    /** Consumer-side snapshot of queued item count (approximate
     *  under concurrency, exact single-threaded). */
    std::size_t
    size() const
    {
        const std::size_t h = head.load(std::memory_order_acquire);
        const std::size_t t = tail.load(std::memory_order_acquire);
        return (h - t) & mask;
    }

    bool empty() const { return size() == 0; }

    /** @{ Cumulative (never-wrapping) accounting, for invariants and
     *  tests: pops <= pushes and pushes - pops <= capacity always. */
    std::uint64_t
    totalPushes() const
    {
        return pushes.load(std::memory_order_relaxed);
    }
    std::uint64_t
    totalPops() const
    {
        return pops.load(std::memory_order_relaxed);
    }
    /** Full-ring push rejections (producer-side backpressure). With
     *  totalPushes this conserves attempts: every tryPush either
     *  pushed or rejected. */
    std::uint64_t
    totalRejects() const
    {
        return rejects.load(std::memory_order_relaxed);
    }
    /** @} */

  private:
    std::vector<T> slots;
    std::size_t mask;
    alignas(64) std::atomic<std::size_t> head
        KMU_ATOMIC_ROLE(producer_writes, both_read){0};
    alignas(64) std::atomic<std::size_t> tail
        KMU_ATOMIC_ROLE(consumer_writes, both_read){0};
    // Cumulative counters mirror head/tail without the wrap, making
    // conservation (pops <= pushes <= pops + capacity) checkable.
    // Written only by their owning side, before that side's
    // release-store (see the ordering audit above).
    alignas(64) std::atomic<std::uint64_t> pushes
        KMU_ATOMIC_ROLE(producer_writes, both_read){0};
    alignas(64) std::atomic<std::uint64_t> pops
        KMU_ATOMIC_ROLE(consumer_writes, both_read){0};
    // Producer-owned like pushes; relaxed is enough (observers only
    // read it at quiesce or as a monotonic statistic).
    alignas(64) std::atomic<std::uint64_t> rejects
        KMU_ATOMIC_ROLE(producer_writes, observers_read){0};
};

} // namespace kmu

#endif // KMU_QUEUE_SPSC_RING_HH
