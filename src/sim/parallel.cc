#include "sim/parallel.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <tuple>

#include "check/invariant.hh"
#include "common/logging.hh"

namespace kmu
{

ParallelMode
defaultParallelMode()
{
    const char *env = std::getenv("KMU_PARALLEL");
    if (env && std::strcmp(env, "shards") == 0)
        return ParallelMode::Shards;
    return ParallelMode::Off;
}

std::uint32_t
defaultParallelThreads()
{
    const char *env = std::getenv("KMU_PARALLEL_THREADS");
    if (!env || !*env)
        return 0;
    const long v = std::atol(env);
    return v > 0 ? std::uint32_t(v) : 0;
}

ParallelExecutor::ParallelExecutor(EventQueue &host_queue,
                                   std::uint32_t shard_domains,
                                   Tick lookahead,
                                   std::uint32_t total_threads)
    : lookaheadTicks(lookahead)
{
    KMU_INVARIANT(shard_domains >= 1,
                  "parallel executor needs at least one shard domain");
    KMU_INVARIANT(lookahead >= 1,
                  "zero lookahead admits same-window causality; the "
                  "cross-domain latency must be at least one tick");

    domains.push_back(&host_queue);
    for (std::uint32_t s = 0; s < shard_domains; ++s) {
        shardQueues.push_back(std::make_unique<EventQueue>(
            host_queue.schedulerKind()));
        domains.push_back(shardQueues.back().get());
    }
    for (std::uint32_t d = 0; d < domains.size(); ++d)
        domains[d]->bindDomain(this, d);
    mailboxes.resize(domains.size() * domains.size());

    // Shard domains round-robin across the worker threads; the
    // caller keeps the host domain. threads==1 leaves no workers and
    // run() services every domain itself, window by window — same
    // machinery, no concurrency.
    std::uint32_t threads = total_threads == 0
                                ? shard_domains + 1 : total_threads;
    threads = std::min(threads, shard_domains + 1);
    threads = std::max(threads, std::uint32_t(1));
    const std::uint32_t nworkers = threads - 1;
    for (std::uint32_t w = 0; w < nworkers; ++w)
        workers.push_back(std::make_unique<Worker>());
    for (std::uint32_t s = 0; s < shard_domains && nworkers > 0; ++s)
        workers[s % nworkers]->domainIds.push_back(1 + s);
}

ParallelExecutor::~ParallelExecutor()
{
    if (workersStarted) {
        for (auto &w : workers)
            w->go.store(stopEpoch, std::memory_order_release);
        for (auto &w : workers)
            w->thread.join();
    }
    // Unbind so queue teardown (and any stray late schedule) takes
    // the plain serial paths.
    for (std::uint32_t d = 0; d < domains.size(); ++d)
        domains[d]->bindDomain(nullptr, 0);
}

EventQueue &
ParallelExecutor::domainQueue(std::uint32_t d)
{
    KMU_INVARIANT(d < domains.size(), "domain id %u out of range",
                  (unsigned)d);
    return *domains[d];
}

void
ParallelExecutor::addBarrierCheck(std::function<void()> check)
{
    barrierChecks.push_back(std::move(check));
}

std::uint64_t
ParallelExecutor::totalServiced() const
{
    std::uint64_t total = 0;
    for (const EventQueue *q : domains)
        total += q->serviced();
    return total;
}

std::uint64_t
ParallelExecutor::totalPending() const
{
    std::uint64_t total = 0;
    for (const EventQueue *q : domains)
        total += q->size();
    return total;
}

void
ParallelExecutor::pushCross(EventQueue &src, EventQueue &dst,
                            Tick when, std::int32_t prio,
                            std::string_view name,
                            sim_detail::CrossFn fn)
{
    // The conservative window relies on every crossing landing at
    // least one full lookahead after its creation tick: the current
    // window ends before creation + lookahead, so nothing absorbed
    // at the next barrier can belong to the window that made it.
    KMU_INVARIANT(when >= src.now + lookaheadTicks,
                  "cross-domain event '%.*s' at %llu violates the "
                  "lookahead (created at %llu, lookahead %llu)",
                  int(name.size()), name.data(),
                  (unsigned long long)when,
                  (unsigned long long)src.now,
                  (unsigned long long)lookaheadTicks);

    Mailbox &mb = mailbox(src.domain, dst.domain);
    CrossEntry e;
    e.when = when;
    e.prio = prio;
    e.creationTick = src.now;
    e.creatorBorn = EventQueue::tlsBorn;
    // Every host-side push roots a new crossing chain (host pushes
    // happen in serial creation order on the coordinator); shard
    // pushes are descendants and inherit the chain's root.
    e.rootX = src.domain == 0 ? ++rootCounter : EventQueue::tlsRoot;
    e.srcDomain = src.domain;
    e.srcSeq = mb.pushes++;
    e.name.assign(name);
    e.fn = std::move(fn);
    mb.entries.push_back(std::move(e));
}

void
ParallelExecutor::absorbAll()
{
    const std::size_t d_count = domains.size();
    for (std::size_t dst = 0; dst < d_count; ++dst) {
        staging.clear();
        for (std::size_t src = 0; src < d_count; ++src) {
            auto &entries =
                mailboxes[src * d_count + dst].entries;
            for (auto &e : entries)
                staging.push_back(std::move(e));
            entries.clear();
        }
        if (staging.empty())
            continue;
        // The stamp order reproduces the serial kernel's
        // (when, prio, seq) service order for these entries: see
        // DESIGN.md §15 for why creation tick, creator born tick and
        // chain root recover the serial insertion sequence.
        std::sort(staging.begin(), staging.end(),
                  [](const CrossEntry &a, const CrossEntry &b) {
                      return std::tie(a.when, a.prio, a.creationTick,
                                      a.creatorBorn, a.rootX,
                                      a.srcDomain, a.srcSeq) <
                             std::tie(b.when, b.prio, b.creationTick,
                                      b.creatorBorn, b.rootX,
                                      b.srcDomain, b.srcSeq);
                  });
        for (auto &e : staging) {
            domains[dst]->scheduleCrossEntry(e.when, e.prio, e.name,
                                             std::move(e.fn), e.rootX,
                                             e.creatorBorn);
            ++crossingsAbsorbed;
        }
    }
}

bool
ParallelExecutor::minNextTick(Tick &out)
{
    bool any = false;
    Tick best = maxTick;
    for (EventQueue *q : domains) {
        Tick t;
        if (q->nextEventTick(t) && (!any || t < best)) {
            best = t;
            any = true;
        }
    }
    if (any)
        out = best;
    return any;
}

void
ParallelExecutor::startWorkers()
{
    if (workersStarted || workers.empty())
        return;
    workersStarted = true;
    for (auto &w : workers) {
        Worker *self = w.get();
        w->thread = std::thread([this, self] { workerMain(*self); });
    }
}

void
ParallelExecutor::workerMain(Worker &me)
{
    std::uint64_t last = 0;
    for (;;) {
        std::uint64_t epoch;
        std::uint32_t spins = 0;
        while ((epoch = me.go.load(std::memory_order_acquire)) ==
               last) {
            // Spin briefly, then yield: windows are short (hundreds
            // of events), and on machines with fewer cores than
            // threads a stubborn spin would starve the very domain
            // we are waiting for.
            if (++spins > 64)
                std::this_thread::yield();
        }
        if (epoch == stopEpoch)
            return;
        const Tick end = me.windowEnd; // ordered by the go acquire
        for (std::uint32_t d : me.domainIds)
            domains[d]->run(end);
        last = epoch;
        me.done.store(epoch, std::memory_order_release);
    }
}

Tick
ParallelExecutor::run(Tick limit)
{
    startWorkers();
    EventQueue::clearServicingTls();
    for (;;) {
        // Barrier phase: workers are parked, so the mailboxes and
        // every domain queue are safe to touch from this thread.
        absorbAll();
        Tick t;
        if (!minNextTick(t) || t > limit)
            break;
        Tick horizon = t + lookaheadTicks - 1;
        if (horizon < t)
            horizon = maxTick; // overflow clamp
        const Tick end = std::min(horizon, limit);
        const std::uint64_t epoch = ++epochsRun;

        if (workers.empty()) {
            // Sequential windows: same epochs, same mailboxes, no
            // concurrency. Domain order within a window is free —
            // domains share no state and crossings are deferred —
            // so run them in id order.
            for (EventQueue *q : domains)
                q->run(end);
        } else {
            for (auto &w : workers) {
                w->windowEnd = end;
                w->go.store(epoch, std::memory_order_release);
            }
            domains[0]->run(end); // host domain on this thread
            for (auto &w : workers) {
                std::uint32_t spins = 0;
                while (w->done.load(std::memory_order_acquire) <
                       epoch) {
                    if (++spins > 64)
                        std::this_thread::yield();
                }
            }
        }

        for (const auto &check : barrierChecks)
            check();
    }
    EventQueue::clearServicingTls();
    return domains[0]->curTick();
}

} // namespace kmu
